#include "dist/congest.hpp"

#include <vector>

namespace pardfs::dist {

BfsTree CongestSimulator::build_bfs_tree(Vertex root) {
  BfsTree t;
  t.root = root;
  const std::size_t cap = static_cast<std::size_t>(g_.capacity());
  t.parent.assign(cap, kNullVertex);
  t.depth.assign(cap, -1);
  if (!g_.is_alive(root)) return t;

  t.depth[static_cast<std::size_t>(root)] = 0;
  t.num_nodes = 1;
  std::vector<Vertex> frontier{root};
  std::int32_t level = 0;
  while (!frontier.empty()) {
    std::vector<Vertex> next;
    std::uint64_t sent = 0;
    for (const Vertex v : frontier) {
      sent += static_cast<std::uint64_t>(g_.degree(v));
      for (const Vertex w : g_.neighbors(v)) {
        const auto sw = static_cast<std::size_t>(w);
        if (t.depth[sw] >= 0) continue;
        t.depth[sw] = level + 1;
        t.parent[sw] = v;
        next.push_back(w);
        ++t.num_nodes;
      }
    }
    if (next.empty()) break;  // the last level has nobody left to discover
    rounds_ += 1;
    messages_ += sent;
    t.height = ++level;
    frontier = std::move(next);
  }
  return t;
}

void CongestSimulator::broadcast(const BfsTree& tree, std::int64_t words) {
  charge_pipeline(tree, words, /*directions=*/1);
}

void CongestSimulator::charge_pipeline(const BfsTree& tree, std::int64_t words,
                                       int directions) {
  if (words <= 0 || tree.height <= 0) return;
  const std::uint64_t chunks =
      static_cast<std::uint64_t>((words + b_ - 1) / b_);
  const auto height = static_cast<std::uint64_t>(tree.height);
  const auto edges = static_cast<std::uint64_t>(tree.tree_edges());
  const auto dirs = static_cast<std::uint64_t>(directions);
  rounds_ += dirs * (height + chunks - 1);
  messages_ += dirs * edges * chunks;
}

}  // namespace pardfs::dist
