#include "dist/distributed_dfs.hpp"

#include <algorithm>
#include <vector>

namespace pardfs::dist {
namespace {

// A candidate edge packed into one aggregate word so that the plain
// word-wise max reproduces the oracle's deterministic tie-breaking
// (better target post first, then smaller source id). Zero means "no
// candidate" — the high half is biased so any real candidate is nonzero.
constexpr std::uint64_t kIdBias = 0x7fffffff;

std::uint64_t encode_candidate(std::int32_t target_post, Vertex source,
                               bool nearest_top) {
  const std::uint64_t hi =
      nearest_top ? static_cast<std::uint64_t>(target_post) + 1
                  : kIdBias - static_cast<std::uint64_t>(target_post);
  const std::uint64_t lo = kIdBias - static_cast<std::uint64_t>(source);
  return (hi << 32) | lo;
}

Edge decode_candidate(std::uint64_t word, const TreeIndex& index,
                      bool nearest_top) {
  const std::uint64_t hi = word >> 32;
  const std::uint64_t lo = word & 0xffffffffu;
  const std::int32_t post = nearest_top
                                ? static_cast<std::int32_t>(hi - 1)
                                : static_cast<std::int32_t>(kIdBias - hi);
  const Vertex source = static_cast<Vertex>(kIdBias - lo);
  return Edge{source, index.vertex_at_post(post)};
}

// Best candidate of one source vertex: scan its own adjacency for
// neighbors on the query segment — exactly what the processor at `v` can
// compute locally in zero rounds.
std::uint64_t local_candidate(const Graph& g, const TreeIndex& index, Vertex v,
                              const stream::StreamQuery& q) {
  std::uint64_t best = 0;
  for (const Vertex y : g.neighbors(v)) {
    if (!index.in_forest(y)) continue;
    if (!index.is_ancestor(q.seg_top, y) || !index.is_ancestor(y, q.seg_bottom)) {
      continue;
    }
    best = std::max(best, encode_candidate(index.post(y), v, q.nearest_top));
  }
  return best;
}

template <typename Fn>
void for_each_source(const TreeIndex& index, const stream::StreamQuery& q,
                     Fn&& fn) {
  switch (q.source_kind) {
    case stream::StreamQuery::SourceKind::kVertex:
      fn(q.source_a);
      break;
    case stream::StreamQuery::SourceKind::kSubtree:
      for (const Vertex v : index.subtree_span(q.source_a)) fn(v);
      break;
    case stream::StreamQuery::SourceKind::kSegment:
      // source_a = segment top, source_b = segment bottom.
      for (const Vertex v : index.path_vertices(q.source_b, q.source_a)) fn(v);
      break;
  }
}

}  // namespace

std::vector<std::optional<Edge>> answer_queries_distributed(
    CongestSimulator& sim, const BfsTree& tree, const Graph& g,
    const TreeIndex& index, std::span<const stream::StreamQuery> queries) {
  const std::size_t nq = queries.size();
  std::vector<std::vector<std::uint64_t>> contrib(tree.depth.size());
  for (std::size_t qi = 0; qi < nq; ++qi) {
    const stream::StreamQuery& q = queries[qi];
    for_each_source(index, q, [&](Vertex v) {
      if (!tree.contains(v)) return;
      const std::uint64_t word = local_candidate(g, index, v, q);
      if (word == 0) return;
      auto& words = contrib[static_cast<std::size_t>(v)];
      if (words.size() < nq) words.resize(nq, 0);
      words[qi] = std::max(words[qi], word);
    });
  }
  const auto combined = sim.aggregate(
      tree, contrib,
      [](std::size_t, std::uint64_t a, std::uint64_t b) { return a > b ? a : b; });
  std::vector<std::optional<Edge>> out(nq);
  for (std::size_t qi = 0; qi < nq && qi < combined.size(); ++qi) {
    if (combined[qi] != 0) {
      out[qi] = decode_candidate(combined[qi], index, queries[qi].nearest_top);
    }
  }
  return out;
}

DistributedDfs::DistributedDfs(Graph g, std::int32_t message_words)
    // serial_cutoff = 0: the CONGEST cost mapping derives rounds from the
    // engine's query-set structure; a Brent-style serial completion has no
    // zero-round distributed counterpart.
    : dfs_(std::move(g), RerootStrategy::kPaper, nullptr, 0, 0) {
  const Graph& gr = dfs_.graph();
  if (message_words > 0) {
    b_ = message_words;
    return;
  }
  // B = n/2D of the dominant component (the paper's network is connected;
  // on a forest the largest component is the honest proxy). Fixed at
  // construction: message size is a parameter of the model, not of the
  // evolving graph.
  CongestSimulator probe(gr, 1);
  std::vector<bool> seen(static_cast<std::size_t>(gr.capacity()), false);
  Vertex best_n = 0;
  std::int32_t best_h = 0;
  for (Vertex v = 0; v < gr.capacity(); ++v) {
    if (!gr.is_alive(v) || seen[static_cast<std::size_t>(v)]) continue;
    const BfsTree t = probe.build_bfs_tree(v);
    for (std::size_t w = 0; w < t.depth.size(); ++w) {
      if (t.depth[w] >= 0) seen[w] = true;
    }
    if (t.num_nodes > best_n) {
      best_n = t.num_nodes;
      best_h = t.height;
    }
  }
  b_ = std::max<std::int32_t>(1, best_n / (2 * std::max<std::int32_t>(1, best_h)));
}

void DistributedDfs::apply(const GraphUpdate& update) {
  // The component whose network pays for this update, anchored by a vertex
  // that survives the mutation.
  Vertex anchor = kNullVertex;
  switch (update.kind) {
    case GraphUpdate::Kind::kInsertEdge:
    case GraphUpdate::Kind::kDeleteEdge:
      anchor = update.u;
      break;
    case GraphUpdate::Kind::kDeleteVertex: {
      const auto former = graph().neighbors(update.u);
      if (!former.empty()) anchor = former.front();
      break;
    }
    case GraphUpdate::Kind::kInsertVertex:
      break;  // the new vertex id is known only after the mutation
  }

  dfs_.apply(update);
  if (update.kind == GraphUpdate::Kind::kInsertVertex) {
    anchor = graph().capacity() - 1;
  }

  last_ = UpdateCost{};
  last_.query_sets = dfs_.last_stats().query_batches;
  if (anchor != kNullVertex && graph().is_alive(anchor)) {
    CongestSimulator sim(graph(), b_);
    const BfsTree tree = sim.build_bfs_tree(dfs_.root_of(anchor));
    last_.bfs_height = tree.height;
    if (tree.num_nodes > 1) {
      // Announce the update (O(1) words), then pay one convergecast +
      // broadcast per query set; each set may carry up to one word per
      // vertex of the component (the Theorem 16 schedule).
      sim.broadcast(tree, 1);
      for (std::uint64_t s = 0; s < last_.query_sets; ++s) {
        sim.broadcast(tree, tree.num_nodes);  // convergecast up
        sim.broadcast(tree, tree.num_nodes);  // result back down
      }
    }
    last_.rounds = sim.rounds();
    last_.messages = sim.messages();
  }
  total_rounds_ += last_.rounds;
  total_messages_ += last_.messages;
}

}  // namespace pardfs::dist
