// BFS spanning tree of one network component, the communication substrate
// of the CONGEST algorithms (paper §7, Theorem 16): convergecasts and
// broadcasts are pipelined along this tree, so every cost formula is stated
// in terms of its height and edge count.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge.hpp"

namespace pardfs::dist {

struct BfsTree {
  Vertex root = kNullVertex;
  // Vertices reached from `root` (the root's component).
  Vertex num_nodes = 0;
  // Eccentricity of the root within its component; 0 for a singleton.
  std::int32_t height = 0;
  // parent[v] == kNullVertex for the root and for vertices outside the
  // component; depth[v] == -1 outside the component.
  std::vector<Vertex> parent;
  std::vector<std::int32_t> depth;

  std::int64_t tree_edges() const { return num_nodes > 0 ? num_nodes - 1 : 0; }
  bool contains(Vertex v) const {
    return v >= 0 && static_cast<std::size_t>(v) < depth.size() &&
           depth[static_cast<std::size_t>(v)] >= 0;
  }
};

}  // namespace pardfs::dist
