// Synchronous CONGEST(B) simulator (paper §7).
//
// The network is the graph itself: one processor per vertex, one link per
// edge, and in every synchronous round a link carries at most B machine
// words in each direction. The simulator executes the three primitives the
// distributed DFS algorithm is built from and charges their exact round and
// message complexity; computation at a vertex is free (as in the model).
//
//   * build_bfs_tree — flood from a root. One round per BFS level; in a
//     round every vertex of the current level sends to all its neighbors,
//     so the flood costs height(T) rounds and sum(deg(v)) messages over the
//     non-leaf levels (2m per component in the worst case — the "+m" term
//     of Theorem 16's message bound).
//   * broadcast — send k words from the root down the tree, pipelined in
//     chunks of B words: height + ceil(k/B) - 1 rounds, one message per
//     tree edge per chunk.
//   * aggregate — combine per-vertex word vectors up the tree (convergecast)
//     and return the result to everyone (broadcast); each direction costs
//     one pipelined pass, hence the factor 2 in its accounting.
//
// Word vectors are combined per word index; vertices whose contribution is
// shorter than the longest one simply do not participate in the missing
// words (ragged contributions are padded with "absent", not with zeros).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "dist/bfs_tree.hpp"
#include "graph/graph.hpp"

namespace pardfs::dist {

class CongestSimulator {
 public:
  // `message_words` is B, the per-link per-round bandwidth in words.
  CongestSimulator(const Graph& g, std::int32_t message_words)
      : g_(g), b_(message_words > 0 ? message_words : 1) {}

  const Graph& graph() const { return g_; }
  std::int32_t message_words() const { return b_; }

  // Floods from `root` and returns the BFS tree of its component.
  BfsTree build_bfs_tree(Vertex root);

  // Pipelined root-to-all broadcast of `words` words. Free on a singleton
  // tree or for zero words.
  void broadcast(const BfsTree& tree, std::int64_t words);

  // Convergecast + broadcast-back of per-vertex contributions. contrib[v]
  // is the word vector of vertex v (vertices outside the tree, or beyond
  // contrib.size(), contribute nothing). combine(word_index, a, b) must be
  // associative and commutative per word index.
  template <typename Combine>
  std::vector<std::uint64_t> aggregate(
      const BfsTree& tree, const std::vector<std::vector<std::uint64_t>>& contrib,
      Combine&& combine) {
    std::size_t width = 0;
    const std::size_t n = std::min(contrib.size(), tree.depth.size());
    for (std::size_t v = 0; v < n; ++v) {
      if (tree.depth[v] >= 0) width = std::max(width, contrib[v].size());
    }
    std::vector<std::uint64_t> out(width);
    std::vector<bool> seen(width, false);
    for (std::size_t v = 0; v < n; ++v) {
      if (tree.depth[v] < 0) continue;
      const auto& words = contrib[v];
      for (std::size_t i = 0; i < words.size(); ++i) {
        out[i] = seen[i] ? combine(i, out[i], words[i]) : words[i];
        seen[i] = true;
      }
    }
    charge_pipeline(tree, static_cast<std::int64_t>(width), /*directions=*/2);
    return out;
  }

  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t messages() const { return messages_; }
  void reset_counters() {
    rounds_ = 0;
    messages_ = 0;
  }

 private:
  // One pipelined pass (or two, for convergecast + broadcast-back) of
  // `words` words along the tree: height + ceil(words/B) - 1 rounds and
  // tree_edges * ceil(words/B) messages per direction.
  void charge_pipeline(const BfsTree& tree, std::int64_t words, int directions);

  const Graph& g_;
  std::int32_t b_ = 1;
  std::uint64_t rounds_ = 0;
  std::uint64_t messages_ = 0;
};

}  // namespace pardfs::dist
