// Distributed fully dynamic DFS in the CONGEST model (paper §7, Theorem 16).
//
// The graph IS the network: after every update the new DFS forest is
// recomputed by the network itself. The leader (the tree root of the
// affected component) rebuilds a BFS spanning tree (D rounds, O(m)
// messages), announces the update, and then drives the §3 reduction + §4
// rerooting; every set of independent queries on D becomes one pipelined
// convergecast + broadcast over the BFS tree (2·(D + ceil(n/B) - 1) rounds
// each). With the auto message size B = n/2D this gives O(D) rounds per
// query set and O(D·log^2 n) rounds per update — Theorem 16's bound — and
// O(nD·log^2 n + m) messages.
//
// The forest itself is maintained by the shared-memory engine (DynamicDfs);
// the simulator charges what a faithful CONGEST execution of the same query
// schedule would cost. answer_queries_distributed() demonstrates the other
// half for real: one set of independent D queries evaluated purely from
// per-vertex local knowledge plus one aggregate over the BFS tree.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/dynamic_dfs.hpp"
#include "dist/bfs_tree.hpp"
#include "dist/congest.hpp"
#include "graph/graph.hpp"
#include "stream/edge_stream.hpp"
#include "tree/tree_index.hpp"

namespace pardfs::dist {

// CONGEST cost of one update.
struct UpdateCost {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
  std::uint64_t query_sets = 0;  // sets of independent D queries (Thm 3)
  std::int32_t bfs_height = 0;   // height of the BFS tree used = D estimate
};

// Answers one set of independent queries distributively: every source
// vertex computes its best incident candidate from local knowledge (its own
// adjacency list plus the O(1)-word query descriptor), and one aggregate
// over `tree` combines the candidates with the oracle's (target post,
// source id) tie-breaking. Results match AdjacencyOracle::query_sources on
// the same index.
std::vector<std::optional<Edge>> answer_queries_distributed(
    CongestSimulator& sim, const BfsTree& tree, const Graph& g,
    const TreeIndex& index, std::span<const stream::StreamQuery> queries);

class DistributedDfs {
 public:
  // message_words <= 0 selects the paper's B = max(1, n / 2D) with D
  // estimated as the BFS height from the lowest-id alive vertex.
  explicit DistributedDfs(Graph g, std::int32_t message_words = 0);

  void apply(const GraphUpdate& update);

  const Graph& graph() const { return dfs_.graph(); }
  std::span<const Vertex> parent() const { return dfs_.parent(); }
  std::int32_t message_words() const { return b_; }

  const UpdateCost& last_cost() const { return last_; }
  std::uint64_t total_rounds() const { return total_rounds_; }
  std::uint64_t total_messages() const { return total_messages_; }

 private:
  DynamicDfs dfs_;
  std::int32_t b_ = 1;
  UpdateCost last_;
  std::uint64_t total_rounds_ = 0;
  std::uint64_t total_messages_ = 0;
};

}  // namespace pardfs::dist
