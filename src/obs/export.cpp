#include "obs/export.hpp"

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

namespace pardfs::obs {
namespace {

void append_double(std::string& out, double v) {
  char buf[64];
  // %.17g round-trips; %g keeps integers clean. Prometheus accepts both.
  std::snprintf(buf, sizeof(buf), "%g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

// `{phase="patch"}` from the stored inner list, or nothing when unlabeled.
// `extra` (e.g. `le="4.096"`) is appended after the stored labels.
void append_labels(std::string& out, const std::string& labels,
                   const std::string& extra = {}) {
  if (labels.empty() && extra.empty()) return;
  out.push_back('{');
  out += labels;
  if (!labels.empty() && !extra.empty()) out.push_back(',');
  out += extra;
  out.push_back('}');
}

void type_line(std::string& out, const std::string& name, const char* kind,
               std::string& last_typed) {
  if (last_typed == name) return;  // one TYPE line per family
  out += "# TYPE ";
  out += name;
  out.push_back(' ');
  out += kind;
  out.push_back('\n');
  last_typed = name;
}

std::string le_label(double upper) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "le=\"%g\"", upper);
  return buf;
}

void append_json_string(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out.push_back(c);
    }
  }
  out.push_back('"');
}

// JSON map key identifying one (name, labels) series.
std::string series_key(const std::string& name, const std::string& labels) {
  if (labels.empty()) return name;
  return name + "{" + labels + "}";
}

}  // namespace

std::string prometheus_text(const Registry& reg) {
  std::string out;
  out.reserve(4096);
  std::string last_typed;

  for (const Counter* c : reg.counters()) {
    type_line(out, c->name(), "counter", last_typed);
    out += c->name();
    append_labels(out, c->labels());
    out.push_back(' ');
    append_u64(out, c->value());
    out.push_back('\n');
  }

  for (const Gauge* g : reg.gauges()) {
    type_line(out, g->name(), "gauge", last_typed);
    out += g->name();
    append_labels(out, g->labels());
    out.push_back(' ');
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64,
                  static_cast<std::int64_t>(g->value()));
    out += buf;
    out.push_back('\n');
  }

  // Histograms: the standard cumulative series first (whole family), then
  // the companion quantile gauge families (grouped per suffix so every
  // family keeps a single TYPE line).
  const auto hists = reg.histograms();
  std::vector<HistogramSnapshot> snaps;
  snaps.reserve(hists.size());
  for (const Histogram* h : hists) snaps.push_back(h->snapshot());

  for (std::size_t hi = 0; hi < hists.size(); ++hi) {
    const Histogram* h = hists[hi];
    const HistogramSnapshot& s = snaps[hi];
    type_line(out, h->name(), "histogram", last_typed);
    // Last non-empty bucket bounds the emitted range; everything above is
    // covered by +Inf.
    std::size_t top = 0;
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      if (s.buckets[i] != 0) top = i;
    }
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i <= top; ++i) {
      cumulative += s.buckets[i];
      out += h->name();
      out += "_bucket";
      append_labels(out, h->labels(), le_label(s.bucket_upper(i)));
      out.push_back(' ');
      append_u64(out, cumulative);
      out.push_back('\n');
    }
    out += h->name();
    out += "_bucket";
    append_labels(out, h->labels(), "le=\"+Inf\"");
    out.push_back(' ');
    append_u64(out, s.count);
    out.push_back('\n');
    out += h->name();
    out += "_sum";
    append_labels(out, h->labels());
    out.push_back(' ');
    append_double(out, s.sum);
    out.push_back('\n');
    out += h->name();
    out += "_count";
    append_labels(out, h->labels());
    out.push_back(' ');
    append_u64(out, s.count);
    out.push_back('\n');
  }

  struct QuantileCol {
    const char* suffix;
    double HistogramSnapshot::* field;
  };
  static constexpr QuantileCol kCols[] = {
      {"_p50", &HistogramSnapshot::p50},
      {"_p90", &HistogramSnapshot::p90},
      {"_p99", &HistogramSnapshot::p99},
      {"_max", &HistogramSnapshot::max},
  };
  for (const QuantileCol& col : kCols) {
    for (std::size_t hi = 0; hi < hists.size(); ++hi) {
      const Histogram* h = hists[hi];
      const std::string family = h->name() + col.suffix;
      type_line(out, family, "gauge", last_typed);
      out += family;
      append_labels(out, h->labels());
      out.push_back(' ');
      append_double(out, snaps[hi].*col.field);
      out.push_back('\n');
    }
  }
  return out;
}

std::string metrics_json(const Registry& reg) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const Counter* c : reg.counters()) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, series_key(c->name(), c->labels()));
    out.push_back(':');
    append_u64(out, c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const Gauge* g : reg.gauges()) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(out, series_key(g->name(), g->labels()));
    out.push_back(':');
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64,
                  static_cast<std::int64_t>(g->value()));
    out += buf;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const Histogram* h : reg.histograms()) {
    if (!first) out.push_back(',');
    first = false;
    const HistogramSnapshot s = h->snapshot();
    append_json_string(out, series_key(h->name(), h->labels()));
    out += ":{\"count\":";
    append_u64(out, s.count);
    out += ",\"sum\":";
    append_double(out, s.sum);
    out += ",\"max\":";
    append_double(out, s.max);
    out += ",\"p50\":";
    append_double(out, s.p50);
    out += ",\"p90\":";
    append_double(out, s.p90);
    out += ",\"p99\":";
    append_double(out, s.p99);
    out += "}";
  }
  out += "}}";
  return out;
}

}  // namespace pardfs::obs
