// Registry exporters. Both render a point-in-time snapshot of every
// registered metric; output is deterministic (sorted by name, then labels).
//
//   * prometheus_text — Prometheus exposition format. Histograms emit the
//     standard cumulative `_bucket{le=...}` / `_sum` / `_count` series
//     (log2 bucket bounds, trailing empty buckets elided) plus companion
//     `<name>_p50/_p90/_p99/_max` gauge families, since log-bucket
//     quantiles are the object of interest and not every scrape pipeline
//     runs histogram_quantile().
//   * metrics_json — same data as one JSON object, for tooling and the
//     bench/fuzz artifact paths.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace pardfs::obs {

std::string prometheus_text(const Registry& reg = Registry::global());
std::string metrics_json(const Registry& reg = Registry::global());

}  // namespace pardfs::obs
