#include "obs/trace.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <vector>

namespace pardfs::obs {

std::uint32_t thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

namespace {

// One slot. All-relaxed atomics: a dump racing a writer may read a mixed
// slot (rendered as a bogus span), but never tears a field or trips TSAN.
struct Slot {
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint64_t> start_ns{0};
  std::atomic<std::uint64_t> dur_ns{0};
  std::atomic<std::uint32_t> tid{0};
};

constexpr std::size_t kRingCapacity = 4096;  // newest events win on wrap
constexpr std::size_t kMaxRings = 64;

struct Ring {
  std::atomic<bool> leased{false};
  std::atomic<std::uint64_t> head{0};  // total pushes; slot = head % capacity
  std::array<Slot, kRingCapacity> slots;

  void push(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns,
            std::uint32_t tid) {
    const std::uint64_t h = head.fetch_add(1, std::memory_order_relaxed);
    Slot& s = slots[h % kRingCapacity];
    s.name.store(name, std::memory_order_relaxed);
    s.start_ns.store(start_ns, std::memory_order_relaxed);
    s.dur_ns.store(dur_ns, std::memory_order_relaxed);
    s.tid.store(tid, std::memory_order_relaxed);
  }
};

std::array<Ring, kMaxRings>& rings() {
  static auto* pool = new std::array<Ring, kMaxRings>();  // leaked on purpose
  return *pool;
}

// Lease lifecycle: a thread grabs the first free ring on its first push and
// hands it back at thread exit. Events outlive the lease (tid is per-event),
// so dumps after worker joins still see everything — until a later thread
// reuses the ring and wraps past them.
struct Lease {
  Ring* ring = nullptr;

  Ring* get() {
    if (ring == nullptr) {
      auto& pool = rings();
      for (Ring& r : pool) {
        bool expected = false;
        if (r.leased.compare_exchange_strong(expected, true,
                                             std::memory_order_acq_rel)) {
          ring = &r;
          break;
        }
      }
      // Pool exhausted (> kMaxRings live threads tracing): drop events
      // rather than allocate; `ring` stays null.
    }
    return ring;
  }
  ~Lease() {
    if (ring != nullptr) ring->leased.store(false, std::memory_order_release);
  }
};

Ring* this_thread_ring() {
  thread_local Lease lease;
  return lease.get();
}

void append_json_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out.push_back(c);
    }
  }
}

}  // namespace

namespace detail {
void trace_push(const char* name, std::uint64_t start_ns,
                std::uint64_t dur_ns) {
  Ring* r = this_thread_ring();
  if (r != nullptr) r->push(name, start_ns, dur_ns, thread_id());
}
}  // namespace detail

void set_tracing_enabled(bool on) {
  detail::g_tracing_enabled.store(on, std::memory_order_relaxed);
}

std::string chrome_trace_json() {
  struct Event {
    const char* name;
    std::uint64_t start_ns;
    std::uint64_t dur_ns;
    std::uint32_t tid;
  };
  std::vector<Event> events;
  for (Ring& r : rings()) {
    const std::uint64_t head = r.head.load(std::memory_order_relaxed);
    const std::uint64_t n = std::min<std::uint64_t>(head, kRingCapacity);
    for (std::uint64_t i = 0; i < n; ++i) {
      const Slot& s = r.slots[i];
      const char* name = s.name.load(std::memory_order_relaxed);
      if (name == nullptr) continue;
      events.push_back({name, s.start_ns.load(std::memory_order_relaxed),
                        s.dur_ns.load(std::memory_order_relaxed),
                        s.tid.load(std::memory_order_relaxed)});
    }
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    return a.start_ns < b.start_ns;
  });

  std::string out = "{\"traceEvents\":[";
  char buf[128];
  bool first = true;
  for (const Event& e : events) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"";
    append_json_escaped(out, e.name);
    // chrome://tracing wants microseconds; keep sub-µs as decimals.
    std::snprintf(buf, sizeof(buf),
                  "\",\"ph\":\"X\",\"pid\":1,\"tid\":%" PRIu32
                  ",\"ts\":%.3f,\"dur\":%.3f}",
                  e.tid, static_cast<double>(e.start_ns) * 1e-3,
                  static_cast<double>(e.dur_ns) * 1e-3);
    out += buf;
  }
  out += "]}";
  return out;
}

void trace_reset() {
  for (Ring& r : rings()) {
    r.head.store(0, std::memory_order_relaxed);
    for (Slot& s : r.slots) s.name.store(nullptr, std::memory_order_relaxed);
  }
}

}  // namespace pardfs::obs
