#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace pardfs::obs {
namespace {

// Map key: name and labels joined on a byte that can appear in neither.
std::string make_key(std::string_view name, std::string_view labels) {
  std::string key;
  key.reserve(name.size() + labels.size() + 1);
  key.append(name);
  key.push_back('\x1f');
  key.append(labels);
  return key;
}

[[noreturn]] void kind_clash(std::string_view name) {
  std::fprintf(stderr,
               "pardfs::obs: metric '%.*s' registered with two kinds\n",
               static_cast<int>(name.size()), name.data());
  std::abort();
}

}  // namespace

double HistogramSnapshot::bucket_upper(std::size_t i) const {
  // Bucket 0 is the exact value 0; bucket i >= 1 covers [2^(i-1), 2^i).
  if (i == 0) return 0.0;
  return static_cast<double>(std::uint64_t{1} << i) * scale;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target order statistic, 1-based.
  const double rank = q * static_cast<double>(count - 1) + 1.0;
  std::uint64_t below = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    const std::uint64_t in_bucket = buckets[i];
    if (in_bucket == 0) continue;
    if (rank <= static_cast<double>(below + in_bucket)) {
      if (i == 0) return 0.0;
      // Linear interpolation across the bucket's value range by the rank's
      // position within the bucket's population.
      const double lo = static_cast<double>(std::uint64_t{1} << (i - 1));
      const double hi = static_cast<double>(std::uint64_t{1} << i);
      const double frac =
          (rank - static_cast<double>(below)) / static_cast<double>(in_bucket);
      double est = (lo + (hi - lo) * frac) * scale;
      // The true value can't exceed the observed maximum (tight for the top
      // bucket, harmless elsewhere).
      return std::min(est, max > 0.0 ? max : est);
    }
    below += in_bucket;
  }
  return max;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.scale = scale_;
  std::uint64_t raw_sum = 0;
  std::uint64_t raw_max = 0;
  for (const Shard& s : shards_) {
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      snap.buckets[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
    snap.count += s.count.load(std::memory_order_relaxed);
    raw_sum += s.sum.load(std::memory_order_relaxed);
    raw_max = std::max(raw_max, s.max.load(std::memory_order_relaxed));
  }
  snap.sum = static_cast<double>(raw_sum) * scale_;
  snap.max = static_cast<double>(raw_max) * scale_;
  snap.p50 = snap.quantile(0.50);
  snap.p90 = snap.quantile(0.90);
  snap.p99 = snap.quantile(0.99);
  return snap;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const {
  std::uint64_t raw = 0;
  for (const Shard& s : shards_) {
    raw += s.sum.load(std::memory_order_relaxed);
  }
  return static_cast<double>(raw) * scale_;
}

void Histogram::reset() {
  for (Shard& s : shards_) {
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    s.max.store(0, std::memory_order_relaxed);
  }
}

Registry& Registry::global() {
  static Registry* instance = new Registry();  // leaked on purpose
  return *instance;
}

Counter& Registry::counter(std::string_view name, std::string_view labels) {
  const std::string key = make_key(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    if (gauges_.count(key) || histograms_.count(key)) kind_clash(name);
    it = counters_
             .emplace(key, std::unique_ptr<Counter>(new Counter(
                               std::string(name), std::string(labels))))
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name, std::string_view labels) {
  const std::string key = make_key(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    if (counters_.count(key) || histograms_.count(key)) kind_clash(name);
    it = gauges_
             .emplace(key, std::unique_ptr<Gauge>(new Gauge(
                               std::string(name), std::string(labels))))
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name, std::string_view labels,
                               double scale) {
  const std::string key = make_key(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    if (counters_.count(key) || gauges_.count(key)) kind_clash(name);
    it = histograms_
             .emplace(key, std::unique_ptr<Histogram>(new Histogram(
                               std::string(name), std::string(labels), scale)))
             .first;
  }
  return *it->second;
}

namespace {
template <class Map, class T>
std::vector<const T*> sorted_view(std::mutex& mu, const Map& map) {
  std::vector<const T*> out;
  {
    std::lock_guard<std::mutex> lock(mu);
    out.reserve(map.size());
    for (const auto& [key, ptr] : map) out.push_back(ptr.get());
  }
  std::sort(out.begin(), out.end(), [](const T* a, const T* b) {
    if (a->name() != b->name()) return a->name() < b->name();
    return a->labels() < b->labels();
  });
  return out;
}
}  // namespace

std::vector<const Counter*> Registry::counters() const {
  return sorted_view<decltype(counters_), Counter>(mu_, counters_);
}

std::vector<const Gauge*> Registry::gauges() const {
  return sorted_view<decltype(gauges_), Gauge>(mu_, gauges_);
}

std::vector<const Histogram*> Registry::histograms() const {
  return sorted_view<decltype(histograms_), Histogram>(mu_, histograms_);
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, c] : counters_) c->reset();
  for (auto& [key, g] : gauges_) g->reset();
  for (auto& [key, h] : histograms_) h->reset();
}

}  // namespace pardfs::obs
