// Phase-span tracer + the repo's single scoped-timing primitive.
//
//   * now_ns() / Stopwatch — monotonic wall-clock reading (replaces the old
//     util/timer.hpp and the PhaseTimer scope guard that core carried);
//   * Span — RAII scoped span. When tracing is enabled (set_tracing_enabled,
//     default OFF) the span's (name, start, duration, thread) is pushed into
//     a fixed-size per-thread ring buffer on destruction; chrome_trace_json()
//     renders every ring as chrome://tracing "X" events. When tracing is off
//     the constructor is one relaxed load and nothing else.
//   * ScopedPhase — Span + histogram record in one guard: times its scope
//     and records the duration (ns) into an obs::Histogram. This is what
//     instruments the writer pipeline (queue_wait → patch → reroot →
//     index_rebuild → rebase → publish) and the engine's per-round spans.
//
// Rings are pooled, not thread_local-owned: the PRAM shim under
// PARDFS_PRAM_TSAN spawns fresh std::threads every parallel region, and one
// ring per short-lived thread would grow without bound. A thread leases a
// ring from a fixed pool on first push and returns it at thread exit;
// events carry their thread id, so lease reuse never mixes attribution.
// Event fields are relaxed atomics — concurrent dump while writers run is
// TSAN-clean (an in-flight slot may render garbled, never invoke UB); dump
// at quiescence (after joins) is exact.
//
// PARDFS_NO_METRICS compiles Span/ScopedPhase/Stopwatch clock reads and ring
// pushes to nothing; chrome_trace_json() still returns a valid (empty) page.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

namespace pardfs::obs {

inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Small sequential id per OS thread (first use wins; never reused).
std::uint32_t thread_id();

// Monotonic stopwatch for call sites that want a duration, not a metric.
class Stopwatch {
 public:
  Stopwatch() : start_(now_ns()) {}
  void reset() { start_ = now_ns(); }
  std::uint64_t elapsed_ns() const { return now_ns() - start_; }
  double elapsed_us() const {
    return static_cast<double>(elapsed_ns()) * 1e-3;
  }
  double elapsed_seconds() const {
    return static_cast<double>(elapsed_ns()) * 1e-9;
  }

 private:
  std::uint64_t start_;
};

namespace detail {
inline std::atomic<bool> g_tracing_enabled{false};
// Push one completed span into the calling thread's leased ring.
void trace_push(const char* name, std::uint64_t start_ns,
                std::uint64_t dur_ns);
}  // namespace detail

inline bool tracing_enabled() {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}
void set_tracing_enabled(bool on);

// RAII span. `name` must be a string with static storage duration (string
// literals at every call site) — rings store the pointer, not a copy.
class Span {
 public:
  explicit Span(const char* name) {
#if !defined(PARDFS_NO_METRICS)
    if (tracing_enabled()) {
      name_ = name;
      start_ns_ = now_ns();
    }
#else
    (void)name;
#endif
  }
  ~Span() {
#if !defined(PARDFS_NO_METRICS)
    if (name_ != nullptr) {
      detail::trace_push(name_, start_ns_, now_ns() - start_ns_);
    }
#endif
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
#if !defined(PARDFS_NO_METRICS)
  const char* name_ = nullptr;
  std::uint64_t start_ns_ = 0;
#endif
};

// Span + histogram in one guard: the scope's duration lands in `hist` (raw
// nanoseconds) and, if tracing is on, in the trace ring under `name`.
class ScopedPhase {
 public:
  ScopedPhase(Histogram& hist, const char* name)
#if !defined(PARDFS_NO_METRICS)
      : hist_(&hist), span_(name), start_ns_(now_ns()) {
  }
#else
  {
    (void)hist;
    (void)name;
  }
#endif
  ~ScopedPhase() {
#if !defined(PARDFS_NO_METRICS)
    hist_->record(now_ns() - start_ns_);
#endif
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
#if !defined(PARDFS_NO_METRICS)
  Histogram* hist_;
  Span span_;
  std::uint64_t start_ns_;
#endif
};

// All recorded spans from every ring as a chrome://tracing JSON document
// ({"traceEvents": [...]}, ph:"X", ts/dur in microseconds). Load it at
// chrome://tracing or https://ui.perfetto.dev.
std::string chrome_trace_json();

// Drop every recorded span (rings keep their leases).
void trace_reset();

}  // namespace pardfs::obs
