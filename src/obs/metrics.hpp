// Process-wide metrics registry — the unified observability substrate
// (DESIGN.md §11). Three metric kinds:
//
//   * Counter   — monotone event count; hot path is one relaxed atomic add
//                 into a per-thread shard, merged on read;
//   * Gauge     — last-writer-wins instantaneous value (queue depth,
//                 coalesce size);
//   * Histogram — log2-bucketed latency distribution with per-shard
//                 count/sum/max, exposing p50/p90/p99/max on read. Values
//                 are recorded raw (nanoseconds in this repo) and scaled at
//                 snapshot time (`scale`, e.g. 1e-3 for a *_us metric), so
//                 sub-microsecond phases lose no precision to bucketing.
//
// Identity is (name, labels) where `labels` is a pre-formatted Prometheus
// inner label list (`phase="patch"`). Registration takes a mutex once; the
// returned reference is stable for the process lifetime (metrics are never
// removed — reset() zeroes values but keeps objects), so call sites cache
// it and the steady state touches no lock.
//
// Determinism: nothing here feeds back into the algorithms — the maintained
// forest and every RerootStats counter are byte-identical with metrics
// enabled, disabled at runtime (set_metrics_enabled), or compiled out.
//
// PARDFS_NO_METRICS compiles the recording hot paths (and their clock
// reads) down to nothing while keeping the full API and registration, so
// callers need no #ifdefs and exporters still emit a well-formed (all-zero)
// page. TSAN-clean by construction: shards are plain relaxed atomics.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace pardfs::obs {

// Runtime kill-switch (default on). Readers/exporters ignore it; only the
// recording paths check it, with one relaxed load.
namespace detail {
inline std::atomic<bool> g_metrics_enabled{true};

// Threads hash onto one of kShards cache-line-padded slots. Collisions only
// share a contention domain, never lose counts.
inline constexpr std::size_t kShards = 8;

inline std::size_t shard_index() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id & (kShards - 1);
}
}  // namespace detail

inline bool metrics_enabled() {
  return detail::g_metrics_enabled.load(std::memory_order_relaxed);
}
inline void set_metrics_enabled(bool on) {
  detail::g_metrics_enabled.store(on, std::memory_order_relaxed);
}

// Log2 bucketing: bucket 0 holds the value 0, bucket i >= 1 holds
// [2^(i-1), 2^i). 48 buckets cover raw values up to 2^47 ns (~39 hours).
inline constexpr std::size_t kHistogramBuckets = 48;

inline std::size_t bucket_of(std::uint64_t raw) {
  if (raw == 0) return 0;
  const std::size_t width =
      64 - static_cast<std::size_t>(__builtin_clzll(raw));
  return width < kHistogramBuckets ? width : kHistogramBuckets - 1;
}

class Counter {
 public:
  void add(std::uint64_t delta = 1) {
#if !defined(PARDFS_NO_METRICS)
    if (!metrics_enabled()) return;
    shards_[detail::shard_index()].v.fetch_add(delta,
                                               std::memory_order_relaxed);
#else
    (void)delta;
#endif
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }
  const std::string& name() const { return name_; }
  const std::string& labels() const { return labels_; }

 private:
  friend class Registry;
  Counter(std::string name, std::string labels)
      : name_(std::move(name)), labels_(std::move(labels)) {}
  void reset() {
    for (Shard& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, detail::kShards> shards_;
  std::string name_;
  std::string labels_;
};

class Gauge {
 public:
  void set(std::int64_t v) {
#if !defined(PARDFS_NO_METRICS)
    if (!metrics_enabled()) return;
    v_.store(v, std::memory_order_relaxed);
#else
    (void)v;
#endif
  }
  void max_of(std::int64_t v) {
#if !defined(PARDFS_NO_METRICS)
    if (!metrics_enabled()) return;
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
#else
    (void)v;
#endif
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }
  const std::string& labels() const { return labels_; }

 private:
  friend class Registry;
  Gauge(std::string name, std::string labels)
      : name_(std::move(name)), labels_(std::move(labels)) {}
  void reset() { v_.store(0, std::memory_order_relaxed); }

  std::atomic<std::int64_t> v_{0};
  std::string name_;
  std::string labels_;
};

// Merged (all shards summed) view of one histogram at one instant, with the
// metric's display scale already applied to sum/max/quantiles/bounds.
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
  double scale = 1.0;

  // Scaled estimate of the q-quantile (q in [0, 1]): rank-interpolated
  // inside its log bucket, clamped by the observed maximum — always within
  // one log2 bucket of the exact order statistic.
  double quantile(double q) const;
  // Scaled exclusive upper bound of bucket i (the Prometheus `le` value).
  double bucket_upper(std::size_t i) const;
};

class Histogram {
 public:
  // `raw` is in the metric's recording unit (nanoseconds throughout this
  // repo); display values are raw * scale().
  void record(std::uint64_t raw) {
#if !defined(PARDFS_NO_METRICS)
    if (!metrics_enabled()) return;
    Shard& s = shards_[detail::shard_index()];
    s.buckets[bucket_of(raw)].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(raw, std::memory_order_relaxed);
    std::uint64_t cur = s.max.load(std::memory_order_relaxed);
    while (raw > cur && !s.max.compare_exchange_weak(
                            cur, raw, std::memory_order_relaxed)) {
    }
#else
    (void)raw;
#endif
  }

  HistogramSnapshot snapshot() const;
  // Cheap accessors for hot readers (phase_breakdown() runs inside timed
  // bench loops): shard sums only, no bucket merge or quantile math.
  std::uint64_t count() const;
  double sum() const;  // scaled
  double scale() const { return scale_; }
  const std::string& name() const { return name_; }
  const std::string& labels() const { return labels_; }

 private:
  friend class Registry;
  Histogram(std::string name, std::string labels, double scale)
      : scale_(scale), name_(std::move(name)), labels_(std::move(labels)) {}
  void reset();

  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
  };
  std::array<Shard, detail::kShards> shards_;
  double scale_;
  std::string name_;
  std::string labels_;
};

class Registry {
 public:
  // The process-wide registry. Intentionally leaked: worker and writer
  // threads may record during static destruction.
  static Registry& global();

  // Find-or-create. The reference is stable forever; a metric re-requested
  // with the same (name, labels) is the same object. Requesting an existing
  // name with a different kind aborts (naming bug, not a runtime state).
  Counter& counter(std::string_view name, std::string_view labels = {});
  Gauge& gauge(std::string_view name, std::string_view labels = {});
  Histogram& histogram(std::string_view name, std::string_view labels = {},
                       double scale = 1.0);

  // Export-side iteration: pointers sorted by (name, labels) so exposition
  // output is deterministic. The pointers never dangle (metrics are never
  // destroyed while the process lives).
  std::vector<const Counter*> counters() const;
  std::vector<const Gauge*> gauges() const;
  std::vector<const Histogram*> histograms() const;

  // Zero every value, keeping all registered objects (and therefore every
  // cached reference) valid. Benchmarks use this to scope a measurement;
  // concurrent adds during a reset may land on either side of it.
  void reset();

 private:
  Registry() = default;

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::unique_ptr<Counter>> counters_;
  std::unordered_map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::unordered_map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace pardfs::obs
