// Dynamic undirected graph substrate.
//
// Supports the paper's extended update model: edge insert/delete, vertex
// delete, and vertex insert *with an arbitrary set of incident edges*.
// Vertex ids are dense 0..capacity-1; deleted vertices leave a hole (the
// id is not recycled) so that ids remain stable across an update sequence.
//
// Adjacency is stored as per-vertex vectors. Deletion is O(degree) via
// swap-erase; the library's per-update cost is dominated by tree/oracle work
// anyway, and keeping adjacency compact makes the oracle rebuild a linear
// scan. Parallel edges and self-loops are rejected (the DFS-tree machinery
// assumes a simple graph, as does the paper).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge.hpp"

namespace pardfs {

class Graph {
 public:
  Graph() = default;
  explicit Graph(Vertex n) : adjacency_(static_cast<std::size_t>(n)),
                             alive_(static_cast<std::size_t>(n), 1),
                             num_alive_(n) {}

  // ---- capacity / liveness -------------------------------------------------
  Vertex capacity() const { return static_cast<Vertex>(adjacency_.size()); }
  Vertex num_vertices() const { return num_alive_; }
  std::int64_t num_edges() const { return num_edges_; }
  bool is_alive(Vertex v) const {
    return v >= 0 && v < capacity() && alive_[static_cast<std::size_t>(v)] != 0;
  }
  // Zero-copy liveness bitmap, indexed by vertex id (1 = alive). Feeds
  // TreeIndex::build directly, so per-update consumers need not materialize
  // their own O(n) copy.
  std::span<const std::uint8_t> alive() const { return alive_; }

  // ---- updates ---------------------------------------------------------—--
  // Adds an isolated vertex; returns its id.
  Vertex add_vertex();
  // Adds a vertex with an arbitrary set of incident edges (paper's extended
  // vertex insertion). Neighbors must be alive and distinct.
  Vertex add_vertex(std::span<const Vertex> neighbors);
  // Removes a vertex and all incident edges.
  void remove_vertex(Vertex v);
  // Returns false if the edge already exists.
  bool add_edge(Vertex u, Vertex v);
  // Returns false if the edge does not exist.
  bool remove_edge(Vertex u, Vertex v);

  bool has_edge(Vertex u, Vertex v) const;

  // ---- sharding support (service/shard_router) -----------------------------
  // Several sharded graphs share one global id space; each owns only the
  // vertices of its components and keeps every other id as a dead hole.
  //
  // Extends the id space to `new_capacity` with dead vertices (empty
  // adjacency, not alive). Ids below the current capacity are untouched;
  // no-op when not larger.
  void pad_to(Vertex new_capacity);
  // Revives `vertices` (currently dead, within capacity) with the given
  // adjacency rows, verbatim. The set must be edge-closed (every row
  // endpoint inside it): the use case is transplanting whole connected
  // components between shards, where preserving exact row order keeps the
  // DFS forests byte-identical to a single-shard history (DESIGN.md §12).
  void adopt_component(std::span<const Vertex> vertices,
                       std::vector<std::vector<Vertex>> rows);
  // Inverse of adopt_component: removes the (edge-closed) vertex set and
  // returns its adjacency rows verbatim, parallel to `vertices`.
  std::vector<std::vector<Vertex>> extract_component(
      std::span<const Vertex> vertices);

  // ---- access ---------------------------------------------------------—--
  std::span<const Vertex> neighbors(Vertex v) const {
    return adjacency_[static_cast<std::size_t>(v)];
  }
  Vertex degree(Vertex v) const {
    return static_cast<Vertex>(adjacency_[static_cast<std::size_t>(v)].size());
  }

  // All edges as (u < v) pairs, in adjacency order. O(m).
  std::vector<Edge> edges() const;

 private:
  void check_alive(Vertex v) const;

  std::vector<std::vector<Vertex>> adjacency_;
  std::vector<std::uint8_t> alive_;  // byte bitmap: spannable, parallel-scan friendly
  Vertex num_alive_ = 0;
  std::int64_t num_edges_ = 0;
};

}  // namespace pardfs
