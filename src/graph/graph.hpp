// Dynamic undirected graph substrate.
//
// Supports the paper's extended update model: edge insert/delete, vertex
// delete, and vertex insert *with an arbitrary set of incident edges*.
// Vertex ids are dense 0..capacity-1; deleted vertices leave a hole (the
// id is not recycled) so that ids remain stable across an update sequence.
//
// Adjacency is stored as per-vertex vectors. Deletion is O(degree) via
// swap-erase; the library's per-update cost is dominated by tree/oracle work
// anyway, and keeping adjacency compact makes the oracle rebuild a linear
// scan. Parallel edges and self-loops are rejected (the DFS-tree machinery
// assumes a simple graph, as does the paper).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge.hpp"

namespace pardfs {

class Graph {
 public:
  Graph() = default;
  explicit Graph(Vertex n) : adjacency_(static_cast<std::size_t>(n)),
                             alive_(static_cast<std::size_t>(n), 1),
                             num_alive_(n) {}

  // ---- capacity / liveness -------------------------------------------------
  Vertex capacity() const { return static_cast<Vertex>(adjacency_.size()); }
  Vertex num_vertices() const { return num_alive_; }
  std::int64_t num_edges() const { return num_edges_; }
  bool is_alive(Vertex v) const {
    return v >= 0 && v < capacity() && alive_[static_cast<std::size_t>(v)] != 0;
  }
  // Zero-copy liveness bitmap, indexed by vertex id (1 = alive). Feeds
  // TreeIndex::build directly, so per-update consumers need not materialize
  // their own O(n) copy.
  std::span<const std::uint8_t> alive() const { return alive_; }

  // ---- updates ---------------------------------------------------------—--
  // Adds an isolated vertex; returns its id.
  Vertex add_vertex();
  // Adds a vertex with an arbitrary set of incident edges (paper's extended
  // vertex insertion). Neighbors must be alive and distinct.
  Vertex add_vertex(std::span<const Vertex> neighbors);
  // Removes a vertex and all incident edges.
  void remove_vertex(Vertex v);
  // Returns false if the edge already exists.
  bool add_edge(Vertex u, Vertex v);
  // Returns false if the edge does not exist.
  bool remove_edge(Vertex u, Vertex v);

  bool has_edge(Vertex u, Vertex v) const;

  // ---- access ---------------------------------------------------------—--
  std::span<const Vertex> neighbors(Vertex v) const {
    return adjacency_[static_cast<std::size_t>(v)];
  }
  Vertex degree(Vertex v) const {
    return static_cast<Vertex>(adjacency_[static_cast<std::size_t>(v)].size());
  }

  // All edges as (u < v) pairs, in adjacency order. O(m).
  std::vector<Edge> edges() const;

 private:
  void check_alive(Vertex v) const;

  std::vector<std::vector<Vertex>> adjacency_;
  std::vector<std::uint8_t> alive_;  // byte bitmap: spannable, parallel-scan friendly
  Vertex num_alive_ = 0;
  std::int64_t num_edges_ = 0;
};

}  // namespace pardfs
