// Workload generators for tests and benchmarks.
//
// The paper's bounds are worst-case over graph families; the benchmark
// harness exercises families that stress different parts of the rerooting
// case analysis:
//   * paths / caterpillars — long p_c components, path-halving heavy;
//   * stars / brooms — Θ(n) subtrees reroot after one update, the case where
//     sequential rerooting ([6]) degenerates and the parallel strategy shines;
//   * complete binary trees — deep heavy-subtree recursion (vH chains);
//   * grids — bounded diameter for the CONGEST experiments;
//   * G(n, p) / G(n, m) — average case;
//   * hairy paths — path with pendant subtrees, exercising C2 components.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/random.hpp"

namespace pardfs::gen {

// Erdős–Rényi G(n, p): each edge present independently with probability p.
Graph gnp(Vertex n, double p, Rng& rng);

// Uniform random graph with exactly m distinct edges.
Graph gnm(Vertex n, std::int64_t m, Rng& rng);

// Simple path 0-1-2-...-(n-1).
Graph path(Vertex n);

// Cycle on n vertices.
Graph cycle(Vertex n);

// Star: vertex 0 adjacent to all others.
Graph star(Vertex n);

// Complete graph.
Graph clique(Vertex n);

// Broom: path of length `handle` whose last vertex fans out to n-handle leaves.
// Worst case for sequential rerooting: deleting the handle tip's tree edge
// forces Θ(n) subtrees to re-attach.
Graph broom(Vertex n, Vertex handle);

// Complete binary tree on n vertices (heap ordering).
Graph binary_tree(Vertex n);

// rows × cols grid; diameter rows+cols-2.
Graph grid(Vertex rows, Vertex cols);

// Path of length `spine` with a pendant path of length `hair` at every spine
// vertex (caterpillar with long hairs): stresses C2 components.
Graph hairy_path(Vertex spine, Vertex hair);

// Random spanning tree (uniform attachment) plus `extra` random non-tree
// edges — guaranteed connected.
Graph random_connected(Vertex n, std::int64_t extra, Rng& rng);

// Barabási–Albert preferential attachment: a clique seed on m+1 vertices,
// then each new vertex attaches to m distinct existing vertices chosen with
// probability proportional to their degree (classic repeated-endpoint
// sampling). Produces the power-law degree distribution of social graphs —
// hub vertices make service workloads adversarial: one hub update touches a
// Θ(n) neighborhood. Connected; m ≥ 1; n ≥ m + 1.
Graph barabasi_albert(Vertex n, Vertex m, Rng& rng);

// A random update mix used by benchmarks and property tests.
enum class UpdateKind : std::uint8_t {
  kInsertEdge,
  kDeleteEdge,
  kInsertVertex,
  kDeleteVertex,
};

struct Update {
  UpdateKind kind;
  Vertex u = kNullVertex;              // edge endpoint / deleted vertex
  Vertex v = kNullVertex;              // edge endpoint
  std::vector<Vertex> neighbors;       // for vertex insertion
};

// Generates a feasible random update for the current graph, drawing kinds
// with the given weights (normalized internally). Returns false if no
// feasible update exists (e.g. empty graph and zero insert weight).
bool random_update(const Graph& g, Rng& rng, double w_insert_edge,
                   double w_delete_edge, double w_insert_vertex,
                   double w_delete_vertex, Update& out);

// Applies an update to the graph (keeps graph and DFS structures in sync in
// tests). For kInsertVertex, `out_new_vertex` receives the id.
Vertex apply_update(Graph& g, const Update& u);

}  // namespace pardfs::gen
