// Basic vertex/edge vocabulary shared across the library.
#pragma once

#include <cstdint>
#include <functional>

namespace pardfs {

using Vertex = std::int32_t;
inline constexpr Vertex kNullVertex = -1;

struct Edge {
  Vertex u = kNullVertex;
  Vertex v = kNullVertex;

  constexpr bool valid() const { return u != kNullVertex && v != kNullVertex; }
  constexpr Edge reversed() const { return {v, u}; }
  friend constexpr bool operator==(const Edge&, const Edge&) = default;
};

// Canonical undirected key (min, max) packed into 64 bits, for hash sets.
constexpr std::uint64_t undirected_key(Vertex a, Vertex b) {
  const std::uint32_t lo = static_cast<std::uint32_t>(a < b ? a : b);
  const std::uint32_t hi = static_cast<std::uint32_t>(a < b ? b : a);
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

}  // namespace pardfs

template <>
struct std::hash<pardfs::Edge> {
  std::size_t operator()(const pardfs::Edge& e) const noexcept {
    return std::hash<std::uint64_t>{}(pardfs::undirected_key(e.u, e.v));
  }
};
