#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "util/check.hpp"

namespace pardfs::gen {

Graph gnp(Vertex n, double p, Rng& rng) {
  Graph g(n);
  if (p <= 0.0) return g;
  if (p >= 1.0) return clique(n);
  // Geometric skipping (Batagelj–Brandes): O(m) expected time.
  const double log1mp = std::log(1.0 - p);
  std::int64_t v = 1, w = -1;
  while (v < n) {
    const double r = rng.uniform();
    w += 1 + static_cast<std::int64_t>(std::log(1.0 - r) / log1mp);
    while (w >= v && v < n) {
      w -= v;
      ++v;
    }
    if (v < n) g.add_edge(static_cast<Vertex>(v), static_cast<Vertex>(w));
  }
  return g;
}

Graph gnm(Vertex n, std::int64_t m, Rng& rng) {
  const std::int64_t max_m = static_cast<std::int64_t>(n) * (n - 1) / 2;
  PARDFS_CHECK_MSG(m <= max_m, "too many edges requested");
  Graph g(n);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(m) * 2);
  while (static_cast<std::int64_t>(seen.size()) < m) {
    const Vertex u = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
    const Vertex v = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    if (seen.insert(undirected_key(u, v)).second) g.add_edge(u, v);
  }
  return g;
}

Graph path(Vertex n) {
  Graph g(n);
  for (Vertex i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

Graph cycle(Vertex n) {
  Graph g = path(n);
  if (n >= 3) g.add_edge(n - 1, 0);
  return g;
}

Graph star(Vertex n) {
  Graph g(n);
  for (Vertex i = 1; i < n; ++i) g.add_edge(0, i);
  return g;
}

Graph clique(Vertex n) {
  Graph g(n);
  for (Vertex i = 0; i < n; ++i)
    for (Vertex j = i + 1; j < n; ++j) g.add_edge(i, j);
  return g;
}

Graph broom(Vertex n, Vertex handle) {
  PARDFS_CHECK(handle >= 1 && handle <= n);
  Graph g(n);
  for (Vertex i = 0; i + 1 < handle; ++i) g.add_edge(i, i + 1);
  for (Vertex i = handle; i < n; ++i) g.add_edge(handle - 1, i);
  return g;
}

Graph binary_tree(Vertex n) {
  Graph g(n);
  for (Vertex i = 1; i < n; ++i) g.add_edge((i - 1) / 2, i);
  return g;
}

Graph grid(Vertex rows, Vertex cols) {
  Graph g(rows * cols);
  auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return g;
}

Graph hairy_path(Vertex spine, Vertex hair) {
  const Vertex n = spine * (1 + hair);
  Graph g(n);
  for (Vertex i = 0; i + 1 < spine; ++i) g.add_edge(i, i + 1);
  Vertex next = spine;
  for (Vertex i = 0; i < spine; ++i) {
    Vertex prev = i;
    for (Vertex h = 0; h < hair; ++h) {
      g.add_edge(prev, next);
      prev = next++;
    }
  }
  return g;
}

Graph random_connected(Vertex n, std::int64_t extra, Rng& rng) {
  Graph g(n);
  for (Vertex i = 1; i < n; ++i) {
    const Vertex parent = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(i)));
    g.add_edge(parent, i);
  }
  std::int64_t added = 0;
  const std::int64_t max_extra =
      static_cast<std::int64_t>(n) * (n - 1) / 2 - (n - 1);
  const std::int64_t target = std::min(extra, max_extra);
  while (added < target) {
    const Vertex u = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
    const Vertex v = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
    if (u == v) continue;
    if (g.add_edge(u, v)) ++added;
  }
  return g;
}

Graph barabasi_albert(Vertex n, Vertex m, Rng& rng) {
  PARDFS_CHECK(m >= 1 && n >= m + 1);
  Graph g(n);
  // Endpoint list: every vertex appears once per incident edge, so a uniform
  // draw from it is degree-proportional attachment.
  std::vector<Vertex> endpoints;
  endpoints.reserve(static_cast<std::size_t>(n) * 2 * static_cast<std::size_t>(m));
  for (Vertex i = 0; i <= m; ++i) {
    for (Vertex j = i + 1; j <= m; ++j) {
      g.add_edge(i, j);
      endpoints.push_back(i);
      endpoints.push_back(j);
    }
  }
  std::vector<Vertex> targets;
  for (Vertex v = m + 1; v < n; ++v) {
    targets.clear();
    while (static_cast<Vertex>(targets.size()) < m) {
      const Vertex t = endpoints[rng.below(endpoints.size())];
      if (std::find(targets.begin(), targets.end(), t) == targets.end()) {
        targets.push_back(t);
      }
    }
    for (const Vertex t : targets) {
      g.add_edge(v, t);
      endpoints.push_back(v);
      endpoints.push_back(t);
    }
  }
  return g;
}

namespace {

// Picks a uniformly random alive vertex; returns kNullVertex if none.
Vertex random_alive(const Graph& g, Rng& rng) {
  if (g.num_vertices() == 0) return kNullVertex;
  for (;;) {
    const Vertex v =
        static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(g.capacity())));
    if (g.is_alive(v)) return v;
  }
}

bool pick_absent_edge(const Graph& g, Rng& rng, Vertex& u, Vertex& v) {
  if (g.num_vertices() < 2) return false;
  const std::int64_t nv = g.num_vertices();
  if (g.num_edges() >= nv * (nv - 1) / 2) return false;  // complete
  for (int attempt = 0; attempt < 256; ++attempt) {
    u = random_alive(g, rng);
    v = random_alive(g, rng);
    if (u != v && !g.has_edge(u, v)) return true;
  }
  return false;  // dense graph, unlucky — caller may fall back to another kind
}

bool pick_present_edge(const Graph& g, Rng& rng, Vertex& u, Vertex& v) {
  if (g.num_edges() == 0) return false;
  for (int attempt = 0; attempt < 256; ++attempt) {
    u = random_alive(g, rng);
    if (g.degree(u) == 0) continue;
    const auto nbrs = g.neighbors(u);
    v = nbrs[rng.below(nbrs.size())];
    return true;
  }
  return false;
}

}  // namespace

bool random_update(const Graph& g, Rng& rng, double w_insert_edge,
                   double w_delete_edge, double w_insert_vertex,
                   double w_delete_vertex, Update& out) {
  double weights[4] = {w_insert_edge, w_delete_edge, w_insert_vertex,
                       w_delete_vertex};
  for (int attempt = 0; attempt < 16; ++attempt) {
    const double total = weights[0] + weights[1] + weights[2] + weights[3];
    if (total <= 0.0) return false;
    double pick = rng.uniform() * total;
    int kind = 0;
    while (kind < 3 && pick >= weights[kind]) pick -= weights[kind++];
    switch (static_cast<UpdateKind>(kind)) {
      case UpdateKind::kInsertEdge: {
        Vertex u, v;
        if (pick_absent_edge(g, rng, u, v)) {
          out = {UpdateKind::kInsertEdge, u, v, {}};
          return true;
        }
        break;
      }
      case UpdateKind::kDeleteEdge: {
        Vertex u, v;
        if (pick_present_edge(g, rng, u, v)) {
          out = {UpdateKind::kDeleteEdge, u, v, {}};
          return true;
        }
        break;
      }
      case UpdateKind::kInsertVertex: {
        // Up to 8 random distinct neighbors (possibly zero).
        std::vector<Vertex> nbrs;
        if (g.num_vertices() > 0) {
          const std::uint64_t want = rng.below(9);
          std::unordered_set<Vertex> set;
          for (std::uint64_t t = 0; t < want * 4 && set.size() < want; ++t) {
            set.insert(random_alive(g, rng));
          }
          nbrs.assign(set.begin(), set.end());
          std::sort(nbrs.begin(), nbrs.end());
        }
        out = {UpdateKind::kInsertVertex, kNullVertex, kNullVertex, std::move(nbrs)};
        return true;
      }
      case UpdateKind::kDeleteVertex: {
        if (g.num_vertices() > 1) {
          out = {UpdateKind::kDeleteVertex, random_alive(g, rng), kNullVertex, {}};
          return true;
        }
        break;
      }
    }
    weights[kind] = 0.0;  // kind infeasible; retry among the rest
  }
  return false;
}

Vertex apply_update(Graph& g, const Update& u) {
  switch (u.kind) {
    case UpdateKind::kInsertEdge:
      g.add_edge(u.u, u.v);
      return kNullVertex;
    case UpdateKind::kDeleteEdge:
      g.remove_edge(u.u, u.v);
      return kNullVertex;
    case UpdateKind::kInsertVertex:
      return g.add_vertex(u.neighbors);
    case UpdateKind::kDeleteVertex:
      g.remove_vertex(u.u);
      return kNullVertex;
  }
  return kNullVertex;
}

}  // namespace pardfs::gen
