#include "graph/graph.hpp"

#include <algorithm>

#include "pram/parallel.hpp"
#include "pram/scan.hpp"
#include "util/check.hpp"

namespace pardfs {

void Graph::check_alive(Vertex v) const {
  PARDFS_CHECK_MSG(is_alive(v), "vertex is not alive");
}

Vertex Graph::add_vertex() {
  adjacency_.emplace_back();
  alive_.push_back(1);
  ++num_alive_;
  return static_cast<Vertex>(adjacency_.size() - 1);
}

Vertex Graph::add_vertex(std::span<const Vertex> neighbors) {
  const Vertex v = add_vertex();
  for (const Vertex u : neighbors) {
    const bool added = add_edge(u, v);
    PARDFS_CHECK_MSG(added, "duplicate neighbor in vertex insertion");
  }
  return v;
}

void Graph::remove_vertex(Vertex v) {
  check_alive(v);
  auto& nbrs = adjacency_[static_cast<std::size_t>(v)];
  // Detach from each neighbor's list.
  for (const Vertex u : nbrs) {
    auto& other = adjacency_[static_cast<std::size_t>(u)];
    other.erase(std::find(other.begin(), other.end(), v));
  }
  num_edges_ -= static_cast<std::int64_t>(nbrs.size());
  nbrs.clear();
  nbrs.shrink_to_fit();
  alive_[static_cast<std::size_t>(v)] = 0;
  --num_alive_;
}

bool Graph::add_edge(Vertex u, Vertex v) {
  check_alive(u);
  check_alive(v);
  PARDFS_CHECK_MSG(u != v, "self-loops are not supported");
  if (has_edge(u, v)) return false;
  adjacency_[static_cast<std::size_t>(u)].push_back(v);
  adjacency_[static_cast<std::size_t>(v)].push_back(u);
  ++num_edges_;
  return true;
}

bool Graph::remove_edge(Vertex u, Vertex v) {
  check_alive(u);
  check_alive(v);
  auto& au = adjacency_[static_cast<std::size_t>(u)];
  auto it = std::find(au.begin(), au.end(), v);
  if (it == au.end()) return false;
  au.erase(it);
  auto& av = adjacency_[static_cast<std::size_t>(v)];
  av.erase(std::find(av.begin(), av.end(), u));
  --num_edges_;
  return true;
}

bool Graph::has_edge(Vertex u, Vertex v) const {
  if (!is_alive(u) || !is_alive(v)) return false;
  const auto& au = adjacency_[static_cast<std::size_t>(u)];
  const auto& av = adjacency_[static_cast<std::size_t>(v)];
  // Scan the shorter list.
  const auto& shorter = au.size() <= av.size() ? au : av;
  const Vertex target = au.size() <= av.size() ? v : u;
  return std::find(shorter.begin(), shorter.end(), target) != shorter.end();
}

void Graph::pad_to(Vertex new_capacity) {
  if (new_capacity <= capacity()) return;
  adjacency_.resize(static_cast<std::size_t>(new_capacity));
  alive_.resize(static_cast<std::size_t>(new_capacity), 0);
}

void Graph::adopt_component(std::span<const Vertex> vertices,
                            std::vector<std::vector<Vertex>> rows) {
  PARDFS_CHECK_MSG(vertices.size() == rows.size(),
                   "adopt_component: vertices/rows size mismatch");
  std::vector<std::uint8_t> member(static_cast<std::size_t>(capacity()), 0);
  for (const Vertex v : vertices) {
    PARDFS_CHECK_MSG(v >= 0 && v < capacity() &&
                         alive_[static_cast<std::size_t>(v)] == 0,
                     "adopt_component: vertex alive or out of range");
    member[static_cast<std::size_t>(v)] = 1;
  }
  std::int64_t degree_sum = 0;
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    for (const Vertex w : rows[i]) {
      PARDFS_CHECK_MSG(w >= 0 && w < capacity() &&
                           member[static_cast<std::size_t>(w)] != 0,
                       "adopt_component: rows are not edge-closed");
    }
    degree_sum += static_cast<std::int64_t>(rows[i].size());
    adjacency_[static_cast<std::size_t>(vertices[i])] = std::move(rows[i]);
    alive_[static_cast<std::size_t>(vertices[i])] = 1;
  }
  num_alive_ += static_cast<Vertex>(vertices.size());
  num_edges_ += degree_sum / 2;
}

std::vector<std::vector<Vertex>> Graph::extract_component(
    std::span<const Vertex> vertices) {
  std::vector<std::uint8_t> member(static_cast<std::size_t>(capacity()), 0);
  for (const Vertex v : vertices) {
    check_alive(v);
    member[static_cast<std::size_t>(v)] = 1;
  }
  std::vector<std::vector<Vertex>> rows;
  rows.reserve(vertices.size());
  std::int64_t degree_sum = 0;
  for (const Vertex v : vertices) {
    auto& nbrs = adjacency_[static_cast<std::size_t>(v)];
    for (const Vertex w : nbrs) {
      PARDFS_CHECK_MSG(member[static_cast<std::size_t>(w)] != 0,
                       "extract_component: vertex set is not edge-closed");
    }
    degree_sum += static_cast<std::int64_t>(nbrs.size());
    rows.push_back(std::move(nbrs));
    nbrs.clear();
    nbrs.shrink_to_fit();
    alive_[static_cast<std::size_t>(v)] = 0;
  }
  num_alive_ -= static_cast<Vertex>(vertices.size());
  num_edges_ -= degree_sum / 2;
  return rows;
}

std::vector<Edge> Graph::edges() const {
  // CSR-style snapshot: parallel counting pass, exclusive scan for slots,
  // parallel fill. Each (u < v) pair lands at a fixed offset, so the output
  // order matches the old serial scan exactly.
  const std::size_t n = static_cast<std::size_t>(capacity());
  std::vector<std::uint32_t> counts(n, 0);
  pram::parallel_for_t(0, n, [&](std::size_t su) {
    if (!alive_[su]) return;
    const Vertex u = static_cast<Vertex>(su);
    std::uint32_t c = 0;
    for (const Vertex v : adjacency_[su]) c += u < v ? 1 : 0;
    counts[su] = c;
  });
  std::vector<std::uint32_t> offsets(n, 0);
  const std::uint64_t total = pram::exclusive_scan(counts, offsets);
  PARDFS_CHECK_MSG(total <= UINT32_MAX,
                   "edge-snapshot offsets are 32-bit: graph exceeds 2^32 edges");
  std::vector<Edge> out(static_cast<std::size_t>(total));
  pram::parallel_for_t(0, n, [&](std::size_t su) {
    if (!alive_[su]) return;
    const Vertex u = static_cast<Vertex>(su);
    std::size_t slot = offsets[su];
    for (const Vertex v : adjacency_[su]) {
      if (u < v) out[slot++] = {u, v};
    }
  });
  return out;
}

}  // namespace pardfs
