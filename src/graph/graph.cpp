#include "graph/graph.hpp"

#include <algorithm>

#include "pram/parallel.hpp"
#include "pram/scan.hpp"
#include "util/check.hpp"

namespace pardfs {

void Graph::check_alive(Vertex v) const {
  PARDFS_CHECK_MSG(is_alive(v), "vertex is not alive");
}

Vertex Graph::add_vertex() {
  adjacency_.emplace_back();
  alive_.push_back(1);
  ++num_alive_;
  return static_cast<Vertex>(adjacency_.size() - 1);
}

Vertex Graph::add_vertex(std::span<const Vertex> neighbors) {
  const Vertex v = add_vertex();
  for (const Vertex u : neighbors) {
    const bool added = add_edge(u, v);
    PARDFS_CHECK_MSG(added, "duplicate neighbor in vertex insertion");
  }
  return v;
}

void Graph::remove_vertex(Vertex v) {
  check_alive(v);
  auto& nbrs = adjacency_[static_cast<std::size_t>(v)];
  // Detach from each neighbor's list.
  for (const Vertex u : nbrs) {
    auto& other = adjacency_[static_cast<std::size_t>(u)];
    other.erase(std::find(other.begin(), other.end(), v));
  }
  num_edges_ -= static_cast<std::int64_t>(nbrs.size());
  nbrs.clear();
  nbrs.shrink_to_fit();
  alive_[static_cast<std::size_t>(v)] = 0;
  --num_alive_;
}

bool Graph::add_edge(Vertex u, Vertex v) {
  check_alive(u);
  check_alive(v);
  PARDFS_CHECK_MSG(u != v, "self-loops are not supported");
  if (has_edge(u, v)) return false;
  adjacency_[static_cast<std::size_t>(u)].push_back(v);
  adjacency_[static_cast<std::size_t>(v)].push_back(u);
  ++num_edges_;
  return true;
}

bool Graph::remove_edge(Vertex u, Vertex v) {
  check_alive(u);
  check_alive(v);
  auto& au = adjacency_[static_cast<std::size_t>(u)];
  auto it = std::find(au.begin(), au.end(), v);
  if (it == au.end()) return false;
  au.erase(it);
  auto& av = adjacency_[static_cast<std::size_t>(v)];
  av.erase(std::find(av.begin(), av.end(), u));
  --num_edges_;
  return true;
}

bool Graph::has_edge(Vertex u, Vertex v) const {
  if (!is_alive(u) || !is_alive(v)) return false;
  const auto& au = adjacency_[static_cast<std::size_t>(u)];
  const auto& av = adjacency_[static_cast<std::size_t>(v)];
  // Scan the shorter list.
  const auto& shorter = au.size() <= av.size() ? au : av;
  const Vertex target = au.size() <= av.size() ? v : u;
  return std::find(shorter.begin(), shorter.end(), target) != shorter.end();
}

std::vector<Edge> Graph::edges() const {
  // CSR-style snapshot: parallel counting pass, exclusive scan for slots,
  // parallel fill. Each (u < v) pair lands at a fixed offset, so the output
  // order matches the old serial scan exactly.
  const std::size_t n = static_cast<std::size_t>(capacity());
  std::vector<std::uint32_t> counts(n, 0);
  pram::parallel_for_t(0, n, [&](std::size_t su) {
    if (!alive_[su]) return;
    const Vertex u = static_cast<Vertex>(su);
    std::uint32_t c = 0;
    for (const Vertex v : adjacency_[su]) c += u < v ? 1 : 0;
    counts[su] = c;
  });
  std::vector<std::uint32_t> offsets(n, 0);
  const std::uint64_t total = pram::exclusive_scan(counts, offsets);
  PARDFS_CHECK_MSG(total <= UINT32_MAX,
                   "edge-snapshot offsets are 32-bit: graph exceeds 2^32 edges");
  std::vector<Edge> out(static_cast<std::size_t>(total));
  pram::parallel_for_t(0, n, [&](std::size_t su) {
    if (!alive_[su]) return;
    const Vertex u = static_cast<Vertex>(su);
    std::size_t slot = offsets[su];
    for (const Vertex v : adjacency_[su]) {
      if (u < v) out[slot++] = {u, v};
    }
  });
  return out;
}

}  // namespace pardfs
