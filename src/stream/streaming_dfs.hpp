// Semi-streaming fully dynamic DFS (paper Theorem 15).
//
// The algorithm keeps only the current and partially-built DFS trees in
// memory (O(n)); the graph lives in the edge stream. Every *set of
// independent queries* on D is answered by ONE pass over the stream (each
// pass keeps one partial answer per query, O(n) space for the O(n) queries
// of a set). With O(log^2 n) sets per update (Theorem 3), an update costs
// O(log^2 n) passes.
//
// Implementation note: the rerooting engine is shared with the parallel
// build; its per-round "query batch" counter is exactly the number of query
// sets, i.e. the number of passes a streaming execution performs. The
// single-pass evaluator answer_queries_one_pass() is implemented for real
// and verified equivalent to D in the test suite; the engine uses the
// in-memory oracle as an evaluation shortcut with identical results, while
// the pass ledger charges one pass per batch. See DESIGN.md §6.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/dynamic_dfs.hpp"
#include "core/reduction.hpp"
#include "stream/edge_stream.hpp"
#include "tree/tree_index.hpp"

namespace pardfs::stream {

// Answers a set of independent queries in ONE pass over the stream.
// `index` is the O(n) tree state; results[i] is the best edge for query i.
std::vector<std::optional<Edge>> answer_queries_one_pass(
    EdgeStream& stream, const TreeIndex& index, std::span<const StreamQuery> queries);

class StreamingDfs {
 public:
  // n: number of vertices. The stream holds the initial edges; the initial
  // tree is built with O(n) passes (one per tree vertex level would be the
  // trivial bound; we charge the textbook n passes for the static build,
  // which is outside the per-update claim).
  StreamingDfs(EdgeStream& stream, Vertex n);

  void apply(const GraphUpdate& update);

  std::span<const Vertex> parent() const { return dfs_.parent(); }
  const Graph& graph() const { return dfs_.graph(); }

  // Pass accounting for the LAST update: reduction passes + one pass per
  // query set of the rerooting (Theorem 15's O(log^2 n)).
  std::uint64_t passes_last_update() const { return passes_last_; }
  std::uint64_t passes_total() const { return passes_total_; }
  std::uint64_t static_build_passes() const { return static_build_passes_; }

 private:
  EdgeStream& stream_;
  DynamicDfs dfs_;
  std::uint64_t passes_last_ = 0;
  std::uint64_t passes_total_ = 0;
  std::uint64_t static_build_passes_ = 0;
};

}  // namespace pardfs::stream
