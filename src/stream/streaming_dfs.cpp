#include "stream/streaming_dfs.hpp"

#include "util/check.hpp"

namespace pardfs::stream {
namespace {

// Best-so-far update for one query given one streamed edge.
void feed(const TreeIndex& index, const StreamQuery& q, const Edge& e,
          std::optional<Edge>& best) {
  auto on_segment = [&](Vertex x) {
    return index.in_forest(x) && index.is_ancestor(q.seg_top, x) &&
           index.is_ancestor(x, q.seg_bottom);
  };
  auto in_source = [&](Vertex x) {
    if (!index.in_forest(x)) return false;
    switch (q.source_kind) {
      case StreamQuery::SourceKind::kVertex:
        return x == q.source_a;
      case StreamQuery::SourceKind::kSubtree:
        return index.is_ancestor(q.source_a, x);
      case StreamQuery::SourceKind::kSegment:
        return index.is_ancestor(q.source_a, x) && index.is_ancestor(x, q.source_b);
    }
    return false;
  };
  for (const Edge& oriented : {e, e.reversed()}) {
    if (!in_source(oriented.u) || !on_segment(oriented.v)) continue;
    if (!best) {
      best = oriented;
      continue;
    }
    const std::int32_t np = index.post(oriented.v);
    const std::int32_t bp = index.post(best->v);
    const bool wins = q.nearest_top ? (np > bp || (np == bp && oriented.u < best->u))
                                    : (np < bp || (np == bp && oriented.u < best->u));
    if (wins) best = oriented;
  }
}

}  // namespace

std::vector<std::optional<Edge>> answer_queries_one_pass(
    EdgeStream& stream, const TreeIndex& index, std::span<const StreamQuery> queries) {
  // O(1) state per query — the semi-streaming memory budget for a set of
  // O(n) independent queries is O(n).
  std::vector<std::optional<Edge>> best(queries.size());
  stream.for_each_edge([&](const Edge& e) {
    for (std::size_t i = 0; i < queries.size(); ++i) {
      feed(index, queries[i], e, best[i]);
    }
  });
  return best;
}

StreamingDfs::StreamingDfs(EdgeStream& stream, Vertex n) : stream_(stream), dfs_([&] {
  // Materialize the graph once for the static build; the textbook streaming
  // construction adds one vertex per pass, so we charge n passes.
  Graph g(n);
  stream.for_each_edge([&](const Edge& e) { g.add_edge(e.u, e.v); });
  return g;
}()) {
  static_build_passes_ = static_cast<std::uint64_t>(n);
}

void StreamingDfs::apply(const GraphUpdate& update) {
  // Keep the external stream in sync with the update.
  switch (update.kind) {
    case GraphUpdate::Kind::kInsertEdge:
      stream_.insert_edge(update.u, update.v);
      break;
    case GraphUpdate::Kind::kDeleteEdge:
      stream_.delete_edge(update.u, update.v);
      break;
    case GraphUpdate::Kind::kInsertVertex:
      break;  // edges added below once the id is known
    case GraphUpdate::Kind::kDeleteVertex:
      stream_.delete_vertex(update.u);
      break;
  }
  if (update.kind == GraphUpdate::Kind::kInsertVertex) {
    const Vertex v = dfs_.insert_vertex(update.neighbors);
    for (const Vertex u : update.neighbors) stream_.insert_edge(u, v);
  } else {
    dfs_.apply(update);
  }
  // Pass ledger: the reduction performs O(1) sets of independent queries
  // (Theorem 2) — charge 2 (its query set + the back-edge/LCA checks are
  // tree-local and free); the rerooting performs one set per counted batch
  // (Theorem 3). Each set is answerable by answer_queries_one_pass, which
  // the test suite verifies against D.
  passes_last_ = 2 + dfs_.last_stats().query_batches;
  passes_total_ += passes_last_;
}

}  // namespace pardfs::stream
