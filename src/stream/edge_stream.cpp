#include "stream/edge_stream.hpp"

#include <algorithm>

namespace pardfs::stream {

void EdgeStream::delete_edge(Vertex u, Vertex v) {
  const auto key = undirected_key(u, v);
  edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                              [key](const Edge& e) {
                                return undirected_key(e.u, e.v) == key;
                              }),
               edges_.end());
}

void EdgeStream::delete_vertex(Vertex v) {
  edges_.erase(std::remove_if(edges_.begin(), edges_.end(),
                              [v](const Edge& e) { return e.u == v || e.v == v; }),
               edges_.end());
}

}  // namespace pardfs::stream
