// Semi-streaming substrate (paper §6.1): the input graph is only accessible
// as a stream of edges; the algorithm holds O(n) working memory and pays one
// *pass* to scan the stream.
//
// EdgeStream models the external input: a sequence of edges, mutated by
// graph updates (the stream reflects the current graph), with an explicit
// pass counter. Algorithms must funnel every access through for_each_edge.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge.hpp"

namespace pardfs::stream {

class EdgeStream {
 public:
  EdgeStream() = default;
  explicit EdgeStream(std::vector<Edge> edges) : edges_(std::move(edges)) {}

  // One pass over the entire stream. Fn is a template parameter so the
  // per-edge callback inlines (a pass touches all m edges).
  template <typename Fn>
  void for_each_edge(Fn&& fn) {
    ++passes_;
    for (const Edge& e : edges_) fn(e);
  }

  std::uint64_t passes() const { return passes_; }
  void reset_pass_counter() { passes_ = 0; }
  std::size_t size() const { return edges_.size(); }

  // ---- updates (maintaining the external input; not counted as passes) ----
  void insert_edge(Vertex u, Vertex v) { edges_.push_back({u, v}); }
  void delete_edge(Vertex u, Vertex v);
  void delete_vertex(Vertex v);

 private:
  std::vector<Edge> edges_;
  std::uint64_t passes_ = 0;
};

// A single independent query against the stream: among the edges from the
// source set to the base segment, the one nearest the requested end of the
// segment (the streaming stand-in for one D query). The source set and the
// segment are described by O(1) words each plus the O(n)-space tree index.
struct StreamQuery {
  enum class SourceKind : std::uint8_t { kVertex, kSubtree, kSegment };
  SourceKind source_kind = SourceKind::kVertex;
  Vertex source_a = kNullVertex;  // vertex / subtree root / segment top
  Vertex source_b = kNullVertex;  // segment bottom (kSegment only)
  Vertex seg_top = kNullVertex;
  Vertex seg_bottom = kNullVertex;
  bool nearest_top = true;
};

}  // namespace pardfs::stream
