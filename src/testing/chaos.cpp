#include "testing/chaos.hpp"

#include <mutex>

#include "obs/metrics.hpp"
#include "util/random.hpp"

namespace pardfs::chaos {

const char* point_name(FaultPoint p) {
  switch (p) {
    case FaultPoint::kWriterCrashMidBatch: return "writer_crash_mid_batch";
    case FaultPoint::kBatchStallMs: return "batch_stall_ms";
    case FaultPoint::kMergeAbort: return "merge_abort";
    case FaultPoint::kQueueFull: return "queue_full";
    case FaultPoint::kIndexRebuildThrow: return "index_rebuild_throw";
  }
  return "unknown";
}

FaultPlan FaultPlan::random(std::uint64_t seed, std::size_t num_shards,
                            int faults, std::uint32_t horizon) {
  // Same derivation style as the fuzz harness: decorrelate the plan from the
  // graph/stream rngs that share the seed.
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
  // Weighted toward the recoverable-crash points — those exercise the full
  // journal-replay path; stalls and sheds are flavor, not the main course.
  static constexpr FaultPoint kPool[] = {
      FaultPoint::kWriterCrashMidBatch, FaultPoint::kWriterCrashMidBatch,
      FaultPoint::kIndexRebuildThrow,   FaultPoint::kIndexRebuildThrow,
      FaultPoint::kMergeAbort,          FaultPoint::kBatchStallMs,
      FaultPoint::kQueueFull,
  };
  FaultPlan plan;
  plan.specs.reserve(faults < 0 ? 0 : static_cast<std::size_t>(faults));
  for (int i = 0; i < faults; ++i) {
    FaultSpec spec;
    spec.point = kPool[rng.below(std::size(kPool))];
    spec.shard = static_cast<std::int32_t>(rng.below(num_shards == 0 ? 1 : num_shards));
    spec.at_hit = horizon == 0 ? 0 : static_cast<std::uint32_t>(rng.below(horizon));
    if (spec.point == FaultPoint::kBatchStallMs) {
      spec.param = 1 + static_cast<std::uint32_t>(rng.below(8));
    }
    plan.specs.push_back(spec);
  }
  return plan;
}

#if defined(PARDFS_ENABLE_CHAOS)

namespace {

// pardfs_faults_injected_total{point="…"} — one series per failure point,
// registered eagerly at arm() so a soak log shows zeros, not absences.
obs::Counter& injected_counter(FaultPoint p) {
  static obs::Counter* counters[kNumFaultPoints] = {};
  const auto i = static_cast<std::size_t>(p);
  if (counters[i] == nullptr) {
    std::string labels = "point=\"";
    labels += point_name(p);
    labels += "\"";
    counters[i] = &obs::Registry::global().counter(
        "pardfs_faults_injected_total", labels);
  }
  return *counters[i];
}

struct ArmedSpec {
  FaultSpec spec;
  std::uint32_t remaining = 0;  // matching consultations left before firing
  bool fired = false;
};

struct PlanState {
  std::mutex mu;
  bool armed = false;
  std::vector<ArmedSpec> specs;
  std::uint64_t injected = 0;
};

PlanState& state() {
  static PlanState s;
  return s;
}

FaultAction action_for(const FaultSpec& spec) {
  FaultAction a;
  switch (spec.point) {
    case FaultPoint::kWriterCrashMidBatch:
    case FaultPoint::kMergeAbort:
      a.kind = FaultAction::Kind::kCrash;
      break;
    case FaultPoint::kBatchStallMs:
      a.kind = FaultAction::Kind::kStall;
      a.param = spec.param;
      break;
    case FaultPoint::kQueueFull:
      a.kind = FaultAction::Kind::kShed;
      break;
    case FaultPoint::kIndexRebuildThrow:
      a.kind = FaultAction::Kind::kThrow;
      break;
  }
  return a;
}

}  // namespace

void arm(FaultPlan plan) {
  for (std::size_t i = 0; i < kNumFaultPoints; ++i) {
    injected_counter(static_cast<FaultPoint>(i));
  }
  PlanState& s = state();
  std::lock_guard lock(s.mu);
  s.specs.clear();
  s.specs.reserve(plan.specs.size());
  for (const FaultSpec& spec : plan.specs) {
    s.specs.push_back({spec, spec.at_hit, false});
  }
  s.armed = true;
  s.injected = 0;
}

void disarm() {
  PlanState& s = state();
  std::lock_guard lock(s.mu);
  s.armed = false;
  s.specs.clear();
}

bool armed() {
  PlanState& s = state();
  std::lock_guard lock(s.mu);
  return s.armed;
}

FaultAction hit(FaultPoint point, std::size_t shard) {
  PlanState& s = state();
  std::lock_guard lock(s.mu);
  if (!s.armed) return {};
  for (ArmedSpec& armed_spec : s.specs) {
    const FaultSpec& spec = armed_spec.spec;
    if (armed_spec.fired || spec.point != point) continue;
    if (spec.shard >= 0 &&
        spec.shard != static_cast<std::int32_t>(shard)) {
      continue;
    }
    if (armed_spec.remaining > 0) {
      --armed_spec.remaining;
      continue;
    }
    armed_spec.fired = true;
    ++s.injected;
    injected_counter(point).add();
    return action_for(spec);
  }
  return {};
}

std::uint64_t faults_injected() {
  PlanState& s = state();
  std::lock_guard lock(s.mu);
  return s.injected;
}

#endif  // PARDFS_ENABLE_CHAOS

}  // namespace pardfs::chaos
