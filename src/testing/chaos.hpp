// Deterministic fault injection for the serving stack (DESIGN.md §13).
//
// A seeded FaultPlan names failure points inside the service write path —
// writer crash mid-batch, a stalled batch, an aborted merge, a full queue, a
// throwing index rebuild — and schedules when each fires: the k-th time its
// hook site is consulted for a given shard. The plan is armed process-wide;
// hook sites (ShardRouter's writer/merge paths, UpdateQueue::submit) consult
// `hit()` and act on the returned FaultAction. Per-router scoping happens at
// the call sites: only routers constructed with ServiceConfig::enable_chaos
// consult the plan at all, so the un-faulted reference stack of a
// differential fuzz run shares the process without tripping faults.
//
// Twin of the PARDFS_NO_METRICS pattern: unless the build defines
// PARDFS_ENABLE_CHAOS (cmake -DPARDFS_ENABLE_CHAOS=ON), every hook collapses
// to an inline no-op returning FaultAction::kNone and the optimizer deletes
// the call sites — production binaries carry zero chaos overhead and cannot
// be made to inject faults (pinned by tests/test_chaos.cpp). FaultPlan
// construction and InjectedCrash stay available either way so tests and the
// fuzz harness compile identically.
//
// Everything is deterministic per seed: same plan + same serialized update
// stream => same faults at the same points, which is what makes a chaos fuzz
// failure replayable (`pardfs_fuzz --entry=chaos --chaos-seed=…`).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace pardfs::chaos {

enum class FaultPoint : std::uint8_t {
  kWriterCrashMidBatch,  // after the WAL records the batch, before apply
  kBatchStallMs,         // writer sleeps `param` ms before applying a batch
  kMergeAbort,           // mid merge protocol, after component migration
  kQueueFull,            // submit-side shed: the ticket acks kOverloaded
  kIndexRebuildThrow,    // after apply_batch, before the snapshot publishes
};
inline constexpr std::size_t kNumFaultPoints = 5;

// "writer_crash_mid_batch", "batch_stall_ms", "merge_abort", "queue_full",
// "index_rebuild_throw" — the names the metrics label and the CLI use.
const char* point_name(FaultPoint p);

// What an armed plan tells a hook site to do right now.
struct FaultAction {
  enum class Kind : std::uint8_t { kNone, kCrash, kStall, kShed, kThrow };
  Kind kind = Kind::kNone;
  std::uint32_t param = 0;  // stall duration in milliseconds
};

// Thrown by hook sites ordered to crash (and by the
// ShardRouter::inject_writer_failure ops hook). The supervision layer treats
// it exactly like an InvariantViolation escaping the writer: shard poisoned,
// journal-replay recovery. Defined unconditionally so call sites compile
// with chaos on or off.
class InjectedCrash : public std::runtime_error {
 public:
  explicit InjectedCrash(std::string what)
      : std::runtime_error(std::move(what)) {}
};

// One scheduled fault: fires the `at_hit`-th time (0-based) a matching hook
// site is consulted, then never again (one-shot).
struct FaultSpec {
  FaultPoint point = FaultPoint::kWriterCrashMidBatch;
  std::int32_t shard = -1;   // -1 = any shard matches
  std::uint32_t at_hit = 0;  // matching consultations to skip before firing
  std::uint32_t param = 0;   // kBatchStallMs: stall milliseconds
};

struct FaultPlan {
  std::vector<FaultSpec> specs;

  // A deterministic schedule of `faults` one-shot specs across `num_shards`
  // shards: crash/stall/merge-abort/rebuild-throw points with fire
  // positions in [0, horizon) consultations. Same seed => same plan. Specs
  // whose point is never consulted (e.g. merge_abort in a merge-free run)
  // simply never fire — a schedule is pressure, not a guarantee.
  static FaultPlan random(std::uint64_t seed, std::size_t num_shards,
                          int faults, std::uint32_t horizon);
};

#if defined(PARDFS_ENABLE_CHAOS)

// Installs `plan` as the process-wide schedule (resets all hit counters and
// the injected-fault count). disarm() removes it; hit() with no armed plan
// returns kNone.
void arm(FaultPlan plan);
void disarm();
bool armed();

// Consult the plan at a hook site. Counts one consultation for every armed
// spec matching (point, shard) and returns the action of the first spec
// whose position is reached (marking it fired), kNone otherwise.
FaultAction hit(FaultPoint point, std::size_t shard);

// Faults fired since the last arm(). Always 0 when chaos is compiled out.
std::uint64_t faults_injected();

#else

inline void arm(FaultPlan) {}
inline void disarm() {}
inline bool armed() { return false; }
inline FaultAction hit(FaultPoint, std::size_t) { return {}; }
inline std::uint64_t faults_injected() { return 0; }

#endif  // PARDFS_ENABLE_CHAOS

}  // namespace pardfs::chaos
