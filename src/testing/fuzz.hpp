// Property-based fuzz gauntlet — the adversarial correctness net over the
// whole update stack (ROADMAP "scenario diversity" item).
//
// A run is a deterministic-per-seed interleaving of random updates and
// queries over one graph family, driven through one of the two entry
// points:
//   * core    — DynamicDfs::apply_batch with combined k-update batches;
//   * service — the full DfsService writer/snapshot path (paused-writer
//               protocol, per-update drain so replay is exact);
//   * sharded — a num_shards ShardRouter in lock-step with a 1-shard
//               reference: every update applies synchronously to both, and
//               the assembled sharded forest must equal the unsharded
//               snapshot byte for byte after every batch (the shard-count
//               invariance contract of service/shard_router.hpp);
//   * chaos   — the sharded differential with a seeded fault plan armed
//               (testing/chaos.hpp): writer crashes, merge aborts, stalls
//               and admission sheds fire mid-run, every update is driven
//               through the client retry loop (workload.hpp's
//               submit_with_retry) until definitive, and after every batch
//               the recovered forest must STILL equal the un-faulted 1-shard
//               reference byte for byte — the journal-replay recovery proof
//               of DESIGN.md §13. With PARDFS_ENABLE_CHAOS compiled out the
//               plan never fires and the entry degenerates to `sharded`.
// After every batch the harness re-checks the invariants that define the
// algorithm (arXiv:1502.02481's valid-DFS-forest + total-query semantics):
//   1. tree/validation::validate_dfs_forest against a *mirror* graph the
//      generator maintains independently of the engine;
//   2. a differential check against a simple reference backend — a fresh
//      baseline/static_dfs recompute on the mirror (the à-la-1810.01726
//      "simplest possible rebuild"): both forests must induce the same
//      component partition;
//   3. sampled snapshot/tree queries (parent, reachability, LCA, depth,
//      ancestorhood, path-to-root) against brute-force walks of the parent
//      array, plus articulation/bridge answers against the
//      remove-one-vertex/edge oracle on the mirror.
// On any mismatch the result carries a replay line (`pardfs_fuzz --seed=…`)
// reproducing the failing run. A debug corruption hook (corrupt_at) flips a
// parent entry before the checks of one batch, proving end-to-end that the
// oracle actually catches corruption and the replay line is usable.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "graph/edge.hpp"

namespace pardfs::testing {

enum class FuzzFamily : std::uint8_t {
  kRandom,      // gen::random_connected, mixed updates
  kPowerLaw,    // gen::barabasi_albert, hub-heavy updates
  kGrid,        // gen::grid, bounded-degree updates
  kDynamicMap,  // service::WorkloadDriver dynamic_map obstacle churn
};

enum class FuzzEntry : std::uint8_t { kCore, kService, kSharded, kChaos };

const char* family_name(FuzzFamily f);
const char* entry_name(FuzzEntry e);
bool parse_family(std::string_view name, FuzzFamily& out);
bool parse_entry(std::string_view name, FuzzEntry& out);

struct FuzzOptions {
  std::uint64_t seed = 1;
  FuzzFamily family = FuzzFamily::kRandom;
  FuzzEntry entry = FuzzEntry::kCore;
  Vertex n = 96;               // initial graph scale
  int batches = 32;            // update batches per run
  int max_batch = 8;           // batch size drawn uniformly from [1, max_batch]
  int queries_per_batch = 24;  // sampled tree/snapshot queries per batch
  int cut_checks_per_batch = 3;  // brute-force articulation/bridge samples
  int num_threads = 0;         // engine worker-team cap (0 = facade default)
  // Shard count for the sharded/chaos entries (ignored by core/service). The
  // run drives this many shards against a 1-shard reference differentially.
  int num_shards = 4;
  // Seed of the chaos entry's fault plan (independent of `seed`, so the soak
  // can run several fault schedules over the SAME update stream). Ignored by
  // the other entries.
  std::uint64_t chaos_seed = 1;
  // Faults drawn into the chaos plan per run.
  int chaos_faults = 6;
  // Debug hook: corrupt the checked parent array before the checks of this
  // batch index (-1 = never). The run must FAIL with a replay line.
  int corrupt_at = -1;
  // Pin the SIMD dispatch (util/simd) to the scalar reference for this run.
  // The effective mode (this flag OR an ambient scalar pin already in
  // force) is captured in the replay line, so a failure replays under the
  // dispatch decision it was found under.
  bool force_scalar = false;
};

struct FuzzResult {
  bool ok = true;
  std::string failure;  // first mismatch, with batch index and detail
  std::string replay;   // "pardfs_fuzz --seed=…" line reproducing the run
  // Snapshot of the obs registry's fuzz counters at failure time
  // ("pardfs_fuzz_batches_total=… pardfs_fuzz_queries_total=…"). Replaying
  // the seed in a fresh process must reproduce these counts exactly, so a
  // replay that diverges from the original run is detectable before the
  // oracle even fires. Empty on ok runs and under PARDFS_NO_METRICS.
  std::string obs_counters;
  std::uint64_t batches = 0;
  std::uint64_t updates = 0;
  std::uint64_t queries = 0;

  explicit operator bool() const { return ok; }
};

// One deterministic run. Same options => same stream, same forests, same
// verdict, at any thread count (the engine's determinism contract).
FuzzResult run_fuzz(const FuzzOptions& options);

// The CI soak matrix: `seeds` consecutive seeds starting at seed_base, over
// every family in {random, power_law, grid, dynamic_map} and all three
// fault-free entry points (core, service, sharded) plus the chaos entry
// under kChaosSchedulesPerSeed distinct fault schedules, `batches` batches
// each. Stops at the first failure (its result is returned); otherwise
// returns an ok result with the accumulated totals.
inline constexpr int kChaosSchedulesPerSeed = 3;
FuzzResult run_soak(std::uint64_t seed_base, int seeds, int batches, Vertex n,
                    int num_threads = 0, bool force_scalar = false);

// The replay line run_fuzz/run_soak would print for `options`.
std::string replay_line(const FuzzOptions& options);

}  // namespace pardfs::testing
