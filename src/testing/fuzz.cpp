#include "testing/fuzz.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baseline/static_dfs.hpp"
#include "core/articulation.hpp"
#include "core/dynamic_dfs.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "service/dfs_service.hpp"
#include "service/workload.hpp"
#include "testing/chaos.hpp"
#include "tree/validation.hpp"
#include "util/random.hpp"
#include "util/simd.hpp"

namespace pardfs::testing {

const char* family_name(FuzzFamily f) {
  switch (f) {
    case FuzzFamily::kRandom: return "random";
    case FuzzFamily::kPowerLaw: return "power_law";
    case FuzzFamily::kGrid: return "grid";
    case FuzzFamily::kDynamicMap: return "dynamic_map";
  }
  return "unknown";
}

const char* entry_name(FuzzEntry e) {
  switch (e) {
    case FuzzEntry::kCore: return "core";
    case FuzzEntry::kService: return "service";
    case FuzzEntry::kSharded: return "sharded";
    case FuzzEntry::kChaos: return "chaos";
  }
  return "unknown";
}

bool parse_family(std::string_view name, FuzzFamily& out) {
  for (const FuzzFamily f : {FuzzFamily::kRandom, FuzzFamily::kPowerLaw,
                             FuzzFamily::kGrid, FuzzFamily::kDynamicMap}) {
    if (name == family_name(f)) {
      out = f;
      return true;
    }
  }
  return false;
}

bool parse_entry(std::string_view name, FuzzEntry& out) {
  for (const FuzzEntry e : {FuzzEntry::kCore, FuzzEntry::kService,
                            FuzzEntry::kSharded, FuzzEntry::kChaos}) {
    if (name == entry_name(e)) {
      out = e;
      return true;
    }
  }
  return false;
}

std::string replay_line(const FuzzOptions& o) {
  std::string line = "pardfs_fuzz --seed=" + std::to_string(o.seed);
  line += " --scenario=" + std::string(family_name(o.family));
  line += " --entry=" + std::string(entry_name(o.entry));
  line += " --n=" + std::to_string(o.n);
  line += " --batches=" + std::to_string(o.batches);
  line += " --max-batch=" + std::to_string(o.max_batch);
  line += " --threads=" + std::to_string(o.num_threads);
  if (o.entry == FuzzEntry::kSharded || o.entry == FuzzEntry::kChaos) {
    line += " --shards=" + std::to_string(o.num_shards);
  }
  if (o.entry == FuzzEntry::kChaos) {
    line += " --chaos-seed=" + std::to_string(o.chaos_seed);
    line += " --chaos-faults=" + std::to_string(o.chaos_faults);
  }
  if (o.corrupt_at >= 0) line += " --corrupt-at=" + std::to_string(o.corrupt_at);
  if (o.force_scalar) line += " --force-scalar";
  return line;
}

namespace {

// ---- registry mirrors of the run counters ----------------------------------
// Process-global by design: a failure snapshot of these lets a replayed seed
// (fresh process, same options) be cross-checked against the original run's
// counts before the oracle even fires.
obs::Counter& fuzz_batches_ctr() {
  static obs::Counter& c =
      obs::Registry::global().counter("pardfs_fuzz_batches_total");
  return c;
}
obs::Counter& fuzz_queries_ctr() {
  static obs::Counter& c =
      obs::Registry::global().counter("pardfs_fuzz_queries_total");
  return c;
}

std::string obs_counters_line() {
#if defined(PARDFS_NO_METRICS)
  return std::string();
#else
  return "pardfs_fuzz_batches_total=" +
         std::to_string(fuzz_batches_ctr().value()) +
         " pardfs_fuzz_queries_total=" +
         std::to_string(fuzz_queries_ctr().value());
#endif
}

// ---- brute-force reference answers (walks over the raw parent array) -------

Vertex brute_root(std::span<const Vertex> parent, Vertex v) {
  while (parent[static_cast<std::size_t>(v)] != kNullVertex) {
    v = parent[static_cast<std::size_t>(v)];
  }
  return v;
}

std::int32_t brute_depth(std::span<const Vertex> parent, Vertex v) {
  std::int32_t d = 0;
  while (parent[static_cast<std::size_t>(v)] != kNullVertex) {
    v = parent[static_cast<std::size_t>(v)];
    ++d;
  }
  return d;
}

bool brute_is_ancestor(std::span<const Vertex> parent, Vertex a, Vertex d) {
  for (Vertex x = d; x != kNullVertex; x = parent[static_cast<std::size_t>(x)]) {
    if (x == a) return true;
  }
  return false;
}

Vertex brute_lca(std::span<const Vertex> parent, Vertex u, Vertex v) {
  std::vector<std::uint8_t> mark(parent.size(), 0);
  for (Vertex x = u; x != kNullVertex; x = parent[static_cast<std::size_t>(x)]) {
    mark[static_cast<std::size_t>(x)] = 1;
  }
  for (Vertex x = v; x != kNullVertex; x = parent[static_cast<std::size_t>(x)]) {
    if (mark[static_cast<std::size_t>(x)]) return x;
  }
  return kNullVertex;
}

// Connected components of g among alive vertices, optionally pretending
// `skip` was deleted (kNullVertex = no skip). The remove-one oracle.
int count_components(const Graph& g, Vertex skip) {
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(g.capacity()), 0);
  std::vector<Vertex> stack;
  int comps = 0;
  for (Vertex s = 0; s < g.capacity(); ++s) {
    if (!g.is_alive(s) || s == skip || seen[static_cast<std::size_t>(s)]) continue;
    ++comps;
    seen[static_cast<std::size_t>(s)] = 1;
    stack.push_back(s);
    while (!stack.empty()) {
      const Vertex v = stack.back();
      stack.pop_back();
      for (const Vertex w : g.neighbors(v)) {
        if (w == skip || seen[static_cast<std::size_t>(w)]) continue;
        seen[static_cast<std::size_t>(w)] = 1;
        stack.push_back(w);
      }
    }
  }
  return comps;
}

bool brute_articulation(const Graph& g, Vertex v, int base_comps) {
  return g.degree(v) > 0 && count_components(g, v) > base_comps;
}

bool brute_bridge(const Graph& g, Vertex u, Vertex v, int base_comps) {
  Graph h = g;
  h.remove_edge(u, v);
  return count_components(h, kNullVertex) > base_comps;
}

Vertex random_alive(const Graph& g, Rng& rng) {
  if (g.num_vertices() == 0) return kNullVertex;
  for (;;) {
    const Vertex v =
        static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(g.capacity())));
    if (g.is_alive(v)) return v;
  }
}

// ---- update stream (the generator side of the interleaving) ----------------

struct GeneratedUpdate {
  GraphUpdate update;
  // For kInsertVertex: the id the mirror assigned — the engine must assign
  // the same one (ids are handed out in capacity order on both sides).
  Vertex expected_vertex = kNullVertex;
};

class UpdateStream {
 public:
  virtual ~UpdateStream() = default;
  virtual const Graph& mirror() const = 0;
  virtual bool next(GeneratedUpdate& out) = 0;
};

// Raw feasible-update mix over one mirror graph (random / power_law / grid).
// The mix rotates with the seed so the soak matrix also covers delete-heavy
// and insert-heavy streams.
class RawStream final : public UpdateStream {
 public:
  RawStream(Graph initial, Rng rng, std::uint64_t seed)
      : mirror_(std::move(initial)), rng_(rng) {
    switch (seed % 3) {
      case 0: w_ = {1.0, 1.0, 0.3, 0.2}; break;   // balanced
      case 1: w_ = {0.25, 1.0, 0.05, 0.7}; break; // delete-heavy
      default: w_ = {1.5, 0.4, 0.6, 0.1}; break;  // insert-heavy
    }
  }

  const Graph& mirror() const override { return mirror_; }

  bool next(GeneratedUpdate& out) override {
    gen::Update u;
    if (!gen::random_update(mirror_, rng_, w_[0], w_[1], w_[2], w_[3], u)) {
      return false;
    }
    out.expected_vertex = gen::apply_update(mirror_, u);
    switch (u.kind) {
      case gen::UpdateKind::kInsertEdge:
        out.update = GraphUpdate::insert_edge(u.u, u.v);
        break;
      case gen::UpdateKind::kDeleteEdge:
        out.update = GraphUpdate::delete_edge(u.u, u.v);
        break;
      case gen::UpdateKind::kInsertVertex:
        out.update = GraphUpdate::insert_vertex(std::move(u.neighbors));
        break;
      case gen::UpdateKind::kDeleteVertex:
        out.update = GraphUpdate::delete_vertex(u.u);
        break;
    }
    return true;
  }

 private:
  Graph mirror_;
  Rng rng_;
  std::array<double, 4> w_{1.0, 1.0, 0.0, 0.0};
};

// The dynamic_map obstacle-churn scenario, reusing the service's driver
// (which owns its own mirror and feasibility bookkeeping).
class MapStream final : public UpdateStream {
 public:
  explicit MapStream(service::WorkloadSpec spec) : driver_(spec) {}

  const Graph& mirror() const override { return driver_.graph(); }

  bool next(GeneratedUpdate& out) override {
    const Vertex before = driver_.graph().capacity();
    out.update = driver_.next();
    out.expected_vertex =
        out.update.kind == GraphUpdate::Kind::kInsertVertex ? before : kNullVertex;
    return true;
  }

 private:
  service::WorkloadDriver driver_;
};

std::unique_ptr<UpdateStream> make_stream(const FuzzOptions& o, Graph* initial_out) {
  Rng graph_rng(o.seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL);
  Rng stream_rng(o.seed * 0x2545F4914F6CDD1DULL + 0xA0761D6478BD642FULL);
  const Vertex n = std::max<Vertex>(o.n, 16);
  switch (o.family) {
    case FuzzFamily::kRandom: {
      Graph g = gen::random_connected(n, 2 * static_cast<std::int64_t>(n), graph_rng);
      *initial_out = g;
      return std::make_unique<RawStream>(std::move(g), stream_rng, o.seed);
    }
    case FuzzFamily::kPowerLaw: {
      Graph g = gen::barabasi_albert(n, 3, graph_rng);
      *initial_out = g;
      return std::make_unique<RawStream>(std::move(g), stream_rng, o.seed);
    }
    case FuzzFamily::kGrid: {
      Vertex rows = 2;
      while ((rows + 1) * (rows + 1) <= n) ++rows;
      const Vertex cols = std::max<Vertex>(n / rows, 2);
      Graph g = gen::grid(rows, cols);
      *initial_out = g;
      return std::make_unique<RawStream>(std::move(g), stream_rng, o.seed);
    }
    case FuzzFamily::kDynamicMap: {
      service::WorkloadSpec spec;
      spec.scenario = service::Scenario::kDynamicMap;
      spec.n = n;
      spec.seed = o.seed;
      *initial_out = service::make_initial_graph(spec);
      return std::make_unique<MapStream>(spec);
    }
  }
  return nullptr;
}

// ---- engine adapters (the system under test) -------------------------------

class Engine {
 public:
  virtual ~Engine() = default;
  // Applies one batch; false (with *err set) on an unexpected rejection.
  virtual bool apply(const std::vector<GeneratedUpdate>& batch, std::string* err) = 0;

  virtual std::vector<Vertex> parent_copy() const = 0;
  virtual Vertex num_vertices() const = 0;
  virtual std::int64_t num_edges() const = 0;

  // Queries under test. `total` says whether out-of-range / dead ids are in
  // the query contract (service snapshots) or a caller error (core).
  virtual bool total() const = 0;
  virtual Vertex q_parent(Vertex v) const = 0;
  virtual Vertex q_root(Vertex v) const = 0;
  virtual std::int32_t q_depth(Vertex v) const = 0;
  virtual bool q_ancestor(Vertex a, Vertex d) const = 0;
  virtual Vertex q_lca(Vertex u, Vertex v) const = 0;
  virtual bool q_reachable(Vertex u, Vertex v) const = 0;
  virtual std::vector<Vertex> q_path_to_root(Vertex v) const = 0;
  virtual bool q_articulation(Vertex v) const = 0;
  virtual bool q_bridge(Vertex u, Vertex v) const = 0;
  virtual std::vector<Edge> q_bridges() const = 0;
};

class CoreEngine final : public Engine {
 public:
  CoreEngine(Graph initial, int num_threads)
      : dfs_(std::move(initial), RerootStrategy::kPaper, nullptr, num_threads) {}

  bool apply(const std::vector<GeneratedUpdate>& batch, std::string* err) override {
    std::vector<GraphUpdate> updates;
    updates.reserve(batch.size());
    for (const GeneratedUpdate& g : batch) updates.push_back(g.update);
    const BatchStats stats = dfs_.apply_batch(updates);
    std::size_t next_new = 0;
    for (const GeneratedUpdate& g : batch) {
      if (g.update.kind != GraphUpdate::Kind::kInsertVertex) continue;
      const Vertex got = stats.new_vertices[next_new++];
      if (got != g.expected_vertex) {
        *err = "apply_batch assigned vertex " + std::to_string(got) +
               ", mirror assigned " + std::to_string(g.expected_vertex);
        return false;
      }
    }
    cuts_ = find_cuts(dfs_.graph(), dfs_.parent());
    return true;
  }

  std::vector<Vertex> parent_copy() const override {
    return {dfs_.parent().begin(), dfs_.parent().end()};
  }
  Vertex num_vertices() const override { return dfs_.graph().num_vertices(); }
  std::int64_t num_edges() const override { return dfs_.graph().num_edges(); }

  bool total() const override { return false; }
  Vertex q_parent(Vertex v) const override { return dfs_.parent_of(v); }
  Vertex q_root(Vertex v) const override { return dfs_.root_of(v); }
  std::int32_t q_depth(Vertex v) const override { return dfs_.tree().depth(v); }
  bool q_ancestor(Vertex a, Vertex d) const override {
    return dfs_.tree().is_ancestor(a, d);
  }
  Vertex q_lca(Vertex u, Vertex v) const override { return dfs_.tree().lca(u, v); }
  bool q_reachable(Vertex u, Vertex v) const override {
    return dfs_.root_of(u) == dfs_.root_of(v);
  }
  std::vector<Vertex> q_path_to_root(Vertex v) const override {
    std::vector<Vertex> out;
    for (Vertex x = v; x != kNullVertex; x = dfs_.parent_of(x)) out.push_back(x);
    return out;
  }
  bool q_articulation(Vertex v) const override {
    return cuts_.is_articulation[static_cast<std::size_t>(v)] != 0;
  }
  bool q_bridge(Vertex u, Vertex v) const override {
    for (const Edge& b : cuts_.bridges) {
      if ((b.u == u && b.v == v) || (b.u == v && b.v == u)) return true;
    }
    return false;
  }
  std::vector<Edge> q_bridges() const override { return cuts_.bridges; }

 private:
  DynamicDfs dfs_;
  CutStructure cuts_;  // refreshed after every batch
};

class ServiceEngine final : public Engine {
 public:
  ServiceEngine(Graph initial, const FuzzOptions& o)
      : svc_(std::move(initial), make_config(o)) {
    snap_ = svc_.snapshot();
  }
  ~ServiceEngine() override { svc_.stop(); }

  bool apply(const std::vector<GeneratedUpdate>& batch, std::string* err) override {
    // Paused-writer protocol: every update of the batch is queued before the
    // writer resumes, and max_batch=1 pins the drain to one update per
    // apply — so the sequence of apply_batch calls (and therefore the
    // resulting forest) is byte-for-byte reproducible from the seed, no
    // matter how the writer thread is scheduled.
    svc_.pause();
    std::vector<service::UpdateTicket> tickets;
    tickets.reserve(batch.size());
    for (const GeneratedUpdate& g : batch) tickets.push_back(svc_.submit(g.update));
    svc_.resume();
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      const std::uint64_t version = tickets[i].wait();
      if (version == service::UpdateTicket::kRejected) {
        *err = "service rejected feasible update " + std::to_string(i) +
               " of the batch (mirror-contract violation)";
        return false;
      }
      if (batch[i].update.kind == GraphUpdate::Kind::kInsertVertex &&
          tickets[i].assigned_vertex() != batch[i].expected_vertex) {
        *err = "service assigned vertex " +
               std::to_string(tickets[i].assigned_vertex()) + ", mirror assigned " +
               std::to_string(batch[i].expected_vertex);
        return false;
      }
    }
    svc_.pause();
    snap_ = svc_.snapshot();
    if (!snap_->serves_cuts()) {
      *err = "snapshot lost its cut structure despite serve_cuts";
      return false;
    }
    return true;
  }

  std::vector<Vertex> parent_copy() const override {
    return {snap_->parent().begin(), snap_->parent().end()};
  }
  Vertex num_vertices() const override { return snap_->num_vertices(); }
  std::int64_t num_edges() const override { return snap_->num_edges(); }

  bool total() const override { return true; }
  Vertex q_parent(Vertex v) const override { return snap_->parent_of(v); }
  Vertex q_root(Vertex v) const override { return snap_->root_of(v); }
  std::int32_t q_depth(Vertex v) const override { return snap_->depth(v); }
  bool q_ancestor(Vertex a, Vertex d) const override {
    return snap_->is_ancestor(a, d);
  }
  Vertex q_lca(Vertex u, Vertex v) const override { return snap_->lca(u, v); }
  bool q_reachable(Vertex u, Vertex v) const override {
    return snap_->reachable(u, v);
  }
  std::vector<Vertex> q_path_to_root(Vertex v) const override {
    return snap_->path_to_root(v);
  }
  bool q_articulation(Vertex v) const override { return snap_->is_articulation(v); }
  bool q_bridge(Vertex u, Vertex v) const override { return snap_->is_bridge(u, v); }
  std::vector<Edge> q_bridges() const override {
    const auto b = snap_->bridges();
    return {b.begin(), b.end()};
  }

 private:
  static service::ServiceConfig make_config(const FuzzOptions& o) {
    service::ServiceConfig config;
    config.queue_capacity = static_cast<std::size_t>(std::max(o.max_batch, 1)) + 8;
    config.max_batch = 1;  // exact per-update drains: deterministic replay
    config.num_threads = o.num_threads;
    config.start_paused = true;
    config.serve_cuts = true;
    return config;
  }

  service::DfsService svc_;
  service::SnapshotPtr snap_;
};

// The sharded/chaos differential: the router's assembled forest must equal
// the 1-shard reference snapshot byte for byte (parents, aliveness, totals,
// and every shard still serving its cut structure).
bool compare_assembled(const service::ShardRouter& router,
                       const service::SnapshotPtr& ref_snap, std::string* err) {
  const std::vector<Vertex> sharded = router.assemble_parent();
  const std::vector<std::uint8_t> alive = router.assemble_alive();
  const auto ref_parent = ref_snap->parent();
  if (sharded.size() != ref_parent.size()) {
    *err = "assembled capacity " + std::to_string(sharded.size()) +
           " differs from reference " + std::to_string(ref_parent.size());
    return false;
  }
  for (std::size_t v = 0; v < sharded.size(); ++v) {
    if (sharded[v] != ref_parent[v]) {
      *err = "parent(" + std::to_string(v) + ") = " + std::to_string(sharded[v]) +
             " at " + std::to_string(router.num_shards()) + " shards, " +
             std::to_string(ref_parent[v]) + " at 1 shard";
      return false;
    }
    const bool ref_alive = ref_snap->contains(static_cast<Vertex>(v));
    if ((alive[v] != 0) != ref_alive) {
      *err = "alive(" + std::to_string(v) + ") diverges from the reference";
      return false;
    }
  }
  if (router.num_vertices() != ref_snap->num_vertices() ||
      router.num_edges() != ref_snap->num_edges()) {
    *err = "vertex/edge totals diverge from the 1-shard reference";
    return false;
  }
  for (std::size_t s = 0; s < router.num_shards(); ++s) {
    if (!router.shard_snapshot(s)->serves_cuts()) {
      *err = "shard " + std::to_string(s) +
             " snapshot lost its cut structure despite serve_cuts";
      return false;
    }
  }
  return true;
}

// S-shard router in lock-step with a 1-shard reference. Every update applies
// synchronously to both stacks (apply order = stream order — the serialized
// regime under which the router guarantees shard-count invariance), then the
// assembled sharded forest is compared to the unsharded snapshot byte for
// byte. Queries answer through RouterView, so the directory-resolve path and
// the cross-shard totality defaults are under test too.
class ShardedEngine : public Engine {
 public:
  ShardedEngine(Graph initial, const FuzzOptions& o)
      : ShardedEngine(std::move(initial), o, /*chaos=*/false) {}
  ~ShardedEngine() override {
    router_.stop();
    ref_.stop();
  }

  bool apply(const std::vector<GeneratedUpdate>& batch, std::string* err) override {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const GeneratedUpdate& g = batch[i];
      service::UpdateTicket st = router_.submit(g.update);
      const std::uint64_t sv = st.wait();
      service::UpdateTicket rt = ref_.submit(g.update);
      const std::uint64_t rv = rt.wait();
      const bool s_rej = sv == service::UpdateTicket::kRejected;
      const bool r_rej = rv == service::UpdateTicket::kRejected;
      if (s_rej != r_rej) {
        *err = "accept/reject divergence at update " + std::to_string(i) +
               ": sharded " + (s_rej ? "rejected" : "accepted") +
               ", reference " + (r_rej ? "rejected" : "accepted");
        return false;
      }
      if (s_rej) {
        *err = "both stacks rejected feasible update " + std::to_string(i) +
               " (mirror-contract violation)";
        return false;
      }
      if (g.update.kind == GraphUpdate::Kind::kInsertVertex &&
          (st.assigned_vertex() != g.expected_vertex ||
           rt.assigned_vertex() != g.expected_vertex)) {
        *err = "vertex-id divergence: sharded assigned " +
               std::to_string(st.assigned_vertex()) + ", reference " +
               std::to_string(rt.assigned_vertex()) + ", mirror " +
               std::to_string(g.expected_vertex);
        return false;
      }
    }
    // The differential: byte-identical forests at S shards and 1 shard.
    ref_snap_ = ref_.snapshot();
    return compare_assembled(router_, ref_snap_, err);
  }

  std::vector<Vertex> parent_copy() const override {
    return router_.assemble_parent();
  }
  Vertex num_vertices() const override { return router_.num_vertices(); }
  std::int64_t num_edges() const override { return router_.num_edges(); }

  bool total() const override { return true; }
  Vertex q_parent(Vertex v) const override { return router_.view().parent_of(v); }
  Vertex q_root(Vertex v) const override { return router_.view().root_of(v); }
  std::int32_t q_depth(Vertex v) const override { return router_.view().depth(v); }
  bool q_ancestor(Vertex a, Vertex d) const override {
    return router_.view().is_ancestor(a, d);
  }
  Vertex q_lca(Vertex u, Vertex v) const override {
    return router_.view().lca(u, v);
  }
  bool q_reachable(Vertex u, Vertex v) const override {
    return router_.view().reachable(u, v);
  }
  std::vector<Vertex> q_path_to_root(Vertex v) const override {
    return router_.view().path_to_root(v);
  }
  bool q_articulation(Vertex v) const override {
    return router_.view().is_articulation(v);
  }
  bool q_bridge(Vertex u, Vertex v) const override {
    return router_.view().is_bridge(u, v);
  }
  std::vector<Edge> q_bridges() const override { return router_.view().bridges(); }

 protected:
  // `chaos` arms the router side only: the 1-shard reference stays fault-free
  // (the process-wide plan is consulted solely by chaos-enabled routers).
  ShardedEngine(Graph initial, const FuzzOptions& o, bool chaos)
      : router_(initial, make_config(o, std::max(o.num_shards, 1), chaos)),
        ref_(std::move(initial), make_config(o, 1, false)) {
    ref_snap_ = ref_.snapshot();
  }

  static service::ServiceConfig make_config(const FuzzOptions& o,
                                            int num_shards, bool chaos) {
    service::ServiceConfig config;
    config.queue_capacity = static_cast<std::size_t>(std::max(o.max_batch, 1)) + 8;
    config.max_batch = 1;
    config.num_threads = o.num_threads;
    config.serve_cuts = true;
    config.num_shards = static_cast<std::size_t>(num_shards);
    if (chaos) {
      config.enable_chaos = true;
      // A fast watchdog keeps crash-to-failover latency (and therefore the
      // retry loop) far below the harness's retry budget.
      config.watchdog_poll_ms = 1;
    }
    return config;
  }

  service::ShardRouter router_;
  service::DfsService ref_;
  service::SnapshotPtr ref_snap_;
};

// The sharded differential under fire (FuzzEntry::kChaos): a fault plan
// seeded from chaos_seed is armed for the run, every update is driven
// through the canonical client retry loop (service/workload.hpp
// submit_with_retry — resubmit on kRetryable/kOverloaded, re-wait on
// kTimeout) until definitive, and after every batch the recovered S-shard
// forest must STILL match the un-faulted 1-shard reference byte for byte:
// the journal-replay recovery proof of DESIGN.md §13. With
// PARDFS_ENABLE_CHAOS compiled out arm() is a no-op and this is exactly the
// sharded entry.
class ChaosEngine final : public ShardedEngine {
 public:
  ChaosEngine(Graph initial, const FuzzOptions& o)
      : ShardedEngine(std::move(initial), o, /*chaos=*/true) {
    const int shards = std::max(o.num_shards, 1);
    // Horizon ~ expected updates per shard, so the drawn trigger offsets
    // land inside the run instead of all past its end.
    const int horizon = std::max(
        o.batches * std::max(o.max_batch, 1) / (2 * shards), 4);
    chaos::arm(chaos::FaultPlan::random(o.chaos_seed,
                                        static_cast<std::size_t>(shards),
                                        o.chaos_faults,
                                        static_cast<std::uint32_t>(horizon)));
  }
  ~ChaosEngine() override {
    // Disarm before the base stops the routers: shutdown drains should not
    // trip leftover faults (they would still recover, but the run is over).
    chaos::disarm();
  }

  bool apply(const std::vector<GeneratedUpdate>& batch, std::string* err) override {
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const GeneratedUpdate& g = batch[i];
      // Generous budget: ~20 s of 50 ms waits. Only a genuinely wedged
      // recovery (the bug this entry hunts) exhausts it.
      service::RetryPolicy policy;
      policy.max_attempts = 400;
      policy.ack_timeout = std::chrono::milliseconds(50);
      policy.initial_backoff = std::chrono::microseconds(50);
      policy.max_backoff = std::chrono::milliseconds(2);
      const service::SubmitOutcome out =
          service::submit_with_retry(router_, g.update, policy);
      if (!out.definitive()) {
        *err = "update " + std::to_string(i) + " never became definitive (" +
               std::to_string(out.attempts) + " attempts, last status " +
               service::UpdateTicket::status_name(out.result) +
               ") — recovery wedged";
        return false;
      }
      service::UpdateTicket rt = ref_.submit(g.update);
      const std::uint64_t rv = rt.wait();
      const bool s_rej = out.result == service::UpdateTicket::kRejected;
      const bool r_rej = rv == service::UpdateTicket::kRejected;
      if (s_rej != r_rej) {
        *err = "accept/reject divergence at update " + std::to_string(i) +
               ": chaos stack " + (s_rej ? "rejected" : "accepted") +
               ", reference " + (r_rej ? "rejected" : "accepted");
        return false;
      }
      if (s_rej) {
        *err = "both stacks rejected feasible update " + std::to_string(i) +
               " (mirror-contract violation)";
        return false;
      }
      if (g.update.kind == GraphUpdate::Kind::kInsertVertex &&
          (out.assigned_vertex != g.expected_vertex ||
           rt.assigned_vertex() != g.expected_vertex)) {
        *err = "vertex-id divergence after recovery: chaos stack assigned " +
               std::to_string(out.assigned_vertex) + ", reference " +
               std::to_string(rt.assigned_vertex()) + ", mirror " +
               std::to_string(g.expected_vertex);
        return false;
      }
    }
    // The recovery differential: whatever crashed and replayed this batch,
    // the assembled forest must equal the never-faulted reference.
    ref_snap_ = ref_.snapshot();
    return compare_assembled(router_, ref_snap_, err);
  }
};

// ---- the per-batch oracle --------------------------------------------------

// Flips one parent entry so the forest stops being a DFS forest — the debug
// corruption the harness must catch (acceptance: usable replay line).
void inject_corruption(const Graph& mirror, std::vector<Vertex>& parent) {
  for (Vertex v = 0; v < mirror.capacity(); ++v) {
    const Vertex p = parent[static_cast<std::size_t>(v)];
    if (mirror.is_alive(v) && p != kNullVertex) {
      parent[static_cast<std::size_t>(p)] = v;  // two-cycle v <-> p
      return;
    }
  }
  for (Vertex v = 0; v < mirror.capacity(); ++v) {
    if (mirror.is_alive(v)) {
      parent[static_cast<std::size_t>(v)] = v;  // self-loop "tree edge"
      return;
    }
  }
}

struct BatchCheckContext {
  const FuzzOptions& options;
  int batch_index;
  const Graph& mirror;
  const Engine& engine;
  Rng& rng;
  FuzzResult& result;

  bool fail(const std::string& what) const {
    result.ok = false;
    result.failure = "batch " + std::to_string(batch_index) + " [" +
                     family_name(options.family) + "/" +
                     entry_name(options.entry) + "]: " + what;
    result.replay = replay_line(options);
    result.obs_counters = obs_counters_line();
    return false;
  }
};

bool check_batch(BatchCheckContext ctx) {
  const Graph& mirror = ctx.mirror;
  const Engine& eng = ctx.engine;
  std::vector<Vertex> parent = eng.parent_copy();
  if (ctx.options.corrupt_at == ctx.batch_index) {
    inject_corruption(mirror, parent);
  }

  // 1. The engine's graph state must not have drifted from the mirror.
  if (static_cast<Vertex>(parent.size()) != mirror.capacity()) {
    return ctx.fail("capacity drift: engine " + std::to_string(parent.size()) +
                    " vs mirror " + std::to_string(mirror.capacity()));
  }
  if (eng.num_vertices() != mirror.num_vertices()) {
    return ctx.fail("vertex-count drift: engine " +
                    std::to_string(eng.num_vertices()) + " vs mirror " +
                    std::to_string(mirror.num_vertices()));
  }
  if (eng.num_edges() != mirror.num_edges()) {
    return ctx.fail("edge-count drift: engine " + std::to_string(eng.num_edges()) +
                    " vs mirror " + std::to_string(mirror.num_edges()));
  }

  // 2. The maintained forest must be a valid DFS forest of the mirror.
  const ValidationResult val = validate_dfs_forest(mirror, parent);
  if (!val.ok) return ctx.fail("forest invalid: " + val.reason);

  // 3. Differential vs the reference backend: a fresh static recompute must
  //    induce the same component partition (reachability equivalence).
  const std::vector<Vertex> ref = static_dfs(mirror);
  std::vector<Vertex> eng_root(parent.size(), kNullVertex);
  std::vector<Vertex> ref_root(parent.size(), kNullVertex);
  std::vector<Vertex> eng_to_ref(parent.size(), kNullVertex);
  std::vector<Vertex> ref_to_eng(parent.size(), kNullVertex);
  for (Vertex v = 0; v < mirror.capacity(); ++v) {
    if (!mirror.is_alive(v)) continue;
    const std::size_t i = static_cast<std::size_t>(v);
    eng_root[i] = brute_root(parent, v);
    ref_root[i] = brute_root(ref, v);
    Vertex& fwd = eng_to_ref[static_cast<std::size_t>(eng_root[i])];
    Vertex& bwd = ref_to_eng[static_cast<std::size_t>(ref_root[i])];
    if (fwd == kNullVertex) fwd = ref_root[i];
    if (bwd == kNullVertex) bwd = eng_root[i];
    if (fwd != ref_root[i] || bwd != eng_root[i]) {
      return ctx.fail("reachability differs from static_dfs reference at vertex " +
                      std::to_string(v));
    }
  }

  // 4. Sampled queries against brute-force walks of the engine's own parent
  //    array (and the reference partition for reachability).
  const Vertex cap = mirror.capacity();
  for (int q = 0; q < ctx.options.queries_per_batch; ++q) {
    ++ctx.result.queries;
    fuzz_queries_ctr().add();
    if (eng.total() && ctx.rng.coin(0.15)) {
      // Totality probes: ids outside the graph (or dead) must answer the
      // benign defaults, never abort the server.
      const Vertex bad = ctx.rng.coin(0.5)
                             ? static_cast<Vertex>(cap + ctx.rng.below(4))
                             : static_cast<Vertex>(-1 - ctx.rng.below(2));
      if (eng.q_parent(bad) != kNullVertex || eng.q_root(bad) != kNullVertex ||
          eng.q_depth(bad) != -1 || eng.q_lca(bad, 0) != kNullVertex ||
          eng.q_reachable(bad, bad) || eng.q_articulation(bad) ||
          !eng.q_path_to_root(bad).empty()) {
        return ctx.fail("non-total answer for invalid id " + std::to_string(bad));
      }
      continue;
    }
    const Vertex u = random_alive(mirror, ctx.rng);
    const Vertex v = random_alive(mirror, ctx.rng);
    if (u == kNullVertex || v == kNullVertex) break;
    const std::size_t ui = static_cast<std::size_t>(u);
    if (eng.q_parent(u) != parent[ui]) {
      return ctx.fail("parent(" + std::to_string(u) + ") = " +
                      std::to_string(eng.q_parent(u)) + ", parent array says " +
                      std::to_string(parent[ui]));
    }
    if (eng.q_root(u) != eng_root[ui]) {
      return ctx.fail("root_of(" + std::to_string(u) + ") = " +
                      std::to_string(eng.q_root(u)) + ", brute walk says " +
                      std::to_string(eng_root[ui]));
    }
    if (eng.q_depth(u) != brute_depth(parent, u)) {
      return ctx.fail("depth(" + std::to_string(u) + ") = " +
                      std::to_string(eng.q_depth(u)) + ", brute walk says " +
                      std::to_string(brute_depth(parent, u)));
    }
    if (eng.q_ancestor(u, v) != brute_is_ancestor(parent, u, v)) {
      return ctx.fail("is_ancestor(" + std::to_string(u) + ", " +
                      std::to_string(v) + ") disagrees with brute walk");
    }
    if (eng.q_lca(u, v) != brute_lca(parent, u, v)) {
      return ctx.fail("lca(" + std::to_string(u) + ", " + std::to_string(v) +
                      ") = " + std::to_string(eng.q_lca(u, v)) +
                      ", brute walk says " +
                      std::to_string(brute_lca(parent, u, v)));
    }
    const bool ref_reach = ref_root[ui] == ref_root[static_cast<std::size_t>(v)];
    if (eng.q_reachable(u, v) != ref_reach) {
      return ctx.fail("reachable(" + std::to_string(u) + ", " + std::to_string(v) +
                      ") disagrees with the static_dfs reference");
    }
    const std::vector<Vertex> path = eng.q_path_to_root(u);
    if (path.empty() || path.front() != u || path.back() != eng_root[ui] ||
        static_cast<std::int32_t>(path.size()) != brute_depth(parent, u) + 1) {
      return ctx.fail("path_to_root(" + std::to_string(u) + ") malformed");
    }
  }

  // 5. Articulation / bridge answers vs the remove-one oracle on the mirror.
  const int base_comps = count_components(mirror, kNullVertex);
  for (int q = 0; q < ctx.options.cut_checks_per_batch; ++q) {
    ++ctx.result.queries;
    fuzz_queries_ctr().add();
    const Vertex v = random_alive(mirror, ctx.rng);
    if (v == kNullVertex) break;
    if (eng.q_articulation(v) != brute_articulation(mirror, v, base_comps)) {
      return ctx.fail("is_articulation(" + std::to_string(v) +
                      ") disagrees with the remove-one-vertex oracle");
    }
    if (mirror.degree(v) > 0) {
      const auto nbrs = mirror.neighbors(v);
      const Vertex w = nbrs[ctx.rng.below(nbrs.size())];
      if (eng.q_bridge(v, w) != brute_bridge(mirror, v, w, base_comps)) {
        return ctx.fail("is_bridge(" + std::to_string(v) + ", " +
                        std::to_string(w) +
                        ") disagrees with the remove-one-edge oracle");
      }
    }
  }
  // Every claimed bridge must be a tree edge of the engine's forest.
  for (const Edge& b : eng.q_bridges()) {
    const Vertex pu = parent[static_cast<std::size_t>(b.u)];
    const Vertex pv = parent[static_cast<std::size_t>(b.v)];
    if (pu != b.v && pv != b.u) {
      return ctx.fail("claimed bridge (" + std::to_string(b.u) + ", " +
                      std::to_string(b.v) + ") is not a tree edge");
    }
  }
  return true;
}

}  // namespace

FuzzResult run_fuzz(const FuzzOptions& options_in) {
  // Fold the ambient scalar pin (env var or an enclosing set_force_scalar)
  // into the recorded options: the replay line must reproduce the dispatch
  // decision the run actually executed under.
  FuzzOptions options = options_in;
  options.force_scalar = options.force_scalar || simd::scalar_forced();
  // Pin for the run, restore the previous state on every exit path.
  struct ScalarGuard {
    bool prev;
    explicit ScalarGuard(bool on) : prev(simd::scalar_forced()) {
      if (on) simd::set_force_scalar(true);
    }
    ~ScalarGuard() { simd::set_force_scalar(prev); }
  } scalar_guard(options.force_scalar);

  FuzzResult result;
  Graph initial;
  const std::unique_ptr<UpdateStream> stream = make_stream(options, &initial);

  std::unique_ptr<Engine> engine;
  if (options.entry == FuzzEntry::kCore) {
    engine = std::make_unique<CoreEngine>(std::move(initial), options.num_threads);
  } else if (options.entry == FuzzEntry::kService) {
    engine = std::make_unique<ServiceEngine>(std::move(initial), options);
  } else if (options.entry == FuzzEntry::kChaos) {
    engine = std::make_unique<ChaosEngine>(std::move(initial), options);
  } else {
    engine = std::make_unique<ShardedEngine>(std::move(initial), options);
  }

  // Batch sizes and query samples come from their own deterministic stream,
  // independent of the update generator's.
  Rng harness_rng(options.seed * 0x8CB92BA72F3D8DD7ULL + 0xEB44ACCAB455D165ULL);

  std::vector<GeneratedUpdate> batch;
  for (int b = 0; b < options.batches; ++b) {
    const int k = 1 + static_cast<int>(harness_rng.below(
                          static_cast<std::uint64_t>(std::max(options.max_batch, 1))));
    batch.clear();
    GeneratedUpdate g;
    for (int i = 0; i < k && stream->next(g); ++i) batch.push_back(std::move(g));
    if (batch.empty()) break;  // stream exhausted (degenerate mixes)

    std::string err;
    if (!engine->apply(batch, &err)) {
      BatchCheckContext{options, b, stream->mirror(), *engine, harness_rng, result}
          .fail(err);
      return result;
    }
    result.updates += batch.size();
    ++result.batches;
    fuzz_batches_ctr().add();

    if (!check_batch({options, b, stream->mirror(), *engine, harness_rng, result})) {
      return result;
    }
  }
  return result;
}

FuzzResult run_soak(std::uint64_t seed_base, int seeds, int batches, Vertex n,
                    int num_threads, bool force_scalar) {
  FuzzResult total;
  // Returns false at the first failing run (stashing it, totals folded in).
  const auto run_one = [&](const FuzzOptions& o) -> bool {
    FuzzResult r = run_fuzz(o);
    if (!r.ok) {
      r.batches += total.batches;
      r.updates += total.updates;
      r.queries += total.queries;
      total = std::move(r);
      return false;
    }
    total.batches += r.batches;
    total.updates += r.updates;
    total.queries += r.queries;
    return true;
  };
  for (int s = 0; s < seeds; ++s) {
    for (const FuzzFamily family :
         {FuzzFamily::kRandom, FuzzFamily::kPowerLaw, FuzzFamily::kGrid,
          FuzzFamily::kDynamicMap}) {
      FuzzOptions o;
      o.seed = seed_base + static_cast<std::uint64_t>(s);
      o.family = family;
      o.n = n;
      o.batches = batches;
      o.num_threads = num_threads;
      o.force_scalar = force_scalar;
      for (const FuzzEntry entry : {FuzzEntry::kCore, FuzzEntry::kService,
                                    FuzzEntry::kSharded}) {
        o.entry = entry;
        if (!run_one(o)) return total;
      }
      // The chaos leg: the SAME update stream under several distinct fault
      // schedules (ISSUE acceptance: >= 3 per seed, every graph family).
      o.entry = FuzzEntry::kChaos;
      for (int c = 0; c < kChaosSchedulesPerSeed; ++c) {
        o.chaos_seed = o.seed * kChaosSchedulesPerSeed +
                       static_cast<std::uint64_t>(c) + 1;
        if (!run_one(o)) return total;
      }
    }
  }
  return total;
}

}  // namespace pardfs::testing
