#include "core/rerooter.hpp"

#include <algorithm>
#include <iterator>
#include <memory>
#include <numeric>

#include "core/rerooter_internal.hpp"
#include "obs/trace.hpp"
#include "pram/parallel.hpp"
#include "util/check.hpp"

namespace pardfs {

void RerootStats::accumulate(const RerootStats& other) {
  global_rounds += other.global_rounds;
  query_batches += other.query_batches;
  components_processed += other.components_processed;
  vertices_traversed += other.vertices_traversed;
  disintegrating += other.disintegrating;
  path_halving += other.path_halving;
  disconnecting += other.disconnecting;
  heavy_l += other.heavy_l;
  heavy_p += other.heavy_p;
  heavy_r += other.heavy_r;
  heavy_special += other.heavy_special;
  fallbacks += other.fallbacks;
  serial_finishes += other.serial_finishes;
  max_phase = std::max(max_phase, other.max_phase);
}

namespace detail {

std::vector<Run> split_runs(const TreeIndex& cur, const std::vector<Vertex>& chain) {
  std::vector<Run> runs;
  const std::size_t n = chain.size();
  std::size_t start = 0;
  int direction = 0;  // +1 down (next is child), -1 up, 0 unknown
  for (std::size_t i = 1; i < n; ++i) {
    const Vertex a = chain[i - 1];
    const Vertex b = chain[i];
    int step = 0;
    if (cur.parent(b) == a) {
      step = +1;
    } else if (cur.parent(a) == b) {
      step = -1;
    }  // else: back-edge jump (step stays 0)
    // Run boundary: a jump or a bend. Either way the new run starts at b
    // with an unknown direction — a bend keeps walking in the tree, but its
    // direction is only established by the new run's own second vertex.
    if (step == 0 || (direction != 0 && step != direction)) {
      runs.push_back({start, i - 1});
      start = i;
      direction = 0;
    } else {
      direction = step;
    }
  }
  runs.push_back({start, n - 1});
  return runs;
}

ChainHit best_edge_to_chain(EngineCtx& ctx, std::span<const Piece> pieces,
                            const std::vector<Vertex>& chain,
                            const std::vector<Run>& runs) {
  ChainHit best;
  // Runs partition the chain into disjoint, increasing position ranges, so
  // ANY hit in a later run beats every hit in an earlier one. Scanning runs
  // in descending position with an early exit returns the same winner as the
  // full pieces × runs sweep while skipping most of it — components attach
  // near the retreat end, so the last run usually decides.
  for (auto rit = runs.rbegin(); rit != runs.rend(); ++rit) {
    const Run& run = *rit;
    for (const Piece& piece : pieces) {
      // Prefer endpoints nearest the run's late end (largest chain position).
      const auto hit =
          ctx.view().query_piece(piece, chain[run.last], chain[run.first]);
      if (!hit) continue;
      const std::int32_t pos = ctx.chain_pos(hit->v);
      PARDFS_CHECK_MSG(pos >= 0, "query returned an endpoint off the chain");
      // Total order (pos desc, u asc, v asc): the winner must never depend
      // on piece-iteration order now that components step in parallel and
      // feed merged component lists back into the next round. On a simple
      // chain pos already determines v, so the v term is pure defense — it
      // keeps the order total even if a traversal ever emitted a repeated
      // vertex.
      if (pos > best.pos ||
          (pos == best.pos &&
           (hit->u < best.edge.u ||
            (hit->u == best.edge.u && hit->v < best.edge.v)))) {
        best = {*hit, pos};
      }
    }
    if (best.valid()) break;
  }
  // Batch accounting happens at the call sites: queries for different
  // groups are independent (disjoint sources) and share one set per run.
  return best;
}

namespace {

std::int32_t piece_size(const TreeIndex& cur, const Piece& p) {
  if (p.kind == PieceKind::kSubtree) return cur.size(p.root);
  return cur.depth(p.bottom) - cur.depth(p.top) + 1;
}

std::int32_t component_size(const TreeIndex& cur, const Component& comp) {
  std::int32_t total = 0;
  for (const Piece& p : comp.pieces) total += piece_size(cur, p);
  return total;
}

// Brent-style completion of a sub-cutoff component: one processor performs a
// plain DFS of the component's induced subgraph from its entry. Any DFS of
// the component is a valid completion (components property: external edges
// lead to T* ancestors of the entry), the oracle's patched adjacency IS the
// current graph's, and the neighbor order is fixed — so the result is
// deterministic and thread-count independent. No query batches are issued.
// With `graph`, neighbors enumerate in adjacency-row order — a pure function
// of the component's update history, identical across engines with different
// rebase histories (see the cutoff comment in rerooter.hpp).
void serial_finish(detail::EngineCtx& ctx, const Component& comp,
                   std::span<Vertex> parent_out, const Graph* graph) {
  const TreeIndex& cur = ctx.cur();
  const AdjacencyOracle& oracle = ctx.view().oracle();
  // Membership marks: the DFS must not escape the component.
  ctx.begin_mark();
  std::size_t total = 0;
  for (const Piece& p : comp.pieces) {
    if (p.kind == PieceKind::kSubtree) {
      const auto span = cur.subtree_span(p.root);
      for (const Vertex v : span) ctx.mark(v);
      total += span.size();
    } else {
      for (Vertex v = p.bottom;; v = cur.parent(v)) {
        ctx.mark(v);
        ++total;
        if (v == p.top) break;
      }
    }
  }
  // Graph neighbors can be vertices inserted after the current index was
  // built (ids at or beyond its capacity); they are never component members,
  // and their mark slots do not exist.
  const Vertex cap = cur.capacity();
  ctx.begin_visit();
  auto& stack = ctx.dfs_scratch();
  stack.clear();
  parent_out[static_cast<std::size_t>(comp.entry)] = comp.attach_parent;
  ctx.visit(comp.entry);
  stack.push_back({comp.entry, 0, 0});
  std::size_t visited = 1;
  while (!stack.empty()) {
    auto& frame = stack.back();
    const Vertex v = frame.v;
    Vertex child = kNullVertex;
    if (graph != nullptr) {
      // Row entries are the live current edges by construction — no
      // edge_alive filter needed, only the index-capacity guard.
      const auto row = graph->neighbors(v);
      while (frame.base_i < row.size()) {
        const Vertex z = row[frame.base_i++];
        if (z < cap && ctx.marked(z) && !ctx.visited(z)) {
          child = z;
          break;
        }
      }
    } else {
      const auto base = oracle.base_neighbor_list(v);
      while (frame.base_i < base.size()) {
        const Vertex z = base[frame.base_i++];
        if (z < cap && ctx.marked(z) && !ctx.visited(z) && oracle.edge_alive(v, z)) {
          child = z;
          break;
        }
      }
      if (child == kNullVertex) {
        const auto extras = oracle.extra_neighbor_list(v);
        while (frame.extra_i < extras.size()) {
          const Vertex z = extras[frame.extra_i++];
          if (z < cap && ctx.marked(z) && !ctx.visited(z) && oracle.edge_alive(v, z)) {
            child = z;
            break;
          }
        }
      }
    }
    if (child != kNullVertex) {
      parent_out[static_cast<std::size_t>(child)] = v;
      ctx.visit(child);
      ++visited;
      stack.push_back({child, 0, 0});
    } else {
      stack.pop_back();
    }
  }
  PARDFS_CHECK_MSG(visited == total, "serial finish: component not connected");
  ctx.stats().vertices_traversed += total;
  ++ctx.stats().serial_finishes;
}

// Union-find over piece indices (tiny, path-halving only).
class MiniUf {
 public:
  explicit MiniUf(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

// Applies a planned traversal: writes T* parents along the chain, groups the
// leftover pieces into components (edge-connected sets), and assigns each
// new component its entry via the components property (the edge to the chain
// that the DFS retreat meets first).
void finish_traversal(detail::EngineCtx& ctx, const Component& comp,
                      detail::TraversalPlan&& plan, std::span<Vertex> parent_out,
                      std::vector<Component>& next) {
  const TreeIndex& cur = ctx.cur();
  PARDFS_CHECK(!plan.pstar.empty());
  PARDFS_CHECK(plan.pstar.front() == comp.entry);

  Vertex prev = comp.attach_parent;
  for (const Vertex v : plan.pstar) {
    parent_out[static_cast<std::size_t>(v)] = prev;
    prev = v;
  }
  ctx.stats().vertices_traversed += plan.pstar.size();
  if (plan.leftovers.empty()) return;

  const std::vector<detail::Run> runs = detail::split_runs(cur, plan.pstar);
  ctx.index_chain(plan.pstar);

  // Group leftover pieces: only (subtree|path) <-> path edges can exist
  // (subtree-subtree edges would be cross edges of the current DFS tree).
  // The PRAM formulation is one batch of pairwise piece-to-path queries;
  // serially the same partition comes out of one sweep over the path
  // pieces' adjacency (the oracle's patched lists ARE the current graph):
  // map every neighbor of a path vertex back to its containing piece —
  // path pieces by a stamped vertex map, subtree pieces by binary search
  // over their disjoint pre-order intervals — and union the pair. The
  // union-find partition, and with it the emitted component order, is
  // edge-set determined, so the result is identical to the pairwise-query
  // sweep at a fraction of the probes.
  const std::size_t k = plan.leftovers.size();
  std::vector<std::size_t> path_idx;
  for (std::size_t i = 0; i < k; ++i) {
    if (plan.leftovers[i].kind == PieceKind::kPath) path_idx.push_back(i);
  }

  // Vertex -> containing leftover piece, as a stamped O(1) map: the walks
  // below touch every neighbor of every chain/path vertex, so the lookup
  // must be loads, not searches. Stamping costs O(total leftover size) —
  // the same order as the leftovers' own construction.
  ctx.begin_piece_map();
  for (std::size_t i = 0; i < k; ++i) {
    const Piece& p = plan.leftovers[i];
    if (p.kind == PieceKind::kSubtree) {
      for (const Vertex v : cur.subtree_span(p.root)) {
        ctx.map_piece(v, static_cast<std::int32_t>(i));
      }
    } else {
      for (Vertex v = p.bottom;; v = cur.parent(v)) {
        ctx.map_piece(v, static_cast<std::int32_t>(i));
        if (v == p.top) break;
      }
    }
  }
  const AdjacencyOracle& oracle = ctx.view().oracle();
  const Vertex cap = cur.capacity();
  const auto piece_of = [&](Vertex z) -> std::int32_t {
    if (z < 0 || z >= cap) return -1;
    return ctx.piece_at(z);
  };

  MiniUf uf(k);
  if (!path_idx.empty()) {
    for (const std::size_t p : path_idx) {
      const Piece& pp = plan.leftovers[p];
      for (Vertex v = pp.bottom;; v = cur.parent(v)) {
        // The next chain vertex's adjacency row is a dependent pointer chase
        // away; issue its prefetch before sweeping v's row.
        if (v != pp.top) oracle.prefetch_adjacency(cur.parent(v));
        oracle.for_each_current_neighbor(v, [&](Vertex z) {
          const std::int32_t j = piece_of(z);
          if (j >= 0 && j != static_cast<std::int32_t>(p)) {
            uf.unite(static_cast<std::size_t>(p), static_cast<std::size_t>(j));
          }
        });
        if (v == pp.top) break;
      }
    }
    ctx.count_batch();  // grouping = one logical set of independent queries
  }

  // Gather groups and each piece's group id.
  std::vector<std::vector<std::size_t>> groups;
  std::vector<std::int32_t> group_of_piece(k, -1);
  {
    std::vector<std::int32_t> group_of(k, -1);
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t r = uf.find(i);
      if (group_of[r] < 0) {
        group_of[r] = static_cast<std::int32_t>(groups.size());
        groups.emplace_back();
      }
      group_of_piece[i] = group_of[r];
      groups[static_cast<std::size_t>(group_of[r])].push_back(i);
    }
  }

  // Attachment edges. The PRAM formulation issues, per run of p*, one set of
  // independent queries (all groups are sourced from disjoint pieces) and
  // keeps, per group, the hit of largest chain position — ties broken by
  // (u asc, v asc). One serial walk of p* from its late end computes the
  // same winners for EVERY group at once: the first chain vertex q with an
  // edge into a group fixes that group's position (q), and the smallest
  // piece-side endpoint among q's edges into the group is the paper's
  // tie-break. The oracle's patched adjacency lists are exactly the current
  // graph, so the edge universe is identical to the query sweep's.
  for (std::size_t b = 0; b < runs.size(); ++b) ctx.count_batch();
  struct GroupAttach {
    Vertex entry = kNullVertex;   // u: piece-side endpoint
    Vertex attach = kNullVertex;  // v = q on p*
    std::int32_t entry_piece = -1;
  };
  std::vector<GroupAttach> attach(groups.size());
  std::size_t unattached = groups.size();
  for (std::size_t idx = plan.pstar.size(); idx-- > 0 && unattached > 0;) {
    const Vertex q = plan.pstar[idx];
    // p* is materialized, so the walk's next row is known: warm it while
    // this row's stamped piece lookups execute.
    if (idx > 0) oracle.prefetch_adjacency(plan.pstar[idx - 1]);
    oracle.for_each_current_neighbor(q, [&](Vertex z) {
      const std::int32_t j = piece_of(z);
      if (j < 0) return;
      GroupAttach& a = attach[static_cast<std::size_t>(group_of_piece[j])];
      if (a.attach == q) {
        if (z < a.entry) {
          a.entry = z;
          a.entry_piece = j;
        }
      } else if (a.attach == kNullVertex) {
        a = {z, q, j};
        --unattached;
      }
    });
  }

  for (std::size_t gi = 0; gi < groups.size(); ++gi) {
    const GroupAttach& a = attach[gi];
    PARDFS_CHECK_MSG(a.attach != kNullVertex,
                     "leftover component has no edge to p*");
    Component nc;
    nc.entry = a.entry;
    nc.attach_parent = a.attach;
    nc.budget = comp.budget;
    nc.pieces.reserve(groups[gi].size());
    nc.entry_piece = -1;
    for (const std::size_t i : groups[gi]) {
      if (static_cast<std::int32_t>(i) == a.entry_piece) {
        nc.entry_piece = static_cast<std::int32_t>(nc.pieces.size());
      }
      nc.pieces.push_back(plan.leftovers[i]);
    }
    PARDFS_CHECK_MSG(nc.entry_piece >= 0, "entry vertex not inside any piece");
    next.push_back(std::move(nc));
  }
}

}  // namespace
}  // namespace detail

Rerooter::Rerooter(const TreeIndex& current, const OracleView& view,
                   RerootStrategy strategy, pram::CostModel* cost,
                   int num_threads, std::int32_t serial_cutoff,
                   const Graph* graph)
    : cur_(current),
      view_(view),
      strategy_(strategy),
      cost_(cost),
      num_threads_(num_threads),
      serial_cutoff_(serial_cutoff),
      graph_(graph) {}

std::int32_t Rerooter::default_serial_cutoff(Vertex capacity) {
  const std::uint64_t n = static_cast<std::uint64_t>(capacity);
  const std::uint64_t logn = n > 1 ? 64 - __builtin_clzll(n - 1) : 1;
  // 4 log² n: deep enough to absorb the tail of tiny components a large
  // reroot disintegrates into, shallow enough that one processor finishes
  // it inside the engine's O(polylog) depth budget.
  return static_cast<std::int32_t>(4 * logn * logn);
}

RerootStats Rerooter::run(std::span<const RerootRequest> requests,
                          std::span<Vertex> parent_out) {
  // Direct-only reductions (detached components, isolated inserts) reroot
  // nothing; skip the O(n) scratch allocation of the engine context.
  if (requests.empty()) return {};

  std::vector<Component> active;
  active.reserve(requests.size());
  for (const RerootRequest& r : requests) {
    PARDFS_CHECK(cur_.in_forest(r.subtree_root));
    PARDFS_CHECK_MSG(cur_.is_ancestor(r.subtree_root, r.new_root),
                     "new root must lie inside the rerooted subtree");
    Component c;
    c.entry = r.new_root;
    c.attach_parent = r.attach_parent;
    c.budget = cur_.size(r.subtree_root);
    c.pieces = {Piece::subtree(r.subtree_root)};
    c.entry_piece = 0;
    active.push_back(std::move(c));
  }
  return run_components(std::move(active), parent_out);
}

RerootStats Rerooter::run_components(std::vector<Component> active,
                                     std::span<Vertex> parent_out) {
  RerootStats stats;
  if (active.empty()) return stats;
  for (const Component& c : active) {
    PARDFS_CHECK(!c.pieces.empty());
    PARDFS_CHECK(c.entry_piece >= 0 &&
                 c.entry_piece < static_cast<std::int32_t>(c.pieces.size()));
  }

  const int threads = num_threads_ > 0 ? num_threads_ : pram::num_threads();
  // One context per worker, created on first use: a worker that never gets a
  // component (small rounds) never pays the O(n) scratch allocation or the
  // oracle-view memo copy.
  std::vector<std::unique_ptr<detail::EngineCtx>> workers(
      static_cast<std::size_t>(threads > 0 ? threads : 1));
  const auto worker_ctx = [&](int w) -> detail::EngineCtx& {
    auto& slot = workers[static_cast<std::size_t>(w)];
    if (!slot) slot = std::make_unique<detail::EngineCtx>(cur_, view_);
    return *slot;
  };

  // Per-component output slots for one round. Workers write only their
  // component's slots, so the merged order — and with it T* and every next
  // round's component list — is identical at any thread count.
  std::vector<std::vector<Component>> emitted;
  std::vector<std::uint32_t> comp_batches;
  std::vector<Component> next;
  while (!active.empty()) {
    // Tracing only (no histogram): round latencies are a wall-clock artifact
    // of the worker team, not part of the deterministic round/batch record.
    const obs::Span round_span("reroot_round");
    ++stats.global_rounds;
    const std::size_t k = active.size();
    emitted.assign(k, {});
    comp_batches.assign(k, 0);
    const auto step = [&](detail::EngineCtx& ctx, std::size_t i) {
      const obs::Span step_span("engine_step");
      ++ctx.stats().components_processed;
      ctx.begin_step();
      if (serial_cutoff_ > 0 &&
          detail::component_size(cur_, active[i]) <= serial_cutoff_) {
        detail::serial_finish(ctx, active[i], parent_out, graph_);
        comp_batches[i] = 0;
        return;
      }
      detail::TraversalPlan plan =
          detail::plan_traversal(ctx, active[i], strategy_);
      detail::finish_traversal(ctx, active[i], std::move(plan), parent_out,
                               emitted[i]);
      comp_batches[i] = ctx.step_batches();
    };
    if (threads <= 1 || k == 1) {
      // A single component (or team): step serially so the primitives inside
      // the step (subtree-wide query reductions) keep their own full teams
      // instead of being nested-serialized under an outer region.
      for (std::size_t i = 0; i < k; ++i) step(worker_ctx(0), i);
    } else {
      pram::parallel_for_workers(
          k, threads, [&](int w, std::size_t i) { step(worker_ctx(w), i); });
    }

    // Round barrier: merge. The PRAM cost model is unchanged — it counts
    // logical rounds (per-round batch count = max over components), not
    // worker threads.
    std::uint32_t round_batches = 0;
    next.clear();
    for (std::size_t i = 0; i < k; ++i) {
      round_batches = std::max(round_batches, comp_batches[i]);
      std::move(emitted[i].begin(), emitted[i].end(), std::back_inserter(next));
    }
    stats.query_batches += round_batches;
    if (cost_ != nullptr) {
      const std::uint64_t n = static_cast<std::uint64_t>(cur_.capacity());
      const std::uint64_t logn = n > 1 ? 64 - __builtin_clzll(n - 1) : 1;
      // Each batch is one set of independent queries: O(log n) PRAM depth.
      for (std::uint32_t b = 0; b < round_batches; ++b) {
        cost_->add_query_round(logn, 0);
      }
    }
    active.swap(next);
  }
  for (const auto& w : workers) {
    if (w) stats.accumulate(w->stats());
  }
  return stats;
}

}  // namespace pardfs
