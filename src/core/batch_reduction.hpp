// Combined reduction for a *batch* of updates (paper §3 applied to the full
// k-update set of Theorem 13; the same shape as the fault-tolerant batch of
// Baswana–Gupta–Tulsyan, arXiv:1810.01726).
//
// A single update reduces to rerooting O(1) disjoint subtrees
// (core/reduction). A batch of k structural updates instead reduces to
// rerooting whole *affected trees*: the skeleton S — the ancestor closure of
// the O(k) affected vertices — partitions each affected tree into O(k)
// monotone path pieces (chains of S, cut at deleted vertices, deleted tree
// edges and branch points) plus the subtrees hanging off S. Pieces are
// grouped into edge-connected components of the *updated* graph and each
// group is handed to the rerooting engine as one pre-built component
// (Rerooter::run_components); trees with no affected vertex are left
// untouched. The whole batch therefore costs one reduction, one engine pass
// and — in the caller — one O(n) tree-index rebuild, instead of k of each.
//
// Call protocol (mirrors core/reduction): the oracle must already be patched
// with every update of the batch, the graph must already be mutated, and the
// tree index must still describe the PRE-batch forest.
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "core/components.hpp"
#include "graph/graph.hpp"
#include "tree/tree_index.hpp"

namespace pardfs {

// Structural changes of one batch, classified against the pre-batch forest.
struct BatchChanges {
  // Deleted tree edges as (parent_side, child_side) of the pre-batch forest.
  std::vector<std::pair<Vertex, Vertex>> cut_edges;
  std::vector<Vertex> deleted_vertices;
  // Inserted edges that are not back edges of the pre-batch forest. Edges
  // whose endpoints died later in the same batch are filtered internally.
  std::vector<Edge> inserted_edges;

  bool structural() const {
    return !cut_edges.empty() || !deleted_vertices.empty() ||
           !inserted_edges.empty();
  }
};

struct BatchReduction {
  // Edge-connected groups of pieces, ready for Rerooter::run_components.
  std::vector<Component> components;
  // Parent assignments needing no rerooting: roots of detached pieces that
  // keep their internal structure (single-piece groups). The caller also
  // nulls the slots of deleted vertices.
  std::vector<std::pair<Vertex, Vertex>> direct;
};

BatchReduction reduce_batch(const TreeIndex& cur, const OracleView& view,
                            const Graph& g, const BatchChanges& changes);

}  // namespace pardfs
