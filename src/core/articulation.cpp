#include "core/articulation.hpp"

#include <algorithm>

#include "tree/tree_index.hpp"

namespace pardfs {

CutStructure find_cuts(const Graph& g, std::span<const Vertex> parent) {
  const Vertex cap = g.capacity();
  std::vector<std::uint8_t> alive(static_cast<std::size_t>(cap), 0);
  for (Vertex v = 0; v < cap; ++v) alive[static_cast<std::size_t>(v)] = g.is_alive(v);
  TreeIndex index;
  index.build(parent, alive);

  CutStructure out;
  out.is_articulation.assign(static_cast<std::size_t>(cap), 0);

  // low[v] = min depth reachable from T(v) via one back edge; processed in
  // reverse pre-order so children are done before parents.
  std::vector<std::int32_t> low(static_cast<std::size_t>(cap), 0);
  const std::int32_t n_indexed = index.num_indexed();
  for (std::int32_t i = n_indexed - 1; i >= 0; --i) {
    const Vertex v = index.vertex_at_pre(i);
    std::int32_t lv = index.depth(v);
    for (const Vertex w : g.neighbors(v)) {
      if (parent[static_cast<std::size_t>(w)] == v ||
          parent[static_cast<std::size_t>(v)] == w) {
        continue;  // tree edge
      }
      // Back edge: contributes the other endpoint's depth when it is an
      // ancestor of v.
      if (index.is_ancestor(w, v)) lv = std::min(lv, index.depth(w));
    }
    for (const Vertex c : index.children(v)) {
      lv = std::min(lv, low[static_cast<std::size_t>(c)]);
    }
    low[static_cast<std::size_t>(v)] = lv;
  }

  for (Vertex v = 0; v < cap; ++v) {
    if (!g.is_alive(v)) continue;
    const Vertex p = parent[static_cast<std::size_t>(v)];
    if (p == kNullVertex) {
      // A root is an articulation point iff it has >= 2 children.
      if (index.children(v).size() >= 2) {
        out.is_articulation[static_cast<std::size_t>(v)] = 1;
      }
      continue;
    }
    // Tree edge (p, v) is a bridge iff nothing in T(v) reaches above v.
    if (low[static_cast<std::size_t>(v)] >= index.depth(v)) {
      out.bridges.push_back({p, v});
    }
    // Non-root p is an articulation point iff some child's subtree cannot
    // reach strictly above p.
    if (parent[static_cast<std::size_t>(p)] != kNullVertex &&
        low[static_cast<std::size_t>(v)] >= index.depth(p)) {
      out.is_articulation[static_cast<std::size_t>(p)] = 1;
    }
  }
  return out;
}

}  // namespace pardfs
