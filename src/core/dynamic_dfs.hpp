// Fully dynamic DFS (paper Theorem 1 / 13): maintains a DFS forest of an
// undirected graph under edge/vertex insertions and deletions.
//
// Epoch-based update loop. The data structure D is built over a *base* tree
// once per epoch and absorbs the epoch's updates as Theorem 9 patches:
//   * a back-edge insert/delete leaves the forest untouched and costs one
//     oracle patch — no rebuild of anything;
//   * a structural update patches D, mutates the graph, reduces to
//     independent subtree reroots (§3), runs the parallel rerooting
//     algorithm (§4) with queries decomposed onto the base tree (Theorem 9),
//     then rebuilds only the O(n) current-tree index (Theorem 10 allows
//     this with n processors);
//   * the O(m log n) base rebuild — the step the paper pays m processors
//     for — runs only when an epoch closes: after Θ(log n) structural
//     updates or when the patch count crosses the Theorem 9 budget.
// See DESIGN.md §5 for the policy and budget discussion.
//
// Disconnected graphs are maintained as a forest (the paper's virtual root
// kept implicit; see reduction.hpp).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/adjacency_oracle.hpp"
#include "core/batch_reduction.hpp"
#include "core/components.hpp"
#include "core/reduction.hpp"
#include "core/rerooter.hpp"
#include "graph/graph.hpp"
#include "pram/cost_model.hpp"
#include "tree/tree_index.hpp"

namespace pardfs {

namespace obs {
class Histogram;
}

// Cumulative wall-clock breakdown of the update path (microseconds), split
// along the phases the epoch policy trades against each other. The values
// are a read over the process-wide obs registry (`pardfs_update_phase_us`
// histograms, DESIGN.md §11) — per-phase quantiles and the service-side
// phases (queue_wait, publish) live there; this struct keeps the historical
// sum accessors benches export as per-update counters (EXPERIMENTS.md E13).
// Zero when built with PARDFS_NO_METRICS or after set_metrics_enabled(false).
struct UpdatePhaseBreakdown {
  double patch_us = 0.0;          // oracle patches + graph mutation
  double reroot_us = 0.0;         // reduction + rerooting engine passes
  double index_rebuild_us = 0.0;  // O(n) current-tree index rebuilds
  double rebase_us = 0.0;         // epoch boundaries: D rebuild + swap
};

// Outcome of one DynamicDfs::apply_batch call.
struct BatchStats {
  std::size_t updates = 0;         // updates absorbed
  std::size_t structural = 0;      // updates that changed the forest
  std::size_t back_edges = 0;      // patch-only updates (no structural work)
  std::size_t segments = 0;        // combined reduction + engine passes run
  std::size_t index_rebuilds = 0;  // O(n) TreeIndex rebuilds performed
  std::size_t base_rebuilds = 0;   // epoch rebases (O(m log n)) triggered
  // Ids assigned to kInsertVertex updates, in batch order.
  std::vector<Vertex> new_vertices;
};

class DynamicDfs {
 public:
  // Takes ownership of (a copy of) the initial graph; builds the initial
  // forest with the static O(m + n) algorithm and preprocesses D.
  // `num_threads` caps the rerooting engine's worker team (0 = the pram
  // facade default); the maintained forest is identical at any value.
  // `serial_cutoff` feeds the engine's Brent-style completion of sub-cutoff
  // components (see Rerooter): -1 = Rerooter::default_serial_cutoff, 0 = off
  // (pure per-round query machinery; the CONGEST simulation and cost-model
  // tests need the paper's round structure unchanged).
  // `obs_shard` tags this instance's `pardfs_update_phase_us` series with a
  // shard="<obs_shard>" label (service/shard_router runs one engine per
  // shard); empty keeps the process-wide unlabeled series.
  explicit DynamicDfs(Graph graph,
                      RerootStrategy strategy = RerootStrategy::kPaper,
                      pram::CostModel* cost = nullptr, int num_threads = 0,
                      std::int32_t serial_cutoff = -1,
                      std::string obs_shard = {});

  // Movable: the base index is held by shared_ptr, so its address — and the
  // oracle's pointer to it — survives the move untouched. Copying would
  // duplicate megabytes silently, so it is disabled.
  DynamicDfs(DynamicDfs&& other) noexcept = default;
  DynamicDfs& operator=(DynamicDfs&& other) noexcept = default;
  DynamicDfs(const DynamicDfs&) = delete;
  DynamicDfs& operator=(const DynamicDfs&) = delete;

  // ---- updates (mirrored into the internal graph) --------------------------
  void insert_edge(Vertex u, Vertex v);
  void delete_edge(Vertex u, Vertex v);
  Vertex insert_vertex(std::span<const Vertex> neighbors);
  void delete_vertex(Vertex v);
  void apply(const GraphUpdate& update);

  // Applies a whole batch with the combined k-update reduction
  // (core/batch_reduction): D is patched for every update, one engine pass
  // reroots the affected trees, and the O(n) index rebuild runs once per
  // *segment* instead of once per update. A segment is a maximal run of edge
  // updates and vertex deletions with at most epoch_period() structural
  // members (the Theorem 9 patch budget); vertex insertions close segments
  // (their id assignment feeds later updates) and single-update segments take
  // the cheaper per-update path. A batch of 2..log n structural edge updates
  // therefore performs exactly one index rebuild. Updates must be
  // sequentially feasible, exactly as if applied one by one through apply().
  BatchStats apply_batch(std::span<const GraphUpdate> updates);

  // ---- sharding support (service/shard_router) -----------------------------
  // A whole connected component lifted out of one engine, ready to be spliced
  // into another. Global vertex ids with adjacency and tree rows verbatim, so
  // the receiving engine continues the exact forest a single-engine history
  // would have produced (DESIGN.md §12).
  struct ComponentTransfer {
    std::vector<Vertex> vertices;           // ascending ids
    std::vector<std::vector<Vertex>> rows;  // adjacency, parallel to vertices
    std::vector<Vertex> parent;             // tree rows, parallel to vertices
  };

  // Extends the id space with dead vertices so capacity() >= `capacity` (the
  // next insert_vertex then assigns that id). Sharded engines use this to
  // keep ids globally unique across engines. O(n): one index rebuild; the
  // oracle needs nothing (dead ids have no adjacency and are never queried).
  void pad_capacity(Vertex capacity);
  // Removes v's connected component (== the tree rooted at root_of(v)) and
  // returns it for adoption by another engine. O(n + m log n): an index
  // rebuild plus an epoch rebase over the shrunken graph.
  ComponentTransfer extract_component(Vertex v);
  // Splices a component extracted from another engine, padding the id space
  // as needed. The transferred ids must be dead here. Same cost profile as
  // extract_component.
  void adopt_component(ComponentTransfer t);

  // ---- observers ---------------------------------------------------------
  const Graph& graph() const { return graph_; }
  std::span<const Vertex> parent() const { return parent_; }
  Vertex parent_of(Vertex v) const { return parent_[static_cast<std::size_t>(v)]; }
  Vertex root_of(Vertex v) const { return index_->root_of(v); }
  const TreeIndex& tree() const { return *index_; }
  // Shared ownership of the current index (service snapshots). The object is
  // immutable: rebuilds produce a new TreeIndex instead of mutating a shared
  // one, so holders may read it from any thread indefinitely. A handed-out
  // index is permanently excluded from the internal recycling pool (its
  // release may happen on a reader thread; see rebuild_index()).
  std::shared_ptr<const TreeIndex> tree_ptr() const {
    index_escaped_ = true;
    return index_;
  }
  // Statistics of the most recent update's rerooting.
  const RerootStats& last_stats() const { return last_stats_; }
  // Cumulative wall-clock phase breakdown (E13): summed across the whole
  // `pardfs_update_phase_us` family — the unlabeled series plus any
  // shard-labeled ones — so the totals stay process-wide no matter how many
  // engines record. Cheap enough to call inside a timed bench loop: plain
  // shard sums, and the registry scan for labeled series only happens once a
  // sharded engine exists in the process.
  static UpdatePhaseBreakdown phase_breakdown();

  // ---- epoch state (tested / benchmarked) ----------------------------------
  // Full base-tree + D rebuilds so far, including the constructor's initial
  // build. Back-edge updates must never advance this counter.
  std::size_t epoch_rebuilds() const { return epoch_rebuilds_; }
  // Structural updates absorbed by the current epoch.
  std::size_t updates_since_rebase() const { return structural_since_rebase_; }
  // Current epoch length: Θ(log n) structural updates.
  std::size_t epoch_period() const { return epoch_period_; }
  // O(n) current-tree index rebuilds so far, including the constructor's
  // (the quantity apply_batch amortizes: one per segment, not per update).
  std::size_t index_rebuilds() const { return index_rebuilds_; }
  // The engine worker-team cap this instance was configured with (0 = pram
  // facade default).
  int num_threads() const { return num_threads_; }

 private:
  struct Segment {
    std::vector<const GraphUpdate*> ops;
    std::size_t structural = 0;
  };

  // Resolved Brent cutoff for the engine (-1 = capacity-derived default).
  std::int32_t engine_cutoff() const;
  void rebase();            // epoch boundary: base tree + D rebuild, O(m log n)
  void maybe_rebase();      // epoch policy; runs before structural work
  void rebuild_index();     // current-tree index only, O(n)
  void finish_structural();
  // True iff the update would change the forest, judged against the current
  // tree (valid for every op of a pending segment: the tree only changes at
  // segment boundaries).
  bool is_structural(const GraphUpdate& u) const;
  // Returns true when the segment ran the combined reduction (one index
  // rebuild); false for the per-update fallbacks.
  bool flush_segment(Segment& seg);
  void execute(const ReductionResult& reduction, const OracleView& view);
  // The current tree equals the base tree (only back-edge patches may have
  // accumulated), so oracle queries need no Theorem 9 path decomposition.
  bool at_base() const { return structural_since_rebase_ == 0; }

  // A recycled (count == 1, never handed out) or fresh TreeIndex to build
  // the next current forest into. Keeps the steady-state rebuild
  // allocation-free: capacities of a retired index carry over.
  std::shared_ptr<TreeIndex> acquire_index_slot();

  Graph graph_;
  std::vector<Vertex> parent_;
  // Current forest and the epoch snapshot D is built over. Both are
  // immutable once built; rebase() aliases instead of deep-copying, and
  // retired indices rotate through index_pool_ for buffer reuse.
  std::shared_ptr<TreeIndex> index_;
  std::shared_ptr<const TreeIndex> base_index_;
  std::vector<std::shared_ptr<TreeIndex>> index_pool_;
  mutable bool index_escaped_ = false;  // current index_ was handed out
  AdjacencyOracle oracle_;
  // Phase-histogram series this instance records into: the process-wide
  // unlabeled series by default, or shard-labeled ones when constructed with
  // obs_shard. Registry references are stable for the process lifetime.
  obs::Histogram* patch_hist_ = nullptr;
  obs::Histogram* reroot_hist_ = nullptr;
  obs::Histogram* index_rebuild_hist_ = nullptr;
  obs::Histogram* rebase_hist_ = nullptr;
  RerootStrategy strategy_;
  pram::CostModel* cost_;
  int num_threads_ = 0;
  std::int32_t serial_cutoff_ = -1;
  RerootStats last_stats_;
  std::size_t epoch_period_ = 1;
  std::size_t patch_budget_ = 1;
  std::size_t structural_since_rebase_ = 0;
  std::size_t epoch_rebuilds_ = 0;
  std::size_t index_rebuilds_ = 0;
};

}  // namespace pardfs
