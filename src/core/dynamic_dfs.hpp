// Fully dynamic DFS (paper Theorem 1 / 13): maintains a DFS forest of an
// undirected graph under edge/vertex insertions and deletions.
//
// Per update: patch D, mutate the graph, reduce the update to independent
// subtree reroots (§3), run the parallel rerooting algorithm (§4), then
// rebuild the tree index and D on the new tree — the step that needs the
// paper's m processors and makes the whole update O~(1) parallel time.
//
// Disconnected graphs are maintained as a forest (the paper's virtual root
// kept implicit; see reduction.hpp).
#pragma once

#include <span>
#include <vector>

#include "core/adjacency_oracle.hpp"
#include "core/components.hpp"
#include "core/reduction.hpp"
#include "core/rerooter.hpp"
#include "graph/graph.hpp"
#include "pram/cost_model.hpp"
#include "tree/tree_index.hpp"

namespace pardfs {

class DynamicDfs {
 public:
  // Takes ownership of (a copy of) the initial graph; builds the initial
  // forest with the static O(m + n) algorithm and preprocesses D.
  explicit DynamicDfs(Graph graph,
                      RerootStrategy strategy = RerootStrategy::kPaper,
                      pram::CostModel* cost = nullptr);

  // Movable (the embedded oracle is re-pointed at the moved tree index);
  // copying would duplicate megabytes silently, so it is disabled.
  DynamicDfs(DynamicDfs&& other) noexcept;
  DynamicDfs& operator=(DynamicDfs&& other) noexcept;
  DynamicDfs(const DynamicDfs&) = delete;
  DynamicDfs& operator=(const DynamicDfs&) = delete;

  // ---- updates (mirrored into the internal graph) --------------------------
  void insert_edge(Vertex u, Vertex v);
  void delete_edge(Vertex u, Vertex v);
  Vertex insert_vertex(std::span<const Vertex> neighbors);
  void delete_vertex(Vertex v);
  void apply(const GraphUpdate& update);

  // ---- observers ---------------------------------------------------------
  const Graph& graph() const { return graph_; }
  std::span<const Vertex> parent() const { return parent_; }
  Vertex parent_of(Vertex v) const { return parent_[static_cast<std::size_t>(v)]; }
  Vertex root_of(Vertex v) const { return index_.root_of(v); }
  const TreeIndex& tree() const { return index_; }
  // Statistics of the most recent update's rerooting.
  const RerootStats& last_stats() const { return last_stats_; }

 private:
  void rebuild();  // tree index + oracle after a structural change
  void execute(const ReductionResult& reduction);
  std::vector<std::uint8_t> alive_flags() const;

  Graph graph_;
  std::vector<Vertex> parent_;
  TreeIndex index_;
  AdjacencyOracle oracle_;
  RerootStrategy strategy_;
  pram::CostModel* cost_;
  RerootStats last_stats_;
};

}  // namespace pardfs
