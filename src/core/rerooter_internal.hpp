// Internal plumbing shared by rerooter.cpp (engine) and traversals.cpp
// (strategy). Not part of the public API.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/components.hpp"
#include "core/rerooter.hpp"

namespace pardfs::detail {

// A planned traversal: a single chain starting at the component entry
// (consecutive vertices are graph-adjacent: tree edges or one of the
// scenario back edges), plus the unvisited remainder as pieces.
struct TraversalPlan {
  std::vector<Vertex> pstar;
  std::vector<Piece> leftovers;
};

// Maximal runs of the chain that are monotone in the current tree (split at
// back-edge jumps and at bends). Queries address one run at a time.
struct Run {
  std::size_t first = 0;  // inclusive indices into pstar
  std::size_t last = 0;
};

std::vector<Run> split_runs(const TreeIndex& cur, const std::vector<Vertex>& chain);

// Engine context handed to the planner: tree, oracle view, scratch marking
// arrays (stamped, O(1) reset), per-step query-batch counter and stats.
//
// One context belongs to ONE worker thread: components of a round step
// concurrently (rerooter.cpp), and everything mutable a step touches — the
// marking scratch, the chain-position index, the step counter, the stats and
// the oracle view's path-decomposition memo — lives here. The view is
// therefore held by value: the copy inherits the caller's memo (warm from
// the preceding reduction) and grows its own entries without synchronizing.
// Per-worker stats are merged by the engine at the end of the run; all
// counters are sums (or max), so the merge is order-independent.
class EngineCtx {
 public:
  EngineCtx(const TreeIndex& cur, const OracleView& view)
      : cur_(cur), view_(view) {
    mark_stamp_.assign(static_cast<std::size_t>(cur.capacity()), 0);
    pos_stamp_.assign(static_cast<std::size_t>(cur.capacity()), 0);
    pos_val_.assign(static_cast<std::size_t>(cur.capacity()), -1);
    visit_stamp_.assign(static_cast<std::size_t>(cur.capacity()), 0);
    piece_stamp_.assign(static_cast<std::size_t>(cur.capacity()), 0);
    piece_val_.assign(static_cast<std::size_t>(cur.capacity()), -1);
  }

  const TreeIndex& cur() const { return cur_; }
  const OracleView& view() const { return view_; }
  RerootStats& stats() { return stats_; }

  // ---- marking scratch (visited set of the current plan) ------------------
  void begin_mark() { ++generation_; }
  void mark(Vertex v) { mark_stamp_[static_cast<std::size_t>(v)] = generation_; }
  bool marked(Vertex v) const {
    return mark_stamp_[static_cast<std::size_t>(v)] == generation_;
  }

  // ---- chain position index (for retreat-order comparisons) ---------------
  void index_chain(const std::vector<Vertex>& chain) {
    ++pos_generation_;
    for (std::size_t i = 0; i < chain.size(); ++i) {
      pos_stamp_[static_cast<std::size_t>(chain[i])] = pos_generation_;
      pos_val_[static_cast<std::size_t>(chain[i])] = static_cast<std::int32_t>(i);
    }
  }
  std::int32_t chain_pos(Vertex v) const {
    return pos_stamp_[static_cast<std::size_t>(v)] == pos_generation_
               ? pos_val_[static_cast<std::size_t>(v)]
               : -1;
  }

  // ---- piece-id map (direct grouping in finish_traversal) ------------------
  void begin_piece_map() { ++piece_generation_; }
  void map_piece(Vertex v, std::int32_t piece) {
    piece_stamp_[static_cast<std::size_t>(v)] = piece_generation_;
    piece_val_[static_cast<std::size_t>(v)] = piece;
  }
  std::int32_t piece_at(Vertex v) const {
    return piece_stamp_[static_cast<std::size_t>(v)] == piece_generation_
               ? piece_val_[static_cast<std::size_t>(v)]
               : -1;
  }

  // ---- visited scratch (serial component finish) ---------------------------
  void begin_visit() { ++visit_generation_; }
  void visit(Vertex v) { visit_stamp_[static_cast<std::size_t>(v)] = visit_generation_; }
  bool visited(Vertex v) const {
    return visit_stamp_[static_cast<std::size_t>(v)] == visit_generation_;
  }
  // Reusable DFS stack of (vertex, base cursor, extra cursor) frames.
  struct DfsFrame {
    Vertex v;
    std::uint32_t base_i;
    std::uint32_t extra_i;
  };
  std::vector<DfsFrame>& dfs_scratch() { return dfs_scratch_; }

  // ---- query batch accounting ----------------------------------------------
  void begin_step() { step_batches_ = 0; }
  void count_batch() { ++step_batches_; }
  std::uint32_t step_batches() const { return step_batches_; }

 private:
  const TreeIndex& cur_;
  const OracleView view_;  // by value: the decompose memo is per-worker
  RerootStats stats_;      // per-worker; merged by the engine
  std::vector<std::int32_t> mark_stamp_, pos_stamp_, pos_val_, visit_stamp_;
  std::vector<std::int32_t> piece_stamp_, piece_val_;
  std::vector<DfsFrame> dfs_scratch_;
  std::int32_t generation_ = 0;
  std::int32_t pos_generation_ = 0;
  std::int32_t visit_generation_ = 0;
  std::int32_t piece_generation_ = 0;
  std::uint32_t step_batches_ = 0;
};

// Plans one traversal for the component according to the strategy.
TraversalPlan plan_traversal(EngineCtx& ctx, const Component& comp,
                             RerootStrategy strategy);

// Best edge from the given pieces to the chain, preferring endpoints with
// the LARGEST chain position (= earliest DFS retreat = "lowest on p*");
// ties resolve by the total order (pos desc, u asc, v asc), so the winner
// never depends on piece-iteration order. Requires ctx.index_chain(chain)
// to have been called. Returns the edge and the position of its chain
// endpoint. One query batch.
struct ChainHit {
  Edge edge;
  std::int32_t pos = -1;
  bool valid() const { return pos >= 0; }
};
ChainHit best_edge_to_chain(EngineCtx& ctx, std::span<const Piece> pieces,
                            const std::vector<Vertex>& chain,
                            const std::vector<Run>& runs);

}  // namespace pardfs::detail
