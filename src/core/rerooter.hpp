// The parallel rerooting algorithm (paper §4) — the core contribution.
//
// Rerooting a subtree T(r0) at a new root r* proceeds in rounds. Every
// unvisited component advances once per round by one traversal:
//   * disintegrating traversal  — C1-style components; walks r_c..v_H where
//     v_H is the smallest subtree heavier than the phase threshold, so every
//     leftover subtree at most halves;
//   * path halving              — r_c on the component path; walks to the
//     farther end, halving the leftover path;
//   * disconnecting traversal   — r_c in a light subtree τ: walks through τ
//     into p_c sweeping over all τ→p_c edges, detaching τ's remains from the
//     leftover path;
//   * heavy subtree traversal   — r_c inside a heavy subtree: scenarios
//     l / p / r with the paper's applicability conditions (Lemma 2). The
//     rare special case (and any degenerate scenario input) falls back to a
//     safe disintegrating traversal — correctness is engine-guaranteed, only
//     the round bound can slip; the fallback counter is reported.
//
// Correct-by-construction engine: whatever path a strategy picks, the
// residual pieces are grouped into components by edge queries and each new
// component re-enters through its edge to the traversed path that the DFS
// would retreat past first (the components property, Lemma 1). The final
// parent array is therefore a valid DFS tree for any traversal choice.
//
// Execution model: the rounds are not only the PRAM accounting unit — all
// active components of a round step concurrently on a real worker team
// (pram::parallel_for_workers), each worker owning its scratch and oracle
// view. Outputs land in per-component slots merged in component order, so
// the tree, the new-component order and the stats are byte-identical at any
// thread count. See DESIGN.md §8.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/components.hpp"
#include "graph/edge.hpp"
#include "pram/cost_model.hpp"
#include "tree/tree_index.hpp"

namespace pardfs {

struct RerootRequest {
  Vertex subtree_root = kNullVertex;   // current-tree subtree to reroot
  Vertex new_root = kNullVertex;       // r*: must lie inside that subtree
  Vertex attach_parent = kNullVertex;  // parent of new_root in T*; null = tree root
};

enum class RerootStrategy : std::uint8_t {
  kPaper,        // full phase/stage machinery (this paper)
  kSequentialL,  // always walk r_c to the subtree root — models the
                 // sequential rerooting of Baswana et al. [6]; Θ(n) rounds
                 // on adversarial inputs (ablation baseline)
};

struct RerootStats {
  std::uint64_t global_rounds = 0;    // engine rounds (all components step once)
  std::uint64_t query_batches = 0;    // sets of independent D queries (Thm 3 counts)
  std::uint64_t components_processed = 0;
  std::uint64_t vertices_traversed = 0;
  std::uint64_t disintegrating = 0;
  std::uint64_t path_halving = 0;
  std::uint64_t disconnecting = 0;
  std::uint64_t heavy_l = 0;
  std::uint64_t heavy_p = 0;
  std::uint64_t heavy_r = 0;
  std::uint64_t heavy_special = 0;  // special-case hits (handled by fallback)
  std::uint64_t fallbacks = 0;      // degenerate inputs absorbed by DisInt
  std::uint64_t serial_finishes = 0;  // sub-cutoff components finished directly
  std::uint32_t max_phase = 0;

  void accumulate(const RerootStats& other);
};

class Rerooter {
 public:
  // `num_threads` caps the worker team stepping a round's components
  // concurrently (0 = the pram facade default). The result — final parent
  // array, new-component order and every RerootStats counter — is identical
  // at any thread count: per-component outputs go into disjoint slots merged
  // in component order, and every tie inside a step breaks on a total order.
  // Only the logical cost model's semantics (rounds, not threads) are
  // recorded, so the knob is pure wall-clock.
  //
  // `serial_cutoff` (0 = disabled): a component whose total vertex count is
  // at most the cutoff is finished by ONE logical processor as a direct DFS
  // of its induced subgraph — Brent-style processor reallocation. The paper
  // splits components with query batches until they are empty; once a
  // component is below polylog size, a single processor finishes it within
  // the same O(polylog) depth budget without any further query rounds, and
  // serially it skips the entire per-round query machinery. Any DFS of the
  // component rooted at its entry is a valid completion (the components
  // property, Lemma 1: all external edges lead to ancestors of the entry).
  // Neighbor enumeration order: the current graph's adjacency rows when
  // `graph` is supplied — a pure function of the component's update history,
  // so two engines holding the same component produce the same completion
  // even with different epoch/rebase histories (what makes sharded serving
  // byte-identical to unsharded; see service/shard_router.hpp). Without a
  // graph it falls back to the oracle's base+patch order, which is fixed
  // per engine (thread-count independent) but differs across rebase
  // histories. The update wrappers pass default_serial_cutoff(); raw engine
  // users default to the pure paper machinery.
  Rerooter(const TreeIndex& current, const OracleView& view, RerootStrategy strategy,
           pram::CostModel* cost = nullptr, int num_threads = 0,
           std::int32_t serial_cutoff = 0, const Graph* graph = nullptr);

  // Θ(log² n) — the depth one serially-finished component may add.
  static std::int32_t default_serial_cutoff(Vertex capacity);

  // Executes all reroots (they must target disjoint subtrees). parent_out
  // must be pre-filled with the current tree's parent array; entries inside
  // each rerooted subtree are overwritten.
  RerootStats run(std::span<const RerootRequest> requests,
                  std::span<Vertex> parent_out);

  // Batch entry point (paper's k-update handling, Theorem 13): seeds the
  // engine with pre-built components — each a set of vertex-disjoint pieces
  // of the current forest, edge-connected in the updated graph — instead of
  // single-subtree reroot requests. Used by the combined batch reduction
  // (core/batch_reduction); every piece vertex receives a new parent.
  RerootStats run_components(std::vector<Component> initial,
                             std::span<Vertex> parent_out);

 private:
  const TreeIndex& cur_;
  const OracleView& view_;
  RerootStrategy strategy_;
  pram::CostModel* cost_;
  int num_threads_;
  std::int32_t serial_cutoff_;
  const Graph* graph_;
};

}  // namespace pardfs
