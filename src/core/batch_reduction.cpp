#include "core/batch_reduction.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "util/check.hpp"

namespace pardfs {
namespace {

// Union-find over piece indices (O(k) of them; path-halving only).
class PieceUf {
 public:
  explicit PieceUf(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

Vertex piece_head(const Piece& p) {
  return p.kind == PieceKind::kSubtree ? p.root : p.top;
}

std::int32_t piece_size(const TreeIndex& cur, const Piece& p) {
  if (p.kind == PieceKind::kSubtree) return cur.size(p.root);
  return cur.depth(p.bottom) - cur.depth(p.top) + 1;
}

}  // namespace

BatchReduction reduce_batch(const TreeIndex& cur, const OracleView& view,
                            const Graph& g, const BatchChanges& changes) {
  BatchReduction out;
  const auto cap = static_cast<std::size_t>(cur.capacity());

  // ---- lookup structures for the batch's deletions -------------------------
  std::vector<std::uint8_t> dead(cap, 0);
  for (const Vertex v : changes.deleted_vertices) {
    dead[static_cast<std::size_t>(v)] = 1;
  }
  std::unordered_set<std::uint64_t> cut;
  cut.reserve(changes.cut_edges.size() * 2);
  for (const auto& [p, c] : changes.cut_edges) cut.insert(undirected_key(p, c));
  const auto is_cut = [&](Vertex a, Vertex b) {
    return !cut.empty() && cut.contains(undirected_key(a, b));
  };

  // ---- affected vertices (O(k) of them) ------------------------------------
  std::vector<Vertex> affected;
  const auto add_affected = [&](Vertex v) {
    if (v != kNullVertex && cur.in_forest(v)) affected.push_back(v);
  };
  for (const auto& [p, c] : changes.cut_edges) {
    add_affected(p);
    add_affected(c);
  }
  for (const Vertex v : changes.deleted_vertices) {
    add_affected(v);
    add_affected(cur.parent(v));
    for (const Vertex c : cur.children(v)) add_affected(c);
  }
  for (const Edge& e : changes.inserted_edges) {
    add_affected(e.u);
    add_affected(e.v);
  }
  if (affected.empty()) return out;

  // ---- skeleton S: ancestor closure of the affected set --------------------
  // Climbing stops at the first already-marked vertex, so the total walk is
  // bounded by |S| + |affected|.
  std::vector<std::uint8_t> in_s(cap, 0);
  std::vector<Vertex> skeleton;
  for (const Vertex a : affected) {
    for (Vertex v = a; v != kNullVertex && !in_s[static_cast<std::size_t>(v)];
         v = cur.parent(v)) {
      in_s[static_cast<std::size_t>(v)] = 1;
      skeleton.push_back(v);
    }
  }
  std::sort(skeleton.begin(), skeleton.end(),
            [&](Vertex a, Vertex b) { return cur.pre(a) < cur.pre(b); });

  // ---- chains of S ---------------------------------------------------------
  // An S vertex s is *attached* to its parent if both are alive and the tree
  // edge survives the batch. A chain continues from s into its unique
  // attached S child; deleted vertices, cut edges and branch points start new
  // chains. (Every parent of an S vertex is itself in S: S is ancestor
  // closed.)
  std::vector<std::int32_t> attached_count(cap, 0);
  std::vector<Vertex> attached_child(cap, kNullVertex);
  for (const Vertex s : skeleton) {
    const auto ss = static_cast<std::size_t>(s);
    if (dead[ss]) continue;
    for (const Vertex c : cur.children(s)) {
      const auto cs = static_cast<std::size_t>(c);
      if (dead[cs] || !in_s[cs] || is_cut(s, c)) continue;
      ++attached_count[ss];
      attached_child[ss] = c;
    }
  }
  const auto is_chain_head = [&](Vertex s) {
    const Vertex p = cur.parent(s);
    if (p == kNullVertex) return true;
    const auto ps = static_cast<std::size_t>(p);
    return dead[ps] != 0 || is_cut(p, s) || attached_count[ps] != 1;
  };

  std::vector<Piece> pieces;
  std::vector<std::int32_t> piece_of_s(cap, -1);  // S vertex -> its chain
  std::vector<Vertex> hang_from;                  // subtree piece -> S parent
  for (const Vertex s : skeleton) {
    if (dead[static_cast<std::size_t>(s)] || !is_chain_head(s)) continue;
    Vertex last = s;
    for (;;) {
      piece_of_s[static_cast<std::size_t>(last)] =
          static_cast<std::int32_t>(pieces.size());
      const auto ls = static_cast<std::size_t>(last);
      if (attached_count[ls] != 1) break;
      last = attached_child[ls];
    }
    pieces.push_back(Piece::path(s, last));
  }
  const std::size_t num_chains = pieces.size();
  // Subtrees hanging off S: no affected vertex inside (S is ancestor closed),
  // so their internal structure is untouched by the batch.
  for (const Vertex s : skeleton) {
    const auto ss = static_cast<std::size_t>(s);
    if (dead[ss]) continue;
    for (const Vertex c : cur.children(s)) {
      const auto cs = static_cast<std::size_t>(c);
      if (dead[cs] || in_s[cs] || is_cut(s, c)) continue;
      hang_from.push_back(s);
      pieces.push_back(Piece::subtree(c));
    }
  }

  // ---- group pieces into components of the updated graph -------------------
  PieceUf uf(pieces.size());
  // Surviving tree edges: subtree -> the chain it hangs from, and chain head
  // -> its parent's chain (branch points).
  for (std::size_t i = num_chains; i < pieces.size(); ++i) {
    uf.unite(i, static_cast<std::size_t>(
                    piece_of_s[static_cast<std::size_t>(hang_from[i - num_chains])]));
  }
  for (std::size_t i = 0; i < num_chains; ++i) {
    const Vertex h = pieces[i].top;
    const Vertex p = cur.parent(h);
    if (p == kNullVertex || dead[static_cast<std::size_t>(p)] || is_cut(p, h)) {
      continue;
    }
    uf.unite(i, static_cast<std::size_t>(piece_of_s[static_cast<std::size_t>(p)]));
  }
  // Inserted edges: both endpoints are affected, hence on chains. Skip edges
  // that did not survive the batch (endpoint died / edge re-deleted).
  for (const Edge& e : changes.inserted_edges) {
    if (dead[static_cast<std::size_t>(e.u)] || dead[static_cast<std::size_t>(e.v)]) {
      continue;
    }
    if (!g.has_edge(e.u, e.v)) continue;
    const std::int32_t pu = piece_of_s[static_cast<std::size_t>(e.u)];
    const std::int32_t pv = piece_of_s[static_cast<std::size_t>(e.v)];
    PARDFS_CHECK_MSG(pu >= 0 && pv >= 0, "inserted endpoints must lie on S");
    uf.unite(static_cast<std::size_t>(pu), static_cast<std::size_t>(pv));
  }
  // Remaining connections are surviving non-tree edges of the pre-batch
  // forest. They are back edges, so the ancestor endpoint lies on S (a chain)
  // and the pair is within one tree: only same-tree (piece, chain) pairs need
  // a D query, and only while still in different groups. Cross-tree pairs can
  // be connected by no such edge (a cross-tree non-tree edge would already
  // have violated the pre-batch forest).
  for (std::size_t j = 0; j < num_chains; ++j) {
    const Vertex jroot = cur.root_of(pieces[j].top);
    for (std::size_t i = 0; i < pieces.size(); ++i) {
      if (i == j || (i < num_chains && i < j)) continue;  // chain pairs once
      if (cur.root_of(piece_head(pieces[i])) != jroot) continue;
      if (uf.find(i) == uf.find(j)) continue;
      if (view.piece_has_edge(pieces[i], pieces[j].top, pieces[j].bottom)) {
        uf.unite(i, j);
      }
    }
  }

  // ---- emit one component per group ----------------------------------------
  std::vector<std::int32_t> group_of(pieces.size(), -1);
  std::vector<std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    const std::size_t r = uf.find(i);
    if (group_of[r] < 0) {
      group_of[r] = static_cast<std::int32_t>(groups.size());
      groups.emplace_back();
    }
    groups[static_cast<std::size_t>(group_of[r])].push_back(i);
  }
  for (const auto& group : groups) {
    if (group.size() == 1) {
      // Detached piece with no surviving edge elsewhere: it keeps its
      // internal parent links and its head becomes a forest root.
      out.direct.emplace_back(piece_head(pieces[group.front()]), kNullVertex);
      continue;
    }
    Component comp;
    comp.attach_parent = kNullVertex;
    comp.entry_piece = -1;
    comp.budget = 0;
    comp.pieces.reserve(group.size());
    for (const std::size_t i : group) {
      const Piece& p = pieces[i];
      const Vertex head = piece_head(p);
      comp.budget += piece_size(cur, p);
      if (comp.entry_piece < 0 || cur.depth(head) < cur.depth(comp.entry) ||
          (cur.depth(head) == cur.depth(comp.entry) && head < comp.entry)) {
        comp.entry = head;
        comp.entry_piece = static_cast<std::int32_t>(comp.pieces.size());
      }
      comp.pieces.push_back(p);
    }
    out.components.push_back(std::move(comp));
  }
  return out;
}

}  // namespace pardfs
