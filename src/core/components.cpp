#include "core/components.hpp"

#include <cstdlib>

#include "util/check.hpp"

namespace pardfs {

void OracleView::decompose(Vertex near, Vertex far, std::vector<CurSeg>& out) const {
  out.clear();
  if (identity_) {
    // Current tree == base tree: the path is base-monotone by construction.
    const bool near_is_top = cur_->is_ancestor(near, far);
    PARDFS_DCHECK(near_is_top || cur_->is_ancestor(far, near));
    out.push_back({near_is_top ? PathSeg{near, far} : PathSeg{far, near}, near_is_top});
    return;
  }
  const std::uint64_t key =
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(near)) << 32) |
      static_cast<std::uint32_t>(far);
  const auto [it, inserted] = decompose_cache_.try_emplace(key);
  if (inserted) decompose_uncached(near, far, it->second);
  out = it->second;
}

void OracleView::decompose_uncached(Vertex near, Vertex far,
                                    std::vector<CurSeg>& out) const {
  const std::vector<Vertex> verts = cur_->path_vertices(near, far);
  PARDFS_DCHECK(verts.front() == near && verts.back() == far);
  // Split into maximal base-monotone runs; inserted vertices (absent from
  // the base tree) become singleton segments (Theorem 9).
  const TreeIndex& base = oracle_->base();
  auto is_base = [&](Vertex v) { return oracle_->is_base_vertex(v); };
  std::size_t i = 0;
  while (i < verts.size()) {
    const Vertex start = verts[i];
    if (!is_base(start)) {
      out.push_back({PathSeg{start, start}, true});
      ++i;
      continue;
    }
    // Extend a run while consecutive vertices are connected by a base edge
    // and the base direction does not bend.
    std::size_t j = i;
    int direction = 0;  // 0 unknown, +1 descending in base, -1 ascending
    while (j + 1 < verts.size() && is_base(verts[j + 1])) {
      const Vertex a = verts[j];
      const Vertex b = verts[j + 1];
      int step;
      if (base.parent(b) == a) {
        step = +1;  // walking down in base
      } else if (base.parent(a) == b) {
        step = -1;  // walking up in base
      } else {
        break;  // not a base edge
      }
      if (direction != 0 && step != direction) break;  // bend
      direction = step;
      ++j;
    }
    const Vertex finish = verts[j];
    // direction +1 (or a single vertex): start is the base-ancestor end;
    // direction -1: finish is.
    if (direction >= 0) {
      out.push_back({PathSeg{start, finish}, true});
    } else {
      out.push_back({PathSeg{finish, start}, false});
    }
    i = j + 1;
  }
}

std::optional<Edge> OracleView::query_sources_over_segs(
    std::span<const Vertex> sources, const std::vector<CurSeg>& segs) const {
  for (const CurSeg& cs : segs) {
    const PathEnd end = cs.near_is_top ? PathEnd::kTop : PathEnd::kBottom;
    if (auto hit = oracle_->query_sources(sources, cs.seg, end)) return hit;
  }
  return std::nullopt;
}

std::optional<Edge> OracleView::query_piece(const Piece& src, Vertex near,
                                            Vertex far) const {
  std::vector<CurSeg> target;
  decompose(near, far, target);
  if (src.kind == PieceKind::kSubtree) {
    const auto span = cur_->subtree_span(src.root);
    // Role reversal when the current tree IS the base tree: the subtree is
    // one contiguous base post window, so each path vertex can probe INTO it
    // with a single binary search (probe_into_subtree). Walking the path
    // from the near end returns the same winner as the one-searcher-per-
    // subtree-vertex reduction — the first path vertex with a surviving
    // edge is the nearest-near target, and the probe's min-id endpoint is
    // the reduction's source-id tie-break — at O(path · log) instead of
    // O(|subtree| · log) probes. Flip only when the path is the short side.
    if (identity_ && oracle_->is_base_vertex(src.root) &&
        oracle_->is_base_vertex(near) && oracle_->is_base_vertex(far)) {
      const std::size_t path_len = static_cast<std::size_t>(
          std::abs(cur_->depth(near) - cur_->depth(far))) + 1;
      if (path_len < span.size()) {
        const bool near_is_top = cur_->is_ancestor(near, far);
        if (near_is_top) {
          for (Vertex q = near;;) {
            if (auto z = oracle_->probe_into_subtree(q, src.root)) {
              return Edge{*z, q};
            }
            if (q == far) break;
            q = cur_->child_toward(q, far);
          }
        } else {
          for (Vertex q = near;; q = cur_->parent(q)) {
            if (auto z = oracle_->probe_into_subtree(q, src.root)) {
              return Edge{*z, q};
            }
            if (q == far) break;
          }
        }
        return std::nullopt;
      }
    }
    return query_sources_over_segs(span, target);
  }
  // Path piece: decompose the source too; for each target segment (in
  // near-to-far order) take the best across source segments.
  std::vector<CurSeg> source;
  decompose(src.top, src.bottom, source);
  const TreeIndex& base = oracle_->base();
  for (const CurSeg& ts : target) {
    const PathEnd end = ts.near_is_top ? PathEnd::kTop : PathEnd::kBottom;
    std::optional<Edge> best;
    std::int32_t best_post = 0;
    for (const CurSeg& ss : source) {
      const auto hit = oracle_->query_segments(ss.seg, ts.seg, end);
      if (!hit) continue;
      const std::int32_t post =
          oracle_->is_base_vertex(hit->v) ? base.post(hit->v) : 0;
      const bool wins =
          !best ||
          (end == PathEnd::kTop ? post > best_post : post < best_post) ||
          (post == best_post && hit->u < best->u);
      if (wins) {
        best = hit;
        best_post = post;
      }
    }
    if (best) return best;
  }
  return std::nullopt;
}

std::optional<Edge> OracleView::query_vertices(std::span<const Vertex> sources,
                                               Vertex near, Vertex far) const {
  std::vector<CurSeg> target;
  decompose(near, far, target);
  return query_sources_over_segs(sources, target);
}

std::optional<Edge> OracleView::query_vertex_over(Vertex u,
                                                  const std::vector<CurSeg>& segs) const {
  for (const CurSeg& cs : segs) {
    const PathEnd end = cs.near_is_top ? PathEnd::kTop : PathEnd::kBottom;
    if (auto hit = oracle_->query_vertex(u, cs.seg, end)) return hit;
  }
  return std::nullopt;
}

}  // namespace pardfs
