// Traversal planning: the paper's case analysis (§4.1–4.4, Appendix A).
//
// Every planner returns a single chain starting at the component entry plus
// the leftover pieces. The engine (rerooter.cpp) turns the plan into T*
// parent assignments and new components; correctness never depends on which
// plan was chosen (see rerooter.hpp), only the round bound does.
#include <algorithm>
#include <optional>

#include "core/rerooter_internal.hpp"
#include "pram/parallel.hpp"
#include "util/check.hpp"

namespace pardfs::detail {
namespace {

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

// Smallest subtree of T(root) with more than `threshold` vertices — the
// descent is unique because two siblings above the threshold would exceed
// their parent's size (paper §4).
Vertex find_v_h(const TreeIndex& cur, Vertex root, std::int32_t threshold) {
  Vertex v = root;
  for (;;) {
    Vertex next = kNullVertex;
    for (const Vertex c : cur.children(v)) {
      if (cur.size(c) > threshold) {
        PARDFS_DCHECK(next == kNullVertex);
        next = c;
        break;  // unique; no need to scan further
      }
    }
    if (next == kNullVertex) return v;
    v = next;
  }
}

std::int32_t path_piece_length(const TreeIndex& cur, const Piece& p) {
  return cur.depth(p.bottom) - cur.depth(p.top) + 1;
}

bool on_path_piece(const TreeIndex& cur, const Piece& p, Vertex x) {
  return cur.is_ancestor(p.top, x) && cur.is_ancestor(x, p.bottom);
}

// Appends the untouched pieces of `comp` (all but `skip1`/`skip2`) to out.
void pass_through_pieces(const Component& comp, std::int32_t skip1,
                         std::int32_t skip2, std::vector<Piece>& out) {
  for (std::int32_t i = 0; i < static_cast<std::int32_t>(comp.pieces.size()); ++i) {
    if (i != skip1 && i != skip2) out.push_back(comp.pieces[i]);
  }
}

// Leftover pieces of the subtree T(root) after traversing the chain part
// `tau_part` (all inside T(root)), with `gaps` = explicitly untraversed
// chain fragments (scenario r leaves one between vl and yr):
//   * the untraversed root chain above the shallowest traversed vertex,
//   * the gap fragments (as path pieces),
//   * every subtree hanging off any of the above.
// The marking generation is (re)started here.
void leftovers_in_tau(EngineCtx& ctx, Vertex root,
                      std::span<const Vertex> tau_part,
                      std::span<const Piece> gaps, std::vector<Piece>& out) {
  const TreeIndex& cur = ctx.cur();
  ctx.begin_mark();
  Vertex shallowest = tau_part.front();
  for (const Vertex v : tau_part) {
    ctx.mark(v);
    if (cur.depth(v) < cur.depth(shallowest)) shallowest = v;
  }
  std::vector<Vertex> structure(tau_part.begin(), tau_part.end());
  for (const Piece& g : gaps) {
    PARDFS_DCHECK(g.kind == PieceKind::kPath);
    out.push_back(g);
    for (Vertex v = g.bottom;; v = cur.parent(v)) {
      ctx.mark(v);
      structure.push_back(v);
      if (v == g.top) break;
    }
  }
  if (shallowest != root) {
    // Untraversed upper chain [parent(shallowest) .. root].
    const Vertex bottom = cur.parent(shallowest);
    out.push_back(Piece::path(root, bottom));
    for (Vertex v = bottom;; v = cur.parent(v)) {
      ctx.mark(v);
      structure.push_back(v);
      if (v == root) break;
    }
  }
  for (const Vertex v : structure) {
    for (const Vertex c : cur.children(v)) {
      if (!ctx.marked(c)) out.push_back(Piece::subtree(c));
    }
  }
}

// Finds the subtree hanging off the chain [top..bottom-of-chain] (i.e. off
// the path vL..vH) that contains x; kNullVertex if x is not under any of
// those hangers. `x` is known to be inside T(chain_top).
Vertex hanger_root_containing(const TreeIndex& cur, Vertex chain_top,
                              Vertex chain_bottom, Vertex x) {
  // Walk down from chain_top towards x; the first step leaving the chain is
  // the hanger root.
  Vertex v = chain_top;
  while (v != x) {
    const Vertex c = cur.child_toward(v, x);
    const bool c_on_chain =
        cur.is_ancestor(c, chain_bottom) || c == chain_bottom;
    if (!c_on_chain) return c;
    if (!cur.is_ancestor(c, x)) return kNullVertex;
    v = c;
    if (v == chain_bottom) {
      // Remaining descent is inside T(chain_bottom), not a hanger.
      return kNullVertex;
    }
  }
  return kNullVertex;  // x on the chain itself
}

// Children of the chain's vertices that are not on the chain — the subtrees
// "hanging from" it. Requires the chain to be freshly marked via ctx.
void collect_hangers(EngineCtx& ctx, std::span<const Vertex> chain,
                     std::vector<Vertex>& out) {
  for (const Vertex v : chain) {
    for (const Vertex c : ctx.cur().children(v)) {
      if (!ctx.marked(c)) out.push_back(c);
    }
  }
}

// Filters hanger roots down to those whose subtree has an edge to the path
// piece pc — the paper's "eligible subtrees". One query batch.
void filter_eligible(EngineCtx& ctx, const Piece& pc, std::vector<Vertex>& hangers) {
  std::vector<Vertex> eligible;
  for (const Vertex h : hangers) {
    if (ctx.view().piece_has_edge(Piece::subtree(h), pc.top, pc.bottom)) {
      eligible.push_back(h);
    }
  }
  ctx.count_batch();
  hangers.swap(eligible);
}

// Best (nearest the `near` end) edge from {pc} ∪ eligible-subtrees to the
// monotone current-tree chain [near..far]. One query batch. Distance is
// measured in current-tree depth difference from `near`.
struct UpchainHit {
  Edge edge;
  std::int32_t dist = -1;
  bool valid() const { return dist >= 0; }
};
UpchainHit best_edge_to_upchain(EngineCtx& ctx, const Piece* pc,
                                std::span<const Vertex> eligible, Vertex near,
                                Vertex far) {
  const TreeIndex& cur = ctx.cur();
  UpchainHit best;
  auto consider = [&](const std::optional<Edge>& e) {
    if (!e) return;
    const std::int32_t d = std::abs(cur.depth(e->v) - cur.depth(near));
    if (!best.valid() || d < best.dist ||
        (d == best.dist && e->u < best.edge.u)) {
      best = {*e, d};
    }
  };
  if (pc != nullptr) consider(ctx.view().query_piece(*pc, near, far));
  for (const Vertex h : eligible) {
    consider(ctx.view().query_piece(Piece::subtree(h), near, far));
  }
  ctx.count_batch();
  return best;
}

// ---------------------------------------------------------------------------
// Planners
// ---------------------------------------------------------------------------

// Disintegrating traversal (§4.1): walk r_c .. v_H; every leftover subtree
// has size at most the phase threshold. Also the universal safe fallback.
TraversalPlan plan_disint(EngineCtx& ctx, const Component& comp,
                          std::int32_t tau_index, std::int32_t threshold) {
  const TreeIndex& cur = ctx.cur();
  const Piece& tau = comp.pieces[static_cast<std::size_t>(tau_index)];
  const Vertex v_h = find_v_h(cur, tau.root, threshold);
  TraversalPlan plan;
  plan.pstar = cur.tree_path(comp.entry, v_h);
  leftovers_in_tau(ctx, tau.root, plan.pstar, {}, plan.leftovers);
  pass_through_pieces(comp, tau_index, -1, plan.leftovers);
  ++ctx.stats().disintegrating;
  return plan;
}

// Path halving (§4.2): walk from r_c to the farther end of p_c.
TraversalPlan plan_halve(EngineCtx& ctx, const Component& comp,
                         std::int32_t path_index) {
  const TreeIndex& cur = ctx.cur();
  const Piece& pc = comp.pieces[static_cast<std::size_t>(path_index)];
  const Vertex rc = comp.entry;
  PARDFS_DCHECK(on_path_piece(cur, pc, rc));
  const std::int32_t d_top = cur.depth(rc) - cur.depth(pc.top);
  const std::int32_t d_bot = cur.depth(pc.bottom) - cur.depth(rc);
  TraversalPlan plan;
  if (d_top >= d_bot) {
    plan.pstar = cur.path_vertices(rc, pc.top);
    if (d_bot > 0) {
      plan.leftovers.push_back(Piece::path(cur.child_toward(rc, pc.bottom), pc.bottom));
    }
  } else {
    plan.pstar = cur.path_vertices(rc, pc.bottom);
    if (d_top > 0) {
      plan.leftovers.push_back(Piece::path(pc.top, cur.parent(rc)));
    }
  }
  pass_through_pieces(comp, path_index, -1, plan.leftovers);
  ++ctx.stats().path_halving;
  return plan;
}

// Disconnecting traversal (§4.3): r_c in a subtree τ that must be detached
// from the leftover of p_c. Sweep direction is chosen so that it covers all
// τ→p_c edges AND leaves at most half of p_c (the paper's prose variant;
// see DESIGN.md §3.3).
std::optional<TraversalPlan> plan_discon(EngineCtx& ctx, const Component& comp,
                                         std::int32_t tau_index,
                                         std::int32_t path_index) {
  const TreeIndex& cur = ctx.cur();
  const Piece& tau = comp.pieces[static_cast<std::size_t>(tau_index)];
  const Piece& pc = comp.pieces[static_cast<std::size_t>(path_index)];
  const auto highest = ctx.view().query_piece(tau, pc.top, pc.bottom);
  const auto lowest = ctx.view().query_piece(tau, pc.bottom, pc.top);
  ctx.count_batch();
  if (!highest || !lowest) return std::nullopt;  // not actually edge-connected
  const std::int32_t len = path_piece_length(cur, pc);
  const std::int32_t above_h = cur.depth(highest->v) - cur.depth(pc.top);

  Vertex x, y, sweep_end;
  Piece leftover_pc{};
  bool have_leftover = false;
  if (2 * above_h <= len) {
    // Enter at the highest edge, sweep down: covers every τ edge (all are at
    // or below it), leaves the ≤ half part above.
    x = highest->u;
    y = highest->v;
    sweep_end = pc.bottom;
    if (y != pc.top) {
      leftover_pc = Piece::path(pc.top, cur.parent(y));
      have_leftover = true;
    }
  } else {
    // The highest τ edge is already in the lower half, so all τ edges are;
    // enter at the lowest edge and sweep up.
    x = lowest->u;
    y = lowest->v;
    sweep_end = pc.top;
    if (y != pc.bottom) {
      leftover_pc = Piece::path(cur.child_toward(y, pc.bottom), pc.bottom);
      have_leftover = true;
    }
  }

  TraversalPlan plan;
  std::vector<Vertex> tau_part = cur.tree_path(comp.entry, x);
  plan.pstar = tau_part;
  const std::vector<Vertex> sweep = cur.path_vertices(y, sweep_end);
  plan.pstar.insert(plan.pstar.end(), sweep.begin(), sweep.end());
  leftovers_in_tau(ctx, tau.root, tau_part, {}, plan.leftovers);
  if (have_leftover) plan.leftovers.push_back(leftover_pc);
  pass_through_pieces(comp, tau_index, path_index, plan.leftovers);
  ++ctx.stats().disconnecting;
  return plan;
}

// Heavy subtree traversal (§4.4): scenarios l, p, r. Returns nullopt when a
// degenerate input or the special case is hit — the caller falls back to a
// disintegrating traversal (bound slip, never a correctness issue).
std::optional<TraversalPlan> plan_heavy(EngineCtx& ctx, const Component& comp,
                                        std::int32_t tau_index,
                                        std::int32_t path_index,
                                        std::int32_t threshold) {
  const TreeIndex& cur = ctx.cur();
  const OracleView& view = ctx.view();
  const Piece& tau = comp.pieces[static_cast<std::size_t>(tau_index)];
  const Piece& pc = comp.pieces[static_cast<std::size_t>(path_index)];
  const Vertex rc = comp.entry;
  const Vertex root = tau.root;
  const Vertex v_h = find_v_h(cur, root, threshold);
  PARDFS_DCHECK(rc != root && !cur.is_ancestor(v_h, rc));
  const Vertex v_l = cur.lca(rc, v_h);
  const Vertex v_up = cur.child_toward(v_l, v_h);  // vL: hanger containing vH

  // ---- Scenario 1: l traversal --------------------------------------------
  const std::vector<Vertex> p_l = cur.path_vertices(rc, root);
  ctx.begin_mark();
  for (const Vertex v : p_l) ctx.mark(v);
  std::vector<Vertex> hangers;
  collect_hangers(ctx, p_l, hangers);
  std::vector<Vertex> eligible = hangers;
  filter_eligible(ctx, pc, eligible);

  const UpchainHit e1 = best_edge_to_upchain(ctx, &pc, eligible, root, rc);
  if (!e1.valid()) return std::nullopt;  // component not canonical
  const Vertex x1 = e1.edge.u;
  const bool s1_applicable = !cur.is_ancestor(v_up, x1) ||
                             cur.is_ancestor(v_h, x1) || x1 == v_up ||
                             on_path_piece(cur, pc, x1);
  if (s1_applicable) {
    TraversalPlan plan;
    plan.pstar = p_l;
    leftovers_in_tau(ctx, root, plan.pstar, {}, plan.leftovers);
    pass_through_pieces(comp, tau_index, path_index, plan.leftovers);
    plan.leftovers.push_back(pc);
    ++ctx.stats().heavy_l;
    return plan;
  }

  // ---- Scenario 2: p traversal ---------------------------------------------
  if (v_l == root) return std::nullopt;  // no chain above vl to jump into

  // Subtrees eligible for (xd, yd): hangers of p*_L except T(vL), plus
  // eligible hangers of path(vL, vH).
  const std::vector<Vertex> chain_lh = cur.path_vertices(v_up, v_h);
  ctx.begin_mark();
  for (const Vertex v : chain_lh) ctx.mark(v);
  std::vector<Vertex> lh_hangers;
  collect_hangers(ctx, chain_lh, lh_hangers);
  filter_eligible(ctx, pc, lh_hangers);
  std::vector<Vertex> d_set;
  for (const Vertex h : eligible) {
    if (h != v_up) d_set.push_back(h);
  }
  d_set.insert(d_set.end(), lh_hangers.begin(), lh_hangers.end());
  const UpchainHit ed = best_edge_to_upchain(ctx, nullptr, d_set, root, rc);
  Vertex xd = kNullVertex, yd = kNullVertex;
  if (ed.valid()) {
    xd = ed.edge.u;
    yd = ed.edge.v;
  }

  // yp range: strictly above vl, and at or above yd when yd is up there too.
  const Vertex low_y = (yd != kNullVertex && cur.is_ancestor(yd, v_l) && yd != v_l)
                           ? yd
                           : cur.parent(v_l);
  // (xp, yp): edge from T(vL) into [low_y .. root] whose source has the
  // deepest LCA with vH. One set of |T(vL)| independent queries.
  std::vector<CurSeg> y_range;
  view.decompose(root, low_y, y_range);
  const auto tvl = cur.subtree_span(v_up);
  struct PCand {
    Vertex x = kNullVertex, y = kNullVertex;
    std::int32_t key = -1;
  };
  const PCand pcand = pram::parallel_reduce(
      std::size_t{0}, tvl.size(), PCand{},
      [&](std::size_t i) -> PCand {
        const Vertex u = tvl[i];
        const auto hit = view.query_vertex_over(u, y_range);
        if (!hit) return {};
        return {u, hit->v, cur.depth(cur.lca(u, v_h))};
      },
      [](PCand a, PCand b) {
        if (a.key != b.key) return a.key > b.key ? a : b;
        return a.x <= b.x ? a : b;
      });
  ctx.count_batch();
  if (pcand.key < 0) return std::nullopt;
  const Vertex xp = pcand.x, yp = pcand.y;
  PARDFS_DCHECK(cur.is_ancestor(yp, v_l) && yp != v_l);

  std::vector<Vertex> pstar_p = cur.tree_path(rc, xp);
  {
    const std::vector<Vertex> down = cur.path_vertices(yp, cur.parent(v_l));
    pstar_p.insert(pstar_p.end(), down.begin(), down.end());
  }
  const Vertex w_p = cur.lca(xp, v_h);
  const Vertex v_p = w_p == v_h ? v_h : cur.child_toward(w_p, v_h);

  // (x2, y2): lowest edge on p*_P from pc and the eligible hangers of p*_P.
  ctx.begin_mark();
  for (const Vertex v : pstar_p) ctx.mark(v);
  std::vector<Vertex> p_hangers;
  collect_hangers(ctx, pstar_p, p_hangers);
  filter_eligible(ctx, pc, p_hangers);
  std::vector<Piece> p_sources;
  p_sources.push_back(pc);
  for (const Vertex h : p_hangers) p_sources.push_back(Piece::subtree(h));
  const std::vector<Run> p_runs = split_runs(cur, pstar_p);
  ctx.index_chain(pstar_p);
  for (std::size_t b = 0; b < p_runs.size(); ++b) ctx.count_batch();
  const ChainHit e2 = best_edge_to_chain(ctx, p_sources, pstar_p, p_runs);
  const bool s2_applicable =
      !e2.valid() || !cur.is_ancestor(v_p, e2.edge.u) ||
      cur.is_ancestor(v_h, e2.edge.u) || e2.edge.u == v_p ||
      on_path_piece(cur, pc, e2.edge.u);
  if (s2_applicable) {
    TraversalPlan plan;
    plan.pstar = std::move(pstar_p);
    leftovers_in_tau(ctx, root, plan.pstar, {}, plan.leftovers);
    pass_through_pieces(comp, tau_index, path_index, plan.leftovers);
    plan.leftovers.push_back(pc);
    ++ctx.stats().heavy_p;
    return plan;
  }
  const Vertex x2 = e2.edge.u, y2 = e2.edge.v;

  // ---- Scenario 3: r traversal ---------------------------------------------
  // τd: the hanger of path(vL, vH) containing xd, if any.
  Vertex tau_d = kNullVertex;
  if (xd != kNullVertex && cur.is_ancestor(v_up, xd)) {
    tau_d = hanger_root_containing(cur, v_up, v_h, xd);
  }
  Vertex xr = x2, yr = y2;
  if (tau_d != kNullVertex) {
    // Lowest (nearest vl) edge from τd into the chain (vl .. yp].
    const auto e2p =
        view.query_piece(Piece::subtree(tau_d), cur.parent(v_l), yp);
    ctx.count_batch();
    if (e2p) {
      const bool y2_above = cur.is_ancestor(y2, v_l) && y2 != v_l;
      const bool e2p_deeper = !y2_above || cur.depth(e2p->v) > cur.depth(y2);
      if (e2p_deeper) {
        xr = e2p->u;
        yr = e2p->v;
      }
    }
  }
  if (!(cur.is_ancestor(yr, v_l) && yr != v_l)) return std::nullopt;
  if (!cur.is_ancestor(v_up, xr)) return std::nullopt;

  std::vector<Vertex> pstar_r = cur.tree_path(rc, xr);
  {
    const std::vector<Vertex> up = cur.path_vertices(yr, root);
    pstar_r.insert(pstar_r.end(), up.begin(), up.end());
  }
  ctx.begin_mark();
  for (const Vertex v : pstar_r) ctx.mark(v);
  std::vector<Vertex> r_hangers;
  collect_hangers(ctx, pstar_r, r_hangers);
  // The gap chain between vl and yr is unvisited; its top child hangs from
  // yr and was collected above — remove it (it is a path+subtrees region,
  // handled via leftovers_in_tau's gap parameter).
  const bool has_gap = cur.depth(v_l) - cur.depth(yr) >= 2;
  const Vertex gap_top = has_gap ? cur.child_toward(yr, v_l) : kNullVertex;
  if (has_gap) {
    r_hangers.erase(std::remove(r_hangers.begin(), r_hangers.end(), gap_top),
                    r_hangers.end());
  }
  filter_eligible(ctx, pc, r_hangers);
  std::vector<Piece> r_sources;
  r_sources.push_back(pc);
  for (const Vertex h : r_hangers) r_sources.push_back(Piece::subtree(h));
  const std::vector<Run> r_runs = split_runs(cur, pstar_r);
  ctx.index_chain(pstar_r);
  for (std::size_t b = 0; b < r_runs.size(); ++b) ctx.count_batch();
  const ChainHit e3 = best_edge_to_chain(ctx, r_sources, pstar_r, r_runs);
  const Vertex w_r = cur.lca(xr, v_h);
  const Vertex v_r = w_r == v_h ? v_h : cur.child_toward(w_r, v_h);
  const bool s3_applicable =
      !e3.valid() || !cur.is_ancestor(v_r, e3.edge.u) ||
      cur.is_ancestor(v_h, e3.edge.u) || e3.edge.u == v_r ||
      on_path_piece(cur, pc, e3.edge.u);
  if (s3_applicable) {
    TraversalPlan plan;
    plan.pstar = std::move(pstar_r);
    std::vector<Piece> gaps;
    if (has_gap) gaps.push_back(Piece::path(gap_top, cur.parent(v_l)));
    leftovers_in_tau(ctx, root, plan.pstar, gaps, plan.leftovers);
    pass_through_pieces(comp, tau_index, path_index, plan.leftovers);
    plan.leftovers.push_back(pc);
    ++ctx.stats().heavy_r;
    return plan;
  }

  // Special case (§4.4 "Special case of heavy subtree traversal"): handled
  // by the safe fallback; counted so benchmarks can report its rarity.
  ++ctx.stats().heavy_special;
  return std::nullopt;
}

}  // namespace

TraversalPlan plan_traversal(EngineCtx& ctx, const Component& comp,
                             RerootStrategy strategy) {
  const TreeIndex& cur = ctx.cur();
  PARDFS_CHECK(!comp.pieces.empty());
  const Piece& entry_piece = comp.pieces[static_cast<std::size_t>(comp.entry_piece)];

  // r_c on a path piece: path halving regardless of strategy.
  if (entry_piece.kind == PieceKind::kPath) {
    return plan_halve(ctx, comp, comp.entry_piece);
  }

  if (strategy == RerootStrategy::kSequentialL) {
    // Baswana et al. [6]-style: always walk r_c to the subtree root.
    TraversalPlan plan;
    plan.pstar = cur.path_vertices(comp.entry, entry_piece.root);
    leftovers_in_tau(ctx, entry_piece.root, plan.pstar, {}, plan.leftovers);
    pass_through_pieces(comp, comp.entry_piece, -1, plan.leftovers);
    ++ctx.stats().disintegrating;
    return plan;
  }

  // Phase threshold from the heaviest subtree piece (paper: n/2^i).
  std::int32_t max_sub = 0;
  std::vector<std::int32_t> paths;
  for (std::int32_t i = 0; i < static_cast<std::int32_t>(comp.pieces.size()); ++i) {
    const Piece& p = comp.pieces[static_cast<std::size_t>(i)];
    if (p.kind == PieceKind::kSubtree) {
      max_sub = std::max(max_sub, cur.size(p.root));
    } else {
      paths.push_back(i);
    }
  }
  PARDFS_CHECK(max_sub > 0);  // entry piece is a subtree
  std::uint32_t phase = 1;
  while ((comp.budget >> phase) >= max_sub) ++phase;
  const std::int32_t threshold = static_cast<std::int32_t>(
      phase < 31 ? (comp.budget >> phase) : 0);
  ctx.stats().max_phase = std::max(ctx.stats().max_phase, phase);

  const Piece& tau = entry_piece;
  const bool tau_heavy = cur.size(tau.root) > threshold;
  const std::int32_t single_path = paths.size() == 1 ? paths.front() : -1;

  auto fallback = [&]() {
    ++ctx.stats().fallbacks;
    return plan_disint(ctx, comp, comp.entry_piece, threshold);
  };

  if (!tau_heavy) {
    // r_c in a light subtree: disconnect it from p_c (if canonical).
    if (single_path >= 0) {
      if (auto plan = plan_discon(ctx, comp, comp.entry_piece, single_path)) {
        return std::move(*plan);
      }
      return fallback();
    }
    return plan_disint(ctx, comp, comp.entry_piece, threshold);
  }

  // Heavy subtree containing r_c.
  if (comp.entry == tau.root || paths.empty()) {
    return plan_disint(ctx, comp, comp.entry_piece, threshold);
  }
  const Vertex v_h = find_v_h(cur, tau.root, threshold);
  if (cur.is_ancestor(v_h, comp.entry)) {
    // r_c inside T(vH): disconnecting traversal works (remark in §4.3).
    if (single_path >= 0) {
      if (auto plan = plan_discon(ctx, comp, comp.entry_piece, single_path)) {
        return std::move(*plan);
      }
    }
    return fallback();
  }
  if (single_path >= 0) {
    if (auto plan = plan_heavy(ctx, comp, comp.entry_piece, single_path, threshold)) {
      return std::move(*plan);
    }
  }
  return fallback();
}

}  // namespace pardfs::detail
