// Components of the unvisited graph (paper §4) and the oracle view that
// lets the rerooting engine query them against paths of the *current* tree.
//
// The paper maintains every unvisited component in one of two shapes:
//   C1 — a single subtree of the current DFS tree;
//   C2 — one ancestor-descendant path p_c plus subtrees each having an edge
//        to p_c.
// This engine represents a component as {entry vertex r_c, attach edge, set
// of *pieces*}, a piece being a whole current-tree subtree or a monotone
// current-tree path. The paper's invariant is "at most one path piece"; the
// engine tolerates more (a fallback traversal can create them — see
// DESIGN.md §3.4) at the cost of extra rounds, never correctness.
//
// OracleView bridges current-tree coordinates and the base-tree coordinates
// of D: in fully dynamic mode the two trees coincide and every query is one
// oracle call; in fault-tolerant mode a current path is decomposed into
// base-monotone segments (Theorem 9), inserted vertices becoming singleton
// segments.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/adjacency_oracle.hpp"
#include "graph/edge.hpp"
#include "tree/tree_index.hpp"

namespace pardfs {

enum class PieceKind : std::uint8_t { kSubtree, kPath };

struct Piece {
  PieceKind kind = PieceKind::kSubtree;
  Vertex root = kNullVertex;    // kSubtree: current-tree subtree root
  Vertex top = kNullVertex;     // kPath: shallow end in the current tree
  Vertex bottom = kNullVertex;  // kPath: deep end in the current tree

  static Piece subtree(Vertex r) { return {PieceKind::kSubtree, r, kNullVertex, kNullVertex}; }
  static Piece path(Vertex top, Vertex bottom) {
    return {PieceKind::kPath, kNullVertex, top, bottom};
  }
};

struct Component {
  Vertex entry = kNullVertex;          // r_c: root of this component in T*
  Vertex attach_parent = kNullVertex;  // parent of entry in T*; null = tree root
  std::int32_t entry_piece = -1;       // index of the piece containing entry
  std::int32_t budget = 0;             // N0 of the originating reroot (thresholds)
  std::vector<Piece> pieces;
};

// A base-monotone fragment of a current-tree path, ordered near-to-far.
struct CurSeg {
  PathSeg seg;            // base coordinates (top ancestor of bottom); for an
                          // inserted vertex, top == bottom == that vertex
  bool near_is_top = true;  // which base end of seg faces the path's near end
};

class OracleView {
 public:
  OracleView() = default;
  OracleView(const AdjacencyOracle* oracle, const TreeIndex* current, bool identity)
      : oracle_(oracle), cur_(current), identity_(identity) {}

  const TreeIndex& cur() const { return *cur_; }
  const AdjacencyOracle& oracle() const { return *oracle_; }

  // Decomposes the current-tree monotone path walked from `near` to `far`
  // (inclusive; one endpoint is a current-tree ancestor of the other) into
  // base segments ordered from the near end. Non-identity decompositions
  // walk the whole path (O(length)), so they are memoized per view: a view
  // lives for one update, during which the current tree is immutable, and a
  // reroot re-queries the same paths for every piece it groups.
  void decompose(Vertex near, Vertex far, std::vector<CurSeg>& out) const;

  // Best edge from a piece to the current-tree path [near..far], preferring
  // target endpoints nearest `near`. Returns {x in piece, y on path}.
  std::optional<Edge> query_piece(const Piece& src, Vertex near, Vertex far) const;

  // Best edge from an explicit searcher set (each vertex one logical
  // processor) to the path [near..far], preferring endpoints nearest `near`.
  std::optional<Edge> query_vertices(std::span<const Vertex> sources, Vertex near,
                                     Vertex far) const;

  // Any edge between the piece and the path?
  bool piece_has_edge(const Piece& src, Vertex a, Vertex b) const {
    return query_piece(src, a, b).has_value();
  }

  // First edge from a single searcher over pre-decomposed target segments
  // (used by the heavy-subtree scenarios, which reduce per-source results
  // with custom keys).
  std::optional<Edge> query_vertex_over(Vertex u, const std::vector<CurSeg>& segs) const;

 private:
  std::optional<Edge> query_sources_over_segs(std::span<const Vertex> sources,
                                              const std::vector<CurSeg>& segs) const;
  void decompose_uncached(Vertex near, Vertex far, std::vector<CurSeg>& out) const;

  const AdjacencyOracle* oracle_ = nullptr;
  const TreeIndex* cur_ = nullptr;
  bool identity_ = true;
  mutable std::unordered_map<std::uint64_t, std::vector<CurSeg>> decompose_cache_;
};

}  // namespace pardfs
