#include "core/reduction.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pardfs {

ReductionResult reduce_delete_tree_edge(const TreeIndex& cur, const OracleView& view,
                                        Vertex parent_side, Vertex child_side) {
  PARDFS_CHECK(cur.parent(child_side) == parent_side);
  ReductionResult out;
  // Lowest (deepest) edge from T(child) incident on path(parent .. tree root).
  const Vertex tree_root = cur.root_of(parent_side);
  const auto e = view.query_piece(Piece::subtree(child_side),
                                  /*near=*/parent_side, /*far=*/tree_root);
  if (e) {
    out.reroots.push_back({child_side, e->u, e->v});
  } else {
    // The component separates; its DFS tree is unchanged, rooted at child
    // (implicit super-root attachment).
    out.direct.emplace_back(child_side, kNullVertex);
  }
  return out;
}

ReductionResult reduce_insert_edge(const TreeIndex& cur, Vertex u, Vertex v) {
  PARDFS_CHECK(!cur.is_ancestor(u, v) && !cur.is_ancestor(v, u));
  ReductionResult out;
  if (cur.root_of(u) != cur.root_of(v)) {
    // Components merge: reroot the smaller tree at its endpoint and hang it
    // from the other (the LCA is the implicit super root).
    const Vertex ru = cur.root_of(u);
    const Vertex rv = cur.root_of(v);
    if (cur.size(rv) <= cur.size(ru)) {
      out.reroots.push_back({rv, v, u});
    } else {
      out.reroots.push_back({ru, u, v});
    }
    return out;
  }
  const Vertex w = cur.lca(u, v);
  const Vertex v_prime = cur.child_toward(w, v);
  out.reroots.push_back({v_prime, v, u});
  return out;
}

ReductionResult reduce_delete_vertex(const TreeIndex& cur, const OracleView& view,
                                     Vertex v, std::span<const Vertex> children,
                                     Vertex former_parent) {
  ReductionResult out;
  if (former_parent == kNullVertex) {
    // v was a tree root: each child subtree keeps its structure as a new
    // tree (cross edges between sibling subtrees cannot exist).
    for (const Vertex c : children) out.direct.emplace_back(c, kNullVertex);
    return out;
  }
  const Vertex tree_root = cur.root_of(former_parent);
  for (const Vertex c : children) {
    const auto e = view.query_piece(Piece::subtree(c), /*near=*/former_parent,
                                    /*far=*/tree_root);
    if (e) {
      out.reroots.push_back({c, e->u, e->v});
    } else {
      out.direct.emplace_back(c, kNullVertex);
    }
  }
  (void)v;
  return out;
}

ReductionResult reduce_insert_vertex(const TreeIndex& cur, Vertex v,
                                     std::span<const Vertex> neighbors) {
  ReductionResult out;
  if (neighbors.empty()) {
    out.direct.emplace_back(v, kNullVertex);
    return out;
  }
  const Vertex v_j = neighbors.front();
  out.direct.emplace_back(v, v_j);
  // For every other neighbor not on path(v_j, root): reroot the subtree
  // hanging off that path (or the foreign tree) that contains it — once per
  // subtree (extra edges into the same subtree become back edges).
  std::vector<Vertex> rerooted;  // subtree roots already claimed
  for (const Vertex v_i : std::span(neighbors).subspan(1)) {
    Vertex subtree_root;
    if (cur.root_of(v_i) != cur.root_of(v_j)) {
      subtree_root = cur.root_of(v_i);  // hangs off the implicit super root
    } else if (cur.is_ancestor(v_i, v_j)) {
      continue;  // v_i on path(v_j, root): (v, v_i) becomes a back edge
    } else {
      const Vertex l = cur.lca(v_i, v_j);
      subtree_root = cur.child_toward(l, v_i);
    }
    if (std::find(rerooted.begin(), rerooted.end(), subtree_root) != rerooted.end()) {
      continue;
    }
    rerooted.push_back(subtree_root);
    out.reroots.push_back({subtree_root, v_i, v});
  }
  return out;
}

}  // namespace pardfs
