#include "core/adjacency_oracle.hpp"

#include <algorithm>

#include "pram/parallel.hpp"
#include "pram/scan.hpp"
#include "util/check.hpp"

namespace pardfs {

void AdjacencyOracle::build(const Graph& g, const TreeIndex& base,
                            pram::CostModel* cost) {
  base_ = &base;
  base_capacity_ = base.capacity();
  cost_ = cost;
  PARDFS_CHECK_MSG(g.capacity() <= base.capacity(),
                   "base tree index must cover the graph");
  const std::size_t n = static_cast<std::size_t>(g.capacity());
  built_capacity_ = n;
  extras_.assign(n, {});
  dead_.assign(n, 0);
  deleted_edges_.clear();
  patch_count_ = 0;

  // CSR build: parallel degree count, exclusive scan for bucket offsets,
  // then each bucket is filled and sorted independently. The scan total is
  // 2m, so the old serial total_work accumulation loop folds into it.
  std::vector<std::uint32_t> counts(n, 0);
  pram::parallel_for_t(0, n, [&](std::size_t sv) {
    const Vertex v = static_cast<Vertex>(sv);
    counts[sv] = g.is_alive(v) ? static_cast<std::uint32_t>(g.degree(v)) : 0;
  });
  sorted_offsets_.resize(n + 1);
  const std::uint64_t total_work =
      pram::exclusive_scan(counts, std::span(sorted_offsets_).first(n));
  PARDFS_CHECK_MSG(total_work <= UINT32_MAX,
                   "CSR offsets are 32-bit: graph exceeds 2^31 edges");
  sorted_offsets_[n] = static_cast<std::uint32_t>(total_work);
  sorted_data_.resize(total_work);
  pram::parallel_for_t(0, n, [&](std::size_t sv) {
    const Vertex v = static_cast<Vertex>(sv);
    if (!g.is_alive(v)) return;
    const auto nbrs = g.neighbors(v);
    Vertex* bucket = sorted_data_.data() + sorted_offsets_[sv];
    std::copy(nbrs.begin(), nbrs.end(), bucket);
    std::sort(bucket, bucket + nbrs.size(), [&](Vertex a, Vertex b) {
      return base.post(a) < base.post(b);
    });
  });
  if (cost_ != nullptr) {
    const std::uint64_t logn = n > 1 ? 64 - __builtin_clzll(n - 1) : 1;
    // CSR counting + scan: O(log n) depth, O(n + m) work (Theorem 4-style
    // processor allocation), then one parallel sort round (Theorem 7/8):
    // O(log n) depth, O(m log n) work.
    cost_->add_round(logn, static_cast<std::uint64_t>(n) + total_work);
    cost_->add_round(logn, total_work * logn);
  }
}

void AdjacencyOracle::clear_patches() {
  const std::size_t n = built_capacity_;
  if (extras_.size() > n) {
    extras_.resize(n);
    dead_.resize(n);
  }
  for (auto& ex : extras_) ex.clear();
  std::fill(dead_.begin(), dead_.end(), 0);
  deleted_edges_.clear();
  patch_count_ = 0;
}

void AdjacencyOracle::ensure_patch_capacity(Vertex v) {
  const std::size_t need = static_cast<std::size_t>(v) + 1;
  if (extras_.size() < need) {
    extras_.resize(need);
    dead_.resize(need, 0);
    // The sorted CSR stays frozen at built_capacity_; vertices beyond it
    // have no base neighbors (base_neighbors returns an empty span).
  }
}

void AdjacencyOracle::note_edge_inserted(Vertex u, Vertex v) {
  ensure_patch_capacity(std::max(u, v));
  const std::uint64_t key = undirected_key(u, v);
  if (deleted_edges_.erase(key) > 0) {
    // Re-insertion of a base edge: the sorted lists still hold it.
    // The base list is sorted by post order and posts are unique, so the
    // membership test is one binary search — keeps the patch O(log deg)
    // even on delete/re-insert churn at high-degree vertices.
    bool u_is_base_edge = false;
    if (is_base_vertex(u) && is_base_vertex(v)) {
      const auto base_u = base_neighbors(u);
      auto post_less = [this](Vertex z, std::int32_t p) { return base_->post(z) < p; };
      const auto it =
          std::lower_bound(base_u.begin(), base_u.end(), base_->post(v), post_less);
      u_is_base_edge = it != base_u.end() && *it == v;
    }
    if (u_is_base_edge) {
      ++patch_count_;
      return;
    }
  }
  extras_[static_cast<std::size_t>(u)].push_back(v);
  extras_[static_cast<std::size_t>(v)].push_back(u);
  ++patch_count_;
}

void AdjacencyOracle::note_edge_deleted(Vertex u, Vertex v) {
  ensure_patch_capacity(std::max(u, v));
  auto drop_extra = [this](Vertex a, Vertex b) {
    auto& ex = extras_[static_cast<std::size_t>(a)];
    const auto it = std::find(ex.begin(), ex.end(), b);
    if (it != ex.end()) {
      ex.erase(it);
      return true;
    }
    return false;
  };
  const bool was_extra = drop_extra(u, v);
  drop_extra(v, u);
  if (!was_extra) deleted_edges_.insert(undirected_key(u, v));
  ++patch_count_;
}

void AdjacencyOracle::note_vertex_inserted(Vertex v, std::span<const Vertex> neighbors) {
  ensure_patch_capacity(v);
  // The inserted vertex conceptually receives the highest post-order number
  // (paper §5.2): it never lies on a base segment, so its edges live purely
  // in the extra lists and it is queried via singleton segments.
  for (const Vertex u : neighbors) note_edge_inserted(u, v);
  ++patch_count_;
}

void AdjacencyOracle::note_vertex_deleted(Vertex v,
                                          std::span<const Vertex> former_neighbors) {
  ensure_patch_capacity(v);
  for (const Vertex u : former_neighbors) note_edge_deleted(u, v);
  dead_[static_cast<std::size_t>(v)] = 1;
  ++patch_count_;
}

AdjacencyOracle::Candidate AdjacencyOracle::better(Candidate a, Candidate b,
                                                   PathEnd end) {
  if (!a.valid()) return b;
  if (!b.valid()) return a;
  if (a.post != b.post) {
    const bool a_wins = end == PathEnd::kTop ? a.post > b.post : a.post < b.post;
    return a_wins ? a : b;
  }
  // Same target vertex: deterministic tie-break on source id.
  return a.source <= b.source ? a : b;
}

AdjacencyOracle::Candidate AdjacencyOracle::probe_up(Vertex u, PathSeg seg,
                                                     PathEnd end) const {
  Candidate result;
  if (!is_base_vertex(u) || !is_base_vertex(seg.top)) return result;
  if (!base_->is_ancestor(seg.top, u) || seg.top == u) return result;
  // Ancestors of u on [top..bottom] form the chain [lca(u, bottom)..top];
  // their posts fill [post(l), post(top)] within N(u) exclusively.
  const Vertex l = base_->lca(u, seg.bottom);
  PARDFS_DCHECK(l != kNullVertex);
  const std::int32_t lo = base_->post(l);
  const std::int32_t hi = base_->post(seg.top);
  const auto list = base_neighbors(u);
  auto post_less = [this](Vertex z, std::int32_t p) { return base_->post(z) < p; };
  const auto begin =
      std::lower_bound(list.begin(), list.end(), lo, post_less);
  const auto finish =
      std::lower_bound(list.begin(), list.end(), hi + 1, post_less);
  std::uint64_t probes = 1;
  if (end == PathEnd::kTop) {
    for (auto it = finish; it != begin;) {
      --it;
      ++probes;
      if (edge_deleted(u, *it) || vertex_dead(*it)) continue;
      result = {base_->post(*it), u, *it};
      break;
    }
  } else {
    for (auto it = begin; it != finish; ++it) {
      ++probes;
      if (edge_deleted(u, *it) || vertex_dead(*it)) continue;
      result = {base_->post(*it), u, *it};
      break;
    }
  }
  if (cost_ != nullptr) cost_->add_query(probes);
  return result;
}

AdjacencyOracle::Candidate AdjacencyOracle::probe_down(Vertex u, PathSeg seg,
                                                       PathEnd end) const {
  Candidate result;
  if (!is_base_vertex(u) || !is_base_vertex(seg.top)) return result;
  // Only relevant when u lies strictly above the whole segment.
  if (!base_->is_ancestor(u, seg.top) || u == seg.top) return result;
  const std::int32_t lo = base_->post(seg.bottom);
  const std::int32_t hi = base_->post(seg.top);
  const auto list = base_neighbors(u);
  auto post_less = [this](Vertex z, std::int32_t p) { return base_->post(z) < p; };
  const auto begin = std::lower_bound(list.begin(), list.end(), lo, post_less);
  const auto finish = std::lower_bound(list.begin(), list.end(), hi + 1, post_less);
  std::uint64_t probes = 1;
  // Candidates in the window are inside T(seg.top); the chain test filters
  // the ones actually on [top..bottom].
  for (auto it = begin; it != finish; ++it) {
    ++probes;
    const Vertex z = *it;
    if (edge_deleted(u, z) || vertex_dead(z)) continue;
    if (!base_->is_ancestor(z, seg.bottom)) continue;  // off-chain branch
    result = better(result, {base_->post(z), u, z}, end);
  }
  if (cost_ != nullptr) cost_->add_query(probes);
  return result;
}

AdjacencyOracle::Candidate AdjacencyOracle::probe_extras(Vertex u, PathSeg seg,
                                                         PathEnd end) const {
  Candidate result;
  if (static_cast<std::size_t>(u) >= extras_.size()) return result;
  const auto& ex = extras_[static_cast<std::size_t>(u)];
  for (const Vertex z : ex) {
    if (vertex_dead(z) || edge_deleted(u, z)) continue;
    if (!on_segment(z, seg)) continue;
    result = better(result, {base_->post(z), u, z}, end);
  }
  if (cost_ != nullptr && !ex.empty()) cost_->add_query(ex.size());
  return result;
}

AdjacencyOracle::Candidate AdjacencyOracle::probe_all(Vertex u, PathSeg seg,
                                                      PathEnd end) const {
  if (vertex_dead(u)) return {};
  // Singleton segment holding an inserted vertex: only patched edges can
  // reach it; direct membership test over u's extras.
  if (seg.top == seg.bottom && !is_base_vertex(seg.top)) {
    Candidate result;
    if (static_cast<std::size_t>(u) < extras_.size()) {
      for (const Vertex z : extras_[static_cast<std::size_t>(u)]) {
        if (z == seg.top && !edge_deleted(u, z) && !vertex_dead(z)) {
          result = {0, u, z};
          break;
        }
      }
    }
    if (cost_ != nullptr) cost_->add_query(1);
    return result;
  }
  Candidate result = probe_up(u, seg, end);
  result = better(result, probe_down(u, seg, end), end);
  result = better(result, probe_extras(u, seg, end), end);
  return result;
}

std::optional<Edge> AdjacencyOracle::query_vertex(Vertex u, PathSeg seg,
                                                  PathEnd end) const {
  const Candidate c = probe_all(u, seg, end);
  if (!c.valid()) return std::nullopt;
  return Edge{c.source, c.target};
}

std::optional<Edge> AdjacencyOracle::query_sources(std::span<const Vertex> sources,
                                                   PathSeg seg, PathEnd end) const {
  const Candidate best = pram::parallel_reduce(
      std::size_t{0}, sources.size(), Candidate{},
      [&](std::size_t i) { return probe_all(sources[i], seg, end); },
      [end](Candidate a, Candidate b) { return better(a, b, end); });
  if (!best.valid()) return std::nullopt;
  return Edge{best.source, best.target};
}

std::optional<Edge> AdjacencyOracle::query_segments(PathSeg source, PathSeg target,
                                                    PathEnd end) const {
  // Inserted-vertex singletons act as plain single searchers.
  if (source.top == source.bottom && !is_base_vertex(source.top)) {
    return query_vertex(source.top, target, end);
  }
  PARDFS_DCHECK(is_base_vertex(source.top) && is_base_vertex(source.bottom));
  // If no source vertex descends from a target vertex, source vertices are
  // valid searchers (their target-side neighbors are all their ancestors).
  // Otherwise the roles flip (paper §5.2's reversal); for two disjoint base
  // chains at least one direction is always valid.
  const bool source_descends =
      is_base_vertex(target.top) && base_->is_ancestor(target.top, source.bottom);
  if (!source_descends) {
    Candidate best;
    for (Vertex v = source.bottom;; v = base_->parent(v)) {
      best = better(best, probe_all(v, target, end), end);
      if (v == source.top) break;
    }
    if (!best.valid()) return std::nullopt;
    return Edge{best.source, best.target};
  }
  // Flipped: walk the target chain; each target vertex searches over the
  // source chain (any hit counts), and we keep the hit nearest the requested
  // end of the target.
  Candidate best;
  for (Vertex q = target.bottom;; q = base_->parent(q)) {
    const Candidate hit = probe_all(q, source, PathEnd::kTop);
    if (hit.valid()) {
      // hit = {post(source-endpoint), q, source-endpoint}; rekey by q's post
      // so `better` compares positions on the *target*.
      const Candidate rekeyed{base_->post(q), hit.target, q};
      best = better(best, rekeyed, end);
    }
    if (q == target.top) break;
  }
  if (!best.valid()) return std::nullopt;
  return Edge{best.source, best.target};
}

}  // namespace pardfs
