#include "core/adjacency_oracle.hpp"

#include <algorithm>

#include "pram/parallel.hpp"
#include "pram/scan.hpp"
#include "util/check.hpp"

namespace pardfs {

void AdjacencyOracle::build(const Graph& g, const TreeIndex& base,
                            pram::CostModel* cost) {
  base_ = &base;
  base_capacity_ = base.capacity();
  cost_ = cost;
  PARDFS_CHECK_MSG(g.capacity() <= base.capacity(),
                   "base tree index must cover the graph");
  const std::size_t n = static_cast<std::size_t>(g.capacity());
  built_capacity_ = n;
  // Steady-state rebuild is allocation-free: every buffer below is resized
  // in place (shrink keeps capacity; same shape re-grows nothing). The
  // per-vertex extras keep their inner capacities too — assign() would
  // deallocate all of them each epoch.
  if (extras_.size() > n) extras_.resize(n);
  for (auto& ex : extras_) ex.clear();
  extras_.resize(n);
  has_extras_.assign(n, 0);
  has_deleted_.assign(n, 0);
  dead_.assign(n, 0);
  deleted_edges_.clear();
  patch_count_ = 0;

  // CSR build: parallel degree count, exclusive scan for bucket offsets,
  // then each bucket is filled and sorted independently. The scan total is
  // 2m, so the old serial total_work accumulation loop folds into it.
  count_scratch_.resize(n);
  pram::parallel_for_t(0, n, [&](std::size_t sv) {
    const Vertex v = static_cast<Vertex>(sv);
    count_scratch_[sv] = g.is_alive(v) ? static_cast<std::uint32_t>(g.degree(v)) : 0;
  });
  sorted_offsets_.resize(n + 1);
  const std::uint64_t total_work =
      pram::exclusive_scan(count_scratch_, std::span(sorted_offsets_).first(n));
  PARDFS_CHECK_MSG(total_work <= UINT32_MAX,
                   "CSR offsets are 32-bit: graph exceeds 2^31 edges");
  sorted_offsets_[n] = static_cast<std::uint32_t>(total_work);
  sorted_data_.resize(total_work);
  sorted_posts_.resize(total_work);
  sort_scratch_.resize(total_work);
  pram::parallel_for_t(0, n, [&](std::size_t sv) {
    const Vertex v = static_cast<Vertex>(sv);
    if (!g.is_alive(v)) return;
    const auto nbrs = g.neighbors(v);
    // Sort packed (post, vertex) keys: one contiguous uint64 compare per
    // step instead of two dependent loads through base.post per comparison.
    // Posts are unique, so the order equals the old post-comparator order.
    std::uint64_t* bucket = sort_scratch_.data() + sorted_offsets_[sv];
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      bucket[i] = (static_cast<std::uint64_t>(
                       static_cast<std::uint32_t>(base.post(nbrs[i])))
                   << 32) |
                  static_cast<std::uint32_t>(nbrs[i]);
    }
    std::sort(bucket, bucket + nbrs.size());
    Vertex* data = sorted_data_.data() + sorted_offsets_[sv];
    std::int32_t* posts = sorted_posts_.data() + sorted_offsets_[sv];
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      data[i] = static_cast<Vertex>(bucket[i] & 0xFFFFFFFFu);
      posts[i] = static_cast<std::int32_t>(bucket[i] >> 32);
    }
  });
  if (cost_ != nullptr) {
    const std::uint64_t logn = n > 1 ? 64 - __builtin_clzll(n - 1) : 1;
    // CSR counting + scan: O(log n) depth, O(n + m) work (Theorem 4-style
    // processor allocation), then one parallel sort round (Theorem 7/8):
    // O(log n) depth, O(m log n) work.
    cost_->add_round(logn, static_cast<std::uint64_t>(n) + total_work);
    cost_->add_round(logn, total_work * logn);
  }
}

void AdjacencyOracle::clear_patches() {
  const std::size_t n = built_capacity_;
  if (extras_.size() > n) {
    extras_.resize(n);
    has_extras_.resize(n);
    has_deleted_.resize(n);
    dead_.resize(n);
  }
  for (auto& ex : extras_) ex.clear();
  std::fill(has_extras_.begin(), has_extras_.end(), 0);
  std::fill(has_deleted_.begin(), has_deleted_.end(), 0);
  std::fill(dead_.begin(), dead_.end(), 0);
  deleted_edges_.clear();
  patch_count_ = 0;
}

std::size_t AdjacencyOracle::heap_capacity_bytes() const {
  std::size_t total = sorted_offsets_.capacity() * sizeof(std::uint32_t) +
                      sorted_data_.capacity() * sizeof(Vertex) +
                      sorted_posts_.capacity() * sizeof(std::int32_t) +
                      extras_.capacity() * sizeof(std::vector<Vertex>) +
                      has_extras_.capacity() + has_deleted_.capacity() +
                      dead_.capacity() +
                      sort_scratch_.capacity() * sizeof(std::uint64_t) +
                      count_scratch_.capacity() * sizeof(std::uint32_t);
  for (const auto& ex : extras_) total += ex.capacity() * sizeof(Vertex);
  return total;
}

void AdjacencyOracle::ensure_patch_capacity(Vertex v) {
  const std::size_t need = static_cast<std::size_t>(v) + 1;
  if (extras_.size() < need) {
    extras_.resize(need);
    has_extras_.resize(need, 0);
    has_deleted_.resize(need, 0);
    dead_.resize(need, 0);
    // The sorted CSR stays frozen at built_capacity_; vertices beyond it
    // have no base neighbors (base_neighbors returns an empty span).
  }
}

void AdjacencyOracle::note_edge_inserted(Vertex u, Vertex v) {
  ensure_patch_capacity(std::max(u, v));
  const std::uint64_t key = undirected_key(u, v);
  if (deleted_edges_.erase(key) > 0) {
    // Re-insertion of a base edge: the sorted lists still hold it.
    // The base list is sorted by post order and posts are unique, so the
    // membership test is one binary search — keeps the patch O(log deg)
    // even on delete/re-insert churn at high-degree vertices.
    bool u_is_base_edge = false;
    if (is_base_vertex(u) && is_base_vertex(v)) {
      const auto posts = base_posts(u);
      const auto it = std::lower_bound(posts.begin(), posts.end(), base_->post(v));
      u_is_base_edge = it != posts.end() && *it == base_->post(v);
    }
    if (u_is_base_edge) {
      ++patch_count_;
      return;
    }
  }
  extras_[static_cast<std::size_t>(u)].push_back(v);
  extras_[static_cast<std::size_t>(v)].push_back(u);
  has_extras_[static_cast<std::size_t>(u)] = 1;
  has_extras_[static_cast<std::size_t>(v)] = 1;
  ++patch_count_;
}

void AdjacencyOracle::note_edge_deleted(Vertex u, Vertex v) {
  ensure_patch_capacity(std::max(u, v));
  auto drop_extra = [this](Vertex a, Vertex b) {
    auto& ex = extras_[static_cast<std::size_t>(a)];
    const auto it = std::find(ex.begin(), ex.end(), b);
    if (it != ex.end()) {
      ex.erase(it);
      if (ex.empty()) has_extras_[static_cast<std::size_t>(a)] = 0;
      return true;
    }
    return false;
  };
  const bool was_extra = drop_extra(u, v);
  drop_extra(v, u);
  if (!was_extra) {
    deleted_edges_.insert(undirected_key(u, v));
    has_deleted_[static_cast<std::size_t>(u)] = 1;
    has_deleted_[static_cast<std::size_t>(v)] = 1;
  }
  ++patch_count_;
}

void AdjacencyOracle::note_vertex_inserted(Vertex v, std::span<const Vertex> neighbors) {
  ensure_patch_capacity(v);
  // The inserted vertex conceptually receives the highest post-order number
  // (paper §5.2): it never lies on a base segment, so its edges live purely
  // in the extra lists and it is queried via singleton segments.
  for (const Vertex u : neighbors) note_edge_inserted(u, v);
  ++patch_count_;
}

void AdjacencyOracle::note_vertex_deleted(Vertex v,
                                          std::span<const Vertex> former_neighbors) {
  ensure_patch_capacity(v);
  for (const Vertex u : former_neighbors) note_edge_deleted(u, v);
  dead_[static_cast<std::size_t>(v)] = 1;
  ++patch_count_;
}

AdjacencyOracle::Candidate AdjacencyOracle::better(Candidate a, Candidate b,
                                                   PathEnd end) {
  if (!a.valid()) return b;
  if (!b.valid()) return a;
  if (a.post != b.post) {
    const bool a_wins = end == PathEnd::kTop ? a.post > b.post : a.post < b.post;
    return a_wins ? a : b;
  }
  // Same target vertex: deterministic tie-break on source id.
  return a.source <= b.source ? a : b;
}

bool AdjacencyOracle::probe_up_window(Vertex u, PathSeg seg, std::int32_t& lo,
                                      std::int32_t& hi) const {
  if (!is_base_vertex(u) || !is_base_vertex(seg.top)) return false;
  if (!base_->is_ancestor(seg.top, u) || seg.top == u) return false;
  // Ancestors of u on [top..bottom] form the chain [lca(u, bottom)..top];
  // their posts fill [post(l), post(top)] within N(u) exclusively. The
  // window is located by binary search over the contiguous post keys.
  const Vertex l = base_->lca(u, seg.bottom);
  PARDFS_DCHECK(l != kNullVertex);
  lo = base_->post(l);
  hi = base_->post(seg.top);
  return true;
}

AdjacencyOracle::Candidate AdjacencyOracle::probe_up_pick(Vertex u,
                                                          std::size_t begin,
                                                          std::size_t finish,
                                                          PathEnd end) const {
  Candidate result;
  const auto posts = base_posts(u);
  const auto list = base_neighbors(u);
  std::uint64_t probes = 1;
  if (end == PathEnd::kTop) {
    for (std::size_t i = finish; i != begin;) {
      --i;
      ++probes;
      if (edge_deleted(u, list[i]) || vertex_dead(list[i])) continue;
      result = {posts[i], u, list[i]};
      break;
    }
  } else {
    for (std::size_t i = begin; i != finish; ++i) {
      ++probes;
      if (edge_deleted(u, list[i]) || vertex_dead(list[i])) continue;
      result = {posts[i], u, list[i]};
      break;
    }
  }
  if (cost_ != nullptr) cost_->add_query(probes);
  return result;
}

AdjacencyOracle::Candidate AdjacencyOracle::probe_up(Vertex u, PathSeg seg,
                                                     PathEnd end) const {
  std::int32_t lo = 0;
  std::int32_t hi = 0;
  if (!probe_up_window(u, seg, lo, hi)) return {};
  const auto posts = base_posts(u);
  const std::size_t begin =
      static_cast<std::size_t>(std::lower_bound(posts.begin(), posts.end(), lo) -
                               posts.begin());
  const std::size_t finish =
      static_cast<std::size_t>(std::lower_bound(posts.begin(), posts.end(), hi + 1) -
                               posts.begin());
  return probe_up_pick(u, begin, finish, end);
}

AdjacencyOracle::Candidate AdjacencyOracle::probe_down(Vertex u, PathSeg seg,
                                                       PathEnd end) const {
  Candidate result;
  if (!is_base_vertex(u) || !is_base_vertex(seg.top)) return result;
  // Only relevant when u lies strictly above the whole segment.
  if (!base_->is_ancestor(u, seg.top) || u == seg.top) return result;
  const std::int32_t lo = base_->post(seg.bottom);
  const std::int32_t hi = base_->post(seg.top);
  const auto posts = base_posts(u);
  const auto list = base_neighbors(u);
  const std::size_t begin =
      static_cast<std::size_t>(std::lower_bound(posts.begin(), posts.end(), lo) -
                               posts.begin());
  const std::size_t finish =
      static_cast<std::size_t>(std::lower_bound(posts.begin(), posts.end(), hi + 1) -
                               posts.begin());
  std::uint64_t probes = 1;
  // Candidates in the window are inside T(seg.top); the chain test filters
  // the ones actually on [top..bottom].
  for (std::size_t i = begin; i != finish; ++i) {
    ++probes;
    const Vertex z = list[i];
    if (edge_deleted(u, z) || vertex_dead(z)) continue;
    if (!base_->is_ancestor(z, seg.bottom)) continue;  // off-chain branch
    result = better(result, {posts[i], u, z}, end);
  }
  if (cost_ != nullptr) cost_->add_query(probes);
  return result;
}

AdjacencyOracle::Candidate AdjacencyOracle::probe_extras(Vertex u, PathSeg seg,
                                                         PathEnd end) const {
  Candidate result;
  if (!has_extras(u)) return result;
  const auto& ex = extras_[static_cast<std::size_t>(u)];
  for (const Vertex z : ex) {
    if (vertex_dead(z) || edge_deleted(u, z)) continue;
    if (!on_segment(z, seg)) continue;
    result = better(result, {base_->post(z), u, z}, end);
  }
  if (cost_ != nullptr && !ex.empty()) cost_->add_query(ex.size());
  return result;
}

AdjacencyOracle::Candidate AdjacencyOracle::probe_all(Vertex u, PathSeg seg,
                                                      PathEnd end) const {
  if (vertex_dead(u)) return {};
  // Singleton segment holding an inserted vertex: only patched edges can
  // reach it; direct membership test over u's extras.
  if (seg.top == seg.bottom && !is_base_vertex(seg.top)) {
    Candidate result;
    if (has_extras(u)) {
      for (const Vertex z : extras_[static_cast<std::size_t>(u)]) {
        if (z == seg.top && !edge_deleted(u, z) && !vertex_dead(z)) {
          result = {0, u, z};
          break;
        }
      }
    }
    if (cost_ != nullptr) cost_->add_query(1);
    return result;
  }
  Candidate result = probe_up(u, seg, end);
  result = better(result, probe_down(u, seg, end), end);
  if (has_extras(u)) result = better(result, probe_extras(u, seg, end), end);
  return result;
}

void AdjacencyOracle::probe_batch(const Vertex* sources, std::size_t count,
                                  PathSeg seg, PathEnd end,
                                  Candidate* out) const {
  PARDFS_DCHECK(count <= simd::kBatchLanes);
  // Singleton segments holding an inserted vertex never reach the base
  // binary search; take probe_all's dedicated branch per lane.
  if (seg.top == seg.bottom && !is_base_vertex(seg.top)) {
    for (std::size_t i = 0; i < count; ++i) {
      out[i] = probe_all(sources[i], seg, end);
    }
    return;
  }
  // Lane setup: each probe-up-eligible source contributes two search lanes
  // (window begin at lo, window end at hi + 1) over its CSR row of the one
  // shared sorted_posts_ array.
  std::uint32_t starts[2 * simd::kBatchLanes];
  std::uint32_t lens[2 * simd::kBatchLanes];
  std::int32_t needles[2 * simd::kBatchLanes];
  std::uint32_t found[2 * simd::kBatchLanes];
  std::size_t lane_src[simd::kBatchLanes];
  std::uint8_t dead[simd::kBatchLanes];
  std::size_t lanes = 0;
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = Candidate{};
    const Vertex u = sources[i];
    dead[i] = vertex_dead(u) ? 1 : 0;
    if (dead[i]) continue;  // probe_all returns {} without any probe
    std::int32_t lo = 0;
    std::int32_t hi = 0;
    if (!probe_up_window(u, seg, lo, hi)) continue;
    const std::size_t su = static_cast<std::size_t>(u);
    const std::uint32_t start =
        su < built_capacity_ ? sorted_offsets_[su] : 0;
    const std::uint32_t len =
        su < built_capacity_ ? sorted_offsets_[su + 1] - start : 0;
    starts[2 * lanes] = start;
    lens[2 * lanes] = len;
    needles[2 * lanes] = lo;
    starts[2 * lanes + 1] = start;
    lens[2 * lanes + 1] = len;
    needles[2 * lanes + 1] = hi + 1;
    lane_src[lanes] = i;
    ++lanes;
    // Overlap the lanes' first binary-search touches: by the time the
    // kernel (and the picks after it) run, every lane's row midpoints are
    // in flight instead of serializing as dependent misses.
    const std::int32_t* row = sorted_posts_.data() + start;
    simd::prefetch(row + len / 2);
    simd::prefetch(row + len / 4);
    simd::prefetch(row + (3 * (std::size_t)len) / 4);
  }
  if (lanes > 0) {
    simd::lower_bound_batch(sorted_posts_.data(), starts, lens, needles, found,
                            2 * lanes);
    // The picks read sorted_data_ (a different array from the one the
    // searches walked) at the window edge; put every lane's first pick
    // load in flight before the first pick runs.
    for (std::size_t j = 0; j < lanes; ++j) {
      const std::uint32_t edge =
          end == PathEnd::kTop
              ? found[2 * j + 1] - (found[2 * j + 1] > found[2 * j] ? 1 : 0)
              : found[2 * j];
      simd::prefetch(sorted_data_.data() + starts[2 * j] + edge);
    }
    for (std::size_t j = 0; j < lanes; ++j) {
      const std::size_t i = lane_src[j];
      out[i] = probe_up_pick(sources[i], found[2 * j], found[2 * j + 1], end);
    }
  }
  // probe_down and probe_extras per lane, in probe_all's combine order.
  for (std::size_t i = 0; i < count; ++i) {
    if (dead[i]) continue;
    const Vertex u = sources[i];
    out[i] = better(out[i], probe_down(u, seg, end), end);
    if (has_extras(u)) out[i] = better(out[i], probe_extras(u, seg, end), end);
  }
}

std::optional<Edge> AdjacencyOracle::query_vertex(Vertex u, PathSeg seg,
                                                  PathEnd end) const {
  const Candidate c = probe_all(u, seg, end);
  if (!c.valid()) return std::nullopt;
  return Edge{c.source, c.target};
}

void AdjacencyOracle::query_vertex_batch(const Vertex* sources,
                                         std::size_t count, PathSeg seg,
                                         PathEnd end,
                                         std::optional<Edge>* out) const {
  Candidate lane[simd::kBatchLanes];
  for (std::size_t begin = 0; begin < count; begin += simd::kBatchLanes) {
    const std::size_t chunk = std::min(simd::kBatchLanes, count - begin);
    probe_batch(sources + begin, chunk, seg, end, lane);
    for (std::size_t i = 0; i < chunk; ++i) {
      out[begin + i] = lane[i].valid()
                           ? std::optional<Edge>(Edge{lane[i].source, lane[i].target})
                           : std::nullopt;
    }
  }
}

std::optional<Edge> AdjacencyOracle::query_sources(std::span<const Vertex> sources,
                                                   PathSeg seg, PathEnd end) const {
  // One logical processor per source; physically the sources advance in
  // kBatchLanes-wide blocks whose window searches share one dispatched
  // lower_bound pass. `better` is a total order on (post, source id), so
  // the block-at-a-time reduction returns the per-source reduction's winner
  // bit for bit.
  const std::size_t blocks =
      (sources.size() + simd::kBatchLanes - 1) / simd::kBatchLanes;
  const Candidate best = pram::parallel_reduce(
      std::size_t{0}, blocks, Candidate{},
      [&](std::size_t b) {
        Candidate lane[simd::kBatchLanes];
        const std::size_t begin = b * simd::kBatchLanes;
        const std::size_t chunk =
            std::min(simd::kBatchLanes, sources.size() - begin);
        probe_batch(sources.data() + begin, chunk, seg, end, lane);
        Candidate acc;
        for (std::size_t i = 0; i < chunk; ++i) acc = better(acc, lane[i], end);
        return acc;
      },
      [end](Candidate a, Candidate b) { return better(a, b, end); });
  if (!best.valid()) return std::nullopt;
  return Edge{best.source, best.target};
}

std::optional<Vertex> AdjacencyOracle::probe_into_subtree(Vertex u, Vertex r) const {
  if (vertex_dead(u)) return std::nullopt;
  Vertex best = kNullVertex;
  if (is_base_vertex(u) && is_base_vertex(r)) {
    // T(r)'s posts are exactly [post(r) - size(r) + 1, post(r)].
    const std::int32_t hi = base_->post(r);
    const std::int32_t lo = hi - base_->size(r) + 1;
    const auto posts = base_posts(u);
    const auto list = base_neighbors(u);
    const std::size_t begin = static_cast<std::size_t>(
        std::lower_bound(posts.begin(), posts.end(), lo) - posts.begin());
    const std::size_t finish = static_cast<std::size_t>(
        std::lower_bound(posts.begin(), posts.end(), hi + 1) - posts.begin());
    std::uint64_t probes = 1;
    for (std::size_t i = begin; i != finish; ++i) {
      ++probes;
      const Vertex z = list[i];
      if (edge_deleted(u, z) || vertex_dead(z)) continue;
      if (best == kNullVertex || z < best) best = z;
    }
    if (cost_ != nullptr) cost_->add_query(probes);
  }
  if (has_extras(u)) {
    for (const Vertex z : extras_[static_cast<std::size_t>(u)]) {
      if (vertex_dead(z) || edge_deleted(u, z)) continue;
      if (!is_base_vertex(z) || !base_->is_ancestor(r, z)) continue;
      if (best == kNullVertex || z < best) best = z;
    }
    if (cost_ != nullptr) cost_->add_query(extras_[static_cast<std::size_t>(u)].size());
  }
  if (best == kNullVertex) return std::nullopt;
  return best;
}

std::optional<Edge> AdjacencyOracle::query_segments(PathSeg source, PathSeg target,
                                                    PathEnd end) const {
  // Inserted-vertex singletons act as plain single searchers.
  if (source.top == source.bottom && !is_base_vertex(source.top)) {
    return query_vertex(source.top, target, end);
  }
  PARDFS_DCHECK(is_base_vertex(source.top) && is_base_vertex(source.bottom));
  // If no source vertex descends from a target vertex, source vertices are
  // valid searchers (their target-side neighbors are all their ancestors).
  // Otherwise the roles flip (paper §5.2's reversal); for two disjoint base
  // chains at least one direction is always valid.
  const bool source_descends =
      is_base_vertex(target.top) && base_->is_ancestor(target.top, source.bottom);
  // Materialize the walked chain once, then assign one logical processor per
  // chain vertex (Theorem 8's processor allocation) and reduce with the same
  // deterministic total order the old serial walk used — `better` is total
  // on (post, source id), so the result is order-independent.
  const PathSeg walked = source_descends ? target : source;
  std::vector<Vertex> chain;
  chain.reserve(static_cast<std::size_t>(base_->depth(walked.bottom) -
                                         base_->depth(walked.top)) +
                1);
  for (Vertex v = walked.bottom;; v = base_->parent(v)) {
    chain.push_back(v);
    // Warm each chain vertex's CSR row while the walk is still chasing
    // parent pointers: the probe pass below revisits them in this order.
    prefetch_adjacency(v);
    if (v == walked.top) break;
  }
  if (!source_descends) {
    return query_sources(chain, target, end);
  }
  // Flipped: every target-chain vertex searches over the source chain (any
  // hit counts); keep the hit nearest the requested end of the target by
  // rekeying each hit with its target vertex's post.
  const Candidate best = pram::parallel_reduce(
      std::size_t{0}, chain.size(), Candidate{},
      [&](std::size_t i) {
        const Vertex q = chain[i];
        const Candidate hit = probe_all(q, source, PathEnd::kTop);
        if (!hit.valid()) return Candidate{};
        return Candidate{base_->post(q), hit.target, q};
      },
      [end](Candidate a, Candidate b) { return better(a, b, end); });
  if (!best.valid()) return std::nullopt;
  return Edge{best.source, best.target};
}

}  // namespace pardfs
