// Articulation points and bridges from a DFS forest (classic low-link).
//
// Used by the distributed DFS-forest maintenance (paper §6.2: each node
// stores the articulation points/bridges to decide which components form
// after a deletion) and by the network-resilience example. O(m + n).
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace pardfs {

struct CutStructure {
  std::vector<std::uint8_t> is_articulation;  // indexed by vertex
  std::vector<Edge> bridges;                  // (parent, child) tree edges
};

// parent must describe a DFS forest of g (validated in debug builds via the
// low-link computation itself; cross edges would corrupt low values).
CutStructure find_cuts(const Graph& g, std::span<const Vertex> parent);

}  // namespace pardfs
