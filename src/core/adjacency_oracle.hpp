// The data structure D (paper §5.2, Theorems 8 and 9).
//
// For the *base* DFS tree T, every vertex stores its neighbors sorted by
// their post-order index in T. Because T is a DFS tree, all neighbors of a
// vertex are its ancestors or descendants, so the neighbors incident on an
// ancestor-descendant path of T occupy a contiguous post-order range — one
// binary search answers
//     Query(w, path(x, y)):  the edge from w incident on path(x, y)
//                            nearest a chosen end of the path.
// Subtree and path variants assign one logical processor per source vertex
// and reduce (Theorem 8).
//
// Multi-update support (Theorem 9): the oracle is *never rebuilt* in
// fault-tolerant mode. Instead it accepts patches:
//   * inserted edges/vertices live in small per-vertex "extra" lists,
//     scanned linearly (the O(k) term of Theorem 9);
//   * an inserted vertex is conceptually appended after all post-order
//     numbers; a query path containing it is decomposed so the inserted
//     vertex forms its own singleton segment;
//   * deleted edges/vertices are filtered while probing (the binary search
//     steps over at most k dead candidates).
//
// Directionality: a probe from u over segment [top..bottom] finds
//   (A) u's base neighbors that are ancestors of u on the segment — a pure
//       binary search, valid when top is an ancestor of u; and
//   (B) u's base neighbors that are descendants of u on the segment —
//       needed only after previous updates re-rooted parts of the tree
//       (fault-tolerant mode), where a queried source may sit *above* the
//       base segment. Candidates in the post window [post(bottom),
//       post(top)] are scanned with an O(1) on-chain filter. In
//       single-update mode case (B) never fires for base edges (the paper's
//       disjointness precondition holds in the base tree), so the pure
//       Theorem 8 bound applies; see DESIGN.md for the caveat in
//       fault-tolerant mode.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_set>
#include <vector>

#include "graph/graph.hpp"
#include "pram/cost_model.hpp"
#include "tree/tree_index.hpp"
#include "util/simd.hpp"

namespace pardfs {

enum class PathEnd : std::uint8_t { kTop, kBottom };

// Inclusive ancestor-descendant chain of the *base* tree: `top` is an
// ancestor (or equal) of `bottom`.
struct PathSeg {
  Vertex top = kNullVertex;
  Vertex bottom = kNullVertex;
};

class AdjacencyOracle {
 public:
  AdjacencyOracle() = default;

  // Builds D over g and the base tree index (which must outlive this oracle
  // or be re-`build`()-built together with it). O(m log n) work; the cost
  // model records one O(log n)-deep sort round (Theorem 8).
  void build(const Graph& g, const TreeIndex& base, pram::CostModel* cost = nullptr);

  // ---- Theorem 9 patches ---------------------------------------------------
  void note_edge_inserted(Vertex u, Vertex v);
  void note_edge_deleted(Vertex u, Vertex v);
  // Neighbors must be alive at call time. Assigns the new vertex a pseudo
  // post-order number above all existing ones.
  void note_vertex_inserted(Vertex v, std::span<const Vertex> neighbors);
  // `former_neighbors`: adjacency of v just before deletion.
  void note_vertex_deleted(Vertex v, std::span<const Vertex> former_neighbors);

  std::size_t patch_count() const { return patch_count_; }

  // Drops all Theorem 9 patches, restoring the as-built oracle (used by the
  // fault-tolerant wrapper to answer independent update batches).
  void clear_patches();

  // Re-points the oracle at the (moved) base index. Owners embedding both
  // the index and the oracle call this from their move operations.
  void rebind_base(const TreeIndex* base) { base_ = base; }

  // True if v existed at build time and is part of the base tree.
  bool is_base_vertex(Vertex v) const {
    return v >= 0 && v < base_capacity_ && base_->in_forest(v);
  }

  const TreeIndex& base() const { return *base_; }

  // ---- queries ---------------------------------------------------------—--
  // Among u's current graph neighbors lying on `seg`, the one nearest the
  // given end. Returns {u, y} with y on seg. `seg` may also be a singleton
  // holding an inserted vertex. O(log n + patches) probes.
  std::optional<Edge> query_vertex(Vertex u, PathSeg seg, PathEnd end) const;

  // Best edge over many searchers (one logical processor each; parallel
  // reduction, deterministic tie-breaking by (target post, source id)).
  // Sources are probed in simd::kBatchLanes-wide blocks: the probe-up window
  // searches of a whole block run through one dispatched
  // simd::lower_bound_batch pass (DESIGN.md §10) — the candidates, the
  // tie-breaks and the cost accounting are identical to per-source
  // query_vertex calls at every dispatch level.
  std::optional<Edge> query_sources(std::span<const Vertex> sources, PathSeg seg,
                                    PathEnd end) const;

  // Batched form of query_vertex: out[i] == query_vertex(sources[i], seg, end)
  // for every i < count (count may exceed simd::kBatchLanes; it is chunked).
  // This is the primitive query_sources reduces over, exposed for the
  // scalar≡SIMD differential suite and the probe microbench.
  void query_vertex_batch(const Vertex* sources, std::size_t count, PathSeg seg,
                          PathEnd end, std::optional<Edge>* out) const;

  // Edges between two disjoint base chains; the returned edge's endpoint on
  // `target` is nearest the given end of `target`. Internally searches from
  // whichever side is the descendant side (the paper's role reversal for
  // Query(path, path)). Returns {x in source, y in target}.
  std::optional<Edge> query_segments(PathSeg source, PathSeg target, PathEnd end) const;

  // Smallest-id endpoint of a current (non-deleted) edge from u into the
  // base subtree rooted at r, or nullopt. A base subtree is a contiguous
  // post-order window, so this is one binary search plus the usual patch
  // filtering — the O(1)-searcher primitive behind the role reversal for
  // Query(subtree, path) when the path is the cheaper side to walk.
  std::optional<Vertex> probe_into_subtree(Vertex u, Vertex r) const;

  // ---- current-graph adjacency (serial component finish) -------------------
  // The oracle tracks every graph mutation (builds snapshot the adjacency,
  // patches record the deltas), so the current neighbor set of u is exactly
  // base_neighbors(u) minus deleted edges plus extras. The engine's
  // sub-cutoff serial finish enumerates it through these accessors; the
  // order (base list by post, then extras in patch order) is fixed, keeping
  // results thread-count independent.
  std::span<const Vertex> base_neighbor_list(Vertex u) const {
    return base_neighbors(u);
  }
  std::span<const Vertex> extra_neighbor_list(Vertex u) const {
    if (!has_extras(u)) return {};
    return extras_[static_cast<std::size_t>(u)];
  }
  // True iff the edge (u, z) currently exists given that it is present in
  // one of the two lists above.
  bool edge_alive(Vertex u, Vertex z) const {
    return !edge_deleted(u, z) && !vertex_dead(z);
  }
  // fn(z) for every current neighbor of u, in the fixed order above. The
  // scan is charged to the cost model like a probe batch, so consumers that
  // sweep adjacency directly (finish_traversal's grouping and attachment
  // walks) keep the PRAM work ledger honest.
  template <typename Fn>
  void for_each_current_neighbor(Vertex u, Fn&& fn) const {
    const auto base = base_neighbors(u);
    std::uint64_t probes = base.size();
    for (const Vertex z : base) {
      if (edge_alive(u, z)) fn(z);
    }
    if (has_extras(u)) {
      const auto& ex = extras_[static_cast<std::size_t>(u)];
      probes += ex.size();
      for (const Vertex z : ex) {
        if (edge_alive(u, z)) fn(z);
      }
    }
    if (cost_ != nullptr) cost_->add_query(probes);
  }

  // Cheap existence test built on the above.
  bool segment_has_edge(PathSeg source, PathSeg target) const {
    return query_segments(source, target, PathEnd::kTop).has_value();
  }

  // Software prefetch of u's CSR adjacency row (data + posts + patch flag)
  // for a sweep that will enumerate or probe u shortly. Pure hint: no
  // observable effect.
  void prefetch_adjacency(Vertex u) const {
    const std::size_t su = static_cast<std::size_t>(u);
    if (su >= built_capacity_) return;
    const std::uint32_t off = sorted_offsets_[su];
    simd::prefetch(sorted_data_.data() + off);
    simd::prefetch(sorted_posts_.data() + off);
    if (su < has_extras_.size()) simd::prefetch(&has_extras_[su]);
  }

  // True iff the CSR arrays sit on simd::kAlign boundaries (the layout
  // invariant of DESIGN.md §10; pinned by tests).
  bool csr_aligned() const {
    return simd::is_aligned(sorted_offsets_.data()) &&
           simd::is_aligned(sorted_data_.data()) &&
           simd::is_aligned(sorted_posts_.data());
  }

 private:
  struct Candidate {
    // Ordering key: post index of the target endpoint (larger = nearer top).
    std::int32_t post = -1;
    Vertex source = kNullVertex;
    Vertex target = kNullVertex;
    bool valid() const { return target != kNullVertex; }
  };

  // Both endpoints of a deleted edge carry a flag, so the common case (no
  // deletions touch u or v) is two byte loads instead of a hash probe —
  // this sits under every probe and every adjacency enumeration. The flag
  // is conservative (left set on re-insertion); the hash gives the truth.
  bool touches_deleted(Vertex v) const {
    return static_cast<std::size_t>(v) < has_deleted_.size() &&
           has_deleted_[static_cast<std::size_t>(v)] != 0;
  }
  bool edge_deleted(Vertex u, Vertex v) const {
    return touches_deleted(u) && touches_deleted(v) &&
           deleted_edges_.contains(undirected_key(u, v));
  }
  bool vertex_dead(Vertex v) const {
    return static_cast<std::size_t>(v) < dead_.size() && dead_[static_cast<std::size_t>(v)];
  }
  bool on_segment(Vertex x, PathSeg seg) const {
    return is_base_vertex(x) && base_->is_ancestor(seg.top, x) &&
           base_->is_ancestor(x, seg.bottom);
  }
  void ensure_patch_capacity(Vertex v);

  // Direction (A): ancestors of u on seg (binary search over sorted list).
  Candidate probe_up(Vertex u, PathSeg seg, PathEnd end) const;
  // The scan-and-pick tail of probe_up once the window [begin, finish) into
  // u's CSR row is known — shared verbatim by the scalar path and the
  // batched path, so their candidates and cost accounting cannot diverge.
  Candidate probe_up_pick(Vertex u, std::size_t begin, std::size_t finish,
                          PathEnd end) const;
  // True iff probe_up would search for u over seg; fills the window bounds.
  bool probe_up_window(Vertex u, PathSeg seg, std::int32_t& lo,
                       std::int32_t& hi) const;
  // Direction (B): descendants of u on seg (windowed scan with chain filter).
  Candidate probe_down(Vertex u, PathSeg seg, PathEnd end) const;
  // Patched (inserted) edges of u restricted to seg.
  Candidate probe_extras(Vertex u, PathSeg seg, PathEnd end) const;
  Candidate probe_all(Vertex u, PathSeg seg, PathEnd end) const;
  // probe_all over up to simd::kBatchLanes sources sharing one (seg, end):
  // the probe-up window searches of all lanes (two lower_bounds each) run as
  // one dispatched simd::lower_bound_batch pass; the picks, probe_down and
  // probe_extras stay per-lane scalar. out[i] == probe_all(sources[i], ...).
  void probe_batch(const Vertex* sources, std::size_t count, PathSeg seg,
                   PathEnd end, Candidate* out) const;
  static Candidate better(Candidate a, Candidate b, PathEnd end);

  // Base neighbors of u ordered by base post index, flattened into CSR form
  // (offsets + one contiguous data array): the epoch rebuild is two parallel
  // passes plus per-bucket sorts instead of n vector reallocations, and a
  // probe's binary search runs over one cache line stream.
  std::span<const Vertex> base_neighbors(Vertex u) const {
    const std::size_t su = static_cast<std::size_t>(u);
    if (su >= built_capacity_) return {};
    return {sorted_data_.data() + sorted_offsets_[su],
            static_cast<std::size_t>(sorted_offsets_[su + 1] - sorted_offsets_[su])};
  }
  // Post index of each base neighbor, parallel to base_neighbors(u): probes
  // binary-search these contiguous keys directly instead of chasing
  // base_->post(z) through two indirections per comparison.
  std::span<const std::int32_t> base_posts(Vertex u) const {
    const std::size_t su = static_cast<std::size_t>(u);
    if (su >= built_capacity_) return {};
    return {sorted_posts_.data() + sorted_offsets_[su],
            static_cast<std::size_t>(sorted_offsets_[su + 1] - sorted_offsets_[su])};
  }
  bool has_extras(Vertex u) const {
    return static_cast<std::size_t>(u) < has_extras_.size() &&
           has_extras_[static_cast<std::size_t>(u)] != 0;
  }

 public:
  // Sum of owned heap capacities (bytes). The steady-state rebuild reuses
  // every buffer, so a second build() of the same shape must leave this
  // unchanged — pinned by tests/test_rebuild.cpp.
  std::size_t heap_capacity_bytes() const;

 private:
  const TreeIndex* base_ = nullptr;
  Vertex base_capacity_ = 0;
  std::size_t built_capacity_ = 0;  // graph capacity at build time
  // The CSR triple is 32-byte aligned (simd::kAlign): the batched probe
  // kernel gathers from sorted_posts_, and the sweeps stream sorted_data_.
  simd::aligned_vector<std::uint32_t> sorted_offsets_;  // size built_capacity_ + 1
  simd::aligned_vector<Vertex> sorted_data_;
  simd::aligned_vector<std::int32_t> sorted_posts_;  // parallel to sorted_data_
  // extras_[u]: endpoints of edges inserted after the build (includes edges
  // of inserted vertices). Small: O(k) per Theorem 9's k <= log n updates.
  // has_extras_[u] mirrors !extras_[u].empty() so the per-probe fast path is
  // one byte load instead of a vector header dereference.
  std::vector<std::vector<Vertex>> extras_;
  std::vector<std::uint8_t> has_extras_;
  std::vector<std::uint8_t> has_deleted_;
  std::vector<std::uint8_t> dead_;
  std::unordered_set<std::uint64_t> deleted_edges_;
  simd::aligned_vector<std::uint64_t> sort_scratch_;   // (post, vertex) pairs, reused
  simd::aligned_vector<std::uint32_t> count_scratch_;  // degree counts, reused
  std::size_t patch_count_ = 0;
  mutable pram::CostModel* cost_ = nullptr;
};

}  // namespace pardfs
