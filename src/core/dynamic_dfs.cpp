#include "core/dynamic_dfs.hpp"

#include <utility>

#include "baseline/static_dfs.hpp"
#include "util/check.hpp"

namespace pardfs {

DynamicDfs::DynamicDfs(Graph graph, RerootStrategy strategy, pram::CostModel* cost)
    : graph_(std::move(graph)), strategy_(strategy), cost_(cost) {
  parent_ = static_dfs(graph_);
  rebuild();
}

DynamicDfs::DynamicDfs(DynamicDfs&& other) noexcept
    : graph_(std::move(other.graph_)),
      parent_(std::move(other.parent_)),
      index_(std::move(other.index_)),
      oracle_(std::move(other.oracle_)),
      strategy_(other.strategy_),
      cost_(other.cost_),
      last_stats_(other.last_stats_) {
  oracle_.rebind_base(&index_);
}

DynamicDfs& DynamicDfs::operator=(DynamicDfs&& other) noexcept {
  if (this != &other) {
    graph_ = std::move(other.graph_);
    parent_ = std::move(other.parent_);
    index_ = std::move(other.index_);
    oracle_ = std::move(other.oracle_);
    strategy_ = other.strategy_;
    cost_ = other.cost_;
    last_stats_ = other.last_stats_;
    oracle_.rebind_base(&index_);
  }
  return *this;
}

std::vector<std::uint8_t> DynamicDfs::alive_flags() const {
  std::vector<std::uint8_t> alive(static_cast<std::size_t>(graph_.capacity()), 0);
  for (Vertex v = 0; v < graph_.capacity(); ++v) {
    alive[static_cast<std::size_t>(v)] = graph_.is_alive(v) ? 1 : 0;
  }
  return alive;
}

void DynamicDfs::rebuild() {
  const auto alive = alive_flags();
  parent_.resize(static_cast<std::size_t>(graph_.capacity()), kNullVertex);
  index_.build(parent_, alive);
  oracle_.build(graph_, index_, cost_);
}

void DynamicDfs::execute(const ReductionResult& reduction) {
  // parent_ already holds the pre-update forest; reroots overwrite their
  // subtrees, direct assignments patch single slots.
  const OracleView view(&oracle_, &index_, /*identity=*/true);
  Rerooter engine(index_, view, strategy_, cost_);
  last_stats_ = engine.run(reduction.reroots, parent_);
  for (const auto& [v, p] : reduction.direct) {
    parent_[static_cast<std::size_t>(v)] = p;
  }
}

void DynamicDfs::insert_edge(Vertex u, Vertex v) {
  PARDFS_CHECK(graph_.add_edge(u, v));
  oracle_.note_edge_inserted(u, v);
  if (index_.is_ancestor(u, v) || index_.is_ancestor(v, u)) {
    last_stats_ = {};  // back edge: forest unchanged
  } else {
    const ReductionResult r = reduce_insert_edge(index_, u, v);
    execute(r);
  }
  rebuild();
}

void DynamicDfs::delete_edge(Vertex u, Vertex v) {
  oracle_.note_edge_deleted(u, v);
  PARDFS_CHECK(graph_.remove_edge(u, v));
  const bool u_parent = parent_[static_cast<std::size_t>(v)] == u;
  const bool v_parent = parent_[static_cast<std::size_t>(u)] == v;
  if (!u_parent && !v_parent) {
    last_stats_ = {};  // back edge: forest unchanged
  } else {
    const Vertex parent_side = u_parent ? u : v;
    const Vertex child_side = u_parent ? v : u;
    const OracleView view(&oracle_, &index_, /*identity=*/true);
    const ReductionResult r =
        reduce_delete_tree_edge(index_, view, parent_side, child_side);
    execute(r);
  }
  rebuild();
}

Vertex DynamicDfs::insert_vertex(std::span<const Vertex> neighbors) {
  const Vertex v = graph_.add_vertex(neighbors);
  oracle_.note_vertex_inserted(v, neighbors);
  parent_.resize(static_cast<std::size_t>(graph_.capacity()), kNullVertex);
  const ReductionResult r = reduce_insert_vertex(index_, v, neighbors);
  execute(r);
  rebuild();
  return v;
}

void DynamicDfs::delete_vertex(Vertex v) {
  const auto nbrs = graph_.neighbors(v);
  const std::vector<Vertex> former_neighbors(nbrs.begin(), nbrs.end());
  std::vector<Vertex> children(index_.children(v).begin(), index_.children(v).end());
  const Vertex former_parent = parent_[static_cast<std::size_t>(v)];
  oracle_.note_vertex_deleted(v, former_neighbors);
  graph_.remove_vertex(v);
  const OracleView view(&oracle_, &index_, /*identity=*/true);
  const ReductionResult r =
      reduce_delete_vertex(index_, view, v, children, former_parent);
  parent_[static_cast<std::size_t>(v)] = kNullVertex;
  execute(r);
  rebuild();
}

void DynamicDfs::apply(const GraphUpdate& update) {
  switch (update.kind) {
    case GraphUpdate::Kind::kInsertEdge:
      insert_edge(update.u, update.v);
      break;
    case GraphUpdate::Kind::kDeleteEdge:
      delete_edge(update.u, update.v);
      break;
    case GraphUpdate::Kind::kInsertVertex:
      insert_vertex(update.neighbors);
      break;
    case GraphUpdate::Kind::kDeleteVertex:
      delete_vertex(update.u);
      break;
  }
}

}  // namespace pardfs
