#include "core/dynamic_dfs.hpp"

#include <atomic>
#include <utility>

#include "baseline/static_dfs.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace pardfs {
namespace {

// The update-path phase histograms (DESIGN.md §11). Recorded in raw
// nanoseconds, exported in microseconds; one sample per scoped phase entry,
// so quantiles are per-phase-execution latencies and sums reproduce the old
// cumulative UpdatePhaseBreakdown. The service layer owns the two remaining
// pipeline phases (queue_wait, publish) under the same metric name.
// Registration is once per process; the references are stable forever.
obs::Histogram& patch_hist() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "pardfs_update_phase_us", "phase=\"patch\"", 1e-3);
  return h;
}
obs::Histogram& reroot_hist() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "pardfs_update_phase_us", "phase=\"reroot\"", 1e-3);
  return h;
}
obs::Histogram& index_rebuild_hist() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "pardfs_update_phase_us", "phase=\"index_rebuild\"", 1e-3);
  return h;
}
obs::Histogram& rebase_hist() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "pardfs_update_phase_us", "phase=\"rebase\"", 1e-3);
  return h;
}

// Mirror of the per-run RerootStats counters (paper Theorem 3/4 evidence)
// into registry counters, bumped after every engine pass. The struct stays
// the deterministic per-run record (tests fingerprint it); the registry
// series are its process-wide running totals.
void mirror_reroot_stats(const RerootStats& s) {
  static obs::Registry& reg = obs::Registry::global();
  static obs::Counter& rounds = reg.counter("pardfs_reroot_rounds_total");
  static obs::Counter& query_batches =
      reg.counter("pardfs_reroot_query_batches_total");
  static obs::Counter& components =
      reg.counter("pardfs_reroot_components_total");
  static obs::Counter& vertices =
      reg.counter("pardfs_reroot_vertices_traversed_total");
  static obs::Counter& disintegrating =
      reg.counter("pardfs_reroot_traversals_total", "kind=\"disintegrating\"");
  static obs::Counter& path_halving =
      reg.counter("pardfs_reroot_traversals_total", "kind=\"path_halving\"");
  static obs::Counter& disconnecting =
      reg.counter("pardfs_reroot_traversals_total", "kind=\"disconnecting\"");
  static obs::Counter& heavy_l =
      reg.counter("pardfs_reroot_traversals_total", "kind=\"heavy_l\"");
  static obs::Counter& heavy_p =
      reg.counter("pardfs_reroot_traversals_total", "kind=\"heavy_p\"");
  static obs::Counter& heavy_r =
      reg.counter("pardfs_reroot_traversals_total", "kind=\"heavy_r\"");
  static obs::Counter& fallbacks = reg.counter("pardfs_reroot_fallbacks_total");
  static obs::Counter& serial_finishes =
      reg.counter("pardfs_reroot_serial_finishes_total");
  if (s.global_rounds != 0) rounds.add(s.global_rounds);
  if (s.query_batches != 0) query_batches.add(s.query_batches);
  if (s.components_processed != 0) components.add(s.components_processed);
  if (s.vertices_traversed != 0) vertices.add(s.vertices_traversed);
  if (s.disintegrating != 0) disintegrating.add(s.disintegrating);
  if (s.path_halving != 0) path_halving.add(s.path_halving);
  if (s.disconnecting != 0) disconnecting.add(s.disconnecting);
  if (s.heavy_l != 0) heavy_l.add(s.heavy_l);
  if (s.heavy_p != 0) heavy_p.add(s.heavy_p);
  if (s.heavy_r != 0) heavy_r.add(s.heavy_r);
  if (s.fallbacks != 0) fallbacks.add(s.fallbacks);
  if (s.serial_finishes != 0) serial_finishes.add(s.serial_finishes);
}

// Set once a shard-labeled engine exists in the process: phase_breakdown()
// then widens its scan from the four unlabeled series to the whole family.
std::atomic<bool> g_sharded_phase_series{false};

// Retired indices kept for buffer reuse: current + epoch base + one in
// flight. Beyond that (snapshots pinning history) fresh allocations take
// over.
constexpr std::size_t kIndexPoolCap = 4;

}  // namespace

DynamicDfs::DynamicDfs(Graph graph, RerootStrategy strategy,
                       pram::CostModel* cost, int num_threads,
                       std::int32_t serial_cutoff, std::string obs_shard)
    : graph_(std::move(graph)),
      strategy_(strategy),
      cost_(cost),
      num_threads_(num_threads),
      serial_cutoff_(serial_cutoff) {
  // Eager registration: all four phase series of this instance appear (at
  // zero) on a metrics page even before the first update touches them.
  if (obs_shard.empty()) {
    patch_hist_ = &patch_hist();
    reroot_hist_ = &reroot_hist();
    index_rebuild_hist_ = &index_rebuild_hist();
    rebase_hist_ = &rebase_hist();
  } else {
    obs::Registry& reg = obs::Registry::global();
    const std::string shard = ",shard=\"" + obs_shard + "\"";
    patch_hist_ = &reg.histogram("pardfs_update_phase_us",
                                 "phase=\"patch\"" + shard, 1e-3);
    reroot_hist_ = &reg.histogram("pardfs_update_phase_us",
                                  "phase=\"reroot\"" + shard, 1e-3);
    index_rebuild_hist_ = &reg.histogram(
        "pardfs_update_phase_us", "phase=\"index_rebuild\"" + shard, 1e-3);
    rebase_hist_ = &reg.histogram("pardfs_update_phase_us",
                                  "phase=\"rebase\"" + shard, 1e-3);
    g_sharded_phase_series.store(true, std::memory_order_relaxed);
  }
  parent_ = static_dfs(graph_);
  rebuild_index();
  rebase();
}

std::int32_t DynamicDfs::engine_cutoff() const {
  return serial_cutoff_ < 0 ? Rerooter::default_serial_cutoff(index_->capacity())
                            : serial_cutoff_;
}

std::shared_ptr<TreeIndex> DynamicDfs::acquire_index_slot() {
  for (auto it = index_pool_.begin(); it != index_pool_.end(); ++it) {
    if (it->use_count() == 1) {
      // Sole owner is the pool itself, and pooled indices were never handed
      // out (see retire below), so every past reference was writer-local:
      // reusing the buffers races with nobody.
      std::shared_ptr<TreeIndex> slot = std::move(*it);
      index_pool_.erase(it);
      return slot;
    }
  }
  return std::make_shared<TreeIndex>();
}

void DynamicDfs::rebuild_index() {
  obs::ScopedPhase timer(*index_rebuild_hist_, "index_rebuild");
  parent_.resize(static_cast<std::size_t>(graph_.capacity()), kNullVertex);
  std::shared_ptr<TreeIndex> next = acquire_index_slot();
  next->build(parent_, graph_.alive());
  // Retire the outgoing index for reuse — unless it escaped through
  // tree_ptr(): an escaped index may be released on a reader thread, and a
  // use_count() poll alone does not order that release before our re-build.
  if (index_ != nullptr && !index_escaped_ && index_pool_.size() < kIndexPoolCap) {
    index_pool_.push_back(std::move(index_));
  }
  index_ = std::move(next);
  index_escaped_ = false;
  ++index_rebuilds_;
}

void DynamicDfs::rebase() {
  obs::ScopedPhase timer(*rebase_hist_, "rebase");
  // index_ already describes the current forest: alias it as the epoch's
  // base tree (it is immutable — rebuild_index() swaps in a new object
  // rather than mutating) and rebuild D over it. No O(n) copy.
  base_index_ = index_;
  oracle_.build(graph_, *base_index_, cost_);
  structural_since_rebase_ = 0;
  ++epoch_rebuilds_;
  const auto n = static_cast<std::uint64_t>(graph_.num_vertices());
  epoch_period_ =
      n > 1 ? static_cast<std::size_t>(64 - __builtin_clzll(n - 1)) : 1;
  // Theorem 9 budgets k <= log n *updates*; one structural update can emit
  // several patches (a vertex insert emits 1 + degree), so the patch cap
  // carries a constant slack over the epoch length.
  patch_budget_ = 4 * epoch_period_;
}

void DynamicDfs::maybe_rebase() {
  if (structural_since_rebase_ >= epoch_period_ ||
      oracle_.patch_count() > patch_budget_) {
    rebase();
  }
}

void DynamicDfs::finish_structural() {
  ++structural_since_rebase_;
  rebuild_index();
}

void DynamicDfs::execute(const ReductionResult& reduction, const OracleView& view) {
  // parent_ already holds the pre-update forest; reroots overwrite their
  // subtrees, direct assignments patch single slots. The view is shared
  // with the preceding reduction so its decompose memo spans the update.
  Rerooter engine(*index_, view, strategy_, cost_, num_threads_,
                  engine_cutoff(), &graph_);
  last_stats_ = engine.run(reduction.reroots, parent_);
  mirror_reroot_stats(last_stats_);
  for (const auto& [v, p] : reduction.direct) {
    parent_[static_cast<std::size_t>(v)] = p;
  }
}

UpdatePhaseBreakdown DynamicDfs::phase_breakdown() {
  UpdatePhaseBreakdown b;
  b.patch_us = patch_hist().sum();
  b.reroot_us = reroot_hist().sum();
  b.index_rebuild_us = index_rebuild_hist().sum();
  b.rebase_us = rebase_hist().sum();
  if (g_sharded_phase_series.load(std::memory_order_relaxed)) {
    // Shard-labeled engines record into their own series of the same family;
    // fold them in so the breakdown stays a process-wide total. The service
    // phases (queue_wait, publish) share the metric name but not these phase
    // labels, so the prefix match skips them — exactly as before.
    for (const obs::Histogram* h : obs::Registry::global().histograms()) {
      if (h->name() != "pardfs_update_phase_us") continue;
      const std::string& l = h->labels();
      if (l.find(",shard=\"") == std::string::npos) continue;  // counted above
      if (l.rfind("phase=\"patch\"", 0) == 0) {
        b.patch_us += h->sum();
      } else if (l.rfind("phase=\"reroot\"", 0) == 0) {
        b.reroot_us += h->sum();
      } else if (l.rfind("phase=\"index_rebuild\"", 0) == 0) {
        b.index_rebuild_us += h->sum();
      } else if (l.rfind("phase=\"rebase\"", 0) == 0) {
        b.rebase_us += h->sum();
      }
    }
  }
  return b;
}

void DynamicDfs::pad_capacity(Vertex capacity) {
  if (capacity <= graph_.capacity()) return;
  graph_.pad_to(capacity);
  // Dead ids carry no adjacency and are never queried, so D needs no
  // patching; the index rebuild widens its arrays over the new id space so
  // range checks stay valid.
  rebuild_index();
}

DynamicDfs::ComponentTransfer DynamicDfs::extract_component(Vertex v) {
  PARDFS_CHECK_MSG(graph_.is_alive(v), "extract_component: vertex not alive");
  ComponentTransfer t;
  // The DFS forest's trees are exactly the connected components, so the
  // component of v is everything sharing its root.
  const Vertex root = index_->root_of(v);
  for (Vertex w = 0; w < graph_.capacity(); ++w) {
    if (graph_.is_alive(w) && index_->root_of(w) == root) {
      t.vertices.push_back(w);
    }
  }
  t.parent.reserve(t.vertices.size());
  for (const Vertex w : t.vertices) {
    t.parent.push_back(parent_[static_cast<std::size_t>(w)]);
  }
  t.rows = graph_.extract_component(t.vertices);
  for (const Vertex w : t.vertices) {
    parent_[static_cast<std::size_t>(w)] = kNullVertex;
  }
  // The component is gone: rebuild the current index over the survivors and
  // open a fresh epoch (D must not retain sorted lists or patches that
  // reference the extracted rows).
  rebuild_index();
  rebase();
  return t;
}

void DynamicDfs::adopt_component(ComponentTransfer t) {
  if (!t.vertices.empty()) {
    graph_.pad_to(t.vertices.back() + 1);  // ids are ascending
  }
  graph_.adopt_component(t.vertices, std::move(t.rows));
  parent_.resize(static_cast<std::size_t>(graph_.capacity()), kNullVertex);
  for (std::size_t i = 0; i < t.vertices.size(); ++i) {
    parent_[static_cast<std::size_t>(t.vertices[i])] = t.parent[i];
  }
  rebuild_index();
  rebase();
}

void DynamicDfs::insert_edge(Vertex u, Vertex v) {
  // Checked before the back-edge test, which indexes by vertex id.
  PARDFS_CHECK(graph_.is_alive(u) && graph_.is_alive(v));
  const bool back = index_->is_ancestor(u, v) || index_->is_ancestor(v, u);
  // Rebase (if due) against the pre-update graph so the fresh D never holds
  // (u, v) in both its sorted lists and its patch lists.
  if (!back) maybe_rebase();
  {
    obs::ScopedPhase timer(*patch_hist_, "patch");
    PARDFS_CHECK(graph_.add_edge(u, v));
    oracle_.note_edge_inserted(u, v);
  }
  if (back) {
    last_stats_ = {};  // back edge: forest untouched, one patch, no rebuild
    return;
  }
  {
    obs::ScopedPhase timer(*reroot_hist_, "reroot");
    const OracleView view(&oracle_, index_.get(), at_base());
    execute(reduce_insert_edge(*index_, u, v), view);
  }
  finish_structural();
}

void DynamicDfs::delete_edge(Vertex u, Vertex v) {
  // Checked before the tree-edge test, which indexes by vertex id.
  PARDFS_CHECK(graph_.is_alive(u) && graph_.is_alive(v));
  const bool u_parent = parent_[static_cast<std::size_t>(v)] == u;
  const bool v_parent = parent_[static_cast<std::size_t>(u)] == v;
  const bool tree_edge = u_parent || v_parent;
  if (tree_edge) maybe_rebase();
  {
    obs::ScopedPhase timer(*patch_hist_, "patch");
    oracle_.note_edge_deleted(u, v);
    PARDFS_CHECK(graph_.remove_edge(u, v));
  }
  if (!tree_edge) {
    last_stats_ = {};  // back edge: forest untouched, one patch, no rebuild
    return;
  }
  {
    obs::ScopedPhase timer(*reroot_hist_, "reroot");
    const Vertex parent_side = u_parent ? u : v;
    const Vertex child_side = u_parent ? v : u;
    const OracleView view(&oracle_, index_.get(), at_base());
    execute(reduce_delete_tree_edge(*index_, view, parent_side, child_side), view);
  }
  finish_structural();
}

Vertex DynamicDfs::insert_vertex(std::span<const Vertex> neighbors) {
  maybe_rebase();
  Vertex v = kNullVertex;
  {
    obs::ScopedPhase timer(*patch_hist_, "patch");
    v = graph_.add_vertex(neighbors);
    oracle_.note_vertex_inserted(v, neighbors);
  }
  parent_.resize(static_cast<std::size_t>(graph_.capacity()), kNullVertex);
  {
    obs::ScopedPhase timer(*reroot_hist_, "reroot");
    const OracleView view(&oracle_, index_.get(), at_base());
    execute(reduce_insert_vertex(*index_, v, neighbors), view);
  }
  finish_structural();
  return v;
}

void DynamicDfs::delete_vertex(Vertex v) {
  maybe_rebase();
  const auto nbrs = graph_.neighbors(v);
  const std::vector<Vertex> former_neighbors(nbrs.begin(), nbrs.end());
  std::vector<Vertex> children(index_->children(v).begin(), index_->children(v).end());
  const Vertex former_parent = parent_[static_cast<std::size_t>(v)];
  {
    obs::ScopedPhase timer(*patch_hist_, "patch");
    oracle_.note_vertex_deleted(v, former_neighbors);
    graph_.remove_vertex(v);
  }
  {
    obs::ScopedPhase timer(*reroot_hist_, "reroot");
    const OracleView view(&oracle_, index_.get(), at_base());
    const ReductionResult r =
        reduce_delete_vertex(*index_, view, v, children, former_parent);
    parent_[static_cast<std::size_t>(v)] = kNullVertex;
    execute(r, view);
  }
  finish_structural();
}

void DynamicDfs::apply(const GraphUpdate& update) {
  switch (update.kind) {
    case GraphUpdate::Kind::kInsertEdge:
      insert_edge(update.u, update.v);
      break;
    case GraphUpdate::Kind::kDeleteEdge:
      delete_edge(update.u, update.v);
      break;
    case GraphUpdate::Kind::kInsertVertex:
      insert_vertex(update.neighbors);
      break;
    case GraphUpdate::Kind::kDeleteVertex:
      delete_vertex(update.u);
      break;
  }
}

bool DynamicDfs::is_structural(const GraphUpdate& u) const {
  switch (u.kind) {
    case GraphUpdate::Kind::kInsertEdge:
      PARDFS_CHECK(graph_.is_alive(u.u) && graph_.is_alive(u.v));
      return !index_->is_ancestor(u.u, u.v) && !index_->is_ancestor(u.v, u.u);
    case GraphUpdate::Kind::kDeleteEdge:
      PARDFS_CHECK(graph_.is_alive(u.u) && graph_.is_alive(u.v));
      return parent_[static_cast<std::size_t>(u.v)] == u.u ||
             parent_[static_cast<std::size_t>(u.u)] == u.v;
    case GraphUpdate::Kind::kInsertVertex:
    case GraphUpdate::Kind::kDeleteVertex:
      return true;
  }
  return true;
}

bool DynamicDfs::flush_segment(Segment& seg) {
  if (seg.ops.empty()) return false;
  if (seg.structural == 0 || seg.ops.size() == 1) {
    // All patch-only, or a single update: the per-update path is exact (and
    // for one structural update reroots only the affected subtrees).
    for (const GraphUpdate* op : seg.ops) apply(*op);
    seg.ops.clear();
    seg.structural = 0;
    return false;
  }
  // Epoch policy runs once, against the pre-batch graph (see insert_edge).
  maybe_rebase();
  // Phase 1: mutate the graph and patch D for the whole segment, collecting
  // the structural changes against the still-pre-batch forest.
  BatchChanges changes;
  {
    obs::ScopedPhase timer(*patch_hist_, "patch");
    for (const GraphUpdate* op : seg.ops) {
      switch (op->kind) {
        case GraphUpdate::Kind::kInsertEdge: {
          const bool back = index_->is_ancestor(op->u, op->v) ||
                            index_->is_ancestor(op->v, op->u);
          PARDFS_CHECK(graph_.add_edge(op->u, op->v));
          oracle_.note_edge_inserted(op->u, op->v);
          if (!back) changes.inserted_edges.push_back({op->u, op->v});
          break;
        }
        case GraphUpdate::Kind::kDeleteEdge: {
          const bool u_parent = parent_[static_cast<std::size_t>(op->v)] == op->u;
          const bool v_parent = parent_[static_cast<std::size_t>(op->u)] == op->v;
          oracle_.note_edge_deleted(op->u, op->v);
          PARDFS_CHECK(graph_.remove_edge(op->u, op->v));
          if (u_parent) {
            changes.cut_edges.emplace_back(op->u, op->v);
          } else if (v_parent) {
            changes.cut_edges.emplace_back(op->v, op->u);
          }
          break;
        }
        case GraphUpdate::Kind::kDeleteVertex: {
          const Vertex v = op->u;
          PARDFS_CHECK(graph_.is_alive(v));
          const auto nbrs = graph_.neighbors(v);
          const std::vector<Vertex> former_neighbors(nbrs.begin(), nbrs.end());
          oracle_.note_vertex_deleted(v, former_neighbors);
          graph_.remove_vertex(v);
          changes.deleted_vertices.push_back(v);
          break;
        }
        case GraphUpdate::Kind::kInsertVertex:
          PARDFS_CHECK_MSG(false, "vertex inserts close segments");
          break;
      }
    }
  }
  // Phase 2 + 3: one combined reduction, one engine pass.
  {
    obs::ScopedPhase timer(*reroot_hist_, "reroot");
    const OracleView view(&oracle_, index_.get(), at_base());
    BatchReduction reduction = reduce_batch(*index_, view, graph_, changes);
    Rerooter engine(*index_, view, strategy_, cost_, num_threads_,
                  engine_cutoff(), &graph_);
    last_stats_ = engine.run_components(std::move(reduction.components), parent_);
    mirror_reroot_stats(last_stats_);
    for (const auto& [v, p] : reduction.direct) {
      parent_[static_cast<std::size_t>(v)] = p;
    }
    for (const Vertex v : changes.deleted_vertices) {
      parent_[static_cast<std::size_t>(v)] = kNullVertex;
    }
  }
  // Phase 4: one O(n) index rebuild for the whole segment.
  structural_since_rebase_ += seg.structural;
  rebuild_index();
  seg.ops.clear();
  seg.structural = 0;
  return true;
}

BatchStats DynamicDfs::apply_batch(std::span<const GraphUpdate> updates) {
  BatchStats stats;
  stats.updates = updates.size();
  const std::size_t index_rebuilds_before = index_rebuilds_;
  const std::size_t base_rebuilds_before = epoch_rebuilds_;

  Segment seg;
  for (const GraphUpdate& u : updates) {
    if (u.kind == GraphUpdate::Kind::kInsertVertex) {
      // Vertex inserts assign an id later updates may reference: they close
      // the pending segment and run through the per-update path.
      stats.segments += flush_segment(seg) ? 1 : 0;
      stats.new_vertices.push_back(insert_vertex(u.neighbors));
      ++stats.structural;
      continue;
    }
    const bool structural = is_structural(u);
    if (structural && seg.structural >= epoch_period_) {
      stats.segments += flush_segment(seg) ? 1 : 0;
    }
    seg.ops.push_back(&u);
    seg.structural += structural ? 1 : 0;
    if (structural) {
      ++stats.structural;
    } else {
      ++stats.back_edges;
    }
  }
  stats.segments += flush_segment(seg) ? 1 : 0;
  stats.index_rebuilds = index_rebuilds_ - index_rebuilds_before;
  stats.base_rebuilds = epoch_rebuilds_ - base_rebuilds_before;
  // Update-mix counters: the observed structural/back-edge ratio is the
  // signal the adaptive-backend cost model (ROADMAP) will consume.
  static obs::Counter& structural_ctr = obs::Registry::global().counter(
      "pardfs_updates_total", "kind=\"structural\"");
  static obs::Counter& back_edge_ctr = obs::Registry::global().counter(
      "pardfs_updates_total", "kind=\"back_edge\"");
  static obs::Counter& segments_ctr =
      obs::Registry::global().counter("pardfs_segments_total");
  if (stats.structural != 0) structural_ctr.add(stats.structural);
  if (stats.back_edges != 0) back_edge_ctr.add(stats.back_edges);
  if (stats.segments != 0) segments_ctr.add(stats.segments);
  return stats;
}

}  // namespace pardfs
