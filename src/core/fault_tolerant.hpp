// Fault-tolerant DFS (paper Theorem 14): preprocess once, then answer any
// batch of k (≤ log n) updates without ever rebuilding the data structure D.
//
// The oracle stays bound to the original tree T; after each update the tree
// index is rebuilt (O(n) work — allowed with n processors, Theorem 10) but
// queries on the evolving tree T*_i are decomposed into ancestor-descendant
// segments of T (Theorem 9), with inserted vertices/edges handled by the
// oracle's patch lists and deletions filtered during probes.
#pragma once

#include <span>
#include <vector>

#include "core/adjacency_oracle.hpp"
#include "core/reduction.hpp"
#include "core/rerooter.hpp"
#include "graph/graph.hpp"
#include "pram/cost_model.hpp"
#include "tree/tree_index.hpp"

namespace pardfs {

class FaultTolerantDfs {
 public:
  // Preprocessing: static DFS + D (O(m) space, O(log n) PRAM time).
  // `num_threads` caps the rerooting engine's worker team (0 = the pram
  // facade default); results are identical at any value.
  explicit FaultTolerantDfs(Graph graph, pram::CostModel* cost = nullptr,
                            int num_threads = 0);

  FaultTolerantDfs(FaultTolerantDfs&& other) noexcept;
  FaultTolerantDfs& operator=(FaultTolerantDfs&& other) noexcept;
  FaultTolerantDfs(const FaultTolerantDfs&) = delete;
  FaultTolerantDfs& operator=(const FaultTolerantDfs&) = delete;

  // Applies one update batch on top of the preprocessed state (previous
  // batches are rolled back first). Returns the DFS forest of the updated
  // graph as a parent array indexed by vertex id.
  std::span<const Vertex> apply(std::span<const GraphUpdate> updates);

  // Applies one more update on top of the current state (no rollback).
  void apply_incremental(const GraphUpdate& update);

  // Rolls back to the preprocessed graph/forest, dropping all patches.
  void reset();

  // Re-preprocesses from the CURRENT state: the working graph/forest become
  // the new base and D is rebuilt over them (the paper's m-processor step).
  // This is the primitive behind the amortized variant below, addressing
  // the paper's closing question of processing more than log n updates with
  // fewer D rebuilds.
  void rebase();

  const Graph& graph() const { return working_graph_; }
  std::span<const Vertex> parent() const { return parent_; }
  const TreeIndex& tree() const { return index_; }
  const RerootStats& last_stats() const { return last_stats_; }
  std::size_t updates_applied() const { return updates_applied_; }

 private:
  void rebuild_index();
  void execute(const ReductionResult& reduction);

  // Pristine preprocessed state.
  Graph base_graph_;
  std::vector<Vertex> base_parent_;
  TreeIndex base_index_;
  AdjacencyOracle oracle_;  // built once over base_graph_/base_index_

  // Working state, evolving with the batch.
  Graph working_graph_;
  std::vector<Vertex> parent_;
  TreeIndex index_;
  std::size_t updates_applied_ = 0;

  pram::CostModel* cost_;
  int num_threads_ = 0;
  RerootStats last_stats_;
};

// Amortized fully dynamic DFS — the trade-off the paper's conclusion asks
// about, with the rebuild period as an explicit knob. FaultTolerantDfs
// never rebuilds D but each query decomposes over all accumulated reroots,
// degrading after ~log n updates; AmortizedDynamicDfs rebuilds every
// `period` updates: per-update rebuild work is O~(m / period) amortized
// while queries pay at most `period` accumulated decompositions.
// period = ∞ is FaultTolerantDfs; DynamicDfs's epoch policy (DESIGN.md §5)
// sits at period = Θ(log n) and adds the back-edge fast path.
// bench_amortized sweeps the knob.
class AmortizedDynamicDfs {
 public:
  explicit AmortizedDynamicDfs(Graph graph, std::size_t period,
                               pram::CostModel* cost = nullptr,
                               int num_threads = 0)
      : inner_(std::move(graph), cost, num_threads),
        period_(period == 0 ? 1 : period) {}

  void apply(const GraphUpdate& update) {
    inner_.apply_incremental(update);
    if (inner_.updates_applied() >= period_) {
      inner_.rebase();
      ++rebuilds_;
    }
  }

  const Graph& graph() const { return inner_.graph(); }
  std::span<const Vertex> parent() const { return inner_.parent(); }
  const RerootStats& last_stats() const { return inner_.last_stats(); }
  std::size_t rebuilds() const { return rebuilds_; }
  std::size_t period() const { return period_; }

 private:
  FaultTolerantDfs inner_;
  std::size_t period_;
  std::size_t rebuilds_ = 0;
};

}  // namespace pardfs
