#include "core/fault_tolerant.hpp"

#include <utility>

#include "baseline/static_dfs.hpp"
#include "util/check.hpp"

namespace pardfs {

FaultTolerantDfs::FaultTolerantDfs(Graph graph, pram::CostModel* cost,
                                   int num_threads)
    : base_graph_(std::move(graph)), cost_(cost), num_threads_(num_threads) {
  base_parent_ = static_dfs(base_graph_);
  base_index_.build(base_parent_, base_graph_.alive());
  oracle_.build(base_graph_, base_index_, cost_);
  working_graph_ = base_graph_;
  parent_ = base_parent_;
  rebuild_index();
}

FaultTolerantDfs::FaultTolerantDfs(FaultTolerantDfs&& other) noexcept
    : base_graph_(std::move(other.base_graph_)),
      base_parent_(std::move(other.base_parent_)),
      base_index_(std::move(other.base_index_)),
      oracle_(std::move(other.oracle_)),
      working_graph_(std::move(other.working_graph_)),
      parent_(std::move(other.parent_)),
      index_(std::move(other.index_)),
      updates_applied_(other.updates_applied_),
      cost_(other.cost_),
      num_threads_(other.num_threads_),
      last_stats_(other.last_stats_) {
  oracle_.rebind_base(&base_index_);
}

FaultTolerantDfs& FaultTolerantDfs::operator=(FaultTolerantDfs&& other) noexcept {
  if (this != &other) {
    base_graph_ = std::move(other.base_graph_);
    base_parent_ = std::move(other.base_parent_);
    base_index_ = std::move(other.base_index_);
    oracle_ = std::move(other.oracle_);
    working_graph_ = std::move(other.working_graph_);
    parent_ = std::move(other.parent_);
    index_ = std::move(other.index_);
    updates_applied_ = other.updates_applied_;
    cost_ = other.cost_;
    num_threads_ = other.num_threads_;
    last_stats_ = other.last_stats_;
    oracle_.rebind_base(&base_index_);
  }
  return *this;
}

void FaultTolerantDfs::rebuild_index() {
  parent_.resize(static_cast<std::size_t>(working_graph_.capacity()), kNullVertex);
  index_.build(parent_, working_graph_.alive());
}

void FaultTolerantDfs::reset() {
  oracle_.clear_patches();
  working_graph_ = base_graph_;
  parent_ = base_parent_;
  updates_applied_ = 0;
  rebuild_index();
}

void FaultTolerantDfs::rebase() {
  base_graph_ = working_graph_;
  base_parent_ = parent_;
  base_index_.build(base_parent_, base_graph_.alive());
  oracle_.build(base_graph_, base_index_, cost_);
  updates_applied_ = 0;
  rebuild_index();
}

void FaultTolerantDfs::execute(const ReductionResult& reduction) {
  // identity=false: current-tree paths are decomposed into base segments
  // before touching D (Theorem 9).
  const bool identity = updates_applied_ == 0;
  const OracleView view(&oracle_, &index_, identity);
  Rerooter engine(index_, view, RerootStrategy::kPaper, cost_, num_threads_,
                  Rerooter::default_serial_cutoff(index_.capacity()));
  last_stats_ = engine.run(reduction.reroots, parent_);
  for (const auto& [v, p] : reduction.direct) {
    parent_[static_cast<std::size_t>(v)] = p;
  }
}

void FaultTolerantDfs::apply_incremental(const GraphUpdate& update) {
  switch (update.kind) {
    case GraphUpdate::Kind::kInsertEdge: {
      PARDFS_CHECK(working_graph_.add_edge(update.u, update.v));
      oracle_.note_edge_inserted(update.u, update.v);
      if (!index_.is_ancestor(update.u, update.v) &&
          !index_.is_ancestor(update.v, update.u)) {
        execute(reduce_insert_edge(index_, update.u, update.v));
      } else {
        last_stats_ = {};
      }
      break;
    }
    case GraphUpdate::Kind::kDeleteEdge: {
      oracle_.note_edge_deleted(update.u, update.v);
      PARDFS_CHECK(working_graph_.remove_edge(update.u, update.v));
      const bool u_parent = parent_[static_cast<std::size_t>(update.v)] == update.u;
      const bool v_parent = parent_[static_cast<std::size_t>(update.u)] == update.v;
      if (u_parent || v_parent) {
        const Vertex ps = u_parent ? update.u : update.v;
        const Vertex cs = u_parent ? update.v : update.u;
        const bool identity = updates_applied_ == 0;
        const OracleView view(&oracle_, &index_, identity);
        execute(reduce_delete_tree_edge(index_, view, ps, cs));
      } else {
        last_stats_ = {};
      }
      break;
    }
    case GraphUpdate::Kind::kInsertVertex: {
      const Vertex v = working_graph_.add_vertex(update.neighbors);
      oracle_.note_vertex_inserted(v, update.neighbors);
      parent_.resize(static_cast<std::size_t>(working_graph_.capacity()), kNullVertex);
      execute(reduce_insert_vertex(index_, v, update.neighbors));
      break;
    }
    case GraphUpdate::Kind::kDeleteVertex: {
      const Vertex v = update.u;
      const auto nbrs = working_graph_.neighbors(v);
      const std::vector<Vertex> former_neighbors(nbrs.begin(), nbrs.end());
      std::vector<Vertex> children(index_.children(v).begin(),
                                   index_.children(v).end());
      const Vertex former_parent = parent_[static_cast<std::size_t>(v)];
      oracle_.note_vertex_deleted(v, former_neighbors);
      working_graph_.remove_vertex(v);
      const bool identity = updates_applied_ == 0;
      const OracleView view(&oracle_, &index_, identity);
      const ReductionResult r =
          reduce_delete_vertex(index_, view, v, children, former_parent);
      parent_[static_cast<std::size_t>(v)] = kNullVertex;
      execute(r);
      break;
    }
  }
  ++updates_applied_;
  rebuild_index();  // tree structures only; D is never rebuilt
}

std::span<const Vertex> FaultTolerantDfs::apply(std::span<const GraphUpdate> updates) {
  reset();
  for (const GraphUpdate& u : updates) apply_incremental(u);
  return parent_;
}

}  // namespace pardfs
