// The reduction algorithm (paper §3, Theorem 2/11): any single graph update
// reduces to independently rerooting disjoint subtrees of the current DFS
// forest, via O(1) sets of independent queries on D plus LCA work.
//
// The virtual super root of §2 stays implicit: a component with no real edge
// to the query path simply becomes (or stays) a tree root of the forest —
// exactly the behavior the dummy root's phantom edges would produce, without
// polluting D with O(n) entries.
//
// Call protocol (enforced by the wrappers in dynamic_dfs/fault_tolerant):
// the oracle must already be patched with the update, the graph must already
// be mutated, and the tree index must still describe the PRE-update forest.
#pragma once

#include <vector>

#include "core/components.hpp"
#include "core/rerooter.hpp"
#include "graph/edge.hpp"

namespace pardfs {

// Update vocabulary for batch interfaces (fault tolerance, streaming, ...).
struct GraphUpdate {
  enum class Kind : std::uint8_t {
    kInsertEdge,
    kDeleteEdge,
    kInsertVertex,
    kDeleteVertex,
  };
  Kind kind = Kind::kInsertEdge;
  Vertex u = kNullVertex;
  Vertex v = kNullVertex;
  std::vector<Vertex> neighbors;  // kInsertVertex: incident edge set

  static GraphUpdate insert_edge(Vertex u, Vertex v) {
    return {Kind::kInsertEdge, u, v, {}};
  }
  static GraphUpdate delete_edge(Vertex u, Vertex v) {
    return {Kind::kDeleteEdge, u, v, {}};
  }
  static GraphUpdate insert_vertex(std::vector<Vertex> neighbors) {
    return {Kind::kInsertVertex, kNullVertex, kNullVertex, std::move(neighbors)};
  }
  static GraphUpdate delete_vertex(Vertex v) {
    return {Kind::kDeleteVertex, v, kNullVertex, {}};
  }
};

struct ReductionResult {
  std::vector<RerootRequest> reroots;
  // Direct parent assignments needing no rerooting (detached components
  // keeping their structure; the inserted vertex itself).
  std::vector<std::pair<Vertex, Vertex>> direct;  // (vertex, parent-or-null)
};

// Deletion of tree edge (parent_side, child_side) where parent_side is the
// current parent of child_side. Non-tree deletions need no reduction.
ReductionResult reduce_delete_tree_edge(const TreeIndex& cur, const OracleView& view,
                                        Vertex parent_side, Vertex child_side);

// Insertion of edge (u, v) that is not a back edge of the current forest.
ReductionResult reduce_insert_edge(const TreeIndex& cur, Vertex u, Vertex v);

// Deletion of vertex v (children / parent captured before the graph mutated).
ReductionResult reduce_delete_vertex(const TreeIndex& cur, const OracleView& view,
                                     Vertex v, std::span<const Vertex> children,
                                     Vertex former_parent);

// Insertion of vertex `v` with the given neighbor set.
ReductionResult reduce_insert_vertex(const TreeIndex& cur, Vertex v,
                                     std::span<const Vertex> neighbors);

}  // namespace pardfs
