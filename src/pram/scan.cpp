#include "pram/scan.hpp"

#include "pram/parallel.hpp"
#include "util/check.hpp"

namespace pardfs::pram {

std::uint64_t exclusive_scan(std::span<const std::uint32_t> in,
                             std::span<std::uint32_t> out) {
  PARDFS_CHECK(in.size() == out.size());
  const std::size_t n = in.size();
  if (n == 0) return 0;
  if (n < kSerialGrain) {
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t v = in[i];
      out[i] = static_cast<std::uint32_t>(acc);
      acc += v;
    }
    return acc;
  }
  const int threads = num_threads();
  const std::size_t block = (n + threads - 1) / threads;
  std::vector<std::uint64_t> block_sum(static_cast<std::size_t>(threads) + 1, 0);
  parallel_for_t(0, static_cast<std::size_t>(threads), [&](std::size_t t) {
    const std::size_t lo = t * block;
    const std::size_t hi = lo + block < n ? lo + block : n;
    std::uint64_t acc = 0;
    for (std::size_t i = lo; i < hi; ++i) acc += in[i];
    block_sum[t + 1] = acc;
  });
  for (std::size_t t = 1; t <= static_cast<std::size_t>(threads); ++t) {
    block_sum[t] += block_sum[t - 1];
  }
  parallel_for_t(0, static_cast<std::size_t>(threads), [&](std::size_t t) {
    const std::size_t lo = t * block;
    const std::size_t hi = lo + block < n ? lo + block : n;
    std::uint64_t acc = block_sum[t];
    for (std::size_t i = lo; i < hi; ++i) {
      const std::uint32_t v = in[i];
      out[i] = static_cast<std::uint32_t>(acc);
      acc += v;
    }
  });
  return block_sum[static_cast<std::size_t>(threads)];
}

std::vector<std::uint32_t> pack_indices(std::span<const std::uint8_t> flags) {
  const std::size_t n = flags.size();
  std::vector<std::uint32_t> ones(n), offsets(n);
  parallel_for_t(0, n, [&](std::size_t i) { ones[i] = flags[i] ? 1u : 0u; });
  const std::uint64_t total = exclusive_scan(ones, offsets);
  std::vector<std::uint32_t> packed(total);
  parallel_for_t(0, n, [&](std::size_t i) {
    if (flags[i]) packed[offsets[i]] = static_cast<std::uint32_t>(i);
  });
  return packed;
}

}  // namespace pardfs::pram
