// Pointer-jumping list ranking (Wyllie), the primitive behind the
// Euler-tour technique (Tarjan–Vishkin, Theorem 4 of the paper).
//
// Given a linked list as a successor array, computes for each node its
// distance to the list tail. O(n log n) work, O(log n) depth — the textbook
// EREW formulation; the paper only needs it inside O(log n)-time tree
// preprocessing, where the extra log factor in work is absorbed by the
// poly-log slack of the bounds.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pardfs::pram {

inline constexpr std::uint32_t kListEnd = 0xFFFFFFFFu;

// next[i] = successor of i, or kListEnd for the tail.
// Returns rank[i] = number of links from i to the tail (tail has rank 0).
// Every node must reach a tail (no cycles); multiple disjoint lists are fine.
std::vector<std::uint32_t> list_rank(std::span<const std::uint32_t> next);

}  // namespace pardfs::pram
