// Thin PRAM-style facade over OpenMP.
//
// The algorithm code reads as the paper's PRAM pseudo-code: `parallel_for_t`
// assigns one logical processor per element, `parallel_reduce` is an
// O(log n)-depth tree reduction, and `parallel_for_workers` fans a round of
// coarse tasks (e.g. rerooting component steps) over a fixed worker team,
// exposing the worker id for per-worker scratch. Results are deterministic
// and independent of the physical thread count (reductions use a
// user-supplied associative, total-order combiner applied over a fixed
// blocking; worker loops write per-task slots merged in task order).
//
// Grain control: spawning OpenMP teams for tiny loops costs more than the
// loop body; below `kSerialGrain` elements the facade runs serially. This
// changes nothing observable (the cost model counts logical rounds, not
// threads).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#if defined(_OPENMP)
#include <omp.h>
#endif

// TSan cannot see libgomp's futex-based fork/join barrier, so every read
// after an omp region looks racy against the workers' writes. Under
// -fsanitize=thread the worker fan-out therefore runs on std::threads,
// whose create/join edges TSan understands; real races between worker
// bodies stay fully visible.
#if defined(__SANITIZE_THREAD__)
#define PARDFS_PRAM_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define PARDFS_PRAM_TSAN 1
#endif
#endif

#if defined(PARDFS_PRAM_TSAN)
#include <atomic>
#include <thread>
#endif

namespace pardfs::pram {

inline constexpr std::size_t kSerialGrain = 2048;

// Number of worker threads the facade will use (defaults to OpenMP's choice).
int num_threads();
void set_num_threads(int n);

// for (i in [begin, end)) body(i), one logical processor per index. Body is
// a template parameter (not std::function) so hot loops inline fully.
template <typename Body>
void parallel_for_t(std::size_t begin, std::size_t end, Body&& body) {
  const std::size_t count = end > begin ? end - begin : 0;
  if (count == 0) return;
  if (count < kSerialGrain) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
#pragma omp parallel for schedule(static)
  for (std::int64_t i = static_cast<std::int64_t>(begin);
       i < static_cast<std::int64_t>(end); ++i) {
    body(static_cast<std::size_t>(i));
  }
}

// for (i in [0, count)) body(worker, i), where worker < threads identifies
// the executing worker so callers can keep per-worker scratch (sized to
// `threads`; 0 = num_threads()). Unlike parallel_for_t there is no
// serial-grain cutoff: each task is assumed substantial (e.g. one whole
// rerooting component step), and tasks are claimed dynamically for load
// balance. Callers must produce results that are independent of which
// worker runs which task (write into per-task slots, merge per-worker
// accumulators with commutative ops).
template <typename Body>
void parallel_for_workers(std::size_t count, int threads, Body&& body) {
  if (count == 0) return;
  if (threads <= 0) threads = num_threads();
#if defined(PARDFS_PRAM_TSAN)
  if (threads > 1 && count > 1) {
    const int team =
        threads < static_cast<int>(count) ? threads : static_cast<int>(count);
    std::atomic<std::size_t> cursor{0};
    const auto drain = [&](int worker) {
      for (std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
           i < count; i = cursor.fetch_add(1, std::memory_order_relaxed)) {
        body(worker, i);
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(team - 1));
    for (int w = 1; w < team; ++w) pool.emplace_back(drain, w);
    drain(0);  // the calling thread is worker 0, as in the OpenMP path
    for (std::thread& t : pool) t.join();
    return;
  }
#elif defined(_OPENMP)
  if (threads > 1 && count > 1) {
    const int team =
        threads < static_cast<int>(count) ? threads : static_cast<int>(count);
#pragma omp parallel num_threads(team)
    {
      const int worker = omp_get_thread_num();
#pragma omp for schedule(dynamic, 1)
      for (std::int64_t i = 0; i < static_cast<std::int64_t>(count); ++i) {
        body(worker, static_cast<std::size_t>(i));
      }
    }
    return;
  }
#endif
  for (std::size_t i = 0; i < count; ++i) body(0, i);
}

// Tree reduction: combine(identity, f(begin), ..., f(end-1)). `combine` must
// be associative; evaluation order is a fixed left-to-right blocking so the
// result is deterministic for non-commutative combiners too.
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t begin, std::size_t end, T identity, Map&& map,
                  Combine&& combine) {
  const std::size_t count = end > begin ? end - begin : 0;
  if (count == 0) return identity;
  if (count < kSerialGrain) {
    T acc = identity;
    for (std::size_t i = begin; i < end; ++i) acc = combine(acc, map(i));
    return acc;
  }
  const int threads = num_threads();
  std::vector<T> partial(static_cast<std::size_t>(threads), identity);
  const std::size_t block = (count + threads - 1) / threads;
#pragma omp parallel num_threads(threads)
  {
#pragma omp for schedule(static)
    for (int t = 0; t < threads; ++t) {
      const std::size_t lo = begin + static_cast<std::size_t>(t) * block;
      const std::size_t hi = lo + block < end ? lo + block : end;
      T acc = identity;
      for (std::size_t i = lo; i < hi; ++i) acc = combine(acc, map(i));
      partial[static_cast<std::size_t>(t)] = acc;
    }
  }
  T acc = identity;
  for (const T& p : partial) acc = combine(acc, p);
  return acc;
}

}  // namespace pardfs::pram
