// Thin PRAM-style facade over OpenMP.
//
// The algorithm code reads as the paper's PRAM pseudo-code: `parallel_for_t`
// assigns one logical processor per element, `parallel_reduce` is an
// O(log n)-depth tree reduction. Results are deterministic and independent
// of the physical thread count (reductions use a user-supplied associative,
// commutative-or-index-ordered combiner applied over a fixed blocking).
//
// Grain control: spawning OpenMP teams for tiny loops costs more than the
// loop body; below `kSerialGrain` elements the facade runs serially. This
// changes nothing observable (the cost model counts logical rounds, not
// threads).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pardfs::pram {

inline constexpr std::size_t kSerialGrain = 2048;

// Number of worker threads the facade will use (defaults to OpenMP's choice).
int num_threads();
void set_num_threads(int n);

// for (i in [begin, end)) body(i), one logical processor per index. Body is
// a template parameter (not std::function) so hot loops inline fully.
template <typename Body>
void parallel_for_t(std::size_t begin, std::size_t end, Body&& body) {
  const std::size_t count = end > begin ? end - begin : 0;
  if (count == 0) return;
  if (count < kSerialGrain) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
#pragma omp parallel for schedule(static)
  for (std::int64_t i = static_cast<std::int64_t>(begin);
       i < static_cast<std::int64_t>(end); ++i) {
    body(static_cast<std::size_t>(i));
  }
}

// Tree reduction: combine(identity, f(begin), ..., f(end-1)). `combine` must
// be associative; evaluation order is a fixed left-to-right blocking so the
// result is deterministic for non-commutative combiners too.
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t begin, std::size_t end, T identity, Map&& map,
                  Combine&& combine) {
  const std::size_t count = end > begin ? end - begin : 0;
  if (count == 0) return identity;
  if (count < kSerialGrain) {
    T acc = identity;
    for (std::size_t i = begin; i < end; ++i) acc = combine(acc, map(i));
    return acc;
  }
  const int threads = num_threads();
  std::vector<T> partial(static_cast<std::size_t>(threads), identity);
  const std::size_t block = (count + threads - 1) / threads;
#pragma omp parallel num_threads(threads)
  {
#pragma omp for schedule(static)
    for (int t = 0; t < threads; ++t) {
      const std::size_t lo = begin + static_cast<std::size_t>(t) * block;
      const std::size_t hi = lo + block < end ? lo + block : end;
      T acc = identity;
      for (std::size_t i = lo; i < hi; ++i) acc = combine(acc, map(i));
      partial[static_cast<std::size_t>(t)] = acc;
    }
  }
  T acc = identity;
  for (const T& p : partial) acc = combine(acc, p);
  return acc;
}

}  // namespace pardfs::pram
