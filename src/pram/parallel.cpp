#include "pram/parallel.hpp"

#include <omp.h>

#include <atomic>

namespace pardfs::pram {

namespace {
std::atomic<int> g_threads{0};  // 0 = OpenMP default
}  // namespace

int num_threads() {
  const int configured = g_threads.load(std::memory_order_relaxed);
  return configured > 0 ? configured : omp_get_max_threads();
}

void set_num_threads(int n) { g_threads.store(n, std::memory_order_relaxed); }

}  // namespace pardfs::pram
