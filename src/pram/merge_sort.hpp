// Parallel merge sort — the stand-in for Cole's O(log n)-time EREW merge
// sort (Theorem 7), which the paper uses to sort adjacency lists by
// post-order index and to take min/max of edge sets.
//
// Blocked implementation: sort P blocks independently, then merge pairwise
// (log P rounds, each merge split by binary search for parallelism). Same
// O(n log n) work; depth O(log^2 n) instead of Cole's O(log n) — irrelevant
// to any claimed bound because sorting appears only in preprocessing rounds
// already accounted as "one parallel sort round" by the cost model.
#pragma once

#include <cstdint>
#include <span>

namespace pardfs::pram {

// Sort 32-bit keys ascending. Deterministic regardless of thread count.
void merge_sort(std::span<std::uint32_t> data);

// Sort (key, value) pairs by key ascending, stably.
void merge_sort_pairs(std::span<std::uint64_t> packed);  // key in high 32 bits

}  // namespace pardfs::pram
