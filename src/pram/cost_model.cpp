#include "pram/cost_model.hpp"

namespace pardfs::pram {

CostSnapshot operator-(const CostSnapshot& after, const CostSnapshot& before) {
  CostSnapshot d;
  d.rounds = after.rounds - before.rounds;
  d.pram_time = after.pram_time - before.pram_time;
  d.work = after.work - before.work;
  d.query_rounds = after.query_rounds - before.query_rounds;
  d.queries = after.queries - before.queries;
  d.query_probes = after.query_probes - before.query_probes;
  return d;
}

}  // namespace pardfs::pram
