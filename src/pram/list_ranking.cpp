#include "pram/list_ranking.hpp"

#include <atomic>

#include "pram/parallel.hpp"

namespace pardfs::pram {

std::vector<std::uint32_t> list_rank(std::span<const std::uint32_t> next) {
  const std::size_t n = next.size();
  std::vector<std::uint32_t> succ(next.begin(), next.end());
  std::vector<std::uint32_t> rank(n);
  parallel_for_t(0, n, [&](std::size_t i) {
    rank[i] = succ[i] == kListEnd ? 0u : 1u;
  });
  // Pointer jumping: after k iterations each pointer spans 2^k links.
  std::vector<std::uint32_t> succ_next(n), rank_next(n);
  bool live = n > 0;
  while (live) {
    std::atomic<bool> any{false};
    parallel_for_t(0, n, [&](std::size_t i) {
      const std::uint32_t s = succ[i];
      if (s != kListEnd) {
        rank_next[i] = rank[i] + rank[s];
        succ_next[i] = succ[s];
        if (succ[s] != kListEnd) any.store(true, std::memory_order_relaxed);
      } else {
        rank_next[i] = rank[i];
        succ_next[i] = kListEnd;
      }
    });
    succ.swap(succ_next);
    rank.swap(rank_next);
    live = any.load(std::memory_order_relaxed);
  }
  return rank;
}

}  // namespace pardfs::pram
