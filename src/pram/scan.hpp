// Exclusive prefix sum (scan), the workhorse of PRAM algorithms.
//
// Two-pass blocked implementation: per-block sums, serial scan of the block
// sums (there are O(P) of them), then per-block local scans. O(n) work,
// O(log n) PRAM depth — matching the classic EREW scan used implicitly all
// over the paper (compaction, processor allocation).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace pardfs::pram {

// out[i] = sum of in[0..i); returns total sum. out may alias in.
std::uint64_t exclusive_scan(std::span<const std::uint32_t> in,
                             std::span<std::uint32_t> out);

// Stable parallel compaction: keep elements whose flag is nonzero.
// Returns the packed vector; order preserved. O(n) work, O(log n) depth.
std::vector<std::uint32_t> pack_indices(std::span<const std::uint8_t> flags);

}  // namespace pardfs::pram
