#include "pram/merge_sort.hpp"

#include <algorithm>
#include <vector>

#include "pram/parallel.hpp"

namespace pardfs::pram {
namespace {

template <typename T>
void blocked_merge_sort(std::span<T> data) {
  const std::size_t n = data.size();
  if (n < kSerialGrain) {
    std::stable_sort(data.begin(), data.end());
    return;
  }
  const int threads = num_threads();
  // Round block count up to a power of two so merging is a clean binary tree.
  std::size_t blocks = 1;
  while (blocks < static_cast<std::size_t>(threads)) blocks <<= 1;
  const std::size_t block = (n + blocks - 1) / blocks;

  parallel_for_t(0, blocks, [&](std::size_t b) {
    const std::size_t lo = b * block;
    if (lo >= n) return;
    const std::size_t hi = std::min(lo + block, n);
    std::stable_sort(data.begin() + lo, data.begin() + hi);
  });

  std::vector<T> buffer(n);
  std::span<T> src = data;
  std::span<T> dst(buffer);
  for (std::size_t width = block; width < n; width <<= 1) {
    parallel_for_t(0, (n + 2 * width - 1) / (2 * width), [&](std::size_t pair) {
      const std::size_t lo = pair * 2 * width;
      const std::size_t mid = std::min(lo + width, n);
      const std::size_t hi = std::min(lo + 2 * width, n);
      std::merge(src.begin() + lo, src.begin() + mid, src.begin() + mid,
                 src.begin() + hi, dst.begin() + lo);
    });
    std::swap(src, dst);
  }
  if (src.data() != data.data()) {
    parallel_for_t(0, n, [&](std::size_t i) { data[i] = src[i]; });
  }
}

}  // namespace

void merge_sort(std::span<std::uint32_t> data) { blocked_merge_sort(data); }

void merge_sort_pairs(std::span<std::uint64_t> packed) { blocked_merge_sort(packed); }

}  // namespace pardfs::pram
