// PRAM cost model instrumentation.
//
// The paper's bounds are EREW PRAM statements: "O(log^3 n) time using n
// processors". On commodity shared memory the honest way to reproduce them
// is to count the quantities the theorems bound:
//
//   * rounds — sequential steps, each being one batch of independent
//     operations (a set of independent queries on D, one batched tree-op
//     pass, one parallel sort). Theorem 3 bounds the number of query rounds
//     per reroot by O(log^2 n); each round costs O(log n) PRAM time
//     (Theorem 8), giving the O(log^3 n) headline.
//   * pram_time — rounds weighted by their per-round PRAM depth (log n for
//     query batches and sorts, O(1) for LCA batches on CREW, etc.). This is
//     the modelled parallel time.
//   * work — total primitive operations across all processors.
//
// A CostModel is plumbed through the update path; benchmarks report its
// counters next to wall-clock time. Counting is cheap (a few adds per
// batch, one add per probe) and can be shared across threads.
#pragma once

#include <atomic>
#include <cstdint>

namespace pardfs::pram {

struct CostSnapshot {
  std::uint64_t rounds = 0;       // sequential batch steps
  std::uint64_t pram_time = 0;    // modelled parallel time (depth-weighted rounds)
  std::uint64_t work = 0;         // total primitive ops
  std::uint64_t query_rounds = 0; // rounds that were sets of independent D queries
  std::uint64_t queries = 0;      // individual D queries issued
  std::uint64_t query_probes = 0; // binary-search probes inside D
};

class CostModel {
 public:
  // One sequential step consisting of a batch of independent operations,
  // each of PRAM depth `depth` (e.g. log n for a sorted-adjacency probe).
  void add_round(std::uint64_t depth, std::uint64_t batch_work) {
    rounds_.fetch_add(1, std::memory_order_relaxed);
    pram_time_.fetch_add(depth, std::memory_order_relaxed);
    work_.fetch_add(batch_work, std::memory_order_relaxed);
  }

  // A round that is one set of independent queries on D (Theorem 3 counts
  // these). `depth` is the per-query PRAM depth, usually O(log n).
  void add_query_round(std::uint64_t depth, std::uint64_t batch_work) {
    query_rounds_.fetch_add(1, std::memory_order_relaxed);
    add_round(depth, batch_work);
  }

  void add_query(std::uint64_t probes) {
    queries_.fetch_add(1, std::memory_order_relaxed);
    query_probes_.fetch_add(probes, std::memory_order_relaxed);
  }

  void add_work(std::uint64_t ops) { work_.fetch_add(ops, std::memory_order_relaxed); }

  void reset() {
    rounds_ = 0;
    pram_time_ = 0;
    work_ = 0;
    query_rounds_ = 0;
    queries_ = 0;
    query_probes_ = 0;
  }

  CostSnapshot snapshot() const {
    CostSnapshot s;
    s.rounds = rounds_.load(std::memory_order_relaxed);
    s.pram_time = pram_time_.load(std::memory_order_relaxed);
    s.work = work_.load(std::memory_order_relaxed);
    s.query_rounds = query_rounds_.load(std::memory_order_relaxed);
    s.queries = queries_.load(std::memory_order_relaxed);
    s.query_probes = query_probes_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  std::atomic<std::uint64_t> rounds_{0};
  std::atomic<std::uint64_t> pram_time_{0};
  std::atomic<std::uint64_t> work_{0};
  std::atomic<std::uint64_t> query_rounds_{0};
  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> query_probes_{0};
};

// Difference of two snapshots (after - before), for per-update reporting.
CostSnapshot operator-(const CostSnapshot& after, const CostSnapshot& before);

}  // namespace pardfs::pram
