// DFS-forest validity checking — the correctness oracle of the test suite.
//
// A rooted spanning forest of an undirected graph is a DFS forest iff every
// non-tree edge is a back edge (one endpoint an ancestor of the other); see
// the paper's §1. This module checks, in O(m + n):
//   1. the parent array is a forest over exactly the alive vertices
//      (acyclic, tree edges are graph edges);
//   2. the forest spans the graph's connected components one-to-one
//      (vertices in one graph component form exactly one tree);
//   3. no non-tree edge is a cross edge.
// On failure, `reason` describes the first violation found.
#pragma once

#include <span>
#include <string>

#include "graph/graph.hpp"

namespace pardfs {

struct ValidationResult {
  bool ok = true;
  std::string reason;

  explicit operator bool() const { return ok; }
};

// parent[v] == kNullVertex marks roots; slots of dead vertices are ignored.
// parent.size() must equal g.capacity().
ValidationResult validate_dfs_forest(const Graph& g, std::span<const Vertex> parent);

}  // namespace pardfs
