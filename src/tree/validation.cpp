#include "tree/validation.hpp"

#include <string>
#include <vector>

#include "tree/tree_index.hpp"

namespace pardfs {
namespace {

std::string edge_str(Vertex u, Vertex v) {
  return "(" + std::to_string(u) + ", " + std::to_string(v) + ")";
}

ValidationResult fail(std::string reason) { return {false, std::move(reason)}; }

}  // namespace

ValidationResult validate_dfs_forest(const Graph& g, std::span<const Vertex> parent) {
  const Vertex cap = g.capacity();
  if (static_cast<Vertex>(parent.size()) != cap) {
    return fail("parent array size != graph capacity");
  }

  // 1. Forest structure: walk to a root from every vertex with cycle
  //    detection via a visited-epoch array (total O(n) amortized).
  std::vector<std::int8_t> state(static_cast<std::size_t>(cap), 0);  // 0 new, 1 active, 2 done
  for (Vertex v = 0; v < cap; ++v) {
    if (!g.is_alive(v)) continue;
    Vertex x = v;
    std::vector<Vertex> chain;
    while (state[static_cast<std::size_t>(x)] == 0) {
      state[static_cast<std::size_t>(x)] = 1;
      chain.push_back(x);
      const Vertex p = parent[static_cast<std::size_t>(x)];
      if (p == kNullVertex) break;
      if (!g.is_alive(p)) return fail("parent of " + std::to_string(x) + " is dead");
      if (!g.has_edge(x, p)) {
        return fail("tree edge " + edge_str(x, p) + " is not a graph edge");
      }
      if (state[static_cast<std::size_t>(p)] == 1) {
        return fail("cycle through vertex " + std::to_string(p));
      }
      x = p;
    }
    for (const Vertex c : chain) state[static_cast<std::size_t>(c)] = 2;
  }
  for (Vertex v = 0; v < cap; ++v) {
    if (!g.is_alive(v) && parent[static_cast<std::size_t>(v)] != kNullVertex) {
      return fail("dead vertex " + std::to_string(v) + " has a parent");
    }
  }

  // Index the forest (also computes roots / ancestor relations).
  std::vector<std::uint8_t> alive(static_cast<std::size_t>(cap), 0);
  for (Vertex v = 0; v < cap; ++v) alive[static_cast<std::size_t>(v)] = g.is_alive(v);
  TreeIndex index;
  index.build(parent, alive);

  // 2. Spanning: every graph edge must stay within one tree, and distinct
  //    trees must not be connected by any graph edge (together these say
  //    trees == connected components).
  for (Vertex u = 0; u < cap; ++u) {
    if (!g.is_alive(u)) continue;
    for (const Vertex v : g.neighbors(u)) {
      if (index.root_of(u) != index.root_of(v)) {
        return fail("edge " + edge_str(u, v) + " connects two different trees");
      }
    }
  }

  // 3. Every non-tree edge is a back edge.
  for (Vertex u = 0; u < cap; ++u) {
    if (!g.is_alive(u)) continue;
    for (const Vertex v : g.neighbors(u)) {
      if (u > v) continue;
      if (parent[static_cast<std::size_t>(u)] == v ||
          parent[static_cast<std::size_t>(v)] == u) {
        continue;  // tree edge
      }
      if (!index.is_back_edge(u, v)) {
        return fail("cross edge " + edge_str(u, v));
      }
    }
  }
  return {};
}

}  // namespace pardfs
