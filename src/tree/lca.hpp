// O(1) LCA after O(n log n) preprocessing: Euler tour + sparse-table RMQ.
//
// Stand-in for Schieber–Vishkin (paper Theorem 5/6) with identical query
// complexity; the preprocessing is one parallel pass plus a table fill whose
// rows are independent (O(log n) PRAM rounds). See DESIGN.md §6 for the
// substitution note.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge.hpp"

namespace pardfs {

class LcaTable {
 public:
  LcaTable() = default;

  // euler: vertex sequence of the tour (forests: tours concatenated),
  // depth_at: depth of euler[i], first_pos: first occurrence of each vertex
  // in the tour (-1 for vertices outside the forest).
  void build(std::vector<Vertex> euler, std::vector<std::int32_t> depth_at,
             std::vector<std::int32_t> first_pos);

  // LCA of u and v assuming they are in the same tree; the TreeIndex wrapper
  // checks tree identity first.
  Vertex query(Vertex u, Vertex v) const;

  bool empty() const { return euler_.empty(); }

 private:
  std::int32_t argmin(std::int32_t lo, std::int32_t hi) const;  // inclusive range

  std::vector<Vertex> euler_;
  std::vector<std::int32_t> depth_at_;
  std::vector<std::int32_t> first_pos_;
  // table_[k] holds argmin positions of windows of length 2^k.
  std::vector<std::vector<std::int32_t>> table_;
  std::vector<std::int32_t> log2_;
};

}  // namespace pardfs
