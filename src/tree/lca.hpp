// O(1) LCA after O(n) preprocessing: Euler tour + block RMQ (Fischer–Heun).
//
// Stand-in for Schieber–Vishkin (paper Theorem 5/6) with identical query
// complexity. The tour is cut into blocks of size kBlock; a sparse table is
// built over block minima only (n/kBlock entries), so preprocessing is
// O(n + (n / kBlock) log n) — the table's log factor no longer multiplies n,
// which matters because the epoch update loop rebuilds this structure after
// every structural update. In-block queries exploit the Euler tour's ±1
// depth steps: each block stores its descent bit pattern and a static
// 2^(kBlock-1) × kBlock × kBlock table (built once per process) maps
// (pattern, i, j) to the in-block argmin, so a query is a handful of array
// lookups. See DESIGN.md §6 for the substitution note.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge.hpp"
#include "util/simd.hpp"

namespace pardfs {

class LcaTable {
 public:
  LcaTable() = default;

  // euler: vertex sequence of the tour (forests: tours concatenated),
  // depth_at: depth of euler[i], first_pos: first occurrence of each vertex
  // in the tour (-1 for vertices outside the forest).
  //
  // The arguments are SWAPPED into the table (not copied): after the call
  // they hold the table's previous buffers, so a caller that rebuilds
  // repeatedly recycles capacity in both directions and the steady-state
  // rebuild allocates nothing.
  void build(std::vector<Vertex>& euler, std::vector<std::int32_t>& depth_at,
             std::vector<std::int32_t>& first_pos);

  // Sum of owned heap capacities in bytes (buffer-reuse accounting).
  std::size_t heap_capacity_bytes() const;

  // LCA of u and v assuming they are in the same tree; the TreeIndex wrapper
  // checks tree identity first.
  Vertex query(Vertex u, Vertex v) const;

  bool empty() const { return euler_.empty(); }

 private:
  static constexpr std::int32_t kBlock = 8;
  static constexpr std::int32_t kBlockShift = 3;  // log2(kBlock)
  static constexpr std::int32_t kBlockMask = kBlock - 1;

  std::int32_t argmin(std::int32_t lo, std::int32_t hi) const;  // inclusive range
  // In-block argmin over tour positions [lo, hi] (same block) via the
  // pattern table.
  std::int32_t in_block(std::int32_t lo, std::int32_t hi) const;

  // euler_/depth_at_/first_pos_ stay plain std::vector: build() SWAPS them
  // with the caller's buffers, so the allocator is part of that contract.
  std::vector<Vertex> euler_;
  std::vector<std::int32_t> depth_at_;
  std::vector<std::int32_t> first_pos_;
  // Descent pattern of each block: bit t set iff depth decreases from local
  // position t-1 to t (t in 1..kBlock-1). The block tables below are the
  // query-time working set and sit on simd::kAlign boundaries (DESIGN.md
  // §10) so a query's handful of loads splits across as few lines as the
  // layout allows.
  simd::aligned_vector<std::uint8_t> pattern_;
  // block_table_ is a flat level-major array: level k (window of 2^k blocks)
  // lives at [k * num_blocks_, k * num_blocks_ + num_blocks_ - 2^k + 1) and
  // holds the argmin tour position of that block window.
  simd::aligned_vector<std::int32_t> block_table_;
  simd::aligned_vector<std::int32_t> log2_;  // log2_[b] for block counts
  std::int32_t num_blocks_ = 0;
};

}  // namespace pardfs
