#include "tree/euler_tour.hpp"

#include <algorithm>
#include <atomic>

#include "pram/list_ranking.hpp"
#include "pram/parallel.hpp"
#include "pram/scan.hpp"
#include "util/check.hpp"

namespace pardfs {
namespace {

// Directed-edge ids: for the tree edge between v and parent(v), the down
// edge (parent -> v) is 2*v and the up edge (v -> parent) is 2*v + 1. Roots
// own no edges.
constexpr std::uint32_t down_edge(Vertex v) { return 2u * static_cast<std::uint32_t>(v); }
constexpr std::uint32_t up_edge(Vertex v) { return 2u * static_cast<std::uint32_t>(v) + 1; }

}  // namespace

namespace {

// Shared construction: fills `r` always; when `tables` is non-null, also
// materializes the vertex-sequence tour (root-id tree order, exactly the
// serial DFS emission — see EulerTourTables).
void tour_impl(std::span<const Vertex> parent, std::span<const std::uint8_t> alive,
               EulerTourResult& r, EulerTourTables* tables) {
  const std::size_t n = parent.size();
  r.pre.assign(n, -1);
  r.post.assign(n, -1);
  r.depth.assign(n, -1);
  r.size.assign(n, 0);
  if (tables != nullptr) {
    tables->euler.clear();
    tables->euler_depth.clear();
    tables->first_pos.assign(n, -1);
    tables->root_of.assign(n, kNullVertex);
  }
  if (n == 0) return;

  auto is_alive = [&](std::size_t v) { return alive.empty() || alive[v] != 0; };

  // Children CSR (counting sort by parent) — also the edge ordering around
  // each vertex: children in id order, parent edge last.
  std::vector<std::int32_t> child_start(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    if (is_alive(v) && parent[v] != kNullVertex) {
      ++child_start[static_cast<std::size_t>(parent[v]) + 1];
    }
  }
  for (std::size_t v = 0; v < n; ++v) child_start[v + 1] += child_start[v];
  std::vector<Vertex> child_list(static_cast<std::size_t>(child_start[n]));
  {
    std::vector<std::int32_t> cursor(child_start.begin(), child_start.end() - 1);
    for (std::size_t v = 0; v < n; ++v) {
      if (is_alive(v) && parent[v] != kNullVertex) {
        child_list[static_cast<std::size_t>(cursor[static_cast<std::size_t>(parent[v])]++)] =
            static_cast<Vertex>(v);
      }
    }
  }
  auto children = [&](Vertex v) -> std::span<const Vertex> {
    const auto s = static_cast<std::size_t>(child_start[static_cast<std::size_t>(v)]);
    const auto e = static_cast<std::size_t>(child_start[static_cast<std::size_t>(v) + 1]);
    return {child_list.data() + s, e - s};
  };
  auto child_slot = [&](Vertex v) {
    // Position of v among its parent's children; child lists are sorted by
    // id because the counting sort scans ids in order.
    const auto kids = children(parent[static_cast<std::size_t>(v)]);
    const auto it = std::lower_bound(kids.begin(), kids.end(), v);
    return static_cast<std::size_t>(it - kids.begin());
  };

  // Euler circuit successor links. succ(down(v)): first child edge of v, or
  // up(v) if v is a leaf. succ(up(v)): down edge of v's next sibling, or
  // up(parent(v)), or list end when the parent is a root with no further
  // child (each tree's tour is an open list; disjoint trees give disjoint
  // lists, which list ranking handles directly).
  const std::size_t num_dir_edges = 2 * n;
  std::vector<std::uint32_t> succ(num_dir_edges, pram::kListEnd);
  std::vector<std::uint8_t> edge_used(num_dir_edges, 0);
  pram::parallel_for_t(0, n, [&](std::size_t sv) {
    const Vertex v = static_cast<Vertex>(sv);
    if (!is_alive(sv) || parent[sv] == kNullVertex) return;
    edge_used[down_edge(v)] = 1;
    edge_used[up_edge(v)] = 1;
    const auto kids = children(v);
    succ[down_edge(v)] = kids.empty() ? up_edge(v) : down_edge(kids.front());
    const Vertex p = parent[sv];
    const auto siblings = children(p);
    const std::size_t slot = child_slot(v);
    if (slot + 1 < siblings.size()) {
      succ[up_edge(v)] = down_edge(siblings[slot + 1]);
    } else if (parent[static_cast<std::size_t>(p)] != kNullVertex) {
      succ[up_edge(v)] = up_edge(p);
    }
  });

  // Rank every directed edge: distance to its tour's tail.
  const std::vector<std::uint32_t> rank = pram::list_rank(succ);

  // Per-tree tour length = rank of the head edge + 1, where the head is
  // down(first child of root).
  std::vector<std::uint32_t> tour_len_of_root(n, 0);
  for (std::size_t sv = 0; sv < n; ++sv) {
    if (!is_alive(sv) || parent[sv] != kNullVertex) continue;
    const auto kids = children(static_cast<Vertex>(sv));
    if (!kids.empty()) {
      tour_len_of_root[sv] = rank[down_edge(kids.front())] + 1;
    }
  }

  // Root of each vertex via pointer doubling over the parent array:
  // jump[v] starts as parent(v) (or v for roots) and squares each round, so
  // after O(log n) rounds jump[v] is the fixed point, i.e. v's root.
  std::vector<Vertex> root_of(n), jump_next(n);
  pram::parallel_for_t(0, n, [&](std::size_t sv) {
    if (!is_alive(sv)) {
      root_of[sv] = kNullVertex;
    } else {
      root_of[sv] = parent[sv] == kNullVertex ? static_cast<Vertex>(sv) : parent[sv];
    }
  });
  for (;;) {
    std::atomic<bool> any{false};
    pram::parallel_for_t(0, n, [&](std::size_t sv) {
      const Vertex j = root_of[sv];
      if (j == kNullVertex) {
        jump_next[sv] = kNullVertex;
        return;
      }
      const Vertex jj = root_of[static_cast<std::size_t>(j)];
      jump_next[sv] = jj;
      if (jj != j) any.store(true, std::memory_order_relaxed);
    });
    root_of.swap(jump_next);
    if (!any.load(std::memory_order_relaxed)) break;
  }

  auto position = [&](std::uint32_t e, Vertex v) {
    const std::size_t root = static_cast<std::size_t>(root_of[static_cast<std::size_t>(v)]);
    return tour_len_of_root[root] - 1 - rank[e];
  };

  // Materialize per-tree tours into one global array using per-root offsets,
  // then prefix-count down edges to derive pre, post, depth and size.
  std::vector<std::uint32_t> root_offset(n + 1, 0);
  {
    std::vector<std::uint32_t> lens(n);
    pram::parallel_for_t(0, n, [&](std::size_t sv) { lens[sv] = tour_len_of_root[sv]; });
    pram::exclusive_scan(lens, std::span<std::uint32_t>(root_offset.data(), n));
    root_offset[n] = root_offset[n - 1] + tour_len_of_root[n - 1];
  }
  const std::size_t total = root_offset[n];
  std::vector<std::uint32_t> is_down(total, 0);
  std::vector<std::uint8_t> kind(total, 0);  // 0 unset, 1 down, 2 up
  std::vector<Vertex> edge_vertex(total, kNullVertex);
  pram::parallel_for_t(0, n, [&](std::size_t sv) {
    const Vertex v = static_cast<Vertex>(sv);
    if (!edge_used[down_edge(v)]) return;
    const std::size_t root = static_cast<std::size_t>(root_of[sv]);
    const std::size_t base = root_offset[root];
    const std::size_t pd = base + position(down_edge(v), v);
    const std::size_t pu = base + position(up_edge(v), v);
    is_down[pd] = 1;
    kind[pd] = 1;
    edge_vertex[pd] = v;
    kind[pu] = 2;
    edge_vertex[pu] = v;
  });
  std::vector<std::uint32_t> down_before(total);
  pram::exclusive_scan(is_down, down_before);

  pram::parallel_for_t(0, total, [&](std::size_t i) {
    if (kind[i] != 1) return;
    const Vertex v = edge_vertex[i];
    const std::size_t root = static_cast<std::size_t>(root_of[static_cast<std::size_t>(v)]);
    const std::uint32_t base_down = down_before[root_offset[root]];
    const std::uint32_t downs = down_before[i] + 1 - base_down;  // incl. self
    const std::uint32_t ups =
        static_cast<std::uint32_t>(i + 1 - root_offset[root]) - downs;
    r.pre[static_cast<std::size_t>(v)] =
        static_cast<std::int32_t>(down_before[i]) + 1;  // global; rebased below
    r.depth[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(downs - ups);
  });
  pram::parallel_for_t(0, total, [&](std::size_t i) {
    if (kind[i] != 2) return;
    const Vertex v = edge_vertex[i];
    const std::uint32_t ups_before =
        static_cast<std::uint32_t>(i) - down_before[i];  // global; rebased below
    r.post[static_cast<std::size_t>(v)] = static_cast<std::int32_t>(ups_before);
    const std::size_t root = static_cast<std::size_t>(root_of[static_cast<std::size_t>(v)]);
    const std::size_t base = root_offset[root];
    const std::size_t pd = base + position(down_edge(v), v);
    // [pd..i] contains exactly the 2*size(v) directed edges of v's subtree.
    r.size[static_cast<std::size_t>(v)] = static_cast<std::int32_t>((i - pd + 1) / 2);
  });

  // Global pre/post numbering: offset each tree by the number of vertices in
  // earlier trees; the root of each tree occupies local pre 0 and local post
  // tree_size - 1.
  std::vector<std::uint32_t> tree_sizes(n, 0);
  for (std::size_t sv = 0; sv < n; ++sv) {
    if (is_alive(sv)) ++tree_sizes[static_cast<std::size_t>(root_of[sv])];
  }
  std::vector<std::uint32_t> tree_offset(n, 0);
  pram::exclusive_scan(tree_sizes, tree_offset);

  pram::parallel_for_t(0, n, [&](std::size_t sv) {
    if (!is_alive(sv)) return;
    const std::size_t root = static_cast<std::size_t>(root_of[sv]);
    if (parent[sv] == kNullVertex) {
      r.pre[sv] = static_cast<std::int32_t>(tree_offset[root]);
      r.post[sv] = static_cast<std::int32_t>(tree_offset[root] + tree_sizes[root]) - 1;
      r.depth[sv] = 0;
      r.size[sv] = static_cast<std::int32_t>(tree_sizes[root]);
    } else {
      const std::uint32_t base_down = down_before[root_offset[root]];
      const std::uint32_t base_up =
          static_cast<std::uint32_t>(root_offset[root]) - base_down;
      r.pre[sv] = static_cast<std::int32_t>(
          static_cast<std::uint32_t>(r.pre[sv]) - base_down + tree_offset[root]);
      r.post[sv] = static_cast<std::int32_t>(
          static_cast<std::uint32_t>(r.post[sv]) - base_up + tree_offset[root]);
    }
  });

  if (tables != nullptr) {
    // Vertex-sequence tour: per tree 2*size-1 slots (root first, then the
    // entered vertex of each down edge and the parent of each up edge),
    // trees concatenated in root-id order — the serial DFS emission.
    std::vector<std::uint32_t> vseq_offset(n, 0);
    std::uint32_t vseq_total = 0;
    for (std::size_t sv = 0; sv < n; ++sv) {
      if (is_alive(sv) && parent[sv] == kNullVertex) {
        vseq_offset[sv] = vseq_total;
        vseq_total += 2 * tree_sizes[sv] - 1;
      }
    }
    tables->euler.assign(vseq_total, kNullVertex);
    tables->euler_depth.assign(vseq_total, 0);
    pram::parallel_for_t(0, n, [&](std::size_t sv) {
      if (!is_alive(sv)) return;
      const Vertex v = static_cast<Vertex>(sv);
      const std::size_t root = static_cast<std::size_t>(root_of[sv]);
      const std::uint32_t vo = vseq_offset[root];
      if (parent[sv] == kNullVertex) {
        tables->euler[vo] = v;
        tables->euler_depth[vo] = 0;
        tables->first_pos[sv] = static_cast<std::int32_t>(vo);
      } else {
        const std::size_t pd = vo + 1 + position(down_edge(v), v);
        const std::size_t pu = vo + 1 + position(up_edge(v), v);
        tables->euler[pd] = v;
        tables->euler_depth[pd] = r.depth[sv];
        tables->first_pos[sv] = static_cast<std::int32_t>(pd);
        const Vertex p = parent[sv];
        tables->euler[pu] = p;
        tables->euler_depth[pu] = r.depth[static_cast<std::size_t>(p)];
      }
    });
    tables->root_of.assign(root_of.begin(), root_of.end());
  }
}

}  // namespace

EulerTourResult euler_tour(std::span<const Vertex> parent,
                           std::span<const std::uint8_t> alive) {
  EulerTourResult r;
  tour_impl(parent, alive, r, nullptr);
  return r;
}

EulerTourTables euler_tour_tables(std::span<const Vertex> parent,
                                  std::span<const std::uint8_t> alive) {
  EulerTourTables t;
  tour_impl(parent, alive, t.result, &t);
  return t;
}

void euler_tour_tables_into(std::span<const Vertex> parent,
                            std::span<const std::uint8_t> alive,
                            EulerTourTables& out) {
  tour_impl(parent, alive, out.result, &out);
}

}  // namespace pardfs
