#include "tree/tree_index.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pardfs {

void TreeIndex::build(std::span<const Vertex> parent,
                      std::span<const std::uint8_t> alive) {
  const std::size_t n = parent.size();
  parent_.assign(parent.begin(), parent.end());
  tree_root_.assign(n, kNullVertex);
  depth_.assign(n, -1);
  size_.assign(n, 0);
  pre_.assign(n, -1);
  post_.assign(n, -1);
  roots_.clear();

  auto is_alive = [&](std::size_t v) {
    return alive.empty() || alive[v] != 0;
  };

  // Children CSR via counting sort on parent.
  child_start_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    if (!is_alive(v)) continue;
    const Vertex p = parent_[v];
    if (p == kNullVertex) {
      roots_.push_back(static_cast<Vertex>(v));
    } else {
      PARDFS_DCHECK(is_alive(static_cast<std::size_t>(p)));
      ++child_start_[static_cast<std::size_t>(p) + 1];
    }
  }
  for (std::size_t v = 0; v < n; ++v) child_start_[v + 1] += child_start_[v];
  child_list_.assign(static_cast<std::size_t>(child_start_[n]), kNullVertex);
  {
    std::vector<std::int32_t> cursor(child_start_.begin(), child_start_.end() - 1);
    for (std::size_t v = 0; v < n; ++v) {
      if (!is_alive(v)) continue;
      const Vertex p = parent_[v];
      if (p != kNullVertex) {
        child_list_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(p)]++)] =
            static_cast<Vertex>(v);
      }
    }
  }

  // Iterative DFS per root, children in CSR order, producing pre/post/depth/
  // size and the Euler tour for LCA.
  std::vector<Vertex> euler;
  std::vector<std::int32_t> euler_depth;
  std::vector<std::int32_t> first_pos(n, -1);
  euler.reserve(2 * n);
  euler_depth.reserve(2 * n);
  order_by_pre_.assign(n, kNullVertex);
  order_by_post_.assign(n, kNullVertex);

  std::int32_t pre_counter = 0, post_counter = 0;
  // Stack frames: (vertex, next-child-slot).
  std::vector<std::pair<Vertex, std::int32_t>> stack;
  for (const Vertex r : roots_) {
    stack.emplace_back(r, 0);
    depth_[static_cast<std::size_t>(r)] = 0;
    tree_root_[static_cast<std::size_t>(r)] = r;
    while (!stack.empty()) {
      auto& [v, slot] = stack.back();
      const std::size_t sv = static_cast<std::size_t>(v);
      if (slot == 0) {
        pre_[sv] = pre_counter;
        order_by_pre_[static_cast<std::size_t>(pre_counter)] = v;
        ++pre_counter;
        first_pos[sv] = static_cast<std::int32_t>(euler.size());
        euler.push_back(v);
        euler_depth.push_back(depth_[sv]);
      }
      const auto kids = children(v);
      if (slot < static_cast<std::int32_t>(kids.size())) {
        const Vertex c = kids[static_cast<std::size_t>(slot)];
        ++slot;
        depth_[static_cast<std::size_t>(c)] = depth_[sv] + 1;
        tree_root_[static_cast<std::size_t>(c)] = r;
        stack.emplace_back(c, 0);
      } else {
        post_[sv] = post_counter;
        order_by_post_[static_cast<std::size_t>(post_counter)] = v;
        ++post_counter;
        size_[sv] = 1;
        for (const Vertex c : kids) size_[sv] += size_[static_cast<std::size_t>(c)];
        stack.pop_back();
        if (!stack.empty()) {
          euler.push_back(stack.back().first);
          euler_depth.push_back(depth_[static_cast<std::size_t>(stack.back().first)]);
        }
      }
    }
  }
  num_indexed_ = pre_counter;
  order_by_pre_.resize(static_cast<std::size_t>(pre_counter));
  order_by_post_.resize(static_cast<std::size_t>(post_counter));
  lca_.build(std::move(euler), std::move(euler_depth), std::move(first_pos));
}

Vertex TreeIndex::lca(Vertex u, Vertex v) const {
  PARDFS_DCHECK(in_forest(u) && in_forest(v));
  if (tree_root_[static_cast<std::size_t>(u)] != tree_root_[static_cast<std::size_t>(v)])
    return kNullVertex;
  return lca_.query(u, v);
}

Vertex TreeIndex::child_toward(Vertex a, Vertex d) const {
  PARDFS_DCHECK(is_ancestor(a, d) && a != d);
  const auto kids = children(a);
  // Children are stored in increasing pre order; the one whose pre-interval
  // contains pre(d) is the unique child on the path to d.
  const std::int32_t target = pre_[static_cast<std::size_t>(d)];
  std::size_t lo = 0, hi = kids.size();
  while (lo + 1 < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (pre_[static_cast<std::size_t>(kids[mid])] <= target)
      lo = mid;
    else
      hi = mid;
  }
  const Vertex c = kids[lo];
  PARDFS_DCHECK(is_ancestor(c, d));
  return c;
}

std::int32_t TreeIndex::path_length(Vertex u, Vertex v) const {
  const Vertex l = lca(u, v);
  PARDFS_DCHECK(l != kNullVertex);
  return depth_[static_cast<std::size_t>(u)] + depth_[static_cast<std::size_t>(v)] -
         2 * depth_[static_cast<std::size_t>(l)];
}

std::vector<Vertex> TreeIndex::path_vertices(Vertex from, Vertex to) const {
  // Hard check: walking a non-ancestor pair would run off the root.
  PARDFS_CHECK_MSG(is_ancestor(to, from) || is_ancestor(from, to),
                   "path_vertices endpoints must be ancestor-descendant");
  std::vector<Vertex> out;
  if (is_ancestor(to, from)) {
    for (Vertex v = from;; v = parent_[static_cast<std::size_t>(v)]) {
      out.push_back(v);
      if (v == to) break;
    }
  } else {
    for (Vertex v = to;; v = parent_[static_cast<std::size_t>(v)]) {
      out.push_back(v);
      if (v == from) break;
    }
    std::reverse(out.begin(), out.end());
  }
  return out;
}

bool TreeIndex::on_path(Vertex x, Vertex y, Vertex z) const {
  // x on path(y, z) iff x is an ancestor of exactly one of {y, z} and a
  // descendant of lca(y, z) — for ancestor-descendant paths this reduces to
  // the paper's check (LCA comparisons).
  const Vertex l = lca(y, z);
  if (l == kNullVertex) return false;
  if (!is_ancestor(l, x)) return false;
  return is_ancestor(x, y) || is_ancestor(x, z);
}

std::vector<Vertex> TreeIndex::tree_path(Vertex a, Vertex b) const {
  const Vertex l = lca(a, b);
  PARDFS_CHECK_MSG(l != kNullVertex, "tree_path endpoints in different trees");
  std::vector<Vertex> out;
  for (Vertex v = a;; v = parent_[static_cast<std::size_t>(v)]) {
    out.push_back(v);
    if (v == l) break;
  }
  std::vector<Vertex> down;
  for (Vertex v = b; v != l; v = parent_[static_cast<std::size_t>(v)]) {
    down.push_back(v);
  }
  out.insert(out.end(), down.rbegin(), down.rend());
  return out;
}

std::vector<Vertex> TreeIndex::subtree_vertices(Vertex v) const {
  PARDFS_DCHECK(in_forest(v));
  const std::int32_t lo = pre_[static_cast<std::size_t>(v)];
  const std::int32_t hi = lo + size_[static_cast<std::size_t>(v)];
  std::vector<Vertex> out;
  out.reserve(static_cast<std::size_t>(hi - lo));
  for (std::int32_t i = lo; i < hi; ++i) {
    out.push_back(order_by_pre_[static_cast<std::size_t>(i)]);
  }
  return out;
}

}  // namespace pardfs
