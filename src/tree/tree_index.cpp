#include "tree/tree_index.hpp"

#include <algorithm>
#include <atomic>
#include <thread>

#include "pram/parallel.hpp"
#include "tree/euler_tour.hpp"
#include "util/check.hpp"

namespace pardfs {
namespace {

// Below this the OpenMP team + the tour's O(n log n) work cost more than
// the serial DFS even on many cores.
constexpr std::size_t kParallelBuildGrain = 4096;

}  // namespace
}  // namespace pardfs

namespace pardfs {

void TreeIndex::build(std::span<const Vertex> parent,
                      std::span<const std::uint8_t> alive, TreeBuildMode mode) {
  const std::size_t n = parent.size();
  parent_.assign(parent.begin(), parent.end());
  roots_.clear();

  // kAuto needs both a configured team AND real cores: with one hardware
  // thread the tour's O(n log n) work is a pure loss however many logical
  // workers the facade was asked for.
  const bool parallel =
      mode == TreeBuildMode::kParallel ||
      (mode == TreeBuildMode::kAuto && pram::num_threads() > 1 &&
       std::thread::hardware_concurrency() > 1 && n >= kParallelBuildGrain);
  build_children_csr(parent, alive, parallel);
  if (parallel) {
    build_parallel(parent, alive);
  } else {
    build_serial(alive);
  }
}

void TreeIndex::build_children_csr(std::span<const Vertex> parent,
                                   std::span<const std::uint8_t> alive,
                                   bool parallel) {
  const std::size_t n = parent.size();
  auto is_alive = [&](std::size_t v) { return alive.empty() || alive[v] != 0; };

  // Children CSR: counting + exclusive scan for offsets, then a fill. Both
  // paths produce children in ascending id per bucket — the serial path by
  // scanning ids in order, the parallel path by sorting each bucket after an
  // unordered atomic fill.
  child_start_.assign(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) {
    if (!is_alive(v)) continue;
    const Vertex p = parent_[v];
    if (p == kNullVertex) {
      roots_.push_back(static_cast<Vertex>(v));
    } else {
      PARDFS_DCHECK(is_alive(static_cast<std::size_t>(p)));
      ++child_start_[static_cast<std::size_t>(p) + 1];
    }
  }
  for (std::size_t v = 0; v < n; ++v) child_start_[v + 1] += child_start_[v];
  child_list_.assign(static_cast<std::size_t>(child_start_[n]), kNullVertex);
  cursor_scratch_.assign(child_start_.begin(), child_start_.end() - 1);
  if (parallel && n > 0) {
    pram::parallel_for_t(0, n, [&](std::size_t v) {
      if (!is_alive(v)) return;
      const Vertex p = parent_[v];
      if (p == kNullVertex) return;
      const std::int32_t slot =
          std::atomic_ref<std::int32_t>(cursor_scratch_[static_cast<std::size_t>(p)])
              .fetch_add(1, std::memory_order_relaxed);
      child_list_[static_cast<std::size_t>(slot)] = static_cast<Vertex>(v);
    });
    pram::parallel_for_t(0, n, [&](std::size_t v) {
      const auto s = static_cast<std::size_t>(child_start_[v]);
      const auto e = static_cast<std::size_t>(child_start_[v + 1]);
      std::sort(child_list_.begin() + static_cast<std::ptrdiff_t>(s),
                child_list_.begin() + static_cast<std::ptrdiff_t>(e));
    });
  } else {
    for (std::size_t v = 0; v < n; ++v) {
      if (!is_alive(v)) continue;
      const Vertex p = parent_[v];
      if (p != kNullVertex) {
        child_list_[static_cast<std::size_t>(
            cursor_scratch_[static_cast<std::size_t>(p)]++)] =
            static_cast<Vertex>(v);
      }
    }
  }
}

void TreeIndex::build_serial(std::span<const std::uint8_t> alive) {
  const std::size_t n = parent_.size();
  (void)alive;  // liveness is already folded into roots_ / child CSR
  tree_root_.assign(n, kNullVertex);
  depth_.assign(n, -1);
  size_.assign(n, 0);
  pre_.assign(n, -1);
  post_.assign(n, -1);

  // Iterative DFS per root, children in CSR order, producing pre/post/depth/
  // size and the Euler tour for LCA. The tour scratch holds the LCA table's
  // previous buffers (swapped back by the last lca_.build), so steady-state
  // rebuilds reuse their capacity.
  euler_scratch_.clear();
  euler_depth_scratch_.clear();
  euler_scratch_.reserve(2 * n);
  euler_depth_scratch_.reserve(2 * n);
  first_pos_scratch_.assign(n, -1);
  order_by_pre_.resize(n);
  order_by_post_.resize(n);

  std::int32_t pre_counter = 0, post_counter = 0;
  // Stack frames: (vertex, next-child-slot).
  auto& stack = stack_scratch_;
  stack.clear();
  for (const Vertex r : roots_) {
    stack.emplace_back(r, 0);
    depth_[static_cast<std::size_t>(r)] = 0;
    tree_root_[static_cast<std::size_t>(r)] = r;
    while (!stack.empty()) {
      auto& [v, slot] = stack.back();
      const std::size_t sv = static_cast<std::size_t>(v);
      if (slot == 0) {
        pre_[sv] = pre_counter;
        order_by_pre_[static_cast<std::size_t>(pre_counter)] = v;
        ++pre_counter;
        first_pos_scratch_[sv] = static_cast<std::int32_t>(euler_scratch_.size());
        euler_scratch_.push_back(v);
        euler_depth_scratch_.push_back(depth_[sv]);
      }
      const auto kids = children(v);
      if (slot < static_cast<std::int32_t>(kids.size())) {
        const Vertex c = kids[static_cast<std::size_t>(slot)];
        ++slot;
        depth_[static_cast<std::size_t>(c)] = depth_[sv] + 1;
        tree_root_[static_cast<std::size_t>(c)] = r;
        stack.emplace_back(c, 0);
      } else {
        post_[sv] = post_counter;
        order_by_post_[static_cast<std::size_t>(post_counter)] = v;
        ++post_counter;
        size_[sv] = 1;
        for (const Vertex c : kids) size_[sv] += size_[static_cast<std::size_t>(c)];
        stack.pop_back();
        if (!stack.empty()) {
          euler_scratch_.push_back(stack.back().first);
          euler_depth_scratch_.push_back(
              depth_[static_cast<std::size_t>(stack.back().first)]);
        }
      }
    }
  }
  num_indexed_ = pre_counter;
  order_by_pre_.resize(static_cast<std::size_t>(pre_counter));
  order_by_post_.resize(static_cast<std::size_t>(post_counter));
  lca_.build(euler_scratch_, euler_depth_scratch_, first_pos_scratch_);
}

void TreeIndex::build_parallel(std::span<const Vertex> parent,
                               std::span<const std::uint8_t> alive) {
  const std::size_t n = parent.size();
  // Theorem 4: Euler tour + list ranking yield pre/post/depth/size and the
  // vertex tour in O(log n) depth; the orderings are one parallel scatter.
  // The tour order equals the serial DFS emission (root-id tree order,
  // children ascending), so every table below is byte-identical to
  // build_serial's output. The member tables circulate through the tour
  // scratch (swap out, rebuild in place, swap back) so repeated parallel
  // builds reuse their capacity like the serial path does; only the tour
  // construction's internal temporaries remain per-call.
  EulerTourTables& t = tour_scratch_;
  t.result.pre.swap(pre_);
  t.result.post.swap(post_);
  t.result.depth.swap(depth_);
  t.result.size.swap(size_);
  t.root_of.swap(tree_root_);
  t.euler.swap(euler_scratch_);
  t.euler_depth.swap(euler_depth_scratch_);
  t.first_pos.swap(first_pos_scratch_);
  euler_tour_tables_into(parent, alive, t);
  pre_.swap(t.result.pre);
  post_.swap(t.result.post);
  depth_.swap(t.result.depth);
  size_.swap(t.result.size);
  tree_root_.swap(t.root_of);
  std::int32_t indexed = 0;
  for (const Vertex r : roots_) {
    indexed += size_[static_cast<std::size_t>(r)];
  }
  num_indexed_ = indexed;
  order_by_pre_.assign(static_cast<std::size_t>(indexed), kNullVertex);
  order_by_post_.assign(static_cast<std::size_t>(indexed), kNullVertex);
  pram::parallel_for_t(0, n, [&](std::size_t sv) {
    const std::int32_t p = pre_[sv];
    if (p < 0) return;
    order_by_pre_[static_cast<std::size_t>(p)] = static_cast<Vertex>(sv);
    order_by_post_[static_cast<std::size_t>(post_[sv])] = static_cast<Vertex>(sv);
  });
  // Same vertex tour as the serial DFS: identical Fischer–Heun state (the
  // block fill inside is a parallel_for).
  euler_scratch_.swap(t.euler);
  euler_depth_scratch_.swap(t.euler_depth);
  first_pos_scratch_.swap(t.first_pos);
  lca_.build(euler_scratch_, euler_depth_scratch_, first_pos_scratch_);
}

std::size_t TreeIndex::heap_capacity_bytes() const {
  return parent_.capacity() * sizeof(Vertex) +
         tree_root_.capacity() * sizeof(Vertex) +
         depth_.capacity() * sizeof(std::int32_t) +
         size_.capacity() * sizeof(std::int32_t) +
         pre_.capacity() * sizeof(std::int32_t) +
         post_.capacity() * sizeof(std::int32_t) +
         order_by_pre_.capacity() * sizeof(Vertex) +
         order_by_post_.capacity() * sizeof(Vertex) +
         child_start_.capacity() * sizeof(std::int32_t) +
         child_list_.capacity() * sizeof(Vertex) +
         roots_.capacity() * sizeof(Vertex) + lca_.heap_capacity_bytes() +
         euler_scratch_.capacity() * sizeof(Vertex) +
         euler_depth_scratch_.capacity() * sizeof(std::int32_t) +
         first_pos_scratch_.capacity() * sizeof(std::int32_t) +
         cursor_scratch_.capacity() * sizeof(std::int32_t) +
         stack_scratch_.capacity() * sizeof(std::pair<Vertex, std::int32_t>) +
         tour_scratch_.result.pre.capacity() * sizeof(std::int32_t) +
         tour_scratch_.result.post.capacity() * sizeof(std::int32_t) +
         tour_scratch_.result.depth.capacity() * sizeof(std::int32_t) +
         tour_scratch_.result.size.capacity() * sizeof(std::int32_t) +
         tour_scratch_.euler.capacity() * sizeof(Vertex) +
         tour_scratch_.euler_depth.capacity() * sizeof(std::int32_t) +
         tour_scratch_.first_pos.capacity() * sizeof(std::int32_t) +
         tour_scratch_.root_of.capacity() * sizeof(Vertex);
}

Vertex TreeIndex::lca(Vertex u, Vertex v) const {
  PARDFS_DCHECK(in_forest(u) && in_forest(v));
  if (tree_root_[static_cast<std::size_t>(u)] != tree_root_[static_cast<std::size_t>(v)])
    return kNullVertex;
  return lca_.query(u, v);
}

Vertex TreeIndex::child_toward(Vertex a, Vertex d) const {
  PARDFS_DCHECK(is_ancestor(a, d) && a != d);
  const auto kids = children(a);
  // Children are stored in increasing pre order; the one whose pre-interval
  // contains pre(d) is the unique child on the path to d.
  const std::int32_t target = pre_[static_cast<std::size_t>(d)];
  std::size_t lo = 0, hi = kids.size();
  while (lo + 1 < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (pre_[static_cast<std::size_t>(kids[mid])] <= target)
      lo = mid;
    else
      hi = mid;
  }
  const Vertex c = kids[lo];
  PARDFS_DCHECK(is_ancestor(c, d));
  return c;
}

std::int32_t TreeIndex::path_length(Vertex u, Vertex v) const {
  const Vertex l = lca(u, v);
  PARDFS_DCHECK(l != kNullVertex);
  return depth_[static_cast<std::size_t>(u)] + depth_[static_cast<std::size_t>(v)] -
         2 * depth_[static_cast<std::size_t>(l)];
}

std::vector<Vertex> TreeIndex::path_vertices(Vertex from, Vertex to) const {
  // Hard check: walking a non-ancestor pair would run off the root.
  PARDFS_CHECK_MSG(is_ancestor(to, from) || is_ancestor(from, to),
                   "path_vertices endpoints must be ancestor-descendant");
  std::vector<Vertex> out;
  if (is_ancestor(to, from)) {
    for (Vertex v = from;; v = parent_[static_cast<std::size_t>(v)]) {
      out.push_back(v);
      if (v == to) break;
    }
  } else {
    for (Vertex v = to;; v = parent_[static_cast<std::size_t>(v)]) {
      out.push_back(v);
      if (v == from) break;
    }
    std::reverse(out.begin(), out.end());
  }
  return out;
}

bool TreeIndex::on_path(Vertex x, Vertex y, Vertex z) const {
  // x on path(y, z) iff x is an ancestor of exactly one of {y, z} and a
  // descendant of lca(y, z) — for ancestor-descendant paths this reduces to
  // the paper's check (LCA comparisons).
  const Vertex l = lca(y, z);
  if (l == kNullVertex) return false;
  if (!is_ancestor(l, x)) return false;
  return is_ancestor(x, y) || is_ancestor(x, z);
}

std::vector<Vertex> TreeIndex::tree_path(Vertex a, Vertex b) const {
  const Vertex l = lca(a, b);
  PARDFS_CHECK_MSG(l != kNullVertex, "tree_path endpoints in different trees");
  std::vector<Vertex> out;
  for (Vertex v = a;; v = parent_[static_cast<std::size_t>(v)]) {
    out.push_back(v);
    if (v == l) break;
  }
  std::vector<Vertex> down;
  for (Vertex v = b; v != l; v = parent_[static_cast<std::size_t>(v)]) {
    down.push_back(v);
  }
  out.insert(out.end(), down.rbegin(), down.rend());
  return out;
}

std::vector<Vertex> TreeIndex::subtree_vertices(Vertex v) const {
  PARDFS_DCHECK(in_forest(v));
  const std::int32_t lo = pre_[static_cast<std::size_t>(v)];
  const std::int32_t hi = lo + size_[static_cast<std::size_t>(v)];
  std::vector<Vertex> out;
  out.reserve(static_cast<std::size_t>(hi - lo));
  for (std::int32_t i = lo; i < hi; ++i) {
    out.push_back(order_by_pre_[static_cast<std::size_t>(i)]);
  }
  return out;
}

}  // namespace pardfs
