// Rooted-forest index: the tree-side toolbox of the paper (§5.1, §5.3).
//
// Built from a parent array in O(n) work, it answers in O(1):
//   * parent / depth / subtree size / pre & post order index (Theorem 4),
//   * ancestor tests (pre-interval containment),
//   * LCA (Theorem 6; via Euler tour + sparse table — see lca.hpp),
//   * child of `a` on the path towards a descendant `d` (binary search over
//     children ordered by pre index — §5.3 query 3),
// and supports the path/subtree enumerations of §5.3 in time linear in the
// output.
//
// A *forest* is indexed (the paper's virtual root r is kept implicit: each
// graph component's DFS tree is a root in the forest; see reduction.hpp).
// Dead vertices (parent slot kNullVertex, not marked as roots) get size 0
// and pre/post -1.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge.hpp"
#include "tree/euler_tour.hpp"
#include "tree/lca.hpp"

namespace pardfs {

// How build() computes the tables. kSerial is the one-socket stack DFS;
// kParallel is the paper-faithful Theorem 4 construction (children CSR via
// counting + exclusive scan, Euler tour + list ranking for pre/post/depth/
// size and the orderings, parallel Fischer–Heun block fill). Both produce
// byte-identical tables (pinned by tests/test_rebuild.cpp at 1/2/4/8
// workers); kAuto picks the parallel path when a worker team is available
// and the forest is large enough to amortize the tour's O(n log n) work.
enum class TreeBuildMode : std::uint8_t { kAuto, kSerial, kParallel };

class TreeIndex {
 public:
  TreeIndex() = default;

  // parent[v] == kNullVertex marks v as a root (if alive[v]) or dead (if not).
  // If `alive` is empty every vertex is considered alive.
  // Rebuilding into the same object reuses every buffer (including the LCA
  // table's and the tour scratch): the steady-state epoch rebuild allocates
  // nothing once capacities have stabilized — see heap_capacity_bytes().
  void build(std::span<const Vertex> parent, std::span<const std::uint8_t> alive = {},
             TreeBuildMode mode = TreeBuildMode::kAuto);

  Vertex capacity() const { return static_cast<Vertex>(parent_.size()); }
  bool in_forest(Vertex v) const {
    return v >= 0 && v < capacity() && pre_[static_cast<std::size_t>(v)] >= 0;
  }

  Vertex parent(Vertex v) const { return parent_[static_cast<std::size_t>(v)]; }
  std::int32_t depth(Vertex v) const { return depth_[static_cast<std::size_t>(v)]; }
  std::int32_t size(Vertex v) const { return size_[static_cast<std::size_t>(v)]; }
  std::int32_t pre(Vertex v) const { return pre_[static_cast<std::size_t>(v)]; }
  std::int32_t post(Vertex v) const { return post_[static_cast<std::size_t>(v)]; }
  Vertex root_of(Vertex v) const { return tree_root_[static_cast<std::size_t>(v)]; }
  Vertex vertex_at_pre(std::int32_t pre_index) const {
    return order_by_pre_[static_cast<std::size_t>(pre_index)];
  }
  Vertex vertex_at_post(std::int32_t post_index) const {
    return order_by_post_[static_cast<std::size_t>(post_index)];
  }
  std::int32_t num_indexed() const { return num_indexed_; }
  std::span<const Vertex> roots() const { return roots_; }

  std::span<const Vertex> children(Vertex v) const {
    const auto s = static_cast<std::size_t>(child_start_[static_cast<std::size_t>(v)]);
    const auto e = static_cast<std::size_t>(child_start_[static_cast<std::size_t>(v) + 1]);
    return {child_list_.data() + s, e - s};
  }

  // True iff a is an ancestor of d or a == d (both must be in the forest).
  bool is_ancestor(Vertex a, Vertex d) const {
    return pre_[static_cast<std::size_t>(a)] <= pre_[static_cast<std::size_t>(d)] &&
           pre_[static_cast<std::size_t>(d)] <
               pre_[static_cast<std::size_t>(a)] + size_[static_cast<std::size_t>(a)];
  }

  // LCA of u and v; kNullVertex if they are in different trees.
  Vertex lca(Vertex u, Vertex v) const;

  // §5.3 query: an edge (x, y) is a back edge iff one endpoint is an
  // ancestor of the other.
  bool is_back_edge(Vertex x, Vertex y) const {
    return is_ancestor(x, y) || is_ancestor(y, x);
  }

  // §5.3 query: the child c of `a` whose subtree contains descendant `d`
  // (a must be a proper ancestor of d). O(log deg(a)).
  Vertex child_toward(Vertex a, Vertex d) const;

  // Number of edges on the tree path between u and v (same tree).
  std::int32_t path_length(Vertex u, Vertex v) const;

  // Vertices of the ancestor-descendant path from `from` to `to`, in order
  // (`to` must be an ancestor of `from` or vice versa). O(output).
  std::vector<Vertex> path_vertices(Vertex from, Vertex to) const;

  // True iff x lies on the tree path between y and z (§5.3 query 4).
  bool on_path(Vertex x, Vertex y, Vertex z) const;

  // Vertices of the subtree rooted at v, in pre-order. O(output).
  std::vector<Vertex> subtree_vertices(Vertex v) const;

  // Zero-copy view of the subtree's vertices (contiguous in pre-order).
  std::span<const Vertex> subtree_span(Vertex v) const {
    const std::int32_t lo = pre_[static_cast<std::size_t>(v)];
    const std::int32_t len = size_[static_cast<std::size_t>(v)];
    return {order_by_pre_.data() + lo, static_cast<std::size_t>(len)};
  }

  // Vertices of the (possibly bent) tree path from a to b, in order.
  // a and b must be in the same tree. O(output).
  std::vector<Vertex> tree_path(Vertex a, Vertex b) const;

  // Sum of owned heap capacities in bytes, tour scratch and LCA table
  // included. A second build() of the same forest shape must leave this
  // unchanged (zero new heap growth) — pinned by tests/test_rebuild.cpp.
  std::size_t heap_capacity_bytes() const;

 private:
  void build_children_csr(std::span<const Vertex> parent,
                          std::span<const std::uint8_t> alive, bool parallel);
  void build_serial(std::span<const std::uint8_t> alive);
  void build_parallel(std::span<const Vertex> parent,
                      std::span<const std::uint8_t> alive);

  std::vector<Vertex> parent_;
  std::vector<Vertex> tree_root_;
  std::vector<std::int32_t> depth_, size_, pre_, post_;
  std::vector<Vertex> order_by_pre_, order_by_post_;
  std::vector<std::int32_t> child_start_;
  std::vector<Vertex> child_list_;
  std::vector<Vertex> roots_;
  std::int32_t num_indexed_ = 0;
  LcaTable lca_;
  // Rebuild scratch, recycled across builds (the LCA table swaps its
  // previous buffers back into the first three on every build; the parallel
  // path swaps the member tables through tour_scratch_ the same way).
  std::vector<Vertex> euler_scratch_;
  std::vector<std::int32_t> euler_depth_scratch_, first_pos_scratch_;
  std::vector<std::int32_t> cursor_scratch_;
  std::vector<std::pair<Vertex, std::int32_t>> stack_scratch_;
  EulerTourTables tour_scratch_;
};

}  // namespace pardfs
