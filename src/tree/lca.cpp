#include "tree/lca.hpp"

#include <algorithm>
#include <utility>

#include "pram/parallel.hpp"
#include "util/check.hpp"

namespace pardfs {
namespace {

// argmin of every (i, j) window for every ±1 descent pattern of a block:
// pos[p][i][j] is the local position of the depth minimum on [i, j] when bit
// (t-1) of p says the tour descends into local position t. 8 KiB, built once
// per process; blocks straddling tree boundaries have non-±1 steps encoded
// as ascents, which is safe because a query range never crosses trees.
struct PatternTable {
  std::uint8_t pos[128][8][8];
  PatternTable() {
    for (int p = 0; p < 128; ++p) {
      int d[8] = {0};
      for (int t = 1; t < 8; ++t) d[t] = d[t - 1] + (((p >> (t - 1)) & 1) ? -1 : 1);
      for (int i = 0; i < 8; ++i) {
        for (int j = i; j < 8; ++j) {
          int best = i;
          for (int t = i + 1; t <= j; ++t) {
            if (d[t] < d[best]) best = t;
          }
          pos[p][i][j] = static_cast<std::uint8_t>(best);
        }
      }
    }
  }
};
const PatternTable g_patterns;

}  // namespace

void LcaTable::build(std::vector<Vertex>& euler, std::vector<std::int32_t>& depth_at,
                     std::vector<std::int32_t>& first_pos) {
  euler_.swap(euler);
  depth_at_.swap(depth_at);
  first_pos_.swap(first_pos);
  const std::size_t n = euler_.size();
  if (n == 0) {
    pattern_.clear();
    block_table_.clear();
    log2_.clear();
    num_blocks_ = 0;
    return;
  }

  num_blocks_ = static_cast<std::int32_t>((n + kBlock - 1) / kBlock);
  const std::size_t blocks = static_cast<std::size_t>(num_blocks_);
  log2_.assign(blocks + 1, 0);
  for (std::size_t i = 2; i <= blocks; ++i) log2_[i] = log2_[i / 2] + 1;

  pattern_.resize(blocks);
  const int levels = log2_[blocks] + 1;
  block_table_.resize(static_cast<std::size_t>(levels) * blocks);
  // Level 0: descent pattern and argmin position of each block, one pass.
  pram::parallel_for_t(0, blocks, [&](std::size_t b) {
    const std::int32_t lo = static_cast<std::int32_t>(b) * kBlock;
    const std::int32_t hi =
        std::min(lo + kBlock - 1, static_cast<std::int32_t>(n) - 1);
    std::uint8_t p = 0;
    for (std::int32_t t = 1; t <= hi - lo; ++t) {
      if (depth_at_[static_cast<std::size_t>(lo + t)] <
          depth_at_[static_cast<std::size_t>(lo + t - 1)]) {
        p |= static_cast<std::uint8_t>(1u << (t - 1));
      }
    }
    pattern_[b] = p;
    block_table_[b] = lo + g_patterns.pos[p][0][hi - lo];
  });
  // Doubling levels over block minima: (n / kBlock) log n total work.
  for (int k = 1; k < levels; ++k) {
    const std::size_t span = std::size_t{1} << k;
    const std::size_t rows = blocks - span + 1;
    const std::int32_t* prev = block_table_.data() + (k - 1) * blocks;
    std::int32_t* cur = block_table_.data() + k * blocks;
    pram::parallel_for_t(0, rows, [&](std::size_t i) {
      const std::int32_t a = prev[i];
      const std::int32_t b = prev[i + span / 2];
      cur[i] = depth_at_[static_cast<std::size_t>(a)] <=
                       depth_at_[static_cast<std::size_t>(b)]
                   ? a
                   : b;
    });
  }
}

std::size_t LcaTable::heap_capacity_bytes() const {
  return euler_.capacity() * sizeof(Vertex) +
         depth_at_.capacity() * sizeof(std::int32_t) +
         first_pos_.capacity() * sizeof(std::int32_t) + pattern_.capacity() +
         block_table_.capacity() * sizeof(std::int32_t) +
         log2_.capacity() * sizeof(std::int32_t);
}

std::int32_t LcaTable::in_block(std::int32_t lo, std::int32_t hi) const {
  // lo and hi share a block; locals fall out of the low bits, no division.
  const std::int32_t base = lo & ~kBlockMask;
  return base + g_patterns.pos[pattern_[static_cast<std::size_t>(
                    lo >> kBlockShift)]][lo & kBlockMask][hi & kBlockMask];
}

std::int32_t LcaTable::argmin(std::int32_t lo, std::int32_t hi) const {
  // Branch-free evaluation (DESIGN.md §10): instead of the per-level
  // if-ladder (same block? middle blocks?), every candidate is computed
  // over a clamped window and dead candidates lose by construction:
  //   * head window [lo, min(hi, bl's end)] and tail window
  //     [max(lo, bh's start), hi] both degenerate to [lo, hi] when
  //     bl == bh, so the head/tail min IS the answer there;
  //   * the sparse-table middle is clamped to the single block bl when no
  //     full middle block exists and its candidate is masked out by
  //     have_mid. Every select below is a cmov-friendly ternary.
  const std::int32_t bl = lo >> kBlockShift;
  const std::int32_t bh = hi >> kBlockShift;
  const std::int32_t head_hi = std::min(hi, (bl << kBlockShift) | kBlockMask);
  const std::int32_t tail_lo = std::max(lo, bh << kBlockShift);
  const std::int32_t head = in_block(lo, head_hi);
  const std::int32_t tail = in_block(tail_lo, hi);
  std::int32_t best = depth_at_[static_cast<std::size_t>(tail)] <
                              depth_at_[static_cast<std::size_t>(head)]
                          ? tail
                          : head;
  const bool have_mid = bh - bl > 1;
  const std::int32_t first = have_mid ? bl + 1 : bl;
  const std::int32_t last = have_mid ? bh - 1 : bl;
  const std::int32_t k = log2_[static_cast<std::size_t>(last - first + 1)];
  const std::int32_t* row =
      block_table_.data() + static_cast<std::size_t>(k) * num_blocks_;
  const std::int32_t a = row[first];
  const std::int32_t b = row[last - (1 << k) + 1];
  const std::int32_t mid =
      depth_at_[static_cast<std::size_t>(a)] <= depth_at_[static_cast<std::size_t>(b)]
          ? a
          : b;
  best = have_mid && depth_at_[static_cast<std::size_t>(mid)] <
                         depth_at_[static_cast<std::size_t>(best)]
             ? mid
             : best;
  return best;
}

Vertex LcaTable::query(Vertex u, Vertex v) const {
  const std::int32_t pu = first_pos_[static_cast<std::size_t>(u)];
  const std::int32_t pv = first_pos_[static_cast<std::size_t>(v)];
  PARDFS_DCHECK(pu >= 0 && pv >= 0);
  return euler_[static_cast<std::size_t>(
      argmin(std::min(pu, pv), std::max(pu, pv)))];
}

}  // namespace pardfs
