#include "tree/lca.hpp"

#include <utility>

#include "pram/parallel.hpp"
#include "util/check.hpp"

namespace pardfs {

void LcaTable::build(std::vector<Vertex> euler, std::vector<std::int32_t> depth_at,
                     std::vector<std::int32_t> first_pos) {
  euler_ = std::move(euler);
  depth_at_ = std::move(depth_at);
  first_pos_ = std::move(first_pos);
  const std::size_t n = euler_.size();
  table_.clear();
  log2_.assign(n + 1, 0);
  for (std::size_t i = 2; i <= n; ++i) log2_[i] = log2_[i / 2] + 1;
  if (n == 0) return;

  const int levels = log2_[n] + 1;
  table_.resize(static_cast<std::size_t>(levels));
  table_[0].resize(n);
  pram::parallel_for_t(0, n, [&](std::size_t i) {
    table_[0][i] = static_cast<std::int32_t>(i);
  });
  for (int k = 1; k < levels; ++k) {
    const std::size_t span = std::size_t{1} << k;
    const std::size_t rows = n - span + 1;
    table_[static_cast<std::size_t>(k)].resize(rows);
    auto& cur = table_[static_cast<std::size_t>(k)];
    const auto& prev = table_[static_cast<std::size_t>(k - 1)];
    pram::parallel_for_t(0, rows, [&](std::size_t i) {
      const std::int32_t a = prev[i];
      const std::int32_t b = prev[i + span / 2];
      cur[i] = depth_at_[static_cast<std::size_t>(a)] <=
                       depth_at_[static_cast<std::size_t>(b)]
                   ? a
                   : b;
    });
  }
}

std::int32_t LcaTable::argmin(std::int32_t lo, std::int32_t hi) const {
  const std::int32_t len = hi - lo + 1;
  const std::int32_t k = log2_[static_cast<std::size_t>(len)];
  const std::int32_t a = table_[static_cast<std::size_t>(k)][static_cast<std::size_t>(lo)];
  const std::int32_t b = table_[static_cast<std::size_t>(k)]
                               [static_cast<std::size_t>(hi - (1 << k) + 1)];
  return depth_at_[static_cast<std::size_t>(a)] <= depth_at_[static_cast<std::size_t>(b)]
             ? a
             : b;
}

Vertex LcaTable::query(Vertex u, Vertex v) const {
  std::int32_t pu = first_pos_[static_cast<std::size_t>(u)];
  std::int32_t pv = first_pos_[static_cast<std::size_t>(v)];
  PARDFS_DCHECK(pu >= 0 && pv >= 0);
  if (pu > pv) std::swap(pu, pv);
  return euler_[static_cast<std::size_t>(argmin(pu, pv))];
}

}  // namespace pardfs
