// Euler-tour technique (Tarjan–Vishkin; paper Theorem 4).
//
// Computes, fully in parallel (pointer-jumping list ranking + scans):
// pre-order number, post-order number, depth (level) and subtree size
// (number of descendants) for every vertex of a rooted forest given as a
// parent array. O(n log n) work, O(log n) depth.
//
// TreeIndex uses a sequential O(n) build for its tables (faster on one
// socket); this module is the PRAM-faithful construction and is
// cross-checked against TreeIndex in the test suite — it is the substrate
// the paper's preprocessing bound (Theorem 4/10) rests on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge.hpp"

namespace pardfs {

struct EulerTourResult {
  std::vector<std::int32_t> pre;    // -1 for vertices outside the forest
  std::vector<std::int32_t> post;   // -1 for vertices outside the forest
  std::vector<std::int32_t> depth;  // -1 for vertices outside the forest
  std::vector<std::int32_t> size;   // 0 for vertices outside the forest
};

// The vertex-sequence Euler tour on top of EulerTourResult — per tree of the
// forest, root first, then one vertex per directed tree edge (the entered
// vertex for a down edge, the parent for an up edge), trees concatenated in
// root-id order. Exactly the sequence a serial DFS emits, so TreeIndex can
// feed it to the Fischer–Heun LCA table and stay byte-identical to its
// serial build. root_of is kNullVertex outside the forest.
struct EulerTourTables {
  EulerTourResult result;
  std::vector<Vertex> euler;             // length sum over trees of 2*size-1
  std::vector<std::int32_t> euler_depth; // depth of euler[i]
  std::vector<std::int32_t> first_pos;   // first tour occurrence; -1 outside
  std::vector<Vertex> root_of;
};

// parent[v] == kNullVertex: v is a root if alive (empty alive = all alive),
// otherwise v is skipped entirely.
EulerTourResult euler_tour(std::span<const Vertex> parent,
                           std::span<const std::uint8_t> alive = {});

// Same construction, additionally materializing the vertex tour (Theorem 4's
// full output, consumed by TreeIndex::build's parallel path).
EulerTourTables euler_tour_tables(std::span<const Vertex> parent,
                                  std::span<const std::uint8_t> alive = {});

// In-place variant: fills `out` via assign(), so a caller that passes the
// same tables object across builds reuses their capacity (the construction
// still allocates its internal temporaries per call).
void euler_tour_tables_into(std::span<const Vertex> parent,
                            std::span<const std::uint8_t> alive,
                            EulerTourTables& out);

}  // namespace pardfs
