// Euler-tour technique (Tarjan–Vishkin; paper Theorem 4).
//
// Computes, fully in parallel (pointer-jumping list ranking + scans):
// pre-order number, post-order number, depth (level) and subtree size
// (number of descendants) for every vertex of a rooted forest given as a
// parent array. O(n log n) work, O(log n) depth.
//
// TreeIndex uses a sequential O(n) build for its tables (faster on one
// socket); this module is the PRAM-faithful construction and is
// cross-checked against TreeIndex in the test suite — it is the substrate
// the paper's preprocessing bound (Theorem 4/10) rests on.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge.hpp"

namespace pardfs {

struct EulerTourResult {
  std::vector<std::int32_t> pre;    // -1 for vertices outside the forest
  std::vector<std::int32_t> post;   // -1 for vertices outside the forest
  std::vector<std::int32_t> depth;  // -1 for vertices outside the forest
  std::vector<std::int32_t> size;   // 0 for vertices outside the forest
};

// parent[v] == kNullVertex: v is a root if alive (empty alive = all alive),
// otherwise v is skipped entirely.
EulerTourResult euler_tour(std::span<const Vertex> parent,
                           std::span<const std::uint8_t> alive = {});

}  // namespace pardfs
