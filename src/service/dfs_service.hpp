// Concurrent snapshot-serving layer over DynamicDfs — the read-mostly
// deployment shape the paper's design is built for (ROADMAP north star).
//
// One writer thread owns the DynamicDfs instance. It drains the MPSC
// UpdateQueue, coalescing whatever is pending (up to the epoch period) into
// one batch, applies it through DynamicDfs::apply_batch — one combined
// reduction, one engine pass, one O(n) index rebuild for the whole batch —
// and publishes a fresh immutable DfsSnapshot through a single
// std::atomic<std::shared_ptr>. Readers call snapshot() — one atomic load,
// never blocked by the writer's batch work — and answer is_ancestor / lca /
// path_to_root / root_of / same_component queries against a forest that
// cannot change under them. The harder the update load, the larger the
// coalesced batches and the better the per-update amortization: the service
// degrades by batching more, not by queueing reads.
//
// Feasibility is checked at the service boundary (clients race each other:
// by the time an update drains, another may have deleted its endpoint).
// Infeasible updates are acknowledged with UpdateTicket::kRejected instead
// of aborting the writer; accepted updates are acknowledged with the version
// of the first snapshot that reflects them.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "core/dynamic_dfs.hpp"
#include "service/snapshot.hpp"
#include "service/update_queue.hpp"

namespace pardfs::service {

struct ServiceConfig {
  std::size_t queue_capacity = 4096;
  // Coalescing cap per drain; 0 = the core's epoch period (Θ(log n), the
  // largest batch the Theorem 9 patch budget absorbs in one segment).
  std::size_t max_batch = 0;
  RerootStrategy strategy = RerootStrategy::kPaper;
  // Worker-team cap for the rerooting engine's parallel rounds (0 = the pram
  // facade default). Purely a wall-clock knob: the served forest is
  // identical at any value.
  int num_threads = 0;
  // Start with the writer paused (updates queue up; nothing applies until
  // resume()). Lets tests and benchmarks pin coalescing deterministically.
  bool start_paused = false;
  // Compute core/articulation's CutStructure at every publish so snapshots
  // answer articulation / bridge queries (the dynamic_map workload's client
  // vocabulary). Costs one O(m + n) low-link pass per published batch —
  // off by default so update-heavy deployments don't pay it.
  bool serve_cuts = false;
};

struct ServiceStats {
  std::uint64_t batches = 0;             // apply_batch calls
  std::uint64_t updates_applied = 0;     // accepted updates
  std::uint64_t updates_rejected = 0;    // infeasible at drain time
  std::uint64_t snapshots_published = 0; // excludes the constructor's
  std::uint64_t max_batch = 0;           // largest coalesced batch so far
  std::uint64_t structural = 0;          // accepted structural updates
  std::uint64_t back_edges = 0;          // accepted patch-only updates
  std::uint64_t segments = 0;            // combined engine passes
  std::uint64_t index_rebuilds = 0;      // O(n) rebuilds across all batches
  std::uint64_t base_rebuilds = 0;       // epoch rebases across all batches
  // kRejected acks by reason. `rejected_infeasible` == updates_rejected (the
  // historical drain-time meaning); `rejected_shutdown` counts submits that
  // lost the race against stop() and were pre-rejected by the queue — those
  // never reach the writer, so they are NOT part of updates_rejected.
  std::uint64_t rejected_infeasible = 0;
  std::uint64_t rejected_shutdown = 0;
};

class DfsService {
 public:
  explicit DfsService(Graph initial, ServiceConfig config = {});
  ~DfsService();
  DfsService(const DfsService&) = delete;
  DfsService& operator=(const DfsService&) = delete;

  // ---- reader side ---------------------------------------------------------
  // The latest published snapshot: one atomic shared_ptr load, any number of
  // concurrent callers, never blocked by in-flight batches.
  SnapshotPtr snapshot() const {
    return snapshot_.load(std::memory_order_acquire);
  }

  // ---- producer side -------------------------------------------------------
  // Blocks while the queue is full (backpressure). After stop() the ticket
  // comes back already acknowledged as kRejected (always safe to wait() on).
  UpdateTicket submit(GraphUpdate update) { return queue_.submit(std::move(update)); }
  bool try_submit(GraphUpdate update, UpdateTicket* ticket) {
    return queue_.try_submit(std::move(update), ticket);
  }
  // submit + wait: returns the publishing version or UpdateTicket::kRejected.
  std::uint64_t apply_sync(GraphUpdate update);

  // ---- lifecycle -----------------------------------------------------------
  // After pause() returns, no further batch is applied or published until
  // resume() (a batch already mid-apply completes; updates the writer had
  // already drained are held back un-applied).
  void pause();
  void resume();
  // Closes the queue, lets the writer drain every pending update (all
  // tickets get acknowledged), and joins it. Idempotent.
  void stop();

  ServiceStats stats() const;
  std::size_t queue_depth() const { return queue_.size(); }

  // ---- observability -------------------------------------------------------
  // Point-in-time dump of the process-wide obs registry (DESIGN.md §11):
  // Prometheus exposition text / one JSON object. Callable from any thread
  // while the service runs; the registry is process-global, so the page also
  // carries the core's phase histograms and engine counters.
  std::string metrics_text() const;
  std::string metrics_json() const;

  // The underlying engine — owned by the writer thread while the service
  // runs; only safe to inspect after stop().
  const DynamicDfs& core() const { return dfs_; }

 private:
  void writer_loop();
  // forest_unchanged: the batch was patch-only, so the previous snapshot's
  // Forest is shared instead of re-copied (publication becomes O(1)).
  void publish(bool forest_unchanged);
  // Feasibility of `u` against the core graph plus the accepted prefix of
  // the current batch (tracked in the small delta structures below).
  struct BatchDelta;
  bool feasible(const GraphUpdate& u, BatchDelta& delta) const;

  ServiceConfig config_;
  DynamicDfs dfs_;  // writer-thread-owned after construction
  UpdateQueue queue_;
  std::atomic<SnapshotPtr> snapshot_;
  std::uint64_t version_ = 0;          // writer-only after construction
  std::uint64_t updates_applied_ = 0;  // writer-only after construction
  std::uint64_t last_publish_ns_ = 0;  // writer-only; snapshot-staleness base

  mutable std::mutex control_mu_;  // pause flag + stats
  std::condition_variable control_cv_;
  bool paused_ = false;
  bool stopped_ = false;
  ServiceStats stats_;

  std::thread writer_;  // last member: starts after everything is ready
};

}  // namespace pardfs::service
