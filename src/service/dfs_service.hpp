// Concurrent snapshot-serving layer over DynamicDfs — the read-mostly
// deployment shape the paper's design is built for (ROADMAP north star).
//
// Since the sharding refactor (DESIGN.md §12) DfsService is a thin façade
// over a single-shard ShardRouter: the router owns the writer thread, the
// MPSC UpdateQueue, the feasibility filter and the RCU snapshot publication;
// at num_shards == 1 its writer path is the exact historical single-writer
// pipeline (same batching, same metric series, same ack semantics). This
// class keeps the one-graph API — snapshot() as a single atomic load —
// that the tests, benches and tools grew against. Multi-shard deployments
// construct a ShardRouter directly (service/shard_router.hpp).
//
// One writer thread owns the DynamicDfs instance. It drains the MPSC
// UpdateQueue, coalescing whatever is pending (up to the epoch period) into
// one batch, applies it through DynamicDfs::apply_batch — one combined
// reduction, one engine pass, one O(n) index rebuild for the whole batch —
// and publishes a fresh immutable DfsSnapshot through a single
// std::atomic<std::shared_ptr>. Readers call snapshot() — one atomic load,
// never blocked by the writer's batch work — and answer is_ancestor / lca /
// path_to_root / root_of / same_component queries against a forest that
// cannot change under them. The harder the update load, the larger the
// coalesced batches and the better the per-update amortization: the service
// degrades by batching more, not by queueing reads.
//
// Feasibility is checked at the service boundary (clients race each other:
// by the time an update drains, another may have deleted its endpoint).
// Infeasible updates are acknowledged with UpdateTicket::kRejected instead
// of aborting the writer; accepted updates are acknowledged with the version
// of the first snapshot that reflects them.
#pragma once

#include <cstdint>
#include <string>
#include <utility>

#include "service/shard_router.hpp"

namespace pardfs::service {

class DfsService {
 public:
  // config.num_shards must be 1 (the default): this façade serves the
  // single-snapshot API. Use ShardRouter directly for num_shards > 1.
  explicit DfsService(Graph initial, ServiceConfig config = {});

  DfsService(const DfsService&) = delete;
  DfsService& operator=(const DfsService&) = delete;

  // ---- reader side ---------------------------------------------------------
  // The latest published snapshot: one atomic shared_ptr load, any number of
  // concurrent callers, never blocked by in-flight batches.
  SnapshotPtr snapshot() const { return router_.shard_snapshot(0); }

  // ---- producer side -------------------------------------------------------
  // Blocks while the queue is full (backpressure). After stop() the ticket
  // comes back already acknowledged as kRejected (always safe to wait() on).
  UpdateTicket submit(GraphUpdate update) {
    return router_.submit(std::move(update));
  }
  bool try_submit(GraphUpdate update, UpdateTicket* ticket) {
    return router_.try_submit(std::move(update), ticket);
  }
  // submit + wait: returns the publishing version or UpdateTicket::kRejected.
  std::uint64_t apply_sync(GraphUpdate update) {
    return router_.apply_sync(std::move(update));
  }

  // ---- lifecycle -----------------------------------------------------------
  // After pause() returns, no further batch is applied or published until
  // resume() (a batch already mid-apply completes; updates the writer had
  // already drained are held back un-applied).
  void pause() { router_.pause(); }
  void resume() { router_.resume(); }
  // Closes the queue, lets the writer drain every pending update (all
  // tickets get acknowledged), and joins it. Idempotent.
  void stop() { router_.stop(); }

  ServiceStats stats() const { return router_.stats(); }
  std::size_t queue_depth() const { return router_.queue_depth(); }

  // ---- failure injection (DESIGN.md §13) -----------------------------------
  // Poisons the writer: it crashes at its next drained work and — with the
  // journal on (the default) — the watchdog fails it over by journal replay.
  // Poll stats().recoveries for completion. Available in every build.
  void inject_writer_failure() { router_.inject_writer_failure(0); }

  // ---- observability -------------------------------------------------------
  // Point-in-time dump of the process-wide obs registry (DESIGN.md §11):
  // Prometheus exposition text / one JSON object. Callable from any thread
  // while the service runs; the registry is process-global, so the page also
  // carries the core's phase histograms and engine counters.
  std::string metrics_text() const { return router_.metrics_text(); }
  std::string metrics_json() const { return router_.metrics_json(); }

  // The underlying engine — owned by the writer thread while the service
  // runs; only safe to inspect after stop().
  const DynamicDfs& core() const { return router_.core(0); }

  // The router underneath (e.g. for RouterView-based readers).
  const ShardRouter& router() const { return router_; }
  ShardRouter& router() { return router_; }

 private:
  ShardRouter router_;
};

}  // namespace pardfs::service
