#include "service/snapshot.hpp"

#include <utility>

#include "util/check.hpp"

namespace pardfs::service {

DfsSnapshot::DfsSnapshot(std::uint64_t version, std::uint64_t updates_applied,
                         std::shared_ptr<const Forest> forest,
                         std::int64_t num_edges,
                         std::shared_ptr<const CutStructure> cuts)
    : version_(version),
      updates_applied_(updates_applied),
      forest_(std::move(forest)),
      num_edges_(num_edges),
      cuts_(std::move(cuts)) {
  PARDFS_CHECK(forest_ != nullptr && forest_->index != nullptr);
}

bool DfsSnapshot::is_bridge(Vertex u, Vertex v) const {
  if (cuts_ == nullptr || !contains(u) || !contains(v)) return false;
  for (const Edge& b : cuts_->bridges) {
    if ((b.u == u && b.v == v) || (b.u == v && b.v == u)) return true;
  }
  return false;
}

std::vector<Vertex> DfsSnapshot::path_to_root(Vertex v) const {
  std::vector<Vertex> out;
  if (!contains(v)) return out;
  out.reserve(static_cast<std::size_t>(forest_->index->depth(v)) + 1);
  for (Vertex cur = v; cur != kNullVertex;
       cur = forest_->parent[static_cast<std::size_t>(cur)]) {
    out.push_back(cur);
  }
  return out;
}

}  // namespace pardfs::service
