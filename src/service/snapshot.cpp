#include "service/snapshot.hpp"

#include <utility>

#include "util/check.hpp"

namespace pardfs::service {

DfsSnapshot::DfsSnapshot(std::uint64_t version, std::uint64_t updates_applied,
                         std::shared_ptr<const Forest> forest,
                         std::int64_t num_edges)
    : version_(version),
      updates_applied_(updates_applied),
      forest_(std::move(forest)),
      num_edges_(num_edges) {
  PARDFS_CHECK(forest_ != nullptr && forest_->index != nullptr);
}

std::vector<Vertex> DfsSnapshot::path_to_root(Vertex v) const {
  std::vector<Vertex> out;
  if (!contains(v)) return out;
  out.reserve(static_cast<std::size_t>(forest_->index->depth(v)) + 1);
  for (Vertex cur = v; cur != kNullVertex;
       cur = forest_->parent[static_cast<std::size_t>(cur)]) {
    out.push_back(cur);
  }
  return out;
}

}  // namespace pardfs::service
