// Service workload scenarios — the shared driver behind the stress tests,
// examples and bench_service, so all three exercise the same traffic shapes:
//
//   * read-heavy        — dense-ish connected graph, light edge flip churn;
//                         the RCU sweet spot (95% reads).
//   * insert-churn      — growing graph, insert-dominated mix with vertex
//                         arrivals; stresses batch segmentation and the
//                         oracle's Theorem 9 patch lists.
//   * adversarial-star  — star center edge churn over a leaf ring: every
//                         structural update reroots Θ(n) subtrees, the case
//                         where sequential rerooting degenerates (§4).
//   * social-mix        — Barabási–Albert power-law graph under a mixed
//                         update stream; hub churn plus vertex arrivals and
//                         departures, the "millions of users" shape.
//
// The driver owns a mirror graph and only emits updates feasible against it,
// so a single producer can feed a DfsService (or DynamicDfs::apply_batch
// directly) without ever tripping a rejection. Fully deterministic per seed.
#pragma once

#include <cstdint>
#include <string>

#include "core/reduction.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "util/random.hpp"

namespace pardfs::service {

enum class Scenario : std::uint8_t {
  kReadHeavy,
  kInsertChurn,
  kAdversarialStar,
  kSocialMix,
};

const char* scenario_name(Scenario s);

// Fraction of client operations that are snapshot reads in the scenario's
// canonical mix (benchmarks interleave reads accordingly).
double read_fraction(Scenario s);

struct WorkloadSpec {
  Scenario scenario = Scenario::kReadHeavy;
  Vertex n = 1024;  // initial graph scale
  std::uint64_t seed = 1;
};

Graph make_initial_graph(const WorkloadSpec& spec);

class WorkloadDriver {
 public:
  explicit WorkloadDriver(WorkloadSpec spec);

  const WorkloadSpec& spec() const { return spec_; }
  // The mirror after all updates generated so far (what the served graph
  // looks like once every emitted update is applied).
  const Graph& graph() const { return mirror_; }

  // The next update of the stream; always feasible against the mirror, which
  // it is immediately applied to.
  GraphUpdate next();

 private:
  GraphUpdate next_mixed(double w_insert_edge, double w_delete_edge,
                         double w_insert_vertex, double w_delete_vertex);

  WorkloadSpec spec_;
  Graph mirror_;
  Rng rng_;
  std::uint64_t step_ = 0;
};

}  // namespace pardfs::service
