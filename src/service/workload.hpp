// Service workload scenarios — the shared driver behind the stress tests,
// examples and bench_service, so all three exercise the same traffic shapes:
//
//   * read-heavy        — dense-ish connected graph, light edge flip churn;
//                         the RCU sweet spot (95% reads).
//   * insert-churn      — growing graph, insert-dominated mix with vertex
//                         arrivals; stresses batch segmentation and the
//                         oracle's Theorem 9 patch lists.
//   * adversarial-star  — star center edge churn over a leaf ring: every
//                         structural update reroots Θ(n) subtrees, the case
//                         where sequential rerooting degenerates (§4).
//   * social-mix        — Barabási–Albert power-law graph under a mixed
//                         update stream; hub churn plus vertex arrivals and
//                         departures, the "millions of users" shape.
//   * dynamic-map       — roadmap grid where obstacle appearance deletes a
//                         cell's vertex and clearance restores it (a fresh
//                         id wired to the open 4-neighbors); clients ask
//                         reachability / articulation questions against
//                         snapshots (serve_cuts). The marine path-planner
//                         shape from the ROADMAP.
//
// The driver owns a mirror graph and only emits updates feasible against it,
// so a single producer can feed a DfsService (or DynamicDfs::apply_batch
// directly) without ever tripping a rejection. Fully deterministic per seed
// (pinned by tests/test_workload.cpp).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/reduction.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "service/update_queue.hpp"
#include "util/random.hpp"

namespace pardfs::service {

enum class Scenario : std::uint8_t {
  kReadHeavy,
  kInsertChurn,
  kAdversarialStar,
  kSocialMix,
  kDynamicMap,
};

const char* scenario_name(Scenario s);

// Fraction of client operations that are snapshot reads in the scenario's
// canonical mix (benchmarks interleave reads accordingly).
double read_fraction(Scenario s);

struct WorkloadSpec {
  Scenario scenario = Scenario::kReadHeavy;
  Vertex n = 1024;  // initial graph scale
  std::uint64_t seed = 1;
};

Graph make_initial_graph(const WorkloadSpec& spec);

class ShardRouter;

// One simulated client read session against a sharded router: every query
// resolves its owning shard through the view (the serving pattern the router
// optimizes — one directory load + one snapshot load per resolve) and asks a
// root / depth / same-component probe over random ids below the router's
// current capacity. Returns a fold over the answers so callers can
// DoNotOptimize it; when `per_shard_queries` is non-null (sized num_shards)
// it accumulates how many of the session's queries landed on each shard
// (ids the directory has never seen count nowhere). Deterministic per rng
// state modulo concurrent ownership migration.
std::uint64_t run_read_session(const ShardRouter& router, Rng& rng, int queries,
                               std::vector<std::uint64_t>* per_shard_queries);

// ---- client-side retry/backoff (DESIGN.md §13) ------------------------------
//
// The ack statuses split into definitive (a version, or kRejected) and
// transient (kRetryable — lost to a writer crash before it was journaled;
// kOverloaded — shed by admission control; kTimeout — still in flight past
// the deadline). submit_with_retry is the canonical client loop over that
// contract: resubmit on kRetryable/kOverloaded with exponential backoff,
// keep waiting the SAME ticket on kTimeout (the update may still land —
// resubmitting a timed-out update risks applying it twice), stop on a
// definitive answer or when the attempt budget runs out.
struct RetryPolicy {
  // Total budget: submits plus extra waits on a timed-out ticket.
  int max_attempts = 8;
  // Per-attempt ack deadline (UpdateTicket::wait_for bound).
  std::chrono::nanoseconds ack_timeout = std::chrono::seconds(1);
  std::chrono::nanoseconds initial_backoff = std::chrono::microseconds(100);
  std::chrono::nanoseconds max_backoff = std::chrono::milliseconds(50);
};

struct SubmitOutcome {
  // The final version, or the last status observed when the budget ran out
  // (kTimeout / kRetryable / kOverloaded mean "not applied as far as the
  // client knows"; kTimeout specifically means "maybe still in flight").
  std::uint64_t result = UpdateTicket::kRejected;
  Vertex assigned_vertex = kNullVertex;  // for kInsertVertex, once applied
  int attempts = 0;
  // Applied (a version) or definitively refused (kRejected): retrying the
  // same op cannot change the answer.
  bool definitive() const {
    return !UpdateTicket::is_status(result) ||
           result == UpdateTicket::kRejected;
  }
  bool applied() const { return !UpdateTicket::is_status(result); }
};

SubmitOutcome submit_with_retry(ShardRouter& router, const GraphUpdate& update,
                                const RetryPolicy& policy = {});

class WorkloadDriver {
 public:
  explicit WorkloadDriver(WorkloadSpec spec);

  const WorkloadSpec& spec() const { return spec_; }
  // The mirror after all updates generated so far (what the served graph
  // looks like once every emitted update is applied).
  const Graph& graph() const { return mirror_; }

  // The next update of the stream; always feasible against the mirror, which
  // it is immediately applied to.
  GraphUpdate next();

  // dynamic_map: the cell grid the mirror graph discretizes. Row-major;
  // kNullVertex marks an obstacle. Restored cells get fresh vertex ids
  // (graph ids are never recycled), so the map outlives any id.
  Vertex map_rows() const { return rows_; }
  Vertex map_cols() const { return cols_; }
  // Current vertex id of cell (r, c); kNullVertex if blocked.
  Vertex cell_vertex(Vertex r, Vertex c) const {
    return cells_[static_cast<std::size_t>(r * cols_ + c)];
  }

 private:
  GraphUpdate next_mixed(double w_insert_edge, double w_delete_edge,
                         double w_insert_vertex, double w_delete_vertex);
  GraphUpdate next_dynamic_map();

  WorkloadSpec spec_;
  Graph mirror_;
  Rng rng_;
  std::uint64_t step_ = 0;
  // dynamic_map state (empty for the other scenarios).
  Vertex rows_ = 0, cols_ = 0;
  std::vector<Vertex> cells_;
  Vertex blocked_ = 0;
};

}  // namespace pardfs::service
