#include "service/update_queue.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "testing/chaos.hpp"
#include "util/check.hpp"

namespace pardfs::service {
namespace {

// kRejected acks that never reached the writer: the submit-vs-stop race.
// The drain-path twin (reason="infeasible") lives in DfsService.
obs::Counter& shutdown_rejections() {
  static obs::Counter& c = obs::Registry::global().counter(
      "pardfs_acks_rejected_total", "reason=\"shutdown\"");
  return c;
}

// kOverloaded acks: admission control (shard_router) and the chaos
// queue_full hook record into the same series.
obs::Counter& overload_sheds_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("pardfs_overload_shed_total");
  return c;
}

}  // namespace

const char* UpdateTicket::status_name(std::uint64_t result) {
  switch (result) {
    case kRejected: return "rejected";
    case kRetryable: return "retryable";
    case kTimeout: return "timeout";
    case kOverloaded: return "overloaded";
    default: return "version";
  }
}

std::uint64_t UpdateTicket::wait() const {
  // Total even on a never-enqueued ticket: a client racing DfsService::stop()
  // must see a rejection, not an aborted process.
  if (!valid()) return kRejected;
  // C++20 atomic wait: blocks until result leaves the pending values. The
  // transient kAcking claim (try_ack's claim-then-publish window) counts as
  // pending — the final result lands within two stores of it.
  for (;;) {
    const std::uint64_t r = state_->result.load(std::memory_order_acquire);
    if (r != 0 && r != kAcking) return r;
    state_->result.wait(r, std::memory_order_acquire);
  }
}

std::uint64_t UpdateTicket::wait_for(std::chrono::nanoseconds timeout) const {
  if (!valid()) return kRejected;
  // C++20 atomic wait has no timed variant, so the bounded wait is a
  // monotonic-deadline poll with capped exponential backoff: responsive at
  // microsecond ack latencies, cheap when the writer is stalled for the full
  // deadline (the case this call exists for — see DESIGN.md §13).
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::chrono::nanoseconds step{2000};
  for (;;) {
    const std::uint64_t r = state_->result.load(std::memory_order_acquire);
    if (r != 0 && r != kAcking) return r;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return kTimeout;
    std::this_thread::sleep_for(std::min<std::chrono::nanoseconds>(
        {step, deadline - now}));
    step = std::min<std::chrono::nanoseconds>(step * 2,
                                              std::chrono::nanoseconds{1000000});
  }
}

std::optional<std::uint64_t> UpdateTicket::poll() const {
  if (!valid()) return std::nullopt;
  const std::uint64_t r = state_->result.load(std::memory_order_acquire);
  if (r == 0 || r == kAcking) return std::nullopt;
  return r;
}

void UpdateTicket::ack(std::uint64_t result, Vertex vertex) const {
  PARDFS_CHECK(valid() && result != 0);
  state_->vertex.store(vertex, std::memory_order_release);
  state_->result.store(result, std::memory_order_release);
  state_->result.notify_all();
}

bool UpdateTicket::try_ack(std::uint64_t result, Vertex vertex) const {
  PARDFS_CHECK(valid() && result != 0 && result != kAcking);
  // Claim-then-publish: CAS the result from pending to the transient kAcking
  // claim first, and only the claim winner writes the vertex. A losing acker
  // returns false having written nothing — whether it runs before or after
  // the winner's final store — so it can never overwrite the winner's
  // assigned vertex. Waiters treat kAcking as still-pending, which keeps the
  // vertex visible before any observable "done" result.
  std::uint64_t expected = 0;
  if (!state_->result.compare_exchange_strong(expected, kAcking,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
    return false;
  }
  state_->vertex.store(vertex, std::memory_order_release);
  state_->result.store(result, std::memory_order_release);
  state_->result.notify_all();
  return true;
}

UpdateQueue::UpdateQueue(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  // Eager registration: the reason="shutdown" and overload series show up
  // (at zero) on every metrics page, not only after the first event.
  shutdown_rejections();
  overload_sheds_counter();
}

UpdateTicket UpdateQueue::submit(GraphUpdate update) {
  // Chaos queue_full hook: a plan-ordered shed behaves exactly like the
  // router's admission control — the client sees kOverloaded and backs off.
  if (chaos_scope_ >= 0 &&
      chaos::hit(chaos::FaultPoint::kQueueFull,
                 static_cast<std::size_t>(chaos_scope_))
              .kind == chaos::FaultAction::Kind::kShed) {
    overload_sheds_.fetch_add(1, std::memory_order_relaxed);
    overload_sheds_counter().add();
    UpdateTicket ticket = UpdateTicket::make();
    ticket.ack(UpdateTicket::kOverloaded);
    return ticket;
  }
  std::unique_lock lock(mu_);
  not_full_.wait(lock, [&] { return fifo_.size() < capacity_ || closed_; });
  if (closed_) {
    // A submit that lost the race against close() gets a ticket already
    // acknowledged as rejected: wait()/poll() on it behave exactly like a
    // feasibility rejection instead of tripping the valid() check.
    lock.unlock();
    rejected_after_close_.fetch_add(1, std::memory_order_relaxed);
    shutdown_rejections().add();
    UpdateTicket ticket = UpdateTicket::make();
    ticket.ack(UpdateTicket::kRejected);
    return ticket;
  }
  UpdateTicket ticket = UpdateTicket::make();
  fifo_.push_back({std::move(update), ticket, obs::now_ns()});
  lock.unlock();
  not_empty_.notify_one();
  return ticket;
}

bool UpdateQueue::try_submit(GraphUpdate update, UpdateTicket* ticket) {
  {
    std::lock_guard lock(mu_);
    if (closed_ || fifo_.size() >= capacity_) return false;
    *ticket = UpdateTicket::make();
    fifo_.push_back({std::move(update), *ticket, obs::now_ns()});
  }
  not_empty_.notify_one();
  return true;
}

bool UpdateQueue::drain(std::vector<PendingUpdate>& out, std::size_t max_items) {
  std::unique_lock lock(mu_);
  not_empty_.wait(lock, [&] { return !fifo_.empty() || closed_; });
  if (fifo_.empty()) return false;  // closed and drained
  const std::size_t take = std::min(max_items == 0 ? fifo_.size() : max_items,
                                    fifo_.size());
  for (std::size_t i = 0; i < take; ++i) {
    out.push_back(std::move(fifo_.front()));
    fifo_.pop_front();
  }
  lock.unlock();
  not_full_.notify_all();
  return true;
}

void UpdateQueue::close() {
  {
    std::lock_guard lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

std::size_t UpdateQueue::size() const {
  std::lock_guard lock(mu_);
  return fifo_.size();
}

}  // namespace pardfs::service
