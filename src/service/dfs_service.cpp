#include "service/dfs_service.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/articulation.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace pardfs::service {
namespace {

// The service's ends of the six-phase writer pipeline (DESIGN.md §11): the
// core records patch/reroot/index_rebuild/rebase under the same metric.
obs::Histogram& queue_wait_hist() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "pardfs_update_phase_us", "phase=\"queue_wait\"", 1e-3);
  return h;
}
obs::Histogram& publish_hist() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "pardfs_update_phase_us", "phase=\"publish\"", 1e-3);
  return h;
}
// Submit-to-ack latency of accepted updates — the ROADMAP's p99/p50 pipeline
// target reads from here.
obs::Histogram& ack_latency_hist() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "pardfs_ack_latency_us", "", 1e-3);
  return h;
}
// Age of the outgoing snapshot at replacement time: how stale readers could
// observe the forest between publishes.
obs::Histogram& staleness_hist() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "pardfs_snapshot_staleness_us", "", 1e-3);
  return h;
}
obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g =
      obs::Registry::global().gauge("pardfs_queue_depth");
  return g;
}
obs::Gauge& coalesce_gauge() {
  static obs::Gauge& g =
      obs::Registry::global().gauge("pardfs_coalesce_size");
  return g;
}

}  // namespace

// Tracks the effect of the accepted prefix of one batch on top of the core
// graph, so feasibility of update i sees updates 0..i-1 (clients race each
// other; the queue order is the serialization the service commits to).
struct DfsService::BatchDelta {
  std::unordered_map<std::uint64_t, bool> edges;  // undirected key -> present
  std::unordered_set<Vertex> dead;
  Vertex next_vertex = 0;  // first id not yet assigned
};

DfsService::DfsService(Graph initial, ServiceConfig config)
    : config_(config),
      dfs_(std::move(initial), config.strategy, nullptr, config.num_threads),
      queue_(config.queue_capacity),
      paused_(config.start_paused) {
  // Eager registration of the service-side series (the publish histogram and
  // both gauges register through their first use below / in writer_loop).
  queue_wait_hist();
  ack_latency_hist();
  staleness_hist();
  queue_depth_gauge();
  coalesce_gauge();
  version_ = 1;
  publish(/*forest_unchanged=*/false);
  writer_ = std::thread([this] { writer_loop(); });
}

DfsService::~DfsService() { stop(); }

std::uint64_t DfsService::apply_sync(GraphUpdate update) {
  // A submit racing stop() yields a pre-rejected ticket, so the blocking
  // wait is unconditionally safe.
  return submit(std::move(update)).wait();
}

void DfsService::pause() {
  {
    std::lock_guard lock(control_mu_);
    paused_ = true;
  }
  control_cv_.notify_all();
}

void DfsService::resume() {
  {
    std::lock_guard lock(control_mu_);
    paused_ = false;
  }
  control_cv_.notify_all();
}

void DfsService::stop() {
  {
    std::lock_guard lock(control_mu_);
    stopped_ = true;
    paused_ = false;
  }
  control_cv_.notify_all();
  queue_.close();
  if (writer_.joinable()) writer_.join();
}

ServiceStats DfsService::stats() const {
  std::lock_guard lock(control_mu_);
  ServiceStats out = stats_;
  out.rejected_infeasible = out.updates_rejected;
  out.rejected_shutdown = queue_.rejected_after_close();
  return out;
}

std::string DfsService::metrics_text() const { return obs::prometheus_text(); }

std::string DfsService::metrics_json() const { return obs::metrics_json(); }

void DfsService::publish(bool forest_unchanged) {
  obs::ScopedPhase phase(publish_hist(), "publish");
  const std::uint64_t now = obs::now_ns();
  if (last_publish_ns_ != 0) {
    staleness_hist().record(now - last_publish_ns_);
  }
  last_publish_ns_ = now;
  const Graph& g = dfs_.graph();
  // Cut structure depends on the back edges too, so a patch-only batch that
  // shares its forest still recomputes it.
  std::shared_ptr<const CutStructure> cuts;
  if (config_.serve_cuts) {
    cuts = std::make_shared<const CutStructure>(find_cuts(g, dfs_.parent()));
  }
  std::shared_ptr<const DfsSnapshot::Forest> forest;
  if (forest_unchanged) {
    // Patch-only batch: only num_edges and the version moved. Share the
    // previous snapshot's forest instead of paying three O(n) copies.
    forest = snapshot_.load(std::memory_order_relaxed)->forest();
  } else {
    auto fresh = std::make_shared<DfsSnapshot::Forest>();
    fresh->parent.assign(dfs_.parent().begin(), dfs_.parent().end());
    fresh->alive.assign(g.alive().begin(), g.alive().end());
    // Share the core's freshly rebuilt index: rebuilds swap in a new
    // TreeIndex object rather than mutating this one, so readers may hold
    // it indefinitely and publication stops cloning megabytes per batch.
    fresh->index = dfs_.tree_ptr();
    fresh->num_vertices = g.num_vertices();
    forest = std::move(fresh);
  }
  snapshot_.store(
      std::make_shared<const DfsSnapshot>(version_, updates_applied_,
                                          std::move(forest), g.num_edges(),
                                          std::move(cuts)),
      std::memory_order_release);
}

bool DfsService::feasible(const GraphUpdate& u, BatchDelta& delta) const {
  const Graph& g = dfs_.graph();
  const auto alive = [&](Vertex v) {
    if (v < 0 || v >= delta.next_vertex) return false;
    if (delta.dead.contains(v)) return false;
    if (v < g.capacity()) return g.is_alive(v);
    return true;  // assigned by an earlier insert of this batch
  };
  const auto has_edge = [&](Vertex a, Vertex b) {
    const auto it = delta.edges.find(undirected_key(a, b));
    if (it != delta.edges.end()) return it->second;
    return g.has_edge(a, b);  // total: range-checked via liveness
  };
  switch (u.kind) {
    case GraphUpdate::Kind::kInsertEdge:
      if (u.u == u.v || !alive(u.u) || !alive(u.v) || has_edge(u.u, u.v)) {
        return false;
      }
      delta.edges[undirected_key(u.u, u.v)] = true;
      return true;
    case GraphUpdate::Kind::kDeleteEdge:
      if (u.u == u.v || !alive(u.u) || !alive(u.v) || !has_edge(u.u, u.v)) {
        return false;
      }
      delta.edges[undirected_key(u.u, u.v)] = false;
      return true;
    case GraphUpdate::Kind::kInsertVertex: {
      for (const Vertex n : u.neighbors) {
        if (!alive(n)) return false;
      }
      for (std::size_t i = 0; i < u.neighbors.size(); ++i) {
        for (std::size_t j = i + 1; j < u.neighbors.size(); ++j) {
          if (u.neighbors[i] == u.neighbors[j]) return false;
        }
      }
      // Record the incident edges the insert creates: later updates of the
      // same batch may legitimately reference them.
      for (const Vertex n : u.neighbors) {
        delta.edges[undirected_key(delta.next_vertex, n)] = true;
      }
      ++delta.next_vertex;
      return true;
    }
    case GraphUpdate::Kind::kDeleteVertex:
      if (!alive(u.u)) return false;
      delta.dead.insert(u.u);
      return true;
  }
  return false;
}

void DfsService::writer_loop() {
  static obs::Counter& infeasible_rejections = obs::Registry::global().counter(
      "pardfs_acks_rejected_total", "reason=\"infeasible\"");
  static obs::Counter& batches_ctr =
      obs::Registry::global().counter("pardfs_batches_total");
  static obs::Counter& applied_ctr =
      obs::Registry::global().counter("pardfs_updates_applied_total");
  static obs::Counter& published_ctr =
      obs::Registry::global().counter("pardfs_snapshots_published_total");
  std::vector<PendingUpdate> pending;
  std::vector<GraphUpdate> batch;
  std::vector<UpdateTicket> accepted;
  std::vector<std::uint64_t> accepted_enqueue_ns;
  for (;;) {
    {
      std::unique_lock lock(control_mu_);
      control_cv_.wait(lock, [&] { return !paused_ || stopped_; });
    }
    pending.clear();
    const std::size_t cap =
        config_.max_batch == 0 ? dfs_.epoch_period() : config_.max_batch;
    {
      // The span covers the blocking wait for work — idle gaps show up as
      // long drain spans in the trace, not as holes.
      const obs::Span drain_span("drain");
      if (!queue_.drain(pending, cap)) break;  // closed and fully drained
    }
    {
      // pause() may have landed while drain() was blocked on an empty queue:
      // drained updates are held, un-applied, until resume (or stop).
      std::unique_lock lock(control_mu_);
      control_cv_.wait(lock, [&] { return !paused_ || stopped_; });
    }
    // Queue-wait phase (submit → drain) per update, plus the two service
    // gauges: how much is still queued and how much this drain coalesced.
    if (obs::metrics_enabled()) {
      const std::uint64_t drained_at = obs::now_ns();
      for (const PendingUpdate& p : pending) {
        if (p.enqueue_ns != 0) queue_wait_hist().record(drained_at - p.enqueue_ns);
      }
    }
    queue_depth_gauge().set(static_cast<std::int64_t>(queue_.size()));
    coalesce_gauge().set(static_cast<std::int64_t>(pending.size()));

    batch.clear();
    accepted.clear();
    accepted_enqueue_ns.clear();
    BatchDelta delta;
    delta.next_vertex = dfs_.graph().capacity();
    std::uint64_t rejected = 0;
    for (PendingUpdate& p : pending) {
      if (feasible(p.update, delta)) {
        batch.push_back(std::move(p.update));
        accepted.push_back(p.ticket);
        accepted_enqueue_ns.push_back(p.enqueue_ns);
      } else {
        p.ticket.ack(UpdateTicket::kRejected);
        ++rejected;
        infeasible_rejections.add();
      }
    }

    BatchStats batch_stats;
    if (!batch.empty()) {
      {
        const obs::Span apply_span("apply_batch");
        batch_stats = dfs_.apply_batch(batch);
      }
      updates_applied_ += batch.size();
      ++version_;
      publish(/*forest_unchanged=*/batch_stats.structural == 0);
      batches_ctr.add();
      applied_ctr.add(batch.size());
      published_ctr.add();
    }
    // Acks go out after the publish, so a wait()er's snapshot() already
    // reflects its update.
    std::size_t next_new_vertex = 0;
    const std::uint64_t acked_at =
        obs::metrics_enabled() && !accepted.empty() ? obs::now_ns() : 0;
    for (std::size_t i = 0; i < accepted.size(); ++i) {
      Vertex assigned = kNullVertex;
      if (batch[i].kind == GraphUpdate::Kind::kInsertVertex) {
        assigned = batch_stats.new_vertices[next_new_vertex++];
      }
      accepted[i].ack(version_, assigned);
      if (acked_at != 0 && accepted_enqueue_ns[i] != 0) {
        ack_latency_hist().record(acked_at - accepted_enqueue_ns[i]);
      }
    }

    {
      std::lock_guard lock(control_mu_);
      stats_.updates_rejected += rejected;
      if (!batch.empty()) {
        ++stats_.batches;
        ++stats_.snapshots_published;
        stats_.updates_applied += batch.size();
        stats_.max_batch = std::max<std::uint64_t>(stats_.max_batch, batch.size());
        stats_.structural += batch_stats.structural;
        stats_.back_edges += batch_stats.back_edges;
        stats_.segments += batch_stats.segments;
        stats_.index_rebuilds += batch_stats.index_rebuilds;
        stats_.base_rebuilds += batch_stats.base_rebuilds;
      }
    }
  }
}

}  // namespace pardfs::service
