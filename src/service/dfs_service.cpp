#include "service/dfs_service.hpp"

#include "util/check.hpp"

namespace pardfs::service {
namespace {

ServiceConfig checked(ServiceConfig config) {
  PARDFS_CHECK_MSG(config.num_shards <= 1,
                   "DfsService is the single-shard facade; construct a "
                   "ShardRouter for num_shards > 1");
  config.num_shards = 1;
  return config;
}

}  // namespace

DfsService::DfsService(Graph initial, ServiceConfig config)
    : router_(std::move(initial), checked(std::move(config))) {}

}  // namespace pardfs::service
