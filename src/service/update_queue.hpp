// MPSC update queue with backpressure and per-update acknowledgement.
//
// Any number of producer threads submit GraphUpdates; the single consumer
// (the DfsService writer thread) drains them in FIFO order, many at a time —
// that drain is what turns concurrent single updates into the batches
// DynamicDfs::apply_batch amortizes. A bounded ring provides backpressure:
// submit() blocks while the queue is full, so producers can never outrun the
// writer by more than `capacity` updates.
//
// Each accepted submit returns an UpdateTicket. The writer acknowledges it
// after the update's batch is applied and its snapshot published; wait()
// then yields the snapshot version that first reflects the update (or
// UpdateTicket::kRejected if the service refused it as infeasible). Tickets
// use C++20 atomic wait/notify — no mutex is shared between producers
// waiting on acks and the writer publishing them.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/reduction.hpp"

namespace pardfs::service {

class UpdateQueue;
class DfsService;
class ShardRouter;

class UpdateTicket {
 public:
  // Ack value for updates the service refused (infeasible against the state
  // they would have applied to). Real versions are small positive numbers.
  static constexpr std::uint64_t kRejected = ~std::uint64_t{0};

  UpdateTicket() = default;
  bool valid() const { return state_ != nullptr; }
  bool done() const {
    return valid() && state_->result.load(std::memory_order_acquire) != 0;
  }
  // Blocks until acknowledged; returns the publishing snapshot version, or
  // kRejected. Total: on a default-constructed (never enqueued) ticket it
  // returns kRejected immediately.
  std::uint64_t wait() const;
  // Non-blocking probe; empty while unacknowledged.
  std::optional<std::uint64_t> poll() const;
  // For kInsertVertex updates: the id the core assigned, available once the
  // ticket is acknowledged; kNullVertex otherwise.
  Vertex assigned_vertex() const {
    return valid() ? state_->vertex.load(std::memory_order_acquire) : kNullVertex;
  }

 private:
  friend class UpdateQueue;
  friend class DfsService;
  friend class ShardRouter;
  struct State {
    std::atomic<std::uint64_t> result{0};  // 0 = pending
    std::atomic<Vertex> vertex{kNullVertex};
  };
  static UpdateTicket make() {
    UpdateTicket t;
    t.state_ = std::make_shared<State>();
    return t;
  }
  void ack(std::uint64_t result, Vertex vertex = kNullVertex) const;

  std::shared_ptr<State> state_;
};

struct PendingUpdate {
  GraphUpdate update;
  UpdateTicket ticket;
  // obs::now_ns() at submit time: the writer turns it into the queue_wait
  // phase and the end-to-end ack latency (DESIGN.md §11). Zero when metrics
  // are compiled out.
  std::uint64_t enqueue_ns = 0;
};

class UpdateQueue {
 public:
  explicit UpdateQueue(std::size_t capacity);

  // Producer side. submit() blocks while the queue is full (backpressure).
  // Once the queue is closed it returns a ticket already acknowledged as
  // kRejected — safe to wait() on, exactly like a feasibility rejection —
  // so producers racing close() never observe a half-made ticket.
  // try_submit() returns false instead of blocking (and on a closed queue).
  UpdateTicket submit(GraphUpdate update);
  bool try_submit(GraphUpdate update, UpdateTicket* ticket);

  // Consumer side: blocks until at least one update is pending (or the
  // queue closes), then moves up to max_items of the FIFO into `out`
  // (appended). Returns false only when closed and fully drained.
  bool drain(std::vector<PendingUpdate>& out, std::size_t max_items);

  // After close() producers get failures, the consumer drains the remnant.
  void close();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  // Submits that lost the race against close() and came back pre-rejected.
  // These never reach the writer, so ServiceStats reads them from here
  // (rejected_shutdown) instead of the drain path.
  std::uint64_t rejected_after_close() const {
    return rejected_after_close_.load(std::memory_order_relaxed);
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<PendingUpdate> fifo_;
  bool closed_ = false;
  std::atomic<std::uint64_t> rejected_after_close_{0};
};

}  // namespace pardfs::service
