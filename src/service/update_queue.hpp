// MPSC update queue with backpressure and per-update acknowledgement.
//
// Any number of producer threads submit GraphUpdates; the single consumer
// (the DfsService writer thread) drains them in FIFO order, many at a time —
// that drain is what turns concurrent single updates into the batches
// DynamicDfs::apply_batch amortizes. A bounded ring provides backpressure:
// submit() blocks while the queue is full, so producers can never outrun the
// writer by more than `capacity` updates.
//
// Each accepted submit returns an UpdateTicket. The writer acknowledges it
// after the update's batch is applied and its snapshot published; wait()
// then yields the snapshot version that first reflects the update (or
// UpdateTicket::kRejected if the service refused it as infeasible). Tickets
// use C++20 atomic wait/notify — no mutex is shared between producers
// waiting on acks and the writer publishing them.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "core/reduction.hpp"

namespace pardfs::service {

class UpdateQueue;
class DfsService;
class ShardRouter;

class UpdateTicket {
 public:
  // Ack value for updates the service refused (infeasible against the state
  // they would have applied to). Real versions are small positive numbers;
  // the status values occupy the top of the uint64 range (DESIGN.md §13):
  //   kRejected   — definitively refused (infeasible / shutdown); retrying
  //                 the same op would be refused again.
  //   kRetryable  — the update was lost to a writer crash before it was
  //                 journaled; it was NOT applied, and resubmitting is safe
  //                 and expected (service/workload.hpp's submit_with_retry).
  //   kTimeout    — returned only by wait_for(): the deadline passed while
  //                 the ticket was still pending. The update is still in
  //                 flight; wait()/wait_for() again or poll() later.
  //   kOverloaded — admission control shed the update at submit time (queue
  //                 depth or snapshot staleness beyond the configured
  //                 bounds); it never entered a queue. Back off and retry.
  static constexpr std::uint64_t kRejected = ~std::uint64_t{0};
  static constexpr std::uint64_t kRetryable = ~std::uint64_t{0} - 1;
  static constexpr std::uint64_t kTimeout = ~std::uint64_t{0} - 2;
  static constexpr std::uint64_t kOverloaded = ~std::uint64_t{0} - 3;

  // True when `result` is one of the status sentinels above rather than a
  // publishing snapshot version.
  static constexpr bool is_status(std::uint64_t result) {
    return result >= kOverloaded;
  }
  // "rejected" / "retryable" / "timeout" / "overloaded" / "version".
  static const char* status_name(std::uint64_t result);

  UpdateTicket() = default;
  bool valid() const { return state_ != nullptr; }
  bool done() const {
    if (!valid()) return false;
    const std::uint64_t r = state_->result.load(std::memory_order_acquire);
    return r != 0 && r != kAcking;
  }
  // Blocks until acknowledged; returns the publishing snapshot version, or
  // a status sentinel. Total: on a default-constructed (never enqueued)
  // ticket it returns kRejected immediately.
  std::uint64_t wait() const;
  // Bounded wait: like wait(), but returns kTimeout once `timeout` elapses
  // with the ticket still pending (monotonic clock; the ticket itself stays
  // pending and may be waited on again). Never acks the ticket.
  std::uint64_t wait_for(std::chrono::nanoseconds timeout) const;
  // Non-blocking probe; empty while unacknowledged.
  std::optional<std::uint64_t> poll() const;
  // For kInsertVertex updates: the id the core assigned, available once the
  // ticket is acknowledged; kNullVertex otherwise.
  Vertex assigned_vertex() const {
    return valid() ? state_->vertex.load(std::memory_order_acquire) : kNullVertex;
  }

 private:
  friend class UpdateQueue;
  friend class DfsService;
  friend class ShardRouter;
  // Transient claim sentinel for try_ack's claim-then-publish protocol: the
  // winning acker CASes `result` from 0 to this, publishes the vertex, then
  // stores the real result. Never visible to clients — done()/wait()/poll()
  // all treat it as still-pending — and never a valid status (is_status is
  // false for it, and no acker may pass it as a result).
  static constexpr std::uint64_t kAcking = ~std::uint64_t{0} - 4;
  struct State {
    std::atomic<std::uint64_t> result{0};  // 0 = pending
    std::atomic<Vertex> vertex{kNullVertex};
  };
  static UpdateTicket make() {
    UpdateTicket t;
    t.state_ = std::make_shared<State>();
    return t;
  }
  void ack(std::uint64_t result, Vertex vertex = kNullVertex) const;
  // Exactly-once ack: succeeds only if the ticket was still pending. The
  // recovery path uses this so a crash-time kRetryable sweep and a journal
  // replay can race benignly — whichever acks first wins, the other is a
  // no-op (returns false).
  bool try_ack(std::uint64_t result, Vertex vertex = kNullVertex) const;
  // Identity: two tickets acknowledge the same waiter. The writer's crash
  // handler uses it to exclude journaled (wal-pending) tickets from the
  // kRetryable sweep.
  bool same_ticket(const UpdateTicket& other) const {
    return state_ == other.state_;
  }

  std::shared_ptr<State> state_;
};

struct PendingUpdate {
  GraphUpdate update;
  UpdateTicket ticket;
  // obs::now_ns() at submit time: the writer turns it into the queue_wait
  // phase and the end-to-end ack latency (DESIGN.md §11). Zero when metrics
  // are compiled out.
  std::uint64_t enqueue_ns = 0;
};

class UpdateQueue {
 public:
  explicit UpdateQueue(std::size_t capacity);

  // Producer side. submit() blocks while the queue is full (backpressure).
  // Once the queue is closed it returns a ticket already acknowledged as
  // kRejected — safe to wait() on, exactly like a feasibility rejection —
  // so producers racing close() never observe a half-made ticket.
  // try_submit() returns false instead of blocking (and on a closed queue).
  UpdateTicket submit(GraphUpdate update);
  bool try_submit(GraphUpdate update, UpdateTicket* ticket);

  // Consumer side: blocks until at least one update is pending (or the
  // queue closes), then moves up to max_items of the FIFO into `out`
  // (appended). Returns false only when closed and fully drained.
  bool drain(std::vector<PendingUpdate>& out, std::size_t max_items);

  // After close() producers get failures, the consumer drains the remnant.
  void close();

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

  // Submits that lost the race against close() and came back pre-rejected.
  // These never reach the writer, so ServiceStats reads them from here
  // (rejected_shutdown) instead of the drain path.
  std::uint64_t rejected_after_close() const {
    return rejected_after_close_.load(std::memory_order_relaxed);
  }

  // Arms this queue's chaos hook (testing/chaos.hpp `queue_full` point):
  // submit() consults the process-wide fault plan as shard `scope` and, when
  // ordered to shed, returns a ticket pre-acked kOverloaded without
  // enqueueing. Inert unless PARDFS_ENABLE_CHAOS is compiled in; routers
  // only call this when ServiceConfig::enable_chaos is set.
  void enable_chaos(std::int32_t scope) { chaos_scope_ = scope; }
  // Submits shed by the chaos hook (the router folds these into
  // ServiceStats::overload_sheds).
  std::uint64_t overload_sheds() const {
    return overload_sheds_.load(std::memory_order_relaxed);
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<PendingUpdate> fifo_;
  bool closed_ = false;
  std::atomic<std::uint64_t> rejected_after_close_{0};
  std::int32_t chaos_scope_ = -1;  // -1 = hook disabled
  std::atomic<std::uint64_t> overload_sheds_{0};
};

}  // namespace pardfs::service
