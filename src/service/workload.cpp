#include "service/workload.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "service/shard_router.hpp"
#include "util/check.hpp"

namespace pardfs::service {

namespace {

// dynamic_map grid shape for a requested scale: the squarest rows × cols
// with rows * cols >= n.
void map_dims(Vertex n, Vertex& rows, Vertex& cols) {
  rows = 1;
  while ((rows + 1) * (rows + 1) <= n) ++rows;
  cols = (n + rows - 1) / rows;
}

}  // namespace

const char* scenario_name(Scenario s) {
  switch (s) {
    case Scenario::kReadHeavy: return "read_heavy";
    case Scenario::kInsertChurn: return "insert_churn";
    case Scenario::kAdversarialStar: return "adversarial_star";
    case Scenario::kSocialMix: return "social_mix";
    case Scenario::kDynamicMap: return "dynamic_map";
  }
  return "unknown";
}

double read_fraction(Scenario s) {
  switch (s) {
    case Scenario::kReadHeavy: return 0.95;
    case Scenario::kInsertChurn: return 0.50;
    case Scenario::kAdversarialStar: return 0.50;
    case Scenario::kSocialMix: return 0.90;
    case Scenario::kDynamicMap: return 0.90;  // replanning queries dominate
  }
  return 0.5;
}

Graph make_initial_graph(const WorkloadSpec& spec) {
  Rng rng(spec.seed * 0x9E3779B97F4A7C15ULL + 1);
  const Vertex n = std::max<Vertex>(spec.n, 8);
  switch (spec.scenario) {
    case Scenario::kReadHeavy:
      return gen::random_connected(n, 2 * static_cast<std::int64_t>(n), rng);
    case Scenario::kInsertChurn:
      // Starts small; the stream grows it (vertex arrivals carry edges).
      return gen::random_connected(std::max<Vertex>(n / 4, 8),
                                   static_cast<std::int64_t>(n) / 4, rng);
    case Scenario::kAdversarialStar: {
      // Star plus a leaf ring: deleting a center spoke forces a Θ(n)-subtree
      // reroot through the ring instead of just detaching a leaf.
      Graph g = gen::star(n);
      for (Vertex i = 1; i + 1 < n; ++i) g.add_edge(i, i + 1);
      if (n > 3) g.add_edge(n - 1, 1);
      return g;
    }
    case Scenario::kSocialMix:
      return gen::barabasi_albert(n, 4, rng);
    case Scenario::kDynamicMap: {
      Vertex rows, cols;
      map_dims(n, rows, cols);
      return gen::grid(rows, cols);
    }
  }
  return gen::path(n);
}

WorkloadDriver::WorkloadDriver(WorkloadSpec spec)
    : spec_(spec),
      mirror_(make_initial_graph(spec)),
      rng_(spec.seed * 0x2545F4914F6CDD1DULL + 7) {
  // make_initial_graph clamps tiny n; keep the stored spec consistent with
  // the mirror so scenario arithmetic (spoke rotation) never divides by the
  // unclamped value.
  spec_.n = std::max<Vertex>(spec_.n, 8);
  if (spec_.scenario == Scenario::kDynamicMap) {
    map_dims(spec_.n, rows_, cols_);
    cells_.resize(static_cast<std::size_t>(rows_) * static_cast<std::size_t>(cols_));
    for (Vertex i = 0; i < rows_ * cols_; ++i) cells_[static_cast<std::size_t>(i)] = i;
  }
}

GraphUpdate WorkloadDriver::next_mixed(double w_insert_edge,
                                       double w_delete_edge,
                                       double w_insert_vertex,
                                       double w_delete_vertex) {
  gen::Update u;
  const bool ok = gen::random_update(mirror_, rng_, w_insert_edge,
                                     w_delete_edge, w_insert_vertex,
                                     w_delete_vertex, u);
  PARDFS_CHECK_MSG(ok, "workload stream became infeasible");
  gen::apply_update(mirror_, u);
  switch (u.kind) {
    case gen::UpdateKind::kInsertEdge:
      return GraphUpdate::insert_edge(u.u, u.v);
    case gen::UpdateKind::kDeleteEdge:
      return GraphUpdate::delete_edge(u.u, u.v);
    case gen::UpdateKind::kInsertVertex:
      return GraphUpdate::insert_vertex(std::move(u.neighbors));
    case gen::UpdateKind::kDeleteVertex:
      return GraphUpdate::delete_vertex(u.u);
  }
  return GraphUpdate::insert_edge(u.u, u.v);
}

GraphUpdate WorkloadDriver::next() {
  ++step_;
  switch (spec_.scenario) {
    case Scenario::kReadHeavy:
      return next_mixed(1.0, 1.0, 0.0, 0.0);
    case Scenario::kInsertChurn:
      return next_mixed(3.0, 1.0, 0.8, 0.1);
    case Scenario::kAdversarialStar: {
      // Rotate over the spokes, toggling them; every few steps a random edge
      // op keeps the ring churning too. Vertices are never deleted (the
      // center must stay the hub).
      if (step_ % 7 == 0) return next_mixed(1.0, 1.0, 0.0, 0.0);
      const Vertex n0 = spec_.n;
      const Vertex leaf = 1 + static_cast<Vertex>((step_ * 5) % (n0 - 1));
      if (!mirror_.is_alive(0) || !mirror_.is_alive(leaf)) {
        return next_mixed(1.0, 1.0, 0.0, 0.0);
      }
      if (mirror_.has_edge(0, leaf)) {
        mirror_.remove_edge(0, leaf);
        return GraphUpdate::delete_edge(0, leaf);
      }
      mirror_.add_edge(0, leaf);
      return GraphUpdate::insert_edge(0, leaf);
    }
    case Scenario::kSocialMix:
      return next_mixed(1.5, 1.0, 0.5, 0.3);
    case Scenario::kDynamicMap:
      return next_dynamic_map();
  }
  return next_mixed(1.0, 1.0, 0.0, 0.0);
}

GraphUpdate WorkloadDriver::next_dynamic_map() {
  // Obstacle churn over the cell grid. Every emitted update is applied to
  // the mirror first, so the stream honors the driver's feasibility contract
  // (a DfsService fed by it must never ack kRejected; pinned by
  // tests/test_workload.cpp). Occasionally a random edge op ("shortcut"
  // churn) keeps the non-tree structure moving too.
  if (step_ % 7 == 0) return next_mixed(1.0, 1.0, 0.0, 0.0);
  const Vertex num_cells = rows_ * cols_;
  const Vertex max_blocked = num_cells / 4;  // keep the map mostly navigable
  for (;;) {
    const auto idx =
        static_cast<std::size_t>(rng_.below(static_cast<std::uint64_t>(num_cells)));
    const Vertex id = cells_[idx];
    if (id != kNullVertex) {
      // Obstacle appears: the cell's vertex (and all incident road segments)
      // goes away. Skip if the map is already at its obstacle budget.
      if (blocked_ >= max_blocked) continue;
      cells_[idx] = kNullVertex;
      ++blocked_;
      mirror_.remove_vertex(id);
      return GraphUpdate::delete_vertex(id);
    }
    // Obstacle clears: re-open the cell under a fresh vertex id, wired to
    // whichever 4-neighbors are currently open.
    const Vertex r = static_cast<Vertex>(idx) / cols_;
    const Vertex c = static_cast<Vertex>(idx) % cols_;
    std::vector<Vertex> nbrs;
    if (r > 0 && cell_vertex(r - 1, c) != kNullVertex) nbrs.push_back(cell_vertex(r - 1, c));
    if (r + 1 < rows_ && cell_vertex(r + 1, c) != kNullVertex) nbrs.push_back(cell_vertex(r + 1, c));
    if (c > 0 && cell_vertex(r, c - 1) != kNullVertex) nbrs.push_back(cell_vertex(r, c - 1));
    if (c + 1 < cols_ && cell_vertex(r, c + 1) != kNullVertex) nbrs.push_back(cell_vertex(r, c + 1));
    cells_[idx] = mirror_.add_vertex(nbrs);
    --blocked_;
    return GraphUpdate::insert_vertex(std::move(nbrs));
  }
}

std::uint64_t run_read_session(const ShardRouter& router, Rng& rng, int queries,
                               std::vector<std::uint64_t>* per_shard_queries) {
  const Vertex cap = router.capacity();
  if (cap <= 0) return 0;
  const RouterView view = router.view();
  std::uint64_t sink = 0;
  for (int q = 0; q < queries; ++q) {
    const Vertex u = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(cap)));
    const Vertex v = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(cap)));
    sink += static_cast<std::uint64_t>(view.root_of(u));
    sink += static_cast<std::uint64_t>(view.depth(u));
    sink += view.same_component(u, v) ? 1 : 0;
    if (per_shard_queries != nullptr) {
      const int s = router.shard_of(u);
      if (s >= 0 && static_cast<std::size_t>(s) < per_shard_queries->size()) {
        ++(*per_shard_queries)[static_cast<std::size_t>(s)];
      }
    }
  }
  return sink;
}

SubmitOutcome submit_with_retry(ShardRouter& router, const GraphUpdate& update,
                                const RetryPolicy& policy) {
  SubmitOutcome out;
  std::chrono::nanoseconds backoff = policy.initial_backoff;
  while (out.attempts < policy.max_attempts) {
    ++out.attempts;
    // Each attempt re-submits a copy: kInsertVertex carries a neighbor list
    // the queue takes by value.
    const UpdateTicket ticket = router.submit(update);
    std::uint64_t r = ticket.wait_for(policy.ack_timeout);
    // A timed-out ticket is still in flight — keep waiting on IT rather than
    // resubmitting (each extra wait burns an attempt).
    while (r == UpdateTicket::kTimeout && out.attempts < policy.max_attempts) {
      ++out.attempts;
      r = ticket.wait_for(policy.ack_timeout);
    }
    out.result = r;
    if (out.definitive()) {
      out.assigned_vertex = ticket.assigned_vertex();
      return out;
    }
    if (r == UpdateTicket::kTimeout) return out;  // budget spent mid-flight
    // kRetryable (lost to a crash, not applied) / kOverloaded (shed at
    // admission): back off and resubmit.
    std::this_thread::sleep_for(backoff);
    backoff = std::min(backoff * 2, policy.max_backoff);
  }
  return out;
}

}  // namespace pardfs::service
