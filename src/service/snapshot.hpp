// Immutable DFS-forest snapshot — the read side of the serving layer.
//
// A snapshot freezes one published version of the maintained forest: the
// parent array, the liveness bitmap and a TreeIndex built over them, plus
// the version number and the count of updates it absorbed. Snapshots are
// shared as `shared_ptr<const DfsSnapshot>` and published RCU-style through
// one `std::atomic<std::shared_ptr>` (see dfs_service.hpp): readers load the
// pointer once and then answer any number of queries against a forest that
// can never change underneath them — consistency is structural, not locked.
//
// Unlike the core classes (which PARDFS_CHECK their preconditions), every
// query here is total: snapshots sit on the service boundary, where clients
// hold ids that may have been deleted — or never existed — by the time the
// query runs. Out-of-range and dead vertices yield false / kNullVertex /
// empty rather than aborting the server.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/articulation.hpp"
#include "graph/edge.hpp"
#include "tree/tree_index.hpp"

namespace pardfs::service {

class DfsSnapshot {
 public:
  // The forest-shaped part of a snapshot. Patch-only batches (back-edge
  // inserts/deletes) change num_edges and the version but not the forest,
  // so consecutive snapshots share one immutable Forest instead of paying
  // O(n) copies per publish (see DfsService::publish). The TreeIndex is
  // shared with the core: DynamicDfs rebuilds produce a NEW index object
  // instead of mutating the published one, so structural-batch publication
  // is a pointer copy, not a megabyte clone.
  struct Forest {
    std::vector<Vertex> parent;
    std::vector<std::uint8_t> alive;
    // Built over exactly this parent/alive pair; immutable while shared.
    std::shared_ptr<const TreeIndex> index;
    Vertex num_vertices = 0;
  };

  // `cuts` is optional (ServiceConfig::serve_cuts): unlike the forest it
  // depends on the *non-tree* edges too — a back-edge insert can demote an
  // articulation point — so it lives on the snapshot, not the shared Forest,
  // and is recomputed even for patch-only publishes.
  DfsSnapshot(std::uint64_t version, std::uint64_t updates_applied,
              std::shared_ptr<const Forest> forest, std::int64_t num_edges,
              std::shared_ptr<const CutStructure> cuts = nullptr);

  // ---- identity ------------------------------------------------------------
  std::uint64_t version() const { return version_; }
  // Updates absorbed since the service started, i.e. the length of the
  // accepted-update prefix this snapshot reflects (lets tests replay a
  // mirror graph and validate the forest of any published version).
  std::uint64_t updates_applied() const { return updates_applied_; }
  Vertex capacity() const {
    return static_cast<Vertex>(forest_->parent.size());
  }
  Vertex num_vertices() const { return forest_->num_vertices; }
  std::int64_t num_edges() const { return num_edges_; }
  std::span<const Vertex> parent() const { return forest_->parent; }
  const TreeIndex& tree() const { return *forest_->index; }
  const std::shared_ptr<const Forest>& forest() const { return forest_; }

  // ---- queries (all total; see header comment) -----------------------------
  bool contains(Vertex v) const {
    return v >= 0 && v < capacity() &&
           forest_->alive[static_cast<std::size_t>(v)] != 0;
  }
  Vertex parent_of(Vertex v) const {
    return contains(v) ? forest_->parent[static_cast<std::size_t>(v)]
                       : kNullVertex;
  }
  Vertex root_of(Vertex v) const {
    return contains(v) ? forest_->index->root_of(v) : kNullVertex;
  }
  std::int32_t depth(Vertex v) const {
    return contains(v) ? forest_->index->depth(v) : -1;
  }
  std::int32_t subtree_size(Vertex v) const {
    return contains(v) ? forest_->index->size(v) : 0;
  }
  bool is_ancestor(Vertex a, Vertex d) const {
    return contains(a) && contains(d) && forest_->index->is_ancestor(a, d);
  }
  Vertex lca(Vertex u, Vertex v) const {
    return contains(u) && contains(v) ? forest_->index->lca(u, v) : kNullVertex;
  }
  bool same_component(Vertex u, Vertex v) const {
    return contains(u) && contains(v) &&
           forest_->index->root_of(u) == forest_->index->root_of(v);
  }
  // The dynamic-map client vocabulary: u can reach v iff they sit in the
  // same tree of the spanning forest.
  bool reachable(Vertex u, Vertex v) const { return same_component(u, v); }
  // Vertices from v up to its tree root, inclusive; empty if v is unknown.
  std::vector<Vertex> path_to_root(Vertex v) const;

  // ---- cut queries (core/articulation served per snapshot) -----------------
  // Present only when the service was configured with serve_cuts; without it
  // every cut query answers the benign default (false / empty), mirroring
  // the totality contract above.
  bool serves_cuts() const { return cuts_ != nullptr; }
  // True iff deleting v would split its component (v must be alive).
  bool is_articulation(Vertex v) const {
    return cuts_ != nullptr && contains(v) &&
           cuts_->is_articulation[static_cast<std::size_t>(v)] != 0;
  }
  // All bridge edges of the snapshot, as (parent, child) tree edges.
  std::span<const Edge> bridges() const {
    return cuts_ != nullptr ? std::span<const Edge>(cuts_->bridges)
                            : std::span<const Edge>();
  }
  // True iff (u, v) is a bridge: a graph edge whose deletion splits the
  // component. O(#bridges) scan — bridge sets are tiny in served graphs.
  bool is_bridge(Vertex u, Vertex v) const;

 private:
  std::uint64_t version_;
  std::uint64_t updates_applied_;
  std::shared_ptr<const Forest> forest_;
  std::int64_t num_edges_;
  std::shared_ptr<const CutStructure> cuts_;
};

using SnapshotPtr = std::shared_ptr<const DfsSnapshot>;

}  // namespace pardfs::service
