#include "service/journal.hpp"

#include <utility>

#include "util/check.hpp"

namespace pardfs::service {
namespace {

const char* kind_letter(GraphUpdate::Kind k) {
  switch (k) {
    case GraphUpdate::Kind::kInsertEdge: return "+e";
    case GraphUpdate::Kind::kDeleteEdge: return "-e";
    case GraphUpdate::Kind::kInsertVertex: return "+v";
    case GraphUpdate::Kind::kDeleteVertex: return "-v";
  }
  return "?";
}

}  // namespace

UpdateJournal::UpdateJournal(Graph genesis, Config config)
    : genesis_(std::move(genesis)), config_(std::move(config)) {
  if (!config_.file_path.empty()) {
    file_ = std::fopen(config_.file_path.c_str(), "w");
    // A journal that cannot open its debug file stays memory-only: the file
    // is a post-mortem aid, never the source of truth for replay.
    if (file_ != nullptr) {
      std::fprintf(file_, "# pardfs journal shard=%s n=%lld\n",
                   config_.obs_shard.empty() ? "0" : config_.obs_shard.c_str(),
                   static_cast<long long>(genesis_.capacity()));
    }
  }
}

UpdateJournal::~UpdateJournal() {
  if (file_ != nullptr) std::fclose(file_);
}

void UpdateJournal::append_line(const std::string& line) {
  if (file_ == nullptr) return;
  std::fputs(line.c_str(), file_);
  std::fputc('\n', file_);
  std::fflush(file_);
}

void UpdateJournal::record_pad(Vertex capacity) {
  std::lock_guard lock(mu_);
  Entry e;
  e.kind = Entry::Kind::kPad;
  e.vertex = capacity;
  log_.push_back(std::move(e));
  append_line("pad " + std::to_string(capacity));
}

void UpdateJournal::record_apply(std::span<const GraphUpdate> batch,
                                 std::uint64_t version_after,
                                 std::uint64_t updates_after) {
  std::lock_guard lock(mu_);
  Entry e;
  e.kind = Entry::Kind::kApply;
  e.batch.assign(batch.begin(), batch.end());
  e.version_after = version_after;
  e.updates_after = updates_after;
  log_.push_back(std::move(e));
  if (file_ != nullptr) {
    std::string line = "apply v" + std::to_string(version_after);
    for (const GraphUpdate& u : batch) {
      line += ' ';
      line += kind_letter(u.kind);
      line += '(' + std::to_string(u.u) + ',' + std::to_string(u.v) + ')';
    }
    append_line(line);
  }
}

void UpdateJournal::record_extract(Vertex vertex, std::uint64_t version_after) {
  std::lock_guard lock(mu_);
  Entry e;
  e.kind = Entry::Kind::kExtract;
  e.vertex = vertex;
  e.version_after = version_after;
  log_.push_back(std::move(e));
  append_line("extract " + std::to_string(vertex) + " v" +
              std::to_string(version_after));
}

void UpdateJournal::record_adopt(const DynamicDfs::ComponentTransfer& t) {
  std::lock_guard lock(mu_);
  Entry e;
  e.kind = Entry::Kind::kAdopt;
  e.transfer = t;
  log_.push_back(std::move(e));
  append_line("adopt " + std::to_string(t.vertices.size()) + " vertices");
}

void UpdateJournal::checkpoint(const Graph& graph,
                               std::span<const Vertex> parent,
                               std::uint64_t version,
                               std::uint64_t updates_applied) {
  std::lock_guard lock(mu_);
  Checkpoint cp;
  cp.capacity = graph.capacity();
  cp.version = version;
  cp.updates_applied = updates_applied;
  for (Vertex v = 0; v < graph.capacity(); ++v) {
    if (!graph.is_alive(v)) continue;
    cp.state.vertices.push_back(v);
    const auto nb = graph.neighbors(v);
    cp.state.rows.emplace_back(nb.begin(), nb.end());
    cp.state.parent.push_back(parent[static_cast<std::size_t>(v)]);
  }
  const std::size_t dropped = log_.size();
  checkpoint_ = std::move(cp);
  // The point is bounding memory: release the entry storage and the
  // now-superseded genesis graph, not just empty them.
  log_.clear();
  log_.shrink_to_fit();
  genesis_ = Graph();
  append_line("checkpoint v" + std::to_string(version) + " n=" +
              std::to_string(static_cast<long long>(graph.capacity())) +
              " dropped=" + std::to_string(dropped));
}

std::size_t UpdateJournal::entries() const {
  std::lock_guard lock(mu_);
  return log_.size();
}

UpdateJournal::ReplayResult UpdateJournal::replay() const {
  std::lock_guard lock(mu_);
  // Identical construction parameters to the live engine (serial_cutoff is
  // pinned to -1, the value shard_router uses) — determinism (§12) then
  // guarantees the replayed forest is byte-identical. After a checkpoint the
  // base is an empty graph padded to the checkpointed capacity plus one
  // verbatim transplant of every live row, restoring the checkpointed forest
  // exactly as a migration would.
  ReplayResult r = [&] {
    if (checkpoint_.has_value()) {
      Graph base;
      base.pad_to(checkpoint_->capacity);
      ReplayResult out{DynamicDfs(std::move(base), config_.strategy, nullptr,
                                  config_.num_threads, -1, config_.obs_shard),
                       checkpoint_->version, checkpoint_->updates_applied, {}};
      if (!checkpoint_->state.vertices.empty()) {
        out.engine.adopt_component(checkpoint_->state);
      }
      return out;
    }
    return ReplayResult{DynamicDfs(genesis_, config_.strategy, nullptr,
                                   config_.num_threads, -1, config_.obs_shard),
                        1, 0, {}};
  }();
  for (const Entry& e : log_) {
    switch (e.kind) {
      case Entry::Kind::kPad:
        r.engine.pad_capacity(e.vertex);
        break;
      case Entry::Kind::kApply: {
        BatchStats stats = r.engine.apply_batch(e.batch);
        r.version = e.version_after;
        r.updates_applied = e.updates_after;
        r.last_new_vertices = std::move(stats.new_vertices);
        break;
      }
      case Entry::Kind::kExtract:
        (void)r.engine.extract_component(e.vertex);
        r.version = e.version_after;
        break;
      case Entry::Kind::kAdopt:
        r.engine.adopt_component(e.transfer);
        break;
    }
  }
  return r;
}

}  // namespace pardfs::service
