// Per-shard write-ahead journal: the recovery half of DESIGN.md §13.
//
// The shard writer records every engine-mutating operation here *before*
// executing it against the live DynamicDfs — batch applies with the version
// they will publish, capacity pads, and both halves of a cross-shard
// component migration. Because the engine is deterministic (§12: same
// operation sequence => byte-identical forest), replay() against a copy of
// the genesis graph reconstructs a DynamicDfs whose parent/alive arrays —
// and therefore whose snapshot chain — are byte-identical to the crashed
// engine's, had it survived. That turns "replay the accepted updates" into a
// provable recovery strategy rather than a best-effort one.
//
// Acceptance == journaled: a batch recorded here is durable within the
// process — if the writer crashes between record and apply, recovery replays
// the journal (which includes the batch) and acks its tickets with the
// recorded version. A batch the crash caught *before* recording was never
// accepted; its tickets ack kRetryable.
//
// The journal is in-memory (it survives writer-thread crashes, the failure
// domain of §13, not process death). An optional file backing appends a
// human-readable line per entry for post-mortem debugging; it is write-only
// and never read back. Entries are recorded under the shard's engine lock,
// so the log order is exactly the engine's operation order; replay() runs on
// the watchdog thread with the same lock held. The log does not grow without
// bound: checkpoint() periodically captures the engine's current state as a
// new replay base and drops the recorded prefix (see ServiceConfig::
// journal_checkpoint_entries).
#pragma once

#include <cstdio>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/dynamic_dfs.hpp"
#include "graph/graph.hpp"

namespace pardfs::service {

class UpdateJournal {
 public:
  // Mirror of the shard's engine construction parameters: replay must build
  // its DynamicDfs with exactly the configuration of the live one, or the
  // determinism argument (and the byte-identical guarantee) breaks.
  struct Config {
    RerootStrategy strategy = RerootStrategy::kPaper;
    int num_threads = 0;
    std::string obs_shard;  // replayed engines feed the same metric series
    std::string file_path;  // optional append-only debug log; "" = memory only
  };

  UpdateJournal(Graph genesis, Config config);
  ~UpdateJournal();
  UpdateJournal(const UpdateJournal&) = delete;
  UpdateJournal& operator=(const UpdateJournal&) = delete;

  // ---- recording (caller holds the shard's engine lock) --------------------
  // pad_capacity(capacity) is about to run.
  void record_pad(Vertex capacity);
  // apply_batch(batch) is about to run; the shard's version will be
  // `version_after` and its applied-update count `updates_after` once the
  // batch publishes. Recorded *before* the apply: this is the WAL point.
  void record_apply(std::span<const GraphUpdate> batch,
                    std::uint64_t version_after, std::uint64_t updates_after);
  // extract_component(vertex) is about to run (this shard is a merge loser);
  // the loser's version bumps to `version_after` when its snapshot
  // republishes — recorded per extract, the last one wins (a loser bumps
  // once per merge op regardless of how many components leave).
  void record_extract(Vertex vertex, std::uint64_t version_after);
  // adopt_component(t) is about to run (this shard is the merge winner).
  void record_adopt(const DynamicDfs::ComponentTransfer& t);

  // Replaces the replay base with the engine's *current* state — graph,
  // forest (parent rows) and version counters — and drops every recorded
  // entry, bounding journal memory and failover replay time by work since
  // the last checkpoint instead of total history. Caller holds the shard's
  // engine lock with no wal-pending batch, so the journal is exactly in
  // sync with the engine. Determinism survives because replay restores the
  // checkpointed forest verbatim through the same adopt_component row
  // transplant the migration protocol relies on (§12): subsequent entries
  // then apply against byte-identical graph rows and parent entries.
  void checkpoint(const Graph& graph, std::span<const Vertex> parent,
                  std::uint64_t version, std::uint64_t updates_applied);

  std::size_t entries() const;

  struct ReplayResult {
    DynamicDfs engine;
    std::uint64_t version = 1;          // from the last versioned entry
    std::uint64_t updates_applied = 0;  // likewise
    // Ids assigned to kInsertVertex updates of the *last* kApply entry, in
    // batch order — recovery acks that batch's wal-pending tickets with them.
    std::vector<Vertex> last_new_vertices;
  };
  // Re-runs every recorded entry, in order, against a copy of the genesis
  // graph. O(total recorded work); called with the shard poisoned and its
  // engine lock held, so recording cannot interleave.
  ReplayResult replay() const;

 private:
  struct Entry {
    enum class Kind : std::uint8_t { kPad, kApply, kExtract, kAdopt };
    Kind kind;
    // kApply
    std::vector<GraphUpdate> batch;
    std::uint64_t version_after = 0;
    std::uint64_t updates_after = 0;
    // kPad (capacity) / kExtract (vertex)
    Vertex vertex = kNullVertex;
    // kAdopt
    DynamicDfs::ComponentTransfer transfer;
  };

  // Replay base after the first checkpoint: an empty graph padded to
  // `capacity` plus one transfer carrying every live vertex's adjacency and
  // parent rows verbatim (ascending ids). Restoring it via adopt_component
  // reproduces the checkpointed forest byte for byte, the same way
  // migrations do; `genesis_` is released once this takes over.
  struct Checkpoint {
    Vertex capacity = 0;
    DynamicDfs::ComponentTransfer state;
    std::uint64_t version = 1;
    std::uint64_t updates_applied = 0;
  };

  void append_line(const std::string& line);

  mutable std::mutex mu_;
  Graph genesis_;
  Config config_;
  std::optional<Checkpoint> checkpoint_;
  std::vector<Entry> log_;
  std::FILE* file_ = nullptr;
};

}  // namespace pardfs::service
