// Component-sharded serving layer: S independent writer stacks behind one
// vertex -> shard directory (DESIGN.md §12).
//
// The paper's forest decomposes into per-component trees that never interact
// except when an update joins two components. The router exploits exactly
// that: vertices are partitioned by connected component across S shards, each
// shard running the full single-writer stack of dfs_service.hpp — its own
// UpdateQueue, its own DynamicDfs over a full-id-space graph in which it owns
// whole components (every other id is a dead hole), and its own RCU snapshot.
// Readers resolve the owning shard from the directory and load that shard's
// snapshot — one extra atomic load versus the unsharded service, no global
// epoch, no cross-shard stalls. Intra-shard updates take the single-writer
// path untouched.
//
// Cross-shard edge inserts (and vertex inserts whose neighbors span shards)
// go through the two-shard merge protocol: the op is queued on the *gateway*
// shard (the smallest endpoint shard at submit time), whose writer acquires
// the involved shards' engine locks in ascending shard-id order, re-verifies
// the directory (an entry pointing at a shard can only change under that
// shard's engine lock, so verification under the locks is stable), migrates
// the smaller component into the winning shard by verbatim row transplant
// (DynamicDfs::extract_component / adopt_component), and publishes in the
// order winner -> directory flip -> loser so readers never observe a miss
// window. Forest determinism: a component's adjacency rows — and therefore
// its DFS tree — evolve identically whether it lives in one shard or
// another, so the assembled forest is byte-identical at any shard count.
//
// Deadlock freedom: engine locks are only ever acquired in ascending
// shard-id order while holding no other engine lock; the global id lock
// (vertex-insert id assignment) is strictly innermost; the control lock
// (pause/stats) is never held across an engine lock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/dynamic_dfs.hpp"
#include "service/snapshot.hpp"
#include "service/update_queue.hpp"

namespace pardfs::service {

class ShardRouter;

struct ServiceConfig {
  std::size_t queue_capacity = 4096;
  // Coalescing cap per drain; 0 = the core's epoch period (Θ(log n), the
  // largest batch the Theorem 9 patch budget absorbs in one segment).
  std::size_t max_batch = 0;
  RerootStrategy strategy = RerootStrategy::kPaper;
  // Worker-team cap for the rerooting engine's parallel rounds (0 = the pram
  // facade default). Purely a wall-clock knob: the served forest is
  // identical at any value.
  int num_threads = 0;
  // Start with the writers paused (updates queue up; nothing applies until
  // resume()). Lets tests and benchmarks pin coalescing deterministically.
  bool start_paused = false;
  // Compute core/articulation's CutStructure at every publish so snapshots
  // answer articulation / bridge queries (the dynamic_map workload's client
  // vocabulary). Costs one O(m + n) low-link pass per published batch —
  // off by default so update-heavy deployments don't pay it.
  bool serve_cuts = false;
  // Component-partitioned shards, one writer stack each (clamped to >= 1).
  // 1 = the exact unsharded behavior, including the legacy unlabeled metric
  // series; > 1 labels the service series with shard="<id>".
  std::size_t num_shards = 1;

  // ---- robustness (DESIGN.md §13) ------------------------------------------
  // Keep a per-shard write-ahead journal (service/journal.hpp). Required for
  // crash recovery: with it off, a crashed shard stays degraded — reads keep
  // serving its last published snapshot, writes to it queue or shed.
  bool enable_journal = true;
  // Non-empty: each shard also appends a human-readable journal line to
  // "<prefix><shard>.log" (post-mortem aid; replay never reads it).
  std::string journal_path_prefix;
  // Checkpoint a shard's journal once it holds this many entries: the
  // engine's current state (graph + forest + version) becomes the new replay
  // base and the entry prefix is dropped, bounding per-shard journal memory
  // and failover replay time by work since the last checkpoint instead of
  // total history. 0 = never checkpoint (journal grows with total history).
  std::size_t journal_checkpoint_entries = 256;
  // Watchdog poll period. The watchdog detects crashed writers (poisoned by
  // an escaped invariant or an injected fault) and fails them over by
  // journal replay on a fresh thread. 0 = no watchdog: degradation only,
  // recovery happens at stop().
  std::uint32_t watchdog_poll_ms = 20;
  // A writer mid-batch whose heartbeat is older than this is declared
  // stalled: the watchdog fences it (pardfs_writer_stalls_total) and the
  // writer converts to a crash at its next cancellation point. The writer
  // re-stamps its heartbeat between ops within a drained batch, so the
  // bound covers a single run/special, not the whole batch — a healthy
  // writer chewing through a large batch is not fenced. 0 = off.
  std::uint32_t stall_timeout_ms = 10000;
  // Admission control: submits shed with kOverloaded when the target shard's
  // queue holds >= max_queue_depth updates (0 = off), or when its snapshot
  // is older than max_staleness_ms with work still queued (0 = off).
  std::size_t max_queue_depth = 0;
  std::uint32_t max_staleness_ms = 0;
  // Consult the process-wide chaos plan (testing/chaos.hpp) at this router's
  // hook sites. No-op unless the build defines PARDFS_ENABLE_CHAOS; kept off
  // for reference stacks so differential runs fault only the subject.
  bool enable_chaos = false;
};

struct ServiceStats {
  std::uint64_t batches = 0;             // apply_batch calls
  std::uint64_t updates_applied = 0;     // accepted updates
  std::uint64_t updates_rejected = 0;    // infeasible at drain time
  std::uint64_t snapshots_published = 0; // excludes the constructor's
  std::uint64_t max_batch = 0;           // largest coalesced batch so far
  std::uint64_t structural = 0;          // accepted structural updates
  std::uint64_t back_edges = 0;          // accepted patch-only updates
  std::uint64_t segments = 0;            // combined engine passes
  std::uint64_t index_rebuilds = 0;      // O(n) rebuilds across all batches
  std::uint64_t base_rebuilds = 0;       // epoch rebases across all batches
  // kRejected acks by reason. `rejected_infeasible` == updates_rejected (the
  // historical drain-time meaning); `rejected_shutdown` counts submits that
  // lost the race against stop() and were pre-rejected by the queue — those
  // never reach a writer, so they are NOT part of updates_rejected.
  std::uint64_t rejected_infeasible = 0;
  std::uint64_t rejected_shutdown = 0;
  // Sharding: components migrated between shards, and cross-shard inserts
  // that went through the merge protocol. Always zero at num_shards == 1.
  std::uint64_t shard_migrations = 0;
  std::uint64_t cross_shard_inserts = 0;
  // Robustness (DESIGN.md §13): completed journal-replay failovers, tickets
  // acked kRetryable (lost to a crash before journaling), and submits shed
  // kOverloaded by admission control.
  std::uint64_t recoveries = 0;
  std::uint64_t retryable_acks = 0;
  std::uint64_t overload_sheds = 0;
};

// Reader-side handle: resolves the owning shard per query and answers from
// that shard's current snapshot. All queries are total, like DfsSnapshot's.
// Two-vertex queries across shards answer the component-disjoint defaults
// (different shards own different components by construction): reachable /
// same_component / is_ancestor / is_bridge -> false, lca -> kNullVertex.
// Each query reads the owner's snapshot at its own resolve time, so a
// multi-query read is not one consistent global cut — per-shard reads are.
// The router must outlive every view.
class RouterView {
 public:
  bool contains(Vertex v) const;
  Vertex parent_of(Vertex v) const;
  Vertex root_of(Vertex v) const;
  std::int32_t depth(Vertex v) const;
  std::int32_t subtree_size(Vertex v) const;
  bool is_ancestor(Vertex a, Vertex d) const;
  Vertex lca(Vertex u, Vertex v) const;
  bool same_component(Vertex u, Vertex v) const;
  bool reachable(Vertex u, Vertex v) const { return same_component(u, v); }
  std::vector<Vertex> path_to_root(Vertex v) const;
  bool is_articulation(Vertex v) const;
  bool is_bridge(Vertex u, Vertex v) const;
  // Bridges of every shard's current snapshot, concatenated in shard order.
  std::vector<Edge> bridges() const;

  // The owning shard's current snapshot (nullptr for ids the directory has
  // never seen). One directory load + one snapshot load.
  SnapshotPtr snapshot_of(Vertex v) const;

 private:
  friend class ShardRouter;
  explicit RouterView(const ShardRouter* router) : router_(router) {}
  const ShardRouter* router_;
};

class ShardRouter {
 public:
  // Partitions `initial`'s components across config.num_shards stacks
  // (round-robin over components in ascending root id), publishes every
  // shard's initial snapshot, then starts the writers.
  explicit ShardRouter(Graph initial, ServiceConfig config = {});
  ~ShardRouter();
  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  // ---- reader side ---------------------------------------------------------
  RouterView view() const { return RouterView(this); }
  // The shard currently owning v: -1 if the id was never assigned. Entries
  // persist after a vertex dies (pointing at the shard where it died), so
  // totality of snapshot queries is preserved.
  int shard_of(Vertex v) const;
  SnapshotPtr shard_snapshot(std::size_t shard) const;

  // ---- producer side -------------------------------------------------------
  // Routed to the owning shard's queue (cross-shard ops to the gateway =
  // smallest involved shard; the gateway writer runs the merge protocol).
  // Blocks while that queue is full. Acks carry the publishing version of
  // the shard that applied the update — versions are per shard.
  UpdateTicket submit(GraphUpdate update);
  bool try_submit(GraphUpdate update, UpdateTicket* ticket);
  std::uint64_t apply_sync(GraphUpdate update);

  // ---- lifecycle (all shards) ----------------------------------------------
  void pause();
  void resume();
  void stop();

  // ---- stats / introspection -----------------------------------------------
  std::size_t num_shards() const { return shards_.size(); }
  ServiceStats stats() const;                    // summed across shards
  ServiceStats shard_stats(std::size_t shard) const;
  std::size_t queue_depth() const;               // summed across shards
  std::size_t queue_depth(std::size_t shard) const;
  // The global id space (next id a vertex insert would get).
  Vertex capacity() const;
  Vertex num_vertices() const;     // summed over current shard snapshots
  std::int64_t num_edges() const;  // summed over current shard snapshots

  // Whole-forest reads assembled from the current shard snapshots, indexed
  // by global id (kNullVertex / 0 for unassigned ids). Only meaningful when
  // the router is quiescent (no in-flight updates); tests use them to
  // compare against a single-shard run byte for byte.
  std::vector<Vertex> assemble_parent() const;
  std::vector<std::uint8_t> assemble_alive() const;

  std::string metrics_text() const;
  std::string metrics_json() const;

  // A shard's engine — owned by its writer while the router runs; only safe
  // to inspect after stop().
  const DynamicDfs& core(std::size_t shard) const;

  // ---- failure injection / supervision (DESIGN.md §13) ---------------------
  // Poisons `shard`'s writer: it throws at its next cancellation point (right
  // after draining work), exercising the full crash -> journal-replay ->
  // respawn path. Works in every build (unlike the chaos hooks, which need
  // PARDFS_ENABLE_CHAOS); tests and ops drills use it. Takes effect when the
  // writer next drains work; poll stats().recoveries for completion.
  void inject_writer_failure(std::size_t shard);

 private:
  struct Shard;
  // Lock-free chunked vertex -> shard directory. Readers load two acquire
  // atomics; mutations happen only under the owning shard's engine lock (or
  // the id lock for brand-new ids), which is what makes the merge protocol's
  // verify-after-lock stable.
  class Directory;

  void writer_loop(Shard& sh);
  // Crash epilogue, run in the writer's catch block: acks drained-but-not-
  // journaled tickets kRetryable and marks the shard crashed for the
  // watchdog. `pending` is the writer's drained-but-unprocessed work.
  void writer_crashed(Shard& sh, std::vector<PendingUpdate>& pending,
                      const char* what);
  // Watchdog: polls for crashed/stalled writers, recovers them.
  void watchdog_loop();
  // Joins the dead writer, replays the journal under sh.mu, republishes,
  // acks wal-pending tickets, optionally respawns a fresh writer.
  void recover_shard(Shard& sh, bool respawn);
  // The replay core; caller holds sh.mu and has joined (or never started)
  // the shard's writer. Throws if the shard has no journal (or replay fails).
  void recover_shard_locked(Shard& sh);
  // Recovery gave up on this shard: mark it unrecoverable (degraded to
  // reads-only) and flush its wal-pending tickets kRetryable so no client
  // waits forever on a shard that will never ack.
  void abandon_shard(Shard& sh);
  // Journal truncation (DESIGN.md §13): once sh's entry log passes
  // config_.journal_checkpoint_entries, capture the engine's current state
  // as the new replay base and drop the prefix. Caller holds sh.mu with no
  // wal-pending batch, so the journal is exactly in sync with the engine.
  void maybe_checkpoint_locked(Shard& sh);
  // Admission control + chaos queue_full: true => *out is a pre-acked
  // kOverloaded ticket and the update must not enqueue.
  bool shed_overloaded(Shard& sh, UpdateTicket* out);
  // Chaos hook helpers (inline no-ops without PARDFS_ENABLE_CHAOS). `site`
  // throws InjectedCrash on a crash/throw action; `stall` sleeps in fenced-
  // checkable slices. Both keyed by target.id; no-ops when enable_chaos is
  // false for this router.
  void chaos_site(int point, Shard& target);
  void chaos_stall(Shard& target, Shard& gateway);
  // The shard whose queue carries this op (see submit()).
  std::size_t route(const GraphUpdate& u) const;
  // True when every endpoint the op references resolves to `sh` (or to no
  // shard at all — those reject through feasibility exactly like the
  // unsharded service). Stable while sh's engine lock is held.
  bool is_local(const Shard& sh, const GraphUpdate& u) const;
  // Applies a run of ops local to `target` as one batch: the ported
  // single-writer path (feasibility filter, apply_batch, publish, acks).
  // Caller holds target.mu; acks are attributed to `gateway`'s series.
  void apply_run_locked(Shard& target, Shard& gateway,
                        std::vector<PendingUpdate*>& run);
  // Cross-shard / migrated-component ops: resolve -> lock ascending ->
  // verify -> merge or apply remotely (see the header comment).
  void process_special(Shard& sh, PendingUpdate& p);
  // Publishes sh's current engine state. Caller holds sh.mu.
  void publish(Shard& sh, bool forest_unchanged);

  struct BatchDelta;
  bool feasible(const Shard& sh, const GraphUpdate& u, BatchDelta& delta) const;

  ServiceConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::unique_ptr<Directory> directory_;

  // Global id space: vertex inserts on any shard assign from here so ids
  // stay unique (and identical to a single-shard run). Innermost lock.
  mutable std::mutex id_mu_;
  Vertex global_next_ = 0;
  // Round-robin spreading of isolated vertex inserts (routing only: the
  // forest is placement-independent).
  mutable std::atomic<std::uint64_t> isolated_rr_{0};

  mutable std::mutex control_mu_;  // pause flag + stats; never held across engine locks
  std::condition_variable control_cv_;
  bool paused_ = false;
  bool stopped_ = false;

  // Supervision (DESIGN.md §13). The watchdog has its own wait channel so
  // stop() can wake it promptly without touching control_mu_ ordering.
  std::thread watchdog_;
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
};

}  // namespace pardfs::service
