#include "service/shard_router.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "core/articulation.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "service/journal.hpp"
#include "testing/chaos.hpp"
#include "util/check.hpp"

namespace pardfs::service {
namespace {

// Control-plane clock: heartbeats, staleness bounds and recovery timing must
// keep working when metrics are compiled out (obs::now_ns() is 0 then), so
// the supervision layer reads steady_clock directly.
std::uint64_t mono_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// The legacy unlabeled service series (the shapes PR 6's dashboards and the
// benches read). A 1-shard router records into exactly these, so nothing
// downstream notices the refactor; multi-shard routers use shard="<id>"
// labeled twins of every family instead.
obs::Histogram& queue_wait_hist() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "pardfs_update_phase_us", "phase=\"queue_wait\"", 1e-3);
  return h;
}
obs::Histogram& publish_hist() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "pardfs_update_phase_us", "phase=\"publish\"", 1e-3);
  return h;
}
// Submit-to-ack latency of accepted updates — the ROADMAP's p99/p50 pipeline
// target reads from here.
obs::Histogram& ack_latency_hist() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "pardfs_ack_latency_us", "", 1e-3);
  return h;
}
// Age of the outgoing snapshot at replacement time: how stale readers could
// observe the forest between publishes.
obs::Histogram& staleness_hist() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "pardfs_snapshot_staleness_us", "", 1e-3);
  return h;
}
obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g = obs::Registry::global().gauge("pardfs_queue_depth");
  return g;
}
obs::Gauge& coalesce_gauge() {
  static obs::Gauge& g = obs::Registry::global().gauge("pardfs_coalesce_size");
  return g;
}

// Sharding counters (process-global; a migration moves one component).
obs::Counter& migrations_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("pardfs_shard_migrations_total");
  return c;
}
obs::Counter& cross_shard_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("pardfs_cross_shard_inserts_total");
  return c;
}
obs::Counter& infeasible_counter() {
  static obs::Counter& c = obs::Registry::global().counter(
      "pardfs_acks_rejected_total", "reason=\"infeasible\"");
  return c;
}
obs::Counter& batches_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("pardfs_batches_total");
  return c;
}
obs::Counter& applied_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("pardfs_updates_applied_total");
  return c;
}
obs::Counter& published_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("pardfs_snapshots_published_total");
  return c;
}

// Robustness families (DESIGN.md §13). Process-global: a recovery is a
// process-level event regardless of which shard crashed.
obs::Counter& recoveries_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("pardfs_recoveries_total");
  return c;
}
obs::Histogram& recovery_latency_hist() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "pardfs_recovery_latency_us", "", 1e-3);
  return h;
}
obs::Counter& stalls_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("pardfs_writer_stalls_total");
  return c;
}
obs::Counter& retryable_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("pardfs_acks_retryable_total");
  return c;
}
obs::Counter& overload_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("pardfs_overload_shed_total");
  return c;
}
obs::Counter& checkpoints_counter() {
  static obs::Counter& c =
      obs::Registry::global().counter("pardfs_journal_checkpoints_total");
  return c;
}

}  // namespace

// Lock-free chunked directory: a fixed top-level array of atomic chunk
// pointers covering the full 31-bit id space, chunks allocated on demand.
// -1 = the id was never assigned. Entries outlive their vertex (they keep
// pointing at the shard where it died), so every id resolves to a snapshot
// that answers the totality-preserving default.
class ShardRouter::Directory {
 public:
  Directory() {
    for (auto& c : chunks_) c.store(nullptr, std::memory_order_relaxed);
  }
  ~Directory() {
    for (auto& c : chunks_) delete c.load(std::memory_order_relaxed);
  }
  Directory(const Directory&) = delete;
  Directory& operator=(const Directory&) = delete;

  std::int32_t get(Vertex v) const {
    if (v < 0) return -1;
    const std::size_t idx = static_cast<std::size_t>(v) >> kChunkBits;
    if (idx >= kMaxChunks) return -1;
    const Chunk* c = chunks_[idx].load(std::memory_order_acquire);
    if (c == nullptr) return -1;
    return c->entry[static_cast<std::size_t>(v) & kChunkMask].load(
        std::memory_order_acquire);
  }

  void set(Vertex v, std::int32_t shard) {
    const std::size_t idx = static_cast<std::size_t>(v) >> kChunkBits;
    PARDFS_CHECK_MSG(v >= 0 && idx < kMaxChunks,
                     "vertex id outside the directory's range");
    Chunk* c = chunks_[idx].load(std::memory_order_acquire);
    if (c == nullptr) {
      std::lock_guard lock(grow_mu_);
      c = chunks_[idx].load(std::memory_order_acquire);
      if (c == nullptr) {
        auto fresh = std::make_unique<Chunk>();
        for (auto& e : fresh->entry) e.store(-1, std::memory_order_relaxed);
        c = fresh.release();
        chunks_[idx].store(c, std::memory_order_release);
      }
    }
    c->entry[static_cast<std::size_t>(v) & kChunkMask].store(
        shard, std::memory_order_release);
  }

 private:
  static constexpr std::size_t kChunkBits = 16;
  static constexpr std::size_t kChunkMask = (std::size_t{1} << kChunkBits) - 1;
  static constexpr std::size_t kMaxChunks = std::size_t{1} << 15;  // 2^31 ids
  struct Chunk {
    std::array<std::atomic<std::int32_t>, std::size_t{1} << kChunkBits> entry;
  };
  std::array<std::atomic<Chunk*>, kMaxChunks> chunks_;
  std::mutex grow_mu_;
};

// One full single-writer serving stack (dfs_service.hpp's former internals).
// `mu` is the engine lock: the shard's writer holds it while applying and
// publishing; a merge executed by another shard's writer holds both involved
// engine locks (ascending id order). Snapshot loads never take it.
struct ShardRouter::Shard {
  Shard(std::size_t id_, Graph g, const ServiceConfig& cfg,
        std::string obs_label)
      : id(id_),
        dfs(std::move(g), cfg.strategy, nullptr, cfg.num_threads, -1,
            std::move(obs_label)),
        queue(cfg.queue_capacity) {}

  const std::size_t id;
  mutable std::mutex mu;
  DynamicDfs dfs;                     // guarded by mu
  UpdateQueue queue;
  std::atomic<SnapshotPtr> snapshot;
  std::uint64_t version = 0;          // guarded by mu
  std::uint64_t updates_applied = 0;  // guarded by mu
  std::uint64_t last_publish_ns = 0;  // guarded by mu
  ServiceStats stats;                 // guarded by the router's control_mu_

  // ---- failure domain (DESIGN.md §13) --------------------------------------
  // Write-ahead journal; recording happens under mu, replay with mu held and
  // the writer dead. Null when ServiceConfig::enable_journal is off.
  std::unique_ptr<UpdateJournal> journal;
  // The accepted-and-journaled batch currently being applied: its tickets
  // are durable — if the writer crashes before acking them, recovery acks
  // them with the recorded version (+ the replayed insert ids) instead of
  // kRetryable. Guarded by mu; cleared once the live path acks.
  struct WalPending {
    std::vector<UpdateTicket> tickets;
    std::vector<GraphUpdate::Kind> kinds;  // parallel to tickets
    std::uint64_t version = 0;
  };
  std::optional<WalPending> wal_pending;  // guarded by mu
  // Writer liveness, all lock-free so the watchdog never touches mu to
  // observe: heartbeat stamped at each drain, busy while a drained batch is
  // processing, crashed set by the writer's catch block, fenced set by the
  // watchdog on a stale busy heartbeat (the writer converts it to a crash at
  // its next cancellation point), poison set by inject_writer_failure().
  std::atomic<std::uint64_t> heartbeat_ns{0};
  std::atomic<bool> busy{false};
  std::atomic<bool> crashed{false};
  std::atomic<bool> fenced{false};
  std::atomic<bool> poison{false};
  // Journal replay threw (journal disabled or itself damaged): the watchdog
  // stops retrying; the shard degrades to read-only until stop().
  std::atomic<bool> unrecoverable{false};
  // publish() time on the control-plane clock, for the staleness admission
  // bound (last_publish_ns above uses the obs clock, which can be 0).
  std::atomic<std::uint64_t> last_publish_mono_ns{0};
  std::atomic<std::uint64_t> retryable_acks{0};
  std::atomic<std::uint64_t> overload_sheds{0};
  // This shard's service series (S == 1: the legacy unlabeled ones).
  obs::Histogram* queue_wait = nullptr;
  obs::Histogram* publish_hist = nullptr;
  obs::Histogram* ack_latency = nullptr;
  obs::Histogram* staleness = nullptr;
  obs::Gauge* depth_gauge = nullptr;
  obs::Gauge* coalesce_gauge = nullptr;
  std::thread writer;  // started by the router after every shard is published
};

// Tracks the effect of the accepted prefix of one batch on top of the shard
// graph, so feasibility of update i sees updates 0..i-1 (clients race each
// other; the queue order is the serialization the service commits to).
struct ShardRouter::BatchDelta {
  std::unordered_map<std::uint64_t, bool> edges;  // undirected key -> present
  std::unordered_set<Vertex> dead;
  Vertex next_vertex = 0;  // first id not yet assigned
};

ShardRouter::ShardRouter(Graph initial, ServiceConfig config)
    : config_(config) {
  if (config_.num_shards == 0) config_.num_shards = 1;
  const std::size_t S = config_.num_shards;
  paused_ = config_.start_paused;
  directory_ = std::make_unique<Directory>();
  global_next_ = initial.capacity();
  const Vertex n = initial.capacity();

  // Component partition: BFS over the initial graph, components assigned
  // round-robin in ascending root-id order (balanced in component count and
  // deterministic, so repeated constructions shard identically).
  std::vector<std::int32_t> owner(static_cast<std::size_t>(n), -1);
  {
    std::vector<Vertex> stack;
    std::size_t next_shard = 0;
    for (Vertex r = 0; r < n; ++r) {
      if (!initial.is_alive(r) || owner[static_cast<std::size_t>(r)] != -1) {
        continue;
      }
      const auto s = static_cast<std::int32_t>(next_shard);
      next_shard = (next_shard + 1) % S;
      owner[static_cast<std::size_t>(r)] = s;
      stack.push_back(r);
      while (!stack.empty()) {
        const Vertex v = stack.back();
        stack.pop_back();
        for (const Vertex w : initial.neighbors(v)) {
          if (owner[static_cast<std::size_t>(w)] == -1) {
            owner[static_cast<std::size_t>(w)] = s;
            stack.push_back(w);
          }
        }
      }
    }
  }

  // Per-shard engines over full-id-space graphs: a shard owns whole
  // components, every other id is a dead hole. Verbatim adjacency rows keep
  // each component's forest byte-identical to a single-shard run.
  for (std::size_t s = 0; s < S; ++s) {
    Graph g;
    if (S == 1) {
      g = std::move(initial);
    } else {
      g.pad_to(n);
      std::vector<Vertex> verts;
      std::vector<std::vector<Vertex>> rows;
      for (Vertex v = 0; v < n; ++v) {
        if (owner[static_cast<std::size_t>(v)] ==
            static_cast<std::int32_t>(s)) {
          verts.push_back(v);
          const auto nb = initial.neighbors(v);
          rows.emplace_back(nb.begin(), nb.end());
        }
      }
      g.adopt_component(verts, std::move(rows));
    }
    // The journal captures the genesis graph (a copy, taken before the
    // engine consumes it) plus the engine's construction parameters, so
    // replay() rebuilds with exactly the live configuration.
    std::unique_ptr<UpdateJournal> journal;
    if (config_.enable_journal) {
      UpdateJournal::Config jcfg;
      jcfg.strategy = config_.strategy;
      jcfg.num_threads = config_.num_threads;
      jcfg.obs_shard = S > 1 ? std::to_string(s) : std::string();
      if (!config_.journal_path_prefix.empty()) {
        jcfg.file_path = config_.journal_path_prefix + std::to_string(s) + ".log";
      }
      journal = std::make_unique<UpdateJournal>(g, std::move(jcfg));
    }
    shards_.push_back(std::make_unique<Shard>(
        s, std::move(g), config_, S > 1 ? std::to_string(s) : std::string()));
    shards_.back()->journal = std::move(journal);
    if (config_.enable_chaos) {
      shards_.back()->queue.enable_chaos(static_cast<std::int32_t>(s));
    }
  }

  // Eager registration: every shard's full series set (plus the process-wide
  // sharding counters) shows up at zero on a fresh metrics page.
  obs::Registry& reg = obs::Registry::global();
  for (auto& sh : shards_) {
    if (S == 1) {
      sh->queue_wait = &queue_wait_hist();
      sh->publish_hist = &publish_hist();
      sh->ack_latency = &ack_latency_hist();
      sh->staleness = &staleness_hist();
      sh->depth_gauge = &queue_depth_gauge();
      sh->coalesce_gauge = &coalesce_gauge();
    } else {
      const std::string label = "shard=\"" + std::to_string(sh->id) + "\"";
      sh->queue_wait = &reg.histogram("pardfs_update_phase_us",
                                      "phase=\"queue_wait\"," + label, 1e-3);
      sh->publish_hist = &reg.histogram("pardfs_update_phase_us",
                                        "phase=\"publish\"," + label, 1e-3);
      sh->ack_latency = &reg.histogram("pardfs_ack_latency_us", label, 1e-3);
      sh->staleness =
          &reg.histogram("pardfs_snapshot_staleness_us", label, 1e-3);
      sh->depth_gauge = &reg.gauge("pardfs_queue_depth", label);
      sh->coalesce_gauge = &reg.gauge("pardfs_coalesce_size", label);
    }
  }
  migrations_counter();
  cross_shard_counter();
  infeasible_counter();
  batches_counter();
  applied_counter();
  published_counter();
  recoveries_counter();
  recovery_latency_hist();
  stalls_counter();
  retryable_counter();
  overload_counter();
  checkpoints_counter();

  for (Vertex v = 0; v < n; ++v) {
    if (S == 1) {
      // `initial` was moved into shard 0; its liveness now lives there.
      if (shards_[0]->dfs.graph().is_alive(v)) directory_->set(v, 0);
    } else if (owner[static_cast<std::size_t>(v)] >= 0) {
      directory_->set(v, owner[static_cast<std::size_t>(v)]);
    }
  }
  for (auto& sh : shards_) {
    std::lock_guard lock(sh->mu);
    sh->version = 1;
    publish(*sh, /*forest_unchanged=*/false);
  }
  for (auto& sh : shards_) {
    sh->writer = std::thread([this, shard = sh.get()] { writer_loop(*shard); });
  }
  if (config_.watchdog_poll_ms > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

ShardRouter::~ShardRouter() { stop(); }

int ShardRouter::shard_of(Vertex v) const { return directory_->get(v); }

SnapshotPtr ShardRouter::shard_snapshot(std::size_t shard) const {
  return shards_[shard]->snapshot.load(std::memory_order_acquire);
}

UpdateTicket ShardRouter::submit(GraphUpdate update) {
  Shard& sh = *shards_[route(update)];
  UpdateTicket shed;
  if (shed_overloaded(sh, &shed)) return shed;
  return sh.queue.submit(std::move(update));
}

bool ShardRouter::try_submit(GraphUpdate update, UpdateTicket* ticket) {
  Shard& sh = *shards_[route(update)];
  UpdateTicket shed;
  if (shed_overloaded(sh, &shed)) {
    // The non-blocking contract stays "true = you hold a ticket": the caller
    // inspects it and finds kOverloaded instead of a version.
    *ticket = shed;
    return true;
  }
  return sh.queue.try_submit(std::move(update), ticket);
}

// Admission control: shed with a pre-acked kOverloaded ticket when the
// target shard's queue is past the depth bound, or its snapshot is older
// than the staleness bound with work still queued (an idle shard's old
// snapshot is freshness, not overload). Both bounds default to off.
bool ShardRouter::shed_overloaded(Shard& sh, UpdateTicket* out) {
  bool overloaded = false;
  if (config_.max_queue_depth != 0 &&
      sh.queue.size() >= config_.max_queue_depth) {
    overloaded = true;
  } else if (config_.max_staleness_ms != 0 && sh.queue.size() > 0) {
    const std::uint64_t last = sh.last_publish_mono_ns.load(
        std::memory_order_relaxed);
    if (last != 0 && mono_ns() - last > std::uint64_t{config_.max_staleness_ms} *
                                            1000000ULL) {
      overloaded = true;
    }
  }
  if (!overloaded) return false;
  sh.overload_sheds.fetch_add(1, std::memory_order_relaxed);
  overload_counter().add();
  *out = UpdateTicket::make();
  out->ack(UpdateTicket::kOverloaded);
  return true;
}

std::uint64_t ShardRouter::apply_sync(GraphUpdate update) {
  // A submit racing stop() yields a pre-rejected ticket, so the blocking
  // wait is unconditionally safe.
  return submit(std::move(update)).wait();
}

std::size_t ShardRouter::route(const GraphUpdate& u) const {
  const std::size_t S = shards_.size();
  if (S == 1) return 0;
  // Gateway routing: the smallest shard any referenced vertex resolves to.
  // Ops with no resolvable endpoint go to shard 0 (edge/delete: rejected by
  // its feasibility filter) or round-robin (isolated vertex inserts, which
  // are feasible anywhere). Components may migrate between routing and
  // drain; the writer re-resolves then.
  const auto min_dir = [&](std::span<const Vertex> vs) {
    std::int32_t best = -1;
    for (const Vertex v : vs) {
      const std::int32_t s = directory_->get(v);
      if (s >= 0 && (best < 0 || s < best)) best = s;
    }
    return best;
  };
  switch (u.kind) {
    case GraphUpdate::Kind::kInsertEdge:
    case GraphUpdate::Kind::kDeleteEdge: {
      const std::array<Vertex, 2> ends{u.u, u.v};
      const std::int32_t s = min_dir(ends);
      return s >= 0 ? static_cast<std::size_t>(s) : 0;
    }
    case GraphUpdate::Kind::kInsertVertex: {
      const std::int32_t s = min_dir(u.neighbors);
      if (s >= 0) return static_cast<std::size_t>(s);
      if (!u.neighbors.empty()) return 0;  // unknown neighbors: rejected there
      return isolated_rr_.fetch_add(1, std::memory_order_relaxed) % S;
    }
    case GraphUpdate::Kind::kDeleteVertex: {
      const std::int32_t s = directory_->get(u.u);
      return s >= 0 ? static_cast<std::size_t>(s) : 0;
    }
  }
  return 0;
}

void ShardRouter::pause() {
  {
    std::lock_guard lock(control_mu_);
    paused_ = true;
  }
  control_cv_.notify_all();
}

void ShardRouter::resume() {
  {
    std::lock_guard lock(control_mu_);
    paused_ = false;
  }
  control_cv_.notify_all();
}

void ShardRouter::stop() {
  {
    std::lock_guard lock(control_mu_);
    stopped_ = true;
    paused_ = false;
  }
  control_cv_.notify_all();
  // The watchdog goes first: once it is joined, nobody can respawn a writer
  // behind the join loop below (respawn checks stopped_ under control_mu_).
  {
    std::lock_guard lock(watchdog_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  for (auto& sh : shards_) sh->queue.close();
  for (auto& sh : shards_) {
    if (sh->writer.joinable()) sh->writer.join();
  }
  // Shutdown totality sweep: a shard that crashed after the watchdog left
  // (or ran without one) still owes acks. Recover it in place — the journal
  // replay acks its wal-pending batch with the recorded version — then flush
  // whatever its queue still holds as kRetryable. Every ticket ever returned
  // is acknowledged when stop() returns.
  for (auto& sh : shards_) {
    if (sh->crashed.load(std::memory_order_acquire) &&
        !sh->unrecoverable.load(std::memory_order_acquire)) {
      try {
        recover_shard(*sh, /*respawn=*/false);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "pardfs: shutdown recovery of shard %zu failed: %s\n",
                     sh->id, e.what());
        abandon_shard(*sh);
      }
    } else if (sh->crashed.load(std::memory_order_acquire)) {
      abandon_shard(*sh);  // idempotent wal flush for the degraded shard
    }
    std::vector<PendingUpdate> rest;
    sh->queue.drain(rest, 0);
    for (PendingUpdate& p : rest) {
      if (p.ticket.try_ack(UpdateTicket::kRetryable)) {
        sh->retryable_acks.fetch_add(1, std::memory_order_relaxed);
        retryable_counter().add();
      }
    }
  }
}

ServiceStats ShardRouter::stats() const {
  ServiceStats out;
  {
    std::lock_guard lock(control_mu_);
    for (const auto& sh : shards_) {
      const ServiceStats& s = sh->stats;
      out.batches += s.batches;
      out.updates_applied += s.updates_applied;
      out.updates_rejected += s.updates_rejected;
      out.snapshots_published += s.snapshots_published;
      out.max_batch = std::max(out.max_batch, s.max_batch);
      out.structural += s.structural;
      out.back_edges += s.back_edges;
      out.segments += s.segments;
      out.index_rebuilds += s.index_rebuilds;
      out.base_rebuilds += s.base_rebuilds;
      out.shard_migrations += s.shard_migrations;
      out.cross_shard_inserts += s.cross_shard_inserts;
      out.recoveries += s.recoveries;
    }
  }
  out.rejected_infeasible = out.updates_rejected;
  for (const auto& sh : shards_) {
    out.rejected_shutdown += sh->queue.rejected_after_close();
    out.retryable_acks += sh->retryable_acks.load(std::memory_order_relaxed);
    out.overload_sheds += sh->overload_sheds.load(std::memory_order_relaxed) +
                          sh->queue.overload_sheds();
  }
  return out;
}

ServiceStats ShardRouter::shard_stats(std::size_t shard) const {
  ServiceStats out;
  {
    std::lock_guard lock(control_mu_);
    out = shards_[shard]->stats;
  }
  out.rejected_infeasible = out.updates_rejected;
  out.rejected_shutdown = shards_[shard]->queue.rejected_after_close();
  out.retryable_acks =
      shards_[shard]->retryable_acks.load(std::memory_order_relaxed);
  out.overload_sheds =
      shards_[shard]->overload_sheds.load(std::memory_order_relaxed) +
      shards_[shard]->queue.overload_sheds();
  return out;
}

std::size_t ShardRouter::queue_depth() const {
  std::size_t total = 0;
  for (const auto& sh : shards_) total += sh->queue.size();
  return total;
}

std::size_t ShardRouter::queue_depth(std::size_t shard) const {
  return shards_[shard]->queue.size();
}

Vertex ShardRouter::capacity() const {
  std::lock_guard lock(id_mu_);
  return global_next_;
}

Vertex ShardRouter::num_vertices() const {
  Vertex total = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    total += shard_snapshot(s)->num_vertices();
  }
  return total;
}

std::int64_t ShardRouter::num_edges() const {
  std::int64_t total = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    total += shard_snapshot(s)->num_edges();
  }
  return total;
}

std::vector<Vertex> ShardRouter::assemble_parent() const {
  const Vertex n = capacity();
  std::vector<SnapshotPtr> snaps;
  snaps.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    snaps.push_back(shard_snapshot(s));
  }
  std::vector<Vertex> out(static_cast<std::size_t>(n), kNullVertex);
  for (Vertex v = 0; v < n; ++v) {
    const std::int32_t s = directory_->get(v);
    if (s < 0) continue;
    const auto par = snaps[static_cast<std::size_t>(s)]->parent();
    if (static_cast<std::size_t>(v) < par.size()) {
      out[static_cast<std::size_t>(v)] = par[static_cast<std::size_t>(v)];
    }
  }
  return out;
}

std::vector<std::uint8_t> ShardRouter::assemble_alive() const {
  const Vertex n = capacity();
  std::vector<SnapshotPtr> snaps;
  snaps.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    snaps.push_back(shard_snapshot(s));
  }
  std::vector<std::uint8_t> out(static_cast<std::size_t>(n), 0);
  for (Vertex v = 0; v < n; ++v) {
    const std::int32_t s = directory_->get(v);
    if (s < 0) continue;
    out[static_cast<std::size_t>(v)] =
        snaps[static_cast<std::size_t>(s)]->contains(v) ? 1 : 0;
  }
  return out;
}

std::string ShardRouter::metrics_text() const { return obs::prometheus_text(); }

std::string ShardRouter::metrics_json() const { return obs::metrics_json(); }

const DynamicDfs& ShardRouter::core(std::size_t shard) const {
  return shards_[shard]->dfs;
}

void ShardRouter::publish(Shard& sh, bool forest_unchanged) {
  obs::ScopedPhase phase(*sh.publish_hist, "publish");
  const std::uint64_t now = obs::now_ns();
  if (sh.last_publish_ns != 0) {
    sh.staleness->record(now - sh.last_publish_ns);
  }
  sh.last_publish_ns = now;
  const Graph& g = sh.dfs.graph();
  // Cut structure depends on the back edges too, so a patch-only batch that
  // shares its forest still recomputes it.
  std::shared_ptr<const CutStructure> cuts;
  if (config_.serve_cuts) {
    cuts = std::make_shared<const CutStructure>(find_cuts(g, sh.dfs.parent()));
  }
  std::shared_ptr<const DfsSnapshot::Forest> forest;
  if (forest_unchanged) {
    // Patch-only batch: only num_edges and the version moved. Share the
    // previous snapshot's forest instead of paying three O(n) copies.
    forest = sh.snapshot.load(std::memory_order_relaxed)->forest();
  } else {
    auto fresh = std::make_shared<DfsSnapshot::Forest>();
    fresh->parent.assign(sh.dfs.parent().begin(), sh.dfs.parent().end());
    fresh->alive.assign(g.alive().begin(), g.alive().end());
    // Share the core's freshly rebuilt index: rebuilds swap in a new
    // TreeIndex object rather than mutating this one, so readers may hold
    // it indefinitely and publication stops cloning megabytes per batch.
    fresh->index = sh.dfs.tree_ptr();
    fresh->num_vertices = g.num_vertices();
    forest = std::move(fresh);
  }
  sh.snapshot.store(
      std::make_shared<const DfsSnapshot>(sh.version, sh.updates_applied,
                                          std::move(forest), g.num_edges(),
                                          std::move(cuts)),
      std::memory_order_release);
  sh.last_publish_mono_ns.store(mono_ns(), std::memory_order_relaxed);
}

bool ShardRouter::feasible(const Shard& sh, const GraphUpdate& u,
                           BatchDelta& delta) const {
  const Graph& g = sh.dfs.graph();
  const auto alive = [&](Vertex v) {
    if (v < 0 || v >= delta.next_vertex) return false;
    if (delta.dead.contains(v)) return false;
    if (v < g.capacity()) return g.is_alive(v);
    return true;  // assigned by an earlier insert of this batch
  };
  const auto has_edge = [&](Vertex a, Vertex b) {
    const auto it = delta.edges.find(undirected_key(a, b));
    if (it != delta.edges.end()) return it->second;
    return g.has_edge(a, b);  // total: range-checked via liveness
  };
  switch (u.kind) {
    case GraphUpdate::Kind::kInsertEdge:
      if (u.u == u.v || !alive(u.u) || !alive(u.v) || has_edge(u.u, u.v)) {
        return false;
      }
      delta.edges[undirected_key(u.u, u.v)] = true;
      return true;
    case GraphUpdate::Kind::kDeleteEdge:
      if (u.u == u.v || !alive(u.u) || !alive(u.v) || !has_edge(u.u, u.v)) {
        return false;
      }
      delta.edges[undirected_key(u.u, u.v)] = false;
      return true;
    case GraphUpdate::Kind::kInsertVertex: {
      for (const Vertex n : u.neighbors) {
        if (!alive(n)) return false;
      }
      for (std::size_t i = 0; i < u.neighbors.size(); ++i) {
        for (std::size_t j = i + 1; j < u.neighbors.size(); ++j) {
          if (u.neighbors[i] == u.neighbors[j]) return false;
        }
      }
      // Record the incident edges the insert creates: later updates of the
      // same batch may legitimately reference them.
      for (const Vertex n : u.neighbors) {
        delta.edges[undirected_key(delta.next_vertex, n)] = true;
      }
      ++delta.next_vertex;
      return true;
    }
    case GraphUpdate::Kind::kDeleteVertex:
      if (!alive(u.u)) return false;
      delta.dead.insert(u.u);
      return true;
  }
  return false;
}

bool ShardRouter::is_local(const Shard& sh, const GraphUpdate& u) const {
  if (shards_.size() == 1) return true;
  const auto self = static_cast<std::int32_t>(sh.id);
  switch (u.kind) {
    case GraphUpdate::Kind::kInsertEdge:
    case GraphUpdate::Kind::kDeleteEdge: {
      const std::int32_t su = directory_->get(u.u);
      const std::int32_t sv = directory_->get(u.v);
      // An endpoint the directory has never seen makes the op infeasible no
      // matter where it runs: classify local so this shard's feasibility
      // filter rejects it, exactly like the unsharded service would.
      if (su < 0 || sv < 0) return true;
      return su == self && sv == self;
    }
    case GraphUpdate::Kind::kInsertVertex: {
      for (const Vertex nb : u.neighbors) {
        if (directory_->get(nb) < 0) return true;  // infeasible: local reject
      }
      for (const Vertex nb : u.neighbors) {
        if (directory_->get(nb) != self) return false;
      }
      return true;  // includes isolated inserts (no neighbors)
    }
    case GraphUpdate::Kind::kDeleteVertex: {
      const std::int32_t s = directory_->get(u.u);
      return s < 0 || s == self;
    }
  }
  return true;
}

void ShardRouter::writer_loop(Shard& sh) {
  // The writer owns a recoverable failure domain: any PARDFS_CHECK its
  // frames trip throws InvariantViolation instead of aborting the process;
  // the catch below turns it (and injected faults) into shard poisoning +
  // journal-replay recovery (DESIGN.md §13).
  const ScopedRecoverableChecks recoverable;
  std::vector<PendingUpdate> pending;
  std::vector<PendingUpdate*> run;
  try {
    for (;;) {
      sh.heartbeat_ns.store(mono_ns(), std::memory_order_release);
      {
        std::unique_lock lock(control_mu_);
        control_cv_.wait(lock, [&] { return !paused_ || stopped_; });
      }
      pending.clear();
      std::size_t cap = config_.max_batch;
      if (cap == 0) {
        // The epoch period moves on rebases; merges mutate the engine from
        // other writers, so even this read takes the (uncontended) lock.
        std::lock_guard lock(sh.mu);
        cap = sh.dfs.epoch_period();
      }
      {
        // The span covers the blocking wait for work — idle gaps show up as
        // long drain spans in the trace, not as holes.
        const obs::Span drain_span("drain");
        if (!sh.queue.drain(pending, cap)) break;  // closed and fully drained
      }
      {
        // pause() may have landed while drain() was blocked on an empty queue:
        // drained updates are held, un-applied, until resume (or stop).
        std::unique_lock lock(control_mu_);
        control_cv_.wait(lock, [&] { return !paused_ || stopped_; });
      }
      // Cancellation point: a poison injected by inject_writer_failure() or
      // a fence raised by the watchdog (stalled heartbeat) becomes a crash
      // here, while nothing is half-applied — the drained updates are not
      // journaled yet, so the catch block acks them all kRetryable.
      sh.heartbeat_ns.store(mono_ns(), std::memory_order_release);
      sh.busy.store(true, std::memory_order_release);
      if (sh.poison.exchange(false)) {
        throw chaos::InjectedCrash("injected writer failure");
      }
      if (sh.fenced.load(std::memory_order_acquire)) {
        throw chaos::InjectedCrash("writer fenced by watchdog after stall");
      }
      // Queue-wait phase (submit -> drain) per update, plus the two service
      // gauges: how much is still queued and how much this drain coalesced.
      if (obs::metrics_enabled()) {
        const std::uint64_t drained_at = obs::now_ns();
        for (const PendingUpdate& p : pending) {
          if (p.enqueue_ns != 0) sh.queue_wait->record(drained_at - p.enqueue_ns);
        }
      }
      sh.depth_gauge->set(static_cast<std::int64_t>(sh.queue.size()));
      sh.coalesce_gauge->set(static_cast<std::int64_t>(pending.size()));

      // Segment the drained FIFO into maximal runs of locally-resolving ops
      // (batched through the ported single-writer path) interleaved with
      // specials (merges / ops whose component migrated away after routing).
      // Classification happens under the engine lock: directory entries
      // pointing at this shard cannot change while it is held, so an op
      // classified local stays local through its apply.
      std::size_t i = 0;
      while (i < pending.size()) {
        // Re-stamp between runs and specials: a large drained batch can
        // legitimately process for longer than stall_timeout_ms, and the
        // watchdog must fence actual stalls, not long healthy batches. (An
        // injected batch_stall_ms still fences — the stall loop never
        // reaches this stamp.)
        sh.heartbeat_ns.store(mono_ns(), std::memory_order_release);
        std::size_t j = i;
        {
          std::lock_guard lock(sh.mu);
          while (j < pending.size() && is_local(sh, pending[j].update)) ++j;
          if (j > i) {
            run.clear();
            for (std::size_t k = i; k < j; ++k) run.push_back(&pending[k]);
            apply_run_locked(sh, sh, run);
          }
        }
        if (j == i) {
          process_special(sh, pending[i]);
          ++i;
        } else {
          i = j;
        }
      }
      sh.busy.store(false, std::memory_order_release);
    }
  } catch (const std::exception& e) {
    writer_crashed(sh, pending, e.what());
  }
}

void ShardRouter::writer_crashed(Shard& sh, std::vector<PendingUpdate>& pending,
                                 const char* what) {
  // Runs in the writer's catch block with every lock released by the unwind.
  // Tickets of the journaled-but-unacked batch (wal_pending) are durable —
  // recovery will ack them from the replay; everything else this writer had
  // drained was never accepted and acks kRetryable now.
  std::vector<UpdateTicket> journaled;
  {
    std::lock_guard lock(sh.mu);
    if (sh.wal_pending.has_value()) journaled = sh.wal_pending->tickets;
  }
  for (PendingUpdate& p : pending) {
    if (p.ticket.done()) continue;
    bool in_wal = false;
    for (const UpdateTicket& t : journaled) {
      if (p.ticket.same_ticket(t)) {
        in_wal = true;
        break;
      }
    }
    if (!in_wal && p.ticket.try_ack(UpdateTicket::kRetryable)) {
      sh.retryable_acks.fetch_add(1, std::memory_order_relaxed);
      retryable_counter().add();
    }
  }
  std::fprintf(stderr,
               "pardfs: shard %zu writer crashed: %s (%s)\n", sh.id, what,
               sh.journal != nullptr ? "journal-replay recovery pending"
                                     : "no journal: degrading to reads-only");
  sh.busy.store(false, std::memory_order_release);
  // Last: the crashed flag is what the watchdog acts on, and it must find
  // the retryable sweep already done when it joins this thread.
  sh.crashed.store(true, std::memory_order_release);
}

// Applies a run of ops (already classified local to `target`) as one batch:
// the ported single-writer path. Caller holds target.mu; acks and their
// latency are recorded against `gateway`, the shard whose queue carried the
// ops (== target except for remote singles).
void ShardRouter::apply_run_locked(Shard& target, Shard& gateway,
                                   std::vector<PendingUpdate*>& run) {
  bool has_insert = false;
  for (const PendingUpdate* p : run) {
    if (p->update.kind == GraphUpdate::Kind::kInsertVertex) {
      has_insert = true;
      break;
    }
  }
  // Vertex inserts assign from the global id space: hold the id lock
  // (innermost) across feasibility + apply so the assigned ids are exactly
  // the ones a single-shard run would hand out. pad_capacity aligns the
  // shard's graph so add_vertex lands on global_next_ (a no-op at S == 1).
  std::unique_lock<std::mutex> id_lock;
  BatchDelta delta;
  if (has_insert) {
    id_lock = std::unique_lock(id_mu_);
    // The pad is journaled even if every insert then fails feasibility: the
    // live engine's capacity moved, so replay's must too (§13: the journal
    // mirrors every engine mutation, not every accepted update).
    if (target.journal) target.journal->record_pad(global_next_);
    target.dfs.pad_capacity(global_next_);
    delta.next_vertex = global_next_;
  } else {
    delta.next_vertex = target.dfs.graph().capacity();
  }

  std::vector<GraphUpdate> batch;
  std::vector<UpdateTicket> accepted;
  std::vector<std::uint64_t> accepted_enqueue_ns;
  std::uint64_t rejected = 0;
  for (PendingUpdate* p : run) {
    if (feasible(target, p->update, delta)) {
      batch.push_back(std::move(p->update));
      accepted.push_back(p->ticket);
      accepted_enqueue_ns.push_back(p->enqueue_ns);
    } else {
      p->ticket.ack(UpdateTicket::kRejected);
      ++rejected;
      infeasible_counter().add();
    }
  }

  BatchStats batch_stats;
  if (!batch.empty()) {
    if (config_.enable_chaos) chaos_stall(target, gateway);
    // WAL point: acceptance == journaled. The batch, its version and its
    // tickets are recorded before apply; a crash from here on recovers by
    // replay and acks these tickets with that version (exactly-once via
    // try_ack). There is deliberately no faultable code between the two
    // statements below.
    if (target.journal) {
      target.journal->record_apply(batch, target.version + 1,
                                   target.updates_applied + batch.size());
      Shard::WalPending wal;
      wal.tickets = accepted;
      wal.kinds.reserve(batch.size());
      for (const GraphUpdate& u : batch) wal.kinds.push_back(u.kind);
      wal.version = target.version + 1;
      target.wal_pending = std::move(wal);
    }
    // Reserve the assigned ids at the WAL point, not after the apply: the
    // record above holds inserts whose ids start at the old global_next_, so
    // the allocator must advance before any faultable code. A crash in the
    // apply below then cannot let another shard hand out the journaled ids
    // during the window before replay (which would ack the same id to two
    // clients). delta.next_vertex is exactly the capacity this batch leaves
    // behind: the pad to global_next_ plus one id per accepted insert.
    if (has_insert) global_next_ = delta.next_vertex;
    if (config_.enable_chaos) {
      chaos_site(static_cast<int>(chaos::FaultPoint::kWriterCrashMidBatch),
                 target);
    }
    {
      const obs::Span apply_span("apply_batch");
      batch_stats = target.dfs.apply_batch(batch);
    }
    if (config_.enable_chaos) {
      chaos_site(static_cast<int>(chaos::FaultPoint::kIndexRebuildThrow),
                 target);
    }
    target.updates_applied += batch.size();
    ++target.version;
    if (has_insert) {
      for (const Vertex v : batch_stats.new_vertices) {
        directory_->set(v, static_cast<std::int32_t>(target.id));
      }
      // global_next_ already advanced at the WAL point above.
    }
    publish(target, /*forest_unchanged=*/batch_stats.structural == 0);
    batches_counter().add();
    applied_counter().add(batch.size());
    published_counter().add();
  }
  if (id_lock.owns_lock()) id_lock.unlock();
  // Acks go out after the publish, so a wait()er's snapshot already reflects
  // its update.
  std::size_t next_new_vertex = 0;
  const std::uint64_t acked_at =
      obs::metrics_enabled() && !accepted.empty() ? obs::now_ns() : 0;
  for (std::size_t i = 0; i < accepted.size(); ++i) {
    Vertex assigned = kNullVertex;
    if (batch[i].kind == GraphUpdate::Kind::kInsertVertex) {
      assigned = batch_stats.new_vertices[next_new_vertex++];
    }
    accepted[i].ack(target.version, assigned);
    if (acked_at != 0 && accepted_enqueue_ns[i] != 0) {
      gateway.ack_latency->record(acked_at - accepted_enqueue_ns[i]);
    }
  }
  // The batch is applied, published and acked: its WAL tickets are no longer
  // pending (caller still holds target.mu).
  target.wal_pending.reset();
  maybe_checkpoint_locked(target);

  {
    std::lock_guard lock(control_mu_);
    ServiceStats& st = target.stats;
    st.updates_rejected += rejected;
    if (!batch.empty()) {
      ++st.batches;
      ++st.snapshots_published;
      st.updates_applied += batch.size();
      st.max_batch = std::max<std::uint64_t>(st.max_batch, batch.size());
      st.structural += batch_stats.structural;
      st.back_edges += batch_stats.back_edges;
      st.segments += batch_stats.segments;
      st.index_rebuilds += batch_stats.index_rebuilds;
      st.base_rebuilds += batch_stats.base_rebuilds;
    }
  }
}

void ShardRouter::process_special(Shard& sh, PendingUpdate& p) {
  const GraphUpdate& u = p.update;
  std::vector<Vertex> endpoints;
  switch (u.kind) {
    case GraphUpdate::Kind::kInsertEdge:
    case GraphUpdate::Kind::kDeleteEdge:
      endpoints = {u.u, u.v};
      break;
    case GraphUpdate::Kind::kInsertVertex:
      endpoints = u.neighbors;
      break;
    case GraphUpdate::Kind::kDeleteVertex:
      endpoints = {u.u};
      break;
  }

  const auto reject = [&] {
    p.ticket.ack(UpdateTicket::kRejected);
    infeasible_counter().add();
    std::lock_guard lock(control_mu_);
    ++sh.stats.updates_rejected;
  };

  // Lock-coupling retry: resolve -> lock involved shards ascending ->
  // re-verify. A directory entry pointing at a shard can only change while
  // that shard's engine lock is held, so once every resolved entry survives
  // verification under the locks, it is pinned for the protocol's duration.
  for (;;) {
    std::vector<std::int32_t> dirs;
    dirs.reserve(endpoints.size());
    std::vector<std::size_t> involved;
    for (const Vertex v : endpoints) {
      const std::int32_t d = directory_->get(v);
      if (d < 0) {
        reject();  // an endpoint that never existed: infeasible everywhere
        return;
      }
      dirs.push_back(d);
      involved.push_back(static_cast<std::size_t>(d));
    }
    std::sort(involved.begin(), involved.end());
    involved.erase(std::unique(involved.begin(), involved.end()),
                   involved.end());

    std::vector<std::unique_lock<std::mutex>> locks;
    locks.reserve(involved.size());
    for (const std::size_t s : involved) {
      locks.emplace_back(shards_[s]->mu);
    }
    bool stable = true;
    for (std::size_t k = 0; k < endpoints.size(); ++k) {
      if (directory_->get(endpoints[k]) != dirs[k]) {
        stable = false;
        break;
      }
    }
    if (!stable) continue;  // locks drop; a migration raced us — re-resolve

    // A crashed shard's engine is poisoned state: nothing may touch it until
    // recovery has replayed its journal. kRetryable (rather than blocking on
    // the watchdog) keeps this queue draining; the client resubmits after
    // the failover.
    bool any_crashed = false;
    for (const std::size_t s : involved) {
      if (shards_[s]->crashed.load(std::memory_order_acquire)) {
        any_crashed = true;
        break;
      }
    }
    if (any_crashed) {
      if (p.ticket.try_ack(UpdateTicket::kRetryable)) {
        sh.retryable_acks.fetch_add(1, std::memory_order_relaxed);
        retryable_counter().add();
      }
      return;
    }

    // Crash handling for everything below: the gateway writer survives a
    // remote/merge crash — the damaged engines are repaired here, inline,
    // while their locks are still held (their own writers are alive, so the
    // watchdog could never join them). `recover_first` is recovered before
    // the rest so the directory flips to the winner before any loser
    // republishes without the migrated component (miss-free reads, same
    // ordering argument as the non-crash path).
    std::size_t recover_first = involved[0];
    const auto recover_inline = [&](const char* what) {
      std::fprintf(stderr,
                   "pardfs: merge on shard %zu crashed: %s; recovering %zu "
                   "shard(s) inline\n",
                   sh.id, what, involved.size());
      const auto recover_one = [&](std::size_t s) {
        Shard& damaged = *shards_[s];
        const std::uint64_t t0 = mono_ns();
        try {
          recover_shard_locked(damaged);
          recoveries_counter().add();
          recovery_latency_hist().record(mono_ns() - t0);
          std::lock_guard lock(control_mu_);
          ++damaged.stats.recoveries;
        } catch (const std::exception& e) {
          // Replay itself failed: the shard degrades to reads-only. Its own
          // writer stays alive but is poisoned, so the next work it drains
          // converts to a crash and its tickets flush kRetryable; crashed is
          // NOT set here (the writer is alive — the watchdog must not try to
          // join it).
          std::fprintf(stderr,
                       "pardfs: inline recovery of shard %zu failed: %s\n", s,
                       e.what());
          damaged.poison.store(true, std::memory_order_release);
          damaged.unrecoverable.store(true, std::memory_order_release);
          // We hold damaged.mu (it is one of `locks`): flush its wal
          // tickets here rather than via abandon_shard, which re-locks.
          if (damaged.wal_pending.has_value()) {
            for (const UpdateTicket& t : damaged.wal_pending->tickets) {
              if (t.try_ack(UpdateTicket::kRetryable)) {
                damaged.retryable_acks.fetch_add(1, std::memory_order_relaxed);
                retryable_counter().add();
              }
            }
            damaged.wal_pending.reset();
          }
        }
      };
      recover_one(recover_first);
      for (const std::size_t s : involved) {
        if (s != recover_first) recover_one(s);
      }
      if (p.ticket.try_ack(UpdateTicket::kRetryable)) {
        sh.retryable_acks.fetch_add(1, std::memory_order_relaxed);
        retryable_counter().add();
      }
    };

    if (involved.size() == 1) {
      // The whole op resolves into one shard (it migrated after routing, or
      // a concurrent merge co-located the endpoints): single-op run there.
      try {
        std::vector<PendingUpdate*> run{&p};
        apply_run_locked(*shards_[involved[0]], sh, run);
      } catch (const std::exception& e) {
        recover_inline(e.what());
      }
      return;
    }

    // Endpoints span shards. Components are shard-disjoint, so an existing
    // edge can never span shards: a cross-shard delete is infeasible.
    if (u.kind == GraphUpdate::Kind::kDeleteEdge) {
      reject();
      return;
    }

    // Two-shard (k-shard for vertex inserts) merge protocol, inside the
    // merge failure domain: an escaped invariant (or injected fault)
    // anywhere below repairs every involved shard by journal replay before
    // the gateway writer moves on.
    try {
    // Feasibility first, against each endpoint's own shard.
    bool alive_ok = true;
    for (std::size_t k = 0; k < endpoints.size(); ++k) {
      if (!shards_[static_cast<std::size_t>(dirs[k])]->dfs.graph().is_alive(
              endpoints[k])) {
        alive_ok = false;
        break;
      }
    }
    if (u.kind == GraphUpdate::Kind::kInsertVertex) {
      for (std::size_t a = 0; alive_ok && a < endpoints.size(); ++a) {
        for (std::size_t b = a + 1; b < endpoints.size(); ++b) {
          if (endpoints[a] == endpoints[b]) {
            alive_ok = false;
            break;
          }
        }
      }
    }
    if (!alive_ok) {
      reject();
      return;
    }

    // Winner: the shard owning the largest involved component (tie: lower
    // shard id) — the smaller components migrate. Placement only; the forest
    // content is identical whichever shard hosts the merged component.
    std::size_t winner = involved[0];
    std::int32_t best_size = -1;
    for (std::size_t k = 0; k < endpoints.size(); ++k) {
      const auto s = static_cast<std::size_t>(dirs[k]);
      Shard& cand = *shards_[s];
      const Vertex root = cand.dfs.root_of(endpoints[k]);
      const std::int32_t size = cand.dfs.tree().size(root);
      if (size > best_size || (size == best_size && s < winner)) {
        best_size = size;
        winner = s;
      }
    }
    Shard& w = *shards_[winner];
    recover_first = winner;

    // Migrate every involved component not already living in the winner:
    // verbatim row transplant, deduplicated by (shard, root) — several
    // endpoints may share a component.
    cross_shard_counter().add();
    std::set<std::pair<std::size_t, Vertex>> seen;
    std::vector<Vertex> migrated;
    std::set<std::size_t> losers;
    std::uint64_t migrations = 0;
    for (std::size_t k = 0; k < endpoints.size(); ++k) {
      const auto s = static_cast<std::size_t>(dirs[k]);
      if (s == winner) continue;
      Shard& loser = *shards_[s];
      const Vertex root = loser.dfs.root_of(endpoints[k]);
      if (!seen.insert({s, root}).second) continue;
      DynamicDfs::ComponentTransfer t =
          loser.dfs.extract_component(endpoints[k]);
      // Journal both halves back-to-back with no faultable code between:
      // crashes in this design are C++ exceptions, so the two records are
      // atomic — replay sees the migration on both sides or on neither.
      // The loser's version_after is its single post-merge bump (one per op
      // however many components leave).
      if (loser.journal) {
        loser.journal->record_extract(endpoints[k], loser.version + 1);
      }
      if (w.journal) w.journal->record_adopt(t);
      migrated.insert(migrated.end(), t.vertices.begin(), t.vertices.end());
      w.dfs.adopt_component(std::move(t));
      migrations_counter().add();
      ++migrations;
      losers.insert(s);
    }

    if (config_.enable_chaos) {
      chaos_site(static_cast<int>(chaos::FaultPoint::kMergeAbort), w);
    }

    // Apply the merging op on the winner (everything is co-located now).
    // Same WAL discipline as apply_run_locked: record + wal_pending, then
    // apply; a crash in between recovers to the recorded version.
    const auto record_merge_apply = [&] {
      if (!w.journal) return;
      w.journal->record_apply(std::span<const GraphUpdate>(&u, 1),
                              w.version + 1, w.updates_applied + 1);
      Shard::WalPending wal;
      wal.tickets = {p.ticket};
      wal.kinds = {u.kind};
      wal.version = w.version + 1;
      w.wal_pending = std::move(wal);
    };
    BatchStats batch_stats;
    Vertex assigned = kNullVertex;
    {
      const obs::Span apply_span("apply_batch");
      if (u.kind == GraphUpdate::Kind::kInsertVertex) {
        std::lock_guard id_lock(id_mu_);
        if (w.journal) w.journal->record_pad(global_next_);
        w.dfs.pad_capacity(global_next_);
        record_merge_apply();
        // Reserve the insert's id at the WAL point (same argument as in
        // apply_run_locked): the journaled insert replays to exactly this id
        // even if the apply below crashes first.
        ++global_next_;
        batch_stats = w.dfs.apply_batch(std::span<const GraphUpdate>(&u, 1));
        assigned = batch_stats.new_vertices.at(0);
        directory_->set(assigned, static_cast<std::int32_t>(winner));
      } else {
        record_merge_apply();
        batch_stats = w.dfs.apply_batch(std::span<const GraphUpdate>(&u, 1));
      }
    }
    w.updates_applied += 1;
    ++w.version;
    const std::uint64_t ack_version = w.version;
    // Publication order is what keeps readers miss-free: the winner's
    // snapshot (which now contains the migrated component) goes out before
    // the directory flips, and the losers' snapshots (which drop it) only
    // after. A reader resolving mid-protocol lands on a shard whose
    // published snapshot still answers for the vertex.
    publish(w, /*forest_unchanged=*/false);
    for (const Vertex mv : migrated) {
      directory_->set(mv, static_cast<std::int32_t>(winner));
    }
    for (const std::size_t ls : losers) {
      ++shards_[ls]->version;
      publish(*shards_[ls], /*forest_unchanged=*/false);
    }
    batches_counter().add();
    applied_counter().add(1);
    published_counter().add(1 + losers.size());

    p.ticket.ack(ack_version, assigned);
    w.wal_pending.reset();
    if (obs::metrics_enabled() && p.enqueue_ns != 0) {
      sh.ack_latency->record(obs::now_ns() - p.enqueue_ns);
    }

    {
      std::lock_guard lock(control_mu_);
      ServiceStats& st = w.stats;
      ++st.batches;
      ++st.snapshots_published;
      st.updates_applied += 1;
      st.max_batch = std::max<std::uint64_t>(st.max_batch, 1);
      st.structural += batch_stats.structural;
      st.back_edges += batch_stats.back_edges;
      st.segments += batch_stats.segments;
      st.index_rebuilds += batch_stats.index_rebuilds;
      st.base_rebuilds += batch_stats.base_rebuilds;
      for (const std::size_t ls : losers) {
        ++shards_[ls]->stats.snapshots_published;
      }
      sh.stats.cross_shard_inserts += 1;
      sh.stats.shard_migrations += migrations;
    }
    // Both merge halves were journaled (extract on losers, adopt + apply on
    // the winner): truncate whichever journals just crossed the bound. All
    // involved engine locks are still held.
    maybe_checkpoint_locked(w);
    for (const std::size_t ls : losers) maybe_checkpoint_locked(*shards_[ls]);
    } catch (const std::exception& e) {
      recover_inline(e.what());
    }
    return;
  }
}

// ---- supervision (DESIGN.md §13) -------------------------------------------

void ShardRouter::inject_writer_failure(std::size_t shard) {
  shards_[shard]->poison.store(true, std::memory_order_release);
}

// Chaos helpers. Both are called only when config_.enable_chaos is set, and
// compile down to a locked no-op lookup unless PARDFS_ENABLE_CHAOS is on.
void ShardRouter::chaos_site(int point, Shard& target) {
  const chaos::FaultAction a =
      chaos::hit(static_cast<chaos::FaultPoint>(point), target.id);
  switch (a.kind) {
    case chaos::FaultAction::Kind::kCrash:
      throw chaos::InjectedCrash(std::string("chaos: ") +
                                 chaos::point_name(
                                     static_cast<chaos::FaultPoint>(point)));
    case chaos::FaultAction::Kind::kThrow:
      throw chaos::InjectedCrash("chaos: index rebuild failed");
    default:
      return;
  }
}

// batch_stall_ms: sleep in slices, checking for the watchdog's fence (and
// shutdown) between slices — a stalled-then-fenced writer converts to a
// crash, which the journal makes lossless.
void ShardRouter::chaos_stall(Shard& target, Shard& gateway) {
  const chaos::FaultAction a =
      chaos::hit(chaos::FaultPoint::kBatchStallMs, target.id);
  if (a.kind != chaos::FaultAction::Kind::kStall) return;
  const std::uint64_t end = mono_ns() + std::uint64_t{a.param} * 1000000ULL;
  while (mono_ns() < end) {
    if (gateway.fenced.load(std::memory_order_acquire)) {
      throw chaos::InjectedCrash("chaos: stalled writer fenced");
    }
    {
      std::lock_guard lock(control_mu_);
      if (stopped_) return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void ShardRouter::watchdog_loop() {
  // Replays run on this thread; engine checks tripped during them must
  // throw (and be caught below), not abort.
  const ScopedRecoverableChecks recoverable;
  for (;;) {
    {
      std::unique_lock lock(watchdog_mu_);
      watchdog_cv_.wait_for(lock,
                            std::chrono::milliseconds(config_.watchdog_poll_ms),
                            [&] { return watchdog_stop_; });
      if (watchdog_stop_) return;
    }
    for (auto& shp : shards_) {
      Shard& sh = *shp;
      if (sh.unrecoverable.load(std::memory_order_acquire)) continue;
      if (sh.crashed.load(std::memory_order_acquire)) {
        try {
          recover_shard(sh, /*respawn=*/true);
        } catch (const std::exception& e) {
          std::fprintf(stderr,
                       "pardfs: recovery of shard %zu failed: %s; shard "
                       "degrades to reads-only\n",
                       sh.id, e.what());
          abandon_shard(sh);
        }
        continue;
      }
      // Stall detection: busy (a drained batch is processing) with a
      // heartbeat older than the bound. The fence is advisory — the writer
      // converts it to a crash at its next cancellation point; a thread
      // truly stuck in a syscall cannot be reclaimed portably, but its shard
      // keeps serving reads regardless.
      if (config_.stall_timeout_ms != 0 &&
          sh.busy.load(std::memory_order_acquire)) {
        const std::uint64_t hb = sh.heartbeat_ns.load(std::memory_order_acquire);
        if (hb != 0 &&
            mono_ns() - hb >
                std::uint64_t{config_.stall_timeout_ms} * 1000000ULL &&
            !sh.fenced.exchange(true, std::memory_order_acq_rel)) {
          stalls_counter().add();
        }
      }
    }
  }
}

void ShardRouter::recover_shard(Shard& sh, bool respawn) {
  // Callable from the watchdog or from stop() (a user thread): either way
  // the replay is a recoverable failure domain, not an abort.
  const ScopedRecoverableChecks recoverable;
  const std::uint64_t t0 = mono_ns();
  // The crashed writer has set sh.crashed as its last act; join reclaims the
  // thread object so a fresh writer can take its place.
  if (sh.writer.joinable()) sh.writer.join();
  {
    std::lock_guard lock(sh.mu);
    recover_shard_locked(sh);
  }
  recoveries_counter().add();
  recovery_latency_hist().record(mono_ns() - t0);
  bool respawn_now = respawn;
  {
    std::lock_guard lock(control_mu_);
    ++sh.stats.recoveries;
    if (stopped_) respawn_now = false;
    if (respawn_now) {
      // Under control_mu_ so this assignment cannot race stop()'s join loop:
      // stop() joins the watchdog (us) before touching writer threads, and
      // once it has set stopped_ we never assign again.
      sh.writer = std::thread([this, shard = &sh] { writer_loop(*shard); });
    }
  }
}

void ShardRouter::maybe_checkpoint_locked(Shard& sh) {
  if (sh.journal == nullptr || config_.journal_checkpoint_entries == 0) return;
  if (sh.wal_pending.has_value()) return;  // journal ahead of the engine
  if (sh.journal->entries() < config_.journal_checkpoint_entries) return;
  sh.journal->checkpoint(sh.dfs.graph(), sh.dfs.parent(), sh.version,
                         sh.updates_applied);
  checkpoints_counter().add();
}

void ShardRouter::abandon_shard(Shard& sh) {
  sh.unrecoverable.store(true, std::memory_order_release);
  std::lock_guard lock(sh.mu);
  if (sh.wal_pending.has_value()) {
    for (const UpdateTicket& t : sh.wal_pending->tickets) {
      if (t.try_ack(UpdateTicket::kRetryable)) {
        sh.retryable_acks.fetch_add(1, std::memory_order_relaxed);
        retryable_counter().add();
      }
    }
    sh.wal_pending.reset();
  }
}

void ShardRouter::recover_shard_locked(Shard& sh) {
  if (sh.journal == nullptr) {
    // No journal, no replay: the shard stays degraded (reads keep serving
    // the last published snapshot; its queue is flushed kRetryable at
    // stop()). Clearing crashed would invite writers onto a damaged engine.
    throw InvariantViolation("shard has no journal to replay");
  }
  UpdateJournal::ReplayResult r = sh.journal->replay();
  // Swap the damaged engine for the replayed twin. Determinism (§12) makes
  // the replacement byte-identical to the engine a crash-free history would
  // have produced; snapshots sharing state with the old engine keep it alive
  // via shared_ptr until their readers drop them.
  sh.dfs = std::move(r.engine);
  sh.version = r.version;
  sh.updates_applied = r.updates_applied;
  // Re-point the directory at everything alive here. This both repairs a
  // merge interrupted between journal record and directory flip (migrated
  // vertices resolve to the winner as soon as it republishes) and is a no-op
  // for entries that already point here. Entries for ids that died on this
  // shard keep pointing here, preserving query totality.
  const Graph& g = sh.dfs.graph();
  for (Vertex v = 0; v < g.capacity(); ++v) {
    if (g.is_alive(v)) directory_->set(v, static_cast<std::int32_t>(sh.id));
  }
  {
    // Ids are reserved at the WAL point, so every journaled insert's id is
    // already below global_next_ and this is a no-op; kept as a defensive
    // floor in case the id space ever lags a replayed capacity.
    std::lock_guard id_lock(id_mu_);
    global_next_ = std::max(global_next_, g.capacity());
  }
  publish(sh, /*forest_unchanged=*/false);
  {
    std::lock_guard lock(control_mu_);
    ++sh.stats.snapshots_published;
  }
  published_counter().add();
  // WAL acks: the journaled-but-unacked batch was replayed above, so its
  // tickets resolve to the recorded version (with the replayed insert ids).
  // try_ack keeps this exactly-once against the crash-time kRetryable sweep.
  if (sh.wal_pending.has_value()) {
    std::size_t next_new_vertex = 0;
    for (std::size_t i = 0; i < sh.wal_pending->tickets.size(); ++i) {
      Vertex assigned = kNullVertex;
      if (sh.wal_pending->kinds[i] == GraphUpdate::Kind::kInsertVertex &&
          next_new_vertex < r.last_new_vertices.size()) {
        assigned = r.last_new_vertices[next_new_vertex++];
      }
      sh.wal_pending->tickets[i].try_ack(sh.wal_pending->version, assigned);
    }
    sh.wal_pending.reset();
  }
  sh.fenced.store(false, std::memory_order_release);
  sh.poison.store(false, std::memory_order_release);
  sh.crashed.store(false, std::memory_order_release);
  // A long journal just replayed in full: truncate it now so a repeated
  // crash replays only from here, not from genesis again.
  maybe_checkpoint_locked(sh);
}

// ---- RouterView ------------------------------------------------------------

SnapshotPtr RouterView::snapshot_of(Vertex v) const {
  const int s = router_->shard_of(v);
  return s < 0 ? nullptr : router_->shard_snapshot(static_cast<std::size_t>(s));
}

bool RouterView::contains(Vertex v) const {
  const SnapshotPtr snap = snapshot_of(v);
  return snap != nullptr && snap->contains(v);
}

Vertex RouterView::parent_of(Vertex v) const {
  const SnapshotPtr snap = snapshot_of(v);
  return snap != nullptr ? snap->parent_of(v) : kNullVertex;
}

Vertex RouterView::root_of(Vertex v) const {
  const SnapshotPtr snap = snapshot_of(v);
  return snap != nullptr ? snap->root_of(v) : kNullVertex;
}

std::int32_t RouterView::depth(Vertex v) const {
  const SnapshotPtr snap = snapshot_of(v);
  return snap != nullptr ? snap->depth(v) : -1;
}

std::int32_t RouterView::subtree_size(Vertex v) const {
  const SnapshotPtr snap = snapshot_of(v);
  return snap != nullptr ? snap->subtree_size(v) : 0;
}

bool RouterView::is_ancestor(Vertex a, Vertex d) const {
  const int sa = router_->shard_of(a);
  const int sd = router_->shard_of(d);
  // Different shards own different components: no ancestry across them.
  if (sa < 0 || sa != sd) return false;
  return router_->shard_snapshot(static_cast<std::size_t>(sa))
      ->is_ancestor(a, d);
}

Vertex RouterView::lca(Vertex u, Vertex v) const {
  const int su = router_->shard_of(u);
  const int sv = router_->shard_of(v);
  if (su < 0 || su != sv) return kNullVertex;
  return router_->shard_snapshot(static_cast<std::size_t>(su))->lca(u, v);
}

bool RouterView::same_component(Vertex u, Vertex v) const {
  const int su = router_->shard_of(u);
  const int sv = router_->shard_of(v);
  if (su < 0 || su != sv) return false;
  return router_->shard_snapshot(static_cast<std::size_t>(su))
      ->same_component(u, v);
}

std::vector<Vertex> RouterView::path_to_root(Vertex v) const {
  const SnapshotPtr snap = snapshot_of(v);
  return snap != nullptr ? snap->path_to_root(v) : std::vector<Vertex>{};
}

bool RouterView::is_articulation(Vertex v) const {
  const SnapshotPtr snap = snapshot_of(v);
  return snap != nullptr && snap->is_articulation(v);
}

bool RouterView::is_bridge(Vertex u, Vertex v) const {
  const int su = router_->shard_of(u);
  const int sv = router_->shard_of(v);
  if (su < 0 || su != sv) return false;
  return router_->shard_snapshot(static_cast<std::size_t>(su))->is_bridge(u, v);
}

std::vector<Edge> RouterView::bridges() const {
  std::vector<Edge> out;
  for (std::size_t s = 0; s < router_->num_shards(); ++s) {
    const auto span = router_->shard_snapshot(s)->bridges();
    out.insert(out.end(), span.begin(), span.end());
  }
  return out;
}

}  // namespace pardfs::service
