// Lexicographic ("ordered") DFS — the unique DFS tree obtained by scanning
// neighbors in increasing vertex id. The paper (§1) distinguishes the
// *ordered* DFS tree problem (P-complete, Reif [39]) from the *general* one
// it solves; this baseline exists so tests can pin down a canonical tree
// when they need one, and as a reference point in documentation/benches.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace pardfs {

// Parent array of the lexicographic DFS forest (roots = smallest alive id
// of each component).
std::vector<Vertex> ordered_dfs(const Graph& g);

}  // namespace pardfs
