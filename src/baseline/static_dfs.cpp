#include "baseline/static_dfs.hpp"

#include "util/check.hpp"

namespace pardfs {
namespace {

void dfs_tree_from(const Graph& g, Vertex root, std::vector<Vertex>& parent,
                   std::vector<std::uint8_t>& visited,
                   std::vector<std::pair<Vertex, std::size_t>>& stack) {
  visited[static_cast<std::size_t>(root)] = 1;
  stack.clear();
  stack.emplace_back(root, 0);
  while (!stack.empty()) {
    const Vertex v = stack.back().first;
    const auto nbrs = g.neighbors(v);
    std::size_t i = stack.back().second;
    Vertex child = kNullVertex;
    while (i < nbrs.size()) {
      const Vertex w = nbrs[i++];
      if (!visited[static_cast<std::size_t>(w)]) {
        child = w;
        break;
      }
    }
    stack.back().second = i;  // write back before any push (realloc safety)
    if (child != kNullVertex) {
      visited[static_cast<std::size_t>(child)] = 1;
      parent[static_cast<std::size_t>(child)] = v;
      stack.emplace_back(child, 0);
    } else {
      stack.pop_back();
    }
  }
}

}  // namespace

std::vector<Vertex> static_dfs(const Graph& g) {
  const Vertex cap = g.capacity();
  std::vector<Vertex> parent(static_cast<std::size_t>(cap), kNullVertex);
  std::vector<std::uint8_t> visited(static_cast<std::size_t>(cap), 0);
  std::vector<std::pair<Vertex, std::size_t>> stack;
  for (Vertex v = 0; v < cap; ++v) {
    if (g.is_alive(v) && !visited[static_cast<std::size_t>(v)]) {
      dfs_tree_from(g, v, parent, visited, stack);
    }
  }
  return parent;
}

std::vector<Vertex> static_dfs_from(const Graph& g, std::span<const Vertex> roots) {
  const Vertex cap = g.capacity();
  std::vector<Vertex> parent(static_cast<std::size_t>(cap), kNullVertex);
  std::vector<std::uint8_t> visited(static_cast<std::size_t>(cap), 0);
  std::vector<std::pair<Vertex, std::size_t>> stack;
  for (const Vertex r : roots) {
    PARDFS_CHECK(g.is_alive(r));
    if (!visited[static_cast<std::size_t>(r)]) {
      dfs_tree_from(g, r, parent, visited, stack);
    }
  }
  return parent;
}

}  // namespace pardfs
