// Static DFS baselines (Tarjan, paper reference [47]).
//
// `static_dfs` is the O(m + n) recompute-from-scratch comparator used by
// every benchmark: the dynamic algorithm must beat repeating this per
// update. The traversal is iterative (no recursion; graphs with 10^6
// vertices would blow the stack) and visits components in increasing
// root id, matching the library's implicit-super-root convention.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace pardfs {

// DFS forest of g: parent[v] for every alive vertex, kNullVertex for roots
// and dead slots. Neighbors are explored in adjacency-list order.
std::vector<Vertex> static_dfs(const Graph& g);

// DFS forest restricted to the given component roots (used by tests).
// Starts a tree at each vertex of `roots` that is still unvisited.
std::vector<Vertex> static_dfs_from(const Graph& g, std::span<const Vertex> roots);

}  // namespace pardfs
