#include "baseline/ordered_dfs.hpp"

#include <algorithm>

namespace pardfs {

std::vector<Vertex> ordered_dfs(const Graph& g) {
  const Vertex cap = g.capacity();
  // Sort each adjacency list once, then run the standard iterative DFS.
  std::vector<std::vector<Vertex>> sorted(static_cast<std::size_t>(cap));
  for (Vertex v = 0; v < cap; ++v) {
    if (!g.is_alive(v)) continue;
    const auto nbrs = g.neighbors(v);
    sorted[static_cast<std::size_t>(v)].assign(nbrs.begin(), nbrs.end());
    std::sort(sorted[static_cast<std::size_t>(v)].begin(),
              sorted[static_cast<std::size_t>(v)].end());
  }
  std::vector<Vertex> parent(static_cast<std::size_t>(cap), kNullVertex);
  std::vector<std::uint8_t> visited(static_cast<std::size_t>(cap), 0);
  std::vector<std::pair<Vertex, std::size_t>> stack;
  for (Vertex r = 0; r < cap; ++r) {
    if (!g.is_alive(r) || visited[static_cast<std::size_t>(r)]) continue;
    visited[static_cast<std::size_t>(r)] = 1;
    stack.clear();
    stack.emplace_back(r, 0);
    while (!stack.empty()) {
      const Vertex v = stack.back().first;
      const auto& nbrs = sorted[static_cast<std::size_t>(v)];
      std::size_t i = stack.back().second;
      Vertex child = kNullVertex;
      while (i < nbrs.size()) {
        const Vertex w = nbrs[i++];
        if (!visited[static_cast<std::size_t>(w)]) {
          child = w;
          break;
        }
      }
      stack.back().second = i;
      if (child != kNullVertex) {
        visited[static_cast<std::size_t>(child)] = 1;
        parent[static_cast<std::size_t>(child)] = v;
        stack.emplace_back(child, 0);
      } else {
        stack.pop_back();
      }
    }
  }
  return parent;
}

}  // namespace pardfs
