// Runtime-dispatched SIMD kernels and the aligned memory layout under the
// D hot path (DESIGN.md §10).
//
// The query work of the paper is dominated by O(log deg) binary searches
// over the oracle's contiguous post-order keys (probe_up/probe_down windows)
// and O(1) LCA lookups. On the 1-core CI box the available win is IPC, not
// thread scaling: this module batches 8 independent probe searches into one
// AVX2 gather loop over the shared CSR key array and backs every consumer
// with 32-byte-aligned allocations (the pSCAN idiom — SNIPPETS.md §2).
//
// Dispatch policy:
//   * kernels exist in two versions — a plain scalar loop and an AVX2 body
//     compiled via the `target("avx2")` function attribute (no global
//     -mavx2 required; the baseline-ISA build carries both);
//   * one cpuid probe at startup picks the function pointer; the
//     PARDFS_FORCE_SCALAR environment variable (or set_force_scalar(), the
//     hook used by tests and pardfs_fuzz --force-scalar) pins it to scalar;
//   * the scalar path is the pinned-identical reference: every kernel's
//     contract is defined by its scalar loop, and the vector body must
//     return the same bytes (lower_bound indices are uniquely determined,
//     so this is structural, not best-effort). Engine determinism (DESIGN.md
//     §8) therefore does not depend on the dispatch decision.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace pardfs::simd {

enum class Level : std::uint8_t { kScalar = 0, kAvx2 = 1 };

// The level query calls dispatch to right now (cpuid ∧ not forced scalar).
Level active_level();
const char* level_name(Level level);

// True iff scalar execution is pinned — by the PARDFS_FORCE_SCALAR
// environment variable (read once at startup) or by set_force_scalar().
bool scalar_forced();
// Programmatic override (tests, fuzz replay). Re-resolves the dispatch
// table; pass false to restore the cpuid decision (unless the environment
// variable still pins scalar).
void set_force_scalar(bool on);

// Alignment of every hot-path array (CSR data/posts/offsets, LCA block
// tables): one AVX2 register row, two per cache line.
inline constexpr std::size_t kAlign = 32;

template <typename T>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(::operator new(n * sizeof(T), std::align_val_t{kAlign}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{kAlign});
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

// Drop-in vector whose data() is kAlign-aligned. Identical capacity()
// semantics, so heap_capacity_bytes() accounting is unchanged.
template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

template <typename T>
bool is_aligned(const T* p) {
  return reinterpret_cast<std::uintptr_t>(p) % kAlign == 0;
}

// Read prefetch into all cache levels; no-op semantics (safe on any
// address, including one past the end of an array).
inline void prefetch(const void* p) { __builtin_prefetch(p, 0, 3); }

// Lanes per batched-kernel pass: one AVX2 register of 32-bit elements.
inline constexpr std::size_t kBatchLanes = 8;

// Batched branch-free lower_bound over `count` sorted subranges of ONE
// shared key array (the oracle's CSR `sorted_posts_`):
//   out[i] = lower_bound(keys + starts[i], keys + starts[i] + lens[i],
//                        needles[i]) - (keys + starts[i])
// Lanes are independent; the AVX2 body answers kBatchLanes of them per
// gather loop, converging in ceil(log2 max-len) iterations with no
// per-lane branches. Keys and needles must be non-negative (post-order
// indices), lens < 2^31.
void lower_bound_batch(const std::int32_t* keys, const std::uint32_t* starts,
                       const std::uint32_t* lens, const std::int32_t* needles,
                       std::uint32_t* out, std::size_t count);

}  // namespace pardfs::simd
