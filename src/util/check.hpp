// Checked assertions that stay on in release builds.
//
// The rerooting algorithm has a large number of structural invariants
// (component shapes, path monotonicity, query preconditions). Violating one
// silently would produce a subtly wrong DFS tree, so invariant checks abort
// with a message instead of being compiled out. Hot-loop-only checks use
// PARDFS_DCHECK, which compiles away in NDEBUG builds.
//
// Failure routing (DESIGN.md §13): by default a failed check aborts the
// process — for reader-side and test code a wrong answer about to escape is
// not survivable. Threads that own a recoverable failure domain (the shard
// writer and merge paths of service/shard_router) instead install
// ScopedRecoverableChecks, which turns every check failure in their frames
// into a thrown InvariantViolation; the supervision layer catches it,
// poisons the shard, and rebuilds the engine by journal replay instead of
// taking the whole service down. The flag is thread-local, so an engine
// invariant tripped by a writer thread throws while the same check tripped
// by a reader still aborts (pinned by tests/test_chaos.cpp's death test).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace pardfs {

// A structural invariant failed on a thread that opted into recoverable
// checks. Carries the formatted "expr at file:line — msg" text.
class InvariantViolation : public std::runtime_error {
 public:
  explicit InvariantViolation(std::string what)
      : std::runtime_error(std::move(what)) {}
};

namespace detail {
// Thread-local routing flag; false (abort) unless a ScopedRecoverableChecks
// is live on this thread.
inline thread_local bool g_recoverable_checks = false;
}  // namespace detail

inline bool recoverable_checks() { return detail::g_recoverable_checks; }

// RAII: while alive, check failures on this thread throw InvariantViolation
// instead of aborting. Nestable (restores the previous state).
class ScopedRecoverableChecks {
 public:
  ScopedRecoverableChecks() : prev_(detail::g_recoverable_checks) {
    detail::g_recoverable_checks = true;
  }
  ~ScopedRecoverableChecks() { detail::g_recoverable_checks = prev_; }
  ScopedRecoverableChecks(const ScopedRecoverableChecks&) = delete;
  ScopedRecoverableChecks& operator=(const ScopedRecoverableChecks&) = delete;

 private:
  bool prev_;
};

[[noreturn]] inline void check_fail(const char* expr, const char* file, int line,
                                    const char* msg) {
  if (detail::g_recoverable_checks) {
    std::string what = "pardfs: check failed: ";
    what += expr;
    what += " at ";
    what += file;
    what += ":";
    what += std::to_string(line);
    if (msg[0] != '\0') {
      what += " — ";
      what += msg;
    }
    throw InvariantViolation(std::move(what));
  }
  std::fprintf(stderr, "pardfs: check failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace pardfs

#define PARDFS_CHECK(expr)                                             \
  do {                                                                 \
    if (!(expr)) ::pardfs::check_fail(#expr, __FILE__, __LINE__, "");  \
  } while (0)

#define PARDFS_CHECK_MSG(expr, msg)                                      \
  do {                                                                   \
    if (!(expr)) ::pardfs::check_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define PARDFS_DCHECK(expr) ((void)0)
#else
#define PARDFS_DCHECK(expr) PARDFS_CHECK(expr)
#endif
