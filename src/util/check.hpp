// Checked assertions that stay on in release builds.
//
// The rerooting algorithm has a large number of structural invariants
// (component shapes, path monotonicity, query preconditions). Violating one
// silently would produce a subtly wrong DFS tree, so invariant checks abort
// with a message instead of being compiled out. Hot-loop-only checks use
// PARDFS_DCHECK, which compiles away in NDEBUG builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace pardfs {

[[noreturn]] inline void check_fail(const char* expr, const char* file, int line,
                                    const char* msg) {
  std::fprintf(stderr, "pardfs: check failed: %s at %s:%d%s%s\n", expr, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace pardfs

#define PARDFS_CHECK(expr)                                             \
  do {                                                                 \
    if (!(expr)) ::pardfs::check_fail(#expr, __FILE__, __LINE__, "");  \
  } while (0)

#define PARDFS_CHECK_MSG(expr, msg)                                      \
  do {                                                                   \
    if (!(expr)) ::pardfs::check_fail(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

#ifdef NDEBUG
#define PARDFS_DCHECK(expr) ((void)0)
#else
#define PARDFS_DCHECK(expr) PARDFS_CHECK(expr)
#endif
