#include "util/simd.hpp"

#include <atomic>
#include <cstdlib>

#if defined(__x86_64__) || defined(__i386__)
#define PARDFS_SIMD_X86 1
#include <immintrin.h>
#endif

namespace pardfs::simd {
namespace {

using LowerBoundFn = void (*)(const std::int32_t*, const std::uint32_t*,
                              const std::uint32_t*, const std::int32_t*,
                              std::uint32_t*, std::size_t);

// The reference: a branchless scalar lower_bound per lane. Every dispatched
// body must reproduce these indices exactly — lower_bound's result is the
// unique insertion point, so equality is by definition, not by luck.
void lower_bound_scalar(const std::int32_t* keys, const std::uint32_t* starts,
                        const std::uint32_t* lens, const std::int32_t* needles,
                        std::uint32_t* out, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    const std::int32_t* base = keys + starts[i];
    const std::int32_t needle = needles[i];
    std::uint32_t lo = 0;
    std::uint32_t n = lens[i];
    while (n > 0) {
      const std::uint32_t half = n >> 1;
      const std::uint32_t mid = lo + half;
      if (base[mid] < needle) {
        lo = mid + 1;
        n -= half + 1;
      } else {
        n = half;
      }
    }
    out[i] = lo;
  }
}

#if defined(PARDFS_SIMD_X86)
// Same search, 8 lanes per pass: each iteration gathers keys[start + mid]
// for every still-active lane and steps all of them with blends — no
// per-lane branch, so the loop runs ceil(log2 max-len) predictable
// iterations. The masked gather performs NO memory access for converged
// lanes (their index may point one past their subrange), and feeding the
// lane's own needle as the masked-source makes its step a no-op.
__attribute__((target("avx2"))) void lower_bound_avx2(
    const std::int32_t* keys, const std::uint32_t* starts,
    const std::uint32_t* lens, const std::int32_t* needles, std::uint32_t* out,
    std::size_t count) {
  const __m256i one = _mm256_set1_epi32(1);
  const __m256i zero = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + kBatchLanes <= count; i += kBatchLanes) {
    __m256i lo = zero;
    __m256i n =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(lens + i));
    const __m256i start =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(starts + i));
    const __m256i needle =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(needles + i));
    while (!_mm256_testz_si256(n, n)) {
      const __m256i active = _mm256_cmpgt_epi32(n, zero);
      const __m256i half = _mm256_srli_epi32(n, 1);
      const __m256i mid = _mm256_add_epi32(lo, half);
      const __m256i idx = _mm256_add_epi32(start, mid);
      const __m256i vals =
          _mm256_mask_i32gather_epi32(needle, keys, idx, active, 4);
      // lower_bound step: keys[mid] < needle ? (lo = mid+1, n -= half+1)
      //                                      : (n = half)
      const __m256i advance = _mm256_cmpgt_epi32(needle, vals);
      lo = _mm256_blendv_epi8(lo, _mm256_add_epi32(mid, one), advance);
      const __m256i n_adv =
          _mm256_sub_epi32(_mm256_sub_epi32(n, half), one);
      n = _mm256_blendv_epi8(half, n_adv, advance);
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), lo);
  }
  if (i < count) {
    lower_bound_scalar(keys, starts + i, lens + i, needles + i, out + i,
                       count - i);
  }
}
#endif  // PARDFS_SIMD_X86

bool env_force_scalar() {
  const char* v = std::getenv("PARDFS_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

bool cpu_has_avx2() {
#if defined(PARDFS_SIMD_X86)
  __builtin_cpu_init();
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

// Resolved once at startup (env + cpuid), re-resolved by set_force_scalar.
const bool g_env_force = env_force_scalar();
const bool g_cpu_avx2 = cpu_has_avx2();
std::atomic<bool> g_force_scalar{g_env_force};

LowerBoundFn resolve_lower_bound() {
#if defined(PARDFS_SIMD_X86)
  if (g_cpu_avx2 && !g_force_scalar.load(std::memory_order_relaxed)) {
    return &lower_bound_avx2;
  }
#endif
  return &lower_bound_scalar;
}

std::atomic<LowerBoundFn> g_lower_bound{resolve_lower_bound()};

}  // namespace

Level active_level() {
#if defined(PARDFS_SIMD_X86)
  if (g_cpu_avx2 && !g_force_scalar.load(std::memory_order_relaxed)) {
    return Level::kAvx2;
  }
#endif
  return Level::kScalar;
}

const char* level_name(Level level) {
  return level == Level::kAvx2 ? "avx2" : "scalar";
}

bool scalar_forced() { return g_force_scalar.load(std::memory_order_relaxed); }

void set_force_scalar(bool on) {
  // The environment pin is sticky: set_force_scalar(false) restores the
  // cpuid decision only when PARDFS_FORCE_SCALAR is not set.
  g_force_scalar.store(on || g_env_force, std::memory_order_relaxed);
  g_lower_bound.store(resolve_lower_bound(), std::memory_order_relaxed);
}

void lower_bound_batch(const std::int32_t* keys, const std::uint32_t* starts,
                       const std::uint32_t* lens, const std::int32_t* needles,
                       std::uint32_t* out, std::size_t count) {
  g_lower_bound.load(std::memory_order_relaxed)(keys, starts, lens, needles,
                                                out, count);
}

}  // namespace pardfs::simd
