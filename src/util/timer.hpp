// Wall-clock timer used by examples and ad-hoc measurements.
// Benchmarks proper use google-benchmark's timing machinery instead.
#pragma once

#include <chrono>

namespace pardfs {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }
  double micros() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace pardfs
