// Deterministic, splittable pseudo-random generator (SplitMix64 / xoshiro256**).
//
// Tests and benchmarks must be reproducible across runs and thread counts,
// so all randomness in the library flows through this engine with explicit
// seeds; nothing reads global entropy.
#pragma once

#include <cstdint>
#include <limits>

namespace pardfs {

// SplitMix64: used to seed and to split streams.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// xoshiro256** — fast, high-quality, 2^256-1 period.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) return 0;
    __uint128_t wide = static_cast<__uint128_t>((*this)()) * bound;
    return static_cast<std::uint64_t>(wide >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  bool coin(double p) { return uniform() < p; }

  // Derive an independent stream (for per-thread or per-case use).
  Rng split() {
    std::uint64_t seed = (*this)();
    return Rng(seed);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t s_[4];
};

}  // namespace pardfs
