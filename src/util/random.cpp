#include "util/random.hpp"

// Header-only engine; this translation unit exists so the target has a home
// for future out-of-line additions and to keep one .cpp per module.
namespace pardfs {}
