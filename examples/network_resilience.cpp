// Network resilience monitoring — the workload the paper's introduction
// motivates: a large evolving network where recomputing DFS-based structure
// after every change is too expensive.
//
// A service mesh of `n` routers evolves under link churn. After every
// update we keep (a) the DFS forest (via DynamicDfs, O~(1) rounds per
// update instead of an O(m+n) recompute) and (b) the articulation points
// and bridges derived from it — the single points of failure an operator
// watches. Output: churn log with resilience summary per step.
#include <cstdio>
#include <numeric>

#include "core/articulation.hpp"
#include "core/dynamic_dfs.hpp"
#include "graph/generators.hpp"
#include "tree/validation.hpp"
#include "util/random.hpp"

using namespace pardfs;

int main() {
  const Vertex n = 400;
  Rng rng(2026);
  // Backbone ring + random shortcuts: a plausible WAN topology.
  Graph g = gen::cycle(n);
  for (int shortcuts = 0; shortcuts < n / 4;) {
    const auto u = static_cast<Vertex>(rng.below(n));
    const auto v = static_cast<Vertex>(rng.below(n));
    if (u != v && g.add_edge(u, v)) ++shortcuts;
  }

  DynamicDfs dfs(g);
  std::printf("monitoring %d routers, %lld links\n", n,
              static_cast<long long>(dfs.graph().num_edges()));

  std::uint64_t total_rounds = 0;
  for (int step = 0; step < 50; ++step) {
    gen::Update u;
    if (!gen::random_update(dfs.graph(), rng, 1.0, 1.2, 0.0, 0.05, u)) break;
    const char* what = "";
    switch (u.kind) {
      case gen::UpdateKind::kInsertEdge:
        dfs.insert_edge(u.u, u.v);
        what = "link up  ";
        break;
      case gen::UpdateKind::kDeleteEdge:
        dfs.delete_edge(u.u, u.v);
        what = "link down";
        break;
      case gen::UpdateKind::kDeleteVertex:
        dfs.delete_vertex(u.u);
        what = "node down";
        break;
      case gen::UpdateKind::kInsertVertex:
        dfs.insert_vertex(u.neighbors);
        what = "node up  ";
        break;
    }
    total_rounds += dfs.last_stats().global_rounds;

    const CutStructure cuts = find_cuts(dfs.graph(), dfs.parent());
    const int articulation_count = static_cast<int>(
        std::accumulate(cuts.is_articulation.begin(), cuts.is_articulation.end(), 0));
    int components = 0;
    for (Vertex v = 0; v < dfs.graph().capacity(); ++v) {
      if (dfs.graph().is_alive(v) && dfs.parent_of(v) == kNullVertex) ++components;
    }
    std::printf(
        "step %2d: %s (%3d,%3d) | components %2d | articulation points %3d | "
        "bridges %3zu | reroot rounds %llu\n",
        step, what, u.u, u.v, components, articulation_count, cuts.bridges.size(),
        static_cast<unsigned long long>(dfs.last_stats().global_rounds));

    const auto check = validate_dfs_forest(dfs.graph(), dfs.parent());
    if (!check.ok) {
      std::printf("INVALID FOREST: %s\n", check.reason.c_str());
      return 1;
    }
  }
  std::printf("\ntotal engine rounds over the run: %llu (vs ~%lld edges scanned "
              "per static recompute)\n",
              static_cast<unsigned long long>(total_rounds),
              static_cast<long long>(dfs.graph().num_edges()));
  return 0;
}
