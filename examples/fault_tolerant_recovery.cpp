// Fault-tolerant recovery drill (paper Theorem 14).
//
// A data-center spine-leaf fabric is preprocessed ONCE (building the O(m)
// data structure D). Afterwards, arbitrary k-failure scenarios — "these
// links and switches just died" — are answered without touching D: the DFS
// forest of the surviving fabric is produced per scenario, and with it the
// connectivity/articulation picture the recovery planner needs.
#include <cstdio>
#include <vector>

#include "core/fault_tolerant.hpp"
#include "graph/graph.hpp"
#include "tree/validation.hpp"
#include "util/random.hpp"

using namespace pardfs;

namespace {

// 2-tier Clos: `spines` top switches fully meshed to `leaves` switches,
// each leaf with `hosts` hosts.
Graph clos_fabric(Vertex spines, Vertex leaves, Vertex hosts) {
  Graph g(spines + leaves + leaves * hosts);
  for (Vertex s = 0; s < spines; ++s) {
    for (Vertex l = 0; l < leaves; ++l) g.add_edge(s, spines + l);
  }
  Vertex next = spines + leaves;
  for (Vertex l = 0; l < leaves; ++l) {
    for (Vertex h = 0; h < hosts; ++h) g.add_edge(spines + l, next++);
  }
  return g;
}

int count_components(std::span<const Vertex> parent, const Graph& g) {
  int roots = 0;
  for (Vertex v = 0; v < g.capacity(); ++v) {
    if (g.is_alive(v) && parent[static_cast<std::size_t>(v)] == kNullVertex) ++roots;
  }
  return roots;
}

}  // namespace

int main() {
  const Vertex spines = 4, leaves = 16, hosts = 24;
  Graph fabric = clos_fabric(spines, leaves, hosts);
  std::printf("fabric: %d switches+hosts, %lld links; preprocessing D once...\n",
              fabric.num_vertices(), static_cast<long long>(fabric.num_edges()));
  FaultTolerantDfs ft(fabric);

  Rng rng(7);
  const struct {
    const char* name;
    std::vector<GraphUpdate> batch;
  } scenarios[] = {
      {"single uplink cut", {GraphUpdate::delete_edge(0, spines + 3)}},
      {"spine 0 dies", {GraphUpdate::delete_vertex(0)}},
      {"leaf 5 dies + a spare spine-link appears",
       {GraphUpdate::delete_vertex(spines + 5),
        GraphUpdate::insert_edge(1, 2)}},
      {"rolling maintenance: 3 uplinks then a replacement leaf",
       {GraphUpdate::delete_edge(1, spines + 0), GraphUpdate::delete_edge(2, spines + 0),
        GraphUpdate::delete_edge(3, spines + 0),
        GraphUpdate::insert_vertex({0, 1, 2, 3})}},
      {"double spine failure", {GraphUpdate::delete_vertex(2), GraphUpdate::delete_vertex(3)}},
  };

  for (const auto& sc : scenarios) {
    const auto parent = ft.apply(sc.batch);
    const auto check = validate_dfs_forest(ft.graph(), parent);
    const int comps = count_components(parent, ft.graph());
    std::printf("scenario '%s': k=%zu updates -> %d component(s), forest %s, "
                "reroot rounds %llu, D untouched (patches only: %zu)\n",
                sc.name, sc.batch.size(), comps, check.ok ? "valid" : "INVALID",
                static_cast<unsigned long long>(ft.last_stats().global_rounds),
                ft.graph().capacity() >= 0 ? ft.updates_applied() : 0);
    if (!check.ok) {
      std::printf("  reason: %s\n", check.reason.c_str());
      return 1;
    }
  }
  std::printf("\nall scenarios answered from one preprocessing pass.\n");
  return 0;
}
