// Serving DFS queries while the graph churns.
//
//   $ example_service_demo
//
// Starts a DfsService over a Barabási–Albert social graph, runs four reader
// threads answering ancestry/connectivity queries against immutable
// snapshots, and streams the social-mix workload through the MPSC queue.
// Prints the serving stats at the end: how the writer coalesced concurrent
// updates into batches and how few O(n) rebuilds those batches cost.
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "service/dfs_service.hpp"
#include "service/workload.hpp"
#include "tree/validation.hpp"
#include "util/random.hpp"

using namespace pardfs;
using namespace pardfs::service;

int main() {
  const WorkloadSpec spec{Scenario::kSocialMix, 2000, 1};
  WorkloadDriver driver(spec);
  DfsService svc(make_initial_graph(spec));
  std::printf("serving a %s graph: %d vertices, %lld edges\n",
              scenario_name(spec.scenario), svc.snapshot()->num_vertices(),
              static_cast<long long>(svc.snapshot()->num_edges()));

  // Four readers answer queries against whatever snapshot is current.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> queries{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(100 + r);
      std::uint64_t sink = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const SnapshotPtr snap = svc.snapshot();
        for (int q = 0; q < 128; ++q) {
          const Vertex u = static_cast<Vertex>(rng.below(snap->capacity()));
          const Vertex v = static_cast<Vertex>(rng.below(snap->capacity()));
          sink += snap->same_component(u, v) ? 1 : 0;
          sink += static_cast<std::uint64_t>(snap->lca(u, v));
        }
        queries.fetch_add(256, std::memory_order_relaxed);
      }
      volatile std::uint64_t discard = sink;
      (void)discard;
    });
  }

  // One producer streams 2000 updates without waiting on each ack, so the
  // writer coalesces whatever accumulates while the previous batch applies;
  // every 256 updates it syncs on the latest ticket.
  std::uint64_t last_version = 0;
  std::vector<UpdateTicket> tickets;
  tickets.reserve(2000);
  for (int i = 0; i < 2000; ++i) {
    tickets.push_back(svc.submit(driver.next()));
    if (i % 256 == 255) last_version = tickets.back().wait();
  }
  for (const UpdateTicket& t : tickets) last_version = t.wait();
  stop.store(true);
  for (auto& t : readers) t.join();
  svc.stop();

  const ServiceStats stats = svc.stats();
  const SnapshotPtr final_snap = svc.snapshot();
  std::printf("final snapshot: version %llu, %d vertices, %lld edges\n",
              static_cast<unsigned long long>(final_snap->version()),
              final_snap->num_vertices(),
              static_cast<long long>(final_snap->num_edges()));
  std::printf("reads answered while updating: %llu\n",
              static_cast<unsigned long long>(queries.load()));
  std::printf("updates: %llu applied (%llu structural, %llu back-edge patches)\n",
              static_cast<unsigned long long>(stats.updates_applied),
              static_cast<unsigned long long>(stats.structural),
              static_cast<unsigned long long>(stats.back_edges));
  std::printf("batches: %llu (largest %llu), index rebuilds %llu => %.2f per update\n",
              static_cast<unsigned long long>(stats.batches),
              static_cast<unsigned long long>(stats.max_batch),
              static_cast<unsigned long long>(stats.index_rebuilds),
              static_cast<double>(stats.index_rebuilds) /
                  static_cast<double>(stats.updates_applied));
  const auto val = validate_dfs_forest(svc.core().graph(), svc.core().parent());
  std::printf("final forest valid: %s (last ack version %llu)\n",
              val.ok ? "yes" : val.reason.c_str(),
              static_cast<unsigned long long>(last_version));
  return val.ok ? 0 : 1;
}
