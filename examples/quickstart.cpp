// Quickstart: maintain a DFS forest of an undirected graph under updates.
//
//   $ example_quickstart
//
// Builds a small graph, applies each update kind once, and prints the DFS
// forest after every step together with the per-update statistics the
// library exposes (engine rounds ~ the paper's O(log^3 n) bound).
#include <cstdio>

#include "core/dynamic_dfs.hpp"
#include "graph/graph.hpp"
#include "tree/validation.hpp"

using namespace pardfs;

namespace {

void print_forest(const DynamicDfs& dfs, const char* heading) {
  std::printf("%s\n", heading);
  for (Vertex v = 0; v < dfs.graph().capacity(); ++v) {
    if (!dfs.graph().is_alive(v)) continue;
    const Vertex p = dfs.parent_of(v);
    if (p == kNullVertex) {
      std::printf("  %d is a root\n", v);
    } else {
      std::printf("  %d -> parent %d\n", v, p);
    }
  }
  const auto check = validate_dfs_forest(dfs.graph(), dfs.parent());
  std::printf("  valid DFS forest: %s\n", check.ok ? "yes" : check.reason.c_str());
  std::printf("  last update: %llu engine rounds, %llu query sets\n\n",
              static_cast<unsigned long long>(dfs.last_stats().global_rounds),
              static_cast<unsigned long long>(dfs.last_stats().query_batches));
}

}  // namespace

int main() {
  // A 6-cycle with a chord.
  Graph g(6);
  for (Vertex v = 0; v < 6; ++v) g.add_edge(v, (v + 1) % 6);
  g.add_edge(0, 3);

  DynamicDfs dfs(g);
  print_forest(dfs, "initial tree");

  dfs.delete_edge(2, 3);
  print_forest(dfs, "after deleting edge (2,3)");

  dfs.insert_edge(1, 4);
  print_forest(dfs, "after inserting edge (1,4)");

  const Vertex nbrs[] = {0, 2, 4};
  const Vertex v = dfs.insert_vertex(nbrs);
  std::printf("inserted vertex %d with neighbors {0,2,4}\n", v);
  print_forest(dfs, "after the vertex insertion");

  dfs.delete_vertex(5);
  print_forest(dfs, "after deleting vertex 5");

  return 0;
}
