// Distributed demo (paper Theorem 16): maintaining a DFS tree of a network
// inside the network itself, in the synchronous CONGEST(n/D) model. Shows
// rounds/messages per update on two topologies with very different
// diameters — rounds track D·log^2 n, not n.
#include <cstdio>

#include "dist/distributed_dfs.hpp"
#include "graph/generators.hpp"
#include "tree/validation.hpp"
#include "util/random.hpp"

using namespace pardfs;

namespace {

void run(const char* name, Graph g, Rng& rng) {
  dist::DistributedDfs dd(std::move(g));
  std::printf("%s: n=%d, m=%lld, B=%d words/message\n", name,
              dd.graph().num_vertices(),
              static_cast<long long>(dd.graph().num_edges()), dd.message_words());
  for (int step = 0; step < 5; ++step) {
    gen::Update u;
    if (!gen::random_update(dd.graph(), rng, 1, 1, 0, 0, u)) break;
    const GraphUpdate gu = u.kind == gen::UpdateKind::kInsertEdge
                               ? GraphUpdate::insert_edge(u.u, u.v)
                               : GraphUpdate::delete_edge(u.u, u.v);
    dd.apply(gu);
    const auto& c = dd.last_cost();
    const auto check = validate_dfs_forest(dd.graph(), dd.parent());
    std::printf("  update %d: rounds %6llu  messages %8llu  query sets %3llu  "
                "BFS height %3d  [%s]\n",
                step, static_cast<unsigned long long>(c.rounds),
                static_cast<unsigned long long>(c.messages),
                static_cast<unsigned long long>(c.query_sets), c.bfs_height,
                check.ok ? "valid" : check.reason.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  Rng rng(555);
  run("expander-ish gnm (diameter ~4)", gen::gnm(1024, 6 * 1024, rng), rng);
  run("32x32 grid (diameter 62)", gen::grid(32, 32), rng);
  Graph ring = gen::cycle(1024);
  run("1024-ring (diameter 512)", std::move(ring), rng);
  return 0;
}
