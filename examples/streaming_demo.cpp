// Semi-streaming demo (paper Theorem 15): the graph lives in an edge
// stream; per update the DFS tree is repaired using O(log^2 n) passes
// instead of the O(n) passes a from-scratch streaming DFS construction
// needs. Prints the pass ledger per update.
#include <cstdio>

#include "graph/generators.hpp"
#include "stream/streaming_dfs.hpp"
#include "tree/validation.hpp"
#include "util/random.hpp"

using namespace pardfs;

int main() {
  const Vertex n = 2000;
  Rng rng(99);
  Graph g = gen::random_connected(n, 3 * n, rng);
  stream::EdgeStream es(g.edges());
  stream::StreamingDfs sd(es, n);
  std::printf("graph in stream: %d vertices, %zu edges\n", n, es.size());
  std::printf("static build charged: %llu passes (the O(n) bound the dynamic "
              "algorithm avoids)\n\n",
              static_cast<unsigned long long>(sd.static_build_passes()));

  for (int step = 0; step < 12; ++step) {
    gen::Update u;
    if (!gen::random_update(sd.graph(), rng, 1, 1, 0, 0, u)) break;
    const GraphUpdate gu = u.kind == gen::UpdateKind::kInsertEdge
                               ? GraphUpdate::insert_edge(u.u, u.v)
                               : GraphUpdate::delete_edge(u.u, u.v);
    sd.apply(gu);
    const auto check = validate_dfs_forest(sd.graph(), sd.parent());
    std::printf("update %2d (%s %4d-%4d): %3llu passes   [forest %s]\n", step,
                u.kind == gen::UpdateKind::kInsertEdge ? "insert" : "delete", u.u,
                u.v, static_cast<unsigned long long>(sd.passes_last_update()),
                check.ok ? "valid" : check.reason.c_str());
  }
  std::printf("\ntotal update passes: %llu  (log2(n)^2 = %.0f for reference)\n",
              static_cast<unsigned long long>(sd.passes_total()),
              11.0 * 11.0);
  return 0;
}
