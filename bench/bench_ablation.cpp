// Experiment E8 (ablation): the paper's phase/stage machinery vs. the
// sequential "always climb to the root" rerooting of Baswana et al. [6].
// On broom graphs the sequential strategy needs Θ(#bristles) rounds while
// the paper strategy stays polylog — the core speedup this paper delivers.
#include <benchmark/benchmark.h>

#include "baseline/static_dfs.hpp"
#include "core/adjacency_oracle.hpp"
#include "core/rerooter.hpp"
#include "graph/generators.hpp"
#include "tree/tree_index.hpp"
#include "util/random.hpp"

using namespace pardfs;

namespace {

void run_strategy(benchmark::State& state, RerootStrategy strategy, int family) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  Rng rng(81);
  Graph g = [&]() -> Graph {
    switch (family) {
      case 0: return gen::path(n);
      case 1: return gen::hairy_path(n / 4, 3);
      default: return gen::random_connected(n, 2 * static_cast<std::int64_t>(n), rng);
    }
  }();
  const auto parent = static_dfs(g);
  TreeIndex index;
  index.build(parent);
  AdjacencyOracle oracle;
  oracle.build(g, index);
  const OracleView view(&oracle, &index, true);
  // Reroot at the middle: the worst case for the sequential strategy (each
  // l-traversal peels one vertex off a long dangling path -> Θ(n) dependent
  // rounds; the paper's machinery halves the structure every O(1) rounds).
  const Vertex new_root = g.capacity() / 2;

  std::uint64_t rounds = 0, runs = 0;
  for (auto _ : state) {
    std::vector<Vertex> out(parent.begin(), parent.end());
    Rerooter engine(index, view, strategy);
    const RerootRequest reqs[] = {{index.root_of(new_root), new_root, kNullVertex}};
    const RerootStats s = engine.run(reqs, out);
    rounds += s.global_rounds;
    ++runs;
    benchmark::DoNotOptimize(out);
  }
  state.counters["rounds/reroot"] =
      benchmark::Counter(static_cast<double>(rounds) / runs);
  state.counters["n"] = benchmark::Counter(n);
}

void BM_PaperStrategy_Path(benchmark::State& state) {
  run_strategy(state, RerootStrategy::kPaper, 0);
}
void BM_SequentialL_Path(benchmark::State& state) {
  run_strategy(state, RerootStrategy::kSequentialL, 0);
}
void BM_PaperStrategy_Hairy(benchmark::State& state) {
  run_strategy(state, RerootStrategy::kPaper, 1);
}
void BM_SequentialL_Hairy(benchmark::State& state) {
  run_strategy(state, RerootStrategy::kSequentialL, 1);
}
void BM_PaperStrategy_Random(benchmark::State& state) {
  run_strategy(state, RerootStrategy::kPaper, 2);
}
void BM_SequentialL_Random(benchmark::State& state) {
  run_strategy(state, RerootStrategy::kSequentialL, 2);
}

BENCHMARK(BM_PaperStrategy_Path)->RangeMultiplier(4)->Range(1 << 10, 1 << 14)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SequentialL_Path)->RangeMultiplier(4)->Range(1 << 10, 1 << 14)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PaperStrategy_Hairy)->RangeMultiplier(4)->Range(1 << 10, 1 << 14)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SequentialL_Hairy)->RangeMultiplier(4)->Range(1 << 10, 1 << 14)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_PaperStrategy_Random)->RangeMultiplier(4)->Range(1 << 10, 1 << 14)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_SequentialL_Random)->RangeMultiplier(4)->Range(1 << 10, 1 << 14)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
