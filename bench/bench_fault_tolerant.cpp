// Experiment E3 (Theorem 14): fault-tolerant k-update batches on a fixed
// preprocessed structure. Time and rounds grow with k (the paper's bound is
// O(k log^{2k+1} n) worst case — geometric in k), while the preprocessing
// (D) is never repeated: the counter `patches` shows the only state carried
// between updates.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/fault_tolerant.hpp"
#include "graph/generators.hpp"
#include "util/random.hpp"

using namespace pardfs;

namespace {

void BM_FaultTolerantBatch(benchmark::State& state) {
  const Vertex n = 1 << 12;
  const int k = static_cast<int>(state.range(0));
  Rng rng(3);
  Graph g = gen::random_connected(n, 4 * static_cast<std::int64_t>(n), rng);
  FaultTolerantDfs ft(g);

  // Pre-generate many feasible k-batches.
  std::vector<std::vector<GraphUpdate>> batches;
  for (int b = 0; b < 16; ++b) {
    const auto stream = benchutil::make_update_stream(
        g, k, 1000 + static_cast<std::uint64_t>(b), 1, 1, 0.3, 0.3);
    std::vector<GraphUpdate> batch;
    for (const auto& u : stream) batch.push_back(benchutil::to_graph_update(u));
    batches.push_back(std::move(batch));
  }

  std::size_t i = 0;
  std::uint64_t rounds = 0, applications = 0;
  for (auto _ : state) {
    const auto& batch = batches[i++ % batches.size()];
    benchmark::DoNotOptimize(ft.apply(batch));
    rounds += ft.last_stats().global_rounds;
    ++applications;
  }
  state.counters["k"] = benchmark::Counter(k);
  state.counters["rounds_last_update"] =
      benchmark::Counter(static_cast<double>(rounds) / applications);
}
BENCHMARK(BM_FaultTolerantBatch)->DenseRange(1, 8)->Unit(benchmark::kMicrosecond);

// The k=1 case doubles as the sequential-machine comparison the paper's
// remark makes (O(n log^3 n) sequential update vs. O(m) recompute): only
// the incremental update is timed; the batch reset (a graph copy) is not
// part of the claim and runs outside the timer.
void BM_FaultTolerantSingleVsN(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  Rng rng(4);
  Graph g = gen::random_connected(n, 4 * static_cast<std::int64_t>(n), rng);
  FaultTolerantDfs ft(g);
  const auto edges = g.edges();
  std::size_t i = 0;
  for (auto _ : state) {
    state.PauseTiming();
    ft.reset();
    const Edge e = edges[i++ % edges.size()];
    state.ResumeTiming();
    ft.apply_incremental(GraphUpdate::delete_edge(e.u, e.v));
  }
  state.counters["n"] = benchmark::Counter(n);
  state.counters["m"] = benchmark::Counter(static_cast<double>(g.num_edges()));
}
BENCHMARK(BM_FaultTolerantSingleVsN)->RangeMultiplier(2)->Range(1 << 10, 1 << 14)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
