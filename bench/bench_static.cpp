// Experiment E6: static baselines. Tarjan's O(m+n) DFS (the recompute
// comparator of E1) and the lexicographic ordered DFS, across densities.
// Crossover claim: per-update maintenance (E1) beats one recompute as soon
// as m is large, because recompute is Θ(m) while maintenance touches
// O~(changed structure).
#include <benchmark/benchmark.h>

#include "baseline/ordered_dfs.hpp"
#include "baseline/static_dfs.hpp"
#include "graph/generators.hpp"
#include "util/random.hpp"

using namespace pardfs;

namespace {

void BM_TarjanDfs(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const std::int64_t avg_deg = state.range(1);
  Rng rng(61);
  Graph g = gen::random_connected(n, avg_deg * static_cast<std::int64_t>(n) / 2, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(static_dfs(g));
  }
  state.counters["n"] = benchmark::Counter(n);
  state.counters["m"] = benchmark::Counter(static_cast<double>(g.num_edges()));
  state.SetComplexityN(static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_TarjanDfs)
    ->ArgsProduct({{1 << 10, 1 << 13, 1 << 16}, {4, 16}})
    ->Unit(benchmark::kMicrosecond)
    ->Complexity(benchmark::oN);

void BM_OrderedDfs(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  Rng rng(62);
  Graph g = gen::random_connected(n, 4 * static_cast<std::int64_t>(n), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ordered_dfs(g));
  }
  state.counters["n"] = benchmark::Counter(n);
}
BENCHMARK(BM_OrderedDfs)->RangeMultiplier(8)->Range(1 << 10, 1 << 16)
    ->Unit(benchmark::kMicrosecond);

void BM_TarjanOnFamilies(benchmark::State& state) {
  const int family = static_cast<int>(state.range(0));
  const Vertex n = 1 << 14;
  Rng rng(63);
  Graph g = [&]() -> Graph {
    switch (family) {
      case 0: return gen::path(n);
      case 1: return gen::star(n);
      case 2: return gen::binary_tree(n);
      case 3: return gen::grid(128, 128);
      default: return gen::gnm(n, 4 * static_cast<std::int64_t>(n), rng);
    }
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(static_dfs(g));
  }
  state.SetLabel(family == 0   ? "path"
                 : family == 1 ? "star"
                 : family == 2 ? "binary_tree"
                 : family == 3 ? "grid"
                              : "gnm");
}
BENCHMARK(BM_TarjanOnFamilies)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

}  // namespace
