#!/usr/bin/env bash
# Build (Release) and run the perf-trajectory benchmarks, emitting
# machine-readable results next to the repo root:
#   BENCH_update.json      — E1, per-update cost (bench_update)
#   BENCH_preprocess.json  — E2a, D + tree-index build (bench_preprocess)
#   BENCH_service.json     — E-service, snapshot-serving layer: read QPS vs
#                            reader threads, ack latency p50/p99, writer
#                            coalescing (bench_service)
#   BENCH_parallel.json    — E12, engine thread scaling: batch-update latency
#                            at 1/2/4/8 workers on adversarial_star and
#                            social_mix (bench_parallel)
#   BENCH_oracle.json      — E15, SIMD probe hot path: batched dispatched
#                            probes vs the scalar single-probe reference,
#                            aligned-CSR rebuild reuse (bench_oracle)
#
# Usage: bench/run_bench.sh [--smoke] [build-dir] [min-time-seconds]
#   build-dir defaults to <repo>/build-bench; min-time to 0.1 (raise for
#   stable numbers, lower for a CI smoke run).
#   --smoke additionally runs a quick pardfs_fuzz soak against the Release
#   build (and proves the corruption hook still fails loudly), so the bench
#   toolchain and the fuzz gauntlet are exercised by one CI invocation.
set -euo pipefail

SMOKE=0
ARGS=()
for arg in "$@"; do
  if [[ "$arg" == "--smoke" ]]; then SMOKE=1; else ARGS+=("$arg"); fi
done

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${ARGS[0]:-$ROOT/build-bench}"
MIN_TIME="${ARGS[1]:-0.1}"

cmake -B "$BUILD" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release \
  -DPARDFS_BUILD_BENCH=ON -DPARDFS_BUILD_TESTS=OFF -DPARDFS_BUILD_EXAMPLES=OFF
cmake --build "$BUILD" -j "$(nproc)"

if [[ "$SMOKE" == 1 ]]; then
  # Quick fuzz soak: 4 seeds x {random, power_law, grid, dynamic_map} x
  # {core, service, sharded}, differential-checked per batch (the sharded
  # entry byte-compares an S-shard router against a 1-shard reference).
  # Then the self-test: an injected corruption must make the harness fail
  # (exit 1), or the oracle has gone blind.
  "$BUILD/tools/pardfs_fuzz" --soak=4 --batches=8
  # One deeper sharded leg at 16 shards (the acceptance shard count).
  "$BUILD/tools/pardfs_fuzz" --entry=sharded --shards=16 --batches=12
  # One leg with SIMD dispatch pinned to the scalar reference: the engine
  # must be byte-identical either way, so this catches any divergence the
  # unit differentials missed.
  "$BUILD/tools/pardfs_fuzz" --soak=2 --batches=8 --force-scalar
  if "$BUILD/tools/pardfs_fuzz" --seed=1 --scenario=grid --entry=service \
      --batches=4 --corrupt-at=2 > /dev/null 2>&1; then
    echo "fuzz corruption self-test FAILED: injected corruption not caught" >&2
    exit 1
  fi
  echo "fuzz smoke soak passed"
fi

"$BUILD/bench/bench_update" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_out_format=json --benchmark_out="$ROOT/BENCH_update.json"
# Ratio guard: the dynamic update path must stay >= 1.3x faster than the
# static recompute at n = 2^15 (the epoch-tax regression tripwire).
python3 "$ROOT/bench/check_update_ratio.py" "$ROOT/BENCH_update.json" --min-ratio 1.3

# Observability overhead gate: BM_DynamicUpdate/32768 from the instrumented
# build vs a twin -DPARDFS_NO_METRICS=ON build, medians of 5 repetitions;
# the metrics hot path may cost at most 3% (DESIGN.md §11 budget).
cmake -B "$BUILD-nometrics" -S "$ROOT" -DCMAKE_BUILD_TYPE=Release \
  -DPARDFS_NO_METRICS=ON \
  -DPARDFS_BUILD_BENCH=ON -DPARDFS_BUILD_TESTS=OFF -DPARDFS_BUILD_EXAMPLES=OFF
cmake --build "$BUILD-nometrics" -j "$(nproc)" --target bench_update
"$BUILD/bench/bench_update" \
  --benchmark_filter='^BM_DynamicUpdate/32768$' \
  --benchmark_min_time="$MIN_TIME" --benchmark_repetitions=5 \
  --benchmark_out_format=json --benchmark_out="$ROOT/BENCH_update_obsgate.json"
"$BUILD-nometrics/bench/bench_update" \
  --benchmark_filter='^BM_DynamicUpdate/32768$' \
  --benchmark_min_time="$MIN_TIME" --benchmark_repetitions=5 \
  --benchmark_out_format=json --benchmark_out="$ROOT/BENCH_update_nometrics.json"
python3 "$ROOT/bench/check_obs_overhead.py" \
  "$ROOT/BENCH_update_obsgate.json" "$ROOT/BENCH_update_nometrics.json"
"$BUILD/bench/bench_preprocess" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_out_format=json --benchmark_out="$ROOT/BENCH_preprocess.json"
# PARDFS_OBS_DUMP_DIR makes bench_service also drop the obs registry page
# (BENCH_service_metrics.prom) and the phase trace (BENCH_service_trace.json,
# loadable at chrome://tracing) next to the bench JSON.
PARDFS_OBS_DUMP_DIR="$ROOT" "$BUILD/bench/bench_service" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_out_format=json --benchmark_out="$ROOT/BENCH_service.json"
# Scaling guard: 4 shards must serve >= 1.5x the 1-shard read QPS with 4
# readers (skips with a warning on < 4-CPU machines).
python3 "$ROOT/bench/check_shard_scaling.py" "$ROOT/BENCH_service.json" \
  --shards 4 --readers 4 --min-ratio 1.5
# Failover guard (E18): p99 journal-replay recovery latency must stay under
# 10x the steady-state batch-cycle p99 at 4 shards, n = 2^15.
python3 "$ROOT/bench/check_recovery.py" "$ROOT/BENCH_service.json" \
  --shards 4 --max-ratio 10.0
"$BUILD/bench/bench_parallel" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_out_format=json --benchmark_out="$ROOT/BENCH_parallel.json"
"$BUILD/bench/bench_oracle" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_out_format=json --benchmark_out="$ROOT/BENCH_oracle.json"
# Ratio guard: batched dispatched probes must stay >= 1.3x faster than the
# scalar single-probe reference at n = 2^15 (warns and skips on machines
# without AVX2 — see check_probe_ratio.py).
python3 "$ROOT/bench/check_probe_ratio.py" "$ROOT/BENCH_oracle.json" --min-ratio 1.3

echo "wrote $ROOT/BENCH_update.json, $ROOT/BENCH_preprocess.json," \
     "$ROOT/BENCH_service.json (+ _metrics.prom, _trace.json)," \
     "$ROOT/BENCH_parallel.json, $ROOT/BENCH_oracle.json and" \
     "$ROOT/BENCH_update_nometrics.json"
