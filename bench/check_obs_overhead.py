#!/usr/bin/env python3
"""Observability overhead gate: fail if the metrics hot path costs > 3%.

Reads two google-benchmark JSON files for the same bench_update run — one
from the normal build (metrics compiled in and enabled) and one from a twin
-DPARDFS_NO_METRICS=ON build — and compares BM_DynamicUpdate/<n> per-update
wall time. The instrumented build may be at most --max-overhead (default
0.03 = 3%) slower; anything beyond that means a recording path grew a lock,
a syscall, or a clock read it must not have (DESIGN.md §11 budget).

When the files carry repetition aggregates, the median is compared (run with
--benchmark_repetitions=N to get one); otherwise the single iteration mean.

Usage: check_obs_overhead.py BENCH_update.json BENCH_update_nometrics.json
       [--n 32768] [--max-overhead 0.03]
"""
import argparse
import json
import sys


def real_time_us(bench):
    t = bench["real_time"]
    unit = bench.get("time_unit", "ns")
    scale = {"ns": 1e-3, "us": 1.0, "ms": 1e3, "s": 1e6}[unit]
    return t * scale


def benchmark_time(path, name):
    """Median-of-repetitions if present, else the plain iteration entry."""
    with open(path) as f:
        data = json.load(f)
    median = plain = None
    for b in data.get("benchmarks", []):
        if b.get("run_name", b["name"]) != name:
            continue
        if b.get("aggregate_name") == "median":
            median = real_time_us(b)
        elif b.get("run_type") != "aggregate":
            plain = real_time_us(b)
    return median if median is not None else plain


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("metrics_json")
    ap.add_argument("nometrics_json")
    ap.add_argument("--n", type=int, default=32768)
    ap.add_argument("--max-overhead", type=float, default=0.03)
    args = ap.parse_args()

    name = f"BM_DynamicUpdate/{args.n}"
    with_metrics = benchmark_time(args.metrics_json, name)
    without = benchmark_time(args.nometrics_json, name)
    if with_metrics is None or without is None:
        print(
            f"check_obs_overhead: missing {name} in "
            f"{args.metrics_json if with_metrics is None else args.nometrics_json}",
            file=sys.stderr,
        )
        return 2

    overhead = with_metrics / without - 1.0
    print(
        f"check_obs_overhead: metrics {with_metrics:.1f}us / "
        f"no-metrics {without:.1f}us = {overhead * 100.0:+.2f}% "
        f"(allowed <= {args.max_overhead * 100.0:.1f}%)"
    )
    if overhead > args.max_overhead:
        print(
            "check_obs_overhead: FAIL — the observability hot path got "
            f"expensive ({overhead * 100.0:.2f}% > "
            f"{args.max_overhead * 100.0:.1f}%)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
