#!/usr/bin/env python3
"""Bench-smoke recovery guard: fail if failover stops being cheap.

Reads a google-benchmark JSON file (BENCH_service.json) and asserts that
BM_ShardRecovery's p99 journal-replay recovery latency stays below
--max-ratio times its own steady-state batch-cycle p99 at the same shard
count (n = 2^15; see EXPERIMENTS.md E18). Recovery is detect + join +
replay + republish + respawn; a batch cycle is the turnaround of one
pipelined 64-update client burst, so the gate reads "a failover stalls its
shard for less than 10 steady batch cycles". If that drifts toward "an
outage", this guard trips before a client notices.

The counters come straight from the benchmark: recovery_p99_us is the
registry's pardfs_recovery_latency_us histogram, steady_batch_p99_us is
timed client-side around each burst. A run that injected no recoveries
(counter zero) is a configuration bug and fails loudly.

Usage: check_recovery.py BENCH_service.json [--shards 4] [--max-ratio 10.0]
"""
import argparse
import json
import sys


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("json_path")
    ap.add_argument("--shards", type=int, default=4)
    ap.add_argument("--max-ratio", type=float, default=10.0)
    args = ap.parse_args()

    with open(args.json_path) as f:
        data = json.load(f)

    name = f"BM_ShardRecovery/{args.shards}/iterations:1/real_time"
    bench = None
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        if b["name"] == name:
            bench = b
            break
    if bench is None:
        print(
            f"check_recovery: missing {name} in {args.json_path}",
            file=sys.stderr,
        )
        return 2

    recoveries = bench.get("recoveries", 0.0)
    rec_p99 = bench.get("recovery_p99_us")
    batch_p99 = bench.get("steady_batch_p99_us")
    if not recoveries or rec_p99 is None or batch_p99 is None:
        print(
            f"check_recovery: {name} injected no recoveries or exported no "
            f"percentiles (recoveries={recoveries}, recovery_p99_us={rec_p99}, "
            f"steady_batch_p99_us={batch_p99})",
            file=sys.stderr,
        )
        return 2

    if batch_p99 <= 0:
        print(
            "check_recovery: steady-state batch p99 is zero — metrics compiled "
            "out or clock broken",
            file=sys.stderr,
        )
        return 2

    ratio = rec_p99 / batch_p99
    print(
        f"check_recovery: {args.shards}-shard recovery p99 {rec_p99:.0f}us / "
        f"steady batch p99 {batch_p99:.0f}us = {ratio:.2f}x "
        f"(required < {args.max_ratio:.1f}x, {recoveries:.0f} recoveries)"
    )
    if ratio >= args.max_ratio:
        print(
            f"check_recovery: FAIL — journal-replay failover too slow "
            f"(ratio {ratio:.2f} >= {args.max_ratio:.1f})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
