// Experiment E10 (extension; the paper's closing open question): how much
// of the per-update cost is the D rebuild, and what a rebuild-every-k
// policy buys. period=1 ~ DynamicDfs (rebuild always); larger periods
// amortize the Θ(m log n) rebuild across updates at the price of deeper
// query decompositions (Theorem 9's O(log^{2k} n) growth).
#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.hpp"
#include "core/fault_tolerant.hpp"
#include "graph/generators.hpp"
#include "util/random.hpp"

using namespace pardfs;

namespace {

void BM_AmortizedPeriodSweep(benchmark::State& state) {
  const std::size_t period = static_cast<std::size_t>(state.range(0));
  const Vertex n = 1 << 12;
  Rng rng(11);
  Graph g = gen::random_connected(n, 4 * static_cast<std::int64_t>(n), rng);
  const auto stream = benchutil::make_update_stream(g, 64, 321, 1, 1, 0.2, 0.2);
  auto dfs = std::make_unique<AmortizedDynamicDfs>(g, period);
  std::size_t i = 0;
  std::uint64_t rounds = 0, applied = 0;
  for (auto _ : state) {
    if (i != 0 && i % stream.size() == 0) {
      state.PauseTiming();
      dfs = std::make_unique<AmortizedDynamicDfs>(g, period);
      state.ResumeTiming();
    }
    dfs->apply(benchutil::to_graph_update(stream[i % stream.size()]));
    rounds += dfs->last_stats().global_rounds;
    ++applied;
    ++i;
  }
  state.counters["period"] = benchmark::Counter(static_cast<double>(period));
  state.counters["rounds/update"] =
      benchmark::Counter(static_cast<double>(rounds) / applied);
  state.counters["rebuilds"] = benchmark::Counter(static_cast<double>(dfs->rebuilds()));
}
BENCHMARK(BM_AmortizedPeriodSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
