// Experiment E15 (DESIGN.md §10): the D probe hot path under SIMD dispatch.
//
// BM_OracleProbe answers the same pre-generated (sources, segment) query
// cases three ways:
//   * single_scalar — one query_vertex per source, dispatch pinned scalar:
//     the pre-PR reference shape (per-probe binary searches);
//   * batch_scalar  — query_vertex_batch, dispatch pinned scalar: isolates
//     the batching/layout win from vectorization;
//   * batch_simd    — query_vertex_batch under the runtime dispatch
//     decision: adds the AVX2 gather kernel where the CPU has it.
// check_probe_ratio.py asserts batch_simd >= 1.3x single_scalar at
// n = 2^15 (per-probe wall time); the `avx2` counter on batch_simd lets it
// skip the assertion on hardware without AVX2.
//
// BM_BuildOracleReuse pins the aligned-CSR build: steady-state rebuilds
// must stay allocation-free (capacity_stable) and land on 32-byte
// boundaries (aligned) now that the arrays come from the aligned allocator.
#include <benchmark/benchmark.h>

#include <optional>
#include <vector>

#include "baseline/static_dfs.hpp"
#include "core/adjacency_oracle.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "tree/tree_index.hpp"
#include "util/random.hpp"
#include "util/simd.hpp"

using namespace pardfs;

namespace {

enum class ProbeMode { kSingleScalar, kBatchScalar, kBatchSimd };

struct ProbeCase {
  Graph g;
  std::vector<Vertex> parent;
  TreeIndex index;
  AdjacencyOracle oracle;
  std::vector<PathSeg> segs;
  std::vector<Vertex> sources;
};

// Dense-ish random graph (deg ~16) so the probe binary searches have real
// depth, segments rooted high in the deep DFS tree so most sources are
// probe-up eligible (the hot shape of a reroot round's query batches).
ProbeCase make_case(Vertex n) {
  ProbeCase c;
  Rng rng(7);
  c.g = gen::random_connected(n, 32 * static_cast<std::int64_t>(n), rng);
  c.parent = static_dfs(c.g);
  c.index.build(c.parent);
  Vertex deepest = 0;
  for (Vertex v = 1; v < n; ++v) {
    if (c.index.depth(v) > c.index.depth(deepest)) deepest = v;
  }
  for (int s = 0; s < 8; ++s) {
    Vertex bottom = deepest;
    for (int up = 0; up < 4 * s && c.index.parent(bottom) != kNullVertex; ++up) {
      bottom = c.index.parent(bottom);
    }
    Vertex top = bottom;
    while (c.index.depth(top) > 2) top = c.index.parent(top);
    c.segs.push_back({top, bottom});
  }
  // Every vertex once, shuffled: each bench iteration probes a fresh
  // window of sources, so the CSR rows are cold the way a reroot round's
  // query batches see them (a fixed small source set would turn the whole
  // working set L2-resident and measure nothing but ALU).
  for (Vertex v = 0; v < n; ++v) c.sources.push_back(v);
  for (std::size_t i = c.sources.size(); i > 1; --i) {
    std::swap(c.sources[i - 1], c.sources[rng.below(i)]);
  }
  c.oracle.build(c.g, c.index);
  return c;
}

void BM_OracleProbe(benchmark::State& state, ProbeMode mode) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  constexpr std::size_t kWindow = 512;
  ProbeCase c = make_case(n);
  const bool prev_forced = simd::scalar_forced();
  simd::set_force_scalar(mode != ProbeMode::kBatchSimd);
  std::vector<std::optional<Edge>> out(kWindow);
  std::size_t offset = 0;
  std::size_t seg_idx = 0;
  for (auto _ : state) {
    const Vertex* sources = c.sources.data() + offset;
    const PathSeg seg = c.segs[seg_idx];
    if (mode == ProbeMode::kSingleScalar) {
      for (std::size_t i = 0; i < kWindow; ++i) {
        out[i] = c.oracle.query_vertex(sources[i], seg, PathEnd::kTop);
      }
    } else {
      c.oracle.query_vertex_batch(sources, kWindow, seg, PathEnd::kTop,
                                  out.data());
    }
    benchmark::DoNotOptimize(out.data());
    offset += kWindow;
    if (offset + kWindow > c.sources.size()) {
      offset = 0;
      seg_idx = (seg_idx + 1) % c.segs.size();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kWindow));
  state.counters["n"] = benchmark::Counter(n);
  state.counters["avx2"] = benchmark::Counter(
      simd::active_level() == simd::Level::kAvx2 ? 1 : 0);
  simd::set_force_scalar(prev_forced);
}
BENCHMARK_CAPTURE(BM_OracleProbe, single_scalar, ProbeMode::kSingleScalar)
    ->RangeMultiplier(2)->Range(1 << 12, 1 << 17)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_OracleProbe, batch_scalar, ProbeMode::kBatchScalar)
    ->RangeMultiplier(2)->Range(1 << 12, 1 << 17)->Unit(benchmark::kMicrosecond);
BENCHMARK_CAPTURE(BM_OracleProbe, batch_simd, ProbeMode::kBatchSimd)
    ->RangeMultiplier(2)->Range(1 << 12, 1 << 17)->Unit(benchmark::kMicrosecond);

void BM_BuildOracleReuse(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  Rng rng(7);
  Graph g = gen::random_connected(n, 8 * static_cast<std::int64_t>(n), rng);
  const auto parent = static_dfs(g);
  TreeIndex index;
  index.build(parent);
  AdjacencyOracle oracle;
  oracle.build(g, index);
  oracle.build(g, index);  // reach the steady state before measuring
  const std::size_t stable = oracle.heap_capacity_bytes();
  bool capacity_stable = true;
  bool aligned = true;
  for (auto _ : state) {
    oracle.build(g, index);
    benchmark::DoNotOptimize(oracle);
    capacity_stable &= oracle.heap_capacity_bytes() == stable;
    aligned &= oracle.csr_aligned();
  }
  state.counters["n"] = benchmark::Counter(n);
  state.counters["heap_bytes"] = benchmark::Counter(static_cast<double>(stable));
  state.counters["capacity_stable"] = benchmark::Counter(capacity_stable ? 1 : 0);
  state.counters["aligned"] = benchmark::Counter(aligned ? 1 : 0);
}
BENCHMARK(BM_BuildOracleReuse)
    ->RangeMultiplier(4)->Range(1 << 12, 1 << 16)->Unit(benchmark::kMicrosecond);

}  // namespace
