// Experiment E2b (Theorem 8): query cost on D. A single Query(w, path) is
// one binary search — O(log n) probes regardless of degree or graph size;
// subtree queries cost one probe per source vertex (|T(w)| logical
// processors on the PRAM).
#include <benchmark/benchmark.h>

#include "baseline/static_dfs.hpp"
#include "core/adjacency_oracle.hpp"
#include "graph/generators.hpp"
#include "pram/cost_model.hpp"
#include "tree/tree_index.hpp"
#include "util/random.hpp"

using namespace pardfs;

namespace {

struct QueryBench {
  Graph g;
  TreeIndex index;
  AdjacencyOracle oracle;
  pram::CostModel cost;
  Rng rng{12345};

  explicit QueryBench(Vertex n, std::int64_t extra) {
    Rng gen_rng(5);
    g = gen::random_connected(n, extra, gen_rng);
    const auto parent = static_dfs(g);
    index.build(parent);
    oracle.build(g, index, &cost);
  }

  PathSeg random_segment() {
    const Vertex n = g.capacity();
    const Vertex bottom = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
    Vertex top = bottom;
    for (std::uint64_t h = rng.below(16); h > 0 && index.parent(top) != kNullVertex;
         --h) {
      top = index.parent(top);
    }
    return {top, bottom};
  }
};

void BM_VertexQuery(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  QueryBench qb(n, 6 * static_cast<std::int64_t>(n));
  std::uint64_t queries = 0;
  const auto before = qb.cost.snapshot();
  for (auto _ : state) {
    const PathSeg seg = qb.random_segment();
    const Vertex u =
        static_cast<Vertex>(qb.rng.below(static_cast<std::uint64_t>(n)));
    benchmark::DoNotOptimize(qb.oracle.query_vertex(u, seg, PathEnd::kTop));
    ++queries;
  }
  const auto after = qb.cost.snapshot();
  state.counters["probes/query"] = benchmark::Counter(
      static_cast<double>(after.query_probes - before.query_probes) /
      static_cast<double>(queries ? queries : 1));
  state.counters["n"] = benchmark::Counter(n);
}
BENCHMARK(BM_VertexQuery)->RangeMultiplier(4)->Range(1 << 10, 1 << 16);

void BM_SubtreeQuery(benchmark::State& state) {
  const Vertex n = 1 << 14;
  QueryBench qb(n, 4 * static_cast<std::int64_t>(n));
  // Pick subtrees of size ~ state.range(0).
  const std::int32_t want = static_cast<std::int32_t>(state.range(0));
  std::vector<Vertex> candidates;
  for (Vertex v = 0; v < n; ++v) {
    if (qb.index.size(v) >= want / 2 && qb.index.size(v) <= want * 2) {
      candidates.push_back(v);
    }
  }
  if (candidates.empty()) {
    state.SkipWithError("no subtree of the requested size");
    return;
  }
  for (auto _ : state) {
    const Vertex w = candidates[qb.rng.below(candidates.size())];
    PathSeg seg = qb.random_segment();
    // Ensure disjointness: walk the segment out of the subtree if needed.
    if (qb.index.is_ancestor(w, seg.bottom) || qb.index.is_ancestor(seg.top, w)) {
      seg = {qb.index.root_of(w), qb.index.root_of(w)};
    }
    benchmark::DoNotOptimize(
        qb.oracle.query_sources(qb.index.subtree_span(w), seg, PathEnd::kTop));
  }
  state.counters["subtree_size"] = benchmark::Counter(want);
}
BENCHMARK(BM_SubtreeQuery)->RangeMultiplier(4)->Range(16, 4096);

void BM_SegmentQuery(benchmark::State& state) {
  const Vertex n = 1 << 14;
  QueryBench qb(n, 4 * static_cast<std::int64_t>(n));
  for (auto _ : state) {
    const PathSeg a = qb.random_segment();
    const PathSeg b = qb.random_segment();
    if (qb.index.is_ancestor(a.top, b.bottom) && qb.index.is_ancestor(b.top, a.bottom)) {
      continue;  // likely overlapping; skip
    }
    benchmark::DoNotOptimize(qb.oracle.query_segments(a, b, PathEnd::kTop));
  }
}
BENCHMARK(BM_SegmentQuery);

// Patched queries (Theorem 9): probes grow by O(k) after k patches.
void BM_PatchedQuery(benchmark::State& state) {
  const Vertex n = 1 << 12;
  QueryBench qb(n, 4 * static_cast<std::int64_t>(n));
  const int k = static_cast<int>(state.range(0));
  for (int i = 0; i < k; ++i) {
    const Vertex u = static_cast<Vertex>(qb.rng.below(static_cast<std::uint64_t>(n)));
    const Vertex v = static_cast<Vertex>(qb.rng.below(static_cast<std::uint64_t>(n)));
    if (u != v && !qb.g.has_edge(u, v)) {
      qb.oracle.note_edge_inserted(u, v);
    }
  }
  for (auto _ : state) {
    const PathSeg seg = qb.random_segment();
    const Vertex u =
        static_cast<Vertex>(qb.rng.below(static_cast<std::uint64_t>(n)));
    benchmark::DoNotOptimize(qb.oracle.query_vertex(u, seg, PathEnd::kTop));
  }
  state.counters["k_patches"] = benchmark::Counter(k);
}
BENCHMARK(BM_PatchedQuery)->Arg(0)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
