#!/usr/bin/env python3
"""Bench-smoke ratio guard for the SIMD probe path (DESIGN.md §10, E15).

Reads a google-benchmark JSON file (BENCH_oracle.json) and asserts that
BM_OracleProbe/batch_simd/<n> is at least --min-ratio times faster
(per-probe wall time) than BM_OracleProbe/single_scalar/<n>. If the
batch_simd entry reports avx2 == 0 (no AVX2 on this machine, or scalar was
pinned via PARDFS_FORCE_SCALAR), the assertion is skipped with a warning —
there is no vector win to guard there.

Usage: check_probe_ratio.py BENCH_oracle.json [--n 32768] [--min-ratio 1.3]
"""
import argparse
import json
import sys


def real_time_us(bench):
    t = bench["real_time"]
    unit = bench.get("time_unit", "ns")
    scale = {"ns": 1e-3, "us": 1.0, "ms": 1e3, "s": 1e6}[unit]
    return t * scale


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("json_path")
    ap.add_argument("--n", type=int, default=32768)
    ap.add_argument("--min-ratio", type=float, default=1.3)
    args = ap.parse_args()

    with open(args.json_path) as f:
        data = json.load(f)

    scalar = simd = avx2 = None
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        if b["name"] == f"BM_OracleProbe/single_scalar/{args.n}":
            scalar = real_time_us(b)
        elif b["name"] == f"BM_OracleProbe/batch_simd/{args.n}":
            simd = real_time_us(b)
            avx2 = b.get("avx2")
    if scalar is None or simd is None:
        print(
            f"check_probe_ratio: missing BM_OracleProbe/single_scalar/{args.n} "
            f"or BM_OracleProbe/batch_simd/{args.n} in {args.json_path}",
            file=sys.stderr,
        )
        return 2

    ratio = scalar / simd
    print(
        f"check_probe_ratio: single_scalar {scalar:.1f}us / batch_simd "
        f"{simd:.1f}us = {ratio:.2f}x (required >= {args.min_ratio:.2f}x)"
    )
    if not avx2:
        print(
            "check_probe_ratio: WARNING — batch_simd ran scalar (no AVX2 or "
            "PARDFS_FORCE_SCALAR set); skipping the ratio assertion"
        )
        return 0
    if ratio < args.min_ratio:
        print(
            "check_probe_ratio: FAIL — the SIMD probe win regressed "
            f"(ratio {ratio:.2f} < {args.min_ratio:.2f})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
