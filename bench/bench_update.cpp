// Experiment E1 (Theorem 1/13): fully dynamic per-update cost vs n.
//
// Series: per-update wall time of DynamicDfs on G(n, m=4n) under a mixed
// update stream, against the static O(m+n) recompute (E6's comparator).
// Counters: engine rounds and query sets per update — the quantities the
// O(log^3 n) bound speaks about; they must grow ~log^2/log^3, not with n.
#include <benchmark/benchmark.h>

#include "baseline/static_dfs.hpp"
#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "util/random.hpp"

using namespace pardfs;

namespace {

void BM_DynamicUpdate(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  Rng rng(17);
  Graph g = gen::random_connected(n, 3 * static_cast<std::int64_t>(n), rng);
  const auto stream = benchutil::make_update_stream(g, 64, 1234, 1, 1, 0.1, 0.1);
  DynamicDfs dfs(g);
  std::size_t i = 0;
  std::uint64_t rounds = 0, batches = 0, updates = 0;
  // Phase sums come from the obs registry (the same series production
  // exports): mark-and-delta over the process-wide cumulative breakdown, so
  // the out-of-loop DynamicDfs reconstructions don't pollute the counters.
  UpdatePhaseBreakdown phases_sum;
  UpdatePhaseBreakdown mark = DynamicDfs::phase_breakdown();
  const auto absorb = [&] {
    const UpdatePhaseBreakdown p = DynamicDfs::phase_breakdown();
    phases_sum.patch_us += p.patch_us - mark.patch_us;
    phases_sum.reroot_us += p.reroot_us - mark.reroot_us;
    phases_sum.index_rebuild_us += p.index_rebuild_us - mark.index_rebuild_us;
    phases_sum.rebase_us += p.rebase_us - mark.rebase_us;
    mark = p;
  };
  for (auto _ : state) {
    if (i != 0 && i % stream.size() == 0) {
      // The stream is only feasible against the initial graph: reset before
      // wrapping around.
      state.PauseTiming();
      dfs = DynamicDfs(g);
      mark = DynamicDfs::phase_breakdown();
      state.ResumeTiming();
    }
    benchutil::apply_to(dfs, stream[i % stream.size()]);
    absorb();
    rounds += dfs.last_stats().global_rounds;
    batches += dfs.last_stats().query_batches;
    ++updates;
    ++i;
  }
  state.counters["rounds/update"] =
      benchmark::Counter(static_cast<double>(rounds) / updates);
  state.counters["query_sets/update"] =
      benchmark::Counter(static_cast<double>(batches) / updates);
  state.counters["n"] = benchmark::Counter(n);
  // E13 phase breakdown: where each per-update microsecond goes.
  const double per_update = 1.0 / static_cast<double>(updates);
  state.counters["patch_us/update"] =
      benchmark::Counter(phases_sum.patch_us * per_update);
  state.counters["reroot_us/update"] =
      benchmark::Counter(phases_sum.reroot_us * per_update);
  state.counters["index_rebuild_us/update"] =
      benchmark::Counter(phases_sum.index_rebuild_us * per_update);
  state.counters["rebase_us/update"] =
      benchmark::Counter(phases_sum.rebase_us * per_update);
}
BENCHMARK(BM_DynamicUpdate)->RangeMultiplier(2)->Range(1 << 10, 1 << 15)
    ->Unit(benchmark::kMicrosecond);

void BM_StaticRecompute(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  Rng rng(17);
  Graph g = gen::random_connected(n, 3 * static_cast<std::int64_t>(n), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(static_dfs(g));
  }
  state.counters["n"] = benchmark::Counter(n);
}
BENCHMARK(BM_StaticRecompute)->RangeMultiplier(2)->Range(1 << 10, 1 << 15)
    ->Unit(benchmark::kMicrosecond);

// The update kind mix matters: vertex updates reroot many subtrees at once.
void BM_DynamicUpdateByKind(benchmark::State& state) {
  const Vertex n = 1 << 12;
  const int kind = static_cast<int>(state.range(0));
  Rng rng(18);
  Graph g = gen::random_connected(n, 3 * static_cast<std::int64_t>(n), rng);
  const double w[4][4] = {
      {1, 0, 0, 0}, {0, 1, 0, 0}, {0, 0, 1, 0}, {0, 0, 0, 1}};
  const auto stream = benchutil::make_update_stream(
      g, 48, 99, w[kind][0], w[kind][1], w[kind][2], w[kind][3]);
  if (stream.empty()) {
    state.SkipWithError("no feasible updates");
    return;
  }
  DynamicDfs dfs(g);
  std::size_t i = 0;
  std::uint64_t rounds = 0, updates = 0;
  for (auto _ : state) {
    if (i != 0 && i % stream.size() == 0) {
      state.PauseTiming();
      dfs = DynamicDfs(g);
      state.ResumeTiming();
    }
    benchutil::apply_to(dfs, stream[i % stream.size()]);
    rounds += dfs.last_stats().global_rounds;
    ++updates;
    ++i;
  }
  state.counters["rounds/update"] =
      benchmark::Counter(static_cast<double>(rounds) / updates);
  state.SetLabel(kind == 0   ? "insert_edge"
                 : kind == 1 ? "delete_edge"
                 : kind == 2 ? "insert_vertex"
                             : "delete_vertex");
}
BENCHMARK(BM_DynamicUpdateByKind)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);

// Back-edge churn at fixed n and growing m: a back-edge insert/delete leaves
// the forest untouched and must cost O(1) patch work — flat in m — instead
// of the pre-epoch O(m log n) rebuild.
void BM_BackEdgeChurn(benchmark::State& state) {
  const Vertex n = 1 << 12;
  const std::int64_t m = state.range(0) * static_cast<std::int64_t>(n);
  Rng rng(23);
  Graph g = gen::random_connected(n, m, rng);
  DynamicDfs dfs(g);
  // Any non-tree edge of an undirected DFS forest is a back edge.
  Vertex u = kNullVertex, v = kNullVertex;
  for (const Edge& e : dfs.graph().edges()) {
    if (dfs.parent_of(e.u) != e.v && dfs.parent_of(e.v) != e.u) {
      u = e.u;
      v = e.v;
      break;
    }
  }
  if (u == kNullVertex) {
    state.SkipWithError("no back edge found");
    return;
  }
  const std::size_t rebuilds = dfs.epoch_rebuilds();
  bool present = true;
  for (auto _ : state) {
    if (present) {
      dfs.delete_edge(u, v);
    } else {
      dfs.insert_edge(u, v);
    }
    present = !present;
  }
  state.counters["m"] = benchmark::Counter(static_cast<double>(m));
  state.counters["rebuilds"] =
      benchmark::Counter(static_cast<double>(dfs.epoch_rebuilds() - rebuilds));
}
BENCHMARK(BM_BackEdgeChurn)->RangeMultiplier(2)->Range(2, 16)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
