// Experiment E4 (Theorem 15): semi-streaming passes per update vs n.
// The headline: passes stay ~log^2 n while the trivial streaming DFS build
// costs n passes. Also measures the single-pass batch evaluator itself.
#include <benchmark/benchmark.h>

#include <memory>

#include "baseline/static_dfs.hpp"
#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "stream/streaming_dfs.hpp"
#include "tree/tree_index.hpp"
#include "util/random.hpp"

using namespace pardfs;

namespace {

void BM_StreamingUpdatePasses(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  Rng rng(21);
  Graph g = gen::random_connected(n, 3 * static_cast<std::int64_t>(n), rng);
  const auto updates = benchutil::make_update_stream(g, 32, 777, 1, 1, 0, 0);
  auto es = std::make_unique<stream::EdgeStream>(g.edges());
  auto sd = std::make_unique<stream::StreamingDfs>(*es, n);
  std::size_t i = 0;
  std::uint64_t passes = 0, applied = 0;
  for (auto _ : state) {
    if (i != 0 && i % updates.size() == 0) {
      state.PauseTiming();
      sd.reset();
      es = std::make_unique<stream::EdgeStream>(g.edges());
      sd = std::make_unique<stream::StreamingDfs>(*es, n);
      state.ResumeTiming();
    }
    const auto& u = updates[i++ % updates.size()];
    sd->apply(benchutil::to_graph_update(u));
    passes += sd->passes_last_update();
    ++applied;
  }
  state.counters["passes/update"] =
      benchmark::Counter(static_cast<double>(passes) / applied);
  state.counters["n_passes_static_build"] = benchmark::Counter(n);
  state.counters["n"] = benchmark::Counter(n);
}
BENCHMARK(BM_StreamingUpdatePasses)->RangeMultiplier(4)->Range(1 << 10, 1 << 14)
    ->Unit(benchmark::kMicrosecond);

void BM_OnePassBatchEvaluator(benchmark::State& state) {
  const Vertex n = 1 << 13;
  const int batch = static_cast<int>(state.range(0));
  Rng rng(22);
  Graph g = gen::random_connected(n, 4 * static_cast<std::int64_t>(n), rng);
  const auto parent = static_dfs(g);
  TreeIndex index;
  index.build(parent);
  stream::EdgeStream es(g.edges());
  std::vector<stream::StreamQuery> queries;
  while (static_cast<int>(queries.size()) < batch) {
    const Vertex bottom = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
    Vertex top = bottom;
    for (std::uint64_t h = rng.below(8); h > 0 && index.parent(top) != kNullVertex; --h) {
      top = index.parent(top);
    }
    const Vertex w = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
    if (index.is_ancestor(w, bottom) || index.is_ancestor(top, w)) continue;
    queries.push_back(
        {stream::StreamQuery::SourceKind::kSubtree, w, kNullVertex, top, bottom, true});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stream::answer_queries_one_pass(es, index, queries));
  }
  state.counters["batch"] = benchmark::Counter(batch);
  state.counters["edges_scanned"] = benchmark::Counter(static_cast<double>(es.size()));
}
BENCHMARK(BM_OnePassBatchEvaluator)->Arg(1)->Arg(16)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace
