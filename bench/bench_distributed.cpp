// Experiment E5/E9 (Theorem 16): CONGEST rounds and messages per update as
// a function of the network diameter D at (roughly) fixed n. Rounds must
// track D·log^2 n; messages must track nD·log^2 n + m; message size is n/D.
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"
#include "dist/distributed_dfs.hpp"
#include "graph/generators.hpp"
#include "util/random.hpp"

using namespace pardfs;

namespace {

Graph topology(int which, Vertex n, Rng& rng) {
  switch (which) {
    case 0: return gen::gnm(n, 6 * static_cast<std::int64_t>(n), rng);  // D ~ log n
    case 1: {
      const Vertex side = static_cast<Vertex>(std::max(2.0, std::sqrt(double(n))));
      return gen::grid(side, side);  // D ~ 2 sqrt(n)
    }
    case 2: return gen::cycle(n);  // D ~ n/2
    default: return gen::hairy_path(n / 8, 7);  // D ~ n/8
  }
}

void BM_DistributedUpdate(benchmark::State& state) {
  const int which = static_cast<int>(state.range(0));
  const Vertex n = 1 << 10;
  Rng rng(41);
  Graph g = topology(which, n, rng);
  const auto updates = benchutil::make_update_stream(g, 24, 4242, 1, 1, 0, 0);
  dist::DistributedDfs dd(g);
  std::size_t i = 0;
  std::uint64_t rounds = 0, messages = 0, applied = 0;
  std::int64_t height = 0;
  for (auto _ : state) {
    if (i != 0 && i % updates.size() == 0) {
      state.PauseTiming();
      dd = dist::DistributedDfs(g);
      state.ResumeTiming();
    }
    dd.apply(benchutil::to_graph_update(updates[i++ % updates.size()]));
    rounds += dd.last_cost().rounds;
    messages += dd.last_cost().messages;
    height = std::max<std::int64_t>(height, dd.last_cost().bfs_height);
    ++applied;
  }
  state.counters["rounds/update"] =
      benchmark::Counter(static_cast<double>(rounds) / applied);
  state.counters["messages/update"] =
      benchmark::Counter(static_cast<double>(messages) / applied);
  state.counters["D_est"] = benchmark::Counter(static_cast<double>(height));
  state.counters["B_words"] = benchmark::Counter(dd.message_words());
  state.SetLabel(which == 0   ? "gnm_expander"
                 : which == 1 ? "grid"
                 : which == 2 ? "ring"
                              : "hairy_path");
}
BENCHMARK(BM_DistributedUpdate)->DenseRange(0, 3)->Unit(benchmark::kMillisecond);

// Message-size trade-off: shrinking B below n/D inflates rounds linearly.
void BM_DistributedMessageSize(benchmark::State& state) {
  const std::int32_t b = static_cast<std::int32_t>(state.range(0));
  Graph g = gen::grid(16, 32);
  const auto updates = benchutil::make_update_stream(g, 16, 4243, 1, 1, 0, 0);
  dist::DistributedDfs dd(g, b);
  std::size_t i = 0;
  std::uint64_t rounds = 0, applied = 0;
  for (auto _ : state) {
    if (i != 0 && i % updates.size() == 0) {
      state.PauseTiming();
      dd = dist::DistributedDfs(g, b);
      state.ResumeTiming();
    }
    dd.apply(benchutil::to_graph_update(updates[i++ % updates.size()]));
    rounds += dd.last_cost().rounds;
    ++applied;
  }
  state.counters["rounds/update"] =
      benchmark::Counter(static_cast<double>(rounds) / applied);
  state.counters["B_words"] = benchmark::Counter(b);
}
BENCHMARK(BM_DistributedMessageSize)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

}  // namespace
