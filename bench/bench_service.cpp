// E-service — the serving layer under concurrent load (see EXPERIMENTS.md).
//
// Three measurements:
//   * read throughput vs reader-thread count on the read-heavy workload
//     while one producer churns updates in the background — snapshot reads
//     must scale with threads (the RCU claim);
//   * per-update acknowledged latency (submit -> snapshot published) per
//     workload scenario, p50/p99 exported as counters;
//   * writer throughput under producer pressure — how large the coalesced
//     batches grow and how few index rebuilds the batch path pays.
//
// run_bench.sh emits this binary's JSON as BENCH_service.json.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/dfs_service.hpp"
#include "service/workload.hpp"
#include "util/random.hpp"

namespace {

using namespace pardfs;
using namespace pardfs::service;

// CI artifact hook: with PARDFS_OBS_DUMP_DIR set, phase tracing runs for the
// whole binary and at process exit the registry's Prometheus page plus the
// chrome://tracing JSON land in that directory (uploaded by the bench-smoke
// job; see EXPERIMENTS.md E16 for loading the trace).
struct ObsDump {
  ObsDump() {
    if (std::getenv("PARDFS_OBS_DUMP_DIR") != nullptr) {
      obs::set_tracing_enabled(true);
    }
  }
  ~ObsDump() {
    const char* dir = std::getenv("PARDFS_OBS_DUMP_DIR");
    if (dir == nullptr) return;
    std::ofstream(std::string(dir) + "/BENCH_service_metrics.prom")
        << obs::prometheus_text();
    std::ofstream(std::string(dir) + "/BENCH_service_trace.json")
        << obs::chrome_trace_json();
  }
} g_obs_dump;

// A reader performs batches of queries, reloading the snapshot between
// batches (the serving pattern: one atomic load amortized over many answers).
std::uint64_t run_reader_queries(const DfsService& svc, Rng& rng,
                                 std::uint64_t total) {
  std::uint64_t answered = 0;
  std::uint64_t sink = 0;
  while (answered < total) {
    const SnapshotPtr snap = svc.snapshot();
    const Vertex cap = snap->capacity();
    for (int q = 0; q < 64 && answered < total; ++q, ++answered) {
      const Vertex u = static_cast<Vertex>(rng.below(cap));
      const Vertex v = static_cast<Vertex>(rng.below(cap));
      sink += snap->is_ancestor(u, v) ? 1 : 0;
      sink += static_cast<std::uint64_t>(snap->lca(u, v));
      sink += snap->same_component(u, v) ? 1 : 0;
      sink += static_cast<std::uint64_t>(snap->root_of(u));
    }
  }
  return sink;
}

// Read throughput scaling: Arg = reader threads. One background producer
// streams the read-heavy workload the whole time.
void BM_ServiceReadThroughput(benchmark::State& state) {
  const int readers = static_cast<int>(state.range(0));
  const WorkloadSpec spec{Scenario::kReadHeavy, 1 << 12, 42};
  DfsService svc(make_initial_graph(spec));
  std::atomic<bool> stop_producer{false};
  std::thread producer([&] {
    WorkloadDriver driver(spec);
    while (!stop_producer.load(std::memory_order_relaxed)) {
      (void)svc.apply_sync(driver.next());
    }
  });

  constexpr std::uint64_t kQueriesPerReader = 1 << 14;
  for (auto _ : state) {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(readers));
    for (int r = 0; r < readers; ++r) {
      pool.emplace_back([&, r] {
        Rng rng(1000 + static_cast<std::uint64_t>(r));
        benchmark::DoNotOptimize(run_reader_queries(svc, rng, kQueriesPerReader));
      });
    }
    for (auto& t : pool) t.join();
  }
  stop_producer.store(true);
  producer.join();
  svc.stop();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          readers * kQueriesPerReader);
  state.counters["readers"] = static_cast<double>(readers);
  state.counters["snapshots"] =
      static_cast<double>(svc.stats().snapshots_published);
}
BENCHMARK(BM_ServiceReadThroughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Acknowledged update latency per scenario (submit -> publishing snapshot),
// with a small reader pool running so the measurement includes real sharing.
void BM_ServiceUpdateLatency(benchmark::State& state) {
  const auto scenario = static_cast<Scenario>(state.range(0));
  const WorkloadSpec spec{scenario, 1 << 11, 7};
  WorkloadDriver driver(spec);
  DfsService svc(make_initial_graph(spec));
  std::atomic<bool> stop_readers{false};
  std::vector<std::thread> pool;
  for (int r = 0; r < 2; ++r) {
    pool.emplace_back([&, r] {
      Rng rng(50 + static_cast<std::uint64_t>(r));
      while (!stop_readers.load(std::memory_order_relaxed)) {
        benchmark::DoNotOptimize(run_reader_queries(svc, rng, 1 << 10));
      }
    });
  }
  // Latency percentiles come from the registry's ack-latency histogram —
  // the same series production scrapes (submit -> ack, recorded by the
  // writer). Reset scopes the histogram to this run's samples.
  obs::Registry::global().reset();
  for (auto _ : state) {
    (void)svc.apply_sync(driver.next());
  }
  stop_readers.store(true);
  for (auto& t : pool) t.join();
  svc.stop();
  const obs::HistogramSnapshot lat =
      obs::Registry::global().histogram("pardfs_ack_latency_us", "", 1e-3)
          .snapshot();
  state.counters["p50_us"] = lat.p50;
  state.counters["p99_us"] = lat.p99;
  state.SetLabel(scenario_name(scenario));
}
BENCHMARK(BM_ServiceUpdateLatency)
    ->Arg(static_cast<int>(Scenario::kReadHeavy))
    ->Arg(static_cast<int>(Scenario::kInsertChurn))
    ->Arg(static_cast<int>(Scenario::kAdversarialStar))
    ->Arg(static_cast<int>(Scenario::kSocialMix))
    ->Unit(benchmark::kMicrosecond);

// Full client mix per scenario: each operation is a snapshot read with the
// scenario's canonical read_fraction, otherwise a submitted update (synced
// every 64 in-flight updates to bound queue growth). items = operations.
void BM_ServiceScenarioMix(benchmark::State& state) {
  const auto scenario = static_cast<Scenario>(state.range(0));
  const WorkloadSpec spec{scenario, 1 << 11, 13};
  WorkloadDriver driver(spec);
  DfsService svc(make_initial_graph(spec));
  const double reads = read_fraction(scenario);
  Rng rng(31);
  std::uint64_t sink = 0;
  std::vector<UpdateTicket> tickets;
  for (auto _ : state) {
    if (rng.uniform() < reads) {
      const SnapshotPtr snap = svc.snapshot();
      const Vertex u = static_cast<Vertex>(rng.below(snap->capacity()));
      sink += static_cast<std::uint64_t>(snap->root_of(u));
      sink += static_cast<std::uint64_t>(snap->depth(u));
    } else {
      tickets.push_back(svc.submit(driver.next()));
      if (tickets.size() >= 64) {
        for (const UpdateTicket& t : tickets) t.wait();
        tickets.clear();
      }
    }
  }
  for (const UpdateTicket& t : tickets) t.wait();
  benchmark::DoNotOptimize(sink);
  svc.stop();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["read_fraction"] = reads;
  state.counters["max_batch"] = static_cast<double>(svc.stats().max_batch);
  state.SetLabel(scenario_name(scenario));
}
BENCHMARK(BM_ServiceScenarioMix)
    ->Arg(static_cast<int>(Scenario::kReadHeavy))
    ->Arg(static_cast<int>(Scenario::kInsertChurn))
    ->Arg(static_cast<int>(Scenario::kAdversarialStar))
    ->Arg(static_cast<int>(Scenario::kSocialMix))
    ->Unit(benchmark::kMicrosecond);

// Writer throughput under pressure: Arg = producer threads racing edge
// flips. The interesting counters are how large coalesced batches grow and
// how few O(n) index rebuilds the batch path pays per applied update.
void BM_ServiceWriterThroughput(benchmark::State& state) {
  const int producers = static_cast<int>(state.range(0));
  const Vertex n = 1 << 11;
  Rng grng(21);
  ServiceConfig config;
  config.queue_capacity = 1 << 12;
  DfsService svc(gen::random_connected(n, 3 * static_cast<std::int64_t>(n), grng),
                 config);
  constexpr int kPerProducerPerIter = 128;
  for (auto _ : state) {
    std::vector<std::thread> pool;
    for (int p = 0; p < producers; ++p) {
      pool.emplace_back([&, p] {
        Rng rng(300 + static_cast<std::uint64_t>(p));
        std::vector<UpdateTicket> tickets;
        tickets.reserve(kPerProducerPerIter);
        for (int i = 0; i < kPerProducerPerIter; ++i) {
          const Vertex u = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
          const Vertex v = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
          if (u == v) continue;
          UpdateTicket t;
          const GraphUpdate update = rng.coin(0.5)
                                         ? GraphUpdate::insert_edge(u, v)
                                         : GraphUpdate::delete_edge(u, v);
          if (svc.try_submit(update, &t)) tickets.push_back(t);
        }
        for (const UpdateTicket& t : tickets) t.wait();
      });
    }
    for (auto& t : pool) t.join();
  }
  svc.stop();
  const ServiceStats stats = svc.stats();
  state.SetItemsProcessed(
      static_cast<std::int64_t>(stats.updates_applied + stats.updates_rejected));
  state.counters["applied"] = static_cast<double>(stats.updates_applied);
  state.counters["max_batch"] = static_cast<double>(stats.max_batch);
  state.counters["rebuilds_per_update"] =
      stats.updates_applied == 0
          ? 0.0
          : static_cast<double>(stats.index_rebuilds) /
                static_cast<double>(stats.updates_applied);
}
BENCHMARK(BM_ServiceWriterThroughput)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// ---- sharded serving (component-partitioned router) ------------------------

// A many-component initial graph — the regime sharding partitions. Blocks of
// `block` vertices, each a ring plus random chords, no inter-block edges, so
// the router spreads whole blocks across shards round-robin.
Graph sharded_bench_graph(Vertex n, Vertex block) {
  Graph g(n);
  Rng rng(4242);
  for (Vertex base = 0; base + block <= n; base += block) {
    for (Vertex i = 0; i < block; ++i) {
      g.add_edge(base + i, base + (i + 1) % block);
    }
    for (Vertex c = 0; c < block / 8; ++c) {
      const Vertex u = base + static_cast<Vertex>(rng.below(block));
      const Vertex v = base + static_cast<Vertex>(rng.below(block));
      if (u != v) g.add_edge(u, v);
    }
  }
  return g;
}

// An intra-block chord flip: endpoints stay in one component, so ownership
// never migrates and the churn matches the unsharded producer's shape.
GraphUpdate intra_block_flip(Rng& rng, Vertex n, Vertex block) {
  const Vertex base =
      static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n / block))) * block;
  const Vertex u = base + static_cast<Vertex>(rng.below(block));
  Vertex v = base + static_cast<Vertex>(rng.below(block));
  if (u == v) v = base + (v + 1) % block;
  return rng.coin(0.5) ? GraphUpdate::insert_edge(u, v)
                       : GraphUpdate::delete_edge(u, v);
}

// Read throughput vs shard count at a fixed reader pool: Args = (shards,
// readers). One background producer churns intra-block flips through the
// router the whole time. bench/check_shard_scaling.py pins the 4-shard /
// 1-shard items_per_second ratio.
void BM_ShardedReadThroughput(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const int readers = static_cast<int>(state.range(1));
  const Vertex n = 1 << 16;
  constexpr Vertex kBlock = 256;
  ServiceConfig config;
  config.num_shards = shards;
  ShardRouter router(sharded_bench_graph(n, kBlock), config);
  std::atomic<bool> stop_producer{false};
  std::thread producer([&] {
    Rng rng(977);
    while (!stop_producer.load(std::memory_order_relaxed)) {
      (void)router.apply_sync(intra_block_flip(rng, n, kBlock));
    }
  });

  constexpr std::uint64_t kQueriesPerReader = 1 << 14;
  for (auto _ : state) {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(readers));
    for (int r = 0; r < readers; ++r) {
      pool.emplace_back([&, r] {
        Rng rng(1000 + static_cast<std::uint64_t>(r));
        std::uint64_t sink = 0;
        for (std::uint64_t done = 0; done < kQueriesPerReader; done += 64) {
          sink += run_read_session(router, rng, 64, nullptr);
        }
        benchmark::DoNotOptimize(sink);
      });
    }
    for (auto& t : pool) t.join();
  }
  stop_producer.store(true);
  producer.join();
  router.stop();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          readers * kQueriesPerReader);
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["readers"] = static_cast<double>(readers);
  state.counters["migrations"] =
      static_cast<double>(router.stats().shard_migrations);
}
BENCHMARK(BM_ShardedReadThroughput)
    ->Args({1, 4})->Args({4, 4})->Args({16, 4})
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// The acceptance scenario: a 2^20-vertex many-component graph served by 16
// shards under 1e5 simulated client sessions — each session a short read
// burst plus the read-heavy mix's update probability, acknowledged end to
// end. Per-shard QPS and ack-latency percentiles are exported as counters
// (s<i>_qps / s<i>_ack_p99_us), so they land in BENCH_service.json.
void BM_ShardedClientSessions(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const auto sessions = static_cast<std::uint64_t>(state.range(1));
  const Vertex n = 1 << 20;
  constexpr Vertex kBlock = 256;
  ServiceConfig config;
  config.num_shards = shards;
  config.queue_capacity = 1 << 12;
  ShardRouter router(sharded_bench_graph(n, kBlock), config);
  const unsigned hw = std::thread::hardware_concurrency();
  const int clients = static_cast<int>(std::min(16u, std::max(4u, hw)));
  obs::Registry::global().reset();  // scope the ack histograms to this run
  std::vector<std::vector<std::uint64_t>> per_client_shard(
      static_cast<std::size_t>(clients),
      std::vector<std::uint64_t>(shards, 0));
  double elapsed_s = 0.0;
  for (auto _ : state) {
    const std::uint64_t t0 = obs::now_ns();
    std::atomic<std::uint64_t> next_session{0};
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      pool.emplace_back([&, c] {
        Rng rng(7000 + static_cast<std::uint64_t>(c));
        auto& mine = per_client_shard[static_cast<std::size_t>(c)];
        while (next_session.fetch_add(1, std::memory_order_relaxed) < sessions) {
          benchmark::DoNotOptimize(run_read_session(router, rng, 8, &mine));
          if (rng.coin(0.05)) {
            UpdateTicket t;
            if (router.try_submit(intra_block_flip(rng, n, kBlock), &t)) {
              (void)t.wait();
            }
          }
        }
      });
    }
    for (auto& t : pool) t.join();
    elapsed_s += static_cast<double>(obs::now_ns() - t0) * 1e-9;
  }
  router.stop();
  std::vector<std::uint64_t> shard_queries(shards, 0);
  for (const auto& mine : per_client_shard) {
    for (std::size_t s = 0; s < shards; ++s) shard_queries[s] += mine[s];
  }
  for (std::size_t s = 0; s < shards; ++s) {
    const std::string tag = "s" + std::to_string(s);
    state.counters[tag + "_qps"] =
        elapsed_s > 0.0 ? static_cast<double>(shard_queries[s]) / elapsed_s : 0.0;
    const std::string label = "shard=\"" + std::to_string(s) + "\"";
    const obs::HistogramSnapshot ack =
        obs::Registry::global().histogram("pardfs_ack_latency_us", label, 1e-3)
            .snapshot();
    state.counters[tag + "_ack_p50_us"] = ack.p50;
    state.counters[tag + "_ack_p99_us"] = ack.p99;
  }
  const ServiceStats stats = router.stats();
  state.counters["sessions"] = static_cast<double>(sessions);
  state.counters["clients"] = static_cast<double>(clients);
  state.counters["applied"] = static_cast<double>(stats.updates_applied);
  state.counters["migrations"] = static_cast<double>(stats.shard_migrations);
  state.SetItemsProcessed(static_cast<std::int64_t>(sessions));
}
BENCHMARK(BM_ShardedClientSessions)
    ->Args({16, 100000})->Iterations(1)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// E18 — failover cost (EXPERIMENTS.md): kill shard writers mid-stream and
// compare the journal-replay recovery latency (the registry's
// pardfs_recovery_latency_us histogram, recorded by the watchdog) against
// the steady-state batch cycle, timed client-side. Kills run first, while
// journals are short: replay cost is proportional to the recorded history,
// so this measures the supervision overhead (detect, join, replay,
// republish, respawn), not an unbounded log rewind. The steady-state sample
// is one pipelined 64-update burst — the canonical client window (cf.
// BM_ServiceScenarioMix), which the writers coalesce into batches — so the
// gate reads as "a failover stalls its shard for less than 10 steady batch
// cycles". Arg = shards. bench/check_recovery.py pins
// p99(recovery) < 10 x p99(steady batch).
void BM_ShardRecovery(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const Vertex n = 1 << 15;
  constexpr Vertex kBlock = 256;
  ServiceConfig config;
  config.num_shards = shards;
  config.watchdog_poll_ms = 1;
  constexpr int kKills = 24;
  constexpr int kBursts = 64;
  constexpr int kBurst = 64;
  std::vector<double> batch_us;
  batch_us.reserve(kBursts);
  std::uint64_t recoveries = 0;
  obs::Registry::global().reset();  // scope the recovery histogram to this run
  for (auto _ : state) {
    ShardRouter router(sharded_bench_graph(n, kBlock), config);
    Rng rng(1717);
    // Failover phase: poison the shard that owns the next update, then drive
    // that update to a definitive ack through the client retry loop — which
    // only lands after the watchdog's journal replay respawned the writer.
    for (int k = 0; k < kKills; ++k) {
      const GraphUpdate u = intra_block_flip(rng, n, kBlock);
      const int s = router.shard_of(u.u);
      if (s < 0) continue;
      router.inject_writer_failure(static_cast<std::size_t>(s));
      (void)submit_with_retry(router, u);
    }
    // Steady state: pipelined bursts on the recovered writers. Each sample is
    // one burst's turnaround (submit the window, wait for every ack).
    for (int b = 0; b < kBursts; ++b) {
      std::vector<UpdateTicket> tickets;
      tickets.reserve(kBurst);
      const std::uint64_t t0 = obs::now_ns();
      for (int i = 0; i < kBurst; ++i) {
        UpdateTicket t;
        if (router.try_submit(intra_block_flip(rng, n, kBlock), &t)) {
          tickets.push_back(t);
        }
      }
      for (const UpdateTicket& t : tickets) (void)t.wait();
      batch_us.push_back(static_cast<double>(obs::now_ns() - t0) * 1e-3);
    }
    recoveries += router.stats().recoveries;
    router.stop();
  }
  std::sort(batch_us.begin(), batch_us.end());
  const auto pct = [&](double q) {
    if (batch_us.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(batch_us.size() - 1));
    return batch_us[idx];
  };
  const obs::HistogramSnapshot rec =
      obs::Registry::global()
          .histogram("pardfs_recovery_latency_us", "", 1e-3)
          .snapshot();
  state.counters["recoveries"] = static_cast<double>(recoveries);
  state.counters["recovery_p50_us"] = rec.p50;
  state.counters["recovery_p99_us"] = rec.p99;
  state.counters["steady_batch_p50_us"] = pct(0.50);
  state.counters["steady_batch_p99_us"] = pct(0.99);
  state.counters["shards"] = static_cast<double>(shards);
}
BENCHMARK(BM_ShardRecovery)->Arg(1)->Arg(4)->Iterations(1)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
