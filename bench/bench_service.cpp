// E-service — the serving layer under concurrent load (see EXPERIMENTS.md).
//
// Three measurements:
//   * read throughput vs reader-thread count on the read-heavy workload
//     while one producer churns updates in the background — snapshot reads
//     must scale with threads (the RCU claim);
//   * per-update acknowledged latency (submit -> snapshot published) per
//     workload scenario, p50/p99 exported as counters;
//   * writer throughput under producer pressure — how large the coalesced
//     batches grow and how few index rebuilds the batch path pays.
//
// run_bench.sh emits this binary's JSON as BENCH_service.json.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/dfs_service.hpp"
#include "service/workload.hpp"
#include "util/random.hpp"

namespace {

using namespace pardfs;
using namespace pardfs::service;

// CI artifact hook: with PARDFS_OBS_DUMP_DIR set, phase tracing runs for the
// whole binary and at process exit the registry's Prometheus page plus the
// chrome://tracing JSON land in that directory (uploaded by the bench-smoke
// job; see EXPERIMENTS.md E16 for loading the trace).
struct ObsDump {
  ObsDump() {
    if (std::getenv("PARDFS_OBS_DUMP_DIR") != nullptr) {
      obs::set_tracing_enabled(true);
    }
  }
  ~ObsDump() {
    const char* dir = std::getenv("PARDFS_OBS_DUMP_DIR");
    if (dir == nullptr) return;
    std::ofstream(std::string(dir) + "/BENCH_service_metrics.prom")
        << obs::prometheus_text();
    std::ofstream(std::string(dir) + "/BENCH_service_trace.json")
        << obs::chrome_trace_json();
  }
} g_obs_dump;

// A reader performs batches of queries, reloading the snapshot between
// batches (the serving pattern: one atomic load amortized over many answers).
std::uint64_t run_reader_queries(const DfsService& svc, Rng& rng,
                                 std::uint64_t total) {
  std::uint64_t answered = 0;
  std::uint64_t sink = 0;
  while (answered < total) {
    const SnapshotPtr snap = svc.snapshot();
    const Vertex cap = snap->capacity();
    for (int q = 0; q < 64 && answered < total; ++q, ++answered) {
      const Vertex u = static_cast<Vertex>(rng.below(cap));
      const Vertex v = static_cast<Vertex>(rng.below(cap));
      sink += snap->is_ancestor(u, v) ? 1 : 0;
      sink += static_cast<std::uint64_t>(snap->lca(u, v));
      sink += snap->same_component(u, v) ? 1 : 0;
      sink += static_cast<std::uint64_t>(snap->root_of(u));
    }
  }
  return sink;
}

// Read throughput scaling: Arg = reader threads. One background producer
// streams the read-heavy workload the whole time.
void BM_ServiceReadThroughput(benchmark::State& state) {
  const int readers = static_cast<int>(state.range(0));
  const WorkloadSpec spec{Scenario::kReadHeavy, 1 << 12, 42};
  DfsService svc(make_initial_graph(spec));
  std::atomic<bool> stop_producer{false};
  std::thread producer([&] {
    WorkloadDriver driver(spec);
    while (!stop_producer.load(std::memory_order_relaxed)) {
      (void)svc.apply_sync(driver.next());
    }
  });

  constexpr std::uint64_t kQueriesPerReader = 1 << 14;
  for (auto _ : state) {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(readers));
    for (int r = 0; r < readers; ++r) {
      pool.emplace_back([&, r] {
        Rng rng(1000 + static_cast<std::uint64_t>(r));
        benchmark::DoNotOptimize(run_reader_queries(svc, rng, kQueriesPerReader));
      });
    }
    for (auto& t : pool) t.join();
  }
  stop_producer.store(true);
  producer.join();
  svc.stop();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          readers * kQueriesPerReader);
  state.counters["readers"] = static_cast<double>(readers);
  state.counters["snapshots"] =
      static_cast<double>(svc.stats().snapshots_published);
}
BENCHMARK(BM_ServiceReadThroughput)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

// Acknowledged update latency per scenario (submit -> publishing snapshot),
// with a small reader pool running so the measurement includes real sharing.
void BM_ServiceUpdateLatency(benchmark::State& state) {
  const auto scenario = static_cast<Scenario>(state.range(0));
  const WorkloadSpec spec{scenario, 1 << 11, 7};
  WorkloadDriver driver(spec);
  DfsService svc(make_initial_graph(spec));
  std::atomic<bool> stop_readers{false};
  std::vector<std::thread> pool;
  for (int r = 0; r < 2; ++r) {
    pool.emplace_back([&, r] {
      Rng rng(50 + static_cast<std::uint64_t>(r));
      while (!stop_readers.load(std::memory_order_relaxed)) {
        benchmark::DoNotOptimize(run_reader_queries(svc, rng, 1 << 10));
      }
    });
  }
  // Latency percentiles come from the registry's ack-latency histogram —
  // the same series production scrapes (submit -> ack, recorded by the
  // writer). Reset scopes the histogram to this run's samples.
  obs::Registry::global().reset();
  for (auto _ : state) {
    (void)svc.apply_sync(driver.next());
  }
  stop_readers.store(true);
  for (auto& t : pool) t.join();
  svc.stop();
  const obs::HistogramSnapshot lat =
      obs::Registry::global().histogram("pardfs_ack_latency_us", "", 1e-3)
          .snapshot();
  state.counters["p50_us"] = lat.p50;
  state.counters["p99_us"] = lat.p99;
  state.SetLabel(scenario_name(scenario));
}
BENCHMARK(BM_ServiceUpdateLatency)
    ->Arg(static_cast<int>(Scenario::kReadHeavy))
    ->Arg(static_cast<int>(Scenario::kInsertChurn))
    ->Arg(static_cast<int>(Scenario::kAdversarialStar))
    ->Arg(static_cast<int>(Scenario::kSocialMix))
    ->Unit(benchmark::kMicrosecond);

// Full client mix per scenario: each operation is a snapshot read with the
// scenario's canonical read_fraction, otherwise a submitted update (synced
// every 64 in-flight updates to bound queue growth). items = operations.
void BM_ServiceScenarioMix(benchmark::State& state) {
  const auto scenario = static_cast<Scenario>(state.range(0));
  const WorkloadSpec spec{scenario, 1 << 11, 13};
  WorkloadDriver driver(spec);
  DfsService svc(make_initial_graph(spec));
  const double reads = read_fraction(scenario);
  Rng rng(31);
  std::uint64_t sink = 0;
  std::vector<UpdateTicket> tickets;
  for (auto _ : state) {
    if (rng.uniform() < reads) {
      const SnapshotPtr snap = svc.snapshot();
      const Vertex u = static_cast<Vertex>(rng.below(snap->capacity()));
      sink += static_cast<std::uint64_t>(snap->root_of(u));
      sink += static_cast<std::uint64_t>(snap->depth(u));
    } else {
      tickets.push_back(svc.submit(driver.next()));
      if (tickets.size() >= 64) {
        for (const UpdateTicket& t : tickets) t.wait();
        tickets.clear();
      }
    }
  }
  for (const UpdateTicket& t : tickets) t.wait();
  benchmark::DoNotOptimize(sink);
  svc.stop();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["read_fraction"] = reads;
  state.counters["max_batch"] = static_cast<double>(svc.stats().max_batch);
  state.SetLabel(scenario_name(scenario));
}
BENCHMARK(BM_ServiceScenarioMix)
    ->Arg(static_cast<int>(Scenario::kReadHeavy))
    ->Arg(static_cast<int>(Scenario::kInsertChurn))
    ->Arg(static_cast<int>(Scenario::kAdversarialStar))
    ->Arg(static_cast<int>(Scenario::kSocialMix))
    ->Unit(benchmark::kMicrosecond);

// Writer throughput under pressure: Arg = producer threads racing edge
// flips. The interesting counters are how large coalesced batches grow and
// how few O(n) index rebuilds the batch path pays per applied update.
void BM_ServiceWriterThroughput(benchmark::State& state) {
  const int producers = static_cast<int>(state.range(0));
  const Vertex n = 1 << 11;
  Rng grng(21);
  ServiceConfig config;
  config.queue_capacity = 1 << 12;
  DfsService svc(gen::random_connected(n, 3 * static_cast<std::int64_t>(n), grng),
                 config);
  constexpr int kPerProducerPerIter = 128;
  for (auto _ : state) {
    std::vector<std::thread> pool;
    for (int p = 0; p < producers; ++p) {
      pool.emplace_back([&, p] {
        Rng rng(300 + static_cast<std::uint64_t>(p));
        std::vector<UpdateTicket> tickets;
        tickets.reserve(kPerProducerPerIter);
        for (int i = 0; i < kPerProducerPerIter; ++i) {
          const Vertex u = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
          const Vertex v = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
          if (u == v) continue;
          UpdateTicket t;
          const GraphUpdate update = rng.coin(0.5)
                                         ? GraphUpdate::insert_edge(u, v)
                                         : GraphUpdate::delete_edge(u, v);
          if (svc.try_submit(update, &t)) tickets.push_back(t);
        }
        for (const UpdateTicket& t : tickets) t.wait();
      });
    }
    for (auto& t : pool) t.join();
  }
  svc.stop();
  const ServiceStats stats = svc.stats();
  state.SetItemsProcessed(
      static_cast<std::int64_t>(stats.updates_applied + stats.updates_rejected));
  state.counters["applied"] = static_cast<double>(stats.updates_applied);
  state.counters["max_batch"] = static_cast<double>(stats.max_batch);
  state.counters["rebuilds_per_update"] =
      stats.updates_applied == 0
          ? 0.0
          : static_cast<double>(stats.index_rebuilds) /
                static_cast<double>(stats.updates_applied);
}
BENCHMARK(BM_ServiceWriterThroughput)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace
