// Experiment E7 (§4 progress guarantees): engine rounds, phases and query
// sets per reroot across adversarial families and sizes. The paper's
// machinery promises max_phase <= log n and rounds polylog(n); this bench
// prints the realized numbers (including fallback/special-case counters,
// which must stay near zero).
#include <benchmark/benchmark.h>

#include <cmath>

#include "baseline/static_dfs.hpp"
#include "core/adjacency_oracle.hpp"
#include "core/rerooter.hpp"
#include "graph/generators.hpp"
#include "tree/tree_index.hpp"
#include "util/random.hpp"

using namespace pardfs;

namespace {

Graph family_graph(int family, Vertex n, Rng& rng) {
  switch (family) {
    case 0: return gen::path(n);
    case 1: return gen::broom(n, 16);
    case 2: return gen::binary_tree(n);
    case 3: return gen::hairy_path(n / 8, 7);
    case 4: return gen::random_connected(n, 4 * static_cast<std::int64_t>(n), rng);
    default: return gen::star(n);
  }
}

const char* family_name(int family) {
  switch (family) {
    case 0: return "path";
    case 1: return "broom";
    case 2: return "binary_tree";
    case 3: return "hairy_path";
    case 4: return "random";
    default: return "star";
  }
}

void BM_RerootRounds(benchmark::State& state) {
  const int family = static_cast<int>(state.range(0));
  const Vertex n = static_cast<Vertex>(state.range(1));
  Rng rng(71);
  Graph g = family_graph(family, n, rng);
  const auto parent = static_dfs(g);
  TreeIndex index;
  index.build(parent);
  AdjacencyOracle oracle;
  oracle.build(g, index);
  const OracleView view(&oracle, &index, true);

  std::uint64_t rounds = 0, batches = 0, fallbacks = 0, specials = 0, runs = 0;
  std::uint32_t max_phase = 0;
  for (auto _ : state) {
    std::vector<Vertex> out(parent.begin(), parent.end());
    Rerooter engine(index, view, RerootStrategy::kPaper);
    const Vertex new_root =
        static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(g.capacity())));
    const RerootRequest reqs[] = {{index.root_of(new_root), new_root, kNullVertex}};
    const RerootStats s = engine.run(reqs, out);
    rounds += s.global_rounds;
    batches += s.query_batches;
    fallbacks += s.fallbacks;
    specials += s.heavy_special;
    max_phase = std::max(max_phase, s.max_phase);
    ++runs;
    benchmark::DoNotOptimize(out);
  }
  state.counters["rounds/reroot"] =
      benchmark::Counter(static_cast<double>(rounds) / runs);
  state.counters["query_sets/reroot"] =
      benchmark::Counter(static_cast<double>(batches) / runs);
  state.counters["max_phase"] = benchmark::Counter(max_phase);
  state.counters["fallbacks"] = benchmark::Counter(static_cast<double>(fallbacks));
  state.counters["special_cases"] = benchmark::Counter(static_cast<double>(specials));
  state.counters["log2n_sq"] = benchmark::Counter(
      std::pow(std::log2(static_cast<double>(std::max<Vertex>(2, n))), 2));
  state.SetLabel(family_name(family));
}
BENCHMARK(BM_RerootRounds)
    ->ArgsProduct({{0, 1, 2, 3, 4, 5}, {1 << 10, 1 << 13, 1 << 16}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
