// E12: thread scaling of the parallel rerooting engine.
//
// The engine steps every active component of a global round concurrently on
// a worker team (rerooter.cpp); the inner query primitives parallelize over
// sources through the same pram facade. This bench measures end-to-end
// batch-update latency of DynamicDfs::apply_batch at 1/2/4/8 workers on the
// two scenarios where rerooting dominates: adversarial_star (every spoke
// toggle reroots a Θ(n) ring subtree) and social_mix (power-law hub churn).
// The maintained forest is identical at every thread count (the engine's
// determinism contract, pinned in tests/test_parallel_engine.cpp) — only
// wall-clock may move. Real speedup needs real cores: on a single-core host
// every team size collapses to ~1×.
#include <benchmark/benchmark.h>

#include <vector>

#include "bench_common.hpp"
#include "core/dynamic_dfs.hpp"
#include "pram/parallel.hpp"
#include "service/workload.hpp"

namespace pardfs {
namespace {

void run_scenario(benchmark::State& state, service::Scenario scenario) {
  const int threads = static_cast<int>(state.range(0));
  const auto n = static_cast<Vertex>(state.range(1));
  // The knob pins both the engine's worker team and the pram facade (inner
  // source-parallel query reductions), so "1 thread" is genuinely serial.
  pram::set_num_threads(threads);
  const service::WorkloadSpec spec{scenario, n, 42};
  service::WorkloadDriver driver(spec);
  DynamicDfs dfs(service::make_initial_graph(spec), RerootStrategy::kPaper,
                 nullptr, threads);
  // One iteration = one coalesced batch of epoch_period updates — the
  // largest batch the service layer hands to apply_batch in one drain.
  const std::size_t batch_size = dfs.epoch_period();
  std::vector<GraphUpdate> batch;
  std::uint64_t updates = 0;
  std::uint64_t rounds = 0;
  const UpdatePhaseBreakdown before = DynamicDfs::phase_breakdown();
  for (auto _ : state) {
    state.PauseTiming();
    batch.clear();
    for (std::size_t i = 0; i < batch_size; ++i) batch.push_back(driver.next());
    state.ResumeTiming();
    dfs.apply_batch(batch);
    updates += batch.size();
    rounds += dfs.last_stats().global_rounds;
  }
  pram::set_num_threads(0);
  state.SetItemsProcessed(static_cast<std::int64_t>(updates));
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["batch_size"] = static_cast<double>(batch_size);
  state.counters["engine_rounds"] = benchmark::Counter(
      static_cast<double>(rounds), benchmark::Counter::kAvgIterations);
  // E13 phase breakdown across the whole run (per absorbed update, µs):
  // shows how much of a batch is rerooting (the part the worker team
  // parallelizes) vs index rebuild / epoch rebase / patching. Read as a
  // mark-and-delta over the registry's cumulative series (DESIGN.md §11).
  const UpdatePhaseBreakdown after = DynamicDfs::phase_breakdown();
  const double per_update =
      updates > 0 ? 1.0 / static_cast<double>(updates) : 0.0;
  state.counters["patch_us/update"] =
      benchmark::Counter((after.patch_us - before.patch_us) * per_update);
  state.counters["reroot_us/update"] =
      benchmark::Counter((after.reroot_us - before.reroot_us) * per_update);
  state.counters["index_rebuild_us/update"] = benchmark::Counter(
      (after.index_rebuild_us - before.index_rebuild_us) * per_update);
  state.counters["rebase_us/update"] =
      benchmark::Counter((after.rebase_us - before.rebase_us) * per_update);
}

void BM_BatchUpdate_AdversarialStar(benchmark::State& state) {
  run_scenario(state, service::Scenario::kAdversarialStar);
}

void BM_BatchUpdate_SocialMix(benchmark::State& state) {
  run_scenario(state, service::Scenario::kSocialMix);
}

BENCHMARK(BM_BatchUpdate_AdversarialStar)
    ->ArgsProduct({{1, 2, 4, 8}, {1 << 15}})
    ->ArgNames({"threads", "n"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

BENCHMARK(BM_BatchUpdate_SocialMix)
    ->ArgsProduct({{1, 2, 4, 8}, {1 << 15}})
    ->ArgNames({"threads", "n"})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace pardfs
