#!/usr/bin/env python3
"""Bench-smoke scaling guard: fail if sharding stops buying read throughput.

Reads a google-benchmark JSON file (BENCH_service.json) and asserts that
BM_ShardedReadThroughput at --shards shards serves at least --min-ratio times
the read QPS (items_per_second) of the 1-shard run with the same reader pool.
The component-partitioned router's whole point is that readers resolving
disjoint shards share nothing; this guard keeps a directory or snapshot
regression from silently serializing them again.

On machines with fewer than --min-cpus logical CPUs the readers time-share
cores and the ratio is noise, so the check prints a warning and skips
(exit 0) — same convention as check_probe_ratio.py's AVX2 probe.

Usage: check_shard_scaling.py BENCH_service.json [--shards 4] [--readers 4]
       [--min-ratio 1.5] [--min-cpus 4]
"""
import argparse
import json
import os
import sys


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("json_path")
    ap.add_argument("--shards", type=int, default=4)
    ap.add_argument("--readers", type=int, default=4)
    ap.add_argument("--min-ratio", type=float, default=1.5)
    ap.add_argument("--min-cpus", type=int, default=4)
    args = ap.parse_args()

    cpus = os.cpu_count() or 1
    if cpus < args.min_cpus:
        print(
            f"check_shard_scaling: SKIP — only {cpus} logical CPUs "
            f"(< {args.min_cpus}); reader scaling would be time-sliced noise"
        )
        return 0

    with open(args.json_path) as f:
        data = json.load(f)

    def qps(shards):
        name = f"BM_ShardedReadThroughput/{shards}/{args.readers}/real_time"
        for b in data.get("benchmarks", []):
            if b.get("run_type") == "aggregate":
                continue
            if b["name"] == name:
                return b.get("items_per_second")
        return None

    base = qps(1)
    sharded = qps(args.shards)
    if base is None or sharded is None:
        print(
            f"check_shard_scaling: missing BM_ShardedReadThroughput/1/"
            f"{args.readers} or /{args.shards}/{args.readers} in "
            f"{args.json_path}",
            file=sys.stderr,
        )
        return 2

    ratio = sharded / base
    print(
        f"check_shard_scaling: {args.shards}-shard {sharded / 1e6:.2f}M qps / "
        f"1-shard {base / 1e6:.2f}M qps = {ratio:.2f}x "
        f"(required >= {args.min_ratio:.2f}x, {args.readers} readers)"
    )
    if ratio < args.min_ratio:
        print(
            "check_shard_scaling: FAIL — sharded reads no longer scale "
            f"(ratio {ratio:.2f} < {args.min_ratio:.2f})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
