// Experiment E2a (Theorem 8): preprocessing — building the data structure D
// (post-order-sorted adjacency) plus the tree index. Work must scale as
// Θ(m log n); the PRAM depth is one sort round (O(log n)).
#include <benchmark/benchmark.h>

#include "baseline/static_dfs.hpp"
#include "core/adjacency_oracle.hpp"
#include "graph/generators.hpp"
#include "pram/cost_model.hpp"
#include "tree/tree_index.hpp"
#include "util/random.hpp"

using namespace pardfs;

namespace {

void BM_BuildOracle(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  const std::int64_t m = state.range(1) * static_cast<std::int64_t>(n);
  Rng rng(7);
  Graph g = gen::random_connected(n, m - (n - 1), rng);
  const auto parent = static_dfs(g);
  TreeIndex index;
  index.build(parent);
  pram::CostModel cost;
  bool aligned = true;
  for (auto _ : state) {
    AdjacencyOracle oracle;
    oracle.build(g, index, &cost);
    benchmark::DoNotOptimize(oracle);
    aligned &= oracle.csr_aligned();
  }
  state.counters["n"] = benchmark::Counter(n);
  state.counters["aligned"] = benchmark::Counter(aligned ? 1 : 0);
  state.counters["m"] = benchmark::Counter(static_cast<double>(g.num_edges()));
  state.counters["pram_depth/build"] = benchmark::Counter(
      static_cast<double>(cost.snapshot().pram_time) /
      static_cast<double>(state.iterations()));
  state.SetComplexityN(static_cast<std::int64_t>(g.num_edges()));
}
BENCHMARK(BM_BuildOracle)
    ->ArgsProduct({{1 << 10, 1 << 12, 1 << 14, 1 << 16}, {2, 8}})
    ->Unit(benchmark::kMicrosecond)
    ->Complexity(benchmark::oNLogN);

void BM_BuildTreeIndex(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  Rng rng(8);
  Graph g = gen::random_connected(n, 2 * static_cast<std::int64_t>(n), rng);
  const auto parent = static_dfs(g);
  for (auto _ : state) {
    TreeIndex index;
    index.build(parent);
    benchmark::DoNotOptimize(index);
  }
  state.counters["n"] = benchmark::Counter(n);
}
BENCHMARK(BM_BuildTreeIndex)->RangeMultiplier(4)->Range(1 << 10, 1 << 16)
    ->Unit(benchmark::kMicrosecond);

void BM_StaticDfsBuild(benchmark::State& state) {
  const Vertex n = static_cast<Vertex>(state.range(0));
  Rng rng(9);
  Graph g = gen::random_connected(n, 4 * static_cast<std::int64_t>(n), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(static_dfs(g));
  }
  state.counters["n"] = benchmark::Counter(n);
}
BENCHMARK(BM_StaticDfsBuild)->RangeMultiplier(4)->Range(1 << 10, 1 << 16)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
