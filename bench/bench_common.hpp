// Shared helpers for the benchmark harness.
//
// Conventions: each bench binary regenerates one experiment of
// EXPERIMENTS.md (the paper has no empirical tables; each experiment
// measures one theorem's quantity). Wall-clock time comes from
// google-benchmark; the PRAM quantities the theorems actually bound
// (engine rounds, query sets, passes, CONGEST rounds/messages) are exported
// as user counters so the shape is visible regardless of the host machine.
#pragma once

#include <benchmark/benchmark.h>

#include "core/dynamic_dfs.hpp"
#include "graph/generators.hpp"
#include "util/random.hpp"

namespace pardfs::benchutil {

// A reproducible mixed update stream (feasible at every step).
inline std::vector<gen::Update> make_update_stream(const Graph& initial, int count,
                                                   std::uint64_t seed,
                                                   double ins_e = 1.0,
                                                   double del_e = 1.0,
                                                   double ins_v = 0.2,
                                                   double del_v = 0.2) {
  Graph g = initial;
  Rng rng(seed);
  std::vector<gen::Update> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    gen::Update u;
    if (!gen::random_update(g, rng, ins_e, del_e, ins_v, del_v, u)) break;
    gen::apply_update(g, u);
    out.push_back(std::move(u));
  }
  return out;
}

inline void apply_to(DynamicDfs& dfs, const gen::Update& u) {
  switch (u.kind) {
    case gen::UpdateKind::kInsertEdge:
      dfs.insert_edge(u.u, u.v);
      break;
    case gen::UpdateKind::kDeleteEdge:
      dfs.delete_edge(u.u, u.v);
      break;
    case gen::UpdateKind::kInsertVertex:
      dfs.insert_vertex(u.neighbors);
      break;
    case gen::UpdateKind::kDeleteVertex:
      dfs.delete_vertex(u.u);
      break;
  }
}

inline GraphUpdate to_graph_update(const gen::Update& u) {
  switch (u.kind) {
    case gen::UpdateKind::kInsertEdge:
      return GraphUpdate::insert_edge(u.u, u.v);
    case gen::UpdateKind::kDeleteEdge:
      return GraphUpdate::delete_edge(u.u, u.v);
    case gen::UpdateKind::kInsertVertex:
      return GraphUpdate::insert_vertex(u.neighbors);
    case gen::UpdateKind::kDeleteVertex:
      return GraphUpdate::delete_vertex(u.u);
  }
  return GraphUpdate::insert_edge(u.u, u.v);
}

}  // namespace pardfs::benchutil
