#!/usr/bin/env python3
"""Bench-smoke ratio guard: fail if the dynamic update path has lost its win.

Reads a google-benchmark JSON file (BENCH_update.json) and asserts that
BM_DynamicUpdate/<n> is at least --min-ratio times faster (per-update wall
time) than BM_StaticRecompute/<n>. PR 5 cut the epoch tax (parallel/
allocation-free index rebuild, copy-free rebase, Brent serial completion);
this guard keeps it from silently creeping back.

Usage: check_update_ratio.py BENCH_update.json [--n 32768] [--min-ratio 1.3]
"""
import argparse
import json
import sys


def real_time_us(bench):
    t = bench["real_time"]
    unit = bench.get("time_unit", "ns")
    scale = {"ns": 1e-3, "us": 1.0, "ms": 1e3, "s": 1e6}[unit]
    return t * scale


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("json_path")
    ap.add_argument("--n", type=int, default=32768)
    ap.add_argument("--min-ratio", type=float, default=1.3)
    args = ap.parse_args()

    with open(args.json_path) as f:
        data = json.load(f)

    dyn = stat = None
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        if b["name"] == f"BM_DynamicUpdate/{args.n}":
            dyn = real_time_us(b)
        elif b["name"] == f"BM_StaticRecompute/{args.n}":
            stat = real_time_us(b)
    if dyn is None or stat is None:
        print(
            f"check_update_ratio: missing BM_DynamicUpdate/{args.n} or "
            f"BM_StaticRecompute/{args.n} in {args.json_path}",
            file=sys.stderr,
        )
        return 2

    ratio = stat / dyn
    print(
        f"check_update_ratio: static {stat:.1f}us / dynamic {dyn:.1f}us "
        f"= {ratio:.2f}x (required >= {args.min_ratio:.2f}x)"
    )
    if ratio < args.min_ratio:
        print(
            "check_update_ratio: FAIL — the epoch tax crept back "
            f"(ratio {ratio:.2f} < {args.min_ratio:.2f})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
