// The snapshot-serving layer: queue semantics (backpressure, FIFO acks,
// rejection), snapshot immutability and version ordering, batch coalescing,
// and the concurrent consistency check — 8 readers against 1 writer, every
// published version validated as a DFS forest (tree/validation) of the
// replayed update prefix it claims to reflect.
#include "service/dfs_service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "service/workload.hpp"
#include "tree/validation.hpp"
#include "util/random.hpp"

namespace pardfs::service {
namespace {

void apply_to_mirror(Graph& g, const GraphUpdate& u) {
  switch (u.kind) {
    case GraphUpdate::Kind::kInsertEdge:
      g.add_edge(u.u, u.v);
      break;
    case GraphUpdate::Kind::kDeleteEdge:
      g.remove_edge(u.u, u.v);
      break;
    case GraphUpdate::Kind::kInsertVertex:
      g.add_vertex(u.neighbors);
      break;
    case GraphUpdate::Kind::kDeleteVertex:
      g.remove_vertex(u.u);
      break;
  }
}

TEST(Service, InitialSnapshotServesQueries) {
  DfsService svc(gen::path(6));
  const SnapshotPtr snap = svc.snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version(), 1u);
  EXPECT_EQ(snap->updates_applied(), 0u);
  EXPECT_EQ(snap->num_vertices(), 6);
  EXPECT_TRUE(snap->same_component(0, 5));
  EXPECT_TRUE(snap->is_ancestor(snap->root_of(5), 5));
  const auto path = snap->path_to_root(5);
  ASSERT_FALSE(path.empty());
  EXPECT_EQ(path.front(), 5);
  EXPECT_EQ(path.back(), snap->root_of(5));
  // Total queries: unknown ids answer benignly.
  EXPECT_FALSE(snap->contains(-1));
  EXPECT_FALSE(snap->contains(99));
  EXPECT_EQ(snap->lca(0, 99), kNullVertex);
  EXPECT_EQ(snap->parent_of(-3), kNullVertex);
  EXPECT_TRUE(snap->path_to_root(42).empty());
}

TEST(Service, AcksCarryThePublishingVersion) {
  DfsService svc(gen::path(8));
  const std::uint64_t v1 = svc.apply_sync(GraphUpdate::delete_edge(3, 4));
  ASSERT_NE(v1, UpdateTicket::kRejected);
  EXPECT_GE(v1, 2u);
  const SnapshotPtr snap = svc.snapshot();
  EXPECT_GE(snap->version(), v1) << "ack must not precede its snapshot";
  EXPECT_FALSE(snap->same_component(0, 7));
  const std::uint64_t v2 = svc.apply_sync(GraphUpdate::insert_edge(2, 5));
  EXPECT_GT(v2, v1);
  EXPECT_TRUE(svc.snapshot()->same_component(0, 7));
}

TEST(Service, RejectsInfeasibleUpdates) {
  DfsService svc(gen::path(4));
  EXPECT_EQ(svc.apply_sync(GraphUpdate::insert_edge(0, 1)),
            UpdateTicket::kRejected)
      << "duplicate edge";
  EXPECT_EQ(svc.apply_sync(GraphUpdate::delete_edge(0, 2)),
            UpdateTicket::kRejected)
      << "absent edge";
  EXPECT_EQ(svc.apply_sync(GraphUpdate::delete_vertex(17)),
            UpdateTicket::kRejected)
      << "unknown vertex";
  EXPECT_EQ(svc.apply_sync(GraphUpdate::insert_edge(2, 2)),
            UpdateTicket::kRejected)
      << "self loop";
  EXPECT_EQ(svc.apply_sync(GraphUpdate::insert_vertex({1, 1})),
            UpdateTicket::kRejected)
      << "duplicate neighbors";
  // The graph is untouched.
  svc.stop();
  EXPECT_EQ(svc.stats().updates_rejected, 5u);
  EXPECT_EQ(svc.stats().updates_applied, 0u);
  EXPECT_EQ(svc.snapshot()->version(), 1u);
}

TEST(Service, StatsSplitRejectionsByReason) {
  DfsService svc(gen::path(4));
  // Two drain-time feasibility rejections...
  EXPECT_EQ(svc.apply_sync(GraphUpdate::insert_edge(0, 1)),
            UpdateTicket::kRejected);
  EXPECT_EQ(svc.apply_sync(GraphUpdate::delete_edge(0, 3)),
            UpdateTicket::kRejected);
  EXPECT_EQ(svc.apply_sync(GraphUpdate::insert_edge(0, 2)), 2u);
  svc.stop();
  // ...and one submit that arrives after stop(). It still acks (rejected)
  // but never reaches the writer, so it is NOT part of updates_rejected.
  EXPECT_EQ(svc.apply_sync(GraphUpdate::insert_edge(1, 3)),
            UpdateTicket::kRejected);
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.rejected_infeasible, 2u);
  EXPECT_EQ(stats.rejected_infeasible, stats.updates_rejected);
  EXPECT_EQ(stats.rejected_shutdown, 1u);
  EXPECT_EQ(stats.updates_applied, 1u);
}

TEST(Service, MetricsPagesAreServedLive) {
  DfsService svc(gen::path(8));
  (void)svc.apply_sync(GraphUpdate::insert_edge(0, 7));
  svc.stop();
  const std::string prom = svc.metrics_text();
  EXPECT_NE(prom.find("# TYPE pardfs_update_phase_us histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("pardfs_queue_depth"), std::string::npos);
  const std::string json = svc.metrics_json();
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("pardfs_ack_latency_us"), std::string::npos);
}

TEST(Service, VertexInsertTicketCarriesAssignedId) {
  DfsService svc(gen::path(3));
  const UpdateTicket t = svc.submit(GraphUpdate::insert_vertex({0, 2}));
  ASSERT_TRUE(t.valid());
  const std::uint64_t version = t.wait();
  ASSERT_NE(version, UpdateTicket::kRejected);
  EXPECT_EQ(t.assigned_vertex(), 3);
  EXPECT_TRUE(svc.snapshot()->contains(3));
}

TEST(Service, CoalescesPendingUpdatesIntoOneBatch) {
  ServiceConfig config;
  config.start_paused = true;
  config.max_batch = 64;
  Rng rng(5);
  DfsService svc(gen::random_connected(300, 900, rng), config);
  // 6 tree-structural updates queue up while the writer is paused.
  std::vector<UpdateTicket> tickets;
  const SnapshotPtr before = svc.snapshot();
  for (Vertex v = 1; tickets.size() < 6; ++v) {
    const Vertex p = before->parent_of(v);
    if (p == kNullVertex) continue;
    tickets.push_back(svc.submit(GraphUpdate::delete_edge(p, v)));
  }
  EXPECT_EQ(svc.queue_depth(), 6u);
  svc.resume();
  for (const UpdateTicket& t : tickets) {
    EXPECT_NE(t.wait(), UpdateTicket::kRejected);
  }
  svc.stop();
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.batches, 1u) << "one drain, one apply_batch";
  EXPECT_EQ(stats.max_batch, 6u);
  EXPECT_EQ(stats.index_rebuilds, 1u)
      << "the coalesced batch costs one O(n) index rebuild";
  EXPECT_EQ(svc.snapshot()->version(), 2u);
  const auto val =
      validate_dfs_forest(svc.core().graph(), svc.core().parent());
  EXPECT_TRUE(val.ok) << val.reason;
}

TEST(Service, PauseHoldsBackDrainedUpdates) {
  // pause() while the writer is blocked on an empty queue: updates submitted
  // afterwards must not apply (let alone publish) until resume().
  DfsService svc(gen::path(16));
  ASSERT_NE(svc.apply_sync(GraphUpdate::delete_edge(7, 8)),
            UpdateTicket::kRejected);  // writer is live, then idles in drain
  svc.pause();
  const UpdateTicket held = svc.submit(GraphUpdate::delete_edge(2, 3));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(held.done()) << "paused service must hold the update";
  EXPECT_EQ(svc.snapshot()->version(), 2u);
  svc.resume();
  EXPECT_NE(held.wait(), UpdateTicket::kRejected);
  EXPECT_GE(svc.snapshot()->version(), 3u);
}

TEST(Service, PatchOnlyBatchesShareTheForest) {
  // Back-edge batches publish a new version but must reuse the previous
  // snapshot's O(n) forest structures instead of copying them.
  DfsService svc(gen::path(32));
  const SnapshotPtr before = svc.snapshot();
  ASSERT_NE(svc.apply_sync(GraphUpdate::insert_edge(0, 20)),
            UpdateTicket::kRejected);  // ancestor pair on a path: patch-only
  const SnapshotPtr patched = svc.snapshot();
  EXPECT_GT(patched->version(), before->version());
  EXPECT_EQ(patched->num_edges(), before->num_edges() + 1);
  EXPECT_EQ(patched->forest(), before->forest()) << "forest must be shared";
  ASSERT_NE(svc.apply_sync(GraphUpdate::delete_edge(25, 26)),
            UpdateTicket::kRejected);  // structural (below the back edge)
  const SnapshotPtr moved = svc.snapshot();
  EXPECT_NE(moved->forest(), patched->forest());
  EXPECT_FALSE(moved->same_component(0, 26));
}

TEST(Service, BackpressureBoundsTheQueue) {
  ServiceConfig config;
  config.start_paused = true;
  config.queue_capacity = 2;
  DfsService svc(gen::path(32), config);
  ASSERT_TRUE(svc.submit(GraphUpdate::delete_edge(1, 2)).valid());
  ASSERT_TRUE(svc.submit(GraphUpdate::delete_edge(5, 6)).valid());
  UpdateTicket overflow;
  EXPECT_FALSE(svc.try_submit(GraphUpdate::delete_edge(9, 10), &overflow))
      << "queue full: try_submit must refuse";
  // A blocking submit parks until the writer drains.
  std::atomic<bool> submitted{false};
  std::thread producer([&] {
    const UpdateTicket t = svc.submit(GraphUpdate::delete_edge(9, 10));
    submitted.store(true);
    EXPECT_TRUE(t.valid());
    EXPECT_NE(t.wait(), UpdateTicket::kRejected);
  });
  EXPECT_FALSE(submitted.load());
  svc.resume();
  producer.join();
  svc.stop();
  EXPECT_EQ(svc.stats().updates_applied, 3u);
}

TEST(Service, StopDrainsEveryPendingTicket) {
  ServiceConfig config;
  config.start_paused = true;
  DfsService svc(gen::path(40), config);
  std::vector<UpdateTicket> tickets;
  for (Vertex v = 0; v + 1 < 40; v += 2) {
    tickets.push_back(svc.submit(GraphUpdate::delete_edge(v, v + 1)));
  }
  svc.stop();  // resumes, closes, drains, joins
  for (const UpdateTicket& t : tickets) {
    EXPECT_TRUE(t.done()) << "stop() must not strand tickets";
    EXPECT_NE(t.wait(), UpdateTicket::kRejected);
  }
  const UpdateTicket late = svc.submit(GraphUpdate::insert_edge(0, 1));
  EXPECT_TRUE(late.done()) << "post-stop submits fail fast, pre-acknowledged";
  EXPECT_EQ(late.wait(), UpdateTicket::kRejected);
}

TEST(Service, SubmitRacingStopIsRejectedNotAborted) {
  // Regression: a client whose submit() lost the race against stop() used to
  // receive an invalid ticket, and the blocking-apply path's immediate
  // wait() tripped PARDFS_CHECK(valid()) — aborting the whole process. The
  // contract now is a ticket pre-acknowledged as kRejected. Hammer the race
  // from both sides; any abort fails the test run itself.
  const Graph initial = gen::path(16);
  for (int iter = 0; iter < 1000; ++iter) {
    DfsService svc(initial, {});
    std::atomic<bool> go{false};
    std::thread producer([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (Vertex i = 0; i < 6; ++i) {
        // Both entry points must stay total through the shutdown.
        const UpdateTicket t = svc.submit(GraphUpdate::insert_edge(0, 2 + i));
        const std::uint64_t direct = t.wait();
        const std::uint64_t synced =
            svc.apply_sync(GraphUpdate::delete_edge(2 + i, 3 + i));
        if (direct == UpdateTicket::kRejected &&
            synced == UpdateTicket::kRejected) {
          break;  // service fully stopped under us
        }
      }
    });
    go.store(true, std::memory_order_release);
    svc.stop();
    producer.join();
  }
}

TEST(Service, MultipleProducersAllAcked) {
  ServiceConfig config;
  config.queue_capacity = 16;
  Rng rng(11);
  DfsService svc(gen::random_connected(120, 300, rng), config);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 40;
  std::atomic<std::uint64_t> acked{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng prng(1000 + p);
      for (int i = 0; i < kPerProducer; ++i) {
        const Vertex u = static_cast<Vertex>(prng.below(120));
        const Vertex v = static_cast<Vertex>(prng.below(120));
        if (u == v) continue;
        // Producers race: some of these are infeasible by the time they
        // drain. Every ticket must still resolve.
        const GraphUpdate update = prng.coin(0.5)
                                       ? GraphUpdate::insert_edge(u, v)
                                       : GraphUpdate::delete_edge(u, v);
        const UpdateTicket t = svc.submit(update);
        ASSERT_TRUE(t.valid());
        t.wait();
        acked.fetch_add(1);
      }
    });
  }
  for (auto& t : producers) t.join();
  svc.stop();
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.updates_applied + stats.updates_rejected, acked.load());
  const auto val =
      validate_dfs_forest(svc.core().graph(), svc.core().parent());
  EXPECT_TRUE(val.ok) << val.reason;
}

// The acceptance check: 8 reader threads answer queries against whatever
// snapshot they last loaded while 1 writer absorbs a mixed update stream.
// Readers verify structural consistency of every answer with the snapshot
// they hold; the producer validates every published version against a mirror
// graph replayed to exactly snapshot->updates_applied() updates.
TEST(Service, ConcurrentConsistencyUnderChurn) {
  const WorkloadSpec spec{Scenario::kSocialMix, 200, 20260729};
  WorkloadDriver driver(spec);
  Graph mirror = make_initial_graph(spec);
  ServiceConfig config;
  config.queue_capacity = 64;
  DfsService svc(make_initial_graph(spec), config);

  constexpr int kReaders = 8;
  std::atomic<bool> stop_readers{false};
  std::atomic<std::uint64_t> queries_served{0};
  std::atomic<int> reader_errors{0};
  std::mutex error_mu;
  std::string first_error;
  const auto report = [&](const std::string& what) {
    reader_errors.fetch_add(1);
    std::lock_guard lock(error_mu);
    if (first_error.empty()) first_error = what;
  };

  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(777 + r);
      std::uint64_t last_version = 0;
      while (!stop_readers.load(std::memory_order_relaxed)) {
        const SnapshotPtr snap = svc.snapshot();
        if (snap->version() < last_version) {
          report("snapshot version went backwards");
          return;
        }
        last_version = snap->version();
        const Vertex cap = snap->capacity();
        for (int q = 0; q < 32; ++q) {
          const Vertex u = static_cast<Vertex>(rng.below(cap + 2));
          const Vertex v = static_cast<Vertex>(rng.below(cap + 2));
          if (!snap->contains(u)) {
            if (snap->root_of(u) != kNullVertex || !snap->path_to_root(u).empty()) {
              report("unknown vertex must answer benignly");
              return;
            }
            continue;
          }
          const Vertex root = snap->root_of(u);
          if (root == kNullVertex || !snap->is_ancestor(root, u)) {
            report("root_of not an ancestor");
            return;
          }
          const auto path = snap->path_to_root(u);
          if (path.empty() || path.front() != u || path.back() != root ||
              static_cast<std::int32_t>(path.size()) != snap->depth(u) + 1) {
            report("path_to_root inconsistent with depth");
            return;
          }
          for (std::size_t i = 0; i + 1 < path.size(); ++i) {
            if (snap->parent_of(path[i]) != path[i + 1]) {
              report("path_to_root inconsistent with parent_of");
              return;
            }
          }
          if (!snap->contains(v)) continue;
          if (snap->same_component(u, v)) {
            const Vertex l = snap->lca(u, v);
            if (l == kNullVertex || !snap->is_ancestor(l, u) ||
                !snap->is_ancestor(l, v)) {
              report("lca must be a common ancestor within a component");
              return;
            }
          } else if (snap->lca(u, v) != kNullVertex) {
            report("lca across components must be null");
            return;
          }
          queries_served.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Producer (this thread): stream updates, validating published versions
  // against the replayed mirror as they appear.
  std::vector<GraphUpdate> accepted;
  std::uint64_t mirrored = 0;
  const auto validate_snapshot = [&](const SnapshotPtr& snap) {
    ASSERT_LE(snap->updates_applied(), accepted.size());
    ASSERT_GE(snap->updates_applied(), mirrored) << "versions must be FIFO";
    while (mirrored < snap->updates_applied()) {
      apply_to_mirror(mirror, accepted[static_cast<std::size_t>(mirrored)]);
      ++mirrored;
    }
    ASSERT_EQ(static_cast<Vertex>(snap->parent().size()), mirror.capacity());
    ASSERT_EQ(snap->num_vertices(), mirror.num_vertices());
    ASSERT_EQ(snap->num_edges(), mirror.num_edges());
    const auto val = validate_dfs_forest(mirror, snap->parent());
    ASSERT_TRUE(val.ok) << "version " << snap->version() << ": " << val.reason;
  };

  constexpr int kUpdates = 400;
  std::vector<UpdateTicket> tickets;
  tickets.reserve(kUpdates);
  for (int i = 0; i < kUpdates; ++i) {
    GraphUpdate u = driver.next();
    accepted.push_back(u);
    tickets.push_back(svc.submit(std::move(u)));
    ASSERT_TRUE(tickets.back().valid());
    if (i % 16 == 15) {
      ASSERT_NE(tickets.back().wait(), UpdateTicket::kRejected)
          << "single-producer driver streams are always feasible";
      validate_snapshot(svc.snapshot());
      if (HasFatalFailure()) break;
    }
  }
  for (const UpdateTicket& t : tickets) {
    EXPECT_NE(t.wait(), UpdateTicket::kRejected);
  }
  validate_snapshot(svc.snapshot());
  stop_readers.store(true);
  for (auto& t : readers) t.join();
  svc.stop();

  EXPECT_EQ(reader_errors.load(), 0) << first_error;
  EXPECT_GT(queries_served.load(), 0u);
  const SnapshotPtr final_snap = svc.snapshot();
  EXPECT_EQ(final_snap->updates_applied(), static_cast<std::uint64_t>(kUpdates));
  const ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.updates_applied, static_cast<std::uint64_t>(kUpdates));
  EXPECT_EQ(stats.updates_rejected, 0u);
  EXPECT_LE(stats.index_rebuilds, stats.updates_applied)
      << "batching must never cost more rebuilds than updates";
}

TEST(Service, CutQueriesOffByDefault) {
  DfsService svc(gen::path(6));
  const SnapshotPtr snap = svc.snapshot();
  EXPECT_FALSE(snap->serves_cuts());
  // Without serve_cuts every cut query answers the benign default, even for
  // vertices that really are articulation points.
  EXPECT_FALSE(snap->is_articulation(2));
  EXPECT_FALSE(snap->is_bridge(2, 3));
  EXPECT_TRUE(snap->bridges().empty());
}

TEST(Service, SnapshotServesArticulationAndBridges) {
  ServiceConfig config;
  config.serve_cuts = true;
  DfsService svc(gen::path(6), config);
  const SnapshotPtr snap = svc.snapshot();
  ASSERT_TRUE(snap->serves_cuts());
  EXPECT_FALSE(snap->is_articulation(0));
  EXPECT_FALSE(snap->is_articulation(5));
  for (Vertex v = 1; v < 5; ++v) EXPECT_TRUE(snap->is_articulation(v));
  EXPECT_EQ(snap->bridges().size(), 5u);
  EXPECT_TRUE(snap->is_bridge(2, 3));
  EXPECT_TRUE(snap->is_bridge(3, 2)) << "orientation must not matter";
  EXPECT_FALSE(snap->is_bridge(0, 5)) << "not even an edge";
  // Totality at the service boundary.
  EXPECT_FALSE(snap->is_articulation(-1));
  EXPECT_FALSE(snap->is_articulation(99));
  EXPECT_FALSE(snap->is_bridge(-1, 2));
  EXPECT_FALSE(snap->is_bridge(2, 99));
}

TEST(Service, PatchOnlyBatchesStillRefreshCuts) {
  // A back-edge insert shares the previous snapshot's Forest (see
  // PatchOnlyBatchesShareTheForest) but it changes the cut structure — the
  // cycle it closes demotes articulation points and un-bridges tree edges.
  // Cuts live per-snapshot, so the patched snapshot must answer afresh.
  ServiceConfig config;
  config.serve_cuts = true;
  DfsService svc(gen::path(8), config);
  const SnapshotPtr before = svc.snapshot();
  EXPECT_TRUE(before->is_articulation(2));
  EXPECT_TRUE(before->is_bridge(1, 2));
  ASSERT_NE(svc.apply_sync(GraphUpdate::insert_edge(0, 4)),
            UpdateTicket::kRejected);  // ancestor pair on a path: patch-only
  const SnapshotPtr after = svc.snapshot();
  ASSERT_EQ(after->forest(), before->forest()) << "patch-only must share";
  EXPECT_FALSE(after->is_articulation(2)) << "now on a cycle";
  EXPECT_FALSE(after->is_bridge(1, 2)) << "now on a cycle";
  EXPECT_TRUE(after->is_articulation(4)) << "cycle exit towards the tail";
  EXPECT_TRUE(after->is_bridge(4, 5));
  // The old snapshot still answers with its own epoch's cuts (immutability).
  EXPECT_TRUE(before->is_articulation(2));
}

TEST(Service, ServedCutsMatchBruteForceUnderChurn) {
  const WorkloadSpec spec{Scenario::kDynamicMap, 64, 99};
  WorkloadDriver driver(spec);
  ServiceConfig config;
  config.serve_cuts = true;
  DfsService svc(make_initial_graph(spec), config);
  const auto count_components = [](const Graph& g, Vertex skip) {
    std::vector<std::int8_t> seen(static_cast<std::size_t>(g.capacity()), 0);
    std::vector<Vertex> stack;
    int comps = 0;
    for (Vertex s = 0; s < g.capacity(); ++s) {
      if (!g.is_alive(s) || s == skip || seen[static_cast<std::size_t>(s)]) continue;
      ++comps;
      seen[static_cast<std::size_t>(s)] = 1;
      stack.push_back(s);
      while (!stack.empty()) {
        const Vertex v = stack.back();
        stack.pop_back();
        for (const Vertex w : g.neighbors(v)) {
          if (w == skip || seen[static_cast<std::size_t>(w)]) continue;
          seen[static_cast<std::size_t>(w)] = 1;
          stack.push_back(w);
        }
      }
    }
    return comps;
  };
  for (int i = 0; i < 160; ++i) {
    ASSERT_NE(svc.apply_sync(driver.next()), UpdateTicket::kRejected);
    if (i % 20 != 19) continue;
    // apply_sync acked => the snapshot reflects the update; the driver's
    // mirror is the ground truth to brute-force against.
    const SnapshotPtr snap = svc.snapshot();
    ASSERT_TRUE(snap->serves_cuts());
    const Graph& mirror = driver.graph();
    const int base = count_components(mirror, kNullVertex);
    for (Vertex v = 0; v < mirror.capacity(); ++v) {
      if (!mirror.is_alive(v)) {
        EXPECT_FALSE(snap->is_articulation(v));
        continue;
      }
      const bool brute =
          mirror.degree(v) > 0 && count_components(mirror, v) > base;
      ASSERT_EQ(snap->is_articulation(v), brute)
          << "update " << i << " vertex " << v;
    }
    for (const Edge& b : snap->bridges()) {
      Graph h = mirror;
      h.remove_edge(b.u, b.v);
      ASSERT_GT(count_components(h, kNullVertex), base)
          << "update " << i << " claimed bridge (" << b.u << "," << b.v << ")";
    }
  }
  svc.stop();
}

TEST(Service, WorkloadScenariosServeValidSnapshots) {
  for (const Scenario scenario :
       {Scenario::kReadHeavy, Scenario::kInsertChurn,
        Scenario::kAdversarialStar, Scenario::kSocialMix}) {
    const WorkloadSpec spec{scenario, 96, 3 + static_cast<std::uint64_t>(scenario)};
    WorkloadDriver driver(spec);
    Graph mirror = make_initial_graph(spec);
    DfsService svc(make_initial_graph(spec));
    std::vector<GraphUpdate> accepted;
    std::uint64_t mirrored = 0;
    for (int i = 0; i < 120; ++i) {
      GraphUpdate u = driver.next();
      accepted.push_back(u);
      const std::uint64_t version = svc.apply_sync(std::move(u));
      ASSERT_NE(version, UpdateTicket::kRejected)
          << scenario_name(scenario) << " update " << i;
      if (i % 10 == 9) {
        const SnapshotPtr snap = svc.snapshot();
        while (mirrored < snap->updates_applied()) {
          apply_to_mirror(mirror, accepted[static_cast<std::size_t>(mirrored)]);
          ++mirrored;
        }
        const auto val = validate_dfs_forest(mirror, snap->parent());
        ASSERT_TRUE(val.ok)
            << scenario_name(scenario) << " update " << i << ": " << val.reason;
      }
    }
    svc.stop();
  }
}

}  // namespace
}  // namespace pardfs::service
