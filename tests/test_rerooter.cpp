// Rerooting engine correctness: rerooting any subtree at any new root must
// produce a valid DFS tree of the induced subgraph, for both strategies and
// across adversarial families. Round counts must reflect the paper's bound
// (polylog for the paper strategy; the sequential baseline degenerates).
#include "core/rerooter.hpp"

#include <gtest/gtest.h>

#include "baseline/static_dfs.hpp"
#include "core/adjacency_oracle.hpp"
#include "graph/generators.hpp"
#include "tree/tree_index.hpp"
#include "tree/validation.hpp"
#include "util/random.hpp"

namespace pardfs {
namespace {

struct RerootFixture {
  Graph g;
  std::vector<Vertex> parent;
  TreeIndex index;
  AdjacencyOracle oracle;

  explicit RerootFixture(Graph graph) : g(std::move(graph)) {
    parent = static_dfs(g);
    index.build(parent);
    oracle.build(g, index);
  }

  RerootStats reroot_whole_tree(Vertex new_root, RerootStrategy strategy,
                                std::vector<Vertex>& out) {
    const OracleView view(&oracle, &index, /*identity=*/true);
    Rerooter engine(index, view, strategy);
    out = parent;
    const RerootRequest req{index.root_of(new_root), new_root, kNullVertex};
    const RerootRequest reqs[] = {req};
    return engine.run(reqs, out);
  }
};

void expect_valid_reroot(Graph g, Vertex new_root, RerootStrategy strategy) {
  RerootFixture f(std::move(g));
  std::vector<Vertex> result;
  f.reroot_whole_tree(new_root, strategy, result);
  EXPECT_EQ(result[static_cast<std::size_t>(new_root)], kNullVertex)
      << "new root must be a root";
  const auto validation = validate_dfs_forest(f.g, result);
  EXPECT_TRUE(validation.ok) << "root " << new_root << ": " << validation.reason;
}

class RerootEveryVertex
    : public ::testing::TestWithParam<std::tuple<int, RerootStrategy>> {};

TEST_P(RerootEveryVertex, FamilySweep) {
  const auto [family, strategy] = GetParam();
  Rng rng(1234 + family);
  Graph g = [&]() -> Graph {
    switch (family) {
      case 0: return gen::path(40);
      case 1: return gen::cycle(40);
      case 2: return gen::star(40);
      case 3: return gen::broom(40, 10);
      case 4: return gen::binary_tree(40);
      case 5: return gen::grid(6, 7);
      case 6: return gen::hairy_path(8, 4);
      case 7: return gen::clique(12);
      case 8: return gen::random_connected(40, 60, rng);
      default: return gen::random_connected(40, 20, rng);
    }
  }();
  for (Vertex r = 0; r < g.num_vertices(); ++r) {
    expect_valid_reroot(g, r, strategy);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, RerootEveryVertex,
    ::testing::Combine(::testing::Range(0, 10),
                       ::testing::Values(RerootStrategy::kPaper,
                                         RerootStrategy::kSequentialL)),
    [](const ::testing::TestParamInfo<std::tuple<int, RerootStrategy>>& info) {
      return "family" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == RerootStrategy::kPaper ? "_paper"
                                                                : "_seql");
    });

TEST(Rerooter, RandomGraphsRandomRoots) {
  Rng rng(555);
  for (int trial = 0; trial < 40; ++trial) {
    const Vertex n = static_cast<Vertex>(5 + rng.below(200));
    const std::int64_t extra = static_cast<std::int64_t>(rng.below(4 * n));
    Graph g = gen::random_connected(n, extra, rng);
    const Vertex r = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
    expect_valid_reroot(std::move(g), r, RerootStrategy::kPaper);
  }
}

TEST(Rerooter, SubtreeRerootLeavesRestIntact) {
  // Reroot only a hanging subtree; vertices outside it must keep parents.
  Rng rng(77);
  Graph g = gen::random_connected(120, 150, rng);
  RerootFixture f(std::move(g));
  // Find a mid-size subtree.
  Vertex sub = kNullVertex;
  for (Vertex v = 0; v < 120; ++v) {
    if (f.index.size(v) >= 10 && f.index.size(v) <= 60) {
      sub = v;
      break;
    }
  }
  ASSERT_NE(sub, kNullVertex);
  const auto span = f.index.subtree_span(sub);
  const Vertex new_root = span[span.size() / 2];
  std::vector<Vertex> result = f.parent;
  const OracleView view(&f.oracle, &f.index, true);
  Rerooter engine(f.index, view, RerootStrategy::kPaper);
  const Vertex old_parent = f.parent[static_cast<std::size_t>(sub)];
  const RerootRequest reqs[] = {{sub, new_root, old_parent}};
  engine.run(reqs, result);
  for (Vertex v = 0; v < 120; ++v) {
    if (!f.index.is_ancestor(sub, v)) {
      EXPECT_EQ(result[static_cast<std::size_t>(v)],
                f.parent[static_cast<std::size_t>(v)])
          << "outside vertex " << v << " must be untouched";
    }
  }
  EXPECT_EQ(result[static_cast<std::size_t>(new_root)], old_parent);
  // The overall forest must still be a DFS forest (the attach edge
  // (old_parent, new_root) does not exist in the graph, so validate the
  // subtree's induced subgraph instead: simulate by detaching).
  result[static_cast<std::size_t>(new_root)] = kNullVertex;
  Graph induced(f.g.capacity());
  for (const Edge& e : f.g.edges()) {
    if (f.index.is_ancestor(sub, e.u) == f.index.is_ancestor(sub, e.v)) {
      induced.add_edge(e.u, e.v);
    }
  }
  const auto validation = validate_dfs_forest(induced, result);
  EXPECT_TRUE(validation.ok) << validation.reason;
}

TEST(Rerooter, MultipleIndependentReroots) {
  // Star of paths: reroot several sibling subtrees in one run. Each path's
  // far end is also adjacent to the center (so the attach edges exist).
  Graph g(16);
  // center 0; three paths 1-2-3-4, 5-6-7-8, 9-10-11-12; extras 13,14,15
  for (const Vertex first : {1, 5, 9}) {
    g.add_edge(0, first);
    for (Vertex v = first; v < first + 3; ++v) g.add_edge(v, v + 1);
    g.add_edge(0, first + 3);  // back edge the reroot attaches through
  }
  g.add_edge(0, 13);
  g.add_edge(13, 14);
  g.add_edge(14, 15);
  RerootFixture f(std::move(g));
  std::vector<Vertex> result = f.parent;
  const OracleView view(&f.oracle, &f.index, true);
  Rerooter engine(f.index, view, RerootStrategy::kPaper);
  const RerootRequest reqs[] = {{1, 4, 0}, {5, 8, 0}, {9, 12, 0}};
  const RerootStats stats = engine.run(reqs, result);
  EXPECT_EQ(result[4], 0);
  EXPECT_EQ(result[8], 0);
  EXPECT_EQ(result[12], 0);
  EXPECT_EQ(result[3], 4);
  EXPECT_EQ(result[2], 3);
  EXPECT_EQ(result[1], 2);
  EXPECT_GT(stats.components_processed, 0u);
  const auto validation = validate_dfs_forest(f.g, result);
  EXPECT_TRUE(validation.ok) << validation.reason;
}

TEST(Rerooter, PaperStrategyBeatsSequentialOnBroom) {
  // Broom: handle 0-1-...-h-1, then bristle paths hanging off the head.
  // Rerooting at the far end of one bristle forces the sequential strategy
  // into Θ(#bristles) rounds while the paper strategy stays polylog.
  const Vertex n = 2048;
  Graph g = gen::broom(n, 8);
  RerootFixture f(std::move(g));
  std::vector<Vertex> out_paper, out_seq;
  const RerootStats paper =
      f.reroot_whole_tree(n - 1, RerootStrategy::kPaper, out_paper);
  const RerootStats seq =
      f.reroot_whole_tree(n - 1, RerootStrategy::kSequentialL, out_seq);
  EXPECT_TRUE(validate_dfs_forest(f.g, out_paper).ok);
  EXPECT_TRUE(validate_dfs_forest(f.g, out_seq).ok);
  EXPECT_LE(paper.global_rounds, 64u) << "polylog rounds expected";
  EXPECT_GE(seq.components_processed, 1u);
}

TEST(Rerooter, PaperStrategySeparatesFromSequentialOnPathMiddle) {
  // The worst case for [6]-style rerooting: a path rerooted at its middle
  // peels one vertex per dependent round (Θ(n)); the paper's machinery
  // halves structures every O(1) rounds (polylog).
  const Vertex n = 2048;
  Graph g = gen::path(n);
  RerootFixture f(std::move(g));
  std::vector<Vertex> out_paper, out_seq;
  const RerootStats paper =
      f.reroot_whole_tree(n / 2, RerootStrategy::kPaper, out_paper);
  const RerootStats seq =
      f.reroot_whole_tree(n / 2, RerootStrategy::kSequentialL, out_seq);
  EXPECT_TRUE(validate_dfs_forest(f.g, out_paper).ok);
  EXPECT_TRUE(validate_dfs_forest(f.g, out_seq).ok);
  EXPECT_LE(paper.global_rounds, 64u);
  EXPECT_GE(seq.global_rounds, static_cast<std::uint64_t>(n) / 4);
}

TEST(Rerooter, RoundsArePolylogOnDeepPath) {
  const Vertex n = 4096;
  Graph g = gen::path(n);
  RerootFixture f(std::move(g));
  std::vector<Vertex> out;
  const RerootStats stats =
      f.reroot_whole_tree(n / 2, RerootStrategy::kPaper, out);
  EXPECT_TRUE(validate_dfs_forest(f.g, out).ok);
  EXPECT_LE(stats.global_rounds, 64u);
  EXPECT_LE(stats.max_phase, 13u);
}

}  // namespace
}  // namespace pardfs
