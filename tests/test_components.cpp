// OracleView: decomposition of current-tree paths into base segments
// (Theorem 9 plumbing) and piece queries, cross-checked against brute force
// over the raw graph.
#include "core/components.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/static_dfs.hpp"
#include "core/adjacency_oracle.hpp"
#include "graph/generators.hpp"
#include "tree/tree_index.hpp"
#include "util/random.hpp"

namespace pardfs {
namespace {

struct ViewFixture {
  Graph g;
  std::vector<Vertex> parent;
  TreeIndex index;
  AdjacencyOracle oracle;

  explicit ViewFixture(Graph graph) : g(std::move(graph)) {
    parent = static_dfs(g);
    index.build(parent);
    oracle.build(g, index);
  }
  OracleView view() const { return OracleView(&oracle, &index, true); }
};

TEST(OracleViewDecompose, IdentityModeSingleSegment) {
  ViewFixture f(gen::path(8));
  const auto v = f.view();
  std::vector<CurSeg> segs;
  v.decompose(2, 6, segs);  // 2 is the ancestor on a path tree
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].seg.top, 2);
  EXPECT_EQ(segs[0].seg.bottom, 6);
  EXPECT_TRUE(segs[0].near_is_top);
  v.decompose(6, 2, segs);  // reversed orientation
  ASSERT_EQ(segs.size(), 1u);
  EXPECT_EQ(segs[0].seg.top, 2);
  EXPECT_FALSE(segs[0].near_is_top);
}

TEST(OracleViewDecompose, NonIdentitySplitsAtBends) {
  // Base tree: 0 root, children {1, 2}, 3 under 2. Current tree rerooted at
  // 1: parents {0->1, 1 root, 2->0, 3->2}. The current-monotone path from
  // root 1 down to 3 is [1,0,2,3]; its base image ascends 1->0 then
  // descends 0->2->3, so it must split into two base segments at the bend.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(2, 3);
  ViewFixture f(std::move(g));
  std::vector<Vertex> cur_parent = {1, kNullVertex, 0, 2};
  TreeIndex cur;
  cur.build(cur_parent);
  const OracleView v(&f.oracle, &cur, /*identity=*/false);
  std::vector<CurSeg> segs;
  v.decompose(1, 3, segs);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].seg.top, 0);
  EXPECT_EQ(segs[0].seg.bottom, 1);
  EXPECT_FALSE(segs[0].near_is_top) << "walk starts at the base-deep end 1";
  EXPECT_EQ(segs[1].seg.top, 2);
  EXPECT_EQ(segs[1].seg.bottom, 3);
  EXPECT_TRUE(segs[1].near_is_top);
}

TEST(OracleViewDecompose, InsertedVertexBecomesSingleton) {
  ViewFixture f(gen::path(4));
  // Insert vertex 4 adjacent to 1 and 3; current tree hangs 4 under 1 and
  // reroots 2-3 under 4 (parents: 0 root, 1->0, 4->1, 3->4, 2->3).
  f.oracle.note_vertex_inserted(4, std::vector<Vertex>{1, 3});
  std::vector<Vertex> cur_parent = {kNullVertex, 0, 3, 4, 1};
  TreeIndex cur;
  cur.build(cur_parent);
  const OracleView v(&f.oracle, &cur, false);
  std::vector<CurSeg> segs;
  v.decompose(0, 2, segs);  // path 0,1,4,3,2 in the current tree
  ASSERT_EQ(segs.size(), 3u);
  EXPECT_EQ(segs[0].seg.top, 0);
  EXPECT_EQ(segs[0].seg.bottom, 1);
  EXPECT_EQ(segs[1].seg.top, 4);
  EXPECT_EQ(segs[1].seg.bottom, 4);
  EXPECT_EQ(segs[2].seg.top, 2);  // base: 2 is an ancestor of 3
  EXPECT_EQ(segs[2].seg.bottom, 3);
}

std::optional<Edge> brute_piece_query(const Graph& g, const TreeIndex& cur,
                                      const Piece& src, Vertex near, Vertex far) {
  // All edges from the piece's vertex set to the cur path [near..far];
  // nearest `near` by cur-path position.
  std::vector<Vertex> path = cur.path_vertices(near, far);
  auto pos_of = [&](Vertex y) {
    const auto it = std::find(path.begin(), path.end(), y);
    return it == path.end() ? -1 : static_cast<int>(it - path.begin());
  };
  auto in_piece = [&](Vertex x) {
    if (src.kind == PieceKind::kSubtree) return cur.is_ancestor(src.root, x);
    return cur.is_ancestor(src.top, x) && cur.is_ancestor(x, src.bottom);
  };
  std::optional<Edge> best;
  int best_pos = -1;
  for (Vertex x = 0; x < g.capacity(); ++x) {
    if (!g.is_alive(x) || !in_piece(x)) continue;
    for (const Vertex y : g.neighbors(x)) {
      const int p = pos_of(y);
      if (p < 0) continue;
      if (!best || p < best_pos || (p == best_pos && x < best->u)) {
        best = Edge{x, y};
        best_pos = p;
      }
    }
  }
  return best;
}

TEST(OracleViewQueryPiece, MatchesBruteForceIdentity) {
  Rng rng(301);
  for (int trial = 0; trial < 15; ++trial) {
    ViewFixture f(gen::random_connected(80, 160, rng));
    const auto v = f.view();
    for (int q = 0; q < 80; ++q) {
      // Random path [near..far] and a disjoint subtree piece.
      const Vertex far = static_cast<Vertex>(rng.below(80));
      Vertex near = far;
      for (std::uint64_t h = rng.below(6); h > 0 && f.index.parent(near) != kNullVertex;
           --h) {
        near = f.index.parent(near);
      }
      const Vertex w = static_cast<Vertex>(rng.below(80));
      if (f.index.is_ancestor(w, far) || f.index.is_ancestor(near, w)) continue;
      const Piece piece = Piece::subtree(w);
      const auto got = v.query_piece(piece, near, far);
      const auto expected = brute_piece_query(f.g, f.index, piece, near, far);
      ASSERT_EQ(got.has_value(), expected.has_value()) << "trial " << trial;
      if (got) {
        EXPECT_EQ(got->v, expected->v);
      }
    }
  }
}

TEST(OracleViewQueryPiece, PathPieceSources) {
  Rng rng(302);
  for (int trial = 0; trial < 15; ++trial) {
    ViewFixture f(gen::random_connected(80, 200, rng));
    const auto v = f.view();
    for (int q = 0; q < 60; ++q) {
      const Vertex far = static_cast<Vertex>(rng.below(80));
      Vertex near = far;
      for (std::uint64_t h = rng.below(5); h > 0 && f.index.parent(near) != kNullVertex;
           --h) {
        near = f.index.parent(near);
      }
      // Source path piece: another random chain, disjoint from the target.
      const Vertex sb = static_cast<Vertex>(rng.below(80));
      Vertex st = sb;
      for (std::uint64_t h = rng.below(5); h > 0 && f.index.parent(st) != kNullVertex;
           --h) {
        st = f.index.parent(st);
      }
      // Disjointness check by vertex sets.
      const auto target = f.index.path_vertices(near, far);
      const auto source = f.index.path_vertices(st, sb);
      bool overlap = false;
      for (const Vertex a : source) {
        overlap |= std::find(target.begin(), target.end(), a) != target.end();
      }
      if (overlap) continue;
      const Piece piece = Piece::path(st, sb);
      const auto got = v.query_piece(piece, near, far);
      const auto expected = brute_piece_query(f.g, f.index, piece, near, far);
      ASSERT_EQ(got.has_value(), expected.has_value());
      if (got) {
        EXPECT_EQ(got->v, expected->v);
      }
    }
  }
}

TEST(PieceBasics, Constructors) {
  const Piece s = Piece::subtree(7);
  EXPECT_EQ(s.kind, PieceKind::kSubtree);
  EXPECT_EQ(s.root, 7);
  const Piece p = Piece::path(2, 9);
  EXPECT_EQ(p.kind, PieceKind::kPath);
  EXPECT_EQ(p.top, 2);
  EXPECT_EQ(p.bottom, 9);
}

}  // namespace
}  // namespace pardfs
