#include "tree/tree_index.hpp"

#include <gtest/gtest.h>

#include "baseline/static_dfs.hpp"
#include "graph/generators.hpp"
#include "util/random.hpp"

namespace pardfs {
namespace {

// Fixed tree:
//        0
//       . .
//      1   2
//     .|   |
//    3 4   5
//      |
//      6
class SmallTree : public ::testing::Test {
 protected:
  void SetUp() override {
    parent_ = {kNullVertex, 0, 0, 1, 1, 2, 4};
    index_.build(parent_);
  }
  std::vector<Vertex> parent_;
  TreeIndex index_;
};

TEST_F(SmallTree, BasicProperties) {
  EXPECT_EQ(index_.depth(0), 0);
  EXPECT_EQ(index_.depth(6), 3);
  EXPECT_EQ(index_.size(0), 7);
  EXPECT_EQ(index_.size(1), 4);
  EXPECT_EQ(index_.size(4), 2);
  EXPECT_EQ(index_.size(5), 1);
  EXPECT_EQ(index_.root_of(6), 0);
}

TEST_F(SmallTree, AncestorTests) {
  EXPECT_TRUE(index_.is_ancestor(0, 6));
  EXPECT_TRUE(index_.is_ancestor(1, 6));
  EXPECT_TRUE(index_.is_ancestor(4, 4));
  EXPECT_FALSE(index_.is_ancestor(2, 6));
  EXPECT_FALSE(index_.is_ancestor(6, 4));
}

TEST_F(SmallTree, Lca) {
  EXPECT_EQ(index_.lca(3, 6), 1);
  EXPECT_EQ(index_.lca(5, 6), 0);
  EXPECT_EQ(index_.lca(4, 6), 4);
  EXPECT_EQ(index_.lca(2, 2), 2);
}

TEST_F(SmallTree, ChildToward) {
  EXPECT_EQ(index_.child_toward(0, 6), 1);
  EXPECT_EQ(index_.child_toward(1, 6), 4);
  EXPECT_EQ(index_.child_toward(0, 5), 2);
}

TEST_F(SmallTree, PathOperations) {
  EXPECT_EQ(index_.path_length(6, 0), 3);
  EXPECT_EQ(index_.path_length(3, 6), 3);
  const std::vector<Vertex> up = {6, 4, 1, 0};
  EXPECT_EQ(index_.path_vertices(6, 0), up);
  const std::vector<Vertex> down = {0, 1, 4, 6};
  EXPECT_EQ(index_.path_vertices(0, 6), down);
  const std::vector<Vertex> bent = {3, 1, 4, 6};
  EXPECT_EQ(index_.tree_path(3, 6), bent);
  EXPECT_TRUE(index_.on_path(4, 6, 0));
  EXPECT_FALSE(index_.on_path(2, 6, 0));
}

TEST_F(SmallTree, BackEdgeTest) {
  EXPECT_TRUE(index_.is_back_edge(6, 0));
  EXPECT_TRUE(index_.is_back_edge(1, 3));
  EXPECT_FALSE(index_.is_back_edge(3, 6));
  EXPECT_FALSE(index_.is_back_edge(5, 6));
}

TEST_F(SmallTree, SubtreeEnumeration) {
  const auto sub = index_.subtree_vertices(1);
  EXPECT_EQ(sub.size(), 4u);
  EXPECT_EQ(sub.front(), 1);
  const auto span = index_.subtree_span(1);
  EXPECT_TRUE(std::equal(sub.begin(), sub.end(), span.begin(), span.end()));
}

TEST(TreeIndexForest, MultipleTreesAndDeadVertices) {
  // Two trees {0,1,2} and {3,4}; vertex 5 dead.
  std::vector<Vertex> parent = {kNullVertex, 0, 1, kNullVertex, 3, kNullVertex};
  std::vector<std::uint8_t> alive = {1, 1, 1, 1, 1, 0};
  TreeIndex index;
  index.build(parent, alive);
  EXPECT_EQ(index.roots().size(), 2u);
  EXPECT_EQ(index.root_of(2), 0);
  EXPECT_EQ(index.root_of(4), 3);
  EXPECT_EQ(index.lca(2, 4), kNullVertex) << "different trees have no LCA";
  EXPECT_FALSE(index.in_forest(5));
  EXPECT_EQ(index.size(5), 0);
  EXPECT_EQ(index.num_indexed(), 5);
}

TEST(TreeIndexForest, PostOrderPropertiesRandom) {
  Rng rng(99);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = gen::random_connected(200, 300, rng);
    const auto parent = static_dfs(g);
    TreeIndex index;
    index.build(parent);
    // Post-order: every vertex's post is larger than all descendants'.
    for (Vertex v = 0; v < g.capacity(); ++v) {
      const Vertex p = parent[static_cast<std::size_t>(v)];
      if (p == kNullVertex) continue;
      EXPECT_LT(index.post(v), index.post(p));
      EXPECT_GT(index.pre(v), index.pre(p));
      EXPECT_EQ(index.depth(v), index.depth(p) + 1);
    }
    // Sizes are consistent.
    for (Vertex v = 0; v < g.capacity(); ++v) {
      std::int32_t child_sum = 1;
      for (const Vertex c : index.children(v)) child_sum += index.size(c);
      EXPECT_EQ(index.size(v), child_sum);
    }
    // LCA agrees with a naive walk.
    for (int q = 0; q < 100; ++q) {
      const Vertex a = static_cast<Vertex>(rng.below(200));
      const Vertex b = static_cast<Vertex>(rng.below(200));
      Vertex x = a, y = b;
      while (index.depth(x) > index.depth(y)) x = parent[static_cast<std::size_t>(x)];
      while (index.depth(y) > index.depth(x)) y = parent[static_cast<std::size_t>(y)];
      while (x != y) {
        x = parent[static_cast<std::size_t>(x)];
        y = parent[static_cast<std::size_t>(y)];
      }
      EXPECT_EQ(index.lca(a, b), x);
    }
  }
}

}  // namespace
}  // namespace pardfs
