// Unit tests for the reduction algorithm (§3): the produced reroot requests
// and direct assignments, checked structurally.
#include "core/reduction.hpp"

#include <gtest/gtest.h>

#include "baseline/static_dfs.hpp"
#include "core/adjacency_oracle.hpp"
#include "graph/generators.hpp"
#include "tree/tree_index.hpp"
#include "util/random.hpp"

namespace pardfs {
namespace {

struct ReductionFixture {
  Graph g;
  std::vector<Vertex> parent;
  TreeIndex index;
  AdjacencyOracle oracle;

  explicit ReductionFixture(Graph graph) : g(std::move(graph)) {
    parent = static_dfs(g);
    index.build(parent);
    oracle.build(g, index);
  }
  OracleView view() { return OracleView(&oracle, &index, true); }
};

TEST(Reduction, DeleteTreeEdgeWithReattachment) {
  // Path 0-1-2-3 plus back edge (0,3); delete (1,2).
  Graph g = gen::path(4);
  g.add_edge(0, 3);
  ReductionFixture f(std::move(g));
  f.oracle.note_edge_deleted(1, 2);
  const auto view = f.view();
  const auto r = reduce_delete_tree_edge(f.index, view, 1, 2);
  ASSERT_EQ(r.reroots.size(), 1u);
  EXPECT_EQ(r.reroots[0].subtree_root, 2);
  EXPECT_EQ(r.reroots[0].new_root, 3);
  EXPECT_EQ(r.reroots[0].attach_parent, 0);
  EXPECT_TRUE(r.direct.empty());
}

TEST(Reduction, DeleteTreeEdgeDetaches) {
  ReductionFixture f(gen::path(4));
  f.oracle.note_edge_deleted(1, 2);
  const auto view = f.view();
  const auto r = reduce_delete_tree_edge(f.index, view, 1, 2);
  EXPECT_TRUE(r.reroots.empty());
  ASSERT_EQ(r.direct.size(), 1u);
  EXPECT_EQ(r.direct[0], (std::pair<Vertex, Vertex>{2, kNullVertex}));
}

TEST(Reduction, InsertEdgeSameTree) {
  // Star: tree 0 -> {1,2,3,4}; insert (1,2).
  ReductionFixture f(gen::star(5));
  const auto r = reduce_insert_edge(f.index, 1, 2);
  ASSERT_EQ(r.reroots.size(), 1u);
  // Subtree containing 2 hanging off lca(1,2)=0 is {2} itself.
  EXPECT_EQ(r.reroots[0].subtree_root, 2);
  EXPECT_EQ(r.reroots[0].new_root, 2);
  EXPECT_EQ(r.reroots[0].attach_parent, 1);
}

TEST(Reduction, InsertEdgeAcrossTreesRerootsSmaller) {
  Graph g(7);
  g.add_edge(0, 1);  // small tree {0,1}
  g.add_edge(2, 3);  // big tree {2,3,4,5,6}
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 6);
  ReductionFixture f(std::move(g));
  const auto r = reduce_insert_edge(f.index, 4, 1);
  ASSERT_EQ(r.reroots.size(), 1u);
  EXPECT_EQ(r.reroots[0].subtree_root, f.index.root_of(1));
  EXPECT_EQ(r.reroots[0].new_root, 1);
  EXPECT_EQ(r.reroots[0].attach_parent, 4);
}

TEST(Reduction, DeleteVertexProducesIndependentReroots) {
  // Star with back edges: 0 center; leaves 1..4; extra edges (1,2) via a
  // path so subtrees can reattach... use cycle instead: delete vertex 0.
  ReductionFixture f(gen::cycle(6));
  const Vertex victim = f.index.roots()[0];
  std::vector<Vertex> children(f.index.children(victim).begin(),
                               f.index.children(victim).end());
  std::vector<Vertex> nbrs(f.g.neighbors(victim).begin(), f.g.neighbors(victim).end());
  f.oracle.note_vertex_deleted(victim, nbrs);
  const auto view = f.view();
  const auto r = reduce_delete_vertex(f.index, view, victim, children, kNullVertex);
  // Root deletion: children detach directly.
  EXPECT_EQ(r.reroots.size(), 0u);
  EXPECT_EQ(r.direct.size(), children.size());
}

TEST(Reduction, InsertVertexDedupesSubtrees) {
  // Path 0-1-2-3-4: tree is the path. New vertex adjacent to {2, 3, 4}:
  // 3 and 4 are in the same hanging subtree relative to path(2, root).
  ReductionFixture f(gen::path(5));
  const Vertex v = 5;
  const std::vector<Vertex> nbrs = {2, 3, 4};
  const auto r = reduce_insert_vertex(f.index, v, nbrs);
  ASSERT_EQ(r.direct.size(), 1u);
  EXPECT_EQ(r.direct[0], (std::pair<Vertex, Vertex>{v, 2}));
  ASSERT_EQ(r.reroots.size(), 1u) << "3 and 4 share the subtree T(3)";
  EXPECT_EQ(r.reroots[0].subtree_root, 3);
  EXPECT_EQ(r.reroots[0].new_root, 3);
  EXPECT_EQ(r.reroots[0].attach_parent, v);
}

TEST(Reduction, InsertVertexSkipsAncestors) {
  // Path tree: neighbors {3, 1} with 1 an ancestor of 3: the edge to 1 is a
  // future back edge, no reroot.
  ReductionFixture f(gen::path(5));
  const std::vector<Vertex> nbrs = {3, 1};
  const auto r = reduce_insert_vertex(f.index, 5, nbrs);
  EXPECT_EQ(r.direct.size(), 1u);
  EXPECT_TRUE(r.reroots.empty());
}

TEST(Reduction, InsertIsolatedVertex) {
  ReductionFixture f(gen::path(3));
  const auto r = reduce_insert_vertex(f.index, 3, {});
  ASSERT_EQ(r.direct.size(), 1u);
  EXPECT_EQ(r.direct[0], (std::pair<Vertex, Vertex>{3, kNullVertex}));
}

TEST(Reduction, RerootRequestsAreDisjoint) {
  Rng rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    Graph g = gen::random_connected(40, 80, rng);
    ReductionFixture f(std::move(g));
    // Insert a vertex with many neighbors: all requests must target
    // disjoint subtrees.
    std::vector<Vertex> nbrs;
    for (Vertex v = 0; v < 40 && nbrs.size() < 6; v += 7) nbrs.push_back(v);
    const auto r = reduce_insert_vertex(f.index, 40, nbrs);
    for (std::size_t i = 0; i < r.reroots.size(); ++i) {
      for (std::size_t j = i + 1; j < r.reroots.size(); ++j) {
        const Vertex a = r.reroots[i].subtree_root;
        const Vertex b = r.reroots[j].subtree_root;
        EXPECT_FALSE(f.index.is_ancestor(a, b) || f.index.is_ancestor(b, a))
            << "overlapping reroot targets " << a << " and " << b;
      }
    }
  }
}

}  // namespace
}  // namespace pardfs
