// The parallel rerooting engine's determinism contract: one update stream,
// any worker-team size, byte-identical forests and stats. Components of a
// round step on real threads (rerooter.cpp), so this pins
//   * the final parent array at 1/2/4/8 workers (single-update path and the
//     combined batch path),
//   * every RerootStats counter (round counts included),
//   * the facade-default knob (num_threads = 0) against an explicit team,
//   * the (pos, u, v) total order of best_edge_to_chain, which must not
//     depend on piece-iteration order.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

#include "baseline/static_dfs.hpp"
#include "core/dynamic_dfs.hpp"
#include "core/fault_tolerant.hpp"
#include "core/rerooter_internal.hpp"
#include "pram/parallel.hpp"
#include "service/workload.hpp"
#include "tree/validation.hpp"

namespace pardfs {
namespace {

using FingerPrint = std::array<std::uint64_t, 13>;

FingerPrint pack(const RerootStats& s) {
  return {s.global_rounds, s.query_batches,  s.components_processed,
          s.vertices_traversed, s.disintegrating, s.path_halving,
          s.disconnecting,      s.heavy_l,        s.heavy_p,
          s.heavy_r,            s.heavy_special,  s.fallbacks,
          s.max_phase};
}

struct StreamResult {
  std::vector<Vertex> parent;
  std::vector<FingerPrint> stats;  // one per applied update / batch

  bool operator==(const StreamResult& o) const {
    return parent == o.parent && stats == o.stats;
  }
};

// Drives `count` updates of the scenario stream through a fresh DynamicDfs
// configured with `threads` engine workers, `chunk` updates at a time
// (chunk 1 = the per-update path, larger = the combined batch path).
StreamResult drive(service::Scenario scenario, Vertex n, int count,
                   std::size_t chunk, int threads) {
  const service::WorkloadSpec spec{scenario, n, 77};
  service::WorkloadDriver driver(spec);
  DynamicDfs dfs(service::make_initial_graph(spec), RerootStrategy::kPaper,
                 nullptr, threads);
  StreamResult result;
  std::vector<GraphUpdate> batch;
  for (int applied = 0; applied < count;) {
    batch.clear();
    for (std::size_t j = 0; j < chunk && applied < count; ++j, ++applied) {
      batch.push_back(driver.next());
    }
    if (chunk == 1) {
      dfs.apply(batch.front());
    } else {
      dfs.apply_batch(batch);
    }
    result.stats.push_back(pack(dfs.last_stats()));
  }
  const auto val = validate_dfs_forest(dfs.graph(), dfs.parent());
  EXPECT_TRUE(val.ok) << val.reason;
  result.parent.assign(dfs.parent().begin(), dfs.parent().end());
  return result;
}

class ParallelDeterminism
    : public ::testing::TestWithParam<std::tuple<service::Scenario, std::size_t>> {};

TEST_P(ParallelDeterminism, SameTreeAndStatsAtAnyThreadCount) {
  const auto [scenario, chunk] = GetParam();
  const StreamResult serial = drive(scenario, 128, 80, chunk, 1);
  for (const int threads : {2, 4, 8}) {
    const StreamResult parallel = drive(scenario, 128, 80, chunk, threads);
    ASSERT_EQ(serial.parent, parallel.parent)
        << "parent array diverged at " << threads << " threads";
    ASSERT_EQ(serial.stats, parallel.stats)
        << "RerootStats diverged at " << threads << " threads";
  }
}

INSTANTIATE_TEST_SUITE_P(
    StarAndSocial, ParallelDeterminism,
    ::testing::Combine(::testing::Values(service::Scenario::kAdversarialStar,
                                         service::Scenario::kSocialMix),
                       ::testing::Values(std::size_t{1}, std::size_t{8})),
    [](const auto& info) {
      return std::string(service::scenario_name(std::get<0>(info.param))) +
             (std::get<1>(info.param) == 1 ? "_single" : "_batch");
    });

TEST(ParallelEngine, FaultTolerantPathDeterministicAcrossThreadCounts) {
  // The fault-tolerant wrapper drives the same engine through non-identity
  // oracle views (every query decomposes over the base tree); its parallel
  // rounds must honor the same contract.
  const auto run_ft = [](int threads) {
    const service::WorkloadSpec spec{service::Scenario::kAdversarialStar, 96, 5};
    service::WorkloadDriver driver(spec);
    FaultTolerantDfs ft(service::make_initial_graph(spec), nullptr, threads);
    std::vector<FingerPrint> stats;
    for (int i = 0; i < 6; ++i) {  // within the k <= log n batch budget
      ft.apply_incremental(driver.next());
      stats.push_back(pack(ft.last_stats()));
    }
    const auto val = validate_dfs_forest(ft.graph(), ft.parent());
    EXPECT_TRUE(val.ok) << val.reason;
    return std::make_pair(
        std::vector<Vertex>(ft.parent().begin(), ft.parent().end()), stats);
  };
  const auto serial = run_ft(1);
  for (const int threads : {2, 4, 8}) {
    const auto parallel = run_ft(threads);
    ASSERT_EQ(serial.first, parallel.first)
        << "fault-tolerant parent array diverged at " << threads << " threads";
    ASSERT_EQ(serial.second, parallel.second)
        << "fault-tolerant RerootStats diverged at " << threads << " threads";
  }
}

TEST(ParallelEngine, FacadeDefaultKnobMatchesExplicitTeam) {
  // num_threads = 0 resolves to the pram facade's global setting; pin that
  // path against both an explicit team and a serial run.
  pram::set_num_threads(3);
  const StreamResult facade =
      drive(service::Scenario::kAdversarialStar, 96, 48, 8, 0);
  pram::set_num_threads(0);
  const StreamResult serial =
      drive(service::Scenario::kAdversarialStar, 96, 48, 8, 1);
  const StreamResult explicit3 =
      drive(service::Scenario::kAdversarialStar, 96, 48, 8, 3);
  EXPECT_EQ(facade, serial);
  EXPECT_EQ(facade, explicit3);
}

// ---- best_edge_to_chain total order ---------------------------------------

struct ChainFixture {
  // Tree: 0 - 1 - 2 with leaves 3, 4 under 2 and 5 under 2; extra graph
  // edges give the leaves back edges into the chain [2, 1, 0].
  Graph g{6};
  std::vector<Vertex> parent;
  TreeIndex index;
  AdjacencyOracle oracle;

  ChainFixture() {
    g.add_edge(0, 1);
    g.add_edge(1, 2);
    g.add_edge(2, 3);
    g.add_edge(2, 4);
    g.add_edge(2, 5);
    g.add_edge(3, 1);  // pieces {3} and {4} both reach chain vertex 1:
    g.add_edge(4, 1);  // equal pos, tie must fall to the smaller source u
    g.add_edge(5, 0);  // piece {5} reaches vertex 0 = the largest pos
    parent = static_dfs(g);
    index.build(parent);
    oracle.build(g, index);
  }

  detail::ChainHit best(std::vector<Piece> pieces) {
    const OracleView view(&oracle, &index, /*identity=*/true);
    detail::EngineCtx ctx(index, view);
    const std::vector<Vertex> chain = {2, 1, 0};
    const std::vector<detail::Run> runs = detail::split_runs(index, chain);
    ctx.index_chain(chain);
    return detail::best_edge_to_chain(ctx, pieces, chain, runs);
  }
};

TEST(ParallelEngine, BestEdgeToChainTieBreaksOnSourceId) {
  ChainFixture f;
  ASSERT_EQ(f.parent[3], 2);  // the assumed tree shape (DFS goes 0,1,2,...)
  const std::vector<Piece> order_a = {Piece::subtree(3), Piece::subtree(4)};
  const std::vector<Piece> order_b = {Piece::subtree(4), Piece::subtree(3)};
  const detail::ChainHit a = f.best(order_a);
  const detail::ChainHit b = f.best(order_b);
  ASSERT_TRUE(a.valid());
  // Equal chain position (both hit vertex 1): the smaller source wins,
  // independent of piece-iteration order.
  EXPECT_EQ(a.edge.u, 3);
  EXPECT_EQ(a.edge.v, 1);
  EXPECT_EQ(b.edge.u, a.edge.u);
  EXPECT_EQ(b.edge.v, a.edge.v);
  EXPECT_EQ(b.pos, a.pos);
}

TEST(ParallelEngine, BestEdgeToChainPositionDominatesSourceId) {
  ChainFixture f;
  // Piece {5} hits vertex 0 (pos 2) — beats the pos-1 hits of the smaller
  // sources 3 and 4.
  const detail::ChainHit hit =
      f.best({Piece::subtree(3), Piece::subtree(4), Piece::subtree(5)});
  ASSERT_TRUE(hit.valid());
  EXPECT_EQ(hit.edge.u, 5);
  EXPECT_EQ(hit.edge.v, 0);
  EXPECT_EQ(hit.pos, 2);
}

}  // namespace
}  // namespace pardfs
