#include "pram/cost_model.hpp"

#include <gtest/gtest.h>

#include "core/dynamic_dfs.hpp"
#include "graph/generators.hpp"
#include "util/random.hpp"

namespace pardfs::pram {
namespace {

TEST(CostModel, CountersAccumulate) {
  CostModel cm;
  cm.add_round(10, 100);
  cm.add_query_round(12, 50);
  cm.add_query(3);
  cm.add_work(7);
  const CostSnapshot s = cm.snapshot();
  EXPECT_EQ(s.rounds, 2u);
  EXPECT_EQ(s.query_rounds, 1u);
  EXPECT_EQ(s.pram_time, 22u);
  EXPECT_EQ(s.work, 157u);
  EXPECT_EQ(s.queries, 1u);
  EXPECT_EQ(s.query_probes, 3u);
}

TEST(CostModel, SnapshotDiff) {
  CostModel cm;
  cm.add_round(5, 10);
  const CostSnapshot before = cm.snapshot();
  cm.add_round(7, 20);
  cm.add_query(2);
  const CostSnapshot after = cm.snapshot();
  const CostSnapshot d = after - before;
  EXPECT_EQ(d.rounds, 1u);
  EXPECT_EQ(d.pram_time, 7u);
  EXPECT_EQ(d.work, 20u);
  EXPECT_EQ(d.queries, 1u);
}

TEST(CostModel, ResetClears) {
  CostModel cm;
  cm.add_round(1, 1);
  cm.reset();
  const CostSnapshot s = cm.snapshot();
  EXPECT_EQ(s.rounds, 0u);
  EXPECT_EQ(s.work, 0u);
}

TEST(CostModel, DynamicDfsReportsPramQuantities) {
  // Wiring check: an update through DynamicDfs must record query rounds and
  // probes; the O(m log n) D rebuild is charged at epoch boundaries.
  CostModel cm;
  Rng rng(1);
  Graph g = gen::random_connected(200, 400, rng);
  // serial_cutoff = 0: this test checks the query-round accounting of the
  // paper machinery; the Brent serial completion (default at this small n)
  // legitimately issues no query sets.
  DynamicDfs dfs(g, RerootStrategy::kPaper, &cm, 0, 0);
  const CostSnapshot pre = cm.snapshot();
  EXPECT_GT(pre.rounds, 0u);
  EXPECT_GT(pre.work, 0u) << "preprocessing builds D";

  auto delete_one_tree_edge = [&]() -> bool {
    const auto parent = dfs.parent();
    for (Vertex v = 0; v < dfs.graph().capacity(); ++v) {
      const Vertex p = parent[static_cast<std::size_t>(v)];
      if (dfs.graph().is_alive(v) && p != kNullVertex) {
        dfs.delete_edge(p, v);
        return true;
      }
    }
    return false;
  };

  ASSERT_TRUE(delete_one_tree_edge());
  const CostSnapshot d = cm.snapshot() - pre;
  EXPECT_GT(d.rounds, 0u);
  EXPECT_GT(d.query_rounds, 0u) << "a reroot issues query sets";
  EXPECT_GT(d.query_probes, 0u);

  // Drive structural updates across an epoch boundary: the D rebuild work
  // must then appear in the model.
  const std::size_t rebuilds_before = dfs.epoch_rebuilds();
  while (dfs.epoch_rebuilds() == rebuilds_before) {
    ASSERT_TRUE(delete_one_tree_edge()) << "ran out of tree edges before rebase";
  }
  const CostSnapshot e = cm.snapshot() - pre;
  EXPECT_GT(e.work, 0u) << "the epoch D rebuild contributes work";
}

}  // namespace
}  // namespace pardfs::pram
