#include "pram/cost_model.hpp"

#include <gtest/gtest.h>

#include "core/dynamic_dfs.hpp"
#include "graph/generators.hpp"
#include "util/random.hpp"

namespace pardfs::pram {
namespace {

TEST(CostModel, CountersAccumulate) {
  CostModel cm;
  cm.add_round(10, 100);
  cm.add_query_round(12, 50);
  cm.add_query(3);
  cm.add_work(7);
  const CostSnapshot s = cm.snapshot();
  EXPECT_EQ(s.rounds, 2u);
  EXPECT_EQ(s.query_rounds, 1u);
  EXPECT_EQ(s.pram_time, 22u);
  EXPECT_EQ(s.work, 157u);
  EXPECT_EQ(s.queries, 1u);
  EXPECT_EQ(s.query_probes, 3u);
}

TEST(CostModel, SnapshotDiff) {
  CostModel cm;
  cm.add_round(5, 10);
  const CostSnapshot before = cm.snapshot();
  cm.add_round(7, 20);
  cm.add_query(2);
  const CostSnapshot after = cm.snapshot();
  const CostSnapshot d = after - before;
  EXPECT_EQ(d.rounds, 1u);
  EXPECT_EQ(d.pram_time, 7u);
  EXPECT_EQ(d.work, 20u);
  EXPECT_EQ(d.queries, 1u);
}

TEST(CostModel, ResetClears) {
  CostModel cm;
  cm.add_round(1, 1);
  cm.reset();
  const CostSnapshot s = cm.snapshot();
  EXPECT_EQ(s.rounds, 0u);
  EXPECT_EQ(s.work, 0u);
}

TEST(CostModel, DynamicDfsReportsPramQuantities) {
  // Wiring check: an update through DynamicDfs must record query rounds and
  // probes in the attached cost model.
  CostModel cm;
  Rng rng(1);
  Graph g = gen::random_connected(200, 400, rng);
  DynamicDfs dfs(g, RerootStrategy::kPaper, &cm);
  const CostSnapshot before = cm.snapshot();
  // A tree-edge deletion that forces a reroot.
  const auto parent = dfs.parent();
  Vertex child = kNullVertex;
  for (Vertex v = 0; v < 200; ++v) {
    if (parent[static_cast<std::size_t>(v)] != kNullVertex) {
      child = v;
      break;
    }
  }
  ASSERT_NE(child, kNullVertex);
  dfs.delete_edge(parent[static_cast<std::size_t>(child)], child);
  const CostSnapshot d = cm.snapshot() - before;
  EXPECT_GT(d.rounds, 0u);
  EXPECT_GT(d.work, 0u) << "the D rebuild alone contributes work";
}

}  // namespace
}  // namespace pardfs::pram
