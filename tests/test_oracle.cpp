// Data structure D vs. brute force: every query kind, against random graphs
// and paths, with and without Theorem 9 patches.
#include "core/adjacency_oracle.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "baseline/static_dfs.hpp"
#include "graph/generators.hpp"
#include "tree/tree_index.hpp"
#include "util/random.hpp"

namespace pardfs {
namespace {

// Brute force: all edges from `sources` to vertices on the base chain
// [seg.top .. seg.bottom]; pick the endpoint nearest the requested end.
std::optional<Edge> brute_query(const Graph& g, const TreeIndex& index,
                                std::span<const Vertex> sources, PathSeg seg,
                                PathEnd end) {
  auto on_seg = [&](Vertex x) {
    return index.in_forest(x) && index.is_ancestor(seg.top, x) &&
           index.is_ancestor(x, seg.bottom);
  };
  std::optional<Edge> best;
  for (const Vertex u : sources) {
    if (!g.is_alive(u)) continue;
    for (const Vertex z : g.neighbors(u)) {
      if (!on_seg(z)) continue;
      if (!best) {
        best = Edge{u, z};
        continue;
      }
      const std::int32_t zp = index.post(z);
      const std::int32_t bp = index.post(best->v);
      const bool wins = end == PathEnd::kTop
                            ? (zp > bp || (zp == bp && u < best->u))
                            : (zp < bp || (zp == bp && u < best->u));
      if (wins) best = Edge{u, z};
    }
  }
  return best;
}

struct OracleFixture {
  Graph g;
  TreeIndex index;
  AdjacencyOracle oracle;

  explicit OracleFixture(Graph graph) : g(std::move(graph)) {
    const auto parent = static_dfs(g);
    index.build(parent);
    oracle.build(g, index);
  }
};

// Random ancestor-descendant segment of the tree.
PathSeg random_segment(const TreeIndex& index, Vertex n, Rng& rng) {
  const Vertex bottom = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
  Vertex top = bottom;
  const std::uint64_t hops = rng.below(8);
  for (std::uint64_t h = 0; h < hops; ++h) {
    if (index.parent(top) == kNullVertex) break;
    top = index.parent(top);
  }
  return {top, bottom};
}

TEST(Oracle, SingleVertexQueriesMatchBruteForce) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    OracleFixture s(gen::random_connected(120, 240, rng));
    for (int q = 0; q < 200; ++q) {
      const PathSeg seg = random_segment(s.index, 120, rng);
      const Vertex u = static_cast<Vertex>(rng.below(120));
      // Skip sources on the segment (disjointness precondition).
      if (s.index.is_ancestor(seg.top, u) && s.index.is_ancestor(u, seg.bottom)) {
        continue;
      }
      for (const PathEnd end : {PathEnd::kTop, PathEnd::kBottom}) {
        const Vertex src[] = {u};
        const auto expected = brute_query(s.g, s.index, src, seg, end);
        const auto got = s.oracle.query_vertex(u, seg, end);
        ASSERT_EQ(got.has_value(), expected.has_value())
            << "u=" << u << " seg=[" << seg.top << ".." << seg.bottom << "]";
        if (got) {
          EXPECT_EQ(got->v, expected->v);
          EXPECT_TRUE(s.g.has_edge(got->u, got->v));
        }
      }
    }
  }
}

TEST(Oracle, SubtreeQueriesMatchBruteForce) {
  Rng rng(32);
  for (int trial = 0; trial < 15; ++trial) {
    OracleFixture s(gen::random_connected(100, 200, rng));
    for (int q = 0; q < 100; ++q) {
      const PathSeg seg = random_segment(s.index, 100, rng);
      const Vertex w = static_cast<Vertex>(rng.below(100));
      // Subtree must be disjoint from the segment.
      if (s.index.is_ancestor(w, seg.bottom) || s.index.is_ancestor(seg.top, w)) {
        continue;
      }
      const auto sub = s.index.subtree_span(w);
      for (const PathEnd end : {PathEnd::kTop, PathEnd::kBottom}) {
        const auto expected = brute_query(s.g, s.index, sub, seg, end);
        const auto got = s.oracle.query_sources(sub, seg, end);
        ASSERT_EQ(got.has_value(), expected.has_value());
        if (got) {
          EXPECT_EQ(got->v, expected->v);
        }
      }
    }
  }
}

TEST(Oracle, SegmentToSegmentMatchesBruteForce) {
  Rng rng(33);
  for (int trial = 0; trial < 15; ++trial) {
    OracleFixture s(gen::random_connected(100, 250, rng));
    for (int q = 0; q < 200; ++q) {
      const PathSeg a = random_segment(s.index, 100, rng);
      const PathSeg b = random_segment(s.index, 100, rng);
      // Segments must be vertex-disjoint.
      auto intersects = [&](const PathSeg& x, const PathSeg& y) {
        for (Vertex v = y.bottom;; v = s.index.parent(v)) {
          if (s.index.is_ancestor(x.top, v) && s.index.is_ancestor(v, x.bottom)) {
            return true;
          }
          if (v == y.top) break;
        }
        return false;
      };
      if (intersects(a, b)) continue;
      std::vector<Vertex> a_verts;
      for (Vertex v = a.bottom;; v = s.index.parent(v)) {
        a_verts.push_back(v);
        if (v == a.top) break;
      }
      for (const PathEnd end : {PathEnd::kTop, PathEnd::kBottom}) {
        const auto expected = brute_query(s.g, s.index, a_verts, b, end);
        const auto got = s.oracle.query_segments(a, b, end);
        ASSERT_EQ(got.has_value(), expected.has_value())
            << "a=[" << a.top << ".." << a.bottom << "] b=[" << b.top << ".."
            << b.bottom << "]";
        if (got) {
          EXPECT_EQ(s.index.post(got->v), s.index.post(expected->v));
          EXPECT_TRUE(s.g.has_edge(got->u, got->v));
        }
      }
    }
  }
}

TEST(Oracle, DeletedEdgesAreSkipped) {
  // Path 0-1-2-3-4 with back edges (0,3) and (1,3).
  Graph g = gen::path(5);
  g.add_edge(0, 3);
  g.add_edge(1, 3);
  OracleFixture s(std::move(g));
  const PathSeg seg{0, 2};  // chain 0-1-2
  auto e = s.oracle.query_vertex(3, seg, PathEnd::kBottom);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->v, 2);  // tree edge (2,3) nearest the bottom
  s.oracle.note_edge_deleted(2, 3);
  e = s.oracle.query_vertex(3, seg, PathEnd::kBottom);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->v, 1);
  s.oracle.note_edge_deleted(1, 3);
  e = s.oracle.query_vertex(3, seg, PathEnd::kBottom);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->v, 0);
  s.oracle.note_edge_deleted(0, 3);
  EXPECT_FALSE(s.oracle.query_vertex(3, seg, PathEnd::kBottom).has_value());
}

TEST(Oracle, DeletedVertexFiltersItsEdges) {
  Graph g = gen::star(5);  // center 0
  OracleFixture s(std::move(g));
  // Delete leaf 2: edges into it disappear from every query.
  s.oracle.note_vertex_deleted(2, std::vector<Vertex>{0});
  const PathSeg seg{2, 2};
  EXPECT_FALSE(s.oracle.query_vertex(0, seg, PathEnd::kTop).has_value());
}

TEST(Oracle, InsertedEdgesAreFound) {
  Graph g = gen::path(6);
  OracleFixture s(std::move(g));
  // New edge (0,4): not in the base adjacency.
  s.oracle.note_edge_inserted(0, 4);
  const PathSeg seg{0, 1};
  const auto e = s.oracle.query_vertex(4, seg, PathEnd::kTop);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->v, 0);
}

TEST(Oracle, InsertedVertexSingletonSegment) {
  Graph g = gen::path(4);
  OracleFixture s(std::move(g));
  // Insert vertex 4 adjacent to 1 and 3.
  const std::vector<Vertex> nbrs = {1, 3};
  s.oracle.note_vertex_inserted(4, nbrs);
  const PathSeg singleton{4, 4};
  EXPECT_TRUE(s.oracle.query_vertex(1, singleton, PathEnd::kTop).has_value());
  EXPECT_TRUE(s.oracle.query_vertex(3, singleton, PathEnd::kTop).has_value());
  EXPECT_FALSE(s.oracle.query_vertex(2, singleton, PathEnd::kTop).has_value());
  // The inserted vertex can also search: its edges live in the extras.
  const PathSeg seg{0, 3};
  const auto e = s.oracle.query_vertex(4, seg, PathEnd::kBottom);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->v, 3);
}

TEST(Oracle, ClearPatchesRestoresBuildState) {
  Graph g = gen::path(5);
  g.add_edge(0, 3);
  OracleFixture s(std::move(g));
  s.oracle.note_edge_deleted(0, 3);
  s.oracle.note_vertex_inserted(5, std::vector<Vertex>{2});
  EXPECT_GT(s.oracle.patch_count(), 0u);
  s.oracle.clear_patches();
  EXPECT_EQ(s.oracle.patch_count(), 0u);
  const PathSeg seg{0, 1};
  const auto e = s.oracle.query_vertex(3, seg, PathEnd::kTop);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->v, 0) << "deleted edge must reappear after clear_patches";
}

TEST(Oracle, DescendantDirectionProbe) {
  // After rerooting (fault-tolerant mode) a searcher can sit ABOVE the
  // segment in base coordinates; probe_down must find base back edges into
  // the segment. Base tree: chain 0-1-2-3-4 plus back edge (1,4).
  Graph g = gen::path(5);
  g.add_edge(1, 4);
  OracleFixture s(std::move(g));
  const PathSeg seg{4, 4};  // singleton deep segment
  const auto e = s.oracle.query_vertex(1, seg, PathEnd::kTop);
  ASSERT_TRUE(e.has_value()) << "u above the segment must still see its edge";
  EXPECT_EQ(e->v, 4);
  EXPECT_EQ(e->u, 1);
}

}  // namespace
}  // namespace pardfs
