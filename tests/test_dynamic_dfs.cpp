// Unit tests for DynamicDfs: each update kind in isolation, forest
// maintenance of disconnected graphs, and the super-root conventions.
#include "core/dynamic_dfs.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "tree/validation.hpp"
#include "util/random.hpp"

namespace pardfs {
namespace {

void expect_valid(const DynamicDfs& dfs, const char* what) {
  const auto validation = validate_dfs_forest(dfs.graph(), dfs.parent());
  EXPECT_TRUE(validation.ok) << what << ": " << validation.reason;
}

TEST(DynamicDfs, InitialForestIsValid) {
  Rng rng(1);
  DynamicDfs dfs(gen::random_connected(50, 80, rng));
  expect_valid(dfs, "initial");
}

TEST(DynamicDfs, InsertBackEdgeKeepsTree) {
  DynamicDfs dfs(gen::path(6));
  const auto before =
      std::vector<Vertex>(dfs.parent().begin(), dfs.parent().end());
  dfs.insert_edge(0, 4);  // ancestor pair on the path tree
  EXPECT_EQ(before, std::vector<Vertex>(dfs.parent().begin(), dfs.parent().end()));
  expect_valid(dfs, "back edge insert");
}

TEST(DynamicDfs, InsertCrossEdgeReroots) {
  // Star center 0: inserting (1,2) connects two sibling leaves.
  DynamicDfs dfs(gen::star(5));
  dfs.insert_edge(1, 2);
  expect_valid(dfs, "cross edge insert");
  EXPECT_TRUE(dfs.graph().has_edge(1, 2));
}

TEST(DynamicDfs, InsertEdgeMergesComponents) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  DynamicDfs dfs(std::move(g));
  EXPECT_NE(dfs.root_of(0), dfs.root_of(3));
  dfs.insert_edge(2, 3);
  expect_valid(dfs, "component merge");
  EXPECT_EQ(dfs.root_of(0), dfs.root_of(3));
}

TEST(DynamicDfs, DeleteNonTreeEdgeKeepsTree) {
  Graph g = gen::cycle(8);
  DynamicDfs dfs(std::move(g));
  // One cycle edge is a back edge of the DFS tree; find it and delete it.
  Vertex u = kNullVertex, v = kNullVertex;
  for (const Edge& e : dfs.graph().edges()) {
    if (dfs.parent_of(e.u) != e.v && dfs.parent_of(e.v) != e.u) {
      u = e.u;
      v = e.v;
      break;
    }
  }
  ASSERT_NE(u, kNullVertex);
  const auto before =
      std::vector<Vertex>(dfs.parent().begin(), dfs.parent().end());
  dfs.delete_edge(u, v);
  EXPECT_EQ(before, std::vector<Vertex>(dfs.parent().begin(), dfs.parent().end()));
  expect_valid(dfs, "non-tree delete");
}

TEST(DynamicDfs, DeleteTreeEdgeReattachesViaBackEdge) {
  // Path 0-1-2-3-4 plus back edge (0,4). Deleting (1,2) must reattach the
  // tail {2,3,4} through (0,4).
  Graph g = gen::path(5);
  g.add_edge(0, 4);
  DynamicDfs dfs(std::move(g));
  dfs.delete_edge(1, 2);
  expect_valid(dfs, "tree edge delete w/ back edge");
  EXPECT_EQ(dfs.root_of(4), dfs.root_of(0));
}

TEST(DynamicDfs, DeleteBridgeSplitsComponent) {
  DynamicDfs dfs(gen::path(6));
  dfs.delete_edge(2, 3);
  expect_valid(dfs, "bridge delete");
  EXPECT_NE(dfs.root_of(0), dfs.root_of(5));
  EXPECT_EQ(dfs.root_of(5), dfs.root_of(3));
}

TEST(DynamicDfs, DeleteVertexMiddleOfPath) {
  DynamicDfs dfs(gen::path(7));
  dfs.delete_vertex(3);
  expect_valid(dfs, "vertex delete splitting path");
  EXPECT_FALSE(dfs.graph().is_alive(3));
  EXPECT_NE(dfs.root_of(0), dfs.root_of(6));
}

TEST(DynamicDfs, DeleteVertexWithReattachment) {
  // Cycle: deleting any vertex keeps the rest connected.
  DynamicDfs dfs(gen::cycle(10));
  dfs.delete_vertex(4);
  expect_valid(dfs, "vertex delete on cycle");
  EXPECT_EQ(dfs.root_of(3), dfs.root_of(5));
  EXPECT_EQ(dfs.graph().num_vertices(), 9);
}

TEST(DynamicDfs, DeleteRootVertex) {
  DynamicDfs dfs(gen::star(6));
  const Vertex root = dfs.root_of(1);
  dfs.delete_vertex(root);
  expect_valid(dfs, "root delete");
  EXPECT_EQ(dfs.graph().num_vertices(), 5);
}

TEST(DynamicDfs, InsertIsolatedVertex) {
  DynamicDfs dfs(gen::path(4));
  const Vertex v = dfs.insert_vertex({});
  expect_valid(dfs, "isolated vertex insert");
  EXPECT_EQ(dfs.parent_of(v), kNullVertex);
  EXPECT_EQ(dfs.root_of(v), v);
}

TEST(DynamicDfs, InsertVertexWithOneNeighbor) {
  DynamicDfs dfs(gen::path(4));
  const Vertex nbrs[] = {2};
  const Vertex v = dfs.insert_vertex(nbrs);
  expect_valid(dfs, "leaf vertex insert");
  EXPECT_EQ(dfs.parent_of(v), 2);
}

TEST(DynamicDfs, InsertVertexConnectingManyBranches) {
  // Star center 0 with leaves 1..5; new vertex adjacent to three leaves.
  DynamicDfs dfs(gen::star(6));
  const Vertex nbrs[] = {1, 3, 5};
  const Vertex v = dfs.insert_vertex(nbrs);
  expect_valid(dfs, "multi-neighbor vertex insert");
  for (const Vertex u : nbrs) EXPECT_TRUE(dfs.graph().has_edge(v, u));
}

TEST(DynamicDfs, InsertVertexMergingComponents) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  DynamicDfs dfs(std::move(g));
  const Vertex nbrs[] = {1, 2};
  const Vertex v = dfs.insert_vertex(nbrs);
  expect_valid(dfs, "component-merging vertex insert");
  EXPECT_EQ(dfs.root_of(0), dfs.root_of(3));
  EXPECT_EQ(dfs.root_of(v), dfs.root_of(0));
}

TEST(DynamicDfs, EmptyGraphGrowsFromNothing) {
  DynamicDfs dfs(Graph{});
  const Vertex a = dfs.insert_vertex({});
  const Vertex nbrs[] = {a};
  const Vertex b = dfs.insert_vertex(nbrs);
  expect_valid(dfs, "grown from empty");
  EXPECT_TRUE(dfs.graph().has_edge(a, b));
}

TEST(DynamicDfs, MoveConstructThenUpdateThenValidate) {
  // The embedded oracle holds a pointer to the base-tree index; the move
  // constructor must re-point it at the moved-into instance's base index, or
  // the first oracle-driven update would read freed memory.
  Rng rng(60);
  DynamicDfs source(gen::random_connected(96, 240, rng));
  // A structural update first, so the current tree diverges from the base
  // and post-move queries exercise the Theorem 9 decomposition too.
  Vertex child = kNullVertex;
  for (Vertex v = 0; v < source.graph().capacity(); ++v) {
    if (source.parent_of(v) != kNullVertex) {
      child = v;
      break;
    }
  }
  ASSERT_NE(child, kNullVertex);
  source.delete_edge(source.parent_of(child), child);
  const auto state = std::vector<Vertex>(source.parent().begin(),
                                         source.parent().end());
  DynamicDfs moved(std::move(source));
  EXPECT_EQ(state, std::vector<Vertex>(moved.parent().begin(),
                                       moved.parent().end()));
  for (int step = 0; step < 30; ++step) {
    gen::Update u;
    ASSERT_TRUE(gen::random_update(moved.graph(), rng, 1, 1, 0.2, 0.2, u));
    switch (u.kind) {
      case gen::UpdateKind::kInsertEdge: moved.insert_edge(u.u, u.v); break;
      case gen::UpdateKind::kDeleteEdge: moved.delete_edge(u.u, u.v); break;
      case gen::UpdateKind::kInsertVertex: moved.insert_vertex(u.neighbors); break;
      case gen::UpdateKind::kDeleteVertex: moved.delete_vertex(u.u); break;
    }
    expect_valid(moved, "update after move construction");
  }
}

TEST(DynamicDfs, MoveAssignThenUpdateThenValidate) {
  Rng rng(61);
  DynamicDfs source(gen::random_connected(80, 200, rng));
  source.delete_vertex(5);  // diverge current tree from base pre-move
  DynamicDfs target(gen::path(4));
  target = std::move(source);
  EXPECT_EQ(target.graph().num_vertices(), 79);
  // Mixed updates across at least one epoch boundary: the rebase path
  // (oracle rebuild over the moved base index) must work too.
  for (std::size_t step = 0; step <= target.epoch_period() + 4; ++step) {
    gen::Update u;
    ASSERT_TRUE(gen::random_update(target.graph(), rng, 1, 1, 0.2, 0.2, u));
    switch (u.kind) {
      case gen::UpdateKind::kInsertEdge: target.insert_edge(u.u, u.v); break;
      case gen::UpdateKind::kDeleteEdge: target.delete_edge(u.u, u.v); break;
      case gen::UpdateKind::kInsertVertex: target.insert_vertex(u.neighbors); break;
      case gen::UpdateKind::kDeleteVertex: target.delete_vertex(u.u); break;
    }
    expect_valid(target, "update after move assignment");
  }
}

TEST(DynamicDfs, StatsReflectWork) {
  const Vertex n = 512;
  Graph g = gen::path(n);
  g.add_edge(0, n - 1);
  DynamicDfs dfs(std::move(g));
  dfs.delete_edge(n / 2 - 1, n / 2);  // forces a reroot through the back edge
  EXPECT_GT(dfs.last_stats().global_rounds, 0u);
  EXPECT_GT(dfs.last_stats().vertices_traversed, 0u);
  EXPECT_LE(dfs.last_stats().global_rounds, 64u) << "polylog rounds";
  expect_valid(dfs, "stats update");
}

}  // namespace
}  // namespace pardfs
