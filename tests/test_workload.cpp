// WorkloadDriver contracts: byte-identical streams per seed (benchmarks and
// the fuzz harness replay them), the mirror-feasibility guarantee (a single
// producer never sees kRejected — including the dynamic_map scenario, whose
// delete/restore churn is the easiest place to get id bookkeeping wrong),
// and the dynamic_map cell-grid invariants.
#include "service/workload.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "service/dfs_service.hpp"
#include "tree/validation.hpp"

namespace pardfs::service {
namespace {

constexpr Scenario kAllScenarios[] = {
    Scenario::kReadHeavy, Scenario::kInsertChurn, Scenario::kAdversarialStar,
    Scenario::kSocialMix, Scenario::kDynamicMap,
};

bool same_update(const GraphUpdate& a, const GraphUpdate& b) {
  return a.kind == b.kind && a.u == b.u && a.v == b.v &&
         a.neighbors == b.neighbors;
}

TEST(Workload, StreamsAreDeterministicPerSeed) {
  for (const Scenario scenario : kAllScenarios) {
    const WorkloadSpec spec{scenario, 64, 42};
    WorkloadDriver a(spec);
    WorkloadDriver b(spec);
    for (int i = 0; i < 300; ++i) {
      const GraphUpdate ua = a.next();
      const GraphUpdate ub = b.next();
      ASSERT_TRUE(same_update(ua, ub))
          << scenario_name(scenario) << " diverged at step " << i;
    }
    EXPECT_EQ(a.graph().num_vertices(), b.graph().num_vertices());
    EXPECT_EQ(a.graph().num_edges(), b.graph().num_edges());
  }
}

TEST(Workload, DifferentSeedsDiverge) {
  WorkloadDriver a({Scenario::kSocialMix, 64, 1});
  WorkloadDriver b({Scenario::kSocialMix, 64, 2});
  bool diverged = false;
  for (int i = 0; i < 50 && !diverged; ++i) {
    diverged = !same_update(a.next(), b.next());
  }
  EXPECT_TRUE(diverged);
}

TEST(Workload, DynamicMapGridShape) {
  const WorkloadSpec spec{Scenario::kDynamicMap, 96, 7};
  WorkloadDriver driver(spec);
  ASSERT_GT(driver.map_rows(), 0);
  ASSERT_GT(driver.map_cols(), 0);
  EXPECT_GE(driver.map_rows() * driver.map_cols(), 96);
  // Initially every cell is open and holds its row-major vertex id.
  for (Vertex r = 0; r < driver.map_rows(); ++r) {
    for (Vertex c = 0; c < driver.map_cols(); ++c) {
      EXPECT_EQ(driver.cell_vertex(r, c), r * driver.map_cols() + c);
    }
  }
}

TEST(Workload, DynamicMapCellsTrackTheMirror) {
  const WorkloadSpec spec{Scenario::kDynamicMap, 80, 11};
  WorkloadDriver driver(spec);
  for (int i = 0; i < 400; ++i) driver.next();
  const Graph& g = driver.graph();
  // Every open cell's vertex is alive; blocked cells contribute nothing —
  // so open cells and alive vertices are in bijection.
  Vertex open = 0;
  for (Vertex r = 0; r < driver.map_rows(); ++r) {
    for (Vertex c = 0; c < driver.map_cols(); ++c) {
      const Vertex id = driver.cell_vertex(r, c);
      if (id == kNullVertex) continue;
      ++open;
      ASSERT_TRUE(g.is_alive(id)) << "cell (" << r << "," << c << ")";
    }
  }
  EXPECT_EQ(open, g.num_vertices());
  EXPECT_GT(open, 0);
}

// The mirror-feasibility contract through the real service: a single
// producer streaming driver updates must never be rejected, and every
// published forest must validate against the driver's mirror.
TEST(Workload, DynamicMapFeedsServiceWithoutRejections) {
  const WorkloadSpec spec{Scenario::kDynamicMap, 96, 20260808};
  WorkloadDriver driver(spec);
  ServiceConfig config;
  config.serve_cuts = true;
  DfsService svc(make_initial_graph(spec), config);
  for (int i = 0; i < 300; ++i) {
    const std::uint64_t version = svc.apply_sync(driver.next());
    ASSERT_NE(version, UpdateTicket::kRejected) << "update " << i;
  }
  svc.stop();
  EXPECT_EQ(svc.stats().updates_rejected, 0u);
  EXPECT_EQ(svc.stats().updates_applied, 300u);
  // After stop() the mirror and the served graph agree exactly.
  const SnapshotPtr snap = svc.snapshot();
  EXPECT_EQ(snap->num_vertices(), driver.graph().num_vertices());
  EXPECT_EQ(snap->num_edges(), driver.graph().num_edges());
  const auto val = validate_dfs_forest(driver.graph(), snap->parent());
  EXPECT_TRUE(val.ok) << val.reason;
  EXPECT_TRUE(snap->serves_cuts());
}

}  // namespace
}  // namespace pardfs::service
