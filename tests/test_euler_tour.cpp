// The parallel Euler-tour construction (Theorem 4 substrate) must agree
// exactly with the sequential TreeIndex tables.
#include "tree/euler_tour.hpp"

#include <gtest/gtest.h>

#include "baseline/static_dfs.hpp"
#include "graph/generators.hpp"
#include "tree/tree_index.hpp"
#include "util/random.hpp"

namespace pardfs {
namespace {

void expect_matches_index(std::span<const Vertex> parent,
                          std::span<const std::uint8_t> alive) {
  TreeIndex index;
  index.build(parent, alive);
  const EulerTourResult r = euler_tour(parent, alive);
  for (std::size_t v = 0; v < parent.size(); ++v) {
    if (!alive.empty() && !alive[v]) {
      EXPECT_EQ(r.size[v], 0);
      continue;
    }
    const Vertex vv = static_cast<Vertex>(v);
    EXPECT_EQ(r.depth[v], index.depth(vv)) << "depth of " << v;
    EXPECT_EQ(r.size[v], index.size(vv)) << "size of " << v;
    EXPECT_EQ(r.pre[v], index.pre(vv)) << "pre of " << v;
    EXPECT_EQ(r.post[v], index.post(vv)) << "post of " << v;
  }
}

TEST(EulerTour, SingleChain) {
  std::vector<Vertex> parent = {kNullVertex, 0, 1, 2, 3};
  expect_matches_index(parent, {});
}

TEST(EulerTour, Star) {
  std::vector<Vertex> parent = {kNullVertex, 0, 0, 0, 0, 0};
  expect_matches_index(parent, {});
}

TEST(EulerTour, SingletonTree) {
  std::vector<Vertex> parent = {kNullVertex};
  expect_matches_index(parent, {});
}

TEST(EulerTour, ForestWithSingletons) {
  // Trees: {0}, {1,2,3}, {4}, {5,6}
  std::vector<Vertex> parent = {kNullVertex, kNullVertex, 1,
                                1,           kNullVertex, kNullVertex, 5};
  expect_matches_index(parent, {});
}

TEST(EulerTour, DeadVerticesSkipped) {
  std::vector<Vertex> parent = {kNullVertex, 0, kNullVertex, 0};
  std::vector<std::uint8_t> alive = {1, 1, 0, 1};
  expect_matches_index(parent, alive);
}

TEST(EulerTour, RandomTreesMatchSequential) {
  Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    const Vertex n = static_cast<Vertex>(2 + rng.below(500));
    Graph g = gen::random_connected(n, 0, rng);
    const auto parent = static_dfs(g);
    expect_matches_index(parent, {});
  }
}

TEST(EulerTour, RandomForestsMatchSequential) {
  Rng rng(77);
  for (int trial = 0; trial < 10; ++trial) {
    const Vertex n = static_cast<Vertex>(10 + rng.below(300));
    Graph g = gen::gnp(n, 2.0 / n, rng);  // sparse: many components
    const auto parent = static_dfs(g);
    expect_matches_index(parent, {});
  }
}

TEST(EulerTour, DeepPathStressesListRanking) {
  const Vertex n = 20000;
  std::vector<Vertex> parent(static_cast<std::size_t>(n));
  parent[0] = kNullVertex;
  for (Vertex v = 1; v < n; ++v) parent[static_cast<std::size_t>(v)] = v - 1;
  const EulerTourResult r = euler_tour(parent, {});
  EXPECT_EQ(r.depth[static_cast<std::size_t>(n - 1)], n - 1);
  EXPECT_EQ(r.size[0], n);
  EXPECT_EQ(r.post[0], n - 1);
  EXPECT_EQ(r.pre[static_cast<std::size_t>(n - 1)], n - 1);
}

}  // namespace
}  // namespace pardfs
