// The fuzz harness tested as a subsystem: small runs of every family x entry
// cell must come back clean, the whole thing must be deterministic per seed
// (including across engine thread counts), and — the part that proves the
// oracle has teeth — an injected corruption must FAIL the run with a replay
// line that reproduces it.
#include "testing/fuzz.hpp"

#include <gtest/gtest.h>

#include <string>

namespace pardfs::testing {
namespace {

FuzzOptions small_options(FuzzFamily family, FuzzEntry entry,
                          std::uint64_t seed) {
  FuzzOptions o;
  o.seed = seed;
  o.family = family;
  o.entry = entry;
  o.n = 48;
  o.batches = 8;
  o.queries_per_batch = 12;
  o.cut_checks_per_batch = 2;
  return o;
}

TEST(Fuzz, EveryFamilyAndEntryPassesSmallRuns) {
  for (const FuzzFamily family :
       {FuzzFamily::kRandom, FuzzFamily::kPowerLaw, FuzzFamily::kGrid,
        FuzzFamily::kDynamicMap}) {
    for (const FuzzEntry entry : {FuzzEntry::kCore, FuzzEntry::kService}) {
      for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
        const FuzzResult r = run_fuzz(small_options(family, entry, seed));
        ASSERT_TRUE(r.ok) << family_name(family) << "/" << entry_name(entry)
                          << " seed " << seed << ": " << r.failure
                          << "\nreplay: " << r.replay;
        EXPECT_EQ(r.batches, 8u);
        EXPECT_GT(r.updates, 0u);
        EXPECT_GT(r.queries, 0u);
      }
    }
  }
}

TEST(Fuzz, DeterministicPerSeed) {
  for (const FuzzEntry entry : {FuzzEntry::kCore, FuzzEntry::kService}) {
    const FuzzOptions o = small_options(FuzzFamily::kPowerLaw, entry, 7);
    const FuzzResult a = run_fuzz(o);
    const FuzzResult b = run_fuzz(o);
    EXPECT_EQ(a.ok, b.ok);
    EXPECT_EQ(a.batches, b.batches);
    EXPECT_EQ(a.updates, b.updates);
    EXPECT_EQ(a.queries, b.queries);
  }
}

TEST(Fuzz, DeterministicAcrossThreadCounts) {
  // The engine's forest is identical at any worker-team size (the PR 4
  // contract), so the whole fuzz verdict must be too.
  for (const FuzzEntry entry : {FuzzEntry::kCore, FuzzEntry::kService}) {
    FuzzOptions o = small_options(FuzzFamily::kRandom, entry, 9);
    o.num_threads = 1;
    const FuzzResult serial = run_fuzz(o);
    o.num_threads = 4;
    const FuzzResult parallel = run_fuzz(o);
    ASSERT_TRUE(serial.ok) << serial.failure;
    ASSERT_TRUE(parallel.ok) << parallel.failure;
    EXPECT_EQ(serial.batches, parallel.batches);
    EXPECT_EQ(serial.updates, parallel.updates);
    EXPECT_EQ(serial.queries, parallel.queries);
  }
}

TEST(Fuzz, InjectedCorruptionIsCaughtWithReplayLine) {
  for (const FuzzEntry entry : {FuzzEntry::kCore, FuzzEntry::kService}) {
    FuzzOptions o = small_options(FuzzFamily::kGrid, entry, 5);
    o.corrupt_at = 3;
    const FuzzResult r = run_fuzz(o);
    ASSERT_FALSE(r.ok) << entry_name(entry)
                       << ": corrupted forest slipped past the oracle";
    EXPECT_NE(r.failure.find("batch 3"), std::string::npos) << r.failure;
    EXPECT_NE(r.replay.find("--seed=5"), std::string::npos) << r.replay;
    EXPECT_NE(r.replay.find("--corrupt-at=3"), std::string::npos) << r.replay;
    EXPECT_NE(r.replay.find(std::string("--entry=") + entry_name(entry)),
              std::string::npos)
        << r.replay;
#if !defined(PARDFS_NO_METRICS)
    // The failure carries the registry's fuzz counters so a replayed seed
    // can be cross-checked against the original run's counts.
    EXPECT_NE(r.obs_counters.find("pardfs_fuzz_batches_total="),
              std::string::npos)
        << r.obs_counters;
    EXPECT_NE(r.obs_counters.find("pardfs_fuzz_queries_total="),
              std::string::npos)
        << r.obs_counters;
#else
    EXPECT_TRUE(r.obs_counters.empty());
#endif
    // The replay line must actually reproduce the failure.
    const FuzzResult again = run_fuzz(o);
    EXPECT_EQ(again.failure, r.failure);
  }
}

TEST(Fuzz, SoakMatrixAccumulatesAcrossCells) {
  const FuzzResult r = run_soak(/*seed_base=*/100, /*seeds=*/1, /*batches=*/4,
                                /*n=*/32);
  ASSERT_TRUE(r.ok) << r.failure << "\nreplay: " << r.replay;
  // 1 seed x 4 families x (3 fault-free entries + kChaosSchedulesPerSeed
  // chaos schedules) x 4 batches.
  EXPECT_EQ(r.batches, 4u * (3 + kChaosSchedulesPerSeed) * 4);
}

TEST(Fuzz, NamesRoundTrip) {
  for (const FuzzFamily f : {FuzzFamily::kRandom, FuzzFamily::kPowerLaw,
                             FuzzFamily::kGrid, FuzzFamily::kDynamicMap}) {
    FuzzFamily parsed;
    ASSERT_TRUE(parse_family(family_name(f), parsed));
    EXPECT_EQ(parsed, f);
  }
  for (const FuzzEntry e : {FuzzEntry::kCore, FuzzEntry::kService,
                            FuzzEntry::kSharded, FuzzEntry::kChaos}) {
    FuzzEntry parsed;
    ASSERT_TRUE(parse_entry(entry_name(e), parsed));
    EXPECT_EQ(parsed, e);
  }
  FuzzFamily f;
  FuzzEntry e;
  EXPECT_FALSE(parse_family("hexagonal", f));
  EXPECT_FALSE(parse_entry("sideways", e));
}

}  // namespace
}  // namespace pardfs::testing
