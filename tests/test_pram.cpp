#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "pram/list_ranking.hpp"
#include "pram/merge_sort.hpp"
#include "pram/parallel.hpp"
#include "pram/scan.hpp"
#include "util/random.hpp"

namespace pardfs::pram {
namespace {

TEST(ParallelFor, CoversRange) {
  std::vector<int> hits(10000, 0);
  parallel_for_t(0, hits.size(), [&](std::size_t i) { hits[i]++; });
  EXPECT_TRUE(std::all_of(hits.begin(), hits.end(), [](int h) { return h == 1; }));
}

TEST(ParallelReduce, SumMatchesSerial) {
  const std::size_t n = 100000;
  const std::uint64_t total = parallel_reduce(
      std::size_t{0}, n, std::uint64_t{0}, [](std::size_t i) { return std::uint64_t(i); },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(total, std::uint64_t(n) * (n - 1) / 2);
}

TEST(ParallelReduce, EmptyRangeReturnsIdentity) {
  const int r = parallel_reduce(
      std::size_t{5}, std::size_t{5}, -1, [](std::size_t) { return 7; },
      [](int a, int b) { return a + b; });
  EXPECT_EQ(r, -1);
}

TEST(Scan, ExclusivePrefixSums) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{5000}}) {
    std::vector<std::uint32_t> in(n), out(n);
    Rng rng(n + 1);
    for (auto& x : in) x = static_cast<std::uint32_t>(rng.below(100));
    const std::uint64_t total = exclusive_scan(in, out);
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(out[i], acc) << "index " << i;
      acc += in[i];
    }
    EXPECT_EQ(total, acc);
  }
}

TEST(Scan, PackIndicesKeepsOrder) {
  std::vector<std::uint8_t> flags = {1, 0, 0, 1, 1, 0, 1};
  const auto packed = pack_indices(flags);
  const std::vector<std::uint32_t> expected = {0, 3, 4, 6};
  EXPECT_EQ(packed, expected);
}

TEST(ListRanking, SingleList) {
  // 3 -> 1 -> 4 -> 0 -> end; node 2 is its own tail.
  std::vector<std::uint32_t> next = {kListEnd, 4, kListEnd, 1, 0};
  const auto rank = list_rank(next);
  EXPECT_EQ(rank[3], 3u);
  EXPECT_EQ(rank[1], 2u);
  EXPECT_EQ(rank[4], 1u);
  EXPECT_EQ(rank[0], 0u);
  EXPECT_EQ(rank[2], 0u);
}

TEST(ListRanking, LongChain) {
  const std::size_t n = 4096;
  std::vector<std::uint32_t> next(n);
  for (std::size_t i = 0; i < n; ++i) {
    next[i] = i + 1 < n ? static_cast<std::uint32_t>(i + 1) : kListEnd;
  }
  const auto rank = list_rank(next);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(rank[i], n - 1 - i);
    if (i % 577 == 0) continue;  // spot checks are enough for failure output
  }
}

TEST(ListRanking, ManyDisjointLists) {
  // Pairs: 0->1, 2->3, ...
  const std::size_t n = 1000;
  std::vector<std::uint32_t> next(n);
  for (std::size_t i = 0; i < n; ++i) {
    next[i] = i % 2 == 0 ? static_cast<std::uint32_t>(i + 1) : kListEnd;
  }
  const auto rank = list_rank(next);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(rank[i], i % 2 == 0 ? 1u : 0u);
}

TEST(MergeSort, SortsRandomKeys) {
  Rng rng(42);
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{100}, std::size_t{10000}}) {
    std::vector<std::uint32_t> data(n);
    for (auto& x : data) x = static_cast<std::uint32_t>(rng());
    std::vector<std::uint32_t> expected = data;
    std::sort(expected.begin(), expected.end());
    merge_sort(data);
    EXPECT_EQ(data, expected) << "n=" << n;
  }
}

TEST(MergeSort, PairsSortStablyByKey) {
  Rng rng(7);
  const std::size_t n = 20000;
  std::vector<std::uint64_t> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = (rng.below(50) << 32) | i;  // key in high bits, unique payload low
  }
  std::vector<std::uint64_t> expected = data;
  std::stable_sort(expected.begin(), expected.end(),
                   [](std::uint64_t a, std::uint64_t b) { return (a >> 32) < (b >> 32); });
  merge_sort_pairs(data);
  EXPECT_EQ(data, expected);
}

TEST(Rng, DeterministicAndUnbiasedish) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  Rng c(1);
  std::size_t lo = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (c.below(10) < 5) ++lo;
  }
  EXPECT_NEAR(static_cast<double>(lo) / trials, 0.5, 0.03);
}

}  // namespace
}  // namespace pardfs::pram
