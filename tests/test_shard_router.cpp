// The component-sharded serving layer (DESIGN.md §12): partition coverage,
// merge-determinism — the assembled forest after cross-shard activity is
// byte-identical at 1 / 2 / 4 / 16 shards and any thread count — the
// two-shard merge protocol (directory flip, cut-structure refresh on both
// sides, migration counters), RouterView totality, and the PR 4 submit-vs-
// stop race regression re-run against every shard's queue.
#include "service/shard_router.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "service/dfs_service.hpp"
#include "tree/validation.hpp"
#include "util/random.hpp"

namespace pardfs::service {
namespace {

// k disjoint paths of `len` vertices each: path c covers ids
// [c*len, (c+1)*len). Round-robin placement puts path c on shard c % S.
Graph disjoint_paths(int k, int len) {
  Graph g;
  for (int c = 0; c < k; ++c) {
    for (int i = 0; i < len; ++i) g.add_vertex();
    for (int i = 1; i < len; ++i) {
      g.add_edge(static_cast<Vertex>(c * len + i - 1),
                 static_cast<Vertex>(c * len + i));
    }
  }
  return g;
}

// A deterministic update stream over an 8-component universe: cross- and
// intra-component edge churn, vertex inserts (attached and isolated) and
// deletions. Applied serially (apply_sync), every op sees the identical
// global state at any shard count, so acceptance — and the forest — must
// match a 1-shard run exactly.
std::vector<GraphUpdate> mixed_stream(int ops, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<GraphUpdate> out;
  Vertex known = 64;  // matches disjoint_paths(8, 8)
  for (int i = 0; i < ops; ++i) {
    const std::uint64_t dice = rng.below(100);
    if (dice < 45) {
      out.push_back(GraphUpdate::insert_edge(
          static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(known))),
          static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(known)))));
    } else if (dice < 70) {
      out.push_back(GraphUpdate::delete_edge(
          static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(known))),
          static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(known)))));
    } else if (dice < 80) {
      std::vector<Vertex> nbrs;
      const std::uint64_t deg = rng.below(3);
      for (std::uint64_t d = 0; d < deg; ++d) {
        nbrs.push_back(static_cast<Vertex>(
            rng.below(static_cast<std::uint64_t>(known))));
      }
      out.push_back(GraphUpdate::insert_vertex(std::move(nbrs)));
      ++known;  // ids are assigned densely; rejected inserts skip one guess,
                // which only narrows the endpoint distribution — still valid
    } else if (dice < 90) {
      out.push_back(GraphUpdate::insert_vertex({}));
      ++known;
    } else {
      out.push_back(GraphUpdate::delete_vertex(
          static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(known)))));
    }
  }
  return out;
}

struct DrivenRouter {
  std::vector<Vertex> parent;
  std::vector<std::uint8_t> alive;
  ServiceStats stats;
  std::uint64_t accepted = 0;
  std::uint64_t rejected = 0;
  Vertex num_vertices = 0;
  std::int64_t num_edges = 0;
};

DrivenRouter drive(std::size_t num_shards, int num_threads,
                   const std::vector<GraphUpdate>& stream) {
  ServiceConfig config;
  config.num_shards = num_shards;
  config.num_threads = num_threads;
  ShardRouter router(disjoint_paths(8, 8), config);
  DrivenRouter out;
  for (const GraphUpdate& u : stream) {
    if (router.apply_sync(u) == UpdateTicket::kRejected) {
      ++out.rejected;
    } else {
      ++out.accepted;
    }
  }
  out.parent = router.assemble_parent();
  out.alive = router.assemble_alive();
  out.num_vertices = router.num_vertices();
  out.num_edges = router.num_edges();
  out.stats = router.stats();
  router.stop();
  return out;
}

TEST(ShardRouter, InitialPartitionCoversComponentsShardDisjointly) {
  ShardRouter router(disjoint_paths(8, 8), {.num_shards = 4});
  EXPECT_EQ(router.num_shards(), 4u);
  EXPECT_EQ(router.num_vertices(), 64);
  EXPECT_EQ(router.num_edges(), 8 * 7);
  for (Vertex v = 0; v < 64; ++v) {
    const int s = router.shard_of(v);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    // Whole components: every vertex of a path shares its path-head's shard.
    EXPECT_EQ(s, router.shard_of((v / 8) * 8));
    EXPECT_TRUE(router.view().contains(v));
  }
  // Round-robin over components in ascending root order.
  EXPECT_EQ(router.shard_of(0), 0);
  EXPECT_EQ(router.shard_of(8), 1);
  EXPECT_EQ(router.shard_of(16), 2);
  EXPECT_EQ(router.shard_of(24), 3);
  EXPECT_EQ(router.shard_of(32), 0);
  router.stop();
}

TEST(ShardRouter, SingleShardMatchesDfsService) {
  // The façade and a 1-shard router must publish identical forests.
  DfsService svc(disjoint_paths(4, 4));
  ShardRouter router(disjoint_paths(4, 4), {.num_shards = 1});
  const auto want = svc.snapshot()->parent();
  const auto got = router.assemble_parent();
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(want[i], got[i]);
  svc.stop();
  router.stop();
}

TEST(ShardRouter, ForestBytesIdenticalAcrossShardAndThreadCounts) {
  const std::vector<GraphUpdate> stream = mixed_stream(400, 1234);
  const DrivenRouter base = drive(1, 0, stream);
  EXPECT_EQ(base.stats.shard_migrations, 0u);  // S=1 has no cross-shard ops
  EXPECT_EQ(base.stats.cross_shard_inserts, 0u);
  // Validate the 1-shard forest against an independently replayed mirror.
  {
    Graph mirror = disjoint_paths(8, 8);
    for (const GraphUpdate& u : stream) {
      switch (u.kind) {
        case GraphUpdate::Kind::kInsertEdge:
          if (mirror.is_alive(u.u) && mirror.is_alive(u.v) && u.u != u.v &&
              !mirror.has_edge(u.u, u.v)) {
            mirror.add_edge(u.u, u.v);
          }
          break;
        case GraphUpdate::Kind::kDeleteEdge:
          if (mirror.is_alive(u.u) && mirror.is_alive(u.v)) {
            mirror.remove_edge(u.u, u.v);
          }
          break;
        case GraphUpdate::Kind::kInsertVertex: {
          bool ok = true;
          for (const Vertex n : u.neighbors) ok = ok && mirror.is_alive(n);
          for (std::size_t a = 0; ok && a < u.neighbors.size(); ++a) {
            for (std::size_t b = a + 1; b < u.neighbors.size(); ++b) {
              ok = ok && u.neighbors[a] != u.neighbors[b];
            }
          }
          if (ok) {
            mirror.add_vertex(u.neighbors);
          } else {
            // The service rejected it but still never assigns the id twice:
            // rejected inserts consume nothing.
          }
          break;
        }
        case GraphUpdate::Kind::kDeleteVertex:
          if (mirror.is_alive(u.u)) mirror.remove_vertex(u.u);
          break;
      }
    }
    ASSERT_EQ(static_cast<std::size_t>(mirror.capacity()),
              base.parent.size());
    const ValidationResult ok = validate_dfs_forest(mirror, base.parent);
    EXPECT_TRUE(ok.ok) << ok.reason;
    EXPECT_EQ(mirror.num_edges(), base.num_edges);
    EXPECT_EQ(mirror.num_vertices(), base.num_vertices);
  }
  for (const std::size_t shards : {std::size_t{2}, std::size_t{4},
                                   std::size_t{16}}) {
    for (const int threads : {0, 2}) {
      const DrivenRouter run = drive(shards, threads, stream);
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " threads=" + std::to_string(threads));
      // Byte-identical forest and liveness...
      ASSERT_EQ(run.parent.size(), base.parent.size());
      EXPECT_EQ(run.parent, base.parent);
      EXPECT_EQ(run.alive, base.alive);
      // ...and shard-count-invariant aggregates. (Per-epoch counters —
      // batches, index_rebuilds, snapshots_published — legitimately differ:
      // each shard runs its own epoch clock.)
      EXPECT_EQ(run.accepted, base.accepted);
      EXPECT_EQ(run.rejected, base.rejected);
      EXPECT_EQ(run.stats.updates_applied, base.stats.updates_applied);
      EXPECT_EQ(run.stats.updates_rejected, base.stats.updates_rejected);
      EXPECT_EQ(run.num_vertices, base.num_vertices);
      EXPECT_EQ(run.num_edges, base.num_edges);
      EXPECT_GT(run.stats.cross_shard_inserts, 0u);
      EXPECT_GT(run.stats.shard_migrations, 0u);
    }
  }
}

TEST(ShardRouter, CrossShardInsertRunsTheMergeProtocol) {
  // The metric assertions below read the process-global counters: zero them
  // so earlier tests' migrations don't leak in.
  obs::Registry::global().reset();
  ShardRouter router(disjoint_paths(2, 5), {.num_shards = 2});
  ASSERT_EQ(router.shard_of(0), 0);
  ASSERT_EQ(router.shard_of(5), 1);
  EXPECT_FALSE(router.view().same_component(0, 5));
  const std::uint64_t version =
      router.apply_sync(GraphUpdate::insert_edge(4, 5));
  ASSERT_NE(version, UpdateTicket::kRejected);
  // Equal component sizes: the tie breaks to the lower shard id, so shard 0
  // wins and 5..9 migrate into it.
  for (Vertex v = 0; v < 10; ++v) EXPECT_EQ(router.shard_of(v), 0);
  EXPECT_TRUE(router.view().same_component(0, 9));
  EXPECT_EQ(router.view().root_of(9), router.view().root_of(0));
  const ServiceStats stats = router.stats();
  EXPECT_EQ(stats.cross_shard_inserts, 1u);
  EXPECT_EQ(stats.shard_migrations, 1u);
  // The loser's snapshot no longer answers for the migrated vertices.
  EXPECT_FALSE(router.shard_snapshot(1)->contains(5));
  EXPECT_TRUE(router.shard_snapshot(0)->contains(5));
  // The process-wide counters moved too.
  const std::string page = router.metrics_text();
  EXPECT_NE(page.find("pardfs_shard_migrations_total 1"), std::string::npos);
  EXPECT_NE(page.find("pardfs_cross_shard_inserts_total 1"),
            std::string::npos);
  router.stop();
  // Post-stop the winner's engine holds the whole merged component.
  const ValidationResult ok =
      validate_dfs_forest(router.core(0).graph(), router.core(0).parent());
  EXPECT_TRUE(ok.ok) << ok.reason;
  EXPECT_EQ(router.core(0).graph().num_vertices(), 10);
  EXPECT_EQ(router.core(1).graph().num_vertices(), 0);
}

TEST(ShardRouter, LargerComponentWinsTheMerge) {
  // Path 0 has 8 vertices, path 1 has 3 (built by hand): the merge must pull
  // the smaller component into the larger one's shard.
  Graph g;
  for (int i = 0; i < 11; ++i) g.add_vertex();
  for (int i = 1; i < 8; ++i) {
    g.add_edge(static_cast<Vertex>(i - 1), static_cast<Vertex>(i));
  }
  g.add_edge(8, 9);
  g.add_edge(9, 10);
  ShardRouter router(std::move(g), {.num_shards = 2});
  ASSERT_EQ(router.shard_of(0), 0);
  ASSERT_EQ(router.shard_of(8), 1);
  ASSERT_NE(router.apply_sync(GraphUpdate::insert_edge(10, 0)),
            UpdateTicket::kRejected);
  for (Vertex v = 0; v < 11; ++v) EXPECT_EQ(router.shard_of(v), 0);
  router.stop();
}

TEST(ShardRouter, MergeRefreshesBothShardsCutStructures) {
  // Satellite pin: serve_cuts snapshots on BOTH sides of a merge are rebuilt
  // by the protocol's publish pair (winner before the directory flip, loser
  // after), so cut queries answer the merged world immediately.
  ServiceConfig config;
  config.num_shards = 2;
  config.serve_cuts = true;
  ShardRouter router(disjoint_paths(2, 4), config);
  ASSERT_EQ(router.shard_of(0), 0);
  ASSERT_EQ(router.shard_of(4), 1);
  const SnapshotPtr loser_before = router.shard_snapshot(1);
  ASSERT_TRUE(loser_before->serves_cuts());
  EXPECT_TRUE(loser_before->is_bridge(4, 5));
  ASSERT_NE(router.apply_sync(GraphUpdate::insert_edge(3, 4)),
            UpdateTicket::kRejected);
  const SnapshotPtr winner_after = router.shard_snapshot(0);
  const SnapshotPtr loser_after = router.shard_snapshot(1);
  // Both shards republished (fresh versions, fresh cut structures).
  EXPECT_GT(winner_after->version(), 1u);
  EXPECT_GT(loser_after->version(), loser_before->version());
  ASSERT_TRUE(winner_after->serves_cuts());
  ASSERT_TRUE(loser_after->serves_cuts());
  // The merged path 0-..-7 makes the new edge (and every path edge) a
  // bridge — served from the winner...
  EXPECT_TRUE(winner_after->is_bridge(3, 4));
  EXPECT_TRUE(winner_after->is_articulation(4));
  // ...while the loser's refreshed structure dropped the migrated component
  // entirely instead of serving its stale pre-merge answers.
  EXPECT_FALSE(loser_after->contains(4));
  EXPECT_FALSE(loser_after->is_bridge(4, 5));
  EXPECT_EQ(loser_after->bridges().size(), 0u);
  // The view routes cut queries to whoever owns the vertex now.
  EXPECT_TRUE(router.view().is_bridge(3, 4));
  EXPECT_TRUE(router.view().is_articulation(4));
  EXPECT_EQ(router.view().bridges().size(), 7u);
  router.stop();
}

TEST(ShardRouter, VertexInsertsAssignGloballyUniqueDenseIds) {
  ShardRouter router(disjoint_paths(4, 4), {.num_shards = 4});
  // Isolated inserts round-robin across shards but draw from one id space.
  std::vector<Vertex> ids;
  for (int i = 0; i < 8; ++i) {
    const UpdateTicket t = router.submit(GraphUpdate::insert_vertex({}));
    ASSERT_NE(t.wait(), UpdateTicket::kRejected);
    ids.push_back(t.assigned_vertex());
  }
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(ids[static_cast<std::size_t>(i)], 16 + i);
    EXPECT_TRUE(router.view().contains(16 + i));
  }
  EXPECT_EQ(router.capacity(), 24);
  // A neighbor-spanning insert merges its neighbors' components first.
  const UpdateTicket t = router.submit(GraphUpdate::insert_vertex({0, 4, 8}));
  ASSERT_NE(t.wait(), UpdateTicket::kRejected);
  EXPECT_EQ(t.assigned_vertex(), 24);
  EXPECT_TRUE(router.view().same_component(0, 8));
  EXPECT_GE(router.stats().shard_migrations, 2u);
  router.stop();
}

TEST(ShardRouter, ViewAnswersTotallyAcrossShards) {
  ShardRouter router(disjoint_paths(4, 4), {.num_shards = 4});
  const RouterView view = router.view();
  // Unknown ids: benign defaults, never aborts.
  EXPECT_FALSE(view.contains(-1));
  EXPECT_FALSE(view.contains(999));
  EXPECT_EQ(view.parent_of(999), kNullVertex);
  EXPECT_EQ(view.root_of(-7), kNullVertex);
  EXPECT_EQ(view.depth(999), -1);
  EXPECT_EQ(view.subtree_size(999), 0);
  EXPECT_TRUE(view.path_to_root(999).empty());
  EXPECT_EQ(view.snapshot_of(999), nullptr);
  // Cross-shard pairs: component-disjoint answers.
  EXPECT_FALSE(view.same_component(0, 4));
  EXPECT_FALSE(view.reachable(0, 4));
  EXPECT_FALSE(view.is_ancestor(0, 4));
  EXPECT_EQ(view.lca(0, 4), kNullVertex);
  EXPECT_FALSE(view.is_bridge(0, 4));
  // Intra-shard pairs answer exactly like the snapshot.
  EXPECT_TRUE(view.same_component(0, 3));
  EXPECT_EQ(view.root_of(3), view.root_of(0));
  EXPECT_EQ(view.depth(0) + 1, view.depth(1));
  // A dead vertex keeps resolving to the shard it died on.
  ASSERT_NE(router.apply_sync(GraphUpdate::delete_vertex(3)),
            UpdateTicket::kRejected);
  EXPECT_GE(router.shard_of(3), 0);
  EXPECT_FALSE(view.contains(3));
  router.stop();
}

TEST(ShardRouter, DeleteEdgeAcrossShardsIsInfeasible) {
  ShardRouter router(disjoint_paths(2, 4), {.num_shards = 2});
  // No edge can span shards (shards own whole components), so this must be
  // the same rejection the unsharded service gives for a non-edge.
  EXPECT_EQ(router.apply_sync(GraphUpdate::delete_edge(0, 4)),
            UpdateTicket::kRejected);
  EXPECT_EQ(router.stats().updates_rejected, 1u);
  EXPECT_EQ(router.stats().shard_migrations, 0u);
  router.stop();
}

TEST(ShardRouter, PauseHoldsEveryShardsQueue) {
  ServiceConfig config;
  config.num_shards = 4;
  config.start_paused = true;
  ShardRouter router(disjoint_paths(4, 4), config);
  std::vector<UpdateTicket> tickets;
  for (Vertex c = 0; c < 4; ++c) {
    tickets.push_back(
        router.submit(GraphUpdate::insert_edge(c * 4, c * 4 + 2)));
  }
  EXPECT_EQ(router.queue_depth(), 4u);
  for (const UpdateTicket& t : tickets) EXPECT_FALSE(t.done());
  for (std::size_t s = 0; s < 4; ++s) EXPECT_EQ(router.queue_depth(s), 1u);
  router.resume();
  for (const UpdateTicket& t : tickets) {
    EXPECT_NE(t.wait(), UpdateTicket::kRejected);
  }
  EXPECT_EQ(router.queue_depth(), 0u);
  router.stop();
}

TEST(ShardRouter, ConcurrentProducersEveryTicketResolves) {
  ServiceConfig config;
  config.num_shards = 4;
  config.queue_capacity = 32;
  ShardRouter router(disjoint_paths(8, 8), config);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 120;
  std::atomic<std::uint64_t> accepted{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(static_cast<std::uint64_t>(7000 + p));
      for (int i = 0; i < kPerProducer; ++i) {
        const Vertex u = static_cast<Vertex>(rng.below(64));
        const Vertex v = static_cast<Vertex>(rng.below(64));
        if (u == v) continue;
        const bool insert = rng.below(2) == 0;
        const std::uint64_t r = router.apply_sync(
            insert ? GraphUpdate::insert_edge(u, v)
                   : GraphUpdate::delete_edge(u, v));
        if (r != UpdateTicket::kRejected) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  router.stop();
  EXPECT_GT(accepted.load(), 0u);
  EXPECT_EQ(router.stats().updates_applied, accepted.load());
  // Each shard's final forest is a valid DFS forest of its own graph.
  for (std::size_t s = 0; s < 4; ++s) {
    const ValidationResult ok =
        validate_dfs_forest(router.core(s).graph(), router.core(s).parent());
    EXPECT_TRUE(ok.ok) << "shard " << s << ": " << ok.reason;
  }
}

TEST(ShardRouter, SubmitRacingStopIsRejectedNotAborted) {
  // PR 4 regression, re-run against the router: a submit losing the race
  // against stop() must come back pre-acknowledged as kRejected on every
  // shard's queue — wait() never trips on an invalid ticket, the process
  // never aborts. Cross-shard ops are in the mix so the gateway/merge path
  // shuts down cleanly too.
  const Graph initial = disjoint_paths(4, 4);
  for (int iter = 0; iter < 300; ++iter) {
    ShardRouter router(initial, {.num_shards = 4});
    std::atomic<bool> go{false};
    std::thread producer([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      for (Vertex i = 0; i < 6; ++i) {
        const UpdateTicket t =
            router.submit(GraphUpdate::insert_edge(i, 15 - i));
        const std::uint64_t direct = t.wait();
        const std::uint64_t synced =
            router.apply_sync(GraphUpdate::delete_edge(i, 15 - i));
        if (direct == UpdateTicket::kRejected &&
            synced == UpdateTicket::kRejected) {
          break;  // router fully stopped under us
        }
      }
    });
    go.store(true, std::memory_order_release);
    router.stop();
    producer.join();
  }
}

TEST(ShardRouter, ShardStatsAndLabeledSeriesPerShard) {
  obs::Registry::global().reset();
  ShardRouter router(disjoint_paths(4, 4), {.num_shards = 4});
  ASSERT_NE(router.apply_sync(GraphUpdate::insert_edge(0, 2)),
            UpdateTicket::kRejected);
  ServiceStats total;
  for (std::size_t s = 0; s < 4; ++s) {
    const ServiceStats st = router.shard_stats(s);
    total.updates_applied += st.updates_applied;
    total.batches += st.batches;
  }
  EXPECT_EQ(total.updates_applied, 1u);
  EXPECT_EQ(router.stats().updates_applied, 1u);
  // Eagerly registered per-shard series: a fresh page already carries every
  // shard's ack-latency / queue / coalesce families at zero.
  const std::string page = router.metrics_text();
  for (int s = 0; s < 4; ++s) {
    const std::string label = "shard=\"" + std::to_string(s) + "\"";
    EXPECT_NE(page.find("pardfs_ack_latency_us_count{" + label + "}"),
              std::string::npos)
        << "missing ack series for shard " << s;
    EXPECT_NE(page.find("pardfs_queue_depth{" + label + "}"),
              std::string::npos);
    EXPECT_NE(
        page.find("pardfs_update_phase_us_count{phase=\"queue_wait\"," +
                  label + "}"),
        std::string::npos);
  }
  EXPECT_NE(page.find("pardfs_shard_migrations_total 0"), std::string::npos);
  EXPECT_NE(page.find("pardfs_cross_shard_inserts_total 0"),
            std::string::npos);
  router.stop();
}

}  // namespace
}  // namespace pardfs::service
