// The scalar≡SIMD contract (DESIGN.md §10): the dispatched kernels, the
// batched oracle probes built on them, and the branch-free LCA must be
// byte-identical to the pinned scalar reference — results AND cost-model
// accounting. Every differential below runs the same workload under
// simd::set_force_scalar(true) and under the default dispatch decision and
// compares; on hardware without AVX2 both passes resolve to the scalar
// body, so the comparisons degenerate to self-equality and still pin the
// scalar path's determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "baseline/static_dfs.hpp"
#include "core/adjacency_oracle.hpp"
#include "core/dynamic_dfs.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "pram/cost_model.hpp"
#include "testing/fuzz.hpp"
#include "tree/tree_index.hpp"
#include "util/random.hpp"
#include "util/simd.hpp"

namespace pardfs {
namespace {

struct ScopedForceScalar {
  bool prev;
  explicit ScopedForceScalar(bool on) : prev(simd::scalar_forced()) {
    simd::set_force_scalar(on);
  }
  ~ScopedForceScalar() { simd::set_force_scalar(prev); }
};

TEST(Simd, ForceScalarPinsDispatch) {
  {
    ScopedForceScalar pin(true);
    EXPECT_TRUE(simd::scalar_forced());
    EXPECT_EQ(simd::active_level(), simd::Level::kScalar);
  }
  // Restored: forced iff the environment pinned it before the test ran.
  EXPECT_EQ(simd::active_level() == simd::Level::kScalar,
            simd::scalar_forced() || simd::active_level() != simd::Level::kAvx2);
}

TEST(Simd, AlignedVectorData) {
  simd::aligned_vector<std::int32_t> v;
  for (const std::size_t size : {1u, 7u, 8u, 31u, 32u, 1000u}) {
    v.resize(size);
    EXPECT_TRUE(simd::is_aligned(v.data())) << "size " << size;
  }
  simd::aligned_vector<std::uint8_t> bytes(333);
  EXPECT_TRUE(simd::is_aligned(bytes.data()));
}

// The kernel against std::lower_bound over every dispatch mode, covering
// empty/singleton subranges, needles below/inside/above the range, and
// lane counts off the 8-lane boundary (tail path).
TEST(Simd, LowerBoundBatchMatchesStdLowerBound) {
  Rng rng(11);
  simd::aligned_vector<std::int32_t> keys;
  std::vector<std::uint32_t> starts, lens;
  std::vector<std::int32_t> needles;
  // A few hundred sorted subranges of one shared key array.
  for (int range = 0; range < 300; ++range) {
    const std::uint32_t len = static_cast<std::uint32_t>(rng.below(64));
    const std::uint32_t start = static_cast<std::uint32_t>(keys.size());
    std::int32_t cur = static_cast<std::int32_t>(rng.below(50));
    for (std::uint32_t i = 0; i < len; ++i) {
      cur += static_cast<std::int32_t>(rng.below(5));  // sorted, with dups
      keys.push_back(cur);
    }
    for (int probe = 0; probe < 3; ++probe) {
      starts.push_back(start);
      lens.push_back(len);
      needles.push_back(static_cast<std::int32_t>(rng.below(400)));
    }
    // Exact boundary needles: first key, last key, one past the last.
    if (len > 0) {
      for (const std::int32_t needle :
           {keys[start], keys[start + len - 1], keys[start + len - 1] + 1}) {
        starts.push_back(start);
        lens.push_back(len);
        needles.push_back(needle);
      }
    }
  }
  std::vector<std::uint32_t> expect(needles.size());
  for (std::size_t i = 0; i < needles.size(); ++i) {
    const std::int32_t* base = keys.data() + starts[i];
    expect[i] = static_cast<std::uint32_t>(
        std::lower_bound(base, base + lens[i], needles[i]) - base);
  }
  for (const bool force : {true, false}) {
    ScopedForceScalar pin(force);
    // Lane counts exercising full blocks and the scalar tail.
    for (const std::size_t count :
         {std::size_t{0}, std::size_t{1}, std::size_t{7}, std::size_t{8},
          std::size_t{9}, needles.size()}) {
      std::vector<std::uint32_t> out(count, 0xDEADBEEFu);
      simd::lower_bound_batch(keys.data(), starts.data(), lens.data(),
                              needles.data(), out.data(), count);
      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(out[i], expect[i])
            << "mode=" << simd::level_name(simd::active_level()) << " lane " << i;
      }
    }
  }
}

// ---- oracle differential ---------------------------------------------------

struct OracleCase {
  Graph g;
  std::vector<Vertex> parent;
  TreeIndex idx;
  AdjacencyOracle oracle;
  pram::CostModel cost;
  std::vector<PathSeg> segs;
  std::vector<Vertex> sources;
};

// One family instance with Theorem-9 patches applied (extras, deletions, a
// dead vertex) so every probe flavor fires, plus sampled segments/sources.
void make_case(OracleCase& c, Graph g, std::uint64_t seed) {
  c.g = std::move(g);
  c.parent = static_dfs(c.g);
  c.idx.build(c.parent);
  c.oracle.build(c.g, c.idx, &c.cost);
  Rng rng(seed);
  const Vertex n = c.g.capacity();
  // Patches: a few deleted and re-inserted edges, a few fresh extras, one
  // dead vertex.
  for (int i = 0; i < 6; ++i) {
    const Vertex u = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
    const auto nbrs = c.g.neighbors(u);
    if (!c.g.is_alive(u) || nbrs.empty()) continue;
    c.oracle.note_edge_deleted(u, nbrs.front());
  }
  for (int i = 0; i < 6; ++i) {
    const Vertex u = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
    const Vertex v = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
    if (u == v || !c.g.is_alive(u) || !c.g.is_alive(v) || c.g.has_edge(u, v)) continue;
    c.oracle.note_edge_inserted(u, v);
  }
  for (Vertex v = 0; v < n; ++v) {
    if (c.g.is_alive(v) && c.g.degree(v) > 0) {
      const auto nbrs = c.g.neighbors(v);
      c.oracle.note_vertex_deleted(v, {nbrs.begin(), nbrs.end()});
      break;
    }
  }
  // Segments: walk up a random number of steps from a random bottom.
  for (int i = 0; i < 40; ++i) {
    Vertex bottom = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
    if (!c.idx.in_forest(bottom)) continue;
    Vertex top = bottom;
    const int steps = static_cast<int>(rng.below(12));
    for (int s = 0; s < steps && c.idx.parent(top) != kNullVertex; ++s) {
      top = c.idx.parent(top);
    }
    c.segs.push_back({top, bottom});
  }
  for (int i = 0; i < 64; ++i) {
    c.sources.push_back(static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n))));
  }
}

struct ProbeTrace {
  std::vector<std::optional<Edge>> singles;
  std::vector<std::optional<Edge>> batched;
  std::vector<std::optional<Edge>> reduced;
  pram::CostSnapshot cost;
};

ProbeTrace run_probes(OracleCase& c) {
  c.cost.reset();
  ProbeTrace t;
  for (const PathSeg seg : c.segs) {
    for (const PathEnd end : {PathEnd::kTop, PathEnd::kBottom}) {
      for (const Vertex u : c.sources) {
        t.singles.push_back(c.oracle.query_vertex(u, seg, end));
      }
      std::vector<std::optional<Edge>> out(c.sources.size());
      c.oracle.query_vertex_batch(c.sources.data(), c.sources.size(), seg, end,
                                  out.data());
      t.batched.insert(t.batched.end(), out.begin(), out.end());
      t.reduced.push_back(c.oracle.query_sources(c.sources, seg, end));
    }
  }
  t.cost = c.cost.snapshot();
  return t;
}

void expect_equal(const ProbeTrace& a, const ProbeTrace& b, const char* label) {
  ASSERT_EQ(a.singles.size(), b.singles.size()) << label;
  for (std::size_t i = 0; i < a.singles.size(); ++i) {
    ASSERT_EQ(a.singles[i], b.singles[i]) << label << " single " << i;
    ASSERT_EQ(a.batched[i], b.batched[i]) << label << " batched " << i;
  }
  ASSERT_EQ(a.reduced, b.reduced) << label;
  // The probe ledger too: lanes must charge exactly the scalar path's cost.
  EXPECT_EQ(a.cost.queries, b.cost.queries) << label;
  EXPECT_EQ(a.cost.query_probes, b.cost.query_probes) << label;
}

TEST(Simd, OracleProbesAgreeAcrossDispatchOnGraphFamilies) {
  Rng rng(21);
  for (int fam = 0; fam < 3; ++fam) {
    OracleCase c;
    switch (fam) {
      case 0: make_case(c, gen::random_connected(600, 2400, rng), 100 + fam); break;
      case 1: make_case(c, gen::barabasi_albert(600, 4, rng), 100 + fam); break;
      default: make_case(c, gen::grid(24, 25), 100 + fam); break;
    }
    EXPECT_TRUE(c.oracle.csr_aligned());
    ProbeTrace scalar_trace, simd_trace;
    {
      ScopedForceScalar pin(true);
      scalar_trace = run_probes(c);
    }
    {
      ScopedForceScalar pin(false);
      simd_trace = run_probes(c);
    }
    // Within one mode, the batched entry points must equal the singles too.
    ASSERT_EQ(scalar_trace.singles, scalar_trace.batched);
    expect_equal(scalar_trace, simd_trace, fam == 0   ? "random"
                                           : fam == 1 ? "power_law"
                                                      : "grid");
  }
}

// The branch-free Fischer–Heun lookup against a parent-walk reference.
TEST(Simd, BranchFreeLcaMatchesParentWalk) {
  Rng rng(31);
  for (int fam = 0; fam < 3; ++fam) {
    Graph g = fam == 0   ? gen::random_connected(800, 2000, rng)
              : fam == 1 ? gen::barabasi_albert(800, 3, rng)
                         : gen::grid(28, 28);
    const std::vector<Vertex> parent = static_dfs(g);
    TreeIndex idx;
    idx.build(parent);
    const Vertex n = g.capacity();
    auto brute_lca = [&](Vertex u, Vertex v) {
      while (u != v) {
        if (idx.depth(u) >= idx.depth(v)) {
          u = parent[static_cast<std::size_t>(u)];
        } else {
          v = parent[static_cast<std::size_t>(v)];
        }
      }
      return u;
    };
    for (int t = 0; t < 500; ++t) {
      const Vertex u = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
      const Vertex v = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
      if (!idx.in_forest(u) || !idx.in_forest(v)) continue;
      if (idx.root_of(u) != idx.root_of(v)) continue;
      ASSERT_EQ(idx.lca(u, v), brute_lca(u, v)) << "u=" << u << " v=" << v;
      ASSERT_EQ(idx.lca(u, u), u);
    }
  }
}

// Full-engine lockstep: the same update stream replayed under forced scalar
// and under the default dispatch must yield identical parent arrays after
// every batch (the engine determinism contract extended to dispatch).
TEST(Simd, DynamicDfsParentsAgreeAcrossDispatch) {
  Rng gen_rng(41);
  Graph initial = gen::random_connected(300, 900, gen_rng);
  // Deterministic update batches, replayed identically in both passes.
  auto make_batches = [] {
    Rng rng(43);
    std::vector<std::vector<GraphUpdate>> batches;
    Graph mirror = [] {
      Rng r(41);
      return gen::random_connected(300, 900, r);
    }();
    for (int b = 0; b < 20; ++b) {
      std::vector<GraphUpdate> batch;
      const int k = 1 + static_cast<int>(rng.below(5));
      for (int i = 0; i < k; ++i) {
        const Vertex u = static_cast<Vertex>(rng.below(300));
        const Vertex v = static_cast<Vertex>(rng.below(300));
        if (u == v || !mirror.is_alive(u) || !mirror.is_alive(v)) continue;
        if (mirror.has_edge(u, v)) {
          // Keep connectivity-ish: only delete non-tree-critical at random;
          // deletions that disconnect are legal (forest maintenance).
          mirror.remove_edge(u, v);
          batch.push_back(GraphUpdate::delete_edge(u, v));
        } else {
          mirror.add_edge(u, v);
          batch.push_back(GraphUpdate::insert_edge(u, v));
        }
      }
      if (!batch.empty()) batches.push_back(std::move(batch));
    }
    return batches;
  };
  const auto batches = make_batches();
  auto run = [&](bool force) {
    ScopedForceScalar pin(force);
    DynamicDfs dfs(initial);
    std::vector<std::vector<Vertex>> parents;
    for (const auto& batch : batches) {
      dfs.apply_batch(batch);
      parents.emplace_back(dfs.parent().begin(), dfs.parent().end());
    }
    return parents;
  };
  const auto scalar_parents = run(true);
  const auto simd_parents = run(false);
  ASSERT_EQ(scalar_parents.size(), simd_parents.size());
  for (std::size_t b = 0; b < scalar_parents.size(); ++b) {
    ASSERT_EQ(scalar_parents[b], simd_parents[b]) << "batch " << b;
  }
}

// The fuzz harness's own families under both modes: same verdict, same
// counters, and the replay line records the mode the run executed under.
TEST(Simd, FuzzFamiliesAgreeAcrossDispatch) {
  using testing::FuzzFamily;
  for (const FuzzFamily family :
       {FuzzFamily::kRandom, FuzzFamily::kPowerLaw, FuzzFamily::kGrid}) {
    testing::FuzzOptions o;
    o.seed = 77;
    o.family = family;
    o.n = 64;
    o.batches = 10;
    o.force_scalar = true;
    const testing::FuzzResult scalar_run = testing::run_fuzz(o);
    ASSERT_TRUE(scalar_run.ok) << scalar_run.failure << "\n" << scalar_run.replay;
    o.force_scalar = false;
    const testing::FuzzResult simd_run = testing::run_fuzz(o);
    ASSERT_TRUE(simd_run.ok) << simd_run.failure << "\n" << simd_run.replay;
    EXPECT_EQ(scalar_run.batches, simd_run.batches);
    EXPECT_EQ(scalar_run.updates, simd_run.updates);
    EXPECT_EQ(scalar_run.queries, simd_run.queries);
  }
  testing::FuzzOptions o;
  o.force_scalar = true;
  EXPECT_NE(testing::replay_line(o).find("--force-scalar"), std::string::npos);
}

}  // namespace
}  // namespace pardfs
