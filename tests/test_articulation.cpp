#include "core/articulation.hpp"

#include <gtest/gtest.h>

#include "baseline/static_dfs.hpp"
#include "graph/generators.hpp"
#include "util/random.hpp"

namespace pardfs {
namespace {

// Brute force: v is an articulation point iff removing it increases the
// number of connected components among the remaining vertices.
int count_components(const Graph& g, Vertex skip) {
  std::vector<std::int8_t> seen(static_cast<std::size_t>(g.capacity()), 0);
  int comps = 0;
  std::vector<Vertex> stack;
  for (Vertex s = 0; s < g.capacity(); ++s) {
    if (!g.is_alive(s) || s == skip || seen[static_cast<std::size_t>(s)]) continue;
    ++comps;
    stack.push_back(s);
    seen[static_cast<std::size_t>(s)] = 1;
    while (!stack.empty()) {
      const Vertex v = stack.back();
      stack.pop_back();
      for (const Vertex w : g.neighbors(v)) {
        if (w == skip || seen[static_cast<std::size_t>(w)]) continue;
        seen[static_cast<std::size_t>(w)] = 1;
        stack.push_back(w);
      }
    }
  }
  return comps;
}

void check_against_brute_force(const Graph& g) {
  const auto parent = static_dfs(g);
  const CutStructure cuts = find_cuts(g, parent);
  const int base = count_components(g, kNullVertex);
  for (Vertex v = 0; v < g.capacity(); ++v) {
    if (!g.is_alive(v)) continue;
    // v is an articulation point iff removing it increases the component
    // count among the other vertices (isolated vertices never qualify).
    const bool brute = g.degree(v) > 0 && count_components(g, v) > base;
    EXPECT_EQ(static_cast<bool>(cuts.is_articulation[static_cast<std::size_t>(v)]),
              brute)
        << "vertex " << v;
  }
  // Bridges, both directions: every claimed bridge must split its component
  // when removed (soundness), and every edge whose removal splits must be
  // claimed (completeness) — checked over ALL edges via the remove-one
  // oracle.
  const auto claimed = [&](Vertex u, Vertex v) {
    for (const Edge& b : cuts.bridges) {
      if ((b.u == u && b.v == v) || (b.u == v && b.v == u)) return true;
    }
    return false;
  };
  for (const Edge& e : g.edges()) {
    Graph h = g;
    h.remove_edge(e.u, e.v);
    const bool splits = count_components(h, kNullVertex) > base;
    EXPECT_EQ(claimed(e.u, e.v), splits)
        << "edge (" << e.u << "," << e.v << "): bridge set "
        << (splits ? "missed a real bridge" : "claimed a non-bridge");
  }
  // Claimed bridges are (parent, child) tree edges.
  for (const Edge& b : cuts.bridges) {
    EXPECT_EQ(parent[static_cast<std::size_t>(b.v)], b.u)
        << "bridge (" << b.u << "," << b.v << ") is not a tree edge";
  }
}

TEST(Articulation, PathEveryInnerVertexIsCut) {
  Graph g = gen::path(6);
  const auto parent = static_dfs(g);
  const CutStructure cuts = find_cuts(g, parent);
  EXPECT_FALSE(cuts.is_articulation[0]);
  EXPECT_FALSE(cuts.is_articulation[5]);
  for (Vertex v = 1; v < 5; ++v) EXPECT_TRUE(cuts.is_articulation[static_cast<std::size_t>(v)]);
  EXPECT_EQ(cuts.bridges.size(), 5u);
}

TEST(Articulation, CycleHasNoCuts) {
  Graph g = gen::cycle(8);
  const auto parent = static_dfs(g);
  const CutStructure cuts = find_cuts(g, parent);
  for (Vertex v = 0; v < 8; ++v) EXPECT_FALSE(cuts.is_articulation[static_cast<std::size_t>(v)]);
  EXPECT_TRUE(cuts.bridges.empty());
}

TEST(Articulation, StarCenterIsCut) {
  Graph g = gen::star(6);
  const auto parent = static_dfs(g);
  const CutStructure cuts = find_cuts(g, parent);
  EXPECT_TRUE(cuts.is_articulation[0]);
  for (Vertex v = 1; v < 6; ++v) EXPECT_FALSE(cuts.is_articulation[static_cast<std::size_t>(v)]);
  EXPECT_EQ(cuts.bridges.size(), 5u);
}

TEST(Articulation, MatchesBruteForceOnRandomGraphs) {
  Rng rng(404);
  for (int trial = 0; trial < 20; ++trial) {
    const Vertex n = static_cast<Vertex>(10 + rng.below(60));
    Graph g = gen::gnp(n, 2.5 / n, rng);
    check_against_brute_force(g);
  }
}

TEST(Articulation, MatchesBruteForceOnDenseGraphs) {
  Rng rng(405);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = gen::gnm(30, 120, rng);
    check_against_brute_force(g);
  }
}

TEST(Articulation, HandlesDeadVertices) {
  Graph g = gen::path(5);
  g.remove_vertex(2);
  check_against_brute_force(g);
}

TEST(Articulation, EveryTreeEdgeIsABridge) {
  // In a tree, all n-1 edges are bridges and every internal vertex is an
  // articulation point — the completeness direction at its extreme.
  Graph g = gen::binary_tree(31);
  const auto parent = static_dfs(g);
  const CutStructure cuts = find_cuts(g, parent);
  EXPECT_EQ(cuts.bridges.size(), 30u);
  check_against_brute_force(g);
}

TEST(Articulation, MatchesBruteForceOnDisconnectedGraphs) {
  // Several components, one with a cut vertex, one 2-edge-connected, one a
  // bare edge; the low-link pass must keep them independent.
  Rng rng(406);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = gen::gnp(50, 1.2 / 50, rng);  // below the connectivity threshold
    check_against_brute_force(g);
  }
}

}  // namespace
}  // namespace pardfs
