// Semi-streaming DFS (Theorem 15): the one-pass query evaluator must match
// D exactly, the maintained forest must stay valid, and the pass count per
// update must stay polylogarithmic.
#include "stream/streaming_dfs.hpp"

#include <gtest/gtest.h>

#include "baseline/static_dfs.hpp"
#include "core/adjacency_oracle.hpp"
#include "graph/generators.hpp"
#include "tree/validation.hpp"
#include "util/random.hpp"

namespace pardfs::stream {
namespace {

TEST(EdgeStreamTest, PassCounting) {
  EdgeStream s({{0, 1}, {1, 2}});
  EXPECT_EQ(s.passes(), 0u);
  int seen = 0;
  s.for_each_edge([&](const Edge&) { ++seen; });
  EXPECT_EQ(seen, 2);
  EXPECT_EQ(s.passes(), 1u);
  s.for_each_edge([](const Edge&) {});
  EXPECT_EQ(s.passes(), 2u);
}

TEST(EdgeStreamTest, UpdatesMutateContents) {
  EdgeStream s({{0, 1}, {1, 2}, {2, 3}});
  s.delete_edge(1, 2);
  EXPECT_EQ(s.size(), 2u);
  s.insert_edge(0, 3);
  EXPECT_EQ(s.size(), 3u);
  s.delete_vertex(0);
  EXPECT_EQ(s.size(), 1u);  // only (2,3) remains
}

TEST(OnePassEvaluator, MatchesOracleOnRandomGraphs) {
  Rng rng(71);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = gen::random_connected(80, 160, rng);
    const auto parent = static_dfs(g);
    TreeIndex index;
    index.build(parent);
    AdjacencyOracle oracle;
    oracle.build(g, index);
    EdgeStream stream(g.edges());

    // A batch of independent subtree queries (one per distinct subtree).
    std::vector<StreamQuery> queries;
    std::vector<std::optional<Edge>> expected;
    for (int qi = 0; qi < 40; ++qi) {
      const Vertex bottom = static_cast<Vertex>(rng.below(80));
      Vertex top = bottom;
      for (std::uint64_t h = rng.below(6); h > 0 && index.parent(top) != kNullVertex;
           --h) {
        top = index.parent(top);
      }
      const Vertex w = static_cast<Vertex>(rng.below(80));
      if (index.is_ancestor(w, bottom) || index.is_ancestor(top, w)) continue;
      const bool nearest_top = rng.coin(0.5);
      queries.push_back({StreamQuery::SourceKind::kSubtree, w, kNullVertex, top,
                         bottom, nearest_top});
      expected.push_back(oracle.query_sources(
          index.subtree_span(w), PathSeg{top, bottom},
          nearest_top ? PathEnd::kTop : PathEnd::kBottom));
    }
    const auto got = answer_queries_one_pass(stream, index, queries);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].has_value(), expected[i].has_value()) << "query " << i;
      if (got[i]) {
        EXPECT_EQ(index.post(got[i]->v), index.post(expected[i]->v)) << "query " << i;
      }
    }
    EXPECT_EQ(stream.passes(), 1u) << "a whole batch costs exactly one pass";
  }
}

TEST(OnePassEvaluator, VertexAndSegmentSources) {
  // Path 0-1-2-3-4-5 with back edges (0,3) and (1,5).
  Graph g = gen::path(6);
  g.add_edge(0, 3);
  g.add_edge(1, 5);
  const auto parent = static_dfs(g);
  TreeIndex index;
  index.build(parent);
  EdgeStream stream(g.edges());
  const std::vector<StreamQuery> queries = {
      // Vertex 5 vs segment [0..2], nearest top -> edge (5,1).
      {StreamQuery::SourceKind::kVertex, 5, kNullVertex, 0, 2, true},
      // Segment [3..5] vs segment [0..2], nearest bottom: candidates
      // (3,0) via back edge, (3,2) via tree edge; nearest bottom(=2) is (3,2).
      {StreamQuery::SourceKind::kSegment, 3, 5, 0, 2, false},
      // No edges from vertex 4 to [0..1].
      {StreamQuery::SourceKind::kVertex, 4, kNullVertex, 0, 1, true},
  };
  const auto got = answer_queries_one_pass(stream, index, queries);
  ASSERT_EQ(got.size(), 3u);
  ASSERT_TRUE(got[0].has_value());
  EXPECT_EQ(got[0]->v, 1);
  ASSERT_TRUE(got[1].has_value());
  EXPECT_EQ(got[1]->v, 2);
  EXPECT_FALSE(got[2].has_value());
}

TEST(StreamingDfs, ForestStaysValidUnderChurn) {
  Rng rng(72);
  Graph g = gen::random_connected(50, 80, rng);
  EdgeStream stream(g.edges());
  StreamingDfs sd(stream, 50);
  for (int step = 0; step < 40; ++step) {
    gen::Update u;
    ASSERT_TRUE(gen::random_update(sd.graph(), rng, 1, 1, 0.3, 0.3, u));
    GraphUpdate gu = [&] {
      switch (u.kind) {
        case gen::UpdateKind::kInsertEdge:
          return GraphUpdate::insert_edge(u.u, u.v);
        case gen::UpdateKind::kDeleteEdge:
          return GraphUpdate::delete_edge(u.u, u.v);
        case gen::UpdateKind::kInsertVertex:
          return GraphUpdate::insert_vertex(u.neighbors);
        case gen::UpdateKind::kDeleteVertex:
          return GraphUpdate::delete_vertex(u.u);
      }
      return GraphUpdate::insert_edge(u.u, u.v);
    }();
    sd.apply(gu);
    const auto val = validate_dfs_forest(sd.graph(), sd.parent());
    ASSERT_TRUE(val.ok) << "step " << step << ": " << val.reason;
    EXPECT_GT(sd.passes_last_update(), 0u);
  }
  EXPECT_GT(sd.passes_total(), 0u);
}

TEST(StreamingDfs, PassesArePolylog) {
  // A hard reroot on a sizable graph: passes must stay far below n.
  const Vertex n = 1024;
  Graph g = gen::path(n);
  g.add_edge(0, n - 1);
  EdgeStream stream(g.edges());
  StreamingDfs sd(stream, n);
  sd.apply(GraphUpdate::delete_edge(n / 2 - 1, n / 2));
  const auto val = validate_dfs_forest(sd.graph(), sd.parent());
  ASSERT_TRUE(val.ok) << val.reason;
  EXPECT_LE(sd.passes_last_update(), 128u) << "O(log^2 n) passes expected";
  EXPECT_GT(sd.passes_last_update(), 1u);
}

}  // namespace
}  // namespace pardfs::stream
