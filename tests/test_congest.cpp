// CONGEST simulator substrate: BFS flooding, pipelined aggregation and
// broadcast accounting on edge-case topologies (forests, stars, deep
// trees), independent of the DFS layers above.
#include "dist/congest.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "util/random.hpp"

namespace pardfs::dist {
namespace {

TEST(CongestBfs, StarHasHeightOne) {
  Graph g = gen::star(50);
  CongestSimulator sim(g, 4);
  const BfsTree t = sim.build_bfs_tree(0);
  EXPECT_EQ(t.height, 1);
  EXPECT_EQ(t.num_nodes, 50);
  for (Vertex v = 1; v < 50; ++v) EXPECT_EQ(t.parent[static_cast<std::size_t>(v)], 0);
  EXPECT_EQ(sim.rounds(), 1u);
}

TEST(CongestBfs, LeafRootOfStar) {
  Graph g = gen::star(10);
  CongestSimulator sim(g, 4);
  const BfsTree t = sim.build_bfs_tree(5);
  EXPECT_EQ(t.height, 2);
  EXPECT_EQ(t.parent[0], 5);
}

TEST(CongestBfs, SingletonComponent) {
  Graph g(3);
  g.add_edge(0, 1);
  CongestSimulator sim(g, 1);
  const BfsTree t = sim.build_bfs_tree(2);
  EXPECT_EQ(t.num_nodes, 1);
  EXPECT_EQ(t.height, 0);
  EXPECT_EQ(sim.rounds(), 0u) << "no flooding needed in a singleton";
}

TEST(CongestBfs, DepthsAreShortestPaths) {
  Rng rng(13);
  Graph g = gen::gnm(80, 200, rng);
  CongestSimulator sim(g, 4);
  Vertex root = kNullVertex;
  for (Vertex v = 0; v < 80; ++v) {
    if (g.degree(v) > 0) {
      root = v;
      break;
    }
  }
  ASSERT_NE(root, kNullVertex);
  const BfsTree t = sim.build_bfs_tree(root);
  // BFS parent depth relation: depth(v) = depth(parent(v)) + 1, and no edge
  // can shortcut more than one level.
  for (Vertex v = 0; v < 80; ++v) {
    const std::size_t sv = static_cast<std::size_t>(v);
    if (t.depth[sv] < 0) continue;
    if (t.parent[sv] != kNullVertex) {
      EXPECT_EQ(t.depth[sv], t.depth[static_cast<std::size_t>(t.parent[sv])] + 1);
    }
    for (const Vertex w : g.neighbors(v)) {
      EXPECT_LE(std::abs(t.depth[sv] - t.depth[static_cast<std::size_t>(w)]), 1)
          << "edge (" << v << "," << w << ") shortcuts BFS levels";
    }
  }
}

TEST(CongestAggregate, MaxCombine) {
  Graph g = gen::binary_tree(15);
  CongestSimulator sim(g, 2);
  const BfsTree t = sim.build_bfs_tree(0);
  std::vector<std::vector<std::uint64_t>> contrib(15);
  for (Vertex v = 0; v < 15; ++v) {
    contrib[static_cast<std::size_t>(v)] = {static_cast<std::uint64_t>(v * 7 % 11)};
  }
  const auto combined = sim.aggregate(
      t, contrib, [](std::size_t, std::uint64_t a, std::uint64_t b) {
        return a > b ? a : b;
      });
  std::uint64_t expected = 0;
  for (Vertex v = 0; v < 15; ++v) {
    expected = std::max(expected, static_cast<std::uint64_t>(v * 7 % 11));
  }
  ASSERT_EQ(combined.size(), 1u);
  EXPECT_EQ(combined[0], expected);
}

TEST(CongestAggregate, RaggedContributionsArePadded) {
  Graph g = gen::path(4);
  CongestSimulator sim(g, 4);
  const BfsTree t = sim.build_bfs_tree(0);
  std::vector<std::vector<std::uint64_t>> contrib(4);
  contrib[0] = {1};
  contrib[1] = {2, 10};
  contrib[2] = {};
  contrib[3] = {4, 20, 300};
  const auto combined = sim.aggregate(
      t, contrib, [](std::size_t, std::uint64_t a, std::uint64_t b) { return a + b; });
  ASSERT_EQ(combined.size(), 3u);
  EXPECT_EQ(combined[0], 7u);
  EXPECT_EQ(combined[1], 30u);
  EXPECT_EQ(combined[2], 300u);
}

TEST(CongestAggregate, ZeroWordsCostNothing) {
  Graph g = gen::path(5);
  CongestSimulator sim(g, 2);
  const BfsTree t = sim.build_bfs_tree(0);
  sim.reset_counters();
  std::vector<std::vector<std::uint64_t>> contrib(5);
  sim.aggregate(t, contrib,
                [](std::size_t, std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(sim.rounds(), 0u);
  EXPECT_EQ(sim.messages(), 0u);
}

TEST(CongestBroadcast, AccountingScalesWithChunks) {
  Graph g = gen::path(8);  // height 7 from 0
  CongestSimulator sim(g, 2);
  const BfsTree t = sim.build_bfs_tree(0);
  sim.reset_counters();
  sim.broadcast(t, 6);  // 3 chunks of B=2
  EXPECT_EQ(sim.rounds(), 7u + 3 - 1);
  EXPECT_EQ(sim.messages(), 7u * 3);
  sim.reset_counters();
  sim.broadcast(t, 0);
  EXPECT_EQ(sim.rounds(), 0u);
}

TEST(CongestBroadcast, SingletonTreeIsFree) {
  Graph g(1);
  CongestSimulator sim(g, 1);
  const BfsTree t = sim.build_bfs_tree(0);
  sim.reset_counters();
  sim.broadcast(t, 100);
  EXPECT_EQ(sim.rounds(), 0u);
  EXPECT_EQ(sim.messages(), 0u);
}

}  // namespace
}  // namespace pardfs::dist
