// The rebuild path (DESIGN.md §9): the parallel Theorem-4 TreeIndex build
// must be byte-identical to the serial fallback at every worker count, and
// the steady-state rebuild must be allocation-free — a second build of the
// same shape performs zero new heap growth (capacity-stable).
#include <gtest/gtest.h>

#include <vector>

#include "baseline/static_dfs.hpp"
#include "core/adjacency_oracle.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "pram/parallel.hpp"
#include "tree/tree_index.hpp"
#include "util/random.hpp"

namespace pardfs {
namespace {

// Full observable-state comparison of two indices built over the same
// parent/alive arrays (pre/post/depth/size/orderings/children/roots/LCA).
void expect_identical(const TreeIndex& a, const TreeIndex& b, Vertex n,
                      const char* label) {
  ASSERT_EQ(a.capacity(), b.capacity()) << label;
  ASSERT_EQ(a.num_indexed(), b.num_indexed()) << label;
  ASSERT_EQ(std::vector<Vertex>(a.roots().begin(), a.roots().end()),
            std::vector<Vertex>(b.roots().begin(), b.roots().end()))
      << label;
  for (Vertex v = 0; v < n; ++v) {
    ASSERT_EQ(a.in_forest(v), b.in_forest(v)) << label << " v=" << v;
    ASSERT_EQ(a.parent(v), b.parent(v)) << label << " v=" << v;
    ASSERT_EQ(a.depth(v), b.depth(v)) << label << " v=" << v;
    ASSERT_EQ(a.size(v), b.size(v)) << label << " v=" << v;
    ASSERT_EQ(a.pre(v), b.pre(v)) << label << " v=" << v;
    ASSERT_EQ(a.post(v), b.post(v)) << label << " v=" << v;
    if (!a.in_forest(v)) continue;
    ASSERT_EQ(a.root_of(v), b.root_of(v)) << label << " v=" << v;
    const auto ca = a.children(v);
    const auto cb = b.children(v);
    ASSERT_EQ(std::vector<Vertex>(ca.begin(), ca.end()),
              std::vector<Vertex>(cb.begin(), cb.end()))
        << label << " v=" << v;
  }
  for (std::int32_t i = 0; i < a.num_indexed(); ++i) {
    ASSERT_EQ(a.vertex_at_pre(i), b.vertex_at_pre(i)) << label << " pre=" << i;
    ASSERT_EQ(a.vertex_at_post(i), b.vertex_at_post(i)) << label << " post=" << i;
  }
  // LCA equality on sampled same-tree pairs exercises the Fischer–Heun
  // table, whose state the parallel block fill must reproduce exactly.
  Rng rng(99);
  for (int t = 0; t < 200; ++t) {
    const Vertex u = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
    const Vertex v = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
    if (!a.in_forest(u) || !a.in_forest(v)) continue;
    ASSERT_EQ(a.lca(u, v), b.lca(u, v)) << label << " u=" << u << " v=" << v;
  }
}

struct Shape {
  const char* name;
  std::vector<Vertex> parent;
  std::vector<std::uint8_t> alive;
};

std::vector<Shape> build_shapes() {
  std::vector<Shape> shapes;
  Rng rng(4242);
  {
    Graph g = gen::star(300);
    shapes.push_back({"star", static_dfs(g), {}});
  }
  {
    Graph g = gen::path(500);
    shapes.push_back({"chain", static_dfs(g), {}});
  }
  for (int trial = 0; trial < 3; ++trial) {
    // Random forest: a sparse random graph (possibly disconnected).
    const Vertex n = static_cast<Vertex>(100 + rng.below(400));
    Graph g(n);
    const std::int64_t m = static_cast<std::int64_t>(rng.below(
        static_cast<std::uint64_t>(2 * n)));
    for (std::int64_t e = 0; e < m; ++e) {
      const Vertex u = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
      const Vertex v = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(n)));
      if (u != v && !g.has_edge(u, v)) g.add_edge(u, v);
    }
    shapes.push_back({"random_forest", static_dfs(g), {}});
  }
  {
    // Dead vertices: delete a batch, then re-run the static DFS — deleted
    // slots keep parent kNullVertex and alive[v] == 0.
    Graph g = gen::random_connected(400, 900, rng);
    for (int d = 0; d < 60; ++d) {
      const Vertex v = static_cast<Vertex>(rng.below(400));
      if (g.is_alive(v) && g.num_vertices() > 2) g.remove_vertex(v);
    }
    Shape s{"dead_vertices", static_dfs(g), {}};
    s.alive.assign(g.alive().begin(), g.alive().end());
    shapes.push_back(std::move(s));
  }
  return shapes;
}

TEST(Rebuild, ParallelBuildMatchesSerialAtEveryWorkerCount) {
  const auto shapes = build_shapes();
  for (const Shape& s : shapes) {
    TreeIndex serial;
    serial.build(s.parent, s.alive, TreeBuildMode::kSerial);
    for (const int threads : {1, 2, 4, 8}) {
      pram::set_num_threads(threads);
      TreeIndex par;
      par.build(s.parent, s.alive, TreeBuildMode::kParallel);
      expect_identical(serial, par, static_cast<Vertex>(s.parent.size()), s.name);
    }
    pram::set_num_threads(0);
  }
}

TEST(Rebuild, AutoModeMatchesSerial) {
  // Whatever kAuto dispatches to (worker count and size dependent), the
  // observable index must be the serial one.
  const auto shapes = build_shapes();
  for (const Shape& s : shapes) {
    TreeIndex serial;
    serial.build(s.parent, s.alive, TreeBuildMode::kSerial);
    TreeIndex aut;
    aut.build(s.parent, s.alive);
    expect_identical(serial, aut, static_cast<Vertex>(s.parent.size()), s.name);
  }
}

TEST(Rebuild, TreeIndexRebuildIsCapacityStable) {
  Rng rng(7);
  Graph g = gen::random_connected(2000, 5000, rng);
  const std::vector<Vertex> parent = static_dfs(g);
  for (const TreeBuildMode mode :
       {TreeBuildMode::kSerial, TreeBuildMode::kParallel}) {
    TreeIndex idx;
    // Two builds to let every buffer (including the LCA and tour swap
    // pairs) reach its steady capacity, then the probe must not move.
    idx.build(parent, {}, mode);
    idx.build(parent, {}, mode);
    const std::size_t stable = idx.heap_capacity_bytes();
    EXPECT_GT(stable, 0u);
    for (int i = 0; i < 5; ++i) {
      idx.build(parent, {}, mode);
      EXPECT_EQ(idx.heap_capacity_bytes(), stable)
          << "mode " << static_cast<int>(mode) << " rebuild " << i;
    }
  }
}

TEST(Rebuild, OracleRebuildIsCapacityStable) {
  Rng rng(8);
  Graph g = gen::random_connected(2000, 5000, rng);
  const std::vector<Vertex> parent = static_dfs(g);
  TreeIndex idx;
  idx.build(parent);
  AdjacencyOracle oracle;
  oracle.build(g, idx);
  oracle.build(g, idx);
  const std::size_t stable = oracle.heap_capacity_bytes();
  EXPECT_GT(stable, 0u);
  for (int i = 0; i < 5; ++i) {
    oracle.build(g, idx);
    EXPECT_EQ(oracle.heap_capacity_bytes(), stable) << "rebuild " << i;
    // The aligned-allocator switch must not disturb capacity accounting,
    // and every rebuild must land the CSR on simd::kAlign boundaries
    // (DESIGN.md §10 layout invariant).
    EXPECT_TRUE(oracle.csr_aligned()) << "rebuild " << i;
  }
}

TEST(Rebuild, OracleRebuildAbsorbsEpochPatches) {
  // An epoch's worth of patches (extras + deletions) must not leak capacity
  // growth across rebuilds: the post-rebuild capacity returns to a fixed
  // point once the extra lists' inner capacities have stabilized.
  Rng rng(9);
  Graph g = gen::random_connected(500, 1500, rng);
  const std::vector<Vertex> parent = static_dfs(g);
  TreeIndex idx;
  idx.build(parent);
  AdjacencyOracle oracle;
  auto churn = [&] {
    // Patch a few edges, then rebuild (patch lists reset, buffers stay).
    int patched = 0;
    for (Vertex v = 0; v < 500 && patched < 10; ++v) {
      const auto nbrs = g.neighbors(v);
      if (nbrs.empty()) continue;
      oracle.note_edge_deleted(v, nbrs.front());
      oracle.note_edge_inserted(v, nbrs.front());
      ++patched;
    }
    oracle.build(g, idx);
  };
  oracle.build(g, idx);
  churn();
  churn();
  const std::size_t stable = oracle.heap_capacity_bytes();
  for (int i = 0; i < 4; ++i) {
    churn();
    EXPECT_EQ(oracle.heap_capacity_bytes(), stable) << "churn " << i;
  }
}

}  // namespace
}  // namespace pardfs
