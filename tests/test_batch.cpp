// DynamicDfs::apply_batch — the combined k-update reduction (Theorem 13's
// batch handling): validity after every batch, equivalence with the
// sequential per-update path at the graph level, and the amortization pins
// (one index rebuild per segment, zero for pure back-edge batches).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/dynamic_dfs.hpp"
#include "graph/generators.hpp"
#include "tree/validation.hpp"
#include "util/random.hpp"

namespace pardfs {
namespace {

GraphUpdate to_graph_update(const gen::Update& u) {
  switch (u.kind) {
    case gen::UpdateKind::kInsertEdge:
      return GraphUpdate::insert_edge(u.u, u.v);
    case gen::UpdateKind::kDeleteEdge:
      return GraphUpdate::delete_edge(u.u, u.v);
    case gen::UpdateKind::kInsertVertex:
      return GraphUpdate::insert_vertex(u.neighbors);
    case gen::UpdateKind::kDeleteVertex:
      return GraphUpdate::delete_vertex(u.u);
  }
  return GraphUpdate::insert_edge(u.u, u.v);
}

// A feasible mixed update stream, pre-generated against a mirror graph.
std::vector<GraphUpdate> make_stream(const Graph& initial, int count,
                                     std::uint64_t seed, double ins_v = 0.2,
                                     double del_v = 0.2) {
  Graph mirror = initial;
  Rng rng(seed);
  std::vector<GraphUpdate> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    gen::Update u;
    if (!gen::random_update(mirror, rng, 1.0, 1.0, ins_v, del_v, u)) break;
    gen::apply_update(mirror, u);
    out.push_back(to_graph_update(u));
  }
  return out;
}

TEST(Batch, SingleIndexRebuildForStructuralEdgeBatch) {
  Rng rng(101);
  Graph g = gen::random_connected(256, 700, rng);
  DynamicDfs dfs(std::move(g));
  const std::size_t base_rebuilds = dfs.epoch_rebuilds();
  const std::size_t index_rebuilds = dfs.index_rebuilds();

  // k tree-edge deletions (always structural), k <= epoch period.
  std::vector<GraphUpdate> batch;
  Graph mirror = dfs.graph();
  std::vector<Vertex> parent(dfs.parent().begin(), dfs.parent().end());
  for (Vertex v = 0; v < dfs.graph().capacity() &&
                     batch.size() < std::min<std::size_t>(dfs.epoch_period(), 6);
       ++v) {
    const Vertex p = parent[static_cast<std::size_t>(v)];
    if (p == kNullVertex) continue;
    batch.push_back(GraphUpdate::delete_edge(p, v));
    mirror.remove_edge(p, v);
  }
  ASSERT_GE(batch.size(), 2u);

  const BatchStats stats = dfs.apply_batch(batch);
  EXPECT_EQ(stats.updates, batch.size());
  EXPECT_EQ(stats.structural, batch.size());
  EXPECT_EQ(stats.segments, 1u) << "one combined pass for the whole batch";
  EXPECT_EQ(stats.index_rebuilds, 1u) << "exactly one O(n) index rebuild";
  EXPECT_EQ(dfs.index_rebuilds(), index_rebuilds + 1);
  EXPECT_EQ(dfs.epoch_rebuilds(), base_rebuilds) << "no epoch close forced";
  EXPECT_EQ(dfs.graph().num_edges(), mirror.num_edges());
  const auto val = validate_dfs_forest(dfs.graph(), dfs.parent());
  EXPECT_TRUE(val.ok) << val.reason;
}

TEST(Batch, PureBackEdgeBatchRebuildsNothing) {
  // On a path graph every (a, b) with a < b is an ancestor pair.
  DynamicDfs dfs(gen::path(64));
  const std::size_t index_rebuilds = dfs.index_rebuilds();
  const std::size_t base_rebuilds = dfs.epoch_rebuilds();
  const std::vector<Vertex> before(dfs.parent().begin(), dfs.parent().end());
  std::vector<GraphUpdate> batch;
  for (Vertex i = 0; i < 8; ++i) {
    batch.push_back(GraphUpdate::insert_edge(i, static_cast<Vertex>(40 + i)));
  }
  const BatchStats stats = dfs.apply_batch(batch);
  EXPECT_EQ(stats.back_edges, batch.size());
  EXPECT_EQ(stats.structural, 0u);
  EXPECT_EQ(stats.segments, 0u);
  EXPECT_EQ(stats.index_rebuilds, 0u);
  EXPECT_EQ(dfs.index_rebuilds(), index_rebuilds);
  EXPECT_EQ(dfs.epoch_rebuilds(), base_rebuilds);
  EXPECT_EQ(before, std::vector<Vertex>(dfs.parent().begin(), dfs.parent().end()));
  EXPECT_TRUE(validate_dfs_forest(dfs.graph(), dfs.parent()).ok);
}

TEST(Batch, MixedStreamValidAfterEveryBatch) {
  for (const std::size_t batch_size : {2u, 3u, 5u, 8u, 16u}) {
    Rng rng(2026 + batch_size);
    Graph g = gen::random_connected(150, 450, rng);
    const std::vector<GraphUpdate> stream =
        make_stream(g, 240, 77 * batch_size);
    DynamicDfs dfs(std::move(g));
    for (std::size_t i = 0; i < stream.size(); i += batch_size) {
      const std::size_t len = std::min(batch_size, stream.size() - i);
      dfs.apply_batch(std::span(stream).subspan(i, len));
      const auto val = validate_dfs_forest(dfs.graph(), dfs.parent());
      ASSERT_TRUE(val.ok) << "batch_size " << batch_size << " at update " << i
                          << ": " << val.reason;
    }
  }
}

TEST(Batch, MatchesSequentialGraphState) {
  Rng rng(404);
  Graph g = gen::random_connected(100, 260, rng);
  const std::vector<GraphUpdate> stream = make_stream(g, 160, 505);
  DynamicDfs batched(g);
  DynamicDfs sequential(g);
  for (std::size_t i = 0; i < stream.size(); i += 7) {
    const std::size_t len = std::min<std::size_t>(7, stream.size() - i);
    const auto chunk = std::span(stream).subspan(i, len);
    batched.apply_batch(chunk);
    for (const GraphUpdate& u : chunk) sequential.apply(u);
    ASSERT_EQ(batched.graph().num_vertices(), sequential.graph().num_vertices());
    ASSERT_EQ(batched.graph().num_edges(), sequential.graph().num_edges());
    // Both forests are valid DFS forests of the same graph (they may differ:
    // a DFS forest is not unique).
    ASSERT_TRUE(validate_dfs_forest(batched.graph(), batched.parent()).ok);
    ASSERT_TRUE(validate_dfs_forest(sequential.graph(), sequential.parent()).ok);
  }
}

TEST(Batch, VertexInsertsSegmentTheBatch) {
  DynamicDfs dfs(gen::path(10));
  std::vector<GraphUpdate> batch;
  batch.push_back(GraphUpdate::delete_edge(3, 4));
  batch.push_back(GraphUpdate::delete_edge(6, 7));
  batch.push_back(GraphUpdate::insert_vertex({2, 8}));
  batch.push_back(GraphUpdate::insert_vertex({}));
  const BatchStats stats = dfs.apply_batch(batch);
  ASSERT_EQ(stats.new_vertices.size(), 2u);
  EXPECT_EQ(stats.new_vertices[0], 10);
  EXPECT_EQ(stats.new_vertices[1], 11);
  EXPECT_TRUE(dfs.graph().has_edge(10, 2));
  EXPECT_TRUE(dfs.graph().has_edge(10, 8));
  EXPECT_EQ(dfs.parent_of(11), kNullVertex);
  EXPECT_TRUE(validate_dfs_forest(dfs.graph(), dfs.parent()).ok);
}

TEST(Batch, EdgeToFreshVertexInSameBatch) {
  // An edge update may reference the id a vertex insert earlier in the same
  // batch assigned (ids are deterministic: capacity order).
  DynamicDfs dfs(gen::path(6));
  std::vector<GraphUpdate> batch;
  batch.push_back(GraphUpdate::insert_vertex({0}));  // id 6
  batch.push_back(GraphUpdate::insert_edge(6, 3));
  batch.push_back(GraphUpdate::insert_edge(6, 5));
  const BatchStats stats = dfs.apply_batch(batch);
  ASSERT_EQ(stats.new_vertices.size(), 1u);
  EXPECT_EQ(stats.new_vertices[0], 6);
  EXPECT_TRUE(dfs.graph().has_edge(6, 3));
  EXPECT_TRUE(dfs.graph().has_edge(6, 5));
  EXPECT_TRUE(validate_dfs_forest(dfs.graph(), dfs.parent()).ok);
}

TEST(Batch, CrossTreeMergeAndSplitInOneBatch) {
  // Two components; one batch deletes a bridge inside the first and inserts
  // a merging edge to the second.
  Graph g(8);
  for (Vertex i = 0; i + 1 < 4; ++i) g.add_edge(i, i + 1);      // 0-1-2-3
  for (Vertex i = 4; i + 1 < 8; ++i) g.add_edge(i, i + 1);      // 4-5-6-7
  g.add_edge(0, 2);                                             // extra cycle edge
  DynamicDfs dfs(std::move(g));
  std::vector<GraphUpdate> batch;
  batch.push_back(GraphUpdate::delete_edge(2, 3));  // splits the tail
  batch.push_back(GraphUpdate::insert_edge(1, 5));  // merges the two trees
  batch.push_back(GraphUpdate::insert_edge(3, 6));  // reattaches the tail
  dfs.apply_batch(batch);
  const auto val = validate_dfs_forest(dfs.graph(), dfs.parent());
  ASSERT_TRUE(val.ok) << val.reason;
  EXPECT_EQ(dfs.root_of(0), dfs.root_of(5));
  EXPECT_EQ(dfs.root_of(0), dfs.root_of(3));
}

TEST(Batch, DeleteThenReinsertSameTreeEdge) {
  DynamicDfs dfs(gen::path(12));
  std::vector<GraphUpdate> batch;
  batch.push_back(GraphUpdate::delete_edge(5, 6));
  batch.push_back(GraphUpdate::insert_edge(5, 6));
  batch.push_back(GraphUpdate::delete_edge(8, 9));
  dfs.apply_batch(batch);
  const auto val = validate_dfs_forest(dfs.graph(), dfs.parent());
  ASSERT_TRUE(val.ok) << val.reason;
  EXPECT_TRUE(dfs.graph().has_edge(5, 6));
  EXPECT_EQ(dfs.root_of(0), dfs.root_of(6));
  EXPECT_NE(dfs.root_of(0), dfs.root_of(9));
}

TEST(Batch, AdversarialStarChurn) {
  // Star center deletions force Theta(n)-subtree reroots; batches must stay
  // valid while whole levels of leaves re-attach.
  const Vertex n = 64;
  Graph g = gen::star(n);
  for (Vertex i = 1; i + 1 < n; ++i) g.add_edge(i, i + 1);  // leaf ring
  DynamicDfs dfs(std::move(g));
  for (int round = 0; round < 6; ++round) {
    std::vector<GraphUpdate> batch;
    for (Vertex i = 1; i <= 5; ++i) {
      const Vertex leaf = static_cast<Vertex>((round * 5 + i) % (n - 1) + 1);
      if (dfs.graph().has_edge(0, leaf)) {
        batch.push_back(GraphUpdate::delete_edge(0, leaf));
      } else {
        batch.push_back(GraphUpdate::insert_edge(0, leaf));
      }
    }
    dfs.apply_batch(batch);
    const auto val = validate_dfs_forest(dfs.graph(), dfs.parent());
    ASSERT_TRUE(val.ok) << "round " << round << ": " << val.reason;
  }
}

TEST(Batch, ManyBatchesCrossEpochBoundaries) {
  Rng rng(9090);
  Graph g = gen::random_connected(128, 380, rng);
  const std::vector<GraphUpdate> stream = make_stream(g, 300, 42);
  DynamicDfs dfs(std::move(g));
  const std::size_t rebuilds0 = dfs.epoch_rebuilds();
  std::size_t applied = 0;
  for (std::size_t i = 0; i < stream.size(); i += 6) {
    const std::size_t len = std::min<std::size_t>(6, stream.size() - i);
    dfs.apply_batch(std::span(stream).subspan(i, len));
    applied += len;
    ASSERT_TRUE(validate_dfs_forest(dfs.graph(), dfs.parent()).ok);
  }
  EXPECT_GT(dfs.epoch_rebuilds(), rebuilds0) << "epochs must still roll over";
  EXPECT_LT(dfs.epoch_rebuilds() - rebuilds0, applied / 2)
      << "rebuilds stay amortized under batching";
}

TEST(Batch, SequentialStrategyHandlesBatchesToo) {
  Rng rng(31337);
  Graph g = gen::random_connected(80, 200, rng);
  const std::vector<GraphUpdate> stream = make_stream(g, 120, 8);
  DynamicDfs dfs(std::move(g), RerootStrategy::kSequentialL);
  for (std::size_t i = 0; i < stream.size(); i += 5) {
    const std::size_t len = std::min<std::size_t>(5, stream.size() - i);
    dfs.apply_batch(std::span(stream).subspan(i, len));
    ASSERT_TRUE(validate_dfs_forest(dfs.graph(), dfs.parent()).ok);
  }
}

TEST(Batch, DrainWholeGraphInBatches) {
  Rng rng(555);
  Graph g = gen::random_connected(40, 90, rng);
  DynamicDfs dfs(std::move(g));
  while (dfs.graph().num_edges() > 0) {
    const auto edges = dfs.graph().edges();
    std::vector<GraphUpdate> batch;
    for (std::size_t i = 0; i < edges.size() && batch.size() < 4; ++i) {
      batch.push_back(GraphUpdate::delete_edge(edges[i].u, edges[i].v));
    }
    dfs.apply_batch(batch);
    ASSERT_TRUE(validate_dfs_forest(dfs.graph(), dfs.parent()).ok);
  }
  std::vector<GraphUpdate> kill;
  for (Vertex v = 0; v < 40; ++v) {
    if (dfs.graph().is_alive(v)) kill.push_back(GraphUpdate::delete_vertex(v));
  }
  dfs.apply_batch(kill);
  EXPECT_EQ(dfs.graph().num_vertices(), 0);
}

TEST(Batch, EmptyBatchIsANoop) {
  DynamicDfs dfs(gen::path(5));
  const BatchStats stats = dfs.apply_batch({});
  EXPECT_EQ(stats.updates, 0u);
  EXPECT_EQ(stats.index_rebuilds, 0u);
  EXPECT_TRUE(validate_dfs_forest(dfs.graph(), dfs.parent()).ok);
}

}  // namespace
}  // namespace pardfs
