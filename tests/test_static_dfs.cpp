#include "baseline/static_dfs.hpp"

#include <gtest/gtest.h>

#include "baseline/ordered_dfs.hpp"
#include "graph/generators.hpp"
#include "tree/validation.hpp"
#include "util/random.hpp"

namespace pardfs {
namespace {

TEST(StaticDfs, PathGraph) {
  Graph g = gen::path(5);
  const auto parent = static_dfs(g);
  EXPECT_EQ(parent[0], kNullVertex);
  for (Vertex v = 1; v < 5; ++v) EXPECT_EQ(parent[static_cast<std::size_t>(v)], v - 1);
}

TEST(StaticDfs, DisconnectedComponentsGetOwnRoots) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const auto parent = static_dfs(g);
  int roots = 0;
  for (Vertex v = 0; v < 6; ++v) {
    if (parent[static_cast<std::size_t>(v)] == kNullVertex) ++roots;
  }
  EXPECT_EQ(roots, 4) << "components {0,1},{2,3},{4},{5}";
  EXPECT_TRUE(validate_dfs_forest(g, parent).ok);
}

TEST(StaticDfs, ValidOnManyFamilies) {
  Rng rng(11);
  const Vertex n = 300;
  const std::vector<Graph> graphs = [&] {
    std::vector<Graph> out;
    out.push_back(gen::path(n));
    out.push_back(gen::cycle(n));
    out.push_back(gen::star(n));
    out.push_back(gen::broom(n, n / 4));
    out.push_back(gen::binary_tree(n));
    out.push_back(gen::grid(15, 20));
    out.push_back(gen::hairy_path(30, 9));
    out.push_back(gen::clique(40));
    out.push_back(gen::gnp(n, 0.02, rng));
    out.push_back(gen::gnm(n, 900, rng));
    out.push_back(gen::random_connected(n, 500, rng));
    return out;
  }();
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const auto parent = static_dfs(graphs[i]);
    const auto result = validate_dfs_forest(graphs[i], parent);
    EXPECT_TRUE(result.ok) << "family " << i << ": " << result.reason;
  }
}

TEST(StaticDfs, FromSpecificRoots) {
  Graph g = gen::path(6);
  const Vertex roots[] = {3};
  const auto parent = static_dfs_from(g, roots);
  EXPECT_EQ(parent[3], kNullVertex);
  // Both directions hang off 3.
  EXPECT_TRUE(parent[2] == 3 || parent[4] == 3);
  EXPECT_TRUE(validate_dfs_forest(g, parent).ok);
}

TEST(OrderedDfs, LexicographicOrder) {
  // Star with center 2: ordered DFS from 0 goes 0 -> 2 -> then 1, 3 as
  // children of 2 in increasing order.
  Graph g(4);
  g.add_edge(2, 0);
  g.add_edge(2, 1);
  g.add_edge(2, 3);
  const auto parent = ordered_dfs(g);
  EXPECT_EQ(parent[0], kNullVertex);
  EXPECT_EQ(parent[2], 0);
  EXPECT_EQ(parent[1], 2);
  EXPECT_EQ(parent[3], 2);
}

TEST(OrderedDfs, DeterministicAcrossAdjacencyOrder) {
  // The same graph built in different edge orders yields the same tree.
  Graph a(5), b(5);
  a.add_edge(0, 1);
  a.add_edge(0, 2);
  a.add_edge(1, 3);
  a.add_edge(2, 3);
  a.add_edge(3, 4);
  b.add_edge(3, 4);
  b.add_edge(2, 3);
  b.add_edge(1, 3);
  b.add_edge(0, 2);
  b.add_edge(0, 1);
  EXPECT_EQ(ordered_dfs(a), ordered_dfs(b));
}

}  // namespace
}  // namespace pardfs
