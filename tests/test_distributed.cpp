// Distributed dynamic DFS (Theorem 16): CONGEST simulator primitives,
// distributed query evaluation vs. D, forest validity and round/message
// accounting shapes.
#include "dist/distributed_dfs.hpp"

#include <gtest/gtest.h>

#include "baseline/static_dfs.hpp"
#include "core/adjacency_oracle.hpp"
#include "dist/bfs_tree.hpp"
#include "graph/generators.hpp"
#include "tree/validation.hpp"
#include "util/random.hpp"

namespace pardfs::dist {
namespace {

TEST(Congest, BfsTreeShape) {
  Graph g = gen::grid(4, 5);
  CongestSimulator sim(g, 4);
  const BfsTree t = sim.build_bfs_tree(0);
  EXPECT_EQ(t.num_nodes, 20);
  EXPECT_EQ(t.height, 3 + 4);  // Manhattan eccentricity of the corner
  EXPECT_EQ(t.depth[0], 0);
  EXPECT_EQ(sim.rounds(), static_cast<std::uint64_t>(t.height));
  EXPECT_GT(sim.messages(), 0u);
}

TEST(Congest, BfsCoversOnlyComponent) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  CongestSimulator sim(g, 1);
  const BfsTree t = sim.build_bfs_tree(0);
  EXPECT_EQ(t.num_nodes, 2);
  EXPECT_EQ(t.depth[2], -1);
  EXPECT_EQ(t.depth[4], -1);
}

TEST(Congest, AggregateCombinesAllContributions) {
  Graph g = gen::path(6);
  CongestSimulator sim(g, 2);
  const BfsTree t = sim.build_bfs_tree(0);
  std::vector<std::vector<std::uint64_t>> contrib(6);
  for (Vertex v = 0; v < 6; ++v) {
    contrib[static_cast<std::size_t>(v)] = {static_cast<std::uint64_t>(v), 1};
  }
  const auto combined = sim.aggregate(
      t, contrib, [](std::size_t, std::uint64_t a, std::uint64_t b) { return a + b; });
  ASSERT_EQ(combined.size(), 2u);
  EXPECT_EQ(combined[0], 0u + 1 + 2 + 3 + 4 + 5);
  EXPECT_EQ(combined[1], 6u);
}

TEST(Congest, PipelinedAccountingFormula) {
  Graph g = gen::path(10);  // BFS height 9 from vertex 0
  CongestSimulator sim(g, 3);
  const BfsTree t = sim.build_bfs_tree(0);
  sim.reset_counters();
  std::vector<std::vector<std::uint64_t>> contrib(10, std::vector<std::uint64_t>(7, 1));
  sim.aggregate(t, contrib,
                [](std::size_t, std::uint64_t a, std::uint64_t b) { return a + b; });
  // k=7 words, B=3 -> 3 chunks; rounds = 2*(9 + 3 - 1) = 22; messages = 2*9*3.
  EXPECT_EQ(sim.rounds(), 22u);
  EXPECT_EQ(sim.messages(), 54u);
}

TEST(DistributedQueries, MatchOracle) {
  Rng rng(81);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = gen::random_connected(60, 120, rng);
    const auto parent = static_dfs(g);
    TreeIndex index;
    index.build(parent);
    AdjacencyOracle oracle;
    oracle.build(g, index);
    CongestSimulator sim(g, 8);
    const BfsTree tree = sim.build_bfs_tree(0);

    std::vector<stream::StreamQuery> queries;
    std::vector<std::optional<Edge>> expected;
    for (int qi = 0; qi < 30; ++qi) {
      const Vertex bottom = static_cast<Vertex>(rng.below(60));
      Vertex top = bottom;
      for (std::uint64_t h = rng.below(5); h > 0 && index.parent(top) != kNullVertex;
           --h) {
        top = index.parent(top);
      }
      const Vertex w = static_cast<Vertex>(rng.below(60));
      if (index.is_ancestor(w, bottom) || index.is_ancestor(top, w)) continue;
      const bool nearest_top = rng.coin(0.5);
      queries.push_back({stream::StreamQuery::SourceKind::kSubtree, w, kNullVertex,
                         top, bottom, nearest_top});
      expected.push_back(oracle.query_sources(
          index.subtree_span(w), PathSeg{top, bottom},
          nearest_top ? PathEnd::kTop : PathEnd::kBottom));
    }
    const auto got = answer_queries_distributed(sim, tree, g, index, queries);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].has_value(), expected[i].has_value()) << "query " << i;
      if (got[i]) {
        EXPECT_EQ(index.post(got[i]->v), index.post(expected[i]->v)) << "query " << i;
        // Same (target post, source id) tie-breaking as the oracle.
        EXPECT_EQ(got[i]->u, expected[i]->u) << "query " << i;
      }
    }
  }
}

TEST(DistributedDfs, ForestStaysValidUnderChurn) {
  Rng rng(82);
  Graph g = gen::random_connected(40, 70, rng);
  DistributedDfs dd(std::move(g), 8);
  for (int step = 0; step < 30; ++step) {
    gen::Update u;
    ASSERT_TRUE(gen::random_update(dd.graph(), rng, 1, 1, 0.3, 0.3, u));
    GraphUpdate gu = [&] {
      switch (u.kind) {
        case gen::UpdateKind::kInsertEdge:
          return GraphUpdate::insert_edge(u.u, u.v);
        case gen::UpdateKind::kDeleteEdge:
          return GraphUpdate::delete_edge(u.u, u.v);
        case gen::UpdateKind::kInsertVertex:
          return GraphUpdate::insert_vertex(u.neighbors);
        case gen::UpdateKind::kDeleteVertex:
          return GraphUpdate::delete_vertex(u.u);
      }
      return GraphUpdate::insert_edge(u.u, u.v);
    }();
    dd.apply(gu);
    const auto val = validate_dfs_forest(dd.graph(), dd.parent());
    ASSERT_TRUE(val.ok) << "step " << step << ": " << val.reason;
    if (u.kind == gen::UpdateKind::kInsertEdge) {
      // Edge endpoints share a component of size >= 2: communication is
      // unavoidable. (Deletions may leave the leader in a singleton.)
      EXPECT_GT(dd.last_cost().rounds, 0u) << "step " << step;
      EXPECT_GT(dd.last_cost().messages, 0u) << "step " << step;
    }
  }
  EXPECT_GT(dd.total_rounds(), 0u);
  EXPECT_GT(dd.total_messages(), 0u);
}

TEST(DistributedDfs, RoundsScaleWithDiameterTimesPolylog) {
  // Low-diameter grid vs. high-diameter path at the same vertex count:
  // rounds per update must track D, not n.
  const Vertex n = 400;
  Graph grid = gen::grid(20, 20);
  Graph path = gen::path(n);
  path.add_edge(0, n - 1);
  DistributedDfs dd_grid(std::move(grid));   // D ~ 38
  DistributedDfs dd_path(std::move(path));   // D ~ n/2 after the cycle closes
  dd_grid.apply(GraphUpdate::delete_edge(0, 1));
  dd_path.apply(GraphUpdate::delete_edge(n / 2 - 1, n / 2));
  EXPECT_GT(dd_grid.last_cost().rounds, 0u);
  EXPECT_GT(dd_path.last_cost().rounds, dd_grid.last_cost().rounds)
      << "larger diameter must cost more rounds";
  // Both valid.
  EXPECT_TRUE(validate_dfs_forest(dd_grid.graph(), dd_grid.parent()).ok);
  EXPECT_TRUE(validate_dfs_forest(dd_path.graph(), dd_path.parent()).ok);
}

TEST(DistributedDfs, AutoMessageSizeUsesDominantComponent) {
  // Isolated vertex 0 next to a 100-vertex path: B must come from the
  // dominant component (n=100, D=99 -> B=1), not from the lowest-id
  // singleton (which would give the degenerate B = n/2).
  Graph g(101);
  for (Vertex v = 1; v < 100; ++v) g.add_edge(v, v + 1);
  DistributedDfs dd(std::move(g));
  EXPECT_EQ(dd.message_words(), 1);
  Graph h(101);
  for (Vertex v = 2; v <= 100; ++v) h.add_edge(1, v);  // star on 1..100
  DistributedDfs dd2(std::move(h));
  EXPECT_EQ(dd2.message_words(), 50);
}

TEST(DistributedDfs, AutoMessageSizeIsNOverD) {
  Graph g = gen::path(100);
  DistributedDfs dd(std::move(g));
  // D ~ 99 (BFS height from vertex 0), so B = max(1, 100 / (2*99)) = 1.
  EXPECT_EQ(dd.message_words(), 1);
  Graph h = gen::star(100);
  DistributedDfs dd2(std::move(h));
  // D ~ 1..2 -> B ~ 25..50.
  EXPECT_GE(dd2.message_words(), 25);
}

}  // namespace
}  // namespace pardfs::dist
