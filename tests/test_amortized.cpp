// Amortized rebuild policy (the paper's closing open question, DESIGN E10):
// correctness across the whole period knob, and the accounting of rebuilds.
#include <gtest/gtest.h>

#include "core/fault_tolerant.hpp"
#include "graph/generators.hpp"
#include "tree/validation.hpp"
#include "util/random.hpp"

namespace pardfs {
namespace {

GraphUpdate convert(const gen::Update& u) {
  switch (u.kind) {
    case gen::UpdateKind::kInsertEdge:
      return GraphUpdate::insert_edge(u.u, u.v);
    case gen::UpdateKind::kDeleteEdge:
      return GraphUpdate::delete_edge(u.u, u.v);
    case gen::UpdateKind::kInsertVertex:
      return GraphUpdate::insert_vertex(u.neighbors);
    case gen::UpdateKind::kDeleteVertex:
      return GraphUpdate::delete_vertex(u.u);
  }
  return GraphUpdate::insert_edge(u.u, u.v);
}

class AmortizedSweep : public ::testing::TestWithParam<int> {};

TEST_P(AmortizedSweep, ForestStaysValidForEveryPeriod) {
  const int period = GetParam();
  Rng rng(1000 + static_cast<std::uint64_t>(period));
  Graph g = gen::random_connected(60, 100, rng);
  AmortizedDynamicDfs dfs(g, static_cast<std::size_t>(period));
  for (int step = 0; step < 80; ++step) {
    gen::Update u;
    ASSERT_TRUE(gen::random_update(dfs.graph(), rng, 1, 1, 0.4, 0.4, u));
    dfs.apply(convert(u));
    const auto val = validate_dfs_forest(dfs.graph(), dfs.parent());
    ASSERT_TRUE(val.ok) << "period=" << period << " step=" << step << ": "
                        << val.reason;
  }
}

INSTANTIATE_TEST_SUITE_P(Periods, AmortizedSweep, ::testing::Values(1, 2, 4, 8, 16),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "period" + std::to_string(info.param);
                         });

TEST(Amortized, RebuildCountMatchesPeriod) {
  Rng rng(5);
  Graph g = gen::random_connected(40, 60, rng);
  AmortizedDynamicDfs dfs(g, 4);
  for (int step = 0; step < 20; ++step) {
    gen::Update u;
    ASSERT_TRUE(gen::random_update(dfs.graph(), rng, 1, 1, 0, 0, u));
    dfs.apply(convert(u));
  }
  EXPECT_EQ(dfs.rebuilds(), 5u) << "20 updates at period 4";
}

TEST(Amortized, PeriodZeroBehavesAsOne) {
  Rng rng(6);
  Graph g = gen::random_connected(20, 30, rng);
  AmortizedDynamicDfs dfs(g, 0);
  EXPECT_EQ(dfs.period(), 1u);
  gen::Update u;
  ASSERT_TRUE(gen::random_update(dfs.graph(), rng, 1, 1, 0, 0, u));
  dfs.apply(convert(u));
  EXPECT_EQ(dfs.rebuilds(), 1u);
}

TEST(FaultTolerantRebase, RebaseMakesCurrentStateTheBaseline) {
  Graph g = gen::cycle(12);
  FaultTolerantDfs ft(g);
  ft.apply_incremental(GraphUpdate::delete_edge(3, 4));
  ft.rebase();
  EXPECT_EQ(ft.updates_applied(), 0u);
  // A reset now returns to the REBASED state, not the original one.
  ft.apply_incremental(GraphUpdate::delete_edge(8, 9));
  ft.reset();
  EXPECT_FALSE(ft.graph().has_edge(3, 4)) << "rebase absorbed the first delete";
  EXPECT_TRUE(ft.graph().has_edge(8, 9)) << "reset rolled back the second";
  const auto val = validate_dfs_forest(ft.graph(), ft.parent());
  EXPECT_TRUE(val.ok) << val.reason;
}

TEST(FaultTolerantRebase, LongRunBeyondLogN) {
  // The FT mode alone degrades past ~log n updates; with periodic rebases
  // arbitrarily long runs stay correct.
  Rng rng(7);
  Graph g = gen::random_connected(50, 80, rng);
  FaultTolerantDfs ft(g);
  for (int step = 0; step < 100; ++step) {
    gen::Update u;
    ASSERT_TRUE(gen::random_update(ft.graph(), rng, 1, 1, 0.3, 0.3, u));
    ft.apply_incremental(convert(u));
    if (ft.updates_applied() >= 6) ft.rebase();
    const auto val = validate_dfs_forest(ft.graph(), ft.parent());
    ASSERT_TRUE(val.ok) << "step " << step << ": " << val.reason;
  }
}

}  // namespace
}  // namespace pardfs
