// Crash-tolerant serving (DESIGN.md §13): journal-replay recovery is
// byte-identical at 1 / 4 / 16 shards, reads keep serving while a shard is
// down, the ack vocabulary (kRetryable / kTimeout / kOverloaded) is total,
// the client retry loop lands every transient, writer-side invariant
// failures recover while reader-side checks still abort, stop() during
// in-flight merges drains instead of deadlocking, and the chaos hooks are
// provably inert when compiled out (and provably armed when compiled in).
#include "testing/chaos.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/dynamic_dfs.hpp"
#include "graph/generators.hpp"
#include "service/dfs_service.hpp"
#include "service/journal.hpp"
#include "service/shard_router.hpp"
#include "service/workload.hpp"
#include "util/check.hpp"
#include "util/random.hpp"

namespace pardfs::service {
namespace {

using chaos::FaultPlan;
using chaos::FaultPoint;
using chaos::FaultSpec;

// k disjoint paths of `len` vertices each (path c covers [c*len, (c+1)*len)):
// round-robin component placement puts path c on shard c % S.
Graph disjoint_paths(int k, int len) {
  Graph g;
  for (int c = 0; c < k; ++c) {
    for (int i = 0; i < len; ++i) g.add_vertex();
    for (int i = 1; i < len; ++i) {
      g.add_edge(static_cast<Vertex>(c * len + i - 1),
                 static_cast<Vertex>(c * len + i));
    }
  }
  return g;
}

// A deterministic, always-feasible op stream over a private mirror: edge
// toggles between random alive vertices, occasional attached vertex inserts
// and vertex deletions. Every op is applied to the mirror as generated, so a
// service driven by the stream stays in lock-step with the mirror — vertex
// ids included, because Graph::add_vertex appends at capacity() and the
// router's global id counter advances identically.
class ToggleStream {
 public:
  ToggleStream(Graph mirror, std::uint64_t seed)
      : mirror_(std::move(mirror)), rng_(seed) {}

  const Graph& mirror() const { return mirror_; }

  GraphUpdate next() {
    for (;;) {
      const std::uint64_t dice = rng_.below(100);
      if (dice < 80) {
        const Vertex u = random_alive();
        const Vertex v = random_alive();
        if (u == v) continue;
        if (mirror_.has_edge(u, v)) {
          mirror_.remove_edge(u, v);
          return GraphUpdate::delete_edge(u, v);
        }
        mirror_.add_edge(u, v);
        return GraphUpdate::insert_edge(u, v);
      }
      if (dice < 92) {
        std::vector<Vertex> nbrs{random_alive()};
        mirror_.add_vertex(nbrs);
        return GraphUpdate::insert_vertex(std::move(nbrs));
      }
      if (mirror_.num_vertices() <= 24) continue;  // keep local pairs plentiful
      const Vertex d = random_alive();
      mirror_.remove_vertex(d);
      return GraphUpdate::delete_vertex(d);
    }
  }

  // A feasible edge toggle whose endpoints the router currently places on
  // ONE shard — the deterministic injection vehicle: poisoning that shard is
  // guaranteed to crash the writer that drains this op. Applies to the
  // mirror exactly like next(). False only if no shard owns two alive
  // vertices (cannot happen with the >= 24-alive floor above).
  bool local_toggle(const ShardRouter& router, GraphUpdate* op, int* shard) {
    std::vector<std::vector<Vertex>> by_shard(router.num_shards());
    for (Vertex v = 0; v < mirror_.capacity(); ++v) {
      if (!mirror_.is_alive(v)) continue;
      const int s = router.shard_of(v);
      if (s < 0) continue;
      auto& bucket = by_shard[static_cast<std::size_t>(s)];
      bucket.push_back(v);
      if (bucket.size() < 2) continue;
      const Vertex a = bucket.front();
      const Vertex b = bucket.back();
      *shard = s;
      if (mirror_.has_edge(a, b)) {
        mirror_.remove_edge(a, b);
        *op = GraphUpdate::delete_edge(a, b);
      } else {
        mirror_.add_edge(a, b);
        *op = GraphUpdate::insert_edge(a, b);
      }
      return true;
    }
    return false;
  }

 private:
  Vertex random_alive() {
    for (;;) {
      const Vertex v = static_cast<Vertex>(
          rng_.below(static_cast<std::uint64_t>(mirror_.capacity())));
      if (mirror_.is_alive(v)) return v;
    }
  }

  Graph mirror_;
  Rng rng_;
};

// The shard that would drain `u` — only when every referenced endpoint
// resolves to the same shard (injecting there is guaranteed to crash the
// writer that processes it). -1 otherwise.
int local_shard_of(const ShardRouter& router, const GraphUpdate& u) {
  switch (u.kind) {
    case GraphUpdate::Kind::kInsertEdge:
    case GraphUpdate::Kind::kDeleteEdge: {
      const int a = router.shard_of(u.u);
      const int b = router.shard_of(u.v);
      return a == b ? a : -1;
    }
    case GraphUpdate::Kind::kDeleteVertex:
      return router.shard_of(u.u);
    case GraphUpdate::Kind::kInsertVertex:
      return -1;  // isolated inserts round-robin; not guaranteed local
  }
  return -1;
}

ServiceConfig supervised_config(std::size_t shards) {
  ServiceConfig config;
  config.num_shards = shards;
  config.max_batch = 1;  // per-update drains: deterministic lock-step
  config.watchdog_poll_ms = 1;
  return config;
}

// ---- journal replay: the determinism core ----------------------------------

TEST(Journal, ReplayReconstructsByteIdenticalEngine) {
  Rng rng(7);
  Graph g = gen::random_connected(48, 96, rng);
  UpdateJournal journal(g, {});
  DynamicDfs live(g);
  ToggleStream stream(g, 11);

  std::uint64_t version = 1;
  std::uint64_t applied = 0;
  for (int round = 0; round < 12; ++round) {
    std::vector<GraphUpdate> batch;
    for (int i = 0; i < 3; ++i) batch.push_back(stream.next());
    // Mirror the shard writer's engine mutation order: pad, then apply, each
    // recorded before it runs (the WAL point).
    journal.record_pad(live.graph().capacity());
    live.pad_capacity(live.graph().capacity());
    journal.record_apply(batch, version + 1, applied + batch.size());
    live.apply_batch(batch);
    ++version;
    applied += batch.size();
  }

  const UpdateJournal::ReplayResult r = journal.replay();
  EXPECT_EQ(r.version, version);
  EXPECT_EQ(r.updates_applied, applied);
  ASSERT_EQ(r.engine.graph().capacity(), live.graph().capacity());
  EXPECT_EQ(r.engine.graph().num_vertices(), live.graph().num_vertices());
  EXPECT_EQ(r.engine.graph().num_edges(), live.graph().num_edges());
  for (Vertex v = 0; v < live.graph().capacity(); ++v) {
    ASSERT_EQ(r.engine.parent()[static_cast<std::size_t>(v)],
              live.parent()[static_cast<std::size_t>(v)])
        << "parent diverges at vertex " << v;
    ASSERT_EQ(r.engine.graph().is_alive(v), live.graph().is_alive(v))
        << "aliveness diverges at vertex " << v;
  }
}

// checkpoint() drops the recorded prefix (bounding memory and replay time in
// a long-running service) and replay from the checkpoint base — the verbatim
// graph + forest transplant — stays byte-identical to the live engine.
TEST(Journal, CheckpointTruncatesAndReplayStaysByteIdentical) {
  Rng rng(9);
  Graph g = gen::random_connected(48, 96, rng);
  UpdateJournal journal(g, {});
  DynamicDfs live(g);
  ToggleStream stream(g, 13);

  std::uint64_t version = 1;
  std::uint64_t applied = 0;
  const auto round = [&] {
    std::vector<GraphUpdate> batch;
    for (int i = 0; i < 3; ++i) batch.push_back(stream.next());
    journal.record_pad(live.graph().capacity());
    live.pad_capacity(live.graph().capacity());
    journal.record_apply(batch, version + 1, applied + batch.size());
    live.apply_batch(batch);
    ++version;
    applied += batch.size();
  };
  for (int r = 0; r < 8; ++r) round();
  ASSERT_EQ(journal.entries(), 16u);
  journal.checkpoint(live.graph(), live.parent(), version, applied);
  EXPECT_EQ(journal.entries(), 0u);  // the recorded prefix is gone
  for (int r = 0; r < 8; ++r) round();
  EXPECT_EQ(journal.entries(), 16u);  // only post-checkpoint history remains

  const UpdateJournal::ReplayResult r = journal.replay();
  EXPECT_EQ(r.version, version);
  EXPECT_EQ(r.updates_applied, applied);
  ASSERT_EQ(r.engine.graph().capacity(), live.graph().capacity());
  EXPECT_EQ(r.engine.graph().num_vertices(), live.graph().num_vertices());
  EXPECT_EQ(r.engine.graph().num_edges(), live.graph().num_edges());
  for (Vertex v = 0; v < live.graph().capacity(); ++v) {
    ASSERT_EQ(r.engine.parent()[static_cast<std::size_t>(v)],
              live.parent()[static_cast<std::size_t>(v)])
        << "parent diverges at vertex " << v;
    ASSERT_EQ(r.engine.graph().is_alive(v), live.graph().is_alive(v))
        << "aliveness diverges at vertex " << v;
  }

  // A second checkpoint directly after the first replay point: replay with
  // zero entries is just the restored base.
  journal.checkpoint(live.graph(), live.parent(), version, applied);
  const UpdateJournal::ReplayResult r2 = journal.replay();
  EXPECT_EQ(r2.version, version);
  for (Vertex v = 0; v < live.graph().capacity(); ++v) {
    ASSERT_EQ(r2.engine.parent()[static_cast<std::size_t>(v)],
              live.parent()[static_cast<std::size_t>(v)]);
  }
}

TEST(Journal, FileBackingWritesAReadableLog) {
  const std::string prefix = ::testing::TempDir() + "pardfs_chaos_journal_";
  {
    ServiceConfig config = supervised_config(2);
    config.journal_path_prefix = prefix;
    ShardRouter router(disjoint_paths(2, 4), config);
    (void)router.apply_sync(GraphUpdate::insert_edge(0, 2));
    router.stop();
  }
  std::FILE* f = std::fopen((prefix + "0.log").c_str(), "r");
  ASSERT_NE(f, nullptr) << "journal debug log was not created";
  char buf[64];
  EXPECT_NE(std::fgets(buf, sizeof buf, f), nullptr) << "log is empty";
  std::fclose(f);
}

// ---- crash -> journal-replay failover, end to end ---------------------------

// Drives the identical always-feasible stream through a supervised S-shard
// router and an un-faulted 1-shard reference, lock-step, killing the writer
// about to drain an op roughly every sixth update (plus a deterministic
// six-kill epilogue so every shard count gets real failovers). Every kill
// must ack its op kRetryable, recover by journal replay, land the retried
// op — and the final assembled forest must match the reference byte for
// byte.
void run_recovery_differential(std::size_t shards,
                               std::size_t checkpoint_entries = 256) {
  ServiceConfig subject_config = supervised_config(shards);
  subject_config.journal_checkpoint_entries = checkpoint_entries;
  ShardRouter subject(disjoint_paths(16, 4), subject_config);
  ShardRouter reference(disjoint_paths(16, 4), supervised_config(1));
  ToggleStream stream(disjoint_paths(16, 4), 23);

  std::uint64_t injections = 0;
  const auto drive = [&](const GraphUpdate& u, int i) {
    const SubmitOutcome out = submit_with_retry(subject, u);
    ASSERT_TRUE(out.applied())
        << "subject lost feasible update " << i << " (result "
        << UpdateTicket::status_name(out.result) << ")";
    UpdateTicket rt = reference.submit(u);
    ASSERT_FALSE(UpdateTicket::is_status(rt.wait()))
        << "reference rejected feasible update " << i;
    if (u.kind == GraphUpdate::Kind::kInsertVertex) {
      ASSERT_EQ(out.assigned_vertex, rt.assigned_vertex())
          << "vertex-id divergence after recovery at update " << i;
    }
  };
  for (int i = 0; i < 48; ++i) {
    const GraphUpdate u = stream.next();
    if (i % 6 == 5) {
      const int s = local_shard_of(subject, u);
      if (s >= 0) {
        subject.inject_writer_failure(static_cast<std::size_t>(s));
        ++injections;
      }
    }
    drive(u, i);
    if (::testing::Test::HasFatalFailure()) return;
  }
  for (int k = 0; k < 6; ++k) {
    GraphUpdate u;
    int s = -1;
    ASSERT_TRUE(stream.local_toggle(subject, &u, &s));
    subject.inject_writer_failure(static_cast<std::size_t>(s));
    ++injections;
    drive(u, 48 + k);
    if (::testing::Test::HasFatalFailure()) return;
  }
  ASSERT_GE(injections, 6u);
  EXPECT_EQ(subject.stats().recoveries, injections);
  EXPECT_EQ(subject.stats().retryable_acks, injections);

  const std::vector<Vertex> got = subject.assemble_parent();
  const std::vector<Vertex> want = reference.assemble_parent();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t v = 0; v < got.size(); ++v) {
    ASSERT_EQ(got[v], want[v])
        << "parent diverges at vertex " << v << " (" << shards << " shards)";
  }
  EXPECT_EQ(subject.assemble_alive(), reference.assemble_alive());
  subject.stop();
  reference.stop();
}

TEST(Recovery, ByteIdenticalAfterFailoverAt1Shard) {
  run_recovery_differential(1);
}
TEST(Recovery, ByteIdenticalAfterFailoverAt4Shards) {
  run_recovery_differential(4);
}
TEST(Recovery, ByteIdenticalAfterFailoverAt16Shards) {
  run_recovery_differential(16);
}
// An aggressive checkpoint bound makes every failover replay from a recent
// checkpoint base instead of genesis; the recovered forests must still match
// the reference byte for byte.
TEST(Recovery, ByteIdenticalWithAggressiveJournalCheckpoints) {
  run_recovery_differential(4, /*checkpoint_entries=*/4);
}

TEST(Recovery, DfsServiceFacadeRecoversToo) {
  DfsService svc(gen::path(16), supervised_config(1));
  ASSERT_EQ(svc.apply_sync(GraphUpdate::insert_edge(0, 5)), 2u);
  svc.inject_writer_failure();
  const SubmitOutcome out =
      submit_with_retry(svc.router(), GraphUpdate::insert_edge(3, 9));
  EXPECT_TRUE(out.applied());
  EXPECT_GT(out.attempts, 1);  // the first attempt died with the writer
  EXPECT_EQ(svc.stats().recoveries, 1u);
  // The recovered snapshot serves the retried update: 15 path edges + 2.
  EXPECT_EQ(svc.snapshot()->num_edges(), 17);
  svc.stop();
}

// Readers must never block (or go non-total) while writers crash and
// recover: a reader thread hammers the view through repeated kill/recover
// cycles; every query must return (a hang fails via the ctest timeout).
TEST(Recovery, ReadsKeepServingThroughFailovers) {
  ShardRouter router(disjoint_paths(4, 16), supervised_config(4));
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::thread reader([&] {
    const RouterView view = router.view();
    while (!stop.load(std::memory_order_acquire)) {
      for (Vertex v = 0; v < 64; ++v) {
        (void)view.contains(v);
        (void)view.root_of(v);
        (void)view.depth(v);
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  ToggleStream stream(disjoint_paths(4, 16), 31);
  std::uint64_t injections = 0;
  bool wedged = false;
  for (int i = 0; i < 10 && !wedged; ++i) {
    for (int j = 0; j < 3; ++j) {
      const SubmitOutcome out = submit_with_retry(router, stream.next());
      EXPECT_TRUE(out.applied());
      wedged = wedged || !out.applied();
    }
    GraphUpdate u;
    int s = -1;
    if (!stream.local_toggle(router, &u, &s)) break;
    router.inject_writer_failure(static_cast<std::size_t>(s));
    ++injections;
    const SubmitOutcome out = submit_with_retry(router, u);
    EXPECT_TRUE(out.applied());
    wedged = wedged || !out.applied();
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_FALSE(wedged);
  EXPECT_EQ(injections, 10u);
  EXPECT_EQ(router.stats().recoveries, injections);
  EXPECT_GT(reads.load(), 0u);
  router.stop();
}

// With the watchdog off, a crashed shard degrades to reads-only: its last
// snapshot keeps serving, other shards keep applying, and stop() performs
// the deferred recovery and flushes the dead shard's queued work kRetryable
// so no ticket is ever left pending.
TEST(Recovery, WatchdogOffDegradesToReadsThenRecoversAtStop) {
  ServiceConfig config = supervised_config(2);
  config.watchdog_poll_ms = 0;
  ShardRouter router(disjoint_paths(2, 8), config);
  const Vertex probe = 2;  // component 0 -> shard 0
  const Vertex root_before = router.view().root_of(probe);

  router.inject_writer_failure(0);
  UpdateTicket lost = router.submit(GraphUpdate::insert_edge(0, 4));
  EXPECT_EQ(lost.wait(), UpdateTicket::kRetryable);

  // Degraded: reads on the dead shard still answer from the last snapshot.
  EXPECT_EQ(router.view().root_of(probe), root_before);
  EXPECT_EQ(router.stats().recoveries, 0u);

  // Writes to the dead shard queue up un-acked (nobody will drain them)...
  UpdateTicket queued;
  ASSERT_TRUE(router.try_submit(GraphUpdate::insert_edge(1, 5), &queued));
  EXPECT_FALSE(queued.done());
  // ...while the live shard keeps applying normally.
  EXPECT_EQ(router.apply_sync(GraphUpdate::insert_edge(8, 12)), 2u);

  router.stop();
  EXPECT_EQ(router.stats().recoveries, 1u);
  // stop()'s totality sweep: work a dead writer never drained (so never
  // journaled) is flushed kRetryable, not silently dropped or applied.
  EXPECT_EQ(queued.wait(), UpdateTicket::kRetryable);
}

// No journal + a crash = the shard is truly unrecoverable: reads degrade
// gracefully, and stop() still acks every stranded ticket kRetryable.
TEST(Recovery, JournalDisabledDegradesAndFlushesTicketsAtStop) {
  ServiceConfig config = supervised_config(2);
  config.enable_journal = false;
  ShardRouter router(disjoint_paths(2, 8), config);
  const Vertex root_before = router.view().root_of(2);

  router.inject_writer_failure(0);
  UpdateTicket lost = router.submit(GraphUpdate::insert_edge(0, 4));
  EXPECT_EQ(lost.wait(), UpdateTicket::kRetryable);

  UpdateTicket stranded;
  ASSERT_TRUE(router.try_submit(GraphUpdate::insert_edge(1, 5), &stranded));
  EXPECT_EQ(router.view().root_of(2), root_before);  // reads still serve

  router.stop();
  EXPECT_EQ(router.stats().recoveries, 0u);
  EXPECT_EQ(stranded.wait(), UpdateTicket::kRetryable);
  EXPECT_GE(router.stats().retryable_acks, 2u);
}

// ---- the ack vocabulary is total --------------------------------------------

TEST(Tickets, WaitForTimesOutThenResolves) {
  ServiceConfig config;
  config.start_paused = true;
  DfsService svc(gen::path(8), config);
  UpdateTicket t = svc.submit(GraphUpdate::insert_edge(0, 4));
  // Paused writer: the deadline passes with the ticket still pending.
  EXPECT_EQ(t.wait_for(std::chrono::milliseconds(20)), UpdateTicket::kTimeout);
  EXPECT_FALSE(t.done());  // kTimeout never acks the ticket
  svc.resume();
  const std::uint64_t v = t.wait();
  EXPECT_FALSE(UpdateTicket::is_status(v));
  // A later bounded wait on the resolved ticket returns the same version.
  EXPECT_EQ(t.wait_for(std::chrono::milliseconds(1)), v);
  svc.stop();
}

TEST(Tickets, AdmissionControlShedsOverloaded) {
  ServiceConfig config;
  config.start_paused = true;  // the writer never drains: depth is exact
  config.max_queue_depth = 1;
  ShardRouter router(gen::path(8), config);
  UpdateTicket first = router.submit(GraphUpdate::insert_edge(0, 2));
  EXPECT_FALSE(first.done());

  UpdateTicket shed = router.submit(GraphUpdate::insert_edge(0, 3));
  EXPECT_EQ(shed.wait(), UpdateTicket::kOverloaded);

  // try_submit's contract stays "true = you hold a ticket": a shed comes
  // back true with the ticket pre-acked kOverloaded.
  UpdateTicket shed2;
  ASSERT_TRUE(router.try_submit(GraphUpdate::insert_edge(0, 4), &shed2));
  EXPECT_EQ(shed2.wait(), UpdateTicket::kOverloaded);
  EXPECT_EQ(router.stats().overload_sheds, 2u);

  router.resume();
  EXPECT_FALSE(UpdateTicket::is_status(first.wait()));
  router.stop();
}

TEST(Tickets, StatusVocabularyIsWellFormed) {
  EXPECT_TRUE(UpdateTicket::is_status(UpdateTicket::kRejected));
  EXPECT_TRUE(UpdateTicket::is_status(UpdateTicket::kRetryable));
  EXPECT_TRUE(UpdateTicket::is_status(UpdateTicket::kTimeout));
  EXPECT_TRUE(UpdateTicket::is_status(UpdateTicket::kOverloaded));
  EXPECT_FALSE(UpdateTicket::is_status(1));
  EXPECT_STREQ(UpdateTicket::status_name(UpdateTicket::kRejected), "rejected");
  EXPECT_STREQ(UpdateTicket::status_name(UpdateTicket::kRetryable),
               "retryable");
  EXPECT_STREQ(UpdateTicket::status_name(UpdateTicket::kTimeout), "timeout");
  EXPECT_STREQ(UpdateTicket::status_name(UpdateTicket::kOverloaded),
               "overloaded");
  EXPECT_STREQ(UpdateTicket::status_name(7), "version");
}

TEST(Tickets, RetryLoopGivesUpNonDefinitivelyOnSustainedOverload) {
  ServiceConfig config;
  config.start_paused = true;
  config.max_queue_depth = 1;
  ShardRouter router(gen::path(8), config);
  (void)router.submit(GraphUpdate::insert_edge(0, 2));  // fills the queue
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.ack_timeout = std::chrono::milliseconds(5);
  policy.initial_backoff = std::chrono::microseconds(10);
  const SubmitOutcome out =
      submit_with_retry(router, GraphUpdate::insert_edge(0, 3), policy);
  EXPECT_EQ(out.result, UpdateTicket::kOverloaded);
  EXPECT_FALSE(out.definitive());
  EXPECT_EQ(out.attempts, 3);
  router.resume();
  router.stop();
}

// ---- failure-domain boundaries ----------------------------------------------

TEST(CheckDeathTest, ReaderSideChecksStillAbort) {
  // Outside a writer/watchdog scope PARDFS_CHECK keeps its historical
  // fail-stop behavior: corruption on the read path must never be served.
  EXPECT_DEATH(PARDFS_CHECK_MSG(false, "reader-side probe"), "check failed");
}

TEST(Check, WriterScopedChecksThrowInsteadOfAborting) {
  EXPECT_FALSE(recoverable_checks());
  {
    const ScopedRecoverableChecks scope;
    EXPECT_TRUE(recoverable_checks());
    EXPECT_THROW(PARDFS_CHECK_MSG(false, "writer-side probe"),
                 InvariantViolation);
  }
  EXPECT_FALSE(recoverable_checks());
}

// stop() racing in-flight cross-shard merges must drain, ack everything, and
// join — never deadlock. (A hang here fails via the ctest timeout.)
TEST(Lifecycle, StopDuringInFlightMergesDrainsWithoutDeadlock) {
  for (int round = 0; round < 12; ++round) {
    ShardRouter router(disjoint_paths(4, 4), supervised_config(4));
    std::vector<UpdateTicket> tickets;
    std::mutex tickets_mu;
    std::atomic<bool> quit{false};
    std::vector<std::thread> producers;
    for (int p = 0; p < 2; ++p) {
      producers.emplace_back([&, p] {
        Rng rng(static_cast<std::uint64_t>(round * 2 + p + 1));
        while (!quit.load(std::memory_order_acquire)) {
          // Cross-component edges: every accept runs the merge protocol.
          const Vertex u = static_cast<Vertex>(rng.below(16));
          const Vertex v = static_cast<Vertex>(rng.below(16));
          UpdateTicket t;
          if (u != v && router.try_submit(GraphUpdate::insert_edge(u, v), &t)) {
            std::lock_guard lock(tickets_mu);
            tickets.push_back(t);
          }
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2 + round % 3));
    router.stop();  // races the producers and any merge mid-protocol
    quit.store(true, std::memory_order_release);
    for (std::thread& t : producers) t.join();
    for (const UpdateTicket& t : tickets) {
      (void)t.wait();  // total: applied, rejected, or retryable — never stuck
    }
  }
}

// ---- the chaos substrate itself ---------------------------------------------

TEST(ChaosPlan, RandomPlansAreDeterministicPerSeed) {
  const FaultPlan a = FaultPlan::random(42, 4, 6, 32);
  const FaultPlan b = FaultPlan::random(42, 4, 6, 32);
  ASSERT_EQ(a.specs.size(), 6u);
  ASSERT_EQ(b.specs.size(), 6u);
  for (std::size_t i = 0; i < a.specs.size(); ++i) {
    EXPECT_EQ(a.specs[i].point, b.specs[i].point);
    EXPECT_EQ(a.specs[i].shard, b.specs[i].shard);
    EXPECT_EQ(a.specs[i].at_hit, b.specs[i].at_hit);
    EXPECT_EQ(a.specs[i].param, b.specs[i].param);
  }
  const FaultPlan c = FaultPlan::random(43, 4, 6, 32);
  bool differs = false;
  for (std::size_t i = 0; i < c.specs.size(); ++i) {
    differs = differs || c.specs[i].point != a.specs[i].point ||
              c.specs[i].shard != a.specs[i].shard ||
              c.specs[i].at_hit != a.specs[i].at_hit;
  }
  EXPECT_TRUE(differs);
}

TEST(ChaosPlan, PointNamesAreStable) {
  EXPECT_STREQ(chaos::point_name(FaultPoint::kWriterCrashMidBatch),
               "writer_crash_mid_batch");
  EXPECT_STREQ(chaos::point_name(FaultPoint::kBatchStallMs), "batch_stall_ms");
  EXPECT_STREQ(chaos::point_name(FaultPoint::kMergeAbort), "merge_abort");
  EXPECT_STREQ(chaos::point_name(FaultPoint::kQueueFull), "queue_full");
  EXPECT_STREQ(chaos::point_name(FaultPoint::kIndexRebuildThrow),
               "index_rebuild_throw");
}

#if defined(PARDFS_ENABLE_CHAOS)

// Compiled in: an armed plan actually fires, exactly once per spec, at the
// scheduled consultation, and disarm() silences everything.
TEST(ChaosHooks, ArmedPlanFiresOnceAtTheScheduledHit) {
  FaultPlan plan;
  plan.specs.push_back(FaultSpec{FaultPoint::kQueueFull, /*shard=*/0,
                                 /*at_hit=*/1, /*param=*/0});
  chaos::arm(plan);
  EXPECT_TRUE(chaos::armed());
  EXPECT_EQ(chaos::hit(FaultPoint::kQueueFull, 0).kind,
            chaos::FaultAction::Kind::kNone);  // consultation 0: skipped
  EXPECT_EQ(chaos::hit(FaultPoint::kQueueFull, 1).kind,
            chaos::FaultAction::Kind::kNone);  // wrong shard: no match
  EXPECT_EQ(chaos::hit(FaultPoint::kQueueFull, 0).kind,
            chaos::FaultAction::Kind::kShed);  // consultation 1: fires
  EXPECT_EQ(chaos::hit(FaultPoint::kQueueFull, 0).kind,
            chaos::FaultAction::Kind::kNone);  // one-shot
  EXPECT_EQ(chaos::faults_injected(), 1u);
  chaos::disarm();
  EXPECT_FALSE(chaos::armed());
  EXPECT_EQ(chaos::hit(FaultPoint::kQueueFull, 0).kind,
            chaos::FaultAction::Kind::kNone);
}

// Compiled in + a chaos-enabled router: a merge_abort mid-protocol recovers
// the involved shards, acks the op kRetryable, and the retried op lands on a
// state byte-identical to an un-faulted single-shard run of the same ops.
TEST(ChaosHooks, MergeAbortRecoversAndRetrySucceeds) {
  FaultPlan plan;
  plan.specs.push_back(
      FaultSpec{FaultPoint::kMergeAbort, /*shard=*/-1, /*at_hit=*/0, 0});
  chaos::arm(plan);
  ServiceConfig config = supervised_config(2);
  config.enable_chaos = true;
  ShardRouter router(disjoint_paths(2, 4), config);
  ShardRouter reference(disjoint_paths(2, 4), supervised_config(1));

  const GraphUpdate merge = GraphUpdate::insert_edge(1, 6);  // cross-shard
  const SubmitOutcome out = submit_with_retry(router, merge);
  ASSERT_TRUE(out.applied());
  EXPECT_GT(out.attempts, 1);  // the first attempt died in the merge
  EXPECT_EQ(chaos::faults_injected(), 1u);
  EXPECT_GE(router.stats().recoveries, 1u);
  EXPECT_GE(router.stats().retryable_acks, 1u);

  ASSERT_FALSE(UpdateTicket::is_status(reference.apply_sync(merge)));
  EXPECT_EQ(router.assemble_parent(), reference.assemble_parent());
  EXPECT_EQ(router.assemble_alive(), reference.assemble_alive());
  chaos::disarm();
  router.stop();
  reference.stop();
}

// Regression: a writer crash between the WAL record and the (previously
// post-apply) global id advance must not let another shard hand out the
// journaled insert's id. Ids are reserved at the WAL point, so the insert
// that lands on the live shard during the recovery window and the replayed
// crashed insert get distinct ids.
TEST(ChaosHooks, CrashedInsertKeepsItsReservedIds) {
  FaultPlan plan;
  plan.specs.push_back(FaultSpec{FaultPoint::kWriterCrashMidBatch,
                                 /*shard=*/0, /*at_hit=*/0, /*param=*/0});
  chaos::arm(plan);
  ServiceConfig config = supervised_config(2);
  config.enable_chaos = true;
  config.watchdog_poll_ms = 50;  // hold the recovery window open for the race
  ShardRouter router(disjoint_paths(2, 4), config);

  // Shard 0's writer crashes right after journaling this insert...
  UpdateTicket crashed = router.submit(GraphUpdate::insert_vertex({0}));
  // ...while shard 1 assigns an id during the pre-replay window.
  UpdateTicket live = router.submit(GraphUpdate::insert_vertex({4}));
  ASSERT_FALSE(UpdateTicket::is_status(live.wait()));
  ASSERT_FALSE(UpdateTicket::is_status(crashed.wait()));
  EXPECT_EQ(chaos::faults_injected(), 1u);

  const Vertex replayed_id = crashed.assigned_vertex();
  const Vertex live_id = live.assigned_vertex();
  ASSERT_NE(replayed_id, kNullVertex);
  ASSERT_NE(live_id, kNullVertex);
  EXPECT_NE(replayed_id, live_id) << "duplicate vertex id acked to 2 clients";
  EXPECT_TRUE(router.view().contains(replayed_id));
  EXPECT_TRUE(router.view().contains(live_id));
  EXPECT_EQ(router.shard_of(replayed_id), 0);
  EXPECT_EQ(router.shard_of(live_id), 1);
  chaos::disarm();
  router.stop();  // joins the watchdog: the recovery stat is settled now
  EXPECT_EQ(router.stats().recoveries, 1u);
}

#else  // !PARDFS_ENABLE_CHAOS

// Compiled out: arming is inert, hooks answer kNone, nothing ever fires —
// production binaries cannot be made to inject faults.
TEST(ChaosHooks, CompiledOutHooksAreInert) {
  chaos::arm(FaultPlan::random(1, 4, 16, 1));  // every spec due immediately
  EXPECT_FALSE(chaos::armed());
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(chaos::hit(FaultPoint::kQueueFull, 0).kind,
              chaos::FaultAction::Kind::kNone);
    EXPECT_EQ(chaos::hit(FaultPoint::kWriterCrashMidBatch, 0).kind,
              chaos::FaultAction::Kind::kNone);
  }
  EXPECT_EQ(chaos::faults_injected(), 0u);

  // A chaos-enabled router behaves exactly like a plain one.
  ServiceConfig config = supervised_config(2);
  config.enable_chaos = true;
  ShardRouter router(disjoint_paths(2, 4), config);
  ToggleStream stream(disjoint_paths(2, 4), 5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(UpdateTicket::is_status(router.apply_sync(stream.next())));
  }
  EXPECT_EQ(router.stats().recoveries, 0u);
  EXPECT_EQ(router.stats().overload_sheds, 0u);
  EXPECT_EQ(router.stats().retryable_acks, 0u);
  chaos::disarm();
  router.stop();
}

#endif  // PARDFS_ENABLE_CHAOS

}  // namespace
}  // namespace pardfs::service
