// Long-run and degenerate-input stress: large graphs, drain-to-empty /
// grow-to-clique trajectories, tiny graphs, heavy vertex churn — validity
// asserted after every single update — plus the service workload scenarios
// pushed through the batch path and through a live DfsService.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/dynamic_dfs.hpp"
#include "graph/generators.hpp"
#include "service/dfs_service.hpp"
#include "service/workload.hpp"
#include "tree/validation.hpp"
#include "util/random.hpp"

namespace pardfs {
namespace {

TEST(Stress, LargeGraphMixedChurn) {
  Rng rng(9001);
  Graph g = gen::random_connected(1500, 3000, rng);
  DynamicDfs dfs(std::move(g));
  for (int step = 0; step < 30; ++step) {
    gen::Update u;
    ASSERT_TRUE(gen::random_update(dfs.graph(), rng, 1, 1, 0.3, 0.3, u));
    switch (u.kind) {
      case gen::UpdateKind::kInsertEdge: dfs.insert_edge(u.u, u.v); break;
      case gen::UpdateKind::kDeleteEdge: dfs.delete_edge(u.u, u.v); break;
      case gen::UpdateKind::kInsertVertex: dfs.insert_vertex(u.neighbors); break;
      case gen::UpdateKind::kDeleteVertex: dfs.delete_vertex(u.u); break;
    }
    const auto val = validate_dfs_forest(dfs.graph(), dfs.parent());
    ASSERT_TRUE(val.ok) << "step " << step << ": " << val.reason;
    ASSERT_LE(dfs.last_stats().global_rounds, 256u) << "rounds must stay polylog";
  }
}

TEST(Stress, DrainGraphToEmpty) {
  Rng rng(9002);
  Graph g = gen::random_connected(30, 60, rng);
  DynamicDfs dfs(std::move(g));
  // Delete every edge, then every vertex.
  while (dfs.graph().num_edges() > 0) {
    const auto edges = dfs.graph().edges();
    dfs.delete_edge(edges.front().u, edges.front().v);
    const auto val = validate_dfs_forest(dfs.graph(), dfs.parent());
    ASSERT_TRUE(val.ok) << val.reason;
  }
  for (Vertex v = 0; v < 30; ++v) {
    if (!dfs.graph().is_alive(v)) continue;
    dfs.delete_vertex(v);
    const auto val = validate_dfs_forest(dfs.graph(), dfs.parent());
    ASSERT_TRUE(val.ok) << val.reason;
  }
  EXPECT_EQ(dfs.graph().num_vertices(), 0);
}

TEST(Stress, GrowPathToClique) {
  const Vertex n = 24;
  DynamicDfs dfs(gen::path(n));
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      if (dfs.graph().has_edge(u, v)) continue;
      dfs.insert_edge(u, v);
      const auto val = validate_dfs_forest(dfs.graph(), dfs.parent());
      ASSERT_TRUE(val.ok) << "(" << u << "," << v << "): " << val.reason;
    }
  }
  EXPECT_EQ(dfs.graph().num_edges(), static_cast<std::int64_t>(n) * (n - 1) / 2);
}

TEST(Stress, TinyGraphs) {
  // 1 vertex.
  DynamicDfs one(Graph(1));
  EXPECT_EQ(one.parent_of(0), kNullVertex);
  one.delete_vertex(0);
  EXPECT_EQ(one.graph().num_vertices(), 0);
  // 2 vertices, flip the single edge repeatedly.
  DynamicDfs two(Graph(2));
  for (int i = 0; i < 5; ++i) {
    two.insert_edge(0, 1);
    ASSERT_TRUE(validate_dfs_forest(two.graph(), two.parent()).ok);
    two.delete_edge(0, 1);
    ASSERT_TRUE(validate_dfs_forest(two.graph(), two.parent()).ok);
  }
}

TEST(Stress, RebuildFromIsolatedVertices) {
  // All-isolated start; stitch a random tree vertex by vertex via
  // vertex insertions carrying edges.
  DynamicDfs dfs(Graph(1));
  Rng rng(9003);
  for (int i = 0; i < 40; ++i) {
    const Vertex cap = dfs.graph().capacity();
    std::vector<Vertex> nbrs;
    // 1-3 random alive neighbors.
    for (std::uint64_t t = 0, want = 1 + rng.below(3); t < 8 && nbrs.size() < want;
         ++t) {
      const Vertex c = static_cast<Vertex>(rng.below(static_cast<std::uint64_t>(cap)));
      if (dfs.graph().is_alive(c) &&
          std::find(nbrs.begin(), nbrs.end(), c) == nbrs.end()) {
        nbrs.push_back(c);
      }
    }
    dfs.insert_vertex(nbrs);
    const auto val = validate_dfs_forest(dfs.graph(), dfs.parent());
    ASSERT_TRUE(val.ok) << "insert " << i << ": " << val.reason;
  }
  EXPECT_EQ(dfs.graph().num_vertices(), 41);
}

TEST(Stress, AlternatingSplitMerge) {
  // Two cliques joined by one bridge; churn the bridge.
  const Vertex half = 12;
  Graph g(2 * half);
  for (Vertex i = 0; i < half; ++i)
    for (Vertex j = i + 1; j < half; ++j) {
      g.add_edge(i, j);
      g.add_edge(half + i, half + j);
    }
  g.add_edge(0, half);
  DynamicDfs dfs(std::move(g));
  for (int round = 0; round < 8; ++round) {
    dfs.delete_edge(0, half);
    ASSERT_TRUE(validate_dfs_forest(dfs.graph(), dfs.parent()).ok);
    ASSERT_NE(dfs.root_of(0), dfs.root_of(half));
    const Vertex a = static_cast<Vertex>((round + 1) % half);
    const Vertex b = static_cast<Vertex>(half + (round * 5 + 3) % half);
    dfs.insert_edge(a, b);  // distinct from the canonical bridge (0, half)
    ASSERT_TRUE(validate_dfs_forest(dfs.graph(), dfs.parent()).ok);
    ASSERT_EQ(dfs.root_of(0), dfs.root_of(half));
    // Restore the canonical bridge, then remove the temporary one.
    dfs.insert_edge(0, half);
    dfs.delete_edge(a, b);
    ASSERT_TRUE(validate_dfs_forest(dfs.graph(), dfs.parent()).ok);
  }
}

TEST(Stress, WorkloadScenariosThroughBatches) {
  // Every service scenario, driven straight through apply_batch in chunks,
  // validity checked after every batch.
  using service::Scenario;
  for (const Scenario scenario :
       {Scenario::kReadHeavy, Scenario::kInsertChurn,
        Scenario::kAdversarialStar, Scenario::kSocialMix}) {
    const service::WorkloadSpec spec{scenario, 128,
                                     41 + static_cast<std::uint64_t>(scenario)};
    service::WorkloadDriver driver(spec);
    DynamicDfs dfs(service::make_initial_graph(spec));
    for (int batch = 0; batch < 25; ++batch) {
      std::vector<GraphUpdate> updates;
      for (int i = 0; i < 8; ++i) updates.push_back(driver.next());
      dfs.apply_batch(updates);
      const auto val = validate_dfs_forest(dfs.graph(), dfs.parent());
      ASSERT_TRUE(val.ok) << service::scenario_name(scenario) << " batch "
                          << batch << ": " << val.reason;
    }
    ASSERT_EQ(dfs.graph().num_edges(), driver.graph().num_edges());
    ASSERT_EQ(dfs.graph().num_vertices(), driver.graph().num_vertices());
  }
}

TEST(Stress, WorkloadDriverClampsTinyScales) {
  // make_initial_graph clamps tiny n; the driver's scenario arithmetic must
  // use the same clamp (an unclamped star spec of n=1 used to divide by 0).
  for (Vertex n : {1, 2, 7}) {
    const service::WorkloadSpec spec{service::Scenario::kAdversarialStar, n, 3};
    service::WorkloadDriver driver(spec);
    DynamicDfs dfs(service::make_initial_graph(spec));
    for (int i = 0; i < 40; ++i) dfs.apply(driver.next());
    ASSERT_TRUE(validate_dfs_forest(dfs.graph(), dfs.parent()).ok);
    ASSERT_EQ(dfs.graph().num_edges(), driver.graph().num_edges());
  }
}

TEST(Stress, ServiceSurvivesAdversarialStarWithReaders) {
  // The worst-case scenario for rerooting, served live: 4 readers hammer
  // snapshots while the star center churns. (The 8-reader consistency
  // acceptance test lives in test_service.cpp; this one leans on volume.)
  const service::WorkloadSpec spec{service::Scenario::kAdversarialStar, 192, 7};
  service::WorkloadDriver driver(spec);
  service::DfsService svc(service::make_initial_graph(spec));
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(99 + r);
      while (!stop.load(std::memory_order_relaxed)) {
        const service::SnapshotPtr snap = svc.snapshot();
        const Vertex u = static_cast<Vertex>(rng.below(snap->capacity()));
        if (snap->contains(u)) {
          std::size_t work = snap->path_to_root(u).size();
          work += snap->same_component(0, u) ? 1 : 0;
          volatile std::size_t sink = work;
          (void)sink;
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (int i = 0; i < 500; ++i) {
    ASSERT_NE(svc.apply_sync(driver.next()), service::UpdateTicket::kRejected);
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  svc.stop();
  EXPECT_GT(reads.load(), 0u);
  const auto val = validate_dfs_forest(svc.core().graph(), svc.core().parent());
  EXPECT_TRUE(val.ok) << val.reason;
}

TEST(Stress, ParallelEngineBatchChurn) {
  // The rerooting engine's worker fan-out, driven hard through the combined
  // batch path with an explicit 4-worker team — the scenario the TSAN CI job
  // must see race-free (workers share the tree, the oracle and the cost
  // model; everything else is per-worker).
  using service::Scenario;
  for (const Scenario scenario :
       {Scenario::kAdversarialStar, Scenario::kSocialMix}) {
    const service::WorkloadSpec spec{scenario, 160,
                                     91 + static_cast<std::uint64_t>(scenario)};
    service::WorkloadDriver driver(spec);
    DynamicDfs dfs(service::make_initial_graph(spec), RerootStrategy::kPaper,
                   nullptr, /*num_threads=*/4);
    for (int batch = 0; batch < 20; ++batch) {
      std::vector<GraphUpdate> updates;
      for (int i = 0; i < 8; ++i) updates.push_back(driver.next());
      dfs.apply_batch(updates);
      const auto val = validate_dfs_forest(dfs.graph(), dfs.parent());
      ASSERT_TRUE(val.ok) << service::scenario_name(scenario) << " batch "
                          << batch << ": " << val.reason;
    }
  }
}

TEST(Stress, ParallelEngineServiceUnderReaders) {
  // Worker fan-out inside the writer thread while readers hammer snapshots:
  // engine workers + writer + readers all live at once.
  const service::WorkloadSpec spec{service::Scenario::kAdversarialStar, 192, 13};
  service::WorkloadDriver driver(spec);
  service::ServiceConfig config;
  config.num_threads = 4;
  service::DfsService svc(service::make_initial_graph(spec), config);
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      Rng rng(133 + r);
      while (!stop.load(std::memory_order_relaxed)) {
        const service::SnapshotPtr snap = svc.snapshot();
        const Vertex u = static_cast<Vertex>(rng.below(snap->capacity()));
        if (snap->contains(u)) {
          volatile Vertex sink = snap->root_of(u);
          (void)sink;
        }
      }
    });
  }
  for (int i = 0; i < 300; ++i) {
    ASSERT_NE(svc.apply_sync(driver.next()), service::UpdateTicket::kRejected);
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  svc.stop();
  const auto val = validate_dfs_forest(svc.core().graph(), svc.core().parent());
  EXPECT_TRUE(val.ok) << val.reason;
}

TEST(Stress, SequentialStrategyAlsoCorrectUnderChurn) {
  Rng rng(9004);
  Graph g = gen::random_connected(80, 120, rng);
  DynamicDfs dfs(std::move(g), RerootStrategy::kSequentialL);
  for (int step = 0; step < 40; ++step) {
    gen::Update u;
    ASSERT_TRUE(gen::random_update(dfs.graph(), rng, 1, 1, 0.2, 0.2, u));
    switch (u.kind) {
      case gen::UpdateKind::kInsertEdge: dfs.insert_edge(u.u, u.v); break;
      case gen::UpdateKind::kDeleteEdge: dfs.delete_edge(u.u, u.v); break;
      case gen::UpdateKind::kInsertVertex: dfs.insert_vertex(u.neighbors); break;
      case gen::UpdateKind::kDeleteVertex: dfs.delete_vertex(u.u); break;
    }
    ASSERT_TRUE(validate_dfs_forest(dfs.graph(), dfs.parent()).ok);
  }
}

}  // namespace
}  // namespace pardfs
