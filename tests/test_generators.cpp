#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "baseline/static_dfs.hpp"
#include "tree/validation.hpp"

namespace pardfs::gen {
namespace {

TEST(Generators, PathShape) {
  Graph g = path(10);
  EXPECT_EQ(g.num_edges(), 9);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(5), 2);
}

TEST(Generators, CycleShape) {
  Graph g = cycle(10);
  EXPECT_EQ(g.num_edges(), 10);
  for (Vertex v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 2);
}

TEST(Generators, StarShape) {
  Graph g = star(10);
  EXPECT_EQ(g.num_edges(), 9);
  EXPECT_EQ(g.degree(0), 9);
}

TEST(Generators, CliqueShape) {
  Graph g = clique(8);
  EXPECT_EQ(g.num_edges(), 28);
}

TEST(Generators, BroomShape) {
  Graph g = broom(20, 5);
  EXPECT_EQ(g.num_edges(), 19);
  EXPECT_EQ(g.degree(4), 16) << "broom head: 1 handle edge + 15 bristles";
}

TEST(Generators, BinaryTreeShape) {
  Graph g = binary_tree(15);
  EXPECT_EQ(g.num_edges(), 14);
  EXPECT_EQ(g.degree(0), 2);
}

TEST(Generators, GridShape) {
  Graph g = grid(4, 6);
  EXPECT_EQ(g.num_vertices(), 24);
  EXPECT_EQ(g.num_edges(), 4 * 5 + 3 * 6);
}

TEST(Generators, HairyPathShape) {
  Graph g = hairy_path(5, 3);
  EXPECT_EQ(g.num_vertices(), 20);
  EXPECT_EQ(g.num_edges(), 19);
}

TEST(Generators, GnmExactEdgeCount) {
  Rng rng(3);
  Graph g = gnm(50, 300, rng);
  EXPECT_EQ(g.num_edges(), 300);
}

TEST(Generators, GnpRoughDensity) {
  Rng rng(4);
  Graph g = gnp(400, 0.05, rng);
  const double expected = 0.05 * 400 * 399 / 2;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, expected * 0.25);
}

TEST(Generators, BarabasiAlbertShape) {
  Rng rng(8);
  const Vertex n = 500;
  const Vertex m = 3;
  Graph g = barabasi_albert(n, m, rng);
  EXPECT_EQ(g.num_vertices(), n);
  // Clique seed on m+1 vertices, then m edges per arrival.
  const std::int64_t expected =
      static_cast<std::int64_t>(m + 1) * m / 2 +
      static_cast<std::int64_t>(n - m - 1) * m;
  EXPECT_EQ(g.num_edges(), expected);
  for (Vertex v = 0; v < n; ++v) EXPECT_GE(g.degree(v), m);
}

TEST(Generators, BarabasiAlbertIsConnected) {
  Rng rng(9);
  Graph g = barabasi_albert(300, 2, rng);
  const auto parent = static_dfs(g);
  int roots = 0;
  for (Vertex v = 0; v < 300; ++v) {
    if (parent[static_cast<std::size_t>(v)] == kNullVertex) ++roots;
  }
  EXPECT_EQ(roots, 1);
  EXPECT_TRUE(validate_dfs_forest(g, parent).ok);
}

TEST(Generators, BarabasiAlbertGrowsHubs) {
  // Preferential attachment concentrates degree: the maximum degree must be
  // far above the mean (for uniform attachment it stays near the mean).
  Rng rng(10);
  const Vertex n = 2000;
  Graph g = barabasi_albert(n, 2, rng);
  Vertex max_degree = 0;
  for (Vertex v = 0; v < n; ++v) max_degree = std::max(max_degree, g.degree(v));
  const double mean = 2.0 * static_cast<double>(g.num_edges()) / n;
  EXPECT_GT(max_degree, static_cast<Vertex>(6.0 * mean))
      << "power-law hubs expected (mean degree " << mean << ")";
}

TEST(Generators, BarabasiAlbertMinimumSizes) {
  Rng rng(11);
  Graph g = barabasi_albert(2, 1, rng);  // n == m + 1: just the seed clique
  EXPECT_EQ(g.num_vertices(), 2);
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(Generators, RandomConnectedIsConnected) {
  Rng rng(5);
  Graph g = random_connected(200, 100, rng);
  const auto parent = static_dfs(g);
  int roots = 0;
  for (Vertex v = 0; v < 200; ++v) {
    if (parent[static_cast<std::size_t>(v)] == kNullVertex) ++roots;
  }
  EXPECT_EQ(roots, 1);
}

TEST(Generators, RandomUpdatesAreFeasible) {
  Rng rng(6);
  Graph g = random_connected(50, 50, rng);
  for (int i = 0; i < 500; ++i) {
    Update u;
    ASSERT_TRUE(random_update(g, rng, 1, 1, 0.3, 0.3, u)) << "step " << i;
    apply_update(g, u);
    ASSERT_GE(g.num_vertices(), 1);
  }
  // The mix must keep the graph usable; a DFS must still validate.
  const auto parent = static_dfs(g);
  EXPECT_TRUE(validate_dfs_forest(g, parent).ok);
}

TEST(Generators, RandomUpdateRespectsZeroWeights) {
  Rng rng(7);
  Graph g = path(10);
  for (int i = 0; i < 100; ++i) {
    Update u;
    ASSERT_TRUE(random_update(g, rng, 0, 1, 0, 0, u));
    EXPECT_EQ(u.kind, UpdateKind::kDeleteEdge);
    apply_update(g, u);
    if (g.num_edges() == 0) break;
  }
}

}  // namespace
}  // namespace pardfs::gen
