// The observability layer tested as a subsystem: log-bucket quantile error
// bounds, shard-merge correctness, concurrent recording (the TSAN target),
// Prometheus/JSON exposition validity — including the six writer-pipeline
// phases and the ack-latency quantiles the acceptance criteria pin — the
// runtime kill switch, and the determinism contract (same forest with
// metrics on, off, or compiled out).
//
// The registry is process-global by design, so tests either use their own
// metric names or assert on deltas, never on absolute process-wide values.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/dynamic_dfs.hpp"
#include "graph/generators.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "service/dfs_service.hpp"
#include "util/random.hpp"

namespace pardfs::obs {
namespace {

using pardfs::service::DfsService;

// Values recorded under PARDFS_NO_METRICS vanish; these tests assert the
// recorded-path arithmetic, so they pin zeros in that configuration instead.
#if defined(PARDFS_NO_METRICS)
constexpr bool kRecording = false;
#else
constexpr bool kRecording = true;
#endif

TEST(Obs, BucketOfRespectsLog2Boundaries) {
  EXPECT_EQ(bucket_of(0), 0u);
  EXPECT_EQ(bucket_of(1), 1u);  // [1, 2)
  EXPECT_EQ(bucket_of(2), 2u);  // [2, 4)
  EXPECT_EQ(bucket_of(3), 2u);
  EXPECT_EQ(bucket_of(4), 3u);
  EXPECT_EQ(bucket_of(1023), 10u);
  EXPECT_EQ(bucket_of(1024), 11u);
  // Everything past the last bound collapses into the overflow bucket.
  EXPECT_EQ(bucket_of(~0ull), kHistogramBuckets - 1);
}

TEST(Obs, CounterMergesShardsAcrossThreads) {
  Counter& c = Registry::global().counter("test_obs_counter_total");
  const std::uint64_t before = c.value();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value() - before, kRecording ? kThreads * kPerThread : 0u);
}

TEST(Obs, HistogramQuantileWithinOneLogBucket) {
  if (!kRecording) GTEST_SKIP() << "recording compiled out";
  Histogram& h =
      Registry::global().histogram("test_obs_quantile_bound", "", 1.0);
  // Uniform 1..4096: every log bucket in range gets mass.
  std::vector<std::uint64_t> values;
  for (std::uint64_t v = 1; v <= 4096; ++v) values.push_back(v);
  for (const std::uint64_t v : values) h.record(v);
  const HistogramSnapshot snap = h.snapshot();
  ASSERT_EQ(snap.count, values.size());
  EXPECT_DOUBLE_EQ(snap.sum, 4096.0 * 4097.0 / 2.0);
  EXPECT_DOUBLE_EQ(snap.max, 4096.0);
  for (const double q : {0.50, 0.90, 0.99}) {
    const std::uint64_t exact =
        values[static_cast<std::size_t>(q * (values.size() - 1))];
    const double est = snap.quantile(q);
    // One log2 bucket of slack in each direction: the estimate lives in the
    // same bucket as the exact order statistic.
    EXPECT_GE(est, static_cast<double>(exact) / 2.0) << "q=" << q;
    EXPECT_LE(est, static_cast<double>(exact) * 2.0) << "q=" << q;
  }
  // The p99 companion fields match quantile().
  EXPECT_DOUBLE_EQ(snap.p50, snap.quantile(0.50));
  EXPECT_DOUBLE_EQ(snap.p90, snap.quantile(0.90));
  EXPECT_DOUBLE_EQ(snap.p99, snap.quantile(0.99));
  // Quantiles never exceed the observed maximum.
  EXPECT_LE(snap.quantile(1.0), snap.max);
}

TEST(Obs, HistogramScaleAppliesAtSnapshotOnly) {
  if (!kRecording) GTEST_SKIP() << "recording compiled out";
  // Sub-microsecond values recorded raw in ns survive a 1e-3 display scale.
  Histogram& h =
      Registry::global().histogram("test_obs_scaled_us", "", 1e-3);
  h.record(250);  // 250 ns = 0.25 us
  h.record(750);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_DOUBLE_EQ(snap.sum, 1.0);   // 1000 ns -> 1 us
  EXPECT_DOUBLE_EQ(snap.max, 0.75);  // scaled
  EXPECT_DOUBLE_EQ(h.sum(), 1.0);    // the cheap accessor agrees
}

TEST(Obs, HistogramShardMergeMatchesSingleThread) {
  if (!kRecording) GTEST_SKIP() << "recording compiled out";
  // The same multiset recorded by 8 threads (striped) and by one thread
  // must produce identical snapshots: merging shards loses nothing.
  Histogram& sharded =
      Registry::global().histogram("test_obs_merge_sharded", "", 1.0);
  Histogram& serial =
      Registry::global().histogram("test_obs_merge_serial", "", 1.0);
  std::vector<std::uint64_t> values;
  for (std::uint64_t i = 0; i < 8000; ++i) values.push_back(i * 37 % 50000);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t i = static_cast<std::size_t>(t); i < values.size();
           i += kThreads) {
        sharded.record(values[i]);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const std::uint64_t v : values) serial.record(v);

  const HistogramSnapshot a = sharded.snapshot();
  const HistogramSnapshot b = serial.snapshot();
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.sum, b.sum);
  EXPECT_DOUBLE_EQ(a.max, b.max);
  EXPECT_EQ(a.buckets, b.buckets);
  EXPECT_DOUBLE_EQ(a.p99, b.p99);
}

TEST(Obs, ConcurrentRecordAndSnapshotIsSafe) {
  // The TSAN target: writers hammer all three kinds while a reader
  // repeatedly snapshots and exports. No asserts on intermediate values —
  // the point is that this is race-free and the final totals are exact.
  Counter& c = Registry::global().counter("test_obs_race_total");
  Gauge& g = Registry::global().gauge("test_obs_race_gauge");
  Histogram& h = Registry::global().histogram("test_obs_race_hist", "", 1.0);
  const std::uint64_t c_before = c.value();
  const std::uint64_t h_before = h.count();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 4000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        c.add();
        g.max_of(static_cast<std::int64_t>(t * kPerThread + i));
        h.record(i);
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    (void)h.snapshot();
    (void)prometheus_text();
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value() - c_before, kRecording ? kThreads * kPerThread : 0u);
  EXPECT_EQ(h.count() - h_before, kRecording ? kThreads * kPerThread : 0u);
}

TEST(Obs, RuntimeKillSwitchStopsRecording) {
  Counter& c = Registry::global().counter("test_obs_killswitch_total");
  Histogram& h =
      Registry::global().histogram("test_obs_killswitch_hist", "", 1.0);
  const std::uint64_t c_before = c.value();
  const std::uint64_t h_before = h.count();
  ASSERT_TRUE(metrics_enabled()) << "tests assume the default-on switch";
  set_metrics_enabled(false);
  c.add(5);
  h.record(123);
  set_metrics_enabled(true);
  EXPECT_EQ(c.value(), c_before);
  EXPECT_EQ(h.count(), h_before);
  c.add(2);
  EXPECT_EQ(c.value() - c_before, kRecording ? 2u : 0u);
}

TEST(Obs, RegistryFindOrCreateIsStableAndLabelAware) {
  Registry& reg = Registry::global();
  Counter& a = reg.counter("test_obs_identity_total", "kind=\"x\"");
  Counter& b = reg.counter("test_obs_identity_total", "kind=\"x\"");
  Counter& c = reg.counter("test_obs_identity_total", "kind=\"y\"");
  EXPECT_EQ(&a, &b) << "same (name, labels) must be the same object";
  EXPECT_NE(&a, &c) << "different labels are different series";
  Histogram& h1 = reg.histogram("test_obs_identity_hist", "", 1e-3);
  Histogram& h2 = reg.histogram("test_obs_identity_hist");
  EXPECT_EQ(&h1, &h2);
  EXPECT_DOUBLE_EQ(h2.scale(), 1e-3) << "first registration wins the scale";
}

TEST(Obs, PrometheusPageCarriesThePinnedSeries) {
  // Drive a real service so every writer-pipeline series exists, then check
  // the acceptance pins: all six phases and the ack-latency quantiles.
  Rng rng(7);
  DfsService svc(gen::random_connected(64, 128, rng));
  for (int i = 0; i < 20; ++i) {
    (void)svc.apply_sync(GraphUpdate::insert_vertex({static_cast<Vertex>(i)}));
  }
  svc.stop();
  const std::string page = svc.metrics_text();
  for (const char* phase :
       {"phase=\"queue_wait\"", "phase=\"patch\"", "phase=\"reroot\"",
        "phase=\"index_rebuild\"", "phase=\"rebase\"", "phase=\"publish\""}) {
    EXPECT_NE(page.find(std::string("pardfs_update_phase_us_count{") + phase),
              std::string::npos)
        << "missing phase series: " << phase << "\n" << page;
  }
  for (const char* series :
       {"pardfs_ack_latency_us_p50", "pardfs_ack_latency_us_p99",
        "pardfs_ack_latency_us_bucket{le=\"+Inf\"}",
        "pardfs_snapshot_staleness_us_count", "pardfs_queue_depth",
        "pardfs_coalesce_size", "pardfs_batches_total",
        "pardfs_updates_applied_total", "pardfs_snapshots_published_total",
        "pardfs_acks_rejected_total{reason=\"infeasible\"}",
        "pardfs_acks_rejected_total{reason=\"shutdown\"}"}) {
    EXPECT_NE(page.find(series), std::string::npos)
        << "missing series: " << series;
  }
  // Structural validity: every line is a comment or `name[{labels}] value`.
  std::size_t pos = 0;
  while (pos < page.size()) {
    const std::size_t eol = page.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "page must end in a newline";
    const std::string line = page.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NO_THROW((void)std::stod(line.substr(space + 1))) << line;
  }
  if (kRecording) {
    // 20 accepted single-update batches through the full pipeline.
    EXPECT_NE(page.find("pardfs_updates_applied_total"), std::string::npos);
    EXPECT_GT(
        Registry::global().counter("pardfs_updates_applied_total").value(), 0u);
  }
}

TEST(Obs, JsonExportIsBalancedAndCarriesQuantiles) {
  // Register our own series: under ctest each TEST runs in its own process,
  // so nothing else is guaranteed to be in the registry.
  (void)Registry::global().counter("test_obs_json_total");
  (void)Registry::global().histogram("test_obs_json_hist", "", 1e-3);
  const std::string page = metrics_json();
  EXPECT_EQ(std::count(page.begin(), page.end(), '{'),
            std::count(page.begin(), page.end(), '}'));
  EXPECT_NE(page.find("\"counters\""), std::string::npos);
  EXPECT_NE(page.find("\"gauges\""), std::string::npos);
  EXPECT_NE(page.find("\"histograms\""), std::string::npos);
  EXPECT_NE(page.find("\"test_obs_json_total\""), std::string::npos);
  EXPECT_NE(page.find("\"test_obs_json_hist\""), std::string::npos);
  EXPECT_NE(page.find("\"p99\""), std::string::npos);
}

TEST(Obs, TraceSpansRenderAsChromeJson) {
  trace_reset();
  ASSERT_FALSE(tracing_enabled()) << "tracing must default to off";
  {
    // Spans while tracing is off must not be recorded.
    const Span off_span("test_obs_untraced");
  }
  set_tracing_enabled(true);
  {
    const Span outer("test_obs_outer");
    const Span inner("test_obs_inner");
  }
  std::thread([] { const Span t("test_obs_worker"); }).join();
  set_tracing_enabled(false);
  const std::string json = chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_EQ(json.find("test_obs_untraced"), std::string::npos);
  if (kRecording) {
    EXPECT_NE(json.find("\"test_obs_outer\""), std::string::npos);
    EXPECT_NE(json.find("\"test_obs_inner\""), std::string::npos);
    EXPECT_NE(json.find("\"test_obs_worker\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  }
  trace_reset();
  const std::string empty = chrome_trace_json();
  EXPECT_EQ(empty.find("test_obs_outer"), std::string::npos);
}

TEST(Obs, ScopedPhaseRecordsIntoItsHistogram) {
  Histogram& h =
      Registry::global().histogram("test_obs_scoped_phase", "", 1e-3);
  const std::uint64_t before = h.count();
  {
    const ScopedPhase phase(h, "test_obs_scoped_phase");
  }
  EXPECT_EQ(h.count() - before, kRecording ? 1u : 0u);
}

TEST(Obs, ForestIsIdenticalWithMetricsOnAndOff) {
  // The determinism contract: recording must never feed back into the
  // algorithms. Same seed, same updates, metrics on vs runtime-off (and the
  // PARDFS_NO_METRICS build of this test covers compiled-out) — the parent
  // arrays must be byte-identical.
  const auto run = [](bool enabled) {
    set_metrics_enabled(enabled);
    Rng rng(11);
    DynamicDfs dfs(gen::random_connected(96, 200, rng));
    std::vector<GraphUpdate> batch;
    for (int i = 0; i < 60; ++i) {
      const Vertex u = (i * 7) % 96;
      const Vertex v = (i * 13 + 1) % 96;
      if (u == v) continue;
      batch.clear();
      if (dfs.graph().has_edge(u, v)) {
        batch.push_back(GraphUpdate::delete_edge(u, v));
      } else {
        batch.push_back(GraphUpdate::insert_edge(u, v));
      }
      (void)dfs.apply_batch(batch);
    }
    set_metrics_enabled(true);
    return std::vector<Vertex>(dfs.parent().begin(), dfs.parent().end());
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(Obs, StopwatchIsMonotone) {
  Stopwatch sw;
  const std::uint64_t a = sw.elapsed_ns();
  const std::uint64_t b = sw.elapsed_ns();
  EXPECT_GE(b, a);
  sw.reset();
  EXPECT_GE(sw.elapsed_seconds(), 0.0);
}

}  // namespace
}  // namespace pardfs::obs
