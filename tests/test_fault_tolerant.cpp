// Fault-tolerant DFS (Theorem 14): k-update batches answered without ever
// rebuilding D. Every intermediate and final forest must validate, and the
// oracle must accumulate only patches.
#include "core/fault_tolerant.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "tree/validation.hpp"
#include "util/random.hpp"

namespace pardfs {
namespace {

GraphUpdate to_graph_update(const gen::Update& u) {
  switch (u.kind) {
    case gen::UpdateKind::kInsertEdge:
      return GraphUpdate::insert_edge(u.u, u.v);
    case gen::UpdateKind::kDeleteEdge:
      return GraphUpdate::delete_edge(u.u, u.v);
    case gen::UpdateKind::kInsertVertex:
      return GraphUpdate::insert_vertex(u.neighbors);
    case gen::UpdateKind::kDeleteVertex:
      return GraphUpdate::delete_vertex(u.u);
  }
  return GraphUpdate::insert_edge(u.u, u.v);
}

TEST(FaultTolerant, SingleFailureMatchesDynamic) {
  Rng rng(41);
  Graph g = gen::random_connected(60, 90, rng);
  FaultTolerantDfs ft(g);
  for (const Edge& e : g.edges()) {
    const GraphUpdate batch[] = {GraphUpdate::delete_edge(e.u, e.v)};
    const auto parent = ft.apply(batch);
    const auto val = validate_dfs_forest(ft.graph(), parent);
    ASSERT_TRUE(val.ok) << "delete (" << e.u << "," << e.v << "): " << val.reason;
  }
}

TEST(FaultTolerant, VertexFailures) {
  Rng rng(42);
  Graph g = gen::random_connected(50, 70, rng);
  FaultTolerantDfs ft(g);
  for (Vertex v = 0; v < 50; ++v) {
    const GraphUpdate batch[] = {GraphUpdate::delete_vertex(v)};
    const auto parent = ft.apply(batch);
    const auto val = validate_dfs_forest(ft.graph(), parent);
    ASSERT_TRUE(val.ok) << "delete vertex " << v << ": " << val.reason;
  }
}

class FaultTolerantBatch : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(FaultTolerantBatch, KUpdateBatchesStayValid) {
  const auto [seed, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 31337 + 7);
  Graph g = gen::random_connected(70, 140, rng);
  FaultTolerantDfs ft(g);
  for (int batch_trial = 0; batch_trial < 8; ++batch_trial) {
    ft.reset();
    for (int i = 0; i < k; ++i) {
      gen::Update u;
      ASSERT_TRUE(gen::random_update(ft.graph(), rng, 1, 1, 0.4, 0.4, u));
      ft.apply_incremental(to_graph_update(u));
      const auto val = validate_dfs_forest(ft.graph(), ft.parent());
      ASSERT_TRUE(val.ok) << "seed=" << seed << " k=" << k << " update " << i
                          << " of batch " << batch_trial << ": " << val.reason;
    }
    EXPECT_EQ(ft.updates_applied(), static_cast<std::size_t>(k));
  }
}

INSTANTIATE_TEST_SUITE_P(Batches, FaultTolerantBatch,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Values(1, 2, 3, 5, 8)),
                         [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
                           return "seed" + std::to_string(std::get<0>(info.param)) +
                                  "_k" + std::to_string(std::get<1>(info.param));
                         });

TEST(FaultTolerant, ResetRestoresPreprocessedState) {
  Rng rng(43);
  Graph g = gen::random_connected(40, 60, rng);
  FaultTolerantDfs ft(g);
  const std::vector<Vertex> pristine(ft.parent().begin(), ft.parent().end());
  gen::Update u;
  ASSERT_TRUE(gen::random_update(ft.graph(), rng, 0, 1, 0, 0, u));
  ft.apply_incremental(GraphUpdate::delete_edge(u.u, u.v));
  ft.reset();
  EXPECT_EQ(pristine, std::vector<Vertex>(ft.parent().begin(), ft.parent().end()));
  EXPECT_EQ(ft.graph().num_edges(), g.num_edges());
  EXPECT_EQ(ft.updates_applied(), 0u);
}

TEST(FaultTolerant, MixedBatchWithInsertions) {
  // Delete a bridge, then insert a vertex stitching the halves back.
  Graph g = gen::path(10);
  FaultTolerantDfs ft(g);
  ft.apply_incremental(GraphUpdate::delete_edge(4, 5));
  ASSERT_TRUE(validate_dfs_forest(ft.graph(), ft.parent()).ok);
  ft.apply_incremental(GraphUpdate::insert_vertex({4, 5}));
  const auto val = validate_dfs_forest(ft.graph(), ft.parent());
  ASSERT_TRUE(val.ok) << val.reason;
  // All one component again.
  const Vertex nv = 10;
  TreeIndex idx;
  std::vector<std::uint8_t> alive(static_cast<std::size_t>(ft.graph().capacity()), 1);
  idx.build(ft.parent(), alive);
  EXPECT_EQ(idx.root_of(0), idx.root_of(9));
  EXPECT_EQ(idx.root_of(nv), idx.root_of(0));
}

TEST(FaultTolerant, DeepRerootChainThenMoreUpdates) {
  // Adversarial for Theorem 9's path decomposition: the first update forces
  // a long reroot (path + closing back edge), so subsequent updates must
  // query current-tree paths stitched from many base segments.
  const Vertex n = 64;
  Graph g = gen::path(n);
  g.add_edge(0, n - 1);
  for (Vertex v = 0; v + 4 < n; v += 4) g.add_edge(v, v + 4);  // shortcuts
  FaultTolerantDfs ft(g);
  ft.apply_incremental(GraphUpdate::delete_edge(n / 2 - 1, n / 2));
  ASSERT_TRUE(validate_dfs_forest(ft.graph(), ft.parent()).ok);
  // Keep cutting near the stitch points.
  Rng rng(777);
  for (int i = 0; i < 8; ++i) {
    gen::Update u;
    ASSERT_TRUE(gen::random_update(ft.graph(), rng, 0.5, 1, 0, 0, u));
    ft.apply_incremental(u.kind == gen::UpdateKind::kInsertEdge
                             ? GraphUpdate::insert_edge(u.u, u.v)
                             : GraphUpdate::delete_edge(u.u, u.v));
    const auto val = validate_dfs_forest(ft.graph(), ft.parent());
    ASSERT_TRUE(val.ok) << "update " << i << ": " << val.reason;
  }
}

TEST(FaultTolerant, BaseBackEdgeAboveSegmentAfterReroot) {
  // Regression for the descendant-direction probe (oracle case B): after a
  // reroot, a queried source can sit ABOVE its target segment in base
  // coordinates; its base back edges into the segment must still be found.
  // Base chain 0-1-2-3-4 with back edge (1,4).
  Graph g = gen::path(5);
  g.add_edge(1, 4);
  FaultTolerantDfs ft(g);
  // Update 1: insert (0,4) as... it is a back edge; instead delete (3,4):
  // T(4) reattaches through (1,4) -> tree 0-1-2-3, 4 under 1.
  ft.apply_incremental(GraphUpdate::delete_edge(3, 4));
  ASSERT_TRUE(validate_dfs_forest(ft.graph(), ft.parent()).ok);
  // Update 2: delete (1,2): T(2)={2,3} must reattach... no remaining edge
  // into {2,3} except via 1/0 chain — it detaches. The query path includes
  // segments where sources are base-ancestors; validity is the check.
  ft.apply_incremental(GraphUpdate::delete_edge(1, 2));
  const auto val = validate_dfs_forest(ft.graph(), ft.parent());
  ASSERT_TRUE(val.ok) << val.reason;
  // Update 3: re-link through (2,4): merges components again.
  ft.apply_incremental(GraphUpdate::insert_edge(2, 4));
  const auto val2 = validate_dfs_forest(ft.graph(), ft.parent());
  ASSERT_TRUE(val2.ok) << val2.reason;
}

TEST(FaultTolerant, InsertedVertexThenRerootThroughIt) {
  // An inserted vertex lands on query paths as a singleton segment; force a
  // reroot whose traversal passes through it.
  Graph g = gen::path(6);
  FaultTolerantDfs ft(g);
  ft.apply_incremental(GraphUpdate::insert_vertex({2, 5}));  // vertex 6
  ASSERT_TRUE(validate_dfs_forest(ft.graph(), ft.parent()).ok);
  // Cut (2,3): {3,4,5} reattaches through the new vertex 6 (edge 5-6... 6
  // adjacent to 5) — the traversed path includes vertex 6.
  ft.apply_incremental(GraphUpdate::delete_edge(2, 3));
  ASSERT_TRUE(validate_dfs_forest(ft.graph(), ft.parent()).ok);
  // Another cut behind the inserted vertex.
  ft.apply_incremental(GraphUpdate::delete_edge(4, 5));
  const auto val = validate_dfs_forest(ft.graph(), ft.parent());
  ASSERT_TRUE(val.ok) << val.reason;
}

TEST(FaultTolerant, RepeatedEdgeFlipsOnSameBatch) {
  // Insert/delete the same edge repeatedly inside one batch: patch lists
  // must stay consistent (re-insertion of a base edge, re-deletion, ...).
  Graph g = gen::cycle(12);
  FaultTolerantDfs ft(g);
  ft.apply_incremental(GraphUpdate::delete_edge(3, 4));
  ft.apply_incremental(GraphUpdate::insert_edge(3, 4));
  ft.apply_incremental(GraphUpdate::delete_edge(3, 4));
  ft.apply_incremental(GraphUpdate::insert_edge(3, 4));
  const auto val = validate_dfs_forest(ft.graph(), ft.parent());
  ASSERT_TRUE(val.ok) << val.reason;
}

}  // namespace
}  // namespace pardfs
