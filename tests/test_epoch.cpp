// Epoch policy tests for DynamicDfs: back-edge updates must never rebuild
// anything, structural updates must amortize the O(m log n) base rebuild
// over Θ(log n)-length epochs, and the maintained forest must stay a valid
// DFS forest across many epoch boundaries under a long mixed update stream.
#include <gtest/gtest.h>

#include "core/dynamic_dfs.hpp"
#include "graph/generators.hpp"
#include "tree/validation.hpp"
#include "util/random.hpp"

namespace pardfs {
namespace {

TEST(Epoch, BackEdgeUpdatesPerformZeroRebuilds) {
  // On a path graph the DFS tree is the path itself: (a, b) with a < b is
  // always an ancestor pair, i.e. a back edge.
  DynamicDfs dfs(gen::path(50));
  const std::size_t rebuilds = dfs.epoch_rebuilds();
  const std::vector<Vertex> before(dfs.parent().begin(), dfs.parent().end());
  for (int round = 0; round < 20; ++round) {
    dfs.insert_edge(0, 30);
    dfs.insert_edge(5, 45);
    dfs.delete_edge(0, 30);
    dfs.delete_edge(5, 45);
  }
  EXPECT_EQ(dfs.epoch_rebuilds(), rebuilds) << "back edges must not rebuild";
  EXPECT_EQ(dfs.updates_since_rebase(), 0u) << "back edges are not structural";
  EXPECT_EQ(before, std::vector<Vertex>(dfs.parent().begin(), dfs.parent().end()));
  EXPECT_TRUE(validate_dfs_forest(dfs.graph(), dfs.parent()).ok);
}

TEST(Epoch, StructuralUpdatesCrossEpochBoundary) {
  Rng rng(7);
  DynamicDfs dfs(gen::random_connected(128, 512, rng));
  const std::size_t rebuilds = dfs.epoch_rebuilds();
  const std::size_t period = dfs.epoch_period();
  EXPECT_GE(period, 1u);
  // Deleting tree edges is always structural; period + 1 of them must close
  // the epoch.
  for (std::size_t i = 0; i <= period; ++i) {
    const auto parent = dfs.parent();
    Vertex child = kNullVertex;
    for (Vertex v = 0; v < dfs.graph().capacity(); ++v) {
      if (dfs.graph().is_alive(v) &&
          parent[static_cast<std::size_t>(v)] != kNullVertex) {
        child = v;
        break;
      }
    }
    ASSERT_NE(child, kNullVertex);
    dfs.delete_edge(dfs.parent_of(child), child);
    ASSERT_TRUE(validate_dfs_forest(dfs.graph(), dfs.parent()).ok);
  }
  EXPECT_GT(dfs.epoch_rebuilds(), rebuilds);
  EXPECT_LE(dfs.updates_since_rebase(), period);
}

TEST(Epoch, LongMixedStreamStaysValidAcrossEpochs) {
  // ≥500 mixed updates (edge/vertex insert+delete) with the forest checked
  // against tree/validation after every single one; epoch boundaries are
  // crossed many times along the way.
  Rng rng(20260729);
  Graph g = gen::random_connected(120, 360, rng);
  DynamicDfs dfs(g);
  const std::size_t rebuilds_at_start = dfs.epoch_rebuilds();
  int applied = 0;
  while (applied < 500) {
    gen::Update u;
    ASSERT_TRUE(gen::random_update(dfs.graph(), rng, 1.0, 1.0, 0.3, 0.3, u))
        << "stream became infeasible at step " << applied;
    switch (u.kind) {
      case gen::UpdateKind::kInsertEdge:
        dfs.insert_edge(u.u, u.v);
        break;
      case gen::UpdateKind::kDeleteEdge:
        dfs.delete_edge(u.u, u.v);
        break;
      case gen::UpdateKind::kInsertVertex:
        dfs.insert_vertex(u.neighbors);
        break;
      case gen::UpdateKind::kDeleteVertex:
        dfs.delete_vertex(u.u);
        break;
    }
    ++applied;
    const auto val = validate_dfs_forest(dfs.graph(), dfs.parent());
    ASSERT_TRUE(val.ok) << "step " << applied << ": " << val.reason;
  }
  const std::size_t crossed = dfs.epoch_rebuilds() - rebuilds_at_start;
  EXPECT_GE(crossed, 5u) << "the stream must cross several epoch boundaries";
  EXPECT_LT(crossed, 500u) << "rebuilds must be amortized, not per-update";
}

TEST(Epoch, MovedInstanceKeepsEpochState) {
  Rng rng(3);
  DynamicDfs a(gen::random_connected(64, 128, rng));
  DynamicDfs b(std::move(a));
  // The moved-into instance must keep working across an epoch boundary (the
  // oracle's base pointer is re-bound on move).
  for (std::size_t i = 0; i <= b.epoch_period(); ++i) {
    const auto parent = b.parent();
    Vertex child = kNullVertex;
    for (Vertex v = 0; v < b.graph().capacity(); ++v) {
      if (b.graph().is_alive(v) &&
          parent[static_cast<std::size_t>(v)] != kNullVertex) {
        child = v;
        break;
      }
    }
    ASSERT_NE(child, kNullVertex);
    b.delete_edge(b.parent_of(child), child);
    ASSERT_TRUE(validate_dfs_forest(b.graph(), b.parent()).ok);
  }
}

}  // namespace
}  // namespace pardfs
