// Epoch policy tests for DynamicDfs: back-edge updates must never rebuild
// anything, structural updates must amortize the O(m log n) base rebuild
// over Θ(log n)-length epochs, and the maintained forest must stay a valid
// DFS forest across many epoch boundaries under a long mixed update stream.
#include <gtest/gtest.h>

#include "core/dynamic_dfs.hpp"
#include "graph/generators.hpp"
#include "tree/validation.hpp"
#include "util/random.hpp"

namespace pardfs {
namespace {

TEST(Epoch, BackEdgeUpdatesPerformZeroRebuilds) {
  // On a path graph the DFS tree is the path itself: (a, b) with a < b is
  // always an ancestor pair, i.e. a back edge.
  DynamicDfs dfs(gen::path(50));
  const std::size_t rebuilds = dfs.epoch_rebuilds();
  const std::vector<Vertex> before(dfs.parent().begin(), dfs.parent().end());
  for (int round = 0; round < 20; ++round) {
    dfs.insert_edge(0, 30);
    dfs.insert_edge(5, 45);
    dfs.delete_edge(0, 30);
    dfs.delete_edge(5, 45);
  }
  EXPECT_EQ(dfs.epoch_rebuilds(), rebuilds) << "back edges must not rebuild";
  EXPECT_EQ(dfs.updates_since_rebase(), 0u) << "back edges are not structural";
  EXPECT_EQ(before, std::vector<Vertex>(dfs.parent().begin(), dfs.parent().end()));
  EXPECT_TRUE(validate_dfs_forest(dfs.graph(), dfs.parent()).ok);
}

TEST(Epoch, StructuralUpdatesCrossEpochBoundary) {
  Rng rng(7);
  DynamicDfs dfs(gen::random_connected(128, 512, rng));
  const std::size_t rebuilds = dfs.epoch_rebuilds();
  const std::size_t period = dfs.epoch_period();
  EXPECT_GE(period, 1u);
  // Deleting tree edges is always structural; period + 1 of them must close
  // the epoch.
  for (std::size_t i = 0; i <= period; ++i) {
    const auto parent = dfs.parent();
    Vertex child = kNullVertex;
    for (Vertex v = 0; v < dfs.graph().capacity(); ++v) {
      if (dfs.graph().is_alive(v) &&
          parent[static_cast<std::size_t>(v)] != kNullVertex) {
        child = v;
        break;
      }
    }
    ASSERT_NE(child, kNullVertex);
    dfs.delete_edge(dfs.parent_of(child), child);
    ASSERT_TRUE(validate_dfs_forest(dfs.graph(), dfs.parent()).ok);
  }
  EXPECT_GT(dfs.epoch_rebuilds(), rebuilds);
  EXPECT_LE(dfs.updates_since_rebase(), period);
}

TEST(Epoch, LongMixedStreamStaysValidAcrossEpochs) {
  // ≥500 mixed updates (edge/vertex insert+delete) with the forest checked
  // against tree/validation after every single one; epoch boundaries are
  // crossed many times along the way.
  Rng rng(20260729);
  Graph g = gen::random_connected(120, 360, rng);
  DynamicDfs dfs(g);
  const std::size_t rebuilds_at_start = dfs.epoch_rebuilds();
  int applied = 0;
  while (applied < 500) {
    gen::Update u;
    ASSERT_TRUE(gen::random_update(dfs.graph(), rng, 1.0, 1.0, 0.3, 0.3, u))
        << "stream became infeasible at step " << applied;
    switch (u.kind) {
      case gen::UpdateKind::kInsertEdge:
        dfs.insert_edge(u.u, u.v);
        break;
      case gen::UpdateKind::kDeleteEdge:
        dfs.delete_edge(u.u, u.v);
        break;
      case gen::UpdateKind::kInsertVertex:
        dfs.insert_vertex(u.neighbors);
        break;
      case gen::UpdateKind::kDeleteVertex:
        dfs.delete_vertex(u.u);
        break;
    }
    ++applied;
    const auto val = validate_dfs_forest(dfs.graph(), dfs.parent());
    ASSERT_TRUE(val.ok) << "step " << applied << ": " << val.reason;
  }
  const std::size_t crossed = dfs.epoch_rebuilds() - rebuilds_at_start;
  EXPECT_GE(crossed, 5u) << "the stream must cross several epoch boundaries";
  EXPECT_LT(crossed, 500u) << "rebuilds must be amortized, not per-update";
}

TEST(Epoch, PeriodGrowsLogarithmically) {
  // The epoch period is the amortization knob (DESIGN.md §5): it must track
  // ceil(log2 n) exactly across four orders of magnitude — neither constant
  // (which would over-rebuild) nor polynomial (which would let Theorem 9
  // patch lists grow past their budget).
  std::size_t previous = 0;
  for (int k = 8; k <= 16; ++k) {
    const Vertex n = static_cast<Vertex>(1) << k;
    DynamicDfs dfs(gen::path(n));
    EXPECT_EQ(dfs.epoch_period(), static_cast<std::size_t>(k))
        << "n = 2^" << k << " must give a period of exactly k";
    EXPECT_GT(dfs.epoch_period(), previous) << "monotone in n";
    previous = dfs.epoch_period();
  }
  // Θ(log n), not Θ(n): squaring n (2^8 -> 2^16) only doubles the period.
  DynamicDfs small(gen::path(1 << 8));
  DynamicDfs large(gen::path(1 << 16));
  EXPECT_EQ(large.epoch_period(), 2 * small.epoch_period());
  // Off-power sizes round up: 2^10 + 1 vertices need 11-update epochs.
  DynamicDfs odd(gen::path((1 << 10) + 1));
  EXPECT_EQ(odd.epoch_period(), 11u);
}

TEST(Epoch, MovedInstanceKeepsEpochState) {
  Rng rng(3);
  DynamicDfs a(gen::random_connected(64, 128, rng));
  DynamicDfs b(std::move(a));
  // The moved-into instance must keep working across an epoch boundary (the
  // oracle's base pointer is re-bound on move).
  for (std::size_t i = 0; i <= b.epoch_period(); ++i) {
    const auto parent = b.parent();
    Vertex child = kNullVertex;
    for (Vertex v = 0; v < b.graph().capacity(); ++v) {
      if (b.graph().is_alive(v) &&
          parent[static_cast<std::size_t>(v)] != kNullVertex) {
        child = v;
        break;
      }
    }
    ASSERT_NE(child, kNullVertex);
    b.delete_edge(b.parent_of(child), child);
    ASSERT_TRUE(validate_dfs_forest(b.graph(), b.parent()).ok);
  }
}

}  // namespace
}  // namespace pardfs
