#include "tree/validation.hpp"

#include <gtest/gtest.h>

#include "baseline/ordered_dfs.hpp"
#include "baseline/static_dfs.hpp"
#include "graph/generators.hpp"
#include "util/random.hpp"

namespace pardfs {
namespace {

TEST(Validation, AcceptsStaticDfs) {
  Rng rng(5);
  Graph g = gen::random_connected(100, 150, rng);
  const auto parent = static_dfs(g);
  const auto result = validate_dfs_forest(g, parent);
  EXPECT_TRUE(result.ok) << result.reason;
}

TEST(Validation, AcceptsOrderedDfs) {
  Rng rng(6);
  Graph g = gen::gnm(80, 200, rng);
  const auto parent = ordered_dfs(g);
  const auto result = validate_dfs_forest(g, parent);
  EXPECT_TRUE(result.ok) << result.reason;
}

TEST(Validation, RejectsCrossEdge) {
  // Path 0-1-2 plus edge 0-3, tree shaped as two branches from 0 with the
  // non-tree edge 2-3 as a cross edge.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 3);
  g.add_edge(2, 3);
  std::vector<Vertex> parent = {kNullVertex, 0, 1, 0};
  const auto result = validate_dfs_forest(g, parent);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.reason.find("cross edge"), std::string::npos) << result.reason;
}

TEST(Validation, RejectsNonSpanningForest) {
  // Connected graph split into two trees.
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  std::vector<Vertex> parent = {kNullVertex, 0, kNullVertex};
  const auto result = validate_dfs_forest(g, parent);
  EXPECT_FALSE(result.ok);
}

TEST(Validation, RejectsTreeEdgeNotInGraph) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  std::vector<Vertex> parent = {kNullVertex, 0, 1};  // (1,2) is not an edge
  const auto result = validate_dfs_forest(g, parent);
  EXPECT_FALSE(result.ok);
}

TEST(Validation, RejectsCycle) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  std::vector<Vertex> parent = {2, 0, 1};
  const auto result = validate_dfs_forest(g, parent);
  EXPECT_FALSE(result.ok);
}

TEST(Validation, AcceptsForestsWithDeadVertices) {
  Graph g(4);
  g.add_edge(0, 1);
  g.remove_vertex(2);
  std::vector<Vertex> parent = {kNullVertex, 0, kNullVertex, kNullVertex};
  const auto result = validate_dfs_forest(g, parent);
  EXPECT_TRUE(result.ok) << result.reason;
}

TEST(Validation, RejectsDeadParent) {
  Graph g(3);
  g.add_edge(0, 1);
  g.remove_vertex(2);
  std::vector<Vertex> parent = {kNullVertex, 0, 0};  // dead vertex has a parent
  const auto result = validate_dfs_forest(g, parent);
  EXPECT_FALSE(result.ok);
}

}  // namespace
}  // namespace pardfs
