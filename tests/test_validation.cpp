#include "tree/validation.hpp"

#include <gtest/gtest.h>

#include "baseline/ordered_dfs.hpp"
#include "baseline/static_dfs.hpp"
#include "graph/generators.hpp"
#include "util/random.hpp"

namespace pardfs {
namespace {

TEST(Validation, AcceptsStaticDfs) {
  Rng rng(5);
  Graph g = gen::random_connected(100, 150, rng);
  const auto parent = static_dfs(g);
  const auto result = validate_dfs_forest(g, parent);
  EXPECT_TRUE(result.ok) << result.reason;
}

TEST(Validation, AcceptsOrderedDfs) {
  Rng rng(6);
  Graph g = gen::gnm(80, 200, rng);
  const auto parent = ordered_dfs(g);
  const auto result = validate_dfs_forest(g, parent);
  EXPECT_TRUE(result.ok) << result.reason;
}

TEST(Validation, RejectsCrossEdge) {
  // Path 0-1-2 plus edge 0-3, tree shaped as two branches from 0 with the
  // non-tree edge 2-3 as a cross edge.
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 3);
  g.add_edge(2, 3);
  std::vector<Vertex> parent = {kNullVertex, 0, 1, 0};
  const auto result = validate_dfs_forest(g, parent);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.reason.find("cross edge"), std::string::npos) << result.reason;
}

TEST(Validation, RejectsNonSpanningForest) {
  // Connected graph split into two trees: the edge between them betrays it.
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  std::vector<Vertex> parent = {kNullVertex, 0, kNullVertex};
  const auto result = validate_dfs_forest(g, parent);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.reason.find("connects two different trees"),
            std::string::npos)
      << result.reason;
}

TEST(Validation, RejectsTreeEdgeNotInGraph) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  std::vector<Vertex> parent = {kNullVertex, 0, 1};  // (1,2) is not an edge
  const auto result = validate_dfs_forest(g, parent);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.reason.find("is not a graph edge"), std::string::npos)
      << result.reason;
}

TEST(Validation, RejectsCycle) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  std::vector<Vertex> parent = {2, 0, 1};
  const auto result = validate_dfs_forest(g, parent);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.reason.find("cycle through vertex"), std::string::npos)
      << result.reason;
}

TEST(Validation, RejectsParentArraySizeMismatch) {
  Graph g(4);
  g.add_edge(0, 1);
  std::vector<Vertex> parent = {kNullVertex, 0, kNullVertex};  // one short
  const auto result = validate_dfs_forest(g, parent);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.reason.find("parent array size != graph capacity"),
            std::string::npos)
      << result.reason;
}

TEST(Validation, RejectsAliveVertexWithDeadParent) {
  Graph g(3);
  g.add_edge(0, 1);
  g.remove_vertex(2);
  std::vector<Vertex> parent = {kNullVertex, 2, kNullVertex};  // 1's parent died
  const auto result = validate_dfs_forest(g, parent);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.reason.find("parent of 1 is dead"), std::string::npos)
      << result.reason;
}

TEST(Validation, AcceptsForestsWithDeadVertices) {
  Graph g(4);
  g.add_edge(0, 1);
  g.remove_vertex(2);
  std::vector<Vertex> parent = {kNullVertex, 0, kNullVertex, kNullVertex};
  const auto result = validate_dfs_forest(g, parent);
  EXPECT_TRUE(result.ok) << result.reason;
}

TEST(Validation, RejectsDeadParent) {
  Graph g(3);
  g.add_edge(0, 1);
  g.remove_vertex(2);
  std::vector<Vertex> parent = {kNullVertex, 0, 0};  // dead vertex has a parent
  const auto result = validate_dfs_forest(g, parent);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.reason.find("dead vertex 2 has a parent"), std::string::npos)
      << result.reason;
}

TEST(Validation, RejectsCrossEdgeInDeepForest) {
  // Two sibling subtrees of a common root joined by a non-tree edge between
  // non-ancestor vertices — the classic cross edge the DFS property forbids.
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(0, 3);
  g.add_edge(3, 4);
  g.add_edge(2, 4);
  std::vector<Vertex> parent = {kNullVertex, 0, 1, 0, 3};
  const auto result = validate_dfs_forest(g, parent);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.reason.find("cross edge"), std::string::npos)
      << result.reason;
}

}  // namespace
}  // namespace pardfs
