#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace pardfs {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.capacity(), 0);
  EXPECT_EQ(g.num_vertices(), 0);
  EXPECT_EQ(g.num_edges(), 0);
}

TEST(Graph, AddAndRemoveEdges) {
  Graph g(4);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_TRUE(g.add_edge(1, 2));
  EXPECT_FALSE(g.add_edge(0, 1)) << "duplicate edges must be rejected";
  EXPECT_FALSE(g.add_edge(1, 0)) << "duplicates in either direction";
  EXPECT_EQ(g.num_edges(), 2);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_TRUE(g.remove_edge(0, 1));
  EXPECT_FALSE(g.remove_edge(0, 1));
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(Graph, DegreeAndNeighbors) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  EXPECT_EQ(g.degree(0), 3);
  EXPECT_EQ(g.degree(1), 1);
  const auto nbrs = g.neighbors(0);
  EXPECT_EQ(nbrs.size(), 3u);
  EXPECT_NE(std::find(nbrs.begin(), nbrs.end(), 2), nbrs.end());
}

TEST(Graph, VertexInsertionWithEdges) {
  Graph g(3);
  g.add_edge(0, 1);
  const Vertex nbrs[] = {0, 2};
  const Vertex v = g.add_vertex(nbrs);
  EXPECT_EQ(v, 3);
  EXPECT_EQ(g.num_vertices(), 4);
  EXPECT_TRUE(g.has_edge(3, 0));
  EXPECT_TRUE(g.has_edge(3, 2));
  EXPECT_EQ(g.num_edges(), 3);
}

TEST(Graph, VertexDeletionRemovesIncidentEdges) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(1, 3);
  g.remove_vertex(1);
  EXPECT_FALSE(g.is_alive(1));
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 0);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.degree(0), 0);
}

TEST(Graph, IdsAreNotRecycled) {
  Graph g(2);
  g.remove_vertex(1);
  const Vertex v = g.add_vertex();
  EXPECT_EQ(v, 2) << "deleted ids must stay dead";
  EXPECT_FALSE(g.is_alive(1));
  EXPECT_TRUE(g.is_alive(2));
}

TEST(Graph, EdgesListing) {
  Graph g(4);
  g.add_edge(2, 1);
  g.add_edge(3, 0);
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 2u);
  for (const Edge& e : edges) EXPECT_LT(e.u, e.v);
}

TEST(Graph, UndirectedKeyIsSymmetric) {
  EXPECT_EQ(undirected_key(3, 7), undirected_key(7, 3));
  EXPECT_NE(undirected_key(3, 7), undirected_key(3, 8));
}

}  // namespace
}  // namespace pardfs
