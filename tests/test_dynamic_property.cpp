// Property sweep: after EVERY update of a long random sequence, the
// maintained forest must be a valid DFS forest of the current graph, for
// many seeds, densities, update mixes and both strategies. This is the
// library's main correctness gauntlet.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "core/dynamic_dfs.hpp"
#include "graph/generators.hpp"
#include "tree/validation.hpp"
#include "util/random.hpp"

namespace pardfs {
namespace {

struct MixParam {
  const char* name;
  double ins_e, del_e, ins_v, del_v;
};

class DynamicSweep
    : public ::testing::TestWithParam<std::tuple<int, int, MixParam, RerootStrategy>> {};

TEST_P(DynamicSweep, ForestStaysValid) {
  const auto [seed, density, mix, strategy] = GetParam();
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13);
  const Vertex n = 60;
  Graph g = gen::random_connected(n, static_cast<std::int64_t>(density) * n, rng);
  DynamicDfs dfs(g, strategy);
  for (int step = 0; step < 120; ++step) {
    gen::Update u;
    if (!gen::random_update(dfs.graph(), rng, mix.ins_e, mix.del_e, mix.ins_v,
                            mix.del_v, u)) {
      break;
    }
    switch (u.kind) {
      case gen::UpdateKind::kInsertEdge:
        dfs.insert_edge(u.u, u.v);
        break;
      case gen::UpdateKind::kDeleteEdge:
        dfs.delete_edge(u.u, u.v);
        break;
      case gen::UpdateKind::kInsertVertex:
        dfs.insert_vertex(u.neighbors);
        break;
      case gen::UpdateKind::kDeleteVertex:
        dfs.delete_vertex(u.u);
        break;
    }
    const auto validation = validate_dfs_forest(dfs.graph(), dfs.parent());
    ASSERT_TRUE(validation.ok)
        << "seed=" << seed << " density=" << density << " mix=" << mix.name
        << " step=" << step << ": " << validation.reason;
  }
}

constexpr MixParam kMixes[] = {
    {"edges_only", 1.0, 1.0, 0.0, 0.0},
    {"mostly_deletes", 0.2, 1.0, 0.1, 0.5},
    {"mostly_inserts", 1.0, 0.2, 0.5, 0.1},
    {"full_mix", 1.0, 1.0, 0.5, 0.5},
};

INSTANTIATE_TEST_SUITE_P(
    Sweep, DynamicSweep,
    ::testing::Combine(::testing::Range(0, 6), ::testing::Values(0, 1, 4),
                       ::testing::ValuesIn(kMixes),
                       ::testing::Values(RerootStrategy::kPaper,
                                         RerootStrategy::kSequentialL)),
    [](const ::testing::TestParamInfo<std::tuple<int, int, MixParam, RerootStrategy>>&
           info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_d" +
             std::to_string(std::get<1>(info.param)) + "_" +
             std::get<2>(info.param).name +
             (std::get<3>(info.param) == RerootStrategy::kPaper ? "_paper"
                                                                : "_seql");
    });

// Family sweep: the same per-update validity property at n=96 over the graph
// families the fuzz soak exercises (random, grid, Barabási–Albert), with a
// delete-heavy axis and a real worker team (num_threads=4) — the forest must
// stay valid AND be identical to the single-thread run at every step.
struct FamilyParam {
  const char* name;
  Graph (*make)(Vertex n, Rng& rng);
};

Graph make_random_family(Vertex n, Rng& rng) {
  return gen::random_connected(n, 2 * static_cast<std::int64_t>(n), rng);
}
Graph make_grid_family(Vertex n, Rng&) {
  Vertex rows = 2;
  while ((rows + 1) * (rows + 1) <= n) ++rows;
  return gen::grid(rows, n / rows);
}
Graph make_ba_family(Vertex n, Rng& rng) {
  return gen::barabasi_albert(n, 3, rng);
}

constexpr FamilyParam kFamilies[] = {
    {"random", make_random_family},
    {"grid", make_grid_family},
    {"barabasi_albert", make_ba_family},
};

class FamilySweep
    : public ::testing::TestWithParam<std::tuple<int, FamilyParam, MixParam>> {};

TEST_P(FamilySweep, ForestValidAndThreadCountInvariant) {
  const auto [seed, family, mix] = GetParam();
  const Vertex n = 96;
  Rng graph_rng(static_cast<std::uint64_t>(seed) * 6151 + 3);
  const Graph initial = family.make(n, graph_rng);
  DynamicDfs serial(initial, RerootStrategy::kPaper, nullptr, /*num_threads=*/1);
  DynamicDfs parallel(initial, RerootStrategy::kPaper, nullptr, /*num_threads=*/4);
  Graph mirror = initial;
  Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 17);
  for (int step = 0; step < 100; ++step) {
    gen::Update u;
    if (!gen::random_update(mirror, rng, mix.ins_e, mix.del_e, mix.ins_v,
                            mix.del_v, u)) {
      break;
    }
    gen::apply_update(mirror, u);
    for (DynamicDfs* dfs : {&serial, &parallel}) {
      switch (u.kind) {
        case gen::UpdateKind::kInsertEdge:
          dfs->insert_edge(u.u, u.v);
          break;
        case gen::UpdateKind::kDeleteEdge:
          dfs->delete_edge(u.u, u.v);
          break;
        case gen::UpdateKind::kInsertVertex:
          dfs->insert_vertex(u.neighbors);
          break;
        case gen::UpdateKind::kDeleteVertex:
          dfs->delete_vertex(u.u);
          break;
      }
    }
    const auto validation = validate_dfs_forest(mirror, serial.parent());
    ASSERT_TRUE(validation.ok) << "seed=" << seed << " family=" << family.name
                               << " mix=" << mix.name << " step=" << step
                               << ": " << validation.reason;
    ASSERT_TRUE(std::ranges::equal(serial.parent(), parallel.parent()))
        << "seed=" << seed << " family=" << family.name << " step=" << step
        << ": forest differs between num_threads=1 and num_threads=4";
  }
}

constexpr MixParam kFamilyMixes[] = {
    {"delete_heavy", 0.15, 1.0, 0.05, 0.8},
    {"full_mix", 1.0, 1.0, 0.5, 0.5},
};

INSTANTIATE_TEST_SUITE_P(
    Families, FamilySweep,
    ::testing::Combine(::testing::Range(0, 4), ::testing::ValuesIn(kFamilies),
                       ::testing::ValuesIn(kFamilyMixes)),
    [](const ::testing::TestParamInfo<std::tuple<int, FamilyParam, MixParam>>&
           info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_" +
             std::get<1>(info.param).name + "_" + std::get<2>(info.param).name;
    });

// Exhaustive micro sweep: every single-edge update on every connected graph
// over a set of small seeds — catches corner cases the random walk misses.
TEST(DynamicExhaustive, AllSingleEdgeUpdatesOnSmallGraphs) {
  Rng rng(99);
  for (int trial = 0; trial < 30; ++trial) {
    const Vertex n = static_cast<Vertex>(4 + rng.below(5));  // 4..8 vertices
    const std::int64_t extra = static_cast<std::int64_t>(rng.below(6));
    const Graph g = gen::random_connected(n, extra, rng);
    // Every possible edge deletion.
    for (const Edge& e : g.edges()) {
      DynamicDfs dfs(g);
      dfs.delete_edge(e.u, e.v);
      const auto val = validate_dfs_forest(dfs.graph(), dfs.parent());
      ASSERT_TRUE(val.ok) << "trial " << trial << " delete (" << e.u << "," << e.v
                          << "): " << val.reason;
    }
    // Every possible edge insertion.
    for (Vertex u = 0; u < n; ++u) {
      for (Vertex v = u + 1; v < n; ++v) {
        if (g.has_edge(u, v)) continue;
        DynamicDfs dfs(g);
        dfs.insert_edge(u, v);
        const auto val = validate_dfs_forest(dfs.graph(), dfs.parent());
        ASSERT_TRUE(val.ok) << "trial " << trial << " insert (" << u << "," << v
                            << "): " << val.reason;
      }
    }
    // Every possible vertex deletion.
    for (Vertex v = 0; v < n; ++v) {
      DynamicDfs dfs(g);
      dfs.delete_vertex(v);
      const auto val = validate_dfs_forest(dfs.graph(), dfs.parent());
      ASSERT_TRUE(val.ok) << "trial " << trial << " delete vertex " << v << ": "
                          << val.reason;
    }
  }
}

// Adversarial families under targeted updates.
TEST(DynamicAdversarial, BroomChurn) {
  Graph g = gen::broom(200, 20);
  DynamicDfs dfs(std::move(g));
  // Repeatedly cut the handle and repair it through a bristle.
  for (int round = 0; round < 10; ++round) {
    dfs.delete_edge(10, 11);
    ASSERT_TRUE(validate_dfs_forest(dfs.graph(), dfs.parent()).ok);
    dfs.insert_edge(10, 11);
    ASSERT_TRUE(validate_dfs_forest(dfs.graph(), dfs.parent()).ok);
  }
}

TEST(DynamicAdversarial, HairyPathChurn) {
  Graph g = gen::hairy_path(20, 5);
  DynamicDfs dfs(std::move(g));
  Rng rng(2718);
  for (int step = 0; step < 60; ++step) {
    gen::Update u;
    ASSERT_TRUE(gen::random_update(dfs.graph(), rng, 1, 1, 0, 0, u));
    if (u.kind == gen::UpdateKind::kInsertEdge) {
      dfs.insert_edge(u.u, u.v);
    } else {
      dfs.delete_edge(u.u, u.v);
    }
    const auto val = validate_dfs_forest(dfs.graph(), dfs.parent());
    ASSERT_TRUE(val.ok) << "step " << step << ": " << val.reason;
  }
}

TEST(DynamicAdversarial, CliqueVertexChurn) {
  Graph g = gen::clique(20);
  DynamicDfs dfs(std::move(g));
  for (Vertex v = 0; v < 10; ++v) {
    dfs.delete_vertex(v);
    const auto val = validate_dfs_forest(dfs.graph(), dfs.parent());
    ASSERT_TRUE(val.ok) << "after deleting " << v << ": " << val.reason;
  }
  EXPECT_EQ(dfs.graph().num_vertices(), 10);
}

}  // namespace
}  // namespace pardfs
