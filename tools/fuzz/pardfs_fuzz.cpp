// pardfs_fuzz — property-based fuzz gauntlet over the dynamic-DFS stack
// (see src/testing/fuzz.hpp for what one run checks).
//
// Modes:
//   * single run (default):    pardfs_fuzz --seed=7 --scenario=grid --entry=service
//   * sharded differential:    pardfs_fuzz --entry=sharded --shards=8
//       (S-shard router vs 1-shard reference, byte-compared every batch)
//   * chaos differential:      pardfs_fuzz --entry=chaos --chaos-seed=3
//       (seeded fault schedule armed: writer crashes / merge aborts / stalls
//        / sheds mid-run; every recovery must land byte-identical to the
//        un-faulted reference. Needs -DPARDFS_ENABLE_CHAOS=ON to inject.)
//   * fixed soak matrix:       pardfs_fuzz --soak=8 --batches=16
//       (8 seeds x {random, power_law, grid, dynamic_map}
//                x {core, service, sharded} + 3 chaos schedules each)
//   * time-budgeted CI soak:   pardfs_fuzz --minutes=5
//       (keeps sweeping the matrix with fresh seeds until the budget runs out)
//
// Every failure prints the exact replay line that reproduces it:
//   pardfs_fuzz --seed=... --scenario=... --entry=... --n=... --batches=...
// Exit code: 0 = all runs clean, 1 = mismatch found, 2 = bad usage.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>

#include "testing/fuzz.hpp"
#include "util/simd.hpp"

namespace {

using pardfs::testing::FuzzOptions;
using pardfs::testing::FuzzResult;

struct CliOptions {
  FuzzOptions fuzz;
  int soak_seeds = 0;      // --soak=N: fixed matrix of N seeds
  double minutes = 0.0;    // --minutes=M: time-budgeted matrix sweep
  bool scenario_set = false;
  bool entry_set = false;
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--seed=U64] [--scenario=random|power_law|grid|dynamic_map]\n"
      "          [--entry=core|service|sharded|chaos] [--n=N] [--batches=B]\n"
      "          [--max-batch=K] [--threads=T] [--shards=S] [--corrupt-at=B]\n"
      "          [--chaos-seed=U64] [--chaos-faults=F]\n"
      "          [--soak=SEEDS] [--minutes=M] [--force-scalar]\n"
      "(--entry=chaos needs -DPARDFS_ENABLE_CHAOS=ON to actually inject;\n"
      " otherwise it runs as the fault-free sharded differential)\n",
      argv0);
}

bool parse_arg(std::string_view arg, CliOptions& cli) {
  const auto value_of = [&](std::string_view key,
                            std::string_view& out) -> bool {
    if (arg.size() > key.size() && arg.substr(0, key.size()) == key &&
        arg[key.size()] == '=') {
      out = arg.substr(key.size() + 1);
      return true;
    }
    return false;
  };
  std::string_view v;
  if (value_of("--seed", v)) {
    cli.fuzz.seed = std::strtoull(std::string(v).c_str(), nullptr, 10);
    return true;
  }
  if (value_of("--scenario", v)) {
    cli.scenario_set = true;
    return pardfs::testing::parse_family(v, cli.fuzz.family);
  }
  if (value_of("--entry", v)) {
    cli.entry_set = true;
    return pardfs::testing::parse_entry(v, cli.fuzz.entry);
  }
  if (value_of("--n", v)) {
    cli.fuzz.n = static_cast<pardfs::Vertex>(std::atoll(std::string(v).c_str()));
    return cli.fuzz.n > 0;
  }
  if (value_of("--batches", v)) {
    cli.fuzz.batches = std::atoi(std::string(v).c_str());
    return cli.fuzz.batches > 0;
  }
  if (value_of("--max-batch", v)) {
    cli.fuzz.max_batch = std::atoi(std::string(v).c_str());
    return cli.fuzz.max_batch > 0;
  }
  if (value_of("--threads", v)) {
    cli.fuzz.num_threads = std::atoi(std::string(v).c_str());
    return cli.fuzz.num_threads >= 0;
  }
  if (value_of("--shards", v)) {
    cli.fuzz.num_shards = std::atoi(std::string(v).c_str());
    return cli.fuzz.num_shards > 0;
  }
  if (value_of("--corrupt-at", v)) {
    cli.fuzz.corrupt_at = std::atoi(std::string(v).c_str());
    return true;
  }
  if (value_of("--chaos-seed", v)) {
    cli.fuzz.chaos_seed = std::strtoull(std::string(v).c_str(), nullptr, 10);
    return true;
  }
  if (value_of("--chaos-faults", v)) {
    cli.fuzz.chaos_faults = std::atoi(std::string(v).c_str());
    return cli.fuzz.chaos_faults > 0;
  }
  if (value_of("--soak", v)) {
    cli.soak_seeds = std::atoi(std::string(v).c_str());
    return cli.soak_seeds > 0;
  }
  if (value_of("--minutes", v)) {
    cli.minutes = std::atof(std::string(v).c_str());
    return cli.minutes > 0.0;
  }
  if (arg == "--force-scalar") {
    cli.fuzz.force_scalar = true;
    return true;
  }
  return false;
}

int report(const FuzzResult& r) {
  if (r.ok) {
    std::printf("OK: %llu batches, %llu updates, %llu queries, 0 mismatches\n",
                static_cast<unsigned long long>(r.batches),
                static_cast<unsigned long long>(r.updates),
                static_cast<unsigned long long>(r.queries));
    return 0;
  }
  std::fprintf(stderr, "FUZZ FAILURE: %s\n", r.failure.c_str());
  std::fprintf(stderr, "replay: %s\n", r.replay.c_str());
  if (!r.obs_counters.empty()) {
    // Registry snapshot at failure time: replaying the seed in a fresh
    // process must land on the same counts (divergence = bad replay).
    std::fprintf(stderr, "obs:    %s\n", r.obs_counters.c_str());
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions cli;
  for (int i = 1; i < argc; ++i) {
    if (!parse_arg(argv[i], cli)) {
      std::fprintf(stderr, "bad argument: %s\n", argv[i]);
      usage(argv[0]);
      return 2;
    }
  }
  // Reflect an ambient PARDFS_FORCE_SCALAR pin in the printed run lines so
  // they replay the effective dispatch mode.
  cli.fuzz.force_scalar = cli.fuzz.force_scalar || pardfs::simd::scalar_forced();

  if (cli.minutes > 0.0) {
    // Time-budgeted soak: sweep the full matrix with fresh seeds until the
    // budget is spent. Each sweep is itself deterministic per seed base, so
    // any failure still replays exactly.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(static_cast<std::int64_t>(cli.minutes * 60e3));
    FuzzResult total;
    std::uint64_t seed_base = cli.fuzz.seed;
    do {
      const FuzzResult r = pardfs::testing::run_soak(
          seed_base, /*seeds=*/1, cli.fuzz.batches, cli.fuzz.n,
          cli.fuzz.num_threads, cli.fuzz.force_scalar);
      if (!r.ok) return report(r);
      total.batches += r.batches;
      total.updates += r.updates;
      total.queries += r.queries;
      ++seed_base;
    } while (std::chrono::steady_clock::now() < deadline);
    std::printf("soak: %llu seeds swept\n",
                static_cast<unsigned long long>(seed_base - cli.fuzz.seed));
    return report(total);
  }

  if (cli.soak_seeds > 0) {
    return report(pardfs::testing::run_soak(
        cli.fuzz.seed, cli.soak_seeds, cli.fuzz.batches, cli.fuzz.n,
        cli.fuzz.num_threads, cli.fuzz.force_scalar));
  }

  std::printf("run: %s\n", pardfs::testing::replay_line(cli.fuzz).c_str());
  return report(pardfs::testing::run_fuzz(cli.fuzz));
}
